//go:build !race

package arachnet_test

const raceEnabled = false

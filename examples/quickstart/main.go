// Quickstart: ask ArachNet the paper's Case Study 1 question and walk
// through every artifact the pipeline produces — the decomposition, the
// explored design, the generated code, and the executed analysis.
package main

import (
	"context"
	"fmt"
	"log"

	"arachnet"
)

func main() {
	// A compact world keeps the quickstart instant; drop WithSmallWorld
	// for the full 80+-country Internet.
	sys, err := arachnet.New(arachnet.WithSmallWorld(7))
	if err != nil {
		log.Fatal(err)
	}

	const query = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	fmt.Println("query:", query)

	rep, err := sys.Ask(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n[1] QueryMind decomposed the problem into:")
	for _, sp := range rep.Problem.SubProblems {
		fmt.Printf("    %-14s → %-18s %s\n", sp.ID, sp.Produces, sp.Goal)
	}

	fmt.Printf("\n[2] WorkflowScout designed the workflow (%s strategy, %d candidate(s)):\n",
		rep.Design.Strategy, rep.Design.Explored)
	for i, name := range rep.Design.Chosen.CapabilityNames() {
		fmt.Printf("    step %d: %s\n", i+1, name)
	}

	fmt.Printf("\n[3] SolutionWeaver generated %d lines of %s with %d quality checks.\n",
		rep.Solution.LoC, rep.Solution.Language, rep.Solution.ChecksAdded)
	fmt.Println("    First lines of the generated program:")
	printed := 0
	for _, line := range splitLines(rep.Solution.Code) {
		fmt.Println("    |", line)
		printed++
		if printed == 8 {
			break
		}
	}

	fmt.Printf("\n[4] Execution finished with quality score %.2f:\n\n", rep.Result.QualityScore())
	impact := rep.Result.Outputs["aggregation"].(*arachnet.ImpactReport)
	fmt.Println(arachnet.RenderImpact(impact, 10))
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

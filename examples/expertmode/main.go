// Expert mode: the paper's expert-in-the-loop operation. A domain
// specialist reviews the artifact leaving each agent — the
// decomposition, the chosen design, the woven solution — and can adjust
// or veto before the pipeline proceeds. This example installs a hook
// that audits each stage and enforces a review policy: designs must
// stay under a step budget and solutions must carry quality checks.
package main

import (
	"context"
	"fmt"
	"log"

	"arachnet"
)

func main() {
	review := func(stage string, artifact any) error {
		switch stage {
		case arachnet.StageProblem:
			ps := artifact.(*arachnet.ProblemSpec)
			fmt.Printf("[review:%s] %d sub-problems, %d risks flagged\n",
				stage, len(ps.SubProblems), len(ps.Risks))
			for _, r := range ps.Risks {
				fmt.Println("    risk:", r)
			}
		case arachnet.StageDesign:
			d := artifact.(*arachnet.Design)
			fmt.Printf("[review:%s] strategy=%s, %d candidate(s), chosen has %d steps\n",
				stage, d.Strategy, d.Explored, len(d.Chosen.Steps))
			if len(d.Chosen.Steps) > 10 {
				return fmt.Errorf("design exceeds the 10-step review budget")
			}
		case arachnet.StageSolution:
			sol := artifact.(*arachnet.Solution)
			fmt.Printf("[review:%s] %d LoC generated, %d quality checks\n",
				stage, sol.LoC, sol.ChecksAdded)
			if sol.ChecksAdded == 0 {
				return fmt.Errorf("solution carries no quality checks; rejected")
			}
		case arachnet.StageResult:
			fmt.Printf("[review:%s] execution artifact received\n", stage)
		}
		return nil
	}

	sys, err := arachnet.New(arachnet.WithSmallWorld(7))
	if err != nil {
		log.Fatal(err)
	}

	// Expert review is a per-call choice: the same System serves fully
	// automated requests and reviewed ones side by side.
	rep, err := sys.Ask(context.Background(),
		"Identify the impact at a country level due to SeaMeWe-5 cable failure",
		arachnet.AskExpert(review))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nall stages approved; final result:")
	impact := rep.Result.Outputs["aggregation"].(*arachnet.ImpactReport)
	fmt.Println(arachnet.RenderImpact(impact, 8))
}

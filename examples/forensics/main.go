// Forensic investigation: the paper's Case Study 4. A latency anomaly
// appeared three days ago; the agent must decide whether a submarine
// cable failure caused it and name the cable, fusing statistical,
// infrastructure and routing evidence. The example checks the verdict
// against the scenario's injected ground truth.
package main

import (
	"context"
	"fmt"
	"log"

	"arachnet"
)

func main() {
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(7),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
	)
	if err != nil {
		log.Fatal(err)
	}

	const query = "A sudden increase in latency was observed from European probes to Asian destinations " +
		"starting three days ago. Determine if a submarine cable failure caused this, and if so, " +
		"identify the specific cable."
	rep, err := sys.Ask(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("investigation pipeline:")
	for i, name := range rep.Design.Chosen.CapabilityNames() {
		fmt.Printf("  %d. %s\n", i+1, name)
	}

	v := rep.Result.Outputs["verdict"].(arachnet.Verdict)
	fmt.Printf("\n=== verdict ===\n")
	fmt.Printf("cable failure is the cause: %v\n", v.CauseIsCableFailure)
	fmt.Printf("identified cable:           %s\n", v.Cable)
	fmt.Printf("confidence:                 %.2f\n", v.Confidence)
	fmt.Printf("evidence: statistical=%.2f infrastructure=%.2f routing=%.2f\n",
		v.StatisticalEvidence, v.InfraEvidence, v.RoutingEvidence)
	fmt.Println("reasoning:", v.Explanation)

	truth := sys.Environment().Scenario.TrueCable
	fmt.Printf("\nground truth (injected): %s — agent correct: %v\n", truth, v.Cable == truth)

	expert, err := arachnet.ExpertForensic(sys)
	if err != nil {
		log.Fatal(err)
	}
	ag := arachnet.CompareVerdicts(v, expert)
	fmt.Printf("expert agreement: causation=%v cable=%v confidence-gap=%.2f\n",
		ag.SameCausation, ag.SameCable, ag.ConfidenceGap)
}

// Cascade analysis: the paper's Case Study 3. The agent integrates the
// cartography, resilience, dependency-graph and routing substrates into
// one workflow and synthesizes a unified cross-layer cascade timeline
// for a Europe–Asia corridor failure.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"arachnet"
)

func main() {
	// Cascade analysis needs temporal data: inject the measurement
	// scenario (probe campaign + BGP collector stream).
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(7),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Cascade analysis is the heaviest case study; a per-call deadline
	// keeps a shared System responsive under load.
	const query = "Analyze the cascading effects of submarine cable failures between Europe and Asia"
	rep, err := sys.Ask(context.Background(), query, arachnet.AskTimeout(2*time.Minute))
	if err != nil {
		log.Fatal(err)
	}

	fws := rep.Design.Chosen.Frameworks(sys.Registry())
	fmt.Printf("the agent integrated %d frameworks: %v\n", len(fws), fws)
	fmt.Printf("(the paper reports this traditionally takes days of manual coordination)\n\n")

	tl := rep.Result.Outputs["synthesis"].(*arachnet.Timeline)
	fmt.Println(tl.Render())

	// Cross-check against the hand-integrated expert workflow.
	expert, err := arachnet.ExpertCascade(sys, arachnet.Europe, arachnet.Asia)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expert cross-check: %d corridor cables, %d total failures across %d rounds, %d degraded ASes\n",
		len(expert.Corridor), len(expert.Cascade.Failed), len(expert.Cascade.Rounds), len(expert.Stress.Degraded))
	match := tl.CablesFailed == len(expert.Cascade.Failed) && tl.ASesDegraded == len(expert.Stress.Degraded)
	fmt.Println("agent matches expert cascade structure:", match)
}

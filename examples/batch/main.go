// Batch serving: one shared System answers all four of the paper's
// case-study questions concurrently through AskBatch. The fan-out runs
// over a bounded worker pool, so a service can throw an arbitrary
// query mix at a single System without building one per request.
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"arachnet"
)

func main() {
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(7),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
	)
	if err != nil {
		log.Fatal(err)
	}

	queries := []string{
		"Identify the impact at a country level due to SeaMeWe-5 cable failure",
		"Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability",
		"Analyze the cascading effects of submarine cable failures between Europe and Asia",
		"A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable.",
	}

	start := time.Now()
	reports, err := sys.AskBatch(context.Background(), queries, arachnet.AskParallelism(4))
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	var sequential time.Duration
	for i, rep := range reports {
		sequential += rep.Elapsed
		fmt.Printf("query %d: %d steps, %d LoC, quality %.2f in %v\n",
			i+1, len(rep.Design.Chosen.Steps), rep.Solution.LoC,
			rep.Result.QualityScore(), rep.Elapsed.Round(time.Millisecond))
		// Curation stays on across the batch, so the curator mines the
		// accumulated history as runs land: Report.Promotions shows
		// which run's pass evolved the registry.
		for _, p := range rep.Promotions {
			fmt.Printf("  curator promoted %s (support %d, quality %.2f): %s\n",
				p.Capability.Name, p.Support, p.AvgQuality, strings.Join(p.Pattern, " → "))
		}
	}
	fmt.Printf("\nbatch wall clock %v vs %v summed sequentially (%.1fx)\n",
		wall.Round(time.Millisecond), sequential.Round(time.Millisecond),
		float64(sequential)/float64(wall))
	fmt.Printf("registry after curation: %d capabilities, %d promoted composites\n",
		sys.Registry().Size(), len(sys.Promotions()))
}

// Streaming and async serving: the same pipeline consumed two ways.
// First AskStream turns one query into a live feed of typed events —
// stages, steps, promotions — ending with Done. Then the job queue
// turns the System into a server: Submit returns immediately, jobs run
// on a worker pool, and each one is watched (Events), awaited (Wait)
// or cancelled (Cancel) independently.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"arachnet"
)

func main() {
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(7),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
	)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()

	// 1. One query, streamed: every pipeline transition as it happens.
	fmt.Println("── streaming one query ──")
	query := "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	for ev := range sys.AskStream(ctx, query) {
		switch ev := ev.(type) {
		case *arachnet.StageStarted:
			fmt.Printf("▶ stage %s\n", ev.Stage)
		case *arachnet.StepCompleted:
			fmt.Printf("  ✓ %s (%s) in %v\n", ev.Step, ev.Capability, ev.Duration.Round(time.Microsecond))
		case *arachnet.StepFailed:
			fmt.Printf("  ✗ %s: %v\n", ev.Step, ev.Err)
		case *arachnet.CurationPromoted:
			fmt.Printf("  + promoted %s\n", ev.Promotion.Capability.Name)
		case *arachnet.Done:
			if ev.Err != nil {
				log.Fatal(ev.Err)
			}
			fmt.Printf("done: quality %.2f in %v\n",
				ev.Report.Result.QualityScore(), ev.Report.Elapsed.Round(time.Millisecond))
		}
	}

	// 2. Many queries, asynchronously: Submit never blocks on the
	// pipeline; the worker pool drains the queue while we do other
	// work, then each Wait collects one result.
	fmt.Println("\n── async job queue ──")
	queries := []string{
		"Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability",
		"Analyze the cascading effects of submarine cable failures between Europe and Asia",
		"A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable.",
	}
	var jobs []*arachnet.Job
	for _, q := range queries {
		j, err := sys.Submit(ctx, q)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d accepted (%s)\n", j.ID(), j.State())
		jobs = append(jobs, j)
	}
	for _, j := range jobs {
		rep, err := j.Wait(ctx)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("job %d %s: %d steps, quality %.2f in %v\n",
			j.ID(), j.State(), len(rep.Design.Chosen.Steps),
			rep.Result.QualityScore(), rep.Elapsed.Round(time.Millisecond))
	}
}

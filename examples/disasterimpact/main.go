// Disaster impact: the paper's Case Study 2. The agent processes every
// severe earthquake and hurricane scenario under a 10% infrastructure
// failure probability, and the example verifies that the generated
// workflow is functionally identical to the hand-written expert one —
// including the "skilled restraint" of staying inside one framework.
package main

import (
	"context"
	"fmt"
	"log"

	"arachnet"
)

func main() {
	sys, err := arachnet.New(arachnet.WithSmallWorld(7))
	if err != nil {
		log.Fatal(err)
	}

	const query = "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability"
	rep, err := sys.Ask(context.Background(), query)
	if err != nil {
		log.Fatal(err)
	}

	agent := rep.Result.Outputs["combination"].(arachnet.GlobalImpact)
	fmt.Printf("agent processed %d disaster scenarios; expected links lost: %.1f\n",
		len(agent.Events), agent.ExpectedLinksLost)
	fmt.Println("frameworks used:", rep.Design.Chosen.Frameworks(sys.Registry()))

	// Compare with the specialist solution.
	expert, err := arachnet.ExpertDisasterImpact(sys, 0.10)
	if err != nil {
		log.Fatal(err)
	}
	sim := arachnet.CompareImpact(arachnet.GlobalToReport(agent), arachnet.GlobalToReport(expert))
	fmt.Printf("agreement with expert workflow: top-K overlap %.2f, recall %.2f, score MAE %.4f\n",
		sim.TopKJaccard, sim.CountryRecall, sim.ScoreMAE)

	fmt.Println("\nworst-affected countries (expectation under 10% failure):")
	fmt.Println(arachnet.RenderImpact(arachnet.GlobalToReport(agent), 10))
}

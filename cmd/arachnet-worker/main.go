// Command arachnet-worker runs one fleet worker as its own OS
// process: it generates the same world a coordinator does (identical
// -world/-seed derivation), takes ownership of one shard of the
// -shards partition, and serves shard-local capability execution over
// HTTP (see internal/fleetwire). Point a coordinator at a set of
// workers with -fleet-remote on arachnet, arachnet-bench or
// arachnet-serve.
//
// Example — a two-worker fleet on one machine:
//
//	arachnet-worker -addr 127.0.0.1:9101 -world small -shards 2 -index 0 &
//	arachnet-worker -addr 127.0.0.1:9102 -world small -shards 2 -index 1 &
//	arachnet -world small -fleet-remote 127.0.0.1:9101,127.0.0.1:9102 \
//	  -query "Identify the impact at a country level due to SeaMeWe-5 cable failure"
//
// The coordinator registers against each worker before routing work
// to it; a worker whose shard fingerprint or capability-catalog
// generation disagrees (wrong seed, world size, shard count or binary
// version) is rejected and its shard served in-process instead.
// SIGINT/SIGTERM shuts the worker down gracefully; the coordinator
// fails the shard over to its in-process twin, so in-flight asks
// complete either way.
//
// Pass -scenario when the coordinator injects the cable-failure
// scenario: scenario-reading capabilities (e.g. the traceroute
// archive-window scatter) then execute on the worker's own identical
// scenario copy. Without it such requests are refused and served by
// the coordinator's in-process fallback — correct, just not remote.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"arachnet/internal/core"
	"arachnet/internal/fleetwire"
	"arachnet/internal/netsim"
)

func main() {
	var (
		addr     = flag.String("addr", ":9100", "listen address")
		world    = flag.String("world", "full", "world size: full|small (must match the coordinator)")
		seed     = flag.Uint64("seed", 42, "world seed (must match the coordinator)")
		shards   = flag.Int("shards", 1, "total shard count of the fleet (must match the coordinator's worker count)")
		index    = flag.Int("index", 0, "which shard this worker owns (0-based)")
		entries  = flag.Int("cache-entries", 512, "per-shard step cache size (0 disables caching)")
		scenario = flag.Bool("scenario", false, "inject the cable-failure measurement scenario (must match the coordinator's -scenario)")
	)
	flag.Parse()

	var worldCfg netsim.Config
	switch *world {
	case "full":
		worldCfg = netsim.DefaultConfig(*seed)
	case "small":
		worldCfg = netsim.SmallConfig(*seed)
	default:
		fatal(fmt.Errorf("unknown world %q", *world))
	}
	env, err := core.NewEnvironment(worldCfg)
	if err != nil {
		fatal(err)
	}
	if *scenario {
		if err := env.InjectCableFailureScenario(core.ScenarioConfig{Seed: *seed}); err != nil {
			fatal(err)
		}
	}
	srv, err := fleetwire.NewServer(env, core.BuiltinRegistry(), *shards, *index, *entries)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("arachnet-worker: %s listening on %s (world=%s seed=%d)",
			srv.Handshake(), *addr, *world, *seed)
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("arachnet-worker: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("arachnet-worker: shutdown: %v", err)
	}
	log.Printf("arachnet-worker: bye")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arachnet-worker:", err)
	os.Exit(1)
}

// Command worldgen generates a synthetic world and prints its
// inventory: AS tiers, link media, cable mapping coverage and the
// busiest cables — the inspection tool for choosing scenario seeds.
// With -shards it additionally partitions the world for a worker
// fleet and prints (or emits, with -shards and the default output)
// the per-shard inventory; -scale multiplies the density knobs to
// generate the 10-100x worlds the fleet exists to serve.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
)

func main() {
	var (
		seed   = flag.Uint64("seed", 42, "world seed")
		small  = flag.Bool("small", false, "use the compact 12-country world")
		top    = flag.Int("top", 10, "how many cables to list")
		shards = flag.Int("shards", 0, "partition the world into N fleet shards and print the per-shard inventory")
		scale  = flag.Int("scale", 1, "multiply world density (stubs per country, tier-2 per region, content ASes) by this factor")
	)
	flag.Parse()

	cfg := netsim.DefaultConfig(*seed)
	if *small {
		cfg = netsim.SmallConfig(*seed)
	}
	if *scale > 1 {
		cfg.StubsPerCountry *= *scale
		cfg.Tier2PerRegion *= *scale
		cfg.ContentCount *= *scale
	}
	w, err := netsim.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Println("world:", w.Summary())

	if *shards > 0 {
		p, err := netsim.PartitionWorld(w, *shards)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("partition: %d shards\n", p.N)
		for _, s := range p.Shards {
			fmt.Printf("  shard %d: %3d countries %5d routers %6d links  %v\n",
				s.Index, len(s.Countries), s.Routers, s.Links, s.Countries)
		}
	}

	tiers := map[netsim.Tier]int{}
	for _, a := range w.ASes {
		tiers[a.Tier]++
	}
	fmt.Printf("tiers: tier1=%d tier2=%d stub=%d content=%d\n",
		tiers[netsim.Tier1], tiers[netsim.Tier2], tiers[netsim.Stub], tiers[netsim.Content])

	cat := nautilus.BuildCatalog()
	m, err := nautilus.MapWorld(w, cat)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("cross-layer map: %.0f%% of %d submarine links mapped, %d unmapped\n",
		m.Coverage(w)*100, len(w.SubmarineLinks()), len(m.Unmapped))

	type load struct {
		id nautilus.CableID
		n  int
	}
	var loads []load
	for _, c := range cat.Cables() {
		if n := len(m.LinksOn(c.ID)); n > 0 {
			loads = append(loads, load{id: c.ID, n: n})
		}
	}
	sort.Slice(loads, func(i, j int) bool {
		if loads[i].n != loads[j].n {
			return loads[i].n > loads[j].n
		}
		return loads[i].id < loads[j].id
	})
	fmt.Printf("busiest cables (of %d in catalog, %d carrying traffic):\n", cat.Len(), len(loads))
	for i, l := range loads {
		if i >= *top {
			break
		}
		c, _ := cat.ByID(l.id)
		fmt.Printf("  %-18s %3d links  (%s)\n", l.id, l.n, c.Name)
	}
	if v := m.ValidateSoL(w, 0.05); len(v) > 0 {
		fmt.Printf("speed-of-light violations at tolerance 0.05: %d\n", len(v))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "worldgen:", err)
	os.Exit(1)
}

// Command arachnet-serve runs the ArachNet pipeline as a long-lived
// multi-tenant HTTP service: synchronous asks, asynchronous jobs with
// SSE event streaming, cancellation, and cache/queue stats, all over
// one simulated world with per-tenant registry views, cache quotas and
// weighted-fair scheduling.
//
// Examples:
//
//	arachnet-serve -addr :8080 -world small
//	arachnet-serve -addr :8080 -scenario -tenants tenants.json -workers 8
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/ask \
//	  -d '{"query":"Identify the impact at a country level due to SeaMeWe-5 cable failure"}'
//
// A tenants.json file is a JSON array of tenant configurations:
//
//	[
//	  {"name": "alice", "weight": 3, "max_running": 4},
//	  {"name": "bob", "weight": 1, "max_queued": 16, "token": "s3cret"}
//	]
//
// With no -tenants file the server runs one open tenant named
// "default". SIGINT/SIGTERM triggers a graceful shutdown: new requests
// are refused, accepted jobs drain (bounded by -drain-timeout), then
// the process exits.
//
// With -snapshot FILE the server persists its warm caches across
// restarts: each tenant's plan and step caches are written to the file
// during graceful shutdown and restored at the next boot (when the
// world, seed, registry and scenario still match — a mismatch is
// logged and the tenant starts cold). A restarted server answers its
// first repeated query as a cache hit. With multiple tenants each
// tenant uses FILE.<name>.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"arachnet/internal/core"
	"arachnet/internal/netsim"
	"arachnet/internal/serve"
)

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		world        = flag.String("world", "full", "world size: full|small")
		seed         = flag.Uint64("seed", 42, "world seed")
		scenario     = flag.Bool("scenario", false, "inject a cable-failure measurement scenario (enables cascade/forensic queries)")
		workers      = flag.Int("workers", 0, "scheduler worker pool size (0 = GOMAXPROCS)")
		depth        = flag.Int("depth", 0, "global job queue depth (0 = default 128)")
		timeout      = flag.Duration("timeout", 2*time.Minute, "default per-request pipeline timeout (0 = unbounded)")
		maxTimeout   = flag.Duration("max-timeout", 10*time.Minute, "cap on client-requested timeouts (0 = uncapped)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "how long shutdown waits for in-flight jobs")
		fleetN       = flag.Int("fleet", 0, "shard each tenant's world over N fleet workers; fan-out steps scatter-gather across shards (0 = inline execution)")
		fleetRemote  = flag.String("fleet-remote", "", "comma-separated arachnet-worker addresses (host:port,...), one per shard; overrides -fleet")
		tenantsPath  = flag.String("tenants", "", "path to a JSON array of tenant configurations (empty = one open tenant)")
		snapshot     = flag.String("snapshot", "", "cache snapshot file: loaded per tenant at boot (if present and matching), rewritten during graceful shutdown — a restarted server answers repeated queries warm; with multiple tenants each uses file.<tenant>")
	)
	flag.Parse()

	var worldCfg netsim.Config
	switch *world {
	case "full":
		worldCfg = netsim.DefaultConfig(*seed)
	case "small":
		worldCfg = netsim.SmallConfig(*seed)
	default:
		fatal(fmt.Errorf("unknown world %q", *world))
	}
	env, err := core.NewEnvironment(worldCfg)
	if err != nil {
		fatal(err)
	}
	if *scenario {
		if err := env.InjectCableFailureScenario(core.ScenarioConfig{Seed: *seed}); err != nil {
			fatal(err)
		}
	}

	cfg := serve.Config{
		Env:            env,
		Workers:        *workers,
		QueueDepth:     *depth,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		Fleet:          *fleetN,
		FleetRemote:    splitAddrs(*fleetRemote),
	}
	if *tenantsPath != "" {
		data, err := os.ReadFile(*tenantsPath)
		if err != nil {
			fatal(err)
		}
		if err := json.Unmarshal(data, &cfg.Tenants); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *tenantsPath, err))
		}
	}

	server, err := serve.NewServer(cfg)
	if err != nil {
		fatal(err)
	}

	// Tenant snapshot paths: a single tenant owns the file as given;
	// multiple tenants each get a ".<name>" suffix so their isolated
	// caches never mix.
	tenantNames := []string{"default"}
	if len(cfg.Tenants) > 0 {
		tenantNames = tenantNames[:0]
		for _, tc := range cfg.Tenants {
			tenantNames = append(tenantNames, tc.Name)
		}
	}
	snapshotPath := func(tenant string) string {
		if len(tenantNames) == 1 {
			return *snapshot
		}
		return *snapshot + "." + tenant
	}
	if *snapshot != "" {
		for _, name := range tenantNames {
			t := server.Tenant(name)
			if t == nil {
				continue
			}
			loadSnapshot(t.System(), name, snapshotPath(name))
		}
	}

	httpSrv := &http.Server{Addr: *addr, Handler: server}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("arachnet-serve: listening on %s (world=%s, tenants=%d)",
			*addr, *world, max(1, len(cfg.Tenants)))
		errc <- httpSrv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("arachnet-serve: draining (up to %v)...", *drainTimeout)

	// Refuse new work and drain accepted jobs first; in-flight SSE
	// streams and synchronous asks then finish on their own, so the
	// HTTP shutdown below completes promptly.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := server.Shutdown(drainCtx); err != nil {
		log.Printf("arachnet-serve: drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Printf("arachnet-serve: http shutdown: %v", err)
	}
	// Snapshot after the drain: the caches are quiescent, so the file
	// captures exactly the warm state the next boot restores.
	if *snapshot != "" {
		for _, name := range tenantNames {
			t := server.Tenant(name)
			if t == nil {
				continue
			}
			saveSnapshot(t.System(), name, snapshotPath(name))
		}
	}
	log.Printf("arachnet-serve: bye")
}

// loadSnapshot restores one tenant's cache snapshot. A missing file is
// a normal first boot; a mismatched one (different world, seed,
// registry or scenario) leaves the tenant cold — snapshots accelerate,
// they never gate serving.
func loadSnapshot(sys *core.System, tenant, path string) {
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			log.Printf("arachnet-serve: snapshot %s (tenant %s): %v (starting cold)", path, tenant, err)
		}
		return
	}
	defer f.Close()
	if err := sys.LoadSnapshot(f); err != nil {
		log.Printf("arachnet-serve: snapshot %s (tenant %s) rejected: %v (starting cold)", path, tenant, err)
		return
	}
	log.Printf("arachnet-serve: snapshot %s (tenant %s) loaded", path, tenant)
}

// saveSnapshot writes one tenant's cache snapshot atomically (temp
// file + rename), so a crash mid-write never corrupts the previous
// snapshot.
func saveSnapshot(sys *core.System, tenant, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		log.Printf("arachnet-serve: snapshot %s (tenant %s): %v", path, tenant, err)
		return
	}
	if err := sys.SaveSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		log.Printf("arachnet-serve: snapshot %s (tenant %s): %v", path, tenant, err)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		log.Printf("arachnet-serve: snapshot %s (tenant %s): %v", path, tenant, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		log.Printf("arachnet-serve: snapshot %s (tenant %s): %v", path, tenant, err)
		return
	}
	log.Printf("arachnet-serve: snapshot %s (tenant %s) saved", path, tenant)
}

func splitAddrs(s string) []string {
	var addrs []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	return addrs
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arachnet-serve:", err)
	os.Exit(1)
}

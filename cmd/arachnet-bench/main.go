// Command arachnet-bench regenerates the paper's evaluation artifacts:
// the four case studies (agent vs expert comparison), the generated-LoC
// table, the adaptive-exploration ablation, and the registry-evolution
// experiment. Its output is the source for EXPERIMENTS.md.
//
// Usage:
//
//	arachnet-bench             # every experiment
//	arachnet-bench -case 3     # one case study
//	arachnet-bench -loc        # the LoC table only
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"arachnet"
	"arachnet/internal/core"
	"arachnet/internal/fleetwire"
	"arachnet/internal/netsim"
)

// ctx spans the whole experiment run; individual Asks are uncancelled.
var ctx = context.Background()

// ask runs one evaluation query without curation, so experiment order
// never perturbs the registry under measurement.
func ask(sys *arachnet.System, query string) *arachnet.Report {
	rep, err := sys.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		fatal(err)
	}
	return rep
}

// The paper's case-study queries, verbatim.
var queries = map[int]string{
	1: "Identify the impact at a country level due to SeaMeWe-5 cable failure",
	2: "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability",
	3: "Analyze the cascading effects of submarine cable failures between Europe and Asia",
	4: "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable.",
}

// paperLoC is the generated-workflow size the paper reports per case.
var paperLoC = map[int]int{1: 250, 2: 300, 3: 525, 4: 750}

func main() {
	var (
		onlyCase    = flag.Int("case", 0, "run a single case study (1-4); 0 = all")
		locOnly     = flag.Bool("loc", false, "print only the LoC table")
		servingOnly = flag.Bool("serving", false, "print only the async serving throughput experiment")
		cacheOnly   = flag.Bool("cache", false, "print only the memoized serving experiment (cold vs warm latencies + hit ratios)")
		world       = flag.String("world", "full", "world size for -cache: full|small")
		jsonPath    = flag.String("json", "", "with -cache, -fleetbench or -wirebench, also write the results as JSON to this path (e.g. BENCH_5.json, BENCH_8.json, BENCH_9.json)")
		seed        = flag.Uint64("seed", 42, "world seed")
		fleetN      = flag.Int("fleet", 0, "shard the world over N fleet workers for every experiment (0 = inline execution)")
		fleetBench  = flag.Bool("fleetbench", false, "print only the fleet-scaling experiment (fleet 0/1/4 cold+warm latency and allocations, plus a ≥10x world)")
		wireBench   = flag.Bool("wirebench", false, "print only the remote-fleet experiment (real HTTP workers on loopback vs the in-process fleet, cold+warm)")
		compBench   = flag.Bool("compiledbench", false, "print only the compiled-plan experiment (interpreted vs compiled warm path per case, plus snapshot save/load and cold-vs-snapshot restart)")
	)
	flag.Parse()
	fleetOpt := func(opts []arachnet.Option) []arachnet.Option {
		if *fleetN > 0 {
			opts = append(opts, arachnet.WithFleet(*fleetN))
		}
		return opts
	}

	if *servingOnly {
		serving(*seed)
		return
	}
	if *cacheOnly {
		cacheExperiment(*seed, *world, *jsonPath, fleetOpt)
		return
	}
	if *fleetBench {
		fleetExperiment(*seed, *world, *jsonPath)
		return
	}
	if *wireBench {
		wireExperiment(*seed, *world, *jsonPath)
		return
	}
	if *compBench {
		compiledExperiment(*seed, *world, *jsonPath)
		return
	}

	sys, err := arachnet.New(fleetOpt([]arachnet.Option{
		arachnet.WithSeed(*seed),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: *seed}),
	})...)
	if err != nil {
		fatal(err)
	}

	if *locOnly {
		locTable(sys)
		return
	}
	cases := []int{1, 2, 3, 4}
	if *onlyCase != 0 {
		cases = []int{*onlyCase}
	}
	for _, n := range cases {
		switch n {
		case 1:
			case1(sys, *seed)
		case 2:
			case2(sys)
		case 3:
			case3(sys)
		case 4:
			case4(sys)
		default:
			fatal(fmt.Errorf("unknown case %d", n))
		}
	}
	if *onlyCase == 0 {
		locTable(sys)
		evolution(*seed)
		serving(*seed)
	}
}

// serving measures the async job subsystem: all four case-study
// queries, several rounds, submitted up front and drained through
// Job.Wait — the serving-surface counterpart of the per-call tables
// above.
func serving(seed uint64) {
	header("Async serving (bounded job queue, worker pool)")
	sys, err := arachnet.New(
		arachnet.WithSeed(seed),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: seed}),
	)
	if err != nil {
		fatal(err)
	}
	keys := make([]int, 0, len(queries))
	for n := range queries {
		keys = append(keys, n)
	}
	sort.Ints(keys)

	const rounds = 3
	start := time.Now()
	var jobs []*arachnet.Job
	for r := 0; r < rounds; r++ {
		for _, n := range keys {
			j, err := sys.Submit(ctx, queries[n], arachnet.AskWithoutCuration())
			if err != nil {
				fatal(err)
			}
			jobs = append(jobs, j)
		}
	}
	queuedPeak := 0
	for _, j := range sys.Jobs() {
		if j.State() == arachnet.JobQueued {
			queuedPeak++
		}
	}
	var sequential time.Duration
	for _, j := range jobs {
		rep, err := j.Wait(ctx)
		if err != nil {
			fatal(err)
		}
		sequential += rep.Elapsed
	}
	wall := time.Since(start)
	fmt.Printf("%d jobs accepted up front (%d still queued right after submission)\n", len(jobs), queuedPeak)
	fmt.Printf("wall clock %v vs %v summed pipeline time (%.1fx, %.1f jobs/s)\n",
		wall.Round(time.Millisecond), sequential.Round(time.Millisecond),
		float64(sequential)/float64(wall), float64(len(jobs))/wall.Seconds())
}

func header(title string) {
	fmt.Printf("\n════ %s ════\n", title)
}

// cacheCaseResult is one query's cold-vs-warm measurement.
type cacheCaseResult struct {
	Case    int     `json:"case"`
	Query   string  `json:"query"`
	ColdMs  float64 `json:"cold_ms"`
	WarmMs  float64 `json:"warm_ms"` // median of the warm rounds
	Speedup float64 `json:"speedup"`
}

// cacheJSONCounters mirrors arachnet.CacheCounters for the report.
type cacheJSONCounters struct {
	Hits      int64   `json:"hits"`
	Misses    int64   `json:"misses"`
	Evictions int64   `json:"evictions"`
	Entries   int     `json:"entries"`
	Bytes     int64   `json:"bytes"`
	HitRatio  float64 `json:"hit_ratio"`
}

func toJSONCounters(c arachnet.CacheCounters) cacheJSONCounters {
	return cacheJSONCounters{
		Hits: c.Hits, Misses: c.Misses, Evictions: c.Evictions,
		Entries: c.Entries, Bytes: c.Bytes, HitRatio: c.HitRatio(),
	}
}

// cacheReport is the BENCH_5.json schema: the first recorded point of
// the repo's perf trajectory (cold vs warm serving latency + cache hit
// ratios per PR 5's memoized-serving refactor).
type cacheReport struct {
	Benchmark  string            `json:"benchmark"`
	PR         int               `json:"pr"`
	World      string            `json:"world"`
	Seed       uint64            `json:"seed"`
	WarmRounds int               `json:"warm_rounds"`
	Cases      []cacheCaseResult `json:"cases"`
	ColdMsSum  float64           `json:"cold_ms_total"`
	WarmMsSum  float64           `json:"warm_ms_total"`
	Speedup    float64           `json:"speedup"`
	PlanCache  cacheJSONCounters `json:"plan_cache"`
	StepCache  cacheJSONCounters `json:"step_cache"`
}

// cacheExperiment measures memoized serving: every case-study query
// cold (first contact, caches empty) and warm (median of repeat
// rounds), plus the resulting hit ratios. With -json the report also
// lands on disk for trajectory tracking.
func cacheExperiment(seed uint64, world, jsonPath string, fleetOpt func([]arachnet.Option) []arachnet.Option) {
	header("Memoized serving (plan + step caches, cold vs warm)")
	opts := fleetOpt([]arachnet.Option{arachnet.WithScenario(arachnet.ScenarioConfig{Seed: seed})})
	switch world {
	case "full":
		opts = append(opts, arachnet.WithSeed(seed))
	case "small":
		opts = append(opts, arachnet.WithSmallWorld(seed))
	default:
		fatal(fmt.Errorf("unknown world %q", world))
	}
	sys, err := arachnet.New(opts...)
	if err != nil {
		fatal(err)
	}

	const warmRounds = 5
	rep := cacheReport{
		Benchmark: "memoized-serving-cold-vs-warm", PR: 5,
		World: world, Seed: seed, WarmRounds: warmRounds,
	}
	keys := make([]int, 0, len(queries))
	for n := range queries {
		keys = append(keys, n)
	}
	sort.Ints(keys)

	// Case studies share capability sub-chains, so without a flush the
	// step cache warmed by one case would contaminate the next case's
	// "cold" number. Disable-then-re-arm empties both caches while
	// keeping the stock bounds.
	flushCaches := func() {
		sys.SetCacheLimits(0, 0, 0)
		sys.SetCacheLimits(arachnet.DefaultPlanCacheEntries,
			arachnet.DefaultStepCacheEntries, arachnet.DefaultStepCacheBytes)
	}

	fmt.Printf("%-6s %12s %12s %10s\n", "case", "cold", "warm(med)", "speedup")
	for _, n := range keys {
		flushCaches()
		cold := timeAsk(sys, queries[n])
		warms := make([]time.Duration, warmRounds)
		for r := range warms {
			warms[r] = timeAsk(sys, queries[n])
		}
		sort.Slice(warms, func(i, j int) bool { return warms[i] < warms[j] })
		warm := warms[warmRounds/2]
		res := cacheCaseResult{
			Case: n, Query: queries[n],
			ColdMs: ms(cold), WarmMs: ms(warm),
			Speedup: float64(cold) / float64(warm),
		}
		rep.Cases = append(rep.Cases, res)
		rep.ColdMsSum += res.ColdMs
		rep.WarmMsSum += res.WarmMs
		fmt.Printf("CS%-5d %12v %12v %9.1fx\n", n,
			cold.Round(time.Microsecond), warm.Round(time.Microsecond), res.Speedup)
	}
	if rep.WarmMsSum > 0 {
		rep.Speedup = rep.ColdMsSum / rep.WarmMsSum
	}
	st := sys.CacheStats()
	rep.PlanCache = toJSONCounters(st.Plan)
	rep.StepCache = toJSONCounters(st.Step)
	fmt.Printf("total: cold %.1fms vs warm %.1fms (%.1fx)\n", rep.ColdMsSum, rep.WarmMsSum, rep.Speedup)
	fmt.Printf("plan cache: %d/%d hits (ratio %.2f); step cache: %d/%d hits (ratio %.2f, ~%dKiB)\n",
		st.Plan.Hits, st.Plan.Hits+st.Plan.Misses, st.Plan.HitRatio(),
		st.Step.Hits, st.Step.Hits+st.Step.Misses, st.Step.HitRatio(), st.Step.Bytes/1024)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// fleetConfigResult is one fleet size's measurement: latency and
// allocation counts for the first (cold, caches empty) and repeat
// (warm) servings of the fan-out query.
type fleetConfigResult struct {
	Fleet      int     `json:"fleet"` // 0 = inline execution, no fleet
	ColdMs     float64 `json:"cold_ms"`
	WarmMs     float64 `json:"warm_ms"` // median of the warm rounds
	ColdAllocs uint64  `json:"cold_allocs"`
	WarmAllocs uint64  `json:"warm_allocs"`
	Scattered  uint64  `json:"scattered,omitempty"`
	ShardLocal uint64  `json:"shard_local,omitempty"`
	Declined   uint64  `json:"declined,omitempty"`
	WorkerHits uint64  `json:"worker_cache_hits,omitempty"`
}

// fleetBigWorld records the ≥10x world the fleet unlocks: generation,
// partition and environment-build costs plus a full fleet-served ask.
type fleetBigWorld struct {
	Scale       int     `json:"scale"`
	Routers     int     `json:"routers"`
	Links       int     `json:"links"`
	NodeRatio   float64 `json:"node_ratio"` // vs the default full world
	GenerateMs  float64 `json:"generate_ms"`
	PartitionMs float64 `json:"partition_ms"`
	EnvMs       float64 `json:"env_ms"`
	Fleet       int     `json:"fleet"`
	ColdMs      float64 `json:"cold_ms"`
	WarmMs      float64 `json:"warm_ms"`
	Scattered   uint64  `json:"scattered"`
}

// fleetReport is the BENCH_8.json schema: the fleet-scaling point of
// the perf trajectory (distributed scatter-gather execution, PR 8).
type fleetReport struct {
	Benchmark  string              `json:"benchmark"`
	PR         int                 `json:"pr"`
	World      string              `json:"world"`
	Seed       uint64              `json:"seed"`
	Query      string              `json:"query"`
	WarmRounds int                 `json:"warm_rounds"`
	Configs    []fleetConfigResult `json:"configs"`
	BigWorld   fleetBigWorld       `json:"big_world"`
}

// askAllocs times one curation-free Ask and reports the heap
// allocations it performed (Mallocs delta around the call; the
// ReadMemStats stops-the-world sit outside the timed region).
func askAllocs(sys *arachnet.System, query string) (time.Duration, uint64) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if _, err := sys.Ask(ctx, query, arachnet.AskWithoutCuration()); err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&m1)
	return elapsed, m1.Mallocs - m0.Mallocs
}

// cs1System builds a system over the paper's controlled CS1 registry
// subset — the one whose plan takes the fan-out chain (cable → links →
// extract_ips → locate_ips → rollup) whose middle steps scatter over
// shards. The full registry plans CS1 through the single aggregate
// step xaminer.impact_from_links, which stays on the coordinator.
func cs1System(opts ...arachnet.Option) *arachnet.System {
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		fatal(err)
	}
	sys, err := arachnet.New(append(opts, arachnet.WithRegistry(sub))...)
	if err != nil {
		fatal(err)
	}
	return sys
}

// fleetExperiment measures DIMES-style sharded execution: the CS1
// fan-out query (cable → links → extract_ips → locate_ips → rollup,
// whose middle steps scatter over shards) served inline (fleet 0),
// by a degenerate fleet of one, and by a fleet of four — cold and
// warm, with allocation counts — then demonstrates the capability
// the fleet exists for: a world ≥10x the default node count, served
// end-to-end through a fleet of four.
func fleetExperiment(seed uint64, world, jsonPath string) {
	header("Fleet scaling (sharded scatter-gather vs inline execution)")
	const warmRounds = 5
	query := queries[1]
	rep := fleetReport{
		Benchmark: "fleet-scaling", PR: 8,
		World: world, Seed: seed, Query: query, WarmRounds: warmRounds,
	}

	worldOpt := arachnet.WithSeed(seed)
	if world == "small" {
		worldOpt = arachnet.WithSmallWorld(seed)
	}
	fmt.Printf("%-8s %12s %12s %14s %14s\n", "fleet", "cold", "warm(med)", "cold allocs", "warm allocs")
	for _, n := range []int{0, 1, 4} {
		opts := []arachnet.Option{worldOpt}
		if n > 0 {
			opts = append(opts, arachnet.WithFleet(n))
		}
		sys := cs1System(opts...)
		cold, coldAllocs := askAllocs(sys, query)
		warms := make([]time.Duration, warmRounds)
		var warmAllocs uint64
		for r := range warms {
			warms[r], warmAllocs = askAllocs(sys, query)
		}
		sort.Slice(warms, func(i, j int) bool { return warms[i] < warms[j] })
		res := fleetConfigResult{
			Fleet:  n,
			ColdMs: ms(cold), WarmMs: ms(warms[warmRounds/2]),
			ColdAllocs: coldAllocs, WarmAllocs: warmAllocs,
		}
		if fs := sys.Fleet(); fs != nil {
			st := fs.Stats()
			res.Scattered, res.ShardLocal, res.Declined = st.Scattered, st.ShardLocal, st.Declined
			for _, sh := range st.Shards {
				res.WorkerHits += sh.CacheHits
			}
			fs.Close()
		}
		rep.Configs = append(rep.Configs, res)
		fmt.Printf("%-8d %12v %12v %14d %14d\n", n,
			cold.Round(time.Microsecond), warms[warmRounds/2].Round(time.Microsecond),
			coldAllocs, warmAllocs)
	}

	// The ≥10x world: scale the density knobs until routers exceed ten
	// times the default full world, then serve the same query through
	// a fleet of four.
	const bigScale = 15
	defCfg := netsim.DefaultConfig(seed)
	bigCfg := defCfg
	bigCfg.StubsPerCountry *= bigScale
	bigCfg.Tier2PerRegion *= bigScale
	bigCfg.ContentCount *= bigScale

	defWorld, err := netsim.Generate(defCfg)
	if err != nil {
		fatal(err)
	}
	t0 := time.Now()
	bigWorld, err := netsim.Generate(bigCfg)
	if err != nil {
		fatal(err)
	}
	genMs := ms(time.Since(t0))
	t0 = time.Now()
	if _, err := netsim.PartitionWorld(bigWorld, 4); err != nil {
		fatal(err)
	}
	partMs := ms(time.Since(t0))
	t0 = time.Now()
	bigSys := cs1System(arachnet.WithWorldConfig(bigCfg), arachnet.WithFleet(4))
	bw := fleetBigWorld{
		Scale:   bigScale,
		Routers: bigWorld.Summary().Routers, Links: bigWorld.Summary().IPLinks,
		NodeRatio:  float64(bigWorld.Summary().Routers) / float64(defWorld.Summary().Routers),
		GenerateMs: genMs, PartitionMs: partMs, EnvMs: ms(time.Since(t0)),
		Fleet: 4,
	}
	bigCold, _ := askAllocs(bigSys, query)
	bigWarms := make([]time.Duration, warmRounds)
	for r := range bigWarms {
		bigWarms[r], _ = askAllocs(bigSys, query)
	}
	sort.Slice(bigWarms, func(i, j int) bool { return bigWarms[i] < bigWarms[j] })
	bw.ColdMs, bw.WarmMs = ms(bigCold), ms(bigWarms[warmRounds/2])
	if fs := bigSys.Fleet(); fs != nil {
		bw.Scattered = fs.Stats().Scattered
		fs.Close()
	}
	rep.BigWorld = bw
	fmt.Printf("big world: scale %dx → %d routers (%.1fx default), %d links; gen %.0fms partition %.0fms env %.0fms\n",
		bw.Scale, bw.Routers, bw.NodeRatio, bw.Links, bw.GenerateMs, bw.PartitionMs, bw.EnvMs)
	fmt.Printf("big world fleet-4 ask: cold %.1fms warm %.1fms (%d scattered steps)\n",
		bw.ColdMs, bw.WarmMs, bw.Scattered)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// wireConfigResult is one execution mode's measurement in the
// remote-fleet experiment.
type wireConfigResult struct {
	Mode       string  `json:"mode"` // "in-process" | "remote"
	ColdMs     float64 `json:"cold_ms"`
	WarmMs     float64 `json:"warm_ms"` // median of the warm rounds
	Scattered  uint64  `json:"scattered"`
	Requests   uint64  `json:"wire_requests,omitempty"`
	Retries    uint64  `json:"wire_retries,omitempty"`
	Failovers  uint64  `json:"wire_failovers,omitempty"`
	BytesSent  uint64  `json:"wire_bytes_sent,omitempty"`
	BytesRecv  uint64  `json:"wire_bytes_received,omitempty"`
	Registered int     `json:"wire_registered,omitempty"`
}

// wireReport is the BENCH_9.json schema: the multi-process point of
// the perf trajectory — the same CS1 fan-out query served by the
// in-process fleet and by real arachnet-worker HTTP servers on
// loopback (PR 9).
type wireReport struct {
	Benchmark  string             `json:"benchmark"`
	PR         int                `json:"pr"`
	World      string             `json:"world"`
	Seed       uint64             `json:"seed"`
	Query      string             `json:"query"`
	Workers    int                `json:"workers"`
	WarmRounds int                `json:"warm_rounds"`
	BootMs     float64            `json:"worker_boot_ms"` // spawn all workers (world gen included)
	Configs    []wireConfigResult `json:"configs"`
}

// wireExperiment measures what the wire costs: the CS1 fan-out query
// cold and warm through an in-process fleet of two, then through two
// real worker HTTP servers on loopback — same shards, same codec the
// multi-process deployment uses, per-request wire counters recorded.
func wireExperiment(seed uint64, world, jsonPath string) {
	header("Remote fleet wire (HTTP workers on loopback vs in-process)")
	const warmRounds = 5
	const workers = 2
	query := queries[1]
	rep := wireReport{
		Benchmark: "remote-fleet-wire", PR: 9,
		World: world, Seed: seed, Query: query,
		Workers: workers, WarmRounds: warmRounds,
	}

	worldOpt := arachnet.WithSeed(seed)
	worldCfg := netsim.DefaultConfig(seed)
	if world == "small" {
		worldOpt = arachnet.WithSmallWorld(seed)
		worldCfg = netsim.SmallConfig(seed)
	}

	measure := func(sys *arachnet.System, mode string) wireConfigResult {
		cold := timeAsk(sys, query)
		warms := make([]time.Duration, warmRounds)
		for r := range warms {
			warms[r] = timeAsk(sys, query)
		}
		sort.Slice(warms, func(i, j int) bool { return warms[i] < warms[j] })
		res := wireConfigResult{Mode: mode, ColdMs: ms(cold), WarmMs: ms(warms[warmRounds/2])}
		if fs := sys.Fleet(); fs != nil {
			st := fs.Stats()
			res.Scattered = st.Scattered
			if st.Wire != nil {
				res.Requests, res.Retries, res.Failovers = st.Wire.Requests, st.Wire.Retries, st.Wire.Failovers
				res.BytesSent, res.BytesRecv = st.Wire.BytesSent, st.Wire.BytesReceived
				res.Registered = st.Wire.Registered
			}
			fs.Close()
		}
		return res
	}

	rep.Configs = append(rep.Configs, measure(cs1System(worldOpt, arachnet.WithFleet(workers)), "in-process"))

	// Real workers: each its own environment over the same world config,
	// serving its shard on a loopback listener — the exact server
	// cmd/arachnet-worker runs, minus the process boundary.
	t0 := time.Now()
	addrs := make([]string, workers)
	stops := make([]func(), workers)
	for i := 0; i < workers; i++ {
		env, err := core.NewEnvironment(worldCfg)
		if err != nil {
			fatal(err)
		}
		srv, err := fleetwire.NewServer(env, core.BuiltinRegistry(), workers, i, 512)
		if err != nil {
			fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fatal(err)
		}
		hs := &http.Server{Handler: srv}
		go hs.Serve(ln)
		addrs[i] = ln.Addr().String()
		stops[i] = func() { hs.Close() }
	}
	rep.BootMs = ms(time.Since(t0))

	rep.Configs = append(rep.Configs, measure(cs1System(worldOpt, arachnet.WithRemoteFleet(addrs...)), "remote"))
	for _, stop := range stops {
		stop()
	}

	fmt.Printf("%-12s %12s %12s %10s %10s %10s\n", "mode", "cold", "warm(med)", "scattered", "requests", "bytes out")
	for _, c := range rep.Configs {
		fmt.Printf("%-12s %10.1fms %10.1fms %10d %10d %10d\n",
			c.Mode, c.ColdMs, c.WarmMs, c.Scattered, c.Requests, c.BytesSent)
	}
	fmt.Printf("worker boot (world gen + shard + listen) took %.0fms for %d workers\n", rep.BootMs, workers)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// compiledCaseResult compares one query's warm serving latency and
// allocation count between the interpreted and compiled execution
// paths (same system, same caches, A/B via SetCompiledPlans).
type compiledCaseResult struct {
	Case              int     `json:"case"`
	Query             string  `json:"query"`
	InterpretedWarmUs float64 `json:"interpreted_warm_us"` // median of the warm rounds
	CompiledWarmUs    float64 `json:"compiled_warm_us"`    // median of the warm rounds
	Speedup           float64 `json:"speedup"`
	InterpretedAllocs uint64  `json:"interpreted_warm_allocs"` // median of the warm rounds
	CompiledAllocs    uint64  `json:"compiled_warm_allocs"`    // median of the warm rounds
	AllocRatio        float64 `json:"alloc_ratio"`             // interpreted / compiled
}

// compiledSnapshotResult measures the persistence path: snapshot size
// and save/load time, plus the first-ask latency of a fresh process
// with and without the snapshot.
type compiledSnapshotResult struct {
	Bytes             int     `json:"bytes"`
	Queries           int     `json:"queries"`
	Steps             int     `json:"steps"`
	SaveMs            float64 `json:"save_ms"`
	LoadMs            float64 `json:"load_ms"`
	ColdRestartMs     float64 `json:"cold_restart_first_ask_ms"`
	SnapshotRestartMs float64 `json:"snapshot_restart_first_ask_ms"`
	RestartSpeedup    float64 `json:"restart_speedup"`
}

// compiledReport is the BENCH_10.json schema: the compiled-plan point
// of the perf trajectory — zero-reparse warm serving plus persistent
// cache snapshots (PR 10).
type compiledReport struct {
	Benchmark  string                 `json:"benchmark"`
	PR         int                    `json:"pr"`
	World      string                 `json:"world"`
	Seed       uint64                 `json:"seed"`
	WarmRounds int                    `json:"warm_rounds"`
	Cases      []compiledCaseResult   `json:"cases"`
	Snapshot   compiledSnapshotResult `json:"snapshot"`
}

// compiledExperiment measures what plan compilation buys on the warm
// path: every case-study query served warm with compiled execution
// disabled (the interpreted engine walks the workflow AST) and enabled
// (the cached compiled artifact replays with pooled scratch), on the
// same system with the same hot caches. It then exercises the
// persistence tier: save the warm system's snapshot, boot two fresh
// systems — one cold, one restored from the snapshot — and compare
// their first-ask latencies.
func compiledExperiment(seed uint64, world, jsonPath string) {
	header("Compiled plans (interpreted vs compiled warm path)")
	const warmRounds = 7
	rep := compiledReport{
		Benchmark: "compiled-plans-warm-path", PR: 10,
		World: world, Seed: seed, WarmRounds: warmRounds,
	}
	opts := []arachnet.Option{arachnet.WithScenario(arachnet.ScenarioConfig{Seed: seed})}
	switch world {
	case "full":
		opts = append(opts, arachnet.WithSeed(seed))
	case "small":
		opts = append(opts, arachnet.WithSmallWorld(seed))
	default:
		fatal(fmt.Errorf("unknown world %q", world))
	}
	sys, err := arachnet.New(opts...)
	if err != nil {
		fatal(err)
	}

	keys := make([]int, 0, len(queries))
	for n := range queries {
		keys = append(keys, n)
	}
	sort.Ints(keys)

	// Warm latency+allocs for the current execution mode: median over
	// the rounds, after two untimed warm-up asks.
	measureWarm := func(query string) (time.Duration, uint64) {
		ask(sys, query)
		ask(sys, query)
		times := make([]time.Duration, warmRounds)
		allocs := make([]uint64, warmRounds)
		for r := range times {
			times[r], allocs[r] = askAllocs(sys, query)
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		sort.Slice(allocs, func(i, j int) bool { return allocs[i] < allocs[j] })
		return times[warmRounds/2], allocs[warmRounds/2]
	}

	us := func(d time.Duration) float64 { return float64(d) / float64(time.Microsecond) }
	fmt.Printf("%-6s %14s %14s %9s %12s %12s %8s\n",
		"case", "interp warm", "compiled warm", "speedup", "interp alloc", "comp alloc", "ratio")
	for _, n := range keys {
		ask(sys, queries[n]) // cold run: populate plan, compiled artifact, step cache
		sys.SetCompiledPlans(false)
		iWarm, iAllocs := measureWarm(queries[n])
		sys.SetCompiledPlans(true)
		cWarm, cAllocs := measureWarm(queries[n])
		res := compiledCaseResult{
			Case: n, Query: queries[n],
			InterpretedWarmUs: us(iWarm), CompiledWarmUs: us(cWarm),
			Speedup:           float64(iWarm) / float64(cWarm),
			InterpretedAllocs: iAllocs, CompiledAllocs: cAllocs,
			AllocRatio: float64(iAllocs) / float64(cAllocs),
		}
		rep.Cases = append(rep.Cases, res)
		fmt.Printf("CS%-5d %14v %14v %8.1fx %12d %12d %7.1fx\n", n,
			iWarm.Round(100*time.Nanosecond), cWarm.Round(100*time.Nanosecond),
			res.Speedup, iAllocs, cAllocs, res.AllocRatio)
	}

	// Persistence: snapshot the warm system, then race a cold boot
	// against a snapshot-restored boot on their first ask of CS1.
	var buf bytes.Buffer
	t0 := time.Now()
	if err := sys.SaveSnapshot(&buf); err != nil {
		fatal(err)
	}
	rep.Snapshot.SaveMs = ms(time.Since(t0))
	rep.Snapshot.Bytes = buf.Len()
	var snap struct {
		Queries []string          `json:"queries"`
		Steps   []json.RawMessage `json:"steps"`
	}
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		fatal(err)
	}
	rep.Snapshot.Queries, rep.Snapshot.Steps = len(snap.Queries), len(snap.Steps)

	coldSys, err := arachnet.New(opts...)
	if err != nil {
		fatal(err)
	}
	rep.Snapshot.ColdRestartMs = ms(timeAsk(coldSys, queries[1]))

	warmSys, err := arachnet.New(opts...)
	if err != nil {
		fatal(err)
	}
	t0 = time.Now()
	if err := warmSys.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		fatal(err)
	}
	rep.Snapshot.LoadMs = ms(time.Since(t0))
	rep.Snapshot.SnapshotRestartMs = ms(timeAsk(warmSys, queries[1]))
	rep.Snapshot.RestartSpeedup = rep.Snapshot.ColdRestartMs / rep.Snapshot.SnapshotRestartMs

	fmt.Printf("snapshot: %d bytes (%d queries, %d steps); save %.1fms, load %.1fms\n",
		rep.Snapshot.Bytes, rep.Snapshot.Queries, rep.Snapshot.Steps,
		rep.Snapshot.SaveMs, rep.Snapshot.LoadMs)
	fmt.Printf("restart first ask: cold %.1fms vs snapshot %.2fms (%.0fx)\n",
		rep.Snapshot.ColdRestartMs, rep.Snapshot.SnapshotRestartMs, rep.Snapshot.RestartSpeedup)

	if jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", jsonPath)
	}
}

// timeAsk times one curation-free Ask (curation off keeps the registry
// — and with it the plan-cache generation — fixed under measurement).
func timeAsk(sys *arachnet.System, query string) time.Duration {
	start := time.Now()
	if _, err := sys.Ask(ctx, query, arachnet.AskWithoutCuration()); err != nil {
		fatal(err)
	}
	return time.Since(start)
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func case1(sys *arachnet.System, seed uint64) {
	header("Case Study 1: expert-level cable impact analysis (SeaMeWe-5)")
	// The paper's controlled setup: core Nautilus functions only.
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		fatal(err)
	}
	restricted, err := arachnet.New(
		arachnet.WithSeed(seed), arachnet.WithRegistry(sub),
	)
	if err != nil {
		fatal(err)
	}
	rep := ask(restricted, queries[1])
	agent := rep.Result.Outputs["aggregation"].(*arachnet.ImpactReport)
	expert, err := arachnet.ExpertCableImpact(restricted, "SeaMeWe-5")
	if err != nil {
		fatal(err)
	}
	sim := arachnet.CompareImpact(agent, expert)
	overlap := arachnet.FunctionalOverlap(rep, restricted, arachnet.ExpertCableImpactSteps())
	fmt.Printf("agent pipeline: %s\n", strings.Join(rep.Design.Chosen.CapabilityNames(), " → "))
	fmt.Printf("generated code: %d LoC (paper ≈%d)\n", rep.Solution.LoC, paperLoC[1])
	fmt.Printf("functional overlap with expert architecture: %.2f\n", overlap)
	fmt.Printf("output similarity: top-K Jaccard %.2f, Spearman %.2f, recall %.2f, MAE %.3f\n",
		sim.TopKJaccard, sim.Spearman, sim.CountryRecall, sim.ScoreMAE)
	fmt.Printf("agent top countries:  %v\n", agent.TopCountries(5))
	fmt.Printf("expert top countries: %v\n", expert.TopCountries(5))
}

func case2(sys *arachnet.System) {
	header("Case Study 2: natural disaster impact (10% failure probability)")
	rep := ask(sys, queries[2])
	agent := rep.Result.Outputs["combination"].(arachnet.GlobalImpact)
	expert, err := arachnet.ExpertDisasterImpact(sys, 0.10)
	if err != nil {
		fatal(err)
	}
	fws := rep.Design.Chosen.Frameworks(sys.Registry())
	fmt.Printf("agent pipeline: %s\n", strings.Join(rep.Design.Chosen.CapabilityNames(), " → "))
	fmt.Printf("frameworks used: %v (restraint: single analysis framework)\n", fws)
	fmt.Printf("generated code: %d LoC (paper ≈%d)\n", rep.Solution.LoC, paperLoC[2])
	fmt.Printf("events processed: agent %d, expert %d\n", len(agent.Events), len(expert.Events))
	fmt.Printf("expected links lost: agent %.1f, expert %.1f (identical=%v)\n",
		agent.ExpectedLinksLost, expert.ExpectedLinksLost,
		agent.ExpectedLinksLost == expert.ExpectedLinksLost)
	sim := arachnet.CompareImpact(arachnet.GlobalToReport(agent), arachnet.GlobalToReport(expert))
	fmt.Printf("output similarity: top-K Jaccard %.2f, recall %.2f\n", sim.TopKJaccard, sim.CountryRecall)
}

func case3(sys *arachnet.System) {
	header("Case Study 3: Europe–Asia cascading failure analysis")
	rep := ask(sys, queries[3])
	tl := rep.Result.Outputs["synthesis"].(*arachnet.Timeline)
	expert, err := arachnet.ExpertCascade(sys, arachnet.Europe, arachnet.Asia)
	if err != nil {
		fatal(err)
	}
	fws := rep.Design.Chosen.Frameworks(sys.Registry())
	fmt.Printf("agent pipeline: %s\n", strings.Join(rep.Design.Chosen.CapabilityNames(), " → "))
	fmt.Printf("frameworks integrated: %d (%v); paper reports 4\n", len(fws), fws)
	fmt.Printf("generated code: %d LoC (paper ≈%d)\n", rep.Solution.LoC, paperLoC[3])
	fmt.Printf("timeline layers: %v\n", tl.Layers())
	fmt.Printf("cascade: agent %d cables/%d rounds, expert %d cables/%d rounds\n",
		tl.CablesFailed, tl.CascadeRounds, len(expert.Cascade.Failed), len(expert.Cascade.Rounds))
	fmt.Printf("degraded ASes: agent %d, expert %d\n", tl.ASesDegraded, len(expert.Stress.Degraded))
	fmt.Printf("top countries: agent %v, expert %v\n", tl.TopCountries, expert.Timeline.TopCountries)
}

func case4(sys *arachnet.System) {
	header("Case Study 4: automated root cause investigation")
	rep := ask(sys, queries[4])
	agent := rep.Result.Outputs["verdict"].(arachnet.Verdict)
	expert, err := arachnet.ExpertForensic(sys)
	if err != nil {
		fatal(err)
	}
	truth := sys.Environment().Scenario.TrueCable
	fmt.Printf("agent pipeline: %s\n", strings.Join(rep.Design.Chosen.CapabilityNames(), " → "))
	fmt.Printf("generated code: %d LoC (paper ≈%d)\n", rep.Solution.LoC, paperLoC[4])
	fmt.Printf("ground truth cable: %s\n", truth)
	fmt.Printf("agent:  cause=%v cable=%s confidence=%.2f (stat=%.2f infra=%.2f routing=%.2f)\n",
		agent.CauseIsCableFailure, agent.Cable, agent.Confidence,
		agent.StatisticalEvidence, agent.InfraEvidence, agent.RoutingEvidence)
	fmt.Printf("expert: cause=%v cable=%s confidence=%.2f\n",
		expert.CauseIsCableFailure, expert.Cable, expert.Confidence)
	ag := arachnet.CompareVerdicts(agent, expert)
	fmt.Printf("agreement: causation=%v cable=%v confidence-gap=%.2f\n",
		ag.SameCausation, ag.SameCable, ag.ConfidenceGap)
	fmt.Printf("correct identification: agent=%v expert=%v\n",
		agent.Cable == truth, expert.Cable == truth)
}

func locTable(sys *arachnet.System) {
	header("Generated workflow size (in-text LoC metric)")
	fmt.Printf("%-6s %-12s %-12s %s\n", "case", "paper LoC", "measured", "steps/frameworks")
	for n := 1; n <= 4; n++ {
		rep := ask(sys, queries[n])
		fws := rep.Design.Chosen.Frameworks(sys.Registry())
		fmt.Printf("CS%-5d ≈%-11d %-12d %d steps / %d frameworks\n",
			n, paperLoC[n], rep.Solution.LoC, len(rep.Design.Chosen.Steps), len(fws))
	}
	fmt.Println("(shape: sizes grow with integration complexity; absolute values differ by codegen dialect)")
}

func evolution(seed uint64) {
	header("Registry evolution (RegistryCurator)")
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		fatal(err)
	}
	sys, err := arachnet.New(arachnet.WithSeed(seed), arachnet.WithRegistry(sub))
	if err != nil {
		fatal(err)
	}
	queries := []string{
		"Identify the impact at a country level due to SeaMeWe-5 cable failure",
		"Identify the impact at a country level due to SeaMeWe-4 cable failure",
		"Identify the impact at a country level due to AAE-1 cable failure",
	}
	for i, q := range queries {
		// Curation stays on here: registry evolution is the experiment.
		rep, err := sys.Ask(ctx, q)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("run %d: %d steps (%s)\n", i+1, len(rep.Design.Chosen.Steps),
			strings.Join(rep.Design.Chosen.CapabilityNames(), " → "))
		for _, p := range rep.Promotions {
			fmt.Printf("  promoted: %s (support %d, quality %.2f)\n",
				p.Capability.Name, p.Support, p.AvgQuality)
		}
	}
	fmt.Printf("registry grew to %d capabilities\n", sys.Registry().Size())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arachnet-bench:", err)
	os.Exit(1)
}

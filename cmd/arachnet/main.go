// Command arachnet runs the full four-agent pipeline on a
// natural-language measurement query and prints the artifacts of every
// stage: decomposition, design, generated code, execution results.
//
// Examples:
//
//	arachnet -query "Identify the impact at a country level due to SeaMeWe-5 cable failure"
//	arachnet -world small -scenario -query "Analyze the cascading effects of submarine cable failures between Europe and Asia"
//	arachnet -registry cs1 -show code -query "..."
//
// With -monitor the query becomes a standing one: it re-executes
// whenever the environment changes and prints delta events instead of
// a one-shot report. -inject-every drives the demo by injecting a
// fresh cable-failure scenario on a timer:
//
//	arachnet -world small -monitor -inject-every 2s -inject-count 3 -query "..."
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"arachnet"
)

func main() {
	var (
		query       = flag.String("query", "", "natural-language measurement query (required)")
		seed        = flag.Uint64("seed", 42, "world seed")
		world       = flag.String("world", "full", "world size: full|small")
		scenario    = flag.Bool("scenario", false, "inject a cable-failure measurement scenario (needed for cascade/forensic queries)")
		regName     = flag.String("registry", "full", "capability registry: full|cs1 (cs1 withholds Xaminer abstractions)")
		show        = flag.String("show", "all", "sections to print: all|plan|design|code|result")
		trace       = flag.Bool("trace", false, "print per-step execution provenance")
		timeout     = flag.Duration("timeout", 0, "abort the query after this duration (0 = no limit)")
		noCurate    = flag.Bool("no-curation", false, "disable post-run registry evolution")
		stream      = flag.Bool("stream", false, "stream live pipeline progress (stages, steps, promotions) to stderr while the query runs")
		noCache     = flag.Bool("no-cache", false, "bypass plan and step memoization for this query")
		cacheStats  = flag.Bool("cache-stats", false, "print plan/step cache statistics to stderr after the run")
		fleetN      = flag.Int("fleet", 0, "shard the world over N fleet workers; pure fan-out steps scatter-gather across them (0 = run everything inline)")
		fleetRemote = flag.String("fleet-remote", "", "comma-separated arachnet-worker addresses (host:port,...), one per shard; mutually exclusive with -fleet")
		monitor     = flag.Bool("monitor", false, "run the query as a standing subscription and print delta events until interrupted")
		injectEvery = flag.Duration("inject-every", 0, "with -monitor: inject a fresh cable-failure scenario on this interval (0 = never)")
		injectCount = flag.Int("inject-count", 3, "with -monitor and -inject-every: stop injecting after this many scenarios (0 = no limit)")
		snapshot    = flag.String("snapshot", "", "cache snapshot file: loaded before the query (if present and matching this world/seed/registry), rewritten after it — repeated invocations answer warm")
	)
	flag.Parse()
	if *query == "" {
		fmt.Fprintln(os.Stderr, "usage: arachnet -query \"...\" [flags]")
		flag.PrintDefaults()
		os.Exit(2)
	}

	opts := []arachnet.Option{}
	switch *world {
	case "full":
		opts = append(opts, arachnet.WithSeed(*seed))
	case "small":
		opts = append(opts, arachnet.WithSmallWorld(*seed))
	default:
		fatal(fmt.Errorf("unknown world %q", *world))
	}
	if *scenario {
		opts = append(opts, arachnet.WithScenario(arachnet.ScenarioConfig{Seed: *seed}))
	}
	switch *regName {
	case "full":
	case "cs1":
		sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
		if err != nil {
			fatal(err)
		}
		opts = append(opts, arachnet.WithRegistry(sub))
	default:
		fatal(fmt.Errorf("unknown registry %q", *regName))
	}
	if *fleetN > 0 {
		opts = append(opts, arachnet.WithFleet(*fleetN))
	}
	if *fleetRemote != "" {
		var addrs []string
		for _, a := range strings.Split(*fleetRemote, ",") {
			if a = strings.TrimSpace(a); a != "" {
				addrs = append(addrs, a)
			}
		}
		opts = append(opts, arachnet.WithRemoteFleet(addrs...))
	}

	sys, err := arachnet.New(opts...)
	if err != nil {
		fatal(err)
	}
	if *snapshot != "" {
		loadSnapshot(sys, *snapshot)
		defer saveSnapshot(sys, *snapshot)
	}

	// Ctrl-C cancels the pipeline mid-run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	askOpts := []arachnet.AskOption{}
	if *timeout > 0 {
		askOpts = append(askOpts, arachnet.AskTimeout(*timeout))
	}
	if *noCurate {
		askOpts = append(askOpts, arachnet.AskWithoutCuration())
	}
	if *noCache {
		askOpts = append(askOpts, arachnet.AskNoCache())
	}
	if *monitor {
		monitorQuery(ctx, sys, *query, askOpts, *seed, *injectEvery, *injectCount)
		return
	}
	var rep *arachnet.Report
	if *stream {
		// The streaming serving surface: progress lands on stderr as
		// events arrive, the final artifacts print below as usual.
		for ev := range sys.AskStream(ctx, *query, askOpts...) {
			switch ev := ev.(type) {
			case *arachnet.StageStarted:
				fmt.Fprintf(os.Stderr, "▶ %s\n", ev.Stage)
			case *arachnet.StepCompleted:
				if ev.Cached {
					fmt.Fprintf(os.Stderr, "  ✓ %s (%s) cached\n", ev.Step, ev.Capability)
				} else {
					fmt.Fprintf(os.Stderr, "  ✓ %s (%s) in %v\n",
						ev.Step, ev.Capability, ev.Duration.Round(time.Microsecond))
				}
			case *arachnet.StepFailed:
				fmt.Fprintf(os.Stderr, "  ✗ %s (%s): %v\n", ev.Step, ev.Capability, ev.Err)
			case *arachnet.CurationPromoted:
				fmt.Fprintf(os.Stderr, "  + promoted %s (support %d)\n",
					ev.Promotion.Capability.Name, ev.Promotion.Support)
			case *arachnet.Done:
				rep, err = ev.Report, ev.Err
			}
		}
	} else {
		rep, err = sys.Ask(ctx, *query, askOpts...)
	}
	if err != nil {
		fatal(err)
	}
	if rep == nil {
		// Streamed run ended without a Done (e.g. Ctrl-C with a full
		// event buffer).
		fatal(ctx.Err())
	}

	want := func(section string) bool { return *show == "all" || *show == section }

	if want("plan") {
		fmt.Printf("── QueryMind ──────────────────────────────────────────\n")
		fmt.Printf("intent: %s   complexity: %d   classification: %v\n",
			rep.Spec.Intent, rep.Problem.Complexity, rep.Problem.Classification)
		for _, sp := range rep.Problem.SubProblems {
			opt := ""
			if sp.Optional {
				opt = " (optional)"
			}
			fmt.Printf("  • %s%s → %s  %s\n", sp.ID, opt, sp.Produces, sp.Goal)
		}
		for _, c := range rep.Problem.Constraints {
			fmt.Printf("  constraint: %s\n", c)
		}
		for _, r := range rep.Problem.Risks {
			fmt.Printf("  risk: %s\n", r)
		}
		for _, s := range rep.Problem.SuccessCriteria {
			fmt.Printf("  success: %s\n", s)
		}
	}
	if want("design") {
		fmt.Printf("── WorkflowScout ──────────────────────────────────────\n")
		fmt.Printf("strategy: %s   candidates explored: %d\n", rep.Design.Strategy, rep.Design.Explored)
		for i, alt := range rep.Design.Alternatives {
			marker := " "
			if i == 0 {
				marker = "✓"
			}
			fmt.Printf("  %s score %.1f: %s\n", marker, alt.Score, alt.Rationale)
		}
		fmt.Print(rep.Design.Chosen.Describe())
	}
	if want("code") {
		fmt.Printf("── SolutionWeaver (%d LoC, %d checks) ─────────────────\n",
			rep.Solution.LoC, rep.Solution.ChecksAdded)
		fmt.Println(rep.Solution.Code)
	}
	if want("result") {
		fmt.Printf("── Execution ──────────────────────────────────────────\n")
		if *trace {
			for _, line := range rep.Result.Provenance {
				fmt.Println("  " + line)
			}
		}
		fmt.Printf("quality score: %.2f\n", rep.Result.QualityScore())
		for name, v := range rep.Result.Outputs {
			fmt.Printf("\noutput %q:\n%s\n", name, renderValue(v))
		}
		if len(rep.Promotions) > 0 {
			fmt.Printf("── RegistryCurator ────────────────────────────────────\n")
			for _, p := range rep.Promotions {
				fmt.Printf("promoted %s (support %d): %s\n",
					p.Capability.Name, p.Support, strings.Join(p.Pattern, " → "))
			}
		}
		fmt.Printf("\nelapsed: %v\n", rep.Elapsed)
	}
	if *cacheStats {
		st := sys.CacheStats()
		fmt.Fprintf(os.Stderr, "plan cache: %d hits / %d misses (ratio %.2f), %d entries, %d evictions\n",
			st.Plan.Hits, st.Plan.Misses, st.Plan.HitRatio(), st.Plan.Entries, st.Plan.Evictions)
		fmt.Fprintf(os.Stderr, "step cache: %d hits / %d misses (ratio %.2f), %d entries, ~%d bytes, %d evictions\n",
			st.Step.Hits, st.Step.Misses, st.Step.HitRatio(), st.Step.Entries, st.Step.Bytes, st.Step.Evictions)
		if st.Fleet != nil {
			fmt.Fprintf(os.Stderr, "fleet: %d workers, %d scattered / %d shard-local / %d declined\n",
				st.Fleet.Workers, st.Fleet.Scattered, st.Fleet.ShardLocal, st.Fleet.Declined)
			for _, sh := range st.Fleet.Shards {
				fmt.Fprintf(os.Stderr, "  worker %d: %d countries, %d routers, %d links; %d executed, %d cache hits, %d entries\n",
					sh.Worker, sh.Countries, sh.Routers, sh.Links, sh.Executed, sh.CacheHits, sh.CacheEntries)
			}
			if wire := st.Fleet.Wire; wire != nil {
				fmt.Fprintf(os.Stderr, "  wire: %d remotes (%d registered, %d rejected); %d requests, %d retries, %d failovers, %d health failures, %dB sent / %dB received\n",
					wire.Remotes, wire.Registered, wire.Rejected,
					wire.Requests, wire.Retries, wire.Failovers, wire.HealthFailures,
					wire.BytesSent, wire.BytesReceived)
			}
		}
	}
}

// monitorQuery runs the query as a standing subscription: the baseline
// executes synchronously, then every environment change re-executes
// incrementally and prints as a delta. When injectEvery is set, a
// fresh cable-failure scenario (distinct seed each time) is injected
// on that interval to drive the demo; Ctrl-C closes the subscription.
func monitorQuery(ctx context.Context, sys *arachnet.System, query string,
	askOpts []arachnet.AskOption, seed uint64, injectEvery time.Duration, injectCount int) {
	sub, err := sys.Subscribe(ctx, query, askOpts...)
	if err != nil {
		fatal(err)
	}
	if injectEvery > 0 {
		go func() {
			tick := time.NewTicker(injectEvery)
			defer tick.Stop()
			for n := 0; injectCount <= 0 || n < injectCount; n++ {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
				}
				sc := arachnet.ScenarioConfig{Seed: seed + uint64(n) + 1}
				if err := sys.Environment().InjectCableFailureScenario(sc); err != nil {
					fmt.Fprintf(os.Stderr, "inject: %v\n", err)
					return
				}
				fmt.Fprintf(os.Stderr, "→ injected scenario (seed %d)\n", sc.Seed)
			}
		}()
	}
	for ev := range sub.Events() {
		switch ev := ev.(type) {
		case *arachnet.SubscriptionStarted:
			if ev.Err != nil {
				fmt.Printf("▶ watching %q — baseline failed: %v\n", query, ev.Err)
			} else {
				fmt.Printf("▶ watching %q — baseline quality %.2f\n",
					query, ev.Report.Result.QualityScore())
			}
		case *arachnet.ResultChanged:
			fmt.Printf("Δ rev %d (%s): %d run / %d cached\n",
				ev.Revision, ev.Cause, ev.Delta.StepsRun, ev.Delta.StepsCached)
			switch {
			case ev.Delta.ErrBefore != "" && ev.Delta.ErrAfter == "":
				fmt.Printf("  recovered from: %s\n", ev.Delta.ErrBefore)
			case ev.Delta.ErrAfter != "":
				fmt.Printf("  now failing: %s\n", ev.Delta.ErrAfter)
			}
			for _, d := range ev.Delta.Changed {
				fmt.Printf("  ~ %s\n      was %s\n      now %s\n", d.Path, d.Before, d.After)
			}
			for _, p := range ev.Delta.Added {
				fmt.Printf("  + %s\n", p)
			}
			for _, p := range ev.Delta.Removed {
				fmt.Printf("  - %s\n", p)
			}
		case *arachnet.ResultUnchanged:
			fmt.Printf("= rev %d (%s): unchanged, %d run / %d cached\n",
				ev.Revision, ev.Cause, ev.StepsRun, ev.StepsCached)
		case *arachnet.AnomalyAppeared:
			fmt.Printf("! anomaly %s at %s: %s\n",
				ev.Anomaly.Kind, ev.Anomaly.Source, ev.Anomaly.Detail)
		case *arachnet.AnomalyCleared:
			fmt.Printf("  anomaly %s at %s cleared\n", ev.Anomaly.Kind, ev.Anomaly.Source)
		case *arachnet.SubscriptionClosed:
			fmt.Printf("■ subscription closed: %s\n", ev.Reason)
		}
	}
}

func renderValue(v any) string {
	switch x := v.(type) {
	case *arachnet.ImpactReport:
		return arachnet.RenderImpact(x, 15)
	case arachnet.GlobalImpact:
		rep := arachnet.GlobalToReport(x)
		return fmt.Sprintf("events: %v\nexpected links lost: %.1f\n%s",
			x.Events, x.ExpectedLinksLost, arachnet.RenderImpact(rep, 15))
	case *arachnet.Timeline:
		return x.Render()
	case arachnet.Verdict:
		return fmt.Sprintf("cable failure is the cause: %v\ncable: %s\nconfidence: %.2f\nevidence: statistical=%.2f infrastructure=%.2f routing=%.2f\n%s",
			x.CauseIsCableFailure, x.Cable, x.Confidence,
			x.StatisticalEvidence, x.InfraEvidence, x.RoutingEvidence, x.Explanation)
	default:
		return fmt.Sprintf("%v", v)
	}
}

// loadSnapshot warms the system from a cache snapshot file. A missing
// file is a normal first run; a mismatched one (different world, seed,
// registry or scenario) is reported and the run proceeds cold —
// snapshots are an accelerator, never a correctness dependency.
func loadSnapshot(sys *arachnet.System, path string) {
	f, err := os.Open(path)
	if err != nil {
		if !os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "arachnet: snapshot %s: %v (starting cold)\n", path, err)
		}
		return
	}
	defer f.Close()
	if err := sys.LoadSnapshot(f); err != nil {
		fmt.Fprintf(os.Stderr, "arachnet: snapshot %s rejected: %v (starting cold)\n", path, err)
	}
}

// saveSnapshot writes the system's warm cache state atomically
// (temp file + rename) so a crash mid-write never corrupts the
// previous snapshot.
func saveSnapshot(sys *arachnet.System, path string) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		fmt.Fprintf(os.Stderr, "arachnet: snapshot %s: %v\n", path, err)
		return
	}
	if err := sys.SaveSnapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		fmt.Fprintf(os.Stderr, "arachnet: snapshot %s: %v\n", path, err)
		return
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		fmt.Fprintf(os.Stderr, "arachnet: snapshot %s: %v\n", path, err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		fmt.Fprintf(os.Stderr, "arachnet: snapshot %s: %v\n", path, err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "arachnet:", err)
	os.Exit(1)
}

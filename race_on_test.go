//go:build race

package arachnet_test

// raceEnabled reports whether the race detector instruments this
// build; timing-sensitive assertions skip under its overhead.
const raceEnabled = true

package arachnet_test

// Remote fleet e2e: the HTTP wire under the fleet transport must be
// invisible in the results. A scattered ask served by real worker
// servers on loopback must be byte-identical to the in-process fleet;
// killing a worker mid-run must degrade the ask to its in-process
// twin (failover counter ticks), never fail it; and a worker whose
// handshake disagrees must be rejected at registration while asks
// keep succeeding.

import (
	"encoding/json"
	"net"
	"net/http"
	"testing"

	"arachnet"
	"arachnet/internal/core"
	"arachnet/internal/fleetwire"
	"arachnet/internal/netsim"
)

// startWireWorker boots one real arachnet-worker server (the exact
// handler cmd/arachnet-worker serves) on a loopback listener and
// returns its address and a kill switch.
func startWireWorker(t *testing.T, cfg netsim.Config, shards, index int) (string, func()) {
	t.Helper()
	env, err := core.NewEnvironment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := fleetwire.NewServer(env, core.BuiltinRegistry(), shards, index, 512)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: ws}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return ln.Addr().String(), func() { hs.Close() }
}

// cs1RemoteSystem builds a CS1 system whose fleet routes shard i to
// addrs[i] over HTTP.
func cs1RemoteSystem(t *testing.T, seed uint64, addrs []string) *arachnet.System {
	t.Helper()
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(seed),
		arachnet.WithRegistry(sub),
		arachnet.WithRemoteFleet(addrs...),
	)
	if err != nil {
		t.Fatal(err)
	}
	if f := sys.Fleet(); f != nil {
		t.Cleanup(f.Close)
	}
	return sys
}

func wireStats(t *testing.T, sys *arachnet.System) arachnet.FleetWireStats {
	t.Helper()
	st := sys.Fleet().Stats()
	if st.Wire == nil {
		t.Fatal("fleet reports no wire stats; transport is not a Pool")
	}
	return *st.Wire
}

// TestRemoteFleetByteIdentical is the acceptance gate for the wire: a
// CS1 ask scattered over two real HTTP workers must produce a report
// byte-identical to the degenerate in-process fleet of one.
func TestRemoteFleetByteIdentical(t *testing.T) {
	const seed, query = 42, "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	cfg := netsim.SmallConfig(seed)
	addr0, _ := startWireWorker(t, cfg, 2, 0)
	addr1, _ := startWireWorker(t, cfg, 2, 1)

	remoteSys := cs1RemoteSystem(t, seed, []string{addr0, addr1})
	localSys := cs1FleetSystem(t, seed, 1)

	repRemote, err := remoteSys.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	repLocal, err := localSys.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}

	st := remoteSys.Fleet().Stats()
	if st.Scattered == 0 {
		t.Fatalf("no steps scattered over the remote fleet: %+v", st)
	}
	wire := wireStats(t, remoteSys)
	if wire.Registered != 2 {
		t.Fatalf("want 2 registered workers, got %+v", wire)
	}
	if wire.Requests == 0 {
		t.Fatalf("no requests crossed the wire: %+v", wire)
	}
	if wire.Failovers != 0 || wire.Rejected != 0 {
		t.Fatalf("healthy fleet should not fail over or reject: %+v", wire)
	}
	if wire.BytesSent == 0 || wire.BytesReceived == 0 {
		t.Fatalf("codec byte counters did not move: %+v", wire)
	}

	jr, jl := normalizedReport(t, repRemote), normalizedReport(t, repLocal)
	if string(jr) != string(jl) {
		t.Errorf("remote and in-process reports differ:\nremote: %s\nlocal:  %s", jr, jl)
	}
}

// TestRemoteFleetFailover kills one worker between asks: the next ask
// must complete — served by the dead shard's in-process twin — with
// the failover counter ticking and outputs still identical to inline
// execution.
func TestRemoteFleetFailover(t *testing.T) {
	const seed = 42
	const query = "Identify the impact at a country level due to SeaMeWe-4 cable failure"
	cfg := netsim.SmallConfig(seed)
	addr0, kill0 := startWireWorker(t, cfg, 2, 0)
	addr1, _ := startWireWorker(t, cfg, 2, 1)

	remoteSys := cs1RemoteSystem(t, seed, []string{addr0, addr1})
	if w := wireStats(t, remoteSys); w.Registered != 2 {
		t.Fatalf("want 2 registered workers before the kill, got %+v", w)
	}
	kill0()

	rep, err := remoteSys.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatalf("ask after worker kill: %v", err)
	}
	wire := wireStats(t, remoteSys)
	if wire.Failovers == 0 {
		t.Fatalf("killed worker produced no failovers: %+v", wire)
	}

	inlineSys := cs1FleetSystem(t, seed, 0)
	repInline, err := inlineSys.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	outR, err := json.Marshal(rep.Result.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	outI, err := json.Marshal(repInline.Result.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if string(outR) != string(outI) {
		t.Errorf("failover outputs differ from inline:\nfailover: %s\ninline:   %s", outR, outI)
	}
}

// TestRemoteFleetHandshakeMismatch points a one-shard coordinator at
// a worker that owns shard 0 of two — the handshake must reject it
// permanently, and asks must still succeed entirely in-process.
func TestRemoteFleetHandshakeMismatch(t *testing.T) {
	const seed, query = 42, "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	cfg := netsim.SmallConfig(seed)
	// Shard 0 of 2 ≠ shard 0 of 1: Shards and the fingerprint disagree.
	addr, _ := startWireWorker(t, cfg, 2, 0)

	remoteSys := cs1RemoteSystem(t, seed, []string{addr})
	wire := wireStats(t, remoteSys)
	if wire.Rejected != 1 || wire.Registered != 0 {
		t.Fatalf("mismatched worker should be rejected at registration: %+v", wire)
	}

	rep, err := remoteSys.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatalf("ask with rejected worker: %v", err)
	}
	wire = wireStats(t, remoteSys)
	if wire.Failovers == 0 {
		t.Fatalf("rejected worker should force failovers: %+v", wire)
	}
	if wire.Requests != 0 {
		t.Fatalf("no execute request may reach a rejected worker: %+v", wire)
	}

	inlineSys := cs1FleetSystem(t, seed, 0)
	repInline, err := inlineSys.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	outR, _ := json.Marshal(rep.Result.Outputs)
	outI, _ := json.Marshal(repInline.Result.Outputs)
	if string(outR) != string(outI) {
		t.Errorf("rejected-worker outputs differ from inline:\nremote: %s\ninline: %s", outR, outI)
	}
}

package arachnet_test

// Persistent cache snapshots: a warm System's state written with
// SaveSnapshot must restore into an identically built System so its
// first repeated query is served from cache (plan hit, step hits,
// report equal to the donor's warm report), and LoadSnapshot must
// reject any snapshot taken against a different world, registry or
// scenario — restoring those would be silent corruption.

import (
	"bytes"
	"strings"
	"testing"

	"arachnet"
)

// warmSystem builds a small-world system with a scenario and warms it
// on the given queries (curation off keeps the registry generation
// stable, so the snapshot validates against a fresh twin).
func warmSystem(t *testing.T, seed uint64, queries ...string) *arachnet.System {
	t.Helper()
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(seed),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range queries {
		if _, err := sys.Ask(ctx, q, arachnet.AskWithoutCuration()); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

func TestSnapshotRoundTrip(t *testing.T) {
	const (
		cs1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
		cs4 = "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable."
	)
	donor := warmSystem(t, 42, cs1, cs4)
	warmRep, err := donor.Ask(ctx, cs1, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := donor.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty snapshot")
	}

	restored := warmSystem(t, 42) // identical build, stone cold
	if err := restored.LoadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}

	// The restored system's first ask of a snapshotted query must be
	// fully warm: a plan-cache hit, every step a cache hit, and a
	// report equal to the donor's warm replay.
	before := restored.CacheStats()
	rep, err := restored.Ask(ctx, cs1, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	after := restored.CacheStats()
	if after.Plan.Hits <= before.Plan.Hits {
		t.Errorf("restored first ask missed the plan cache: %+v → %+v", before.Plan, after.Plan)
	}
	for _, st := range rep.Result.Steps {
		if !st.Cached {
			t.Errorf("restored step %s re-executed instead of hitting the snapshot", st.ID)
		}
	}
	jw, jr := normalizedReport(t, warmRep), normalizedReport(t, rep)
	if string(jw) != string(jr) {
		t.Errorf("restored report differs from donor's warm report:\ndonor:    %s\nrestored: %s", jw, jr)
	}
}

func TestSnapshotRejectsMismatches(t *testing.T) {
	const cs1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	donor := warmSystem(t, 42, cs1)
	var buf bytes.Buffer
	if err := donor.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		label string
		build func(t *testing.T) *arachnet.System
		want  string // substring of the rejection error
	}{
		{"different seed", func(t *testing.T) *arachnet.System {
			return warmSystem(t, 43)
		}, "world"},
		{"trimmed registry", func(t *testing.T) *arachnet.System {
			sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := arachnet.New(
				arachnet.WithSmallWorld(42),
				arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
				arachnet.WithRegistry(sub),
			)
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}, "registry"},
		{"no scenario", func(t *testing.T) *arachnet.System {
			sys, err := arachnet.New(arachnet.WithSmallWorld(42))
			if err != nil {
				t.Fatal(err)
			}
			return sys
		}, "scenario"},
	}
	for _, tc := range cases {
		sys := tc.build(t)
		err := sys.LoadSnapshot(bytes.NewReader(buf.Bytes()))
		if err == nil {
			t.Errorf("%s: snapshot accepted, want rejection", tc.label)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: rejection %q does not mention %q", tc.label, err, tc.want)
		}
		// A rejected load must leave the system cold and serviceable.
		rep, askErr := sys.Ask(ctx, cs1, arachnet.AskWithoutCuration())
		if askErr != nil {
			t.Errorf("%s: system unserviceable after rejected load: %v", tc.label, askErr)
			continue
		}
		for _, st := range rep.Result.Steps {
			if st.Cached {
				t.Errorf("%s: step %s cached after rejected load — state leaked", tc.label, st.ID)
			}
		}
	}
}

package arachnet_test

// Fleet determinism: sharded scatter-gather execution must be an
// implementation detail. A report served by a fleet of four must be
// byte-identical (modulo wall-clock timings) to one served by a
// degenerate fleet of one, and its outputs identical to inline
// execution — for the fan-out CS1 workflow whose middle steps
// actually scatter. A -race hammer then drives concurrent Asks
// through a fleet while the environment epoch advances underneath.

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sync"
	"testing"

	"arachnet"
)

// cs1FleetSystem builds a system over the paper's restricted CS1
// registry (which plans the extract_ips → locate_ips fan-out chain)
// with an n-worker fleet; n=0 means inline execution.
func cs1FleetSystem(t testing.TB, seed uint64, n int) *arachnet.System {
	t.Helper()
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	opts := []arachnet.Option{arachnet.WithSmallWorld(seed), arachnet.WithRegistry(sub)}
	if n > 0 {
		opts = append(opts, arachnet.WithFleet(n))
	}
	sys, err := arachnet.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	if f := sys.Fleet(); f != nil {
		t.Cleanup(f.Close)
	}
	return sys
}

var provenanceDuration = regexp.MustCompile(`in [0-9][^ ]*$`)

// normalizedReport strips everything wall-clock-dependent from a
// report and returns its canonical JSON: elapsed and per-step
// durations zeroed, provenance timing text masked.
func normalizedReport(t *testing.T, rep *arachnet.Report) []byte {
	t.Helper()
	rep.Elapsed = 0
	if rep.Result != nil {
		for i := range rep.Result.Steps {
			rep.Result.Steps[i].Duration = 0
		}
		for i, line := range rep.Result.Provenance {
			rep.Result.Provenance[i] = provenanceDuration.ReplaceAllString(line, "in 0s")
		}
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestFleetReportByteIdentical is the acceptance gate: identically
// seeded fleet-1 and fleet-4 systems must serve byte-identical
// reports for the scattering CS1 query.
func TestFleetReportByteIdentical(t *testing.T) {
	const seed, query = 42, "Identify the impact at a country level due to SeaMeWe-5 cable failure"

	sys1 := cs1FleetSystem(t, seed, 1)
	sys4 := cs1FleetSystem(t, seed, 4)
	rep1, err := sys1.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := sys4.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}

	// The fan-out steps must actually have scattered on the 4-shard
	// fleet, or this test proves nothing.
	if st := sys4.Fleet().Stats(); st.Scattered == 0 {
		t.Fatalf("no steps scattered on the 4-shard fleet: %+v", st)
	}
	remote := 0
	for _, s := range rep4.Result.Steps {
		if s.Remote {
			remote++
		}
	}
	if remote == 0 {
		t.Fatal("no steps marked Remote in the fleet-4 report")
	}

	j1, j4 := normalizedReport(t, rep1), normalizedReport(t, rep4)
	if string(j1) != string(j4) {
		t.Errorf("fleet-1 and fleet-4 reports differ:\nfleet-1: %s\nfleet-4: %s", j1, j4)
	}
}

// TestFleetMatchesInline checks the scatter-gather output against
// plain inline execution: same outputs, same provenance shape. (Step
// Remote flags legitimately differ, so the comparison is on outputs
// and the generated solution, not whole-report bytes.)
func TestFleetMatchesInline(t *testing.T) {
	const seed, query = 42, "Identify the impact at a country level due to SeaMeWe-5 cable failure"

	sys0 := cs1FleetSystem(t, seed, 0)
	sys4 := cs1FleetSystem(t, seed, 4)
	rep0, err := sys0.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := sys4.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	out0, err := json.Marshal(rep0.Result.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	out4, err := json.Marshal(rep4.Result.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if string(out0) != string(out4) {
		t.Errorf("inline and fleet-4 outputs differ:\ninline: %s\nfleet:  %s", out0, out4)
	}
	if len(rep0.Result.Steps) != len(rep4.Result.Steps) {
		t.Errorf("step count differs: inline %d, fleet %d",
			len(rep0.Result.Steps), len(rep4.Result.Steps))
	}
}

// TestFleetFullRegistryMatchesInline exercises the full-registry CS1
// path — planned through the aggregate step xaminer.impact_from_links,
// which has its own scatter spec — and checks the scattered result
// against inline execution.
func TestFleetFullRegistryMatchesInline(t *testing.T) {
	const seed, query = 42, "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	build := func(n int) *arachnet.System {
		opts := []arachnet.Option{arachnet.WithSmallWorld(seed)}
		if n > 0 {
			opts = append(opts, arachnet.WithFleet(n))
		}
		sys, err := arachnet.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if f := sys.Fleet(); f != nil {
			t.Cleanup(f.Close)
		}
		return sys
	}
	sys0, sys4 := build(0), build(4)
	rep0, err := sys0.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := sys4.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	if st := sys4.Fleet().Stats(); st.Scattered == 0 {
		t.Fatalf("full-registry plan scattered nothing: %+v", st)
	}
	out0, err := json.Marshal(rep0.Result.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	out4, err := json.Marshal(rep4.Result.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if string(out0) != string(out4) {
		t.Errorf("inline and fleet-4 full-registry outputs differ:\ninline: %s\nfleet:  %s", out0, out4)
	}
}

// TestFleetArchiveWindowMatchesInline exercises the scenario-reading
// scatter path: traceroute.archive_window has no bound fan-out input —
// its data lives in the injected scenario — so its Split shards the
// archive's probes by source country and its Merge replays the
// coordinator archive's measurement order over the gathered partials.
// The scattered CS4 forensic report must match inline execution
// exactly.
func TestFleetArchiveWindowMatchesInline(t *testing.T) {
	const seed = 42
	const query = "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable."
	build := func(n int) *arachnet.System {
		opts := []arachnet.Option{
			arachnet.WithSmallWorld(seed),
			arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
		}
		if n > 0 {
			opts = append(opts, arachnet.WithFleet(n))
		}
		sys, err := arachnet.New(opts...)
		if err != nil {
			t.Fatal(err)
		}
		if f := sys.Fleet(); f != nil {
			t.Cleanup(f.Close)
		}
		return sys
	}
	sys0, sys4 := build(0), build(4)
	rep0, err := sys0.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	rep4, err := sys4.Ask(ctx, query, arachnet.AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}

	// The archive-window step must actually have gone through the
	// fleet, or this proves nothing about the scenario-reading spec.
	archiveRemote := false
	for _, s := range rep4.Result.Steps {
		if s.Capability == "traceroute.archive_window" && s.Remote {
			archiveRemote = true
		}
	}
	if !archiveRemote {
		t.Fatal("traceroute.archive_window did not execute remotely on the fleet")
	}
	if st := sys4.Fleet().Stats(); st.Scattered == 0 {
		t.Fatalf("nothing scattered on the 4-shard fleet: %+v", st)
	}

	out0, err := json.Marshal(rep0.Result.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	out4, err := json.Marshal(rep4.Result.Outputs)
	if err != nil {
		t.Fatal(err)
	}
	if string(out0) != string(out4) {
		t.Errorf("inline and fleet-4 forensic outputs differ:\ninline: %s\nfleet:  %s", out0, out4)
	}
	if len(rep0.Result.Steps) != len(rep4.Result.Steps) {
		t.Errorf("step count differs: inline %d, fleet %d",
			len(rep0.Result.Steps), len(rep4.Result.Steps))
	}
}

// TestFleetConcurrentAsks hammers a 4-shard fleet with concurrent
// asks while the environment epoch advances underneath (scenario
// injection mid-run) — the -race job's fleet workout. Results are
// not compared across epochs; the test asserts only that every ask
// succeeds and the fleet stays coherent.
func TestFleetConcurrentAsks(t *testing.T) {
	sys := cs1FleetSystem(t, 42, 4)
	queries := []string{
		"Identify the impact at a country level due to SeaMeWe-5 cable failure",
		"Identify the impact at a country level due to SeaMeWe-4 cable failure",
		"Identify the impact at a country level due to AAE-1 cable failure",
	}
	askers, rounds := 8, 5
	if testing.Short() {
		askers, rounds = 4, 2
	}

	var wg sync.WaitGroup
	errc := make(chan error, askers*rounds+rounds)
	for g := 0; g < askers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				q := queries[(g+r)%len(queries)]
				if _, err := sys.Ask(ctx, q, arachnet.AskWithoutCuration()); err != nil {
					errc <- fmt.Errorf("asker %d round %d: %w", g, r, err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for r := 0; r < rounds; r++ {
			sc := arachnet.ScenarioConfig{Seed: uint64(100 + r)}
			if err := sys.Environment().InjectCableFailureScenario(sc); err != nil {
				errc <- fmt.Errorf("inject round %d: %w", r, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}

	st := sys.Fleet().Stats()
	if st.Scattered+st.ShardLocal == 0 {
		t.Errorf("fleet handled no steps under concurrency: %+v", st)
	}
	var executed uint64
	for _, sh := range st.Shards {
		executed += sh.Executed
	}
	if executed == 0 {
		t.Error("no worker executed any step")
	}
}

package arachnet_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"arachnet"
)

var ctx = context.Background()

func TestNewDefaults(t *testing.T) {
	if testing.Short() {
		t.Skip("full world in -short mode")
	}
	sys, err := arachnet.New()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Registry().Size() < 20 {
		t.Errorf("registry = %d capabilities", sys.Registry().Size())
	}
	if sys.Environment().World == nil {
		t.Fatal("no world")
	}
}

func TestPublicQuickstart(t *testing.T) {
	sys, err := arachnet.New(arachnet.WithSmallWorld(7))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-5 cable failure")
	if err != nil {
		t.Fatal(err)
	}
	impact, ok := rep.Result.Outputs["aggregation"].(*arachnet.ImpactReport)
	if !ok {
		t.Fatalf("output type %T", rep.Result.Outputs["aggregation"])
	}
	rendered := arachnet.RenderImpact(impact, 5)
	if !strings.Contains(rendered, "country") {
		t.Errorf("rendered table: %q", rendered)
	}
	if rep.Solution.LoC == 0 || !strings.Contains(rep.Solution.Code, "python3") {
		t.Error("no generated code via public API")
	}
}

func TestPublicExpertComparators(t *testing.T) {
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(7),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := arachnet.ExpertDisasterImpact(sys, 0.1); err != nil {
		t.Errorf("disaster comparator: %v", err)
	}
	if _, err := arachnet.ExpertCascade(sys, arachnet.Europe, arachnet.Asia); err != nil {
		t.Errorf("cascade comparator: %v", err)
	}
	v, err := arachnet.ExpertForensic(sys)
	if err != nil {
		t.Errorf("forensic comparator: %v", err)
	}
	ag := arachnet.CompareVerdicts(v, v)
	if !ag.SameCausation || !ag.SameCable || ag.ConfidenceGap != 0 {
		t.Errorf("self agreement = %+v", ag)
	}
	for _, steps := range [][]string{
		arachnet.ExpertCableImpactSteps(), arachnet.ExpertDisasterImpactSteps(),
		arachnet.ExpertCascadeSteps(), arachnet.ExpertForensicSteps(),
	} {
		if len(steps) == 0 {
			t.Error("empty expert step declaration")
		}
	}
}

func TestPublicExpertMode(t *testing.T) {
	var stages []string
	sys, err := arachnet.New(arachnet.WithSmallWorld(7))
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-5 cable failure",
		arachnet.AskExpert(func(stage string, artifact any) error {
			stages = append(stages, stage)
			if stage == arachnet.StageSolution {
				return errors.New("needs domain review")
			}
			return nil
		}))
	if err == nil || !strings.Contains(err.Error(), "needs domain review") {
		t.Fatalf("veto not propagated: %v", err)
	}
	var pe *arachnet.PipelineError
	if !errors.As(err, &pe) || pe.Stage != arachnet.StageSolution {
		t.Errorf("err = %v, want *PipelineError at %s", err, arachnet.StageSolution)
	}
	want := []string{arachnet.StageProblem, arachnet.StageDesign, arachnet.StageSolution}
	if len(stages) != len(want) {
		t.Errorf("stages = %v", stages)
	}
}

func TestPublicRegistrySubset(t *testing.T) {
	sub, err := arachnet.BuiltinRegistry().Subset(arachnet.CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := arachnet.New(arachnet.WithSmallWorld(7), arachnet.WithRegistry(sub))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-5 cable failure")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range rep.Design.Chosen.CapabilityNames() {
		if strings.HasPrefix(c, "xaminer.") {
			t.Errorf("restricted registry leaked %s", c)
		}
	}
}

func TestPublicWorldConfig(t *testing.T) {
	cfg := arachnet.WorldConfig{
		Seed: 3, Countries: []string{"GB", "FR", "SG", "IN", "US", "EG"},
		StubsPerCountry: 1, Tier1Count: 2, Tier2PerRegion: 1, ContentCount: 1,
	}
	sys, err := arachnet.New(arachnet.WithWorldConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Environment().World.Countries); got != 6 {
		t.Errorf("countries = %d", got)
	}
}

package arachnet_test

// Concurrency contract of the redesigned Ask API: one System built
// once serves many goroutines (the ROADMAP's serving scenario), and
// AskBatch beats running the same queries back to back whenever more
// than one CPU is available.

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"arachnet"
)

// caseQueries are the paper's four case-study queries; all are
// feasible once the measurement scenario is injected.
var caseQueries = []string{
	"Identify the impact at a country level due to SeaMeWe-5 cable failure",
	"Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability",
	"Analyze the cascading effects of submarine cable failures between Europe and Asia",
	"A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable.",
}

func sharedSystem(tb testing.TB) *arachnet.System {
	tb.Helper()
	sys, err := arachnet.New(
		arachnet.WithSmallWorld(7),
		arachnet.WithScenario(arachnet.ScenarioConfig{Seed: 5}),
	)
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// TestConcurrentAskSharedSystem hammers one shared System with 32
// concurrent Asks with curation ON, so curator writes to the registry
// race planner reads if the locking is wrong. Run under -race this is
// the API's central safety claim.
func TestConcurrentAskSharedSystem(t *testing.T) {
	sys := sharedSystem(t)
	const callers = 32
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rep, err := sys.Ask(ctx, caseQueries[i%len(caseQueries)])
			if err != nil {
				errs[i] = err
				return
			}
			if rep.Result == nil || len(rep.Result.Outputs) == 0 {
				errs[i] = errors.New("empty result")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	// Repeated successful runs of the same shapes must have evolved the
	// registry (curation stayed on throughout the hammering).
	if len(sys.Promotions()) == 0 {
		t.Error("no composite promoted after 32 curated runs")
	}
	if got := len(sys.History()); got != callers {
		t.Errorf("history records %d runs, want %d", got, callers)
	}
}

// TestConcurrentMixedModes interleaves expert-reviewed, uncurated and
// deadline-bound calls on one System: per-call options must not bleed
// across concurrent requests.
func TestConcurrentMixedModes(t *testing.T) {
	sys := sharedSystem(t)
	var wg sync.WaitGroup
	var mu sync.Mutex
	reviewed := 0
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var opts []arachnet.AskOption
			switch i % 3 {
			case 0:
				opts = append(opts, arachnet.AskExpert(func(string, any) error {
					mu.Lock()
					reviewed++
					mu.Unlock()
					return nil
				}))
			case 1:
				opts = append(opts, arachnet.AskWithoutCuration())
			case 2:
				opts = append(opts, arachnet.AskTimeout(time.Minute))
			}
			if _, err := sys.Ask(ctx, caseQueries[0], opts...); err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if reviewed == 0 {
		t.Error("expert hooks never fired")
	}
}

func TestAskBatchAlignsReports(t *testing.T) {
	sys := sharedSystem(t)
	queries := []string{
		caseQueries[0],
		"please enumerate all the things", // rejected as too generic
		caseQueries[1],
	}
	reports, err := sys.AskBatch(ctx, queries)
	if err == nil {
		t.Fatal("batch with a rejected query must return an error")
	}
	if len(reports) != len(queries) {
		t.Fatalf("reports = %d, want %d", len(reports), len(queries))
	}
	if reports[0] == nil || reports[0].Result == nil {
		t.Error("good query 0 lost its report")
	}
	if reports[2] == nil || reports[2].Result == nil {
		t.Error("good query 2 lost its report")
	}
	var pe *arachnet.PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PipelineError in chain", err)
	}
	if !strings.Contains(pe.Query, "enumerate") {
		t.Errorf("PipelineError.Query = %q, want the rejected query", pe.Query)
	}
	for i, rep := range reports {
		if rep == nil || rep.Elapsed <= 0 {
			t.Errorf("report %d missing Elapsed", i)
		}
	}
}

// TestAskBatchFasterThanSequential is the benchmark-backed serving
// claim: an AskBatch of the four case-study queries on the small world
// completes faster than asking them one after the other. Parallel
// speedup needs >1 CPU, so the comparison is skipped on single-core
// machines (the batch still runs and must succeed there).
func TestAskBatchFasterThanSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("best-of-5 wall-clock rounds in -short mode")
	}
	sys := sharedSystem(t)
	// Warm up once so neither measurement pays first-run costs, and
	// keep curation off so both run identical workloads.
	noCurate := arachnet.AskWithoutCuration()
	for _, q := range caseQueries {
		if _, err := sys.Ask(ctx, q, noCurate); err != nil {
			t.Fatal(err)
		}
	}

	sequential := time.Duration(1<<63 - 1)
	batch := sequential
	for round := 0; round < 5; round++ { // best-of-5 damps scheduler noise
		start := time.Now()
		for _, q := range caseQueries {
			if _, err := sys.Ask(ctx, q, noCurate); err != nil {
				t.Fatal(err)
			}
		}
		if d := time.Since(start); d < sequential {
			sequential = d
		}

		start = time.Now()
		reports, err := sys.AskBatch(ctx, caseQueries, noCurate, arachnet.AskParallelism(len(caseQueries)))
		if err != nil {
			t.Fatal(err)
		}
		if d := time.Since(start); d < batch {
			batch = d
		}
		for i, rep := range reports {
			if rep == nil || rep.Result == nil || len(rep.Result.Outputs) == 0 {
				t.Fatalf("round %d: batch report %d incomplete", round, i)
			}
		}
	}
	t.Logf("sequential %v, batch %v (%.2fx)", sequential, batch, float64(sequential)/float64(batch))
	if runtime.GOMAXPROCS(0) < 2 {
		t.Skip("single CPU: batch fan-out cannot beat sequential compute-bound runs")
	}
	if raceEnabled {
		t.Skip("race detector overhead makes wall-clock comparison unreliable")
	}
	if batch >= sequential {
		t.Errorf("AskBatch (%v) not faster than sequential (%v)", batch, sequential)
	}
}

// BenchmarkAskSequential and BenchmarkAskBatch are the raw numbers
// behind TestAskBatchFasterThanSequential.
func BenchmarkAskSequential(b *testing.B) {
	sys := sharedSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range caseQueries {
			if _, err := sys.Ask(ctx, q, arachnet.AskWithoutCuration()); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkAskBatch(b *testing.B) {
	sys := sharedSystem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.AskBatch(ctx, caseQueries, arachnet.AskWithoutCuration()); err != nil {
			b.Fatal(err)
		}
	}
}

package arachnet_test

// Serving contract of the streaming redesign: AskStream delivers the
// same run as Ask, event by event, and the async job subsystem turns
// one System into a server that tracks, reports on, and cancels many
// in-flight queries. TestJobServerConcurrent is the -race acceptance
// hammer for Submit/Events/Wait/Cancel.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"arachnet"
)

func TestPublicAskStream(t *testing.T) {
	sys := sharedSystem(t)
	var stages []string
	var rep *arachnet.Report
	var runErr error
	for ev := range sys.AskStream(ctx, caseQueries[0]) {
		switch ev := ev.(type) {
		case *arachnet.StageCompleted:
			stages = append(stages, ev.Stage)
		case *arachnet.Done:
			rep, runErr = ev.Report, ev.Err
		}
	}
	if runErr != nil {
		t.Fatal(runErr)
	}
	if rep == nil || rep.Result == nil || len(rep.Result.Outputs) == 0 {
		t.Fatal("streamed run produced no usable report")
	}
	want := []string{
		arachnet.StageProblem, arachnet.StageDesign, arachnet.StageSolution,
		arachnet.StageResult, arachnet.StageCuration,
	}
	if len(stages) != len(want) {
		t.Fatalf("completed stages = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Errorf("stage %d = %s, want %s", i, stages[i], want[i])
		}
	}
}

func TestPublicObserverVeto(t *testing.T) {
	sys := sharedSystem(t)
	budget := errors.New("too many steps for this tenant")
	_, err := sys.Ask(ctx, caseQueries[0],
		arachnet.AskObserver(arachnet.ObserverFunc(func(ev arachnet.Event) error {
			if sc, ok := ev.(*arachnet.StageCompleted); ok && sc.Stage == arachnet.StageDesign {
				if d, ok := sc.Artifact.(*arachnet.Design); ok && len(d.Chosen.Steps) > 0 {
					return budget
				}
			}
			return nil
		})))
	if !errors.Is(err, budget) {
		t.Fatalf("err = %v, want the observer veto in the chain", err)
	}
	var pe *arachnet.PipelineError
	if !errors.As(err, &pe) || pe.Stage != arachnet.StageDesign {
		t.Errorf("err = %v, want *PipelineError at %s", err, arachnet.StageDesign)
	}
}

// TestJobServerConcurrent drives 12 concurrent jobs through the async
// serving surface — Submit, Events, Wait, Cancel — with three of them
// cancelled mid-run. The first three jobs carry an observer that parks
// their pipeline at the first step completion, so cancellation
// provably lands while the workflow is in flight; under -race this
// doubles as the subsystem's safety hammer.
func TestJobServerConcurrent(t *testing.T) {
	sys := sharedSystem(t)
	const (
		total    = 12
		toCancel = 3
	)
	gates := make([]chan struct{}, toCancel)
	jobs := make([]*arachnet.Job, 0, total)
	for i := 0; i < total; i++ {
		var opts []arachnet.AskOption
		if i < toCancel {
			gates[i] = make(chan struct{})
			gate := gates[i]
			// Observers run synchronously on the pipeline goroutine:
			// blocking here holds the run mid-workflow until the test
			// releases the gate.
			opts = append(opts, arachnet.AskObserver(arachnet.ObserverFunc(func(ev arachnet.Event) error {
				if _, ok := ev.(*arachnet.StepCompleted); ok {
					<-gate
				}
				return nil
			})))
		}
		j, err := sys.Submit(ctx, caseQueries[i%len(caseQueries)], opts...)
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}

	// Cancel the gated jobs one at a time: confirm via the live event
	// stream that the workflow started, cancel, then release the gate.
	// Sequential handling keeps this correct for any worker-pool size.
	for i := 0; i < toCancel; i++ {
		sawStep := false
		deadline := time.After(30 * time.Second)
		events := jobs[i].Events()
	watch:
		for {
			select {
			case ev, open := <-events:
				if !open {
					break watch
				}
				if _, ok := ev.(*arachnet.StepStarted); ok {
					sawStep = true
					break watch
				}
			case <-deadline:
				t.Fatalf("job %d never reported a running step", i)
			}
		}
		if !sawStep {
			t.Fatalf("job %d stream closed before any step ran", i)
		}
		jobs[i].Cancel()
		close(gates[i])
		if _, err := jobs[i].Wait(ctx); !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled job %d: err = %v, want context.Canceled", i, err)
		}
		if st := jobs[i].State(); st != arachnet.JobCancelled {
			t.Errorf("cancelled job %d state = %s", i, st)
		}
	}

	// Every other job must complete with a full report, with events
	// replayable after the fact.
	for i := toCancel; i < total; i++ {
		rep, err := jobs[i].Wait(ctx)
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
		if rep.Result == nil || len(rep.Result.Outputs) == 0 {
			t.Errorf("job %d: empty result", i)
		}
		var last arachnet.Event
		for ev := range jobs[i].Events() {
			last = ev
		}
		if done, ok := last.(*arachnet.Done); !ok || done.Err != nil {
			t.Errorf("job %d: terminal replay event = %#v", i, last)
		}
	}

	// The job table tracked everything, and the successful runs
	// evolved the registry through the shared curation path.
	if got := len(sys.Jobs()); got != total {
		t.Errorf("Jobs() tracks %d, want %d", got, total)
	}
	states := map[arachnet.JobState]int{}
	for _, j := range sys.Jobs() {
		states[j.State()]++
	}
	if states[arachnet.JobCancelled] != toCancel || states[arachnet.JobDone] != total-toCancel {
		t.Errorf("job states = %v", states)
	}
	if len(sys.Promotions()) == 0 {
		t.Error("no composite promoted after the job hammer")
	}
}

// TestJobTimeoutOption confirms per-call AskOptions ride through
// Submit: a nanosecond budget fails the job at the first stage.
func TestJobTimeoutOption(t *testing.T) {
	sys := sharedSystem(t)
	j, err := sys.Submit(ctx, caseQueries[0], arachnet.AskTimeout(time.Nanosecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	var pe *arachnet.PipelineError
	if _, err := j.Wait(ctx); !errors.As(err, &pe) || pe.Stage != arachnet.StageProblem {
		t.Errorf("err = %v, want *PipelineError at %s", err, arachnet.StageProblem)
	}
}

func TestAskBatchEmptyFastPath(t *testing.T) {
	sys := sharedSystem(t)
	for _, queries := range [][]string{nil, {}} {
		reports, err := sys.AskBatch(ctx, queries)
		if err != nil {
			t.Fatalf("empty batch errored: %v", err)
		}
		if reports == nil || len(reports) != 0 {
			t.Errorf("empty batch reports = %#v, want empty non-nil slice", reports)
		}
	}
}

func TestNonPositiveOptionInputsIgnored(t *testing.T) {
	sys := sharedSystem(t)
	// A negative timeout must be ignored — not armed as an
	// already-expired deadline — and non-positive parallelism falls
	// back to the default.
	rep, err := sys.Ask(ctx, caseQueries[0],
		arachnet.AskTimeout(-time.Second), arachnet.AskParallelism(-3))
	if err != nil {
		t.Fatalf("negative option inputs poisoned the call: %v", err)
	}
	if rep.Result == nil || len(rep.Result.Outputs) == 0 {
		t.Error("no result under ignored options")
	}
}

// ExampleSystem_AskStream documents the streaming consumption idiom.
func ExampleSystem_AskStream() {
	sys, err := arachnet.New(arachnet.WithSmallWorld(7))
	if err != nil {
		panic(err)
	}
	for ev := range sys.AskStream(context.Background(),
		"Identify the impact at a country level due to SeaMeWe-5 cable failure") {
		if done, ok := ev.(*arachnet.Done); ok {
			fmt.Println("failed:", done.Err != nil)
		}
	}
	// Output: failed: false
}

module arachnet

go 1.24

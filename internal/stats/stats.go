// Package stats implements the statistical machinery used by the
// measurement workflows: descriptive statistics, baseline estimation,
// anomaly and changepoint detection, correlation measures and
// significance testing.
//
// Everything operates on plain float64 slices so every substrate can use
// it without adapters; time indexing lives with the callers.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrInsufficientData is returned when a computation needs more samples
// than were provided.
var ErrInsufficientData = errors.New("stats: insufficient data")

// Mean returns the arithmetic mean. It returns 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (n-1 denominator).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the middle value (average of the two middles for even
// lengths). It returns 0 for an empty slice.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) using linear
// interpolation between closest ranks. It returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// MinMax returns the minimum and maximum of xs; zeros for empty input.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Baseline summarizes the "normal" regime of a series: robust location
// and scale estimated from a training window.
type Baseline struct {
	Median float64
	MAD    float64 // median absolute deviation, scaled to σ-equivalent
	Mean   float64
	Std    float64
	N      int
}

// FitBaseline estimates a baseline from the given samples. MAD is scaled
// by 1.4826 so it estimates σ for Gaussian data.
func FitBaseline(xs []float64) (Baseline, error) {
	if len(xs) < 3 {
		return Baseline{}, ErrInsufficientData
	}
	med := Median(xs)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	mad := Median(devs) * 1.4826
	return Baseline{Median: med, MAD: mad, Mean: Mean(xs), Std: StdDev(xs), N: len(xs)}, nil
}

// Score returns the robust z-score of a value against the baseline. A
// zero-MAD baseline falls back to the classic z-score; a zero-σ baseline
// returns +Inf for any deviation.
func (b Baseline) Score(x float64) float64 {
	scale := b.MAD
	center := b.Median
	if scale == 0 {
		scale = b.Std
		center = b.Mean
	}
	if scale == 0 {
		if x == center {
			return 0
		}
		return math.Inf(1)
	}
	return (x - center) / scale
}

// Anomaly is one detected outlier.
type Anomaly struct {
	Index int
	Value float64
	Score float64 // robust z-score against the baseline
}

// DetectAnomalies fits a baseline on the first trainN samples and flags
// every later sample whose robust z-score exceeds threshold.
func DetectAnomalies(xs []float64, trainN int, threshold float64) ([]Anomaly, error) {
	if trainN < 3 || trainN >= len(xs) {
		return nil, ErrInsufficientData
	}
	b, err := FitBaseline(xs[:trainN])
	if err != nil {
		return nil, err
	}
	var out []Anomaly
	for i := trainN; i < len(xs); i++ {
		if s := b.Score(xs[i]); math.Abs(s) >= threshold {
			out = append(out, Anomaly{Index: i, Value: xs[i], Score: s})
		}
	}
	return out, nil
}

// Changepoint is the result of a level-shift search.
type Changepoint struct {
	Index     int     // first sample of the new regime
	Before    float64 // mean before
	After     float64 // mean after
	Shift     float64 // After - Before
	TStat     float64 // Welch's t statistic of the split
	PValue    float64 // two-sided p-value
	Signif    bool    // PValue < 0.01
	Magnitude float64 // |Shift| / pooled std
}

// DetectShift finds the single most likely mean-shift point of a series
// by maximizing the Welch t statistic over all admissible split points
// (each side keeps at least minSeg samples).
func DetectShift(xs []float64, minSeg int) (Changepoint, error) {
	if minSeg < 2 {
		minSeg = 2
	}
	if len(xs) < 2*minSeg {
		return Changepoint{}, ErrInsufficientData
	}
	best := Changepoint{TStat: -1}
	for i := minSeg; i <= len(xs)-minSeg; i++ {
		t, df := welch(xs[:i], xs[i:])
		at := math.Abs(t)
		if at > best.TStat {
			p := 2 * (1 - studentTCDF(at, df))
			before, after := Mean(xs[:i]), Mean(xs[i:])
			pooled := math.Sqrt((Variance(xs[:i]) + Variance(xs[i:])) / 2)
			mag := math.Inf(1)
			if pooled > 0 {
				mag = math.Abs(after-before) / pooled
			}
			best = Changepoint{
				Index: i, Before: before, After: after, Shift: after - before,
				TStat: at, PValue: p, Signif: p < 0.01, Magnitude: mag,
			}
		}
	}
	if best.TStat < 0 {
		return Changepoint{}, ErrInsufficientData
	}
	return best, nil
}

// welch returns Welch's t statistic and degrees of freedom for two
// samples.
func welch(a, b []float64) (t, df float64) {
	na, nb := float64(len(a)), float64(len(b))
	va, vb := Variance(a), Variance(b)
	se := math.Sqrt(va/na + vb/nb)
	if se == 0 {
		if Mean(a) == Mean(b) {
			return 0, na + nb - 2
		}
		return math.Inf(1), na + nb - 2
	}
	t = (Mean(b) - Mean(a)) / se
	num := math.Pow(va/na+vb/nb, 2)
	den := math.Pow(va/na, 2)/(na-1) + math.Pow(vb/nb, 2)/(nb-1)
	if den == 0 {
		df = na + nb - 2
	} else {
		df = num / den
	}
	return t, df
}

// WelchTTest runs a two-sided Welch's t-test and returns the t statistic
// and p-value.
func WelchTTest(a, b []float64) (t, p float64, err error) {
	if len(a) < 2 || len(b) < 2 {
		return 0, 1, ErrInsufficientData
	}
	t, df := welch(a, b)
	if math.IsInf(t, 0) {
		return t, 0, nil
	}
	p = 2 * (1 - studentTCDF(math.Abs(t), df))
	return t, p, nil
}

// studentTCDF returns P(T <= t) for Student's t with df degrees of
// freedom, via the regularized incomplete beta function.
func studentTCDF(t, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	x := df / (df + t*t)
	ib := regIncBeta(df/2, 0.5, x)
	if t > 0 {
		return 1 - 0.5*ib
	}
	return 0.5 * ib
}

// regIncBeta computes the regularized incomplete beta I_x(a, b) with the
// continued-fraction expansion (Numerical Recipes style).
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta, _ := math.Lgamma(a + b)
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	front := math.Exp(lbeta - la - lb + a*math.Log(x) + b*math.Log(1-x))
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

func betacf(a, b, x float64) float64 {
	const maxIter = 200
	const eps = 3e-14
	const fpmin = 1e-300
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// series. It returns 0 when either series is constant.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, ErrInsufficientData
	}
	ma, mb := Mean(a), Mean(b)
	var sab, sa, sb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		sa += da * da
		sb += db * db
	}
	if sa == 0 || sb == 0 {
		return 0, nil
	}
	return sab / math.Sqrt(sa*sb), nil
}

// ranks assigns fractional ranks (ties get the average rank).
func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return xs[idx[i]] < xs[idx[j]] })
	out := make([]float64, len(xs))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// Spearman returns the Spearman rank correlation of two equal-length
// series.
func Spearman(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, ErrInsufficientData
	}
	return Pearson(ranks(a), ranks(b))
}

// KendallTau returns Kendall's tau-a of two equal-length series.
func KendallTau(a, b []float64) (float64, error) {
	if len(a) != len(b) || len(a) < 2 {
		return 0, ErrInsufficientData
	}
	var conc, disc float64
	for i := 0; i < len(a); i++ {
		for j := i + 1; j < len(a); j++ {
			s := (a[i] - a[j]) * (b[i] - b[j])
			switch {
			case s > 0:
				conc++
			case s < 0:
				disc++
			}
		}
	}
	n := float64(len(a))
	return (conc - disc) / (n * (n - 1) / 2), nil
}

// Jaccard returns |A∩B| / |A∪B| of two string sets; 1 when both empty.
func Jaccard(a, b []string) float64 {
	sa := make(map[string]bool, len(a))
	for _, x := range a {
		sa[x] = true
	}
	sb := make(map[string]bool, len(b))
	for _, x := range b {
		sb[x] = true
	}
	if len(sa) == 0 && len(sb) == 0 {
		return 1
	}
	inter := 0
	for x := range sa {
		if sb[x] {
			inter++
		}
	}
	union := len(sa) + len(sb) - inter
	return float64(inter) / float64(union)
}

// CombineEvidence fuses independent confidence scores in [0,1] with a
// noisy-OR: the combined belief that at least one evidence source is
// right. Used by the forensic workflow to merge statistical,
// infrastructure and routing evidence.
func CombineEvidence(confs ...float64) float64 {
	p := 1.0
	for _, c := range confs {
		if c < 0 {
			c = 0
		}
		if c > 1 {
			c = 1
		}
		p *= 1 - c
	}
	return 1 - p
}

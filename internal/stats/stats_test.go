package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); !almost(m, 5, 1e-12) {
		t.Errorf("Mean = %f", m)
	}
	if v := Variance(xs); !almost(v, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %f", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty-input conventions violated")
	}
}

func TestMedianPercentile(t *testing.T) {
	if m := Median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("Median odd = %f", m)
	}
	if m := Median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("Median even = %f", m)
	}
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %f", p)
	}
	if p := Percentile(xs, 100); p != 10 {
		t.Errorf("P100 = %f", p)
	}
	if p := Percentile(xs, 50); p != 5.5 {
		t.Errorf("P50 = %f", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 4}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 4 {
		t.Error("Percentile mutated input")
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %f,%f", min, max)
	}
	if a, b := MinMax(nil); a != 0 || b != 0 {
		t.Error("MinMax(nil) must be 0,0")
	}
}

func TestBaselineAndScore(t *testing.T) {
	xs := []float64{10, 10.2, 9.8, 10.1, 9.9, 10, 10.3, 9.7}
	b, err := FitBaseline(xs)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b.Median, 10, 0.11) {
		t.Errorf("baseline median = %f", b.Median)
	}
	if s := b.Score(20); s < 5 {
		t.Errorf("score of blatant outlier too small: %f", s)
	}
	if s := b.Score(10); math.Abs(s) > 1 {
		t.Errorf("score of central value too large: %f", s)
	}
	if _, err := FitBaseline([]float64{1, 2}); err == nil {
		t.Error("want ErrInsufficientData")
	}
}

func TestBaselineZeroScale(t *testing.T) {
	b, err := FitBaseline([]float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if s := b.Score(5); s != 0 {
		t.Errorf("score of identical value = %f", s)
	}
	if s := b.Score(6); !math.IsInf(s, 1) {
		t.Errorf("score against constant baseline = %f, want +Inf", s)
	}
}

func TestDetectAnomalies(t *testing.T) {
	xs := make([]float64, 50)
	rng := rand.New(rand.NewPCG(1, 2))
	for i := range xs {
		xs[i] = 100 + rng.Float64()*2
	}
	xs[40] = 160 // blatant spike
	got, err := DetectAnomalies(xs, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Index != 40 {
		t.Fatalf("anomalies = %+v, want single hit at 40", got)
	}
	if got[0].Score < 5 {
		t.Errorf("anomaly score = %f", got[0].Score)
	}
	if _, err := DetectAnomalies(xs, 49, 3); err != nil {
		t.Errorf("trainN=49 should be fine: %v", err)
	}
	if _, err := DetectAnomalies(xs, 50, 3); err == nil {
		t.Error("trainN=len must fail")
	}
}

func TestDetectShift(t *testing.T) {
	xs := make([]float64, 60)
	rng := rand.New(rand.NewPCG(3, 4))
	for i := range xs {
		xs[i] = 50 + rng.Float64()
		if i >= 36 {
			xs[i] += 30 // level shift at 36
		}
	}
	cp, err := DetectShift(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Index < 34 || cp.Index > 38 {
		t.Errorf("changepoint at %d, want ≈36", cp.Index)
	}
	if !cp.Signif {
		t.Errorf("shift not significant: p=%g", cp.PValue)
	}
	if cp.Shift < 25 || cp.Shift > 35 {
		t.Errorf("shift = %f, want ≈30", cp.Shift)
	}
}

func TestDetectShiftNoShift(t *testing.T) {
	xs := make([]float64, 40)
	rng := rand.New(rand.NewPCG(9, 9))
	for i := range xs {
		xs[i] = 10 + rng.Float64()
	}
	cp, err := DetectShift(xs, 5)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Signif && cp.Magnitude > 1 {
		t.Errorf("found large significant shift in noise: %+v", cp)
	}
	if _, err := DetectShift([]float64{1, 2, 3}, 5); err == nil {
		t.Error("short series must fail")
	}
}

func TestWelchTTest(t *testing.T) {
	a := []float64{10, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9, 10.4}
	b := []float64{15, 15.5, 14.5, 15.2, 14.8, 15.1, 14.9, 15.4}
	tt, p, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if tt < 10 {
		t.Errorf("t = %f, want large", tt)
	}
	if p > 1e-6 {
		t.Errorf("p = %g, want tiny", p)
	}
	// Same distribution: p should be large.
	_, p, err = WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.9 {
		t.Errorf("self-test p = %g, want ≈1", p)
	}
	if _, _, err := WelchTTest([]float64{1}, a); err == nil {
		t.Error("want error for tiny sample")
	}
}

func TestStudentTCDF(t *testing.T) {
	// Known quantiles: t(df=10) P(T<=1.812) ≈ 0.95.
	if got := studentTCDF(1.812, 10); !almost(got, 0.95, 0.005) {
		t.Errorf("tCDF(1.812,10) = %f", got)
	}
	if got := studentTCDF(0, 7); !almost(got, 0.5, 1e-9) {
		t.Errorf("tCDF(0,7) = %f", got)
	}
	if got := studentTCDF(-1.812, 10); !almost(got, 0.05, 0.005) {
		t.Errorf("tCDF(-1.812,10) = %f", got)
	}
}

func TestPearsonSpearman(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	b := []float64{2, 4, 6, 8, 10}
	if r, _ := Pearson(a, b); !almost(r, 1, 1e-12) {
		t.Errorf("Pearson linear = %f", r)
	}
	c := []float64{10, 8, 6, 4, 2}
	if r, _ := Pearson(a, c); !almost(r, -1, 1e-12) {
		t.Errorf("Pearson inverse = %f", r)
	}
	// Monotone nonlinear: Spearman 1, Pearson < 1.
	d := []float64{1, 8, 27, 64, 125}
	rs, _ := Spearman(a, d)
	rp, _ := Pearson(a, d)
	if !almost(rs, 1, 1e-12) {
		t.Errorf("Spearman monotone = %f", rs)
	}
	if rp >= 1 {
		t.Errorf("Pearson cubic = %f, want < 1", rp)
	}
	if r, _ := Pearson(a, []float64{3, 3, 3, 3, 3}); r != 0 {
		t.Errorf("constant series correlation = %f", r)
	}
	if _, err := Pearson(a, []float64{1}); err == nil {
		t.Error("length mismatch must error")
	}
}

func TestSpearmanTies(t *testing.T) {
	a := []float64{1, 2, 2, 3}
	b := []float64{1, 2, 2, 3}
	if r, _ := Spearman(a, b); !almost(r, 1, 1e-12) {
		t.Errorf("Spearman with ties = %f", r)
	}
}

func TestKendallTau(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if r, _ := KendallTau(a, a); !almost(r, 1, 1e-12) {
		t.Errorf("tau identity = %f", r)
	}
	b := []float64{4, 3, 2, 1}
	if r, _ := KendallTau(a, b); !almost(r, -1, 1e-12) {
		t.Errorf("tau reversed = %f", r)
	}
}

func TestJaccard(t *testing.T) {
	if j := Jaccard([]string{"a", "b"}, []string{"b", "c"}); !almost(j, 1.0/3.0, 1e-12) {
		t.Errorf("Jaccard = %f", j)
	}
	if j := Jaccard(nil, nil); j != 1 {
		t.Errorf("Jaccard empty = %f", j)
	}
	if j := Jaccard([]string{"a"}, nil); j != 0 {
		t.Errorf("Jaccard disjoint-empty = %f", j)
	}
	if j := Jaccard([]string{"a", "a", "b"}, []string{"a", "b"}); j != 1 {
		t.Errorf("Jaccard dupes = %f", j)
	}
}

func TestCombineEvidence(t *testing.T) {
	if c := CombineEvidence(0.5, 0.5); !almost(c, 0.75, 1e-12) {
		t.Errorf("noisy-OR = %f", c)
	}
	if c := CombineEvidence(); c != 0 {
		t.Errorf("no evidence = %f", c)
	}
	if c := CombineEvidence(1, 0.1); c != 1 {
		t.Errorf("certain evidence = %f", c)
	}
	if c := CombineEvidence(-5, 2); c != 1 {
		t.Errorf("clamping failed: %f", c)
	}
}

func TestQuickProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 150}
	// Mean is bounded by min/max.
	if err := quick.Check(func(xs []float64) bool {
		clean := sanitize(xs)
		if len(clean) == 0 {
			return true
		}
		min, max := MinMax(clean)
		m := Mean(clean)
		return m >= min-1e-9 && m <= max+1e-9
	}, cfg); err != nil {
		t.Error(err)
	}
	// Variance is non-negative.
	if err := quick.Check(func(xs []float64) bool {
		return Variance(sanitize(xs)) >= 0
	}, cfg); err != nil {
		t.Error(err)
	}
	// Pearson is within [-1, 1].
	if err := quick.Check(func(pairs []float64) bool {
		clean := sanitize(pairs)
		if len(clean) < 4 {
			return true
		}
		n := len(clean) / 2
		r, err := Pearson(clean[:n], clean[n:2*n])
		return err == nil && r >= -1-1e-9 && r <= 1+1e-9
	}, cfg); err != nil {
		t.Error(err)
	}
	// Jaccard is symmetric.
	if err := quick.Check(func(a, b []string) bool {
		return almost(Jaccard(a, b), Jaccard(b, a), 1e-12)
	}, cfg); err != nil {
		t.Error(err)
	}
	// CombineEvidence stays in [0,1] and is monotone in added evidence.
	if err := quick.Check(func(a, b float64) bool {
		ca := CombineEvidence(math.Abs(math.Mod(a, 1)))
		cab := CombineEvidence(math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1)))
		return ca >= 0 && ca <= 1 && cab >= ca-1e-12
	}, cfg); err != nil {
		t.Error(err)
	}
}

// sanitize drops NaN/Inf and clamps magnitude so quick-generated floats
// don't overflow intermediate arithmetic.
func sanitize(xs []float64) []float64 {
	var out []float64
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e12 {
			continue
		}
		out = append(out, x)
	}
	return out
}

func BenchmarkDetectShift(b *testing.B) {
	xs := make([]float64, 200)
	rng := rand.New(rand.NewPCG(1, 1))
	for i := range xs {
		xs[i] = 10 + rng.Float64()
		if i > 120 {
			xs[i] += 5
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DetectShift(xs, 5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFitBaseline(b *testing.B) {
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = float64(i % 17)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FitBaseline(xs); err != nil {
			b.Fatal(err)
		}
	}
}

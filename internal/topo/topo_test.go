package topo

import (
	"testing"

	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
)

func testWorld(t testing.TB) *netsim.World {
	t.Helper()
	w, err := netsim.Generate(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestCustomerCone(t *testing.T) {
	w := testWorld(t)
	cones := ConeSizes(w)
	// Tier-1 cones must dominate stub cones.
	var maxStub, minT1 int
	minT1 = 1 << 30
	for _, a := range w.ASes {
		switch a.Tier {
		case netsim.Stub:
			if cones[a.ASN] > maxStub {
				maxStub = cones[a.ASN]
			}
		case netsim.Tier1:
			if cones[a.ASN] < minT1 {
				minT1 = cones[a.ASN]
			}
		}
	}
	if maxStub != 0 {
		t.Errorf("a stub has a non-empty customer cone: %d", maxStub)
	}
	if minT1 == 0 {
		t.Error("a tier-1 has an empty customer cone")
	}
}

func TestCustomerConeExcludesSelfAndSorted(t *testing.T) {
	w := testWorld(t)
	for _, a := range w.ASes {
		cone := CustomerCone(w, a.ASN)
		for i, c := range cone {
			if c == a.ASN {
				t.Fatalf("cone of %d contains itself", a.ASN)
			}
			if i > 0 && cone[i-1] >= c {
				t.Fatalf("cone of %d not sorted", a.ASN)
			}
		}
	}
}

func TestDependencyGraph(t *testing.T) {
	w := testWorld(t)
	deps := DependencyGraph(w)
	if len(deps) == 0 {
		t.Fatal("no dependencies")
	}
	// Weights per customer must sum to 1.
	sums := map[netsim.ASN]float64{}
	for _, d := range deps {
		if d.Weight <= 0 || d.Weight > 1 {
			t.Errorf("weight out of range: %+v", d)
		}
		sums[d.From] += d.Weight
	}
	for from, s := range sums {
		if s < 0.999 || s > 1.001 {
			t.Errorf("weights of %d sum to %f", from, s)
		}
	}
	// Sorted by (From, To).
	for i := 1; i < len(deps); i++ {
		a, b := deps[i-1], deps[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatal("dependency graph not sorted")
		}
	}
}

func TestPropagateStressNoFailure(t *testing.T) {
	w := testWorld(t)
	res := PropagateStress(w, nil, 0.5, 10)
	if len(res.Degraded) != 0 || res.Rounds != 0 {
		t.Errorf("healthy world degraded: %+v", res.Degraded)
	}
	for asn, s := range res.Stress {
		if s != 0 {
			t.Errorf("AS %d has stress %f in healthy world", asn, s)
		}
	}
}

func TestPropagateStressDirectFailure(t *testing.T) {
	w := testWorld(t)
	// Fail every inter-AS link of one stub: it must degrade in wave 0.
	var stub netsim.ASN
	for _, a := range w.ASes {
		if a.Tier == netsim.Stub {
			stub = a.ASN
			break
		}
	}
	failed := map[netsim.LinkID]bool{}
	for _, l := range w.IPLinks {
		if !l.IntraAS && (l.ASLinkAB[0] == stub || l.ASLinkAB[1] == stub) {
			failed[l.ID] = true
		}
	}
	res := PropagateStress(w, failed, 0.99, 10)
	if len(res.Waves) == 0 {
		t.Fatal("no waves")
	}
	found := false
	for _, a := range res.Waves[0] {
		if a == stub {
			found = true
		}
	}
	if !found {
		t.Errorf("isolated stub %d not in wave 0: %v", stub, res.Waves[0])
	}
}

func TestPropagateStressCascades(t *testing.T) {
	w := testWorld(t)
	// Low threshold: failing a large share of submarine links should
	// produce multi-round propagation in a connected topology.
	failed := map[netsim.LinkID]bool{}
	for _, l := range w.SubmarineLinks() {
		failed[l.ID] = true
	}
	res := PropagateStress(w, failed, 0.3, 20)
	if len(res.Degraded) == 0 {
		t.Fatal("mass submarine failure degraded nobody at threshold 0.3")
	}
	// Waves must be disjoint.
	seen := map[netsim.ASN]bool{}
	for _, wave := range res.Waves {
		for _, a := range wave {
			if seen[a] {
				t.Fatalf("AS %d appears in two waves", a)
			}
			seen[a] = true
		}
	}
	// Stress values within [0,1].
	for asn, s := range res.Stress {
		if s < 0 || s > 1 {
			t.Errorf("AS %d stress %f out of range", asn, s)
		}
	}
	// Monotonicity: higher threshold degrades a subset.
	strict := PropagateStress(w, failed, 0.8, 20)
	if len(strict.Degraded) > len(res.Degraded) {
		t.Errorf("higher threshold degraded more ASes: %d > %d", len(strict.Degraded), len(res.Degraded))
	}
}

func setupCascade(t testing.TB) (*nautilus.Catalog, *nautilus.CrossLayerMap) {
	t.Helper()
	w := testWorld(t)
	cat := nautilus.BuildCatalog()
	m, err := nautilus.MapWorld(w, cat)
	if err != nil {
		t.Fatal(err)
	}
	return cat, m
}

func TestCascadeCablesInitialOnly(t *testing.T) {
	cat, m := setupCascade(t)
	// Huge capacity factor: no overload cascade possible.
	res := CascadeCables(cat, m, []nautilus.CableID{"seamewe-5"}, 100)
	if len(res.Rounds) != 1 {
		t.Fatalf("rounds = %d, want 1", len(res.Rounds))
	}
	if len(res.Failed) != 1 || res.Failed[0] != "seamewe-5" {
		t.Errorf("failed = %v", res.Failed)
	}
	if _, ok := res.FinalLoad["seamewe-5"]; ok {
		t.Error("failed cable has final load")
	}
}

func TestCascadeCablesOverload(t *testing.T) {
	cat, m := setupCascade(t)
	// Tight capacity: failing the whole Europe-Asia corridor's biggest
	// carrier should overload parallels.
	loose := CascadeCables(cat, m, []nautilus.CableID{"seamewe-5", "aae-1", "seamewe-4"}, 50)
	tight := CascadeCables(cat, m, []nautilus.CableID{"seamewe-5", "aae-1", "seamewe-4"}, 1.05)
	if len(tight.Failed) < len(loose.Failed) {
		t.Errorf("tight capacity failed fewer cables (%d) than loose (%d)", len(tight.Failed), len(loose.Failed))
	}
	if len(tight.Failed) == len(loose.Failed) {
		t.Skip("corridor load too small to trigger overload in this world")
	}
	if len(tight.Rounds) < 2 {
		t.Errorf("tight cascade has %d rounds, want >= 2", len(tight.Rounds))
	}
	for id, over := range tight.Overloaded {
		if over <= 0 {
			t.Errorf("cable %s recorded non-positive overload", id)
		}
	}
}

func TestCascadeCablesDedupesInitial(t *testing.T) {
	cat, m := setupCascade(t)
	res := CascadeCables(cat, m, []nautilus.CableID{"marea", "marea"}, 10)
	if len(res.Rounds[0]) != 1 {
		t.Errorf("initial round = %v, want single marea", res.Rounds[0])
	}
}

func TestCascadeCablesClampsCapacity(t *testing.T) {
	cat, m := setupCascade(t)
	// capacityFactor below 1 must not fail every cable immediately.
	res := CascadeCables(cat, m, []nautilus.CableID{"marea"}, 0.1)
	if len(res.Failed) == cat.Len() {
		t.Error("clamped capacity still failed the entire catalog")
	}
}

func BenchmarkPropagateStress(b *testing.B) {
	w := testWorld(b)
	failed := map[netsim.LinkID]bool{}
	for _, l := range w.SubmarineLinks() {
		failed[l.ID] = true
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PropagateStress(w, failed, 0.3, 20)
	}
}

func BenchmarkCascadeCables(b *testing.B) {
	cat, m := setupCascade(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CascadeCables(cat, m, []nautilus.CableID{"seamewe-5", "aae-1"}, 1.1)
	}
}

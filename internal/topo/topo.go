// Package topo provides AS-level dependency analysis and cascading
// failure propagation: customer cones, transit-dependency graphs,
// stress propagation over the AS graph, and capacity-based cascade
// modeling over the submarine-cable layer.
//
// These are the graph algorithms the paper's Case Study 3 leans on
// ("secondary integration leverages submarine cable and AS dependency
// graphs for cascade propagation modeling").
package topo

import (
	"sort"

	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
)

// CustomerCone returns the set of ASes reachable from asn by walking
// provider→customer edges (asn's economic downstream), excluding asn
// itself, in ascending order.
func CustomerCone(w *netsim.World, asn netsim.ASN) []netsim.ASN {
	customers := map[netsim.ASN][]netsim.ASN{}
	for _, l := range w.ASLinks {
		if l.Rel == netsim.CustomerToProvider {
			customers[l.B] = append(customers[l.B], l.A)
		}
	}
	seen := map[netsim.ASN]bool{asn: true}
	queue := []netsim.ASN{asn}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, c := range customers[cur] {
			if !seen[c] {
				seen[c] = true
				queue = append(queue, c)
			}
		}
	}
	delete(seen, asn)
	out := make([]netsim.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ConeSizes returns the customer-cone size of every AS; a coarse
// influence metric (tier-1s have the largest cones).
func ConeSizes(w *netsim.World) map[netsim.ASN]int {
	out := make(map[netsim.ASN]int, len(w.ASes))
	for _, a := range w.ASes {
		out[a.ASN] = len(CustomerCone(w, a.ASN))
	}
	return out
}

// Dependency is one weighted transit dependency: From relies on To for
// upstream connectivity with the given weight (1/number of providers).
type Dependency struct {
	From, To netsim.ASN
	Weight   float64
}

// DependencyGraph lists every transit dependency, sorted by (From, To).
func DependencyGraph(w *netsim.World) []Dependency {
	providers := map[netsim.ASN][]netsim.ASN{}
	for _, l := range w.ASLinks {
		if l.Rel == netsim.CustomerToProvider {
			providers[l.A] = append(providers[l.A], l.B)
		}
	}
	var out []Dependency
	for from, ps := range providers {
		wgt := 1.0 / float64(len(ps))
		for _, to := range ps {
			out = append(out, Dependency{From: from, To: to, Weight: wgt})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// StressResult is the outcome of AS-level stress propagation.
type StressResult struct {
	// Stress is each AS's fraction of inter-AS link capacity lost,
	// including losses induced by degraded neighbors.
	Stress map[netsim.ASN]float64
	// Degraded lists ASes whose stress reached the threshold, ascending.
	Degraded []netsim.ASN
	// Waves groups newly degraded ASes by propagation round: Waves[0]
	// degraded directly from the physical failure, Waves[1] from wave 0,
	// and so on.
	Waves [][]netsim.ASN
	// Rounds is the number of propagation rounds until fixpoint.
	Rounds int
}

// PropagateStress models cascading degradation at the AS level. Each
// AS's capacity inventory is all of its IP links: inter-AS interconnects
// plus its own intra-AS backbone (the long-haul links that ride
// submarine cables). Initial stress is the fraction of that inventory
// physically failed. Any AS at or above threshold degrades; links to a
// degraded AS count as lost for its neighbors, which may push them over
// the threshold in the next round, and so on until a fixpoint (or
// maxRounds).
func PropagateStress(w *netsim.World, failedLinks map[netsim.LinkID]bool, threshold float64, maxRounds int) StressResult {
	if maxRounds <= 0 {
		maxRounds = 16
	}
	// Link inventory per AS: inter-AS edges know their neighbor so that
	// neighbor degradation propagates; backbone edges only fail
	// physically.
	type edge struct {
		id       netsim.LinkID
		neighbor netsim.ASN // 0 for intra-AS backbone links
	}
	links := map[netsim.ASN][]edge{}
	for _, l := range w.IPLinks {
		a, b := l.ASLinkAB[0], l.ASLinkAB[1]
		if l.IntraAS {
			links[a] = append(links[a], edge{id: l.ID})
			continue
		}
		links[a] = append(links[a], edge{id: l.ID, neighbor: b})
		links[b] = append(links[b], edge{id: l.ID, neighbor: a})
	}

	degraded := map[netsim.ASN]bool{}
	res := StressResult{Stress: make(map[netsim.ASN]float64, len(w.ASes))}

	for round := 0; round < maxRounds; round++ {
		var wave []netsim.ASN
		for _, a := range w.ASes {
			es := links[a.ASN]
			if len(es) == 0 {
				continue
			}
			lost := 0
			for _, e := range es {
				if failedLinks[e.id] || (e.neighbor != 0 && degraded[e.neighbor]) {
					lost++
				}
			}
			stress := float64(lost) / float64(len(es))
			res.Stress[a.ASN] = stress
			if stress >= threshold && !degraded[a.ASN] {
				wave = append(wave, a.ASN)
			}
		}
		if len(wave) == 0 {
			break
		}
		sort.Slice(wave, func(i, j int) bool { return wave[i] < wave[j] })
		for _, a := range wave {
			degraded[a] = true
		}
		res.Waves = append(res.Waves, wave)
		res.Rounds++
	}

	res.Degraded = make([]netsim.ASN, 0, len(degraded))
	for a := range degraded {
		res.Degraded = append(res.Degraded, a)
	}
	sort.Slice(res.Degraded, func(i, j int) bool { return res.Degraded[i] < res.Degraded[j] })
	return res
}

// CableCascade is the outcome of capacity-based cascade modeling on the
// cable layer.
type CableCascade struct {
	// Rounds groups failed cables by round: Rounds[0] is the initial
	// failure set, later rounds are overload-induced.
	Rounds [][]nautilus.CableID
	// Failed is the union of all rounds, sorted.
	Failed []nautilus.CableID
	// FinalLoad is each surviving cable's load after redistribution,
	// in units of carried IP links.
	FinalLoad map[nautilus.CableID]float64
	// Overloaded reports by how much each failed cable exceeded its
	// capacity (0 for the initial set).
	Overloaded map[nautilus.CableID]float64
}

// CascadeCables runs Motter–Lai-style load redistribution on the cable
// layer. Each cable's initial load is the number of IP links mapped to
// it; capacity is load × capacityFactor. When a cable fails its load
// redistributes equally over parallel cables (cables sharing its two
// terminal regions); any cable pushed past capacity fails in the next
// round. capacityFactor ≤ 1 would be degenerate, so it is clamped to a
// minimum of 1.05.
func CascadeCables(cat *nautilus.Catalog, m *nautilus.CrossLayerMap, initial []nautilus.CableID, capacityFactor float64) CableCascade {
	if capacityFactor < 1.05 {
		capacityFactor = 1.05
	}
	load := map[nautilus.CableID]float64{}
	capacity := map[nautilus.CableID]float64{}
	for _, c := range cat.Cables() {
		l := float64(len(m.LinksOn(c.ID)))
		load[c.ID] = l
		// Even idle cables have headroom for a couple of links.
		capacity[c.ID] = l*capacityFactor + 2
	}

	failed := map[nautilus.CableID]bool{}
	res := CableCascade{
		FinalLoad:  map[nautilus.CableID]float64{},
		Overloaded: map[nautilus.CableID]float64{},
	}

	round := dedupeCables(initial)
	for len(round) > 0 {
		res.Rounds = append(res.Rounds, round)
		// Mark failures, then redistribute their load.
		for _, id := range round {
			failed[id] = true
		}
		for _, id := range round {
			parallels := parallelCables(cat, id, failed)
			if len(parallels) == 0 {
				continue // capacity simply lost
			}
			share := load[id] / float64(len(parallels))
			for _, p := range parallels {
				load[p] += share
			}
			load[id] = 0
		}
		// Collect overloads for the next round.
		var next []nautilus.CableID
		for _, c := range cat.Cables() {
			if failed[c.ID] {
				continue
			}
			if load[c.ID] > capacity[c.ID] {
				next = append(next, c.ID)
				res.Overloaded[c.ID] = load[c.ID] - capacity[c.ID]
			}
		}
		sort.Slice(next, func(i, j int) bool { return next[i] < next[j] })
		round = next
	}

	for id, l := range load {
		if !failed[id] {
			res.FinalLoad[id] = l
		}
	}
	res.Failed = make([]nautilus.CableID, 0, len(failed))
	for id := range failed {
		res.Failed = append(res.Failed, id)
	}
	sort.Slice(res.Failed, func(i, j int) bool { return res.Failed[i] < res.Failed[j] })
	return res
}

// parallelCables returns surviving cables sharing at least two regions
// with the given cable — the systems traffic would realistically shift
// onto.
func parallelCables(cat *nautilus.Catalog, id nautilus.CableID, failed map[nautilus.CableID]bool) []nautilus.CableID {
	c, ok := cat.ByID(id)
	if !ok {
		return nil
	}
	regions := c.Regions()
	var out []nautilus.CableID
	for _, other := range cat.Cables() {
		if other.ID == id || failed[other.ID] {
			continue
		}
		shared := 0
		for _, r := range other.Regions() {
			for _, r2 := range regions {
				if r == r2 {
					shared++
				}
			}
		}
		if shared >= 2 {
			out = append(out, other.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func dedupeCables(ids []nautilus.CableID) []nautilus.CableID {
	seen := map[nautilus.CableID]bool{}
	var out []nautilus.CableID
	for _, id := range ids {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Package expert implements the hand-coded specialist solutions the
// paper compares ArachNet against: the workflows a measurement expert
// using Xaminer/Nautilus directly would write for each case study.
//
// Each baseline also declares its conceptual transformation steps, so
// the evaluator can measure "functional overlap" between the agent's
// generated workflow and the expert's architecture — the paper's
// Level-1 comparison axis.
package expert

import (
	"fmt"
	"sort"
	"time"

	"arachnet/internal/bgp"
	"arachnet/internal/core"
	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
	"arachnet/internal/topo"
	"arachnet/internal/xaminer"
)

// CableImpactSteps are the conceptual transformations of the expert
// Xaminer cable-impact workflow (Case Study 1's comparison basis).
func CableImpactSteps() []string {
	return []string{
		"cable-resolution",
		"cable-dependency",
		"link-extraction",
		"ip-extraction",
		"geo-mapping",
		"aggregation",
		"country-level",
	}
}

// CableImpact is the expert solution to Case Study 1: Xaminer's
// embedding-based country impact for a named cable, built on Nautilus
// mappings.
func CableImpact(env *core.Environment, cableName string) (*xaminer.ImpactReport, error) {
	cab, ok := env.Catalog.ByName(cableName)
	if !ok {
		return nil, fmt.Errorf("expert: unknown cable %q", cableName)
	}
	return env.Analyzer.AnalyzeCableFailure(false, cab.ID)
}

// DisasterImpactSteps are the conceptual transformations of the expert
// multi-disaster workflow (Case Study 2).
func DisasterImpactSteps() []string {
	return []string{"event-selection", "event-processing", "combine", "aggregation"}
}

// DisasterImpact is the expert solution to Case Study 2: process each
// severe earthquake and hurricane with the single event-processing
// function and combine.
func DisasterImpact(env *core.Environment, failProb float64) (xaminer.GlobalImpact, error) {
	var impacts []xaminer.EventImpact
	events := append(xaminer.SevereEarthquakes(), xaminer.SevereHurricanes()...)
	for _, ev := range events {
		im, err := env.Analyzer.ProcessEvent(ev, failProb)
		if err != nil {
			return xaminer.GlobalImpact{}, fmt.Errorf("expert: %s: %w", ev.Name, err)
		}
		impacts = append(impacts, im)
	}
	return xaminer.CombineEventImpacts(env.Analyzer, impacts), nil
}

// CascadeSteps are the conceptual transformations of the expert
// cascading-failure workflow (Case Study 3).
func CascadeSteps() []string {
	return []string{
		"corridor", "cable-dependency", "link-extraction", "impact-analysis",
		"cascade", "dependency-graph", "anomaly-detection", "routing",
		"synthesis", "cross-layer",
	}
}

// CascadeReport bundles the expert Case Study 3 outputs.
type CascadeReport struct {
	Corridor []nautilus.CableID
	Impact   *xaminer.ImpactReport
	Cascade  topo.CableCascade
	Stress   topo.StressResult
	Bursts   []bgp.Burst
	Timeline *core.Timeline
}

// Cascade is the expert solution to Case Study 3: manual integration of
// Nautilus corridor mapping, Xaminer impact, dependency-graph cascade
// modeling, BGP temporal analysis and cross-layer synthesis.
func Cascade(env *core.Environment, regionA, regionB geo.Region) (*CascadeReport, error) {
	corridor := env.Catalog.Between(regionA, regionB)
	if len(corridor) == 0 {
		return nil, fmt.Errorf("expert: no cables between %s and %s", regionA, regionB)
	}
	var ids []nautilus.CableID
	for _, c := range corridor {
		ids = append(ids, c.ID)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	failed := xaminer.FailCables(env.CrossMap, ids...)
	impact := env.Analyzer.AnalyzeLinkFailures("expert-cascade", failed, false)

	cascade := topo.CascadeCables(env.Catalog, env.CrossMap, ids, 1.2)
	allFailed := xaminer.FailCables(env.CrossMap, cascade.Failed...)
	stress := topo.PropagateStress(env.World, allFailed, 0.4, 16)

	var bursts []bgp.Burst
	if env.Scenario != nil {
		bursts = bgp.DetectBursts(env.Scenario.Stream, time.Hour, 4)
	}
	timeline := core.BuildTimeline(env, impact, core.CascadeBundle{Cable: cascade, Stress: stress}, bursts, nil)
	return &CascadeReport{
		Corridor: ids, Impact: impact, Cascade: cascade, Stress: stress,
		Bursts: bursts, Timeline: timeline,
	}, nil
}

// ForensicSteps are the conceptual transformations of the expert
// root-cause workflow (Case Study 4).
func ForensicSteps() []string {
	return []string{
		"measurement-data", "anomaly-detection", "statistical", "routing-data",
		"infrastructure-correlation", "temporal-correlation", "validation",
		"evidence-synthesis", "causation",
	}
}

// Forensic is the expert solution to Case Study 4: statistical anomaly
// detection, infrastructure correlation, BGP validation, evidence
// fusion. It shares the statistical core with the agent's capabilities
// (the comparison is about workflow architecture, not detector
// implementations).
func Forensic(env *core.Environment) (core.Verdict, error) {
	if env.Scenario == nil || env.Scenario.Archive == nil || len(env.Scenario.Stream) == 0 {
		return core.Verdict{}, fmt.Errorf("expert: forensic baseline needs scenario data")
	}
	finding := core.DetectLatencyShift(env.Scenario.Archive)
	suspects := core.RankSuspectCables(env, finding, env.Scenario.Stream)
	correlation := 0.0
	if finding.Detected {
		correlation = bgp.CorrelateWindow(env.Scenario.Stream,
			finding.ShiftAt.Add(-2*time.Hour), finding.ShiftAt.Add(6*time.Hour))
	}
	return core.SynthesizeVerdict(finding, suspects, correlation), nil
}

package expert

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"arachnet/internal/core"
	"arachnet/internal/eval"
	"arachnet/internal/netsim"
	"arachnet/internal/xaminer"
)

func testEnv(t testing.TB, withScenario bool) *core.Environment {
	t.Helper()
	env, err := core.NewEnvironment(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if withScenario {
		if err := env.InjectCableFailureScenario(core.ScenarioConfig{Seed: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return env
}

// busyCable returns a cable that actually carries links in this world,
// preferring SeaMeWe-5 (the paper's target) when it does.
func busyCable(env *core.Environment) string {
	if len(env.CrossMap.LinksOn("seamewe-5")) > 0 {
		return "SeaMeWe-5"
	}
	best := ""
	bestN := 0
	for _, c := range env.Catalog.Cables() {
		if n := len(env.CrossMap.LinksOn(c.ID)); n > bestN {
			best, bestN = c.Name, n
		}
	}
	return best
}

func TestExpertCableImpact(t *testing.T) {
	env := testEnv(t, false)
	name := busyCable(env)
	rep, err := CableImpact(env, name)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedLinks == 0 || len(rep.Countries) == 0 {
		t.Fatalf("vacuous expert impact for %s", name)
	}
	if _, err := CableImpact(env, "atlantis-99"); err == nil {
		t.Error("unknown cable must error")
	}
}

// TestCS1AgentMatchesExpert is the Level-1 reproduction: the agent's
// independently derived workflow must be functionally equivalent to the
// expert Xaminer solution.
func TestCS1AgentMatchesExpert(t *testing.T) {
	env := testEnv(t, false)
	name := busyCable(env)

	// Agent: restricted registry (core Nautilus functions only,
	// Xaminer's abstraction withheld — the paper's setup).
	restricted, err := core.BuiltinRegistry().Subset(core.CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(env, restricted)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(context.Background(), fmt.Sprintf("Identify the impact at a country level due to %s cable failure", name))
	if err != nil {
		t.Fatal(err)
	}
	agentImpact, ok := rep.Result.Outputs["aggregation"].(*xaminer.ImpactReport)
	if !ok {
		t.Fatalf("agent output is %T", rep.Result.Outputs["aggregation"])
	}

	expertImpact, err := CableImpact(env, name)
	if err != nil {
		t.Fatal(err)
	}

	sim := eval.CompareImpact(agentImpact, expertImpact)
	if sim.TopKJaccard < 0.6 {
		t.Errorf("top-K country overlap = %.2f, want >= 0.6", sim.TopKJaccard)
	}
	if sim.Spearman < 0.6 {
		t.Errorf("rank correlation = %.2f, want >= 0.6", sim.Spearman)
	}
	if sim.CountryRecall < 0.9 {
		t.Errorf("country recall = %.2f, want >= 0.9", sim.CountryRecall)
	}
	overlap := eval.FunctionalOverlap(rep.Design.Chosen, sys.Registry(), CableImpactSteps())
	if overlap < 0.7 {
		t.Errorf("functional overlap = %.2f, want >= 0.7 (agent: %v)",
			overlap, rep.Design.Chosen.CapabilityNames())
	}
}

func TestCS2AgentMatchesExpert(t *testing.T) {
	env := testEnv(t, false)
	sys, err := core.NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(context.Background(), "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability")
	if err != nil {
		t.Fatal(err)
	}
	agentGlobal, ok := rep.Result.Outputs["combination"].(xaminer.GlobalImpact)
	if !ok {
		t.Fatalf("agent output is %T", rep.Result.Outputs["combination"])
	}
	expertGlobal, err := DisasterImpact(env, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	// Functionally identical workflows → identical results.
	if agentGlobal.ExpectedLinksLost != expertGlobal.ExpectedLinksLost {
		t.Errorf("expected loss: agent %.2f vs expert %.2f",
			agentGlobal.ExpectedLinksLost, expertGlobal.ExpectedLinksLost)
	}
	sim := eval.CompareImpact(eval.GlobalToReport(agentGlobal), eval.GlobalToReport(expertGlobal))
	if sim.TopKJaccard < 0.99 || sim.CountryRecall < 0.99 {
		t.Errorf("CS2 similarity = %+v, want identical", sim)
	}
	if overlap := eval.FunctionalOverlap(rep.Design.Chosen, sys.Registry(), DisasterImpactSteps()); overlap < 0.75 {
		t.Errorf("functional overlap = %.2f", overlap)
	}
}

func TestCS3AgentMatchesExpert(t *testing.T) {
	env := testEnv(t, true)
	sys, err := core.NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(context.Background(), "Analyze the cascading effects of submarine cable failures between Europe and Asia")
	if err != nil {
		t.Fatal(err)
	}
	agentTl, ok := rep.Result.Outputs["synthesis"].(*core.Timeline)
	if !ok {
		t.Fatalf("agent output is %T", rep.Result.Outputs["synthesis"])
	}
	exp, err := Cascade(env, "Europe", "Asia")
	if err != nil {
		t.Fatal(err)
	}
	// Same cascade structure.
	if agentTl.CablesFailed != len(exp.Cascade.Failed) {
		t.Errorf("cables failed: agent %d vs expert %d", agentTl.CablesFailed, len(exp.Cascade.Failed))
	}
	if agentTl.ASesDegraded != len(exp.Stress.Degraded) {
		t.Errorf("ASes degraded: agent %d vs expert %d", agentTl.ASesDegraded, len(exp.Stress.Degraded))
	}
	// Same top-impacted countries.
	if len(agentTl.TopCountries) == 0 || len(exp.Timeline.TopCountries) == 0 {
		t.Fatal("missing top countries")
	}
	if agentTl.TopCountries[0] != exp.Timeline.TopCountries[0] {
		t.Errorf("top country: agent %s vs expert %s", agentTl.TopCountries[0], exp.Timeline.TopCountries[0])
	}
	if overlap := eval.FunctionalOverlap(rep.Design.Chosen, sys.Registry(), CascadeSteps()); overlap < 0.6 {
		t.Errorf("functional overlap = %.2f", overlap)
	}
}

func TestCS4AgentMatchesExpert(t *testing.T) {
	env := testEnv(t, true)
	sys, err := core.NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(context.Background(), "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable.")
	if err != nil {
		t.Fatal(err)
	}
	agentV, ok := rep.Result.Outputs["verdict"].(core.Verdict)
	if !ok {
		t.Fatalf("agent output is %T", rep.Result.Outputs["verdict"])
	}
	expertV, err := Forensic(env)
	if err != nil {
		t.Fatal(err)
	}
	ag := eval.CompareVerdicts(agentV, expertV)
	if !ag.SameCausation {
		t.Errorf("causation disagrees: agent %v vs expert %v", agentV.CauseIsCableFailure, expertV.CauseIsCableFailure)
	}
	if !ag.SameCable {
		t.Errorf("cable disagrees: agent %s vs expert %s", agentV.Cable, expertV.Cable)
	}
	if ag.ConfidenceGap > 0.2 {
		t.Errorf("confidence gap %.2f too large", ag.ConfidenceGap)
	}
	// Both must match the injected ground truth.
	if expertV.Cable != env.Scenario.TrueCable {
		t.Errorf("expert itself missed ground truth: %s vs %s", expertV.Cable, env.Scenario.TrueCable)
	}
	if overlap := eval.FunctionalOverlap(rep.Design.Chosen, sys.Registry(), ForensicSteps()); overlap < 0.7 {
		t.Errorf("functional overlap = %.2f", overlap)
	}
}

func TestExpertDisasterImpactValidation(t *testing.T) {
	env := testEnv(t, false)
	if _, err := DisasterImpact(env, -1); err == nil {
		t.Error("invalid probability must error")
	}
}

func TestExpertCascadeValidation(t *testing.T) {
	env := testEnv(t, false)
	if _, err := Cascade(env, "Europe", "Europe"); err != nil {
		// Europe-Europe cables exist (intra-European systems); this
		// should actually succeed.
		t.Logf("Europe-Europe corridor: %v", err)
	}
	if _, err := Cascade(env, "Oceania", "South America"); err == nil {
		t.Log("Oceania-SouthAmerica corridor unexpectedly exists; acceptable if catalog grows")
	}
}

func TestExpertForensicNeedsScenario(t *testing.T) {
	env := testEnv(t, false)
	if _, err := Forensic(env); err == nil {
		t.Error("forensic baseline without data must error")
	}
}

func TestExpertStepsDeclared(t *testing.T) {
	for name, steps := range map[string][]string{
		"cable":    CableImpactSteps(),
		"disaster": DisasterImpactSteps(),
		"cascade":  CascadeSteps(),
		"forensic": ForensicSteps(),
	} {
		if len(steps) < 3 {
			t.Errorf("%s: too few conceptual steps", name)
		}
		for _, s := range steps {
			if strings.TrimSpace(s) == "" {
				t.Errorf("%s: empty step", name)
			}
		}
	}
}

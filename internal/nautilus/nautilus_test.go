package nautilus

import (
	"testing"

	"arachnet/internal/geo"
	"arachnet/internal/netsim"
)

func TestCatalogWellFormed(t *testing.T) {
	cat := BuildCatalog()
	if cat.Len() < 30 {
		t.Fatalf("catalog too small: %d cables", cat.Len())
	}
	seen := map[CableID]bool{}
	for _, c := range cat.Cables() {
		if seen[c.ID] {
			t.Errorf("duplicate cable %s", c.ID)
		}
		seen[c.ID] = true
		if len(c.Landings) < 2 {
			t.Errorf("%s: fewer than 2 landings", c.ID)
		}
		if c.Name == "" || c.RFS < 1990 || c.RFS > 2026 {
			t.Errorf("%s: bad metadata %q %d", c.ID, c.Name, c.RFS)
		}
		for _, lpt := range c.Landings {
			if _, ok := geo.CountryByCode(lpt.Country); !ok {
				t.Errorf("%s: unknown landing country %s", c.ID, lpt.Country)
			}
			if !lpt.Loc.Valid() {
				t.Errorf("%s: invalid landing coord %v", c.ID, lpt.Loc)
			}
		}
		if c.LengthKm() <= 0 {
			t.Errorf("%s: non-positive length", c.ID)
		}
	}
}

func TestSegmentKm(t *testing.T) {
	cat := BuildCatalog()
	c, ok := cat.ByID("seamewe-5")
	if !ok {
		t.Fatal("seamewe-5 missing")
	}
	// Segment distance is symmetric and monotone in span.
	if c.SegmentKm(0, 3) != c.SegmentKm(3, 0) {
		t.Error("SegmentKm not symmetric")
	}
	if c.SegmentKm(0, 2) >= c.SegmentKm(0, 5) {
		t.Error("SegmentKm not monotone with span")
	}
	if c.SegmentKm(2, 2) != 0 {
		t.Error("zero-span segment must be 0")
	}
	// SeaMeWe-5 France→Singapore should be in the 15,000–30,000 km range.
	total := c.LengthKm()
	if total < 15000 || total > 30000 {
		t.Errorf("SeaMeWe-5 length = %.0f km, implausible", total)
	}
}

func TestByNameResolution(t *testing.T) {
	cat := BuildCatalog()
	for _, q := range []string{"SeaMeWe-5", "seamewe-5", "SEAMEWE5", "sea me we 5"} {
		c, ok := cat.ByName(q)
		if !ok || c.ID != "seamewe-5" {
			t.Errorf("ByName(%q) = %v,%v", q, c.ID, ok)
		}
	}
	if c, ok := cat.ByName("AAE-1"); !ok || c.ID != "aae-1" {
		t.Errorf("ByName(AAE-1) = %v,%v", c.ID, ok)
	}
	if c, ok := cat.ByName("falcon"); !ok || c.ID != "falcon" {
		t.Errorf("ByName(falcon) = %v,%v", c.ID, ok)
	}
	if _, ok := cat.ByName("atlantis-9"); ok {
		t.Error("unknown cable resolved")
	}
}

func TestLandingIn(t *testing.T) {
	cat := BuildCatalog()
	eg := cat.LandingIn("EG")
	if len(eg) < 5 {
		t.Errorf("Egypt should land many cables, got %d", len(eg))
	}
	found := false
	for _, id := range eg {
		if id == "seamewe-5" {
			found = true
		}
	}
	if !found {
		t.Error("SeaMeWe-5 should land in Egypt")
	}
	if got := cat.LandingIn("KZ"); len(got) != 0 {
		t.Errorf("landlocked Kazakhstan lands cables: %v", got)
	}
}

func TestBetweenRegions(t *testing.T) {
	cat := BuildCatalog()
	ea := cat.Between(geo.Europe, geo.Asia)
	if len(ea) < 4 {
		t.Fatalf("Europe-Asia corridor too thin: %d cables", len(ea))
	}
	ids := map[CableID]bool{}
	for _, c := range ea {
		ids[c.ID] = true
	}
	for _, want := range []CableID{"seamewe-5", "seamewe-4", "aae-1", "flag-ea"} {
		if !ids[want] {
			t.Errorf("Europe-Asia corridor missing %s", want)
		}
	}
	// A transatlantic-only cable must not show up.
	if ids["marea"] {
		t.Error("MAREA wrongly in Europe-Asia corridor")
	}
}

func TestCableCountriesAndRegions(t *testing.T) {
	cat := BuildCatalog()
	c, _ := cat.ByID("marea")
	cs := c.Countries()
	if len(cs) != 2 || cs[0] != "US" || cs[1] != "ES" {
		t.Errorf("MAREA countries = %v", cs)
	}
	if !c.LandsIn("US") || c.LandsIn("FR") {
		t.Error("LandsIn wrong for MAREA")
	}
	regs := c.Regions()
	if len(regs) != 2 {
		t.Errorf("MAREA regions = %v", regs)
	}
}

func testWorld(t testing.TB) *netsim.World {
	t.Helper()
	w, err := netsim.Generate(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestMapWorld(t *testing.T) {
	w := testWorld(t)
	cat := BuildCatalog()
	m, err := MapWorld(w, cat)
	if err != nil {
		t.Fatal(err)
	}
	if cov := m.Coverage(w); cov < 0.6 {
		t.Errorf("mapping coverage = %.2f, want >= 0.6", cov)
	}
	for id, ms := range m.LinkCables {
		if len(ms) == 0 {
			t.Fatalf("link %d mapped with zero candidates", id)
		}
		for i, cm := range ms {
			if cm.Confidence < 0 || cm.Confidence > 1 {
				t.Errorf("link %d candidate %s confidence %f out of range", id, cm.Cable, cm.Confidence)
			}
			if i > 0 && ms[i-1].Confidence < cm.Confidence {
				t.Errorf("link %d candidates not sorted", id)
			}
			if cm.SegmentKm <= 0 {
				t.Errorf("link %d candidate %s has no segment", id, cm.Cable)
			}
		}
	}
}

func TestMapWorldInverseIndexConsistent(t *testing.T) {
	w := testWorld(t)
	m, err := MapWorld(w, BuildCatalog())
	if err != nil {
		t.Fatal(err)
	}
	for cid, links := range m.CableLinks {
		for _, id := range links {
			best, ok := m.BestCable(id)
			if !ok || best.Cable != cid {
				t.Errorf("cable %s claims link %d but best is %v", cid, id, best.Cable)
			}
		}
	}
	// Every mapped link appears in exactly one cable's list.
	count := map[netsim.LinkID]int{}
	for _, links := range m.CableLinks {
		for _, id := range links {
			count[id]++
		}
	}
	for _, id := range m.MappedLinks() {
		if count[id] != 1 {
			t.Errorf("link %d appears in %d cable lists", id, count[id])
		}
	}
}

func TestMapWorldGeographicPlausibility(t *testing.T) {
	w := testWorld(t)
	m, err := MapWorld(w, BuildCatalog())
	if err != nil {
		t.Fatal(err)
	}
	cat := BuildCatalog()
	for _, id := range m.MappedLinks() {
		best, _ := m.BestCable(id)
		l, _ := w.LinkByID(id)
		ra, _ := w.RouterByID(l.A)
		rb, _ := w.RouterByID(l.B)
		c, _ := cat.ByID(best.Cable)
		// The claimed landings must be within the shore-distance bound of
		// the routers (either orientation).
		dA := geo.DistanceKm(best.LandingA.Loc, ra.Loc)
		dB := geo.DistanceKm(best.LandingB.Loc, rb.Loc)
		if dA > maxShoreDistanceKm || dB > maxShoreDistanceKm {
			t.Errorf("link %d→%s: landing too far (%.0f, %.0f km)", id, c.ID, dA, dB)
		}
	}
}

func TestGBLinksMapToGBCables(t *testing.T) {
	w := testWorld(t)
	m, err := MapWorld(w, BuildCatalog())
	if err != nil {
		t.Fatal(err)
	}
	cat := BuildCatalog()
	for _, l := range w.SubmarineLinks() {
		a, b := w.LinkEndpoints(l)
		if a != "GB" && b != "GB" {
			continue
		}
		best, ok := m.BestCable(l.ID)
		if !ok {
			continue
		}
		c, _ := cat.ByID(best.Cable)
		// A GB-terminating link must map to a cable with a GB-proximate
		// landing (GB itself, or a near-shore neighbor like IE/FR/NL/BE).
		near := false
		for _, cc := range c.Countries() {
			switch cc {
			case "GB", "IE", "FR", "NL", "BE", "DK", "DE", "NO", "PT", "ES":
				near = true
			}
		}
		if !near {
			t.Errorf("GB link %d mapped to far cable %s (%v)", l.ID, c.ID, c.Countries())
		}
	}
}

func TestValidateSoL(t *testing.T) {
	w := testWorld(t)
	m, err := MapWorld(w, BuildCatalog())
	if err != nil {
		t.Fatal(err)
	}
	// With a generous tolerance nothing should violate.
	if v := m.ValidateSoL(w, 0.05); len(v) != 0 {
		t.Errorf("unexpected SoL violations at tolerance 0.05: %d", len(v))
	}
	// With an absurd tolerance (>1) everything mapped must violate or the
	// check is vacuous.
	if v := m.ValidateSoL(w, 10); len(v) == 0 && len(m.LinkCables) > 0 {
		t.Error("SoL check vacuous: no violations at tolerance 10")
	}
}

func TestMapWorldNilArgs(t *testing.T) {
	if _, err := MapWorld(nil, BuildCatalog()); err == nil {
		t.Error("want error for nil world")
	}
	w := testWorld(t)
	if _, err := MapWorld(w, nil); err == nil {
		t.Error("want error for nil catalog")
	}
}

func TestPathConsistency(t *testing.T) {
	if pathConsistency(1000, 1000) != 1 {
		t.Error("equal distances must give 1")
	}
	if got := pathConsistency(500, 1000); got != 0.5 {
		t.Errorf("pathConsistency(500,1000) = %f", got)
	}
	if got := pathConsistency(1000, 500); got != 0.5 {
		t.Errorf("pathConsistency(1000,500) = %f", got)
	}
	if pathConsistency(0, 100) != 0 || pathConsistency(100, 0) != 0 {
		t.Error("degenerate distances must give 0")
	}
}

func BenchmarkMapWorld(b *testing.B) {
	w := testWorld(b)
	cat := BuildCatalog()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := MapWorld(w, cat); err != nil {
			b.Fatal(err)
		}
	}
}

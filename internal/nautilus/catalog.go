// Package nautilus reimplements the capability surface of the Nautilus
// cross-layer cartography framework (Ramanathan & Abdu Jyothi, 2023): a
// submarine-cable catalog with landing points, and an inference engine
// that maps IP-level links onto the physical cables they ride, with
// per-candidate confidence scores and speed-of-light validation.
//
// The catalog is synthetic but modeled on the real submarine-cable
// system: cable names, corridors and landing sequences follow their
// real-world counterparts so that measurement queries ("SeaMeWe-5
// failure", "cables between Europe and Asia") are meaningful.
package nautilus

import (
	"fmt"
	"sort"
	"strings"

	"arachnet/internal/geo"
)

// CableID identifies a submarine cable system.
type CableID string

// LandingPoint is one shore end of a cable.
type LandingPoint struct {
	Country string // ISO code
	City    string
	Loc     geo.Coord
}

// Cable is one submarine cable system. Landings are ordered along the
// cable route; the route length is the sum of hop distances times a
// routing-stretch factor.
type Cable struct {
	ID       CableID
	Name     string
	RFS      int // ready-for-service year
	Landings []LandingPoint
}

// LengthKm returns the route length of the cable.
func (c Cable) LengthKm() float64 {
	return c.SegmentKm(0, len(c.Landings)-1)
}

// SegmentKm returns the along-route distance between two landing
// indexes. The 1.1 factor models slack and hazard-avoidance routing.
func (c Cable) SegmentKm(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	var km float64
	for k := i; k < j; k++ {
		km += geo.DistanceKm(c.Landings[k].Loc, c.Landings[k+1].Loc)
	}
	return km * 1.1
}

// Countries returns the distinct landing countries in route order.
func (c Cable) Countries() []string {
	seen := map[string]bool{}
	var out []string
	for _, lp := range c.Landings {
		if !seen[lp.Country] {
			seen[lp.Country] = true
			out = append(out, lp.Country)
		}
	}
	return out
}

// LandsIn reports whether the cable has a landing in the given country.
func (c Cable) LandsIn(country string) bool {
	for _, lp := range c.Landings {
		if lp.Country == country {
			return true
		}
	}
	return false
}

// Regions returns the set of regions the cable touches.
func (c Cable) Regions() []geo.Region {
	seen := map[geo.Region]bool{}
	var out []geo.Region
	for _, lp := range c.Landings {
		if r, ok := geo.RegionOf(lp.Country); ok && !seen[r] {
			seen[r] = true
			out = append(out, r)
		}
	}
	return out
}

// Catalog is the queryable cable database.
type Catalog struct {
	cables    []Cable
	byID      map[CableID]*Cable
	byCountry map[string][]CableID
}

// lp builds a landing point at a country's hub with an offset, giving
// each city a stable synthetic coordinate near the real landing site.
func lp(country, city string, dLat, dLng float64) LandingPoint {
	c, ok := geo.CountryByCode(country)
	if !ok {
		panic(fmt.Sprintf("nautilus: unknown country %q in catalog", country))
	}
	return LandingPoint{
		Country: country, City: city,
		Loc: geo.Coord{Lat: c.Hub.Lat + dLat, Lng: c.Hub.Lng + dLng},
	}
}

// BuildCatalog returns the built-in cable catalog. The returned catalog
// is freshly allocated and safe for the caller to hold.
func BuildCatalog() *Catalog {
	cables := []Cable{
		// ───── Europe ↔ Middle East ↔ Asia corridor ─────
		{ID: "seamewe-5", Name: "SeaMeWe-5", RFS: 2016, Landings: []LandingPoint{
			lp("FR", "Toulon", 0.1, 0.6), lp("IT", "Catania", -0.5, 1.7), lp("TR", "Marmaris", -4.2, 0.3),
			lp("EG", "Zafarana", -2.0, 2.5), lp("SA", "Yanbu", 2.6, -1.1), lp("DJ", "Djibouti City", 0, 0),
			lp("OM", "Qalhat", -0.7, 0.9), lp("AE", "Kalba", 0.0, 1.2), lp("PK", "Karachi", 0, 0),
			lp("IN", "Mumbai", 0, 0), lp("LK", "Matara", -1.0, 0.7), lp("BD", "Kuakata", 0.4, -1.9),
			lp("MM", "Ngwe Saung", 0.1, -1.6), lp("MY", "Malacca", -0.9, 0.6), lp("SG", "Tuas", 0, -0.2),
		}},
		{ID: "seamewe-4", Name: "SeaMeWe-4", RFS: 2005, Landings: []LandingPoint{
			lp("FR", "Marseille", 0, 0), lp("IT", "Palermo", 0, 0), lp("DZ", "Annaba", 0.2, 4.6),
			lp("TN", "Bizerte", 0.4, -0.4), lp("EG", "Alexandria", 0, 0), lp("SA", "Jeddah", 0, 0),
			lp("AE", "Fujairah", 0.1, 1.2), lp("PK", "Karachi", 0, 0), lp("IN", "Chennai", -5.8, 7.4),
			lp("LK", "Colombo", 0, 0), lp("BD", "Cox's Bazar", 0, 0), lp("TH", "Satun", -1.2, 1.6),
			lp("MY", "Penang", 2.3, -1.3), lp("SG", "Tuas", 0, -0.2),
		}},
		{ID: "aae-1", Name: "AAE-1 (Asia-Africa-Europe 1)", RFS: 2017, Landings: []LandingPoint{
			lp("FR", "Marseille", 0, 0), lp("GR", "Chania", -2.5, 0.3), lp("EG", "Abu Talat", 0, -0.8),
			lp("SA", "Jeddah", 0, 0), lp("DJ", "Djibouti City", 0, 0), lp("OM", "Barka", 0.1, -0.7),
			lp("AE", "Fujairah", 0.1, 1.2), lp("QA", "Doha", 0, 0), lp("PK", "Karachi", 0, 0),
			lp("IN", "Mumbai", 0, 0), lp("MM", "Ngwe Saung", 0.1, -1.6), lp("TH", "Songkhla", -0.8, 2.2),
			lp("MY", "Kuala Lumpur", 0, 0), lp("SG", "Tuas", 0, -0.2), lp("KH", "Sihanoukville", 0, 0),
			lp("VN", "Vung Tau", -0.4, 0.6), lp("HK", "Tseung Kwan O", 0, 0.1),
		}},
		{ID: "falcon", Name: "FALCON", RFS: 2006, Landings: []LandingPoint{
			lp("EG", "Suez", -1.2, 3.4), lp("SA", "Jeddah", 0, 0), lp("OM", "Muscat", 0, 0),
			lp("AE", "Al Fujayrah", 0.1, 1.2), lp("QA", "Doha", 0, 0), lp("BH", "Manama", 0, 0),
			lp("KW", "Kuwait City", 0, 0), lp("IQ", "Al-Faw", 0, 0), lp("IN", "Mumbai", 0, 0),
		}},
		{ID: "imewe", Name: "IMEWE", RFS: 2010, Landings: []LandingPoint{
			lp("FR", "Marseille", 0, 0), lp("IT", "Catania", -0.5, 1.7), lp("EG", "Alexandria", 0, 0),
			lp("SA", "Jeddah", 0, 0), lp("AE", "Fujairah", 0.1, 1.2), lp("PK", "Karachi", 0, 0),
			lp("IN", "Mumbai", 0, 0),
		}},
		{ID: "eig", Name: "Europe India Gateway (EIG)", RFS: 2011, Landings: []LandingPoint{
			lp("GB", "Bude", -0.7, -4.4), lp("PT", "Sesimbra", -0.6, 0.1), lp("ES", "Gibraltar", 0, 0),
			lp("MT", "Marsaxlokk", -0.1, 0.1), lp("EG", "Alexandria", 0, 0), lp("SA", "Jeddah", 0, 0),
			lp("DJ", "Djibouti City", 0, 0), lp("OM", "Barka", 0.1, -0.7), lp("AE", "Fujairah", 0.1, 1.2),
			lp("IN", "Mumbai", 0, 0),
		}},
		{ID: "flag-ea", Name: "FLAG Europe-Asia", RFS: 1997, Landings: []LandingPoint{
			lp("GB", "Porthcurno", -1.4, -5.4), lp("ES", "Estepona", 0.2, 0.2), lp("IT", "Palermo", 0, 0),
			lp("EG", "Alexandria", 0, 0), lp("JO", "Aqaba", 0, 0), lp("SA", "Jeddah", 0, 0),
			lp("AE", "Fujairah", 0.1, 1.2), lp("IN", "Mumbai", 0, 0), lp("MY", "Penang", 2.3, -1.3),
			lp("TH", "Satun", -1.2, 1.6), lp("HK", "Lantau", 0, -0.3), lp("CN", "Shanghai", 0, 0),
			lp("KR", "Keoje", 0.5, -0.4), lp("JP", "Ninomiya", -0.4, -0.4),
		}},
		{ID: "pakcable", Name: "PEACE (Pakistan & East Africa Connecting Europe)", RFS: 2022, Landings: []LandingPoint{
			lp("FR", "Marseille", 0, 0), lp("MT", "Marsaxlokk", -0.1, 0.1), lp("EG", "Zafarana", -2.0, 2.5),
			lp("KE", "Mombasa", 0, 0), lp("PK", "Karachi", 0, 0), lp("SG", "Tuas", 0, -0.2),
		}},

		// ───── Intra-Mediterranean / Europe ─────
		{ID: "medloop", Name: "MedLoop", RFS: 2009, Landings: []LandingPoint{
			lp("ES", "Barcelona", 5.2, -3.2), lp("FR", "Marseille", 0, 0), lp("IT", "Genoa", 6.3, -4.5),
			lp("GR", "Athens", 0, 0), lp("CY", "Yeroskipou", 0.1, -0.6), lp("IL", "Tel Aviv", 0, 0),
		}},
		{ID: "atlas-offshore", Name: "Atlas Offshore", RFS: 2007, Landings: []LandingPoint{
			lp("FR", "Marseille", 0, 0), lp("MA", "Asilah", 2.0, -1.0),
		}},
		{ID: "celtic", Name: "Celtic Norse", RFS: 2000, Landings: []LandingPoint{
			lp("IE", "Dublin", 0, 0), lp("GB", "Holyhead", 1.8, -4.5), lp("FR", "Lannion", 5.4, -8.8),
		}},
		{ID: "nordbalt", Name: "NordBalt Connect", RFS: 2013, Landings: []LandingPoint{
			lp("SE", "Stockholm", 0, 0), lp("FI", "Helsinki", 0, 0), lp("DE", "Rostock", 4.0, 3.4),
			lp("DK", "Copenhagen", 0, 0), lp("PL", "Kolobrzeg", 1.9, -5.4), lp("NO", "Kristiansand", -0.9, 2.3),
		}},
		{ID: "ukfr", Name: "Channel Crossing", RFS: 2003, Landings: []LandingPoint{
			lp("GB", "Dover", -0.4, 1.4), lp("FR", "Calais", 7.7, -3.5), lp("BE", "Ostend", 0, 0),
			lp("NL", "Katwijk", 0, -0.5),
		}},
		{ID: "blacksea", Name: "Black Sea Fibre", RFS: 2014, Landings: []LandingPoint{
			lp("RO", "Constanța", 0, 0), lp("BG", "Varna", 0, 0), lp("TR", "Istanbul", 0, 0),
		}},

		// ───── Transatlantic ─────
		{ID: "apollo", Name: "Apollo", RFS: 2003, Landings: []LandingPoint{
			lp("GB", "Bude", -0.7, -4.4), lp("FR", "Lannion", 5.4, -8.8), lp("US", "Shirley NY", 0.1, -1.4),
		}},
		{ID: "tat-14", Name: "TAT-14", RFS: 2001, Landings: []LandingPoint{
			lp("US", "Manasquan", -0.6, 0.1), lp("GB", "Bude", -0.7, -4.4), lp("FR", "St-Valery", 6.8, -3.8),
			lp("NL", "Katwijk", 0, -0.5), lp("DE", "Norden", 3.5, -1.5), lp("DK", "Blaabjerg", 0, -4.4),
		}},
		{ID: "marea", Name: "MAREA", RFS: 2017, Landings: []LandingPoint{
			lp("US", "Virginia Beach", -3.9, -1.9), lp("ES", "Bilbao", 7.1, 2.4),
		}},
		{ID: "grace-hopper", Name: "Grace Hopper", RFS: 2022, Landings: []LandingPoint{
			lp("US", "New York", 0, 0), lp("GB", "Bude", -0.7, -4.4), lp("ES", "Bilbao", 7.1, 2.4),
		}},
		{ID: "dunant", Name: "Dunant", RFS: 2021, Landings: []LandingPoint{
			lp("US", "Virginia Beach", -3.9, -1.9), lp("FR", "St-Hilaire", 3.3, -6.9),
		}},
		{ID: "amitie", Name: "Amitié", RFS: 2023, Landings: []LandingPoint{
			lp("US", "Lynn MA", 1.7, 3.0), lp("GB", "Bude", -0.7, -4.4), lp("FR", "Le Porge", 1.5, -6.5),
		}},
		{ID: "hibernia", Name: "Hibernia Express", RFS: 2015, Landings: []LandingPoint{
			lp("CA", "Halifax", 0, 0), lp("IE", "Cork", -1.5, -2.2), lp("GB", "Brean", 0.7, -3.0),
		}},

		// ───── Europe/Americas ↔ South America ─────
		{ID: "ellalink", Name: "EllaLink", RFS: 2021, Landings: []LandingPoint{
			lp("PT", "Sines", -0.8, 0.3), lp("BR", "Fortaleza", 20.2, 7.8),
		}},
		{ID: "sacs", Name: "SACS (South Atlantic Cable System)", RFS: 2018, Landings: []LandingPoint{
			lp("AO", "Luanda", 0, 0), lp("BR", "Fortaleza", 20.2, 7.8),
		}},
		{ID: "monet", Name: "Monet", RFS: 2017, Landings: []LandingPoint{
			lp("US", "Boca Raton", -14.4, 6.0), lp("BR", "Fortaleza", 20.2, 7.8), lp("BR", "Santos", 0, 0),
		}},
		{ID: "seabras", Name: "Seabras-1", RFS: 2017, Landings: []LandingPoint{
			lp("US", "Wall NJ", -0.6, 0.1), lp("BR", "Praia Grande", -0.1, -0.1),
		}},
		{ID: "tannat", Name: "Tannat", RFS: 2018, Landings: []LandingPoint{
			lp("BR", "Santos", 0, 0), lp("UY", "Maldonado", 0.2, 1.2), lp("AR", "Las Toninas", -1.8, 1.7),
		}},
		{ID: "curie", Name: "Curie", RFS: 2020, Landings: []LandingPoint{
			lp("US", "Hermosa Beach", -6.9, -44.4), lp("PA", "Balboa", 0, 0), lp("CL", "Valparaíso", 0, 0),
		}},
		{ID: "samba", Name: "SAm-1", RFS: 2001, Landings: []LandingPoint{
			lp("US", "Boca Raton", -14.4, 6.0), lp("CO", "Barranquilla", 0.6, -0.3), lp("PE", "Lurín", -0.3, 0.2),
			lp("CL", "Arica", 14.6, 1.3), lp("AR", "Las Toninas", -1.8, 1.7), lp("BR", "Santos", 0, 0),
			lp("DO", "Punta Cana", 0.2, 1.5), lp("PA", "Colón", 0.4, -0.4), lp("VE", "Camuri", 0.1, 0.1),
		}},
		{ID: "arcos", Name: "ARCOS-1", RFS: 2001, Landings: []LandingPoint{
			lp("US", "North Miami", -14.8, 5.8), lp("MX", "Cancún", 1.7, 12.2), lp("CR", "Puerto Limón", 0.1, 1.0),
			lp("PA", "Colón", 0.4, -0.4), lp("CO", "Cartagena", 0, 0), lp("VE", "Punto Fijo", 1.2, -3.3),
			lp("DO", "Santo Domingo", 0, 0), lp("CU", "Havana", 0, 0),
		}},

		// ───── Africa ─────
		{ID: "2africa", Name: "2Africa", RFS: 2024, Landings: []LandingPoint{
			lp("GB", "Bude", -0.7, -4.4), lp("PT", "Sesimbra", -0.6, 0.1), lp("SN", "Dakar", 0, 0),
			lp("CI", "Abidjan", 0, 0), lp("GH", "Accra", 0, 0), lp("NG", "Lagos", 0, 0),
			lp("CM", "Douala", 0, 0), lp("AO", "Luanda", 0, 0), lp("ZA", "Cape Town", 0, 0),
			lp("MZ", "Maputo", 0, 0), lp("TZ", "Dar es Salaam", 0, 0), lp("KE", "Mombasa", 0, 0),
			lp("DJ", "Djibouti City", 0, 0), lp("SD", "Port Sudan", 0, 0), lp("SA", "Jeddah", 0, 0),
			lp("EG", "Suez", -1.2, 3.4), lp("IT", "Genoa", 6.3, -4.5), lp("FR", "Marseille", 0, 0),
		}},
		{ID: "wacs", Name: "WACS (West Africa Cable System)", RFS: 2012, Landings: []LandingPoint{
			lp("GB", "Highbridge", 0.8, -3.0), lp("PT", "Seixal", -0.1, 0.0), lp("SN", "Dakar", 0, 0),
			lp("CI", "Abidjan", 0, 0), lp("GH", "Accra", 0, 0), lp("NG", "Lagos", 0, 0),
			lp("CM", "Limbe", 0.0, -0.7), lp("AO", "Sangano", -0.5, 0.2), lp("ZA", "Yzerfontein", 0.8, -0.3),
		}},
		{ID: "eassy", Name: "EASSy", RFS: 2010, Landings: []LandingPoint{
			lp("ZA", "Mtunzini", 4.9, 13.3), lp("MZ", "Maputo", 0, 0), lp("TZ", "Dar es Salaam", 0, 0),
			lp("KE", "Mombasa", 0, 0), lp("DJ", "Djibouti City", 0, 0), lp("SD", "Port Sudan", 0, 0),
		}},
		{ID: "seacom", Name: "SEACOM", RFS: 2009, Landings: []LandingPoint{
			lp("ZA", "Mtunzini", 4.9, 13.3), lp("MZ", "Maputo", 0, 0), lp("TZ", "Dar es Salaam", 0, 0),
			lp("KE", "Mombasa", 0, 0), lp("DJ", "Djibouti City", 0, 0), lp("EG", "Zafarana", -2.0, 2.5),
			lp("FR", "Marseille", 0, 0), lp("IN", "Mumbai", 0, 0),
		}},

		// ───── Intra-Asia / Transpacific / Oceania ─────
		{ID: "apg", Name: "APG (Asia Pacific Gateway)", RFS: 2016, Landings: []LandingPoint{
			lp("SG", "Tuas", 0, -0.2), lp("MY", "Kuantan", 0.7, 1.6), lp("TH", "Sri Racha", 5.2, 2.5),
			lp("VN", "Da Nang", 5.2, 1.6), lp("HK", "Tseung Kwan O", 0, 0.1), lp("CN", "Nanhui", -0.2, 0.4),
			lp("TW", "Toucheng", -0.3, 0.3), lp("KR", "Busan", 0, 0), lp("JP", "Shima", -1.3, -2.9),
		}},
		{ID: "sjc", Name: "SJC (Southeast Asia Japan Cable)", RFS: 2013, Landings: []LandingPoint{
			lp("SG", "Tuas", 0, -0.2), lp("ID", "Batam", -4.9, -2.7), lp("BN", "Tungku", 0, 0),
			lp("PH", "Nasugbu", -0.6, -0.2), lp("HK", "Chung Hom Kok", -0.1, 0.0), lp("CN", "Shantou", -7.9, -4.7),
			lp("JP", "Chikura", -0.7, 0.3),
		}},
		{ID: "aag", Name: "AAG (Asia-America Gateway)", RFS: 2009, Landings: []LandingPoint{
			lp("MY", "Mersing", -0.8, 2.1), lp("SG", "Tuas", 0, -0.2), lp("TH", "Sri Racha", 5.2, 2.5),
			lp("VN", "Vung Tau", -0.4, 0.6), lp("BN", "Tungku", 0, 0), lp("PH", "Currimao", 3.4, -0.5),
			lp("HK", "South Lantau", -0.1, -0.3), lp("GU", "Tanguisson", 0.1, 0.0), lp("US", "Honolulu", -19.0, -83.9),
		}},
		{ID: "unity", Name: "Unity/EAC-Pacific", RFS: 2010, Landings: []LandingPoint{
			lp("JP", "Chikura", -0.7, 0.3), lp("US", "Redondo Beach", -6.8, -44.4),
		}},
		{ID: "faster", Name: "FASTER", RFS: 2016, Landings: []LandingPoint{
			lp("JP", "Shima", -1.3, -2.9), lp("TW", "Tanshui", 0.1, 0.0), lp("US", "Bandon OR", 2.4, -50.5),
		}},
		{ID: "jupiter", Name: "JUPITER", RFS: 2020, Landings: []LandingPoint{
			lp("JP", "Shima", -1.3, -2.9), lp("PH", "Daet", -0.5, 1.9), lp("US", "Hermosa Beach", -6.9, -44.4),
		}},
		{ID: "tpe", Name: "TPE (Trans-Pacific Express)", RFS: 2008, Landings: []LandingPoint{
			lp("CN", "Qingdao", 4.8, -1.1), lp("KR", "Keoje", 0.5, -0.4), lp("TW", "Tanshui", 0.1, 0.0),
			lp("JP", "Maruyama", -0.6, 0.2), lp("US", "Nedonna Beach", 4.8, -49.9),
		}},
		{ID: "southern-cross", Name: "Southern Cross", RFS: 2000, Landings: []LandingPoint{
			lp("AU", "Sydney", 0, 0), lp("NZ", "Takapuna", 0, 0), lp("FJ", "Suva", 0, 0),
			lp("US", "Hillsboro OR", 4.6, -48.7),
		}},
		{ID: "indigo", Name: "INDIGO", RFS: 2019, Landings: []LandingPoint{
			lp("SG", "Tuas", 0, -0.2), lp("ID", "Jakarta", 0, 0), lp("AU", "Perth", -1.2, -35.4),
		}},
		{ID: "ajc", Name: "Australia-Japan Cable", RFS: 2001, Landings: []LandingPoint{
			lp("AU", "Sydney", 0, 0), lp("GU", "Tumon Bay", 0.1, 0.0), lp("JP", "Shima", -1.3, -2.9),
		}},
		{ID: "sea-h2x", Name: "SEA-H2X", RFS: 2024, Landings: []LandingPoint{
			lp("SG", "Tuas", 0, -0.2), lp("TH", "Songkhla", -0.8, 2.2), lp("PH", "Batangas", -0.8, 0.1),
			lp("HK", "Tseung Kwan O", 0, 0.1), lp("CN", "Hainan", -11.6, -11.2),
		}},
	}

	cat := &Catalog{
		cables:    cables,
		byID:      make(map[CableID]*Cable, len(cables)),
		byCountry: make(map[string][]CableID),
	}
	sort.Slice(cat.cables, func(i, j int) bool { return cat.cables[i].ID < cat.cables[j].ID })
	for i := range cat.cables {
		c := &cat.cables[i]
		cat.byID[c.ID] = c
		for _, cc := range c.Countries() {
			cat.byCountry[cc] = append(cat.byCountry[cc], c.ID)
		}
	}
	return cat
}

// Cables returns every cable sorted by ID.
func (cat *Catalog) Cables() []Cable {
	out := make([]Cable, len(cat.cables))
	copy(out, cat.cables)
	return out
}

// Len returns the number of cables.
func (cat *Catalog) Len() int { return len(cat.cables) }

// ByID returns the cable with the given ID.
func (cat *Catalog) ByID(id CableID) (Cable, bool) {
	c, ok := cat.byID[id]
	if !ok {
		return Cable{}, false
	}
	return *c, true
}

// ByName resolves a cable by (case-insensitive) name or ID. It also
// accepts common short forms such as "SeaMeWe-5" vs "seamewe-5".
func (cat *Catalog) ByName(name string) (Cable, bool) {
	norm := normalizeCableName(name)
	for i := range cat.cables {
		c := &cat.cables[i]
		if normalizeCableName(string(c.ID)) == norm || normalizeCableName(c.Name) == norm {
			return *c, true
		}
	}
	// Substring match on the canonical name as a fallback.
	for i := range cat.cables {
		c := &cat.cables[i]
		if strings.Contains(normalizeCableName(c.Name), norm) && norm != "" {
			return *c, true
		}
	}
	return Cable{}, false
}

func normalizeCableName(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			b.WriteRune(r)
		}
	}
	return b.String()
}

// LandingIn returns the IDs of cables landing in a country, sorted.
func (cat *Catalog) LandingIn(country string) []CableID {
	ids := cat.byCountry[country]
	out := make([]CableID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Between returns cables that land in both regions — the resolver for
// queries like "cables between Europe and Asia".
func (cat *Catalog) Between(a, b geo.Region) []Cable {
	var out []Cable
	for _, c := range cat.cables {
		hasA, hasB := false, false
		for _, r := range c.Regions() {
			if r == a {
				hasA = true
			}
			if r == b {
				hasB = true
			}
		}
		if hasA && hasB {
			out = append(out, c)
		}
	}
	return out
}

package nautilus

import (
	"fmt"
	"math"
	"sort"

	"arachnet/internal/geo"
	"arachnet/internal/netsim"
)

// CableMatch is one candidate cable for an IP link, with the landing
// points the link is inferred to use and a confidence in [0,1].
type CableMatch struct {
	Cable      CableID
	Confidence float64
	LandingA   LandingPoint // shore end near the link's A router
	LandingB   LandingPoint // shore end near the link's B router
	SegmentKm  float64      // along-cable distance between the two landings
}

// CrossLayerMap is the Nautilus output artifact: every submarine IP link
// annotated with ranked candidate cables, an assignment of each link to
// the cable it rides, plus the inverse index from cable to carried
// links.
type CrossLayerMap struct {
	// LinkCables maps link ID to candidates sorted by descending
	// confidence. Only submarine links appear.
	LinkCables map[netsim.LinkID][]CableMatch
	// Assigned maps each link to the cable it is inferred to ride.
	// Parallel links between the same country pair are spread across
	// the top candidates (operators provision diverse systems), so the
	// assignment is not always the top-confidence candidate.
	Assigned map[netsim.LinkID]CableID
	// CableLinks maps cable ID to the links assigned to it.
	CableLinks map[CableID][]netsim.LinkID
	// Unmapped lists submarine links with no plausible cable.
	Unmapped []netsim.LinkID
}

// maxShoreDistanceKm bounds how far a router may sit from a landing
// point for the cable to be considered a candidate.
const maxShoreDistanceKm = 1200

// MapWorld runs the cross-layer mapping over every submarine link of a
// world. It is deterministic and side-effect free.
func MapWorld(w *netsim.World, cat *Catalog) (*CrossLayerMap, error) {
	if w == nil || cat == nil {
		return nil, fmt.Errorf("nautilus: nil world or catalog")
	}
	m := &CrossLayerMap{
		LinkCables: make(map[netsim.LinkID][]CableMatch),
		Assigned:   make(map[netsim.LinkID]CableID),
		CableLinks: make(map[CableID][]netsim.LinkID),
	}
	// diversity spreads the k-th parallel link between a country pair
	// onto the k-th ranked candidate (mod the top 3): submarine capacity
	// between two markets is provisioned over diverse systems.
	const diversity = 3
	seenPair := map[string]int{}
	for _, l := range w.SubmarineLinks() {
		ra, okA := w.RouterByID(l.A)
		rb, okB := w.RouterByID(l.B)
		if !okA || !okB {
			return nil, fmt.Errorf("nautilus: link %d has dangling router", l.ID)
		}
		matches := candidatesFor(cat, ra, rb, l.DistKm)
		if len(matches) == 0 {
			m.Unmapped = append(m.Unmapped, l.ID)
			continue
		}
		m.LinkCables[l.ID] = matches
		ca, cb := ra.Country, rb.Country
		if ca > cb {
			ca, cb = cb, ca
		}
		pair := ca + "/" + cb
		n := diversity
		if len(matches) < n {
			n = len(matches)
		}
		pick := matches[seenPair[pair]%n].Cable
		seenPair[pair]++
		m.Assigned[l.ID] = pick
		m.CableLinks[pick] = append(m.CableLinks[pick], l.ID)
	}
	for _, ids := range m.CableLinks {
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	}
	sort.Slice(m.Unmapped, func(i, j int) bool { return m.Unmapped[i] < m.Unmapped[j] })
	return m, nil
}

// candidatesFor scores every cable against one link. The score combines
// shore proximity (how close each router is to a landing point) with
// path consistency (how well the along-cable distance explains the
// link's fiber length), mirroring Nautilus's geographic + latency
// validation stages.
func candidatesFor(cat *Catalog, ra, rb netsim.Router, linkKm float64) []CableMatch {
	var out []CableMatch
	for _, c := range cat.Cables() {
		ia, da := nearestLanding(c, ra.Loc)
		ib, db := nearestLanding(c, rb.Loc)
		if ia < 0 || ib < 0 || ia == ib {
			continue
		}
		if da > maxShoreDistanceKm || db > maxShoreDistanceKm {
			continue
		}
		seg := c.SegmentKm(ia, ib)
		if seg <= 0 {
			continue
		}
		prox := math.Exp(-(da + db) / 1500.0)
		consistency := pathConsistency(linkKm, seg)
		conf := 0.55*prox + 0.45*consistency
		// Exact-country landings get a boost: Nautilus trusts links whose
		// endpoints geolocate to landing countries.
		if c.Landings[ia].Country == ra.Country {
			conf += 0.08
		}
		if c.Landings[ib].Country == rb.Country {
			conf += 0.08
		}
		if conf > 1 {
			conf = 1
		}
		out = append(out, CableMatch{
			Cable: c.ID, Confidence: conf,
			LandingA: c.Landings[ia], LandingB: c.Landings[ib],
			SegmentKm: seg,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Cable < out[j].Cable
	})
	if len(out) > 5 {
		out = out[:5]
	}
	return out
}

func nearestLanding(c Cable, loc geo.Coord) (int, float64) {
	best, bestD := -1, math.MaxFloat64
	for i, lpt := range c.Landings {
		d := geo.DistanceKm(lpt.Loc, loc)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return best, bestD
}

// pathConsistency compares the IP link's fiber distance with the
// along-cable segment distance; 1 means a perfect explanation.
func pathConsistency(linkKm, segKm float64) float64 {
	if linkKm <= 0 || segKm <= 0 {
		return 0
	}
	r := linkKm / segKm
	if r > 1 {
		r = 1 / r
	}
	return r
}

// BestCable returns the assigned cable's match for a link.
func (m *CrossLayerMap) BestCable(id netsim.LinkID) (CableMatch, bool) {
	ms := m.LinkCables[id]
	if len(ms) == 0 {
		return CableMatch{}, false
	}
	assigned := m.Assigned[id]
	for _, cm := range ms {
		if cm.Cable == assigned {
			return cm, true
		}
	}
	return ms[0], true
}

// LinksOn returns the links assigned to a cable.
func (m *CrossLayerMap) LinksOn(c CableID) []netsim.LinkID {
	ids := m.CableLinks[c]
	out := make([]netsim.LinkID, len(ids))
	copy(out, ids)
	return out
}

// MappedLinks returns all mapped link IDs in ascending order.
func (m *CrossLayerMap) MappedLinks() []netsim.LinkID {
	out := make([]netsim.LinkID, 0, len(m.LinkCables))
	for id := range m.LinkCables {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Coverage returns the fraction of submarine links that were mapped.
func (m *CrossLayerMap) Coverage(w *netsim.World) float64 {
	total := len(w.SubmarineLinks())
	if total == 0 {
		return 0
	}
	return float64(len(m.LinkCables)) / float64(total)
}

// SolViolation describes a mapping that fails the speed-of-light check:
// the claimed cable segment could not produce an RTT as low as the
// link's fiber distance implies.
type SolViolation struct {
	Link    netsim.LinkID
	Cable   CableID
	LinkMs  float64 // one-way delay implied by link fiber length
	CableMs float64 // one-way delay over the claimed segment
}

// ValidateSoL runs Nautilus's speed-of-light validation over the best
// candidate of every mapped link: the link's implied one-way delay must
// not be dramatically lower than the cable segment's. Tolerance is the
// allowed ratio slack (e.g. 0.5 accepts links down to half the segment
// delay, absorbing routing-stretch estimation error).
func (m *CrossLayerMap) ValidateSoL(w *netsim.World, tolerance float64) []SolViolation {
	var out []SolViolation
	for _, id := range m.MappedLinks() {
		best := m.LinkCables[id][0]
		l, ok := w.LinkByID(id)
		if !ok {
			continue
		}
		linkMs := geo.PropagationDelayMs(l.DistKm)
		cableMs := geo.PropagationDelayMs(best.SegmentKm)
		if linkMs < cableMs*tolerance {
			out = append(out, SolViolation{Link: id, Cable: best.Cable, LinkMs: linkMs, CableMs: cableMs})
		}
	}
	return out
}

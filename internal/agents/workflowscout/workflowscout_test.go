package workflowscout

import (
	"strings"
	"testing"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/nautilus"
	"arachnet/internal/nlq"
	"arachnet/internal/registry"
)

// miniRegistry builds a registry with two alternative paths to an
// impact report:
//
//	direct: src.load (name → links) → big.impact (links → report)
//	long:   src.load → mid.extract → mid.locate → small.rollup
func miniRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	r := registry.New()
	emit := func(names ...string) registry.Func {
		return func(c *registry.Call) error {
			for _, n := range names {
				c.Out[n] = n
			}
			return nil
		}
	}
	r.MustRegister(registry.Capability{
		Name: "src.load", Framework: "src", Description: "load links for a cable",
		Inputs:  []registry.Port{{Name: "name", Type: registry.TString}},
		Outputs: []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Tags:    []string{"link-extraction", "cable-dependency"},
		Cost:    1, Impl: emit("links"),
	})
	r.MustRegister(registry.Capability{
		Name: "big.impact", Framework: "big", Description: "links to report directly",
		Inputs:  []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Outputs: []registry.Port{{Name: "report", Type: registry.TImpact}},
		Tags:    []string{"impact-analysis", "aggregation", "country-level"},
		Cost:    3, Impl: emit("report"),
	})
	r.MustRegister(registry.Capability{
		Name: "mid.extract", Framework: "mid", Description: "links to ips",
		Inputs:  []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Outputs: []registry.Port{{Name: "ips", Type: registry.TIPSet}},
		Tags:    []string{"ip-extraction"},
		Cost:    1, Impl: emit("ips"),
	})
	r.MustRegister(registry.Capability{
		Name: "mid.locate", Framework: "mid", Description: "ips to geo",
		Inputs:  []registry.Port{{Name: "ips", Type: registry.TIPSet}},
		Outputs: []registry.Port{{Name: "geo", Type: registry.TGeoTable}},
		Tags:    []string{"geo-mapping"},
		Cost:    1, Impl: emit("geo"),
	})
	r.MustRegister(registry.Capability{
		Name: "small.rollup", Framework: "small", Description: "geo to report",
		Inputs: []registry.Port{
			{Name: "geo", Type: registry.TGeoTable},
			{Name: "links", Type: registry.TLinkSet},
		},
		Outputs: []registry.Port{{Name: "report", Type: registry.TImpact}},
		Tags:    []string{"aggregation", "country-level"},
		Cost:    2, Impl: emit("report"),
	})
	return r
}

func cableProblem(complexity int) *querymind.ProblemSpec {
	return &querymind.ProblemSpec{
		Query: nlq.Spec{
			Raw: "impact of seamewe-5", Intent: nlq.IntentCableImpact,
			Cables: []nautilus.CableID{"seamewe-5"},
		},
		SubProblems: []querymind.SubProblem{
			{ID: "dependencies", Produces: registry.TLinkSet, Tags: []string{"link-extraction"}},
			{ID: "aggregation", Produces: registry.TImpact,
				Tags: []string{"aggregation", "country-level", "impact-analysis"}, DependsOn: []string{"dependencies"}},
		},
		Complexity: complexity,
	}
}

func TestDirectStrategyForSimpleQueries(t *testing.T) {
	reg := miniRegistry(t)
	d, err := New().Design(cableProblem(1), reg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != "direct" || d.Explored != 1 {
		t.Errorf("strategy=%s explored=%d", d.Strategy, d.Explored)
	}
	caps := d.Chosen.CapabilityNames()
	// Tag affinity must route aggregation to big.impact.
	if caps[len(caps)-1] != "big.impact" {
		t.Errorf("chosen chain = %v", caps)
	}
	if len(caps) != 2 {
		t.Errorf("direct plan has %d steps, want 2", len(caps))
	}
}

func TestExploratoryStrategyForComplexQueries(t *testing.T) {
	reg := miniRegistry(t)
	d, err := New().Design(cableProblem(5), reg)
	if err != nil {
		t.Fatal(err)
	}
	if d.Strategy != "exploratory" {
		t.Errorf("strategy = %s", d.Strategy)
	}
	if d.Explored < 2 {
		t.Fatalf("explored = %d, want >= 2 (both impact paths)", d.Explored)
	}
	// Candidates sorted best-first and chosen == first.
	if d.Alternatives[0].Workflow != d.Chosen {
		t.Error("chosen is not the best candidate")
	}
	for i := 1; i < len(d.Alternatives); i++ {
		if d.Alternatives[i-1].Score > d.Alternatives[i].Score {
			t.Error("alternatives not sorted by score")
		}
	}
	// The rejected alternative should be the long pipeline.
	foundLong := false
	for _, alt := range d.Alternatives {
		if len(alt.Workflow.Steps) >= 4 {
			foundLong = true
		}
	}
	if !foundLong {
		t.Error("long pipeline alternative never explored")
	}
}

func TestRestraintScoring(t *testing.T) {
	// The chosen workflow should touch fewer frameworks than the
	// rejected 4-step alternative (2 vs 3).
	reg := miniRegistry(t)
	d, err := New().Design(cableProblem(5), reg)
	if err != nil {
		t.Fatal(err)
	}
	best := d.Alternatives[0]
	if best.FrameworkCount > 2 {
		t.Errorf("best candidate uses %d frameworks", best.FrameworkCount)
	}
	if !strings.Contains(best.Rationale, "steps") {
		t.Errorf("rationale = %q", best.Rationale)
	}
}

func TestLiteralGrounding(t *testing.T) {
	reg := miniRegistry(t)
	d, err := New().Design(cableProblem(1), reg)
	if err != nil {
		t.Fatal(err)
	}
	src := d.Chosen.Steps[0]
	b, ok := src.Inputs["name"]
	if !ok || b.IsRef() {
		t.Fatalf("name binding = %+v", b)
	}
	if b.Literal != "seamewe-5" {
		t.Errorf("literal = %v", b.Literal)
	}
}

func TestUnsatisfiableProblem(t *testing.T) {
	reg := miniRegistry(t)
	ps := cableProblem(1)
	ps.SubProblems = append(ps.SubProblems, querymind.SubProblem{
		ID: "impossible", Produces: registry.TVerdict,
	})
	_, err := New().Design(ps, reg)
	if err == nil {
		t.Fatal("unsatisfiable problem must error")
	}
	if !strings.Contains(err.Error(), "impossible") {
		t.Errorf("error lacks subproblem context: %v", err)
	}
}

func TestMissingLiteralFails(t *testing.T) {
	reg := miniRegistry(t)
	ps := cableProblem(1)
	ps.Query.Cables = nil // no cable named → src.load's name input unbindable
	_, err := New().Design(ps, reg)
	if err == nil {
		t.Fatal("missing literal must fail planning")
	}
}

func TestArtifactReuseAcrossSubProblems(t *testing.T) {
	// The aggregation step must reference the links produced for the
	// dependencies sub-problem rather than re-planning a second loader.
	reg := miniRegistry(t)
	d, err := New().Design(cableProblem(1), reg)
	if err != nil {
		t.Fatal(err)
	}
	loaders := 0
	for _, c := range d.Chosen.CapabilityNames() {
		if c == "src.load" {
			loaders++
		}
	}
	if loaders != 1 {
		t.Errorf("src.load appears %d times, want 1", loaders)
	}
}

func TestCompositePreference(t *testing.T) {
	reg := miniRegistry(t)
	reg.MustRegister(registry.Capability{
		Name: "composite.load_to_report_2", Framework: "composite",
		Description: "validated pattern",
		Inputs:      []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Outputs:     []registry.Port{{Name: "report", Type: registry.TImpact}},
		Tags:        []string{"aggregation", "composite"},
		Cost:        3, Composite: true,
		Impl: func(c *registry.Call) error { c.Out["report"] = "r"; return nil },
	})
	d, err := New().Design(cableProblem(1), reg)
	if err != nil {
		t.Fatal(err)
	}
	caps := strings.Join(d.Chosen.CapabilityNames(), " ")
	if !strings.Contains(caps, "composite.") {
		t.Errorf("composite not preferred: %s", caps)
	}
}

func TestDesignedWorkflowsValidate(t *testing.T) {
	reg := miniRegistry(t)
	for _, complexity := range []int{1, 5} {
		d, err := New().Design(cableProblem(complexity), reg)
		if err != nil {
			t.Fatal(err)
		}
		for _, alt := range d.Alternatives {
			if err := alt.Workflow.Validate(reg); err != nil {
				t.Errorf("candidate invalid: %v", err)
			}
		}
	}
}

func TestOutputsAreSinksOnly(t *testing.T) {
	reg := miniRegistry(t)
	d, err := New().Design(cableProblem(1), reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Chosen.Outputs) != 1 {
		t.Fatalf("outputs = %v", d.Chosen.Outputs)
	}
	if _, ok := d.Chosen.Outputs["aggregation"]; !ok {
		t.Errorf("sink output missing: %v", d.Chosen.Outputs)
	}
}

package workflowscout_test

// Regression for the promoted-composite cascade bug (ROADMAP, present
// since PR 1): after RegistryCurator promoted the cable-impact chain,
// planning the CS3 cascade query ground nautilus.resolve_cable's
// `name` input (a generic scalar.string) with the `text` output of
// report.render — a rendered impact table — because artifact reuse and
// backward chaining matched scalars on type alone. The run then failed
// at execution with `unknown cable "scenario xaminer: ..."`. The fix
// requires scalar refs to agree on port name (see refBindable), so the
// planner now falls back to the corridor capabilities and the cascade
// query survives registry evolution.
//
// The test lives in an external package so it can drive the full
// system (core → curator → scout) exactly as the repro does: small
// world + scenario, two cable-impact Asks to fire the promotion, then
// the cascade query.

import (
	"context"
	"strings"
	"testing"

	"arachnet/internal/core"
	"arachnet/internal/netsim"
	"arachnet/internal/workflow"
)

func TestCascadePlanSurvivesCompositePromotion(t *testing.T) {
	env, err := core.NewEnvironment(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if err := env.InjectCableFailureScenario(core.ScenarioConfig{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	promoted := false
	for _, q := range []string{
		"Identify the impact at a country level due to SeaMeWe-5 cable failure",
		"Identify the impact at a country level due to SeaMeWe-4 cable failure",
	} {
		rep, err := sys.Ask(ctx, q)
		if err != nil {
			t.Fatalf("warm-up ask %q: %v", q, err)
		}
		promoted = promoted || len(rep.Promotions) > 0
	}
	if !promoted {
		t.Fatal("no composite promoted; the regression scenario needs one")
	}

	rep, err := sys.Ask(ctx,
		"Analyze the cascading effects of submarine cable failures between Europe and Asia")
	if err != nil {
		t.Fatalf("cascade query failed after promotion: %v", err)
	}

	// The broken plans bound scalar inputs to refs of differently named
	// ports (name ← sN.text). None may survive.
	for _, step := range rep.Design.Chosen.Steps {
		capb, err := sys.Registry().Get(step.Capability)
		if err != nil {
			t.Fatalf("step %s: %v", step.ID, err)
		}
		for inName, b := range step.Inputs {
			if !b.IsRef() {
				continue
			}
			port, ok := capb.InputPort(inName)
			if !ok || !strings.HasPrefix(string(port.Type), "scalar.") {
				continue
			}
			if workflow.RefPort(b.Ref) != inName {
				t.Errorf("step %s (%s): scalar input %q mis-bound to %s",
					step.ID, step.Capability, inName, b.Ref)
			}
		}
	}

	// And the run must actually produce the cross-layer timeline.
	tl, ok := rep.Result.Outputs["synthesis"].(*core.Timeline)
	if !ok || tl == nil {
		t.Fatalf("cascade output missing: %T", rep.Result.Outputs["synthesis"])
	}
	if len(tl.Entries) == 0 {
		t.Error("timeline is empty")
	}
}

// Package workflowscout implements ArachNet's second agent: solution
// space exploration and workflow design. It converts QueryMind's
// structured sub-problems into concrete workflow candidates by
// goal-driven backward chaining over the capability registry, explores
// alternatives adaptively (simple queries get one direct path, complex
// queries get a comparison of candidates), scores the trade-offs, and
// returns the chosen design with its rationale.
package workflowscout

import (
	"fmt"
	"sort"
	"strings"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/nlq"
	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// Candidate is one fully realized workflow with its trade-off scores.
type Candidate struct {
	Workflow       *workflow.Workflow
	StepCount      int
	FrameworkCount int
	TotalCost      int
	Score          float64 // lower is better
	Rationale      string
}

// Design is WorkflowScout's output artifact.
type Design struct {
	Chosen *workflow.Workflow
	// Alternatives holds every scored candidate including the chosen
	// one, best first.
	Alternatives []Candidate
	// Explored is the number of candidates generated.
	Explored int
	// Strategy is "direct" for simple queries or "exploratory".
	Strategy string
}

// Agent is the WorkflowScout agent.
type Agent struct {
	// MaxCandidates bounds exploratory search (default 6).
	MaxCandidates int
	// DirectThreshold is the complexity below which a single direct
	// path is designed without exploring alternatives (default 3).
	DirectThreshold int
}

// New returns a WorkflowScout with default settings.
func New() *Agent { return &Agent{MaxCandidates: 6, DirectThreshold: 3} }

// Design converts a problem spec into a workflow design against the
// registry.
func (a *Agent) Design(ps *querymind.ProblemSpec, reg *registry.Registry) (*Design, error) {
	if a.MaxCandidates <= 0 {
		a.MaxCandidates = 6
	}
	if a.DirectThreshold <= 0 {
		a.DirectThreshold = 3
	}
	d := &Design{Strategy: "exploratory"}
	limit := a.MaxCandidates
	if ps.Complexity < a.DirectThreshold {
		d.Strategy = "direct"
		limit = 1
	}

	candidates, err := a.enumerate(ps, reg, limit)
	if err != nil {
		return nil, err
	}
	for i := range candidates {
		scoreCandidate(&candidates[i], reg, ps)
	}
	sort.SliceStable(candidates, func(i, j int) bool { return candidates[i].Score < candidates[j].Score })
	d.Alternatives = candidates
	d.Explored = len(candidates)
	d.Chosen = candidates[0].Workflow
	return d, nil
}

// scoreCandidate computes the trade-off score: fewer steps, lower cost
// and fewer frameworks win, while methodological fit — tag affinity
// between each sub-problem and the capability realizing it — earns a
// strong credit. The framework penalty implements the paper's "skilled
// restraint" (cross-framework integration must buy its way in); the
// affinity credit prevents a cheaper but methodologically wrong
// capability from displacing the right one just because the types line
// up.
func scoreCandidate(c *Candidate, reg *registry.Registry, ps *querymind.ProblemSpec) {
	c.StepCount = len(c.Workflow.Steps)
	c.FrameworkCount = len(c.Workflow.Frameworks(reg))
	for _, s := range c.Workflow.Steps {
		if cap, err := reg.Get(s.Capability); err == nil {
			c.TotalCost += cap.Cost
		}
	}
	spTags := map[string][]string{}
	for _, sp := range ps.SubProblems {
		spTags[sp.ID] = sp.Tags
	}
	affinity := 0
	for _, s := range c.Workflow.Steps {
		tags, ok := spTags[s.Phase]
		if !ok {
			continue
		}
		cap, err := reg.Get(s.Capability)
		if err != nil {
			continue
		}
		for _, t := range tags {
			if cap.HasTag(t) {
				affinity++
			}
		}
	}
	c.Score = 2.0*float64(c.StepCount) + 1.0*float64(c.TotalCost) +
		3.0*float64(c.FrameworkCount-1) - 2.0*float64(affinity)
	c.Rationale = fmt.Sprintf("%d steps across %d frameworks, total cost %d, methodological affinity %d",
		c.StepCount, c.FrameworkCount, c.TotalCost, affinity)
}

// enumerate generates up to limit distinct candidates by varying the
// capability chosen for each required sub-problem (one variation at a
// time from the greedy base plan).
func (a *Agent) enumerate(ps *querymind.ProblemSpec, reg *registry.Registry, limit int) ([]Candidate, error) {
	base, err := a.plan(ps, reg, nil)
	if err != nil {
		return nil, err
	}
	candidates := []Candidate{{Workflow: base}}
	if limit <= 1 {
		return candidates, nil
	}
	seen := map[string]bool{fingerprint(base): true}
	for _, sp := range ps.Required() {
		producers := rankedProducers(reg, sp)
		for _, alt := range producers[1:] {
			if len(candidates) >= limit {
				return candidates, nil
			}
			wf, err := a.plan(ps, reg, map[string]string{sp.ID: alt.Name})
			if err != nil {
				continue // this alternative cannot be realized; skip
			}
			fp := fingerprint(wf)
			if seen[fp] {
				continue
			}
			seen[fp] = true
			candidates = append(candidates, Candidate{Workflow: wf})
		}
	}
	return candidates, nil
}

func fingerprint(w *workflow.Workflow) string {
	return strings.Join(w.CapabilityNames(), "|")
}

// planner holds the in-progress backward-chaining state.
type planner struct {
	reg      *registry.Registry
	ps       *querymind.ProblemSpec
	steps    []workflow.Step
	have     map[registry.DataType]string // type → "step.port" of latest artifact
	haveBySP map[string][]string          // subproblem → produced refs
	nextID   int
	force    map[string]string // subproblem ID → forced capability
}

// plan builds one workflow, forcing specific capabilities for the given
// sub-problems when requested.
func (a *Agent) plan(ps *querymind.ProblemSpec, reg *registry.Registry, force map[string]string) (*workflow.Workflow, error) {
	p := &planner{
		reg: reg, ps: ps,
		have:     map[registry.DataType]string{},
		haveBySP: map[string][]string{},
		force:    force,
	}
	outputs := map[string]string{}
	for _, sp := range ps.Required() {
		ref, err := p.satisfy(sp)
		if err != nil {
			return nil, fmt.Errorf("workflowscout: sub-problem %q: %w", sp.ID, err)
		}
		outputs[sp.ID] = ref
	}
	// Only sink sub-problems (nothing depends on them) become outputs.
	depended := map[string]bool{}
	for _, sp := range ps.SubProblems {
		for _, d := range sp.DependsOn {
			depended[d] = true
		}
	}
	finalOutputs := map[string]string{}
	for id, ref := range outputs {
		if !depended[id] {
			finalOutputs[id] = ref
		}
	}
	wf := &workflow.Workflow{
		Name:    "arachnet-" + string(ps.Query.Intent),
		Query:   ps.Query.Raw,
		Steps:   p.steps,
		Outputs: finalOutputs,
	}
	if err := wf.Validate(reg); err != nil {
		return nil, fmt.Errorf("workflowscout: designed workflow invalid: %w", err)
	}
	return wf, nil
}

// satisfy realizes one sub-problem, returning the "step.port" ref of
// its artifact.
func (p *planner) satisfy(sp querymind.SubProblem) (string, error) {
	producers := rankedProducers(p.reg, sp)
	if forced, ok := p.force[sp.ID]; ok {
		var only []*registry.Capability
		for _, c := range producers {
			if c.Name == forced {
				only = append(only, c)
			}
		}
		producers = only
	}
	if len(producers) == 0 {
		return "", fmt.Errorf("no capability produces %s", sp.Produces)
	}
	var lastErr error
	for _, cap := range producers {
		ref, err := p.tryCapability(cap, sp, 0)
		if err == nil {
			p.haveBySP[sp.ID] = append(p.haveBySP[sp.ID], ref)
			return ref, nil
		}
		lastErr = err
	}
	return "", lastErr
}

// rankedProducers orders candidate capabilities by tag affinity with
// the sub-problem (composites get a validated-pattern bonus), then by
// cost.
func rankedProducers(reg *registry.Registry, sp querymind.SubProblem) []*registry.Capability {
	producers := reg.Producing(sp.Produces)
	type scored struct {
		cap *registry.Capability
		aff int
	}
	var ss []scored
	for _, c := range producers {
		aff := 0
		for _, t := range sp.Tags {
			if c.HasTag(t) {
				aff++
			}
		}
		if c.Composite {
			// Promoted patterns proved out end-to-end in earlier runs;
			// prefer them (the registry-evolution payoff).
			aff += 3
		}
		ss = append(ss, scored{cap: c, aff: aff})
	}
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].aff != ss[j].aff {
			return ss[i].aff > ss[j].aff
		}
		if ss[i].cap.Cost != ss[j].cap.Cost {
			return ss[i].cap.Cost < ss[j].cap.Cost
		}
		return ss[i].cap.Name < ss[j].cap.Name
	})
	out := make([]*registry.Capability, len(ss))
	for i, s := range ss {
		out[i] = s.cap
	}
	return out
}

// maxChainDepth bounds backward chaining when an input type has no
// existing artifact and must be produced by inserting more steps.
const maxChainDepth = 4

// tryCapability appends the steps needed to invoke cap, recursively
// producing missing inputs, and returns the ref of the sub-problem's
// output port. On failure the planner state is rolled back.
func (p *planner) tryCapability(cap *registry.Capability, sp querymind.SubProblem, depth int) (string, error) {
	if depth > maxChainDepth {
		return "", fmt.Errorf("chaining depth exceeded at %s", cap.Name)
	}
	savedSteps := len(p.steps)
	savedHave := cloneHave(p.have)

	bindings := map[string]workflow.Binding{}
	for _, in := range cap.Inputs {
		// 1. Reuse an artifact already produced — but only when the
		// provenance is semantically compatible (see refBindable).
		if ref, ok := p.have[in.Type]; ok && refBindable(in, ref) {
			bindings[in.Name] = workflow.Binding{Ref: ref}
			continue
		}
		// 2. Bind a literal from the query context.
		if lit, ok := p.literalFor(in); ok {
			bindings[in.Name] = workflow.Lit(lit)
			continue
		}
		if in.Optional {
			continue
		}
		// 3. Backward-chain: insert a producer for the missing type.
		ref, err := p.produceType(in, depth+1)
		if err != nil {
			p.steps = p.steps[:savedSteps]
			p.have = savedHave
			return "", fmt.Errorf("input %q (%s) of %s: %w", in.Name, in.Type, cap.Name, err)
		}
		bindings[in.Name] = workflow.Binding{Ref: ref}
	}

	id := p.addStep(cap, bindings, sp.ID)
	var outRef string
	for _, out := range cap.Outputs {
		ref := id + "." + out.Name
		p.have[out.Type] = ref
		if out.Type == sp.Produces {
			outRef = ref
		}
	}
	if outRef == "" {
		p.steps = p.steps[:savedSteps]
		p.have = savedHave
		return "", fmt.Errorf("%s does not emit %s", cap.Name, sp.Produces)
	}
	return outRef, nil
}

// scalarType reports whether a data type is a generic scalar
// ("scalar.*"). Scalars are contextual values — a cable name, a
// probability, a rendered text — whose meaning lives in the port name,
// not the type; matching them on type alone wires semantically
// unrelated values together.
func scalarType(t registry.DataType) bool {
	return strings.HasPrefix(string(t), "scalar.")
}

// refBindable reports whether a produced artifact may ground an input
// port. Domain types (cable.list, impact.report, ...) are precise
// enough that any producer of the type qualifies. Generic scalars only
// qualify when the producing port's name matches the consuming port's
// name — `correlation ← correlate_anomaly.correlation` is real
// dataflow, while `name ← render.text` (the promoted-composite cascade
// bug: a rendered impact table fed to nautilus.resolve_cable as a
// cable name) is a type-level pun.
func refBindable(in registry.Port, ref string) bool {
	if !scalarType(in.Type) {
		return true
	}
	return workflow.RefPort(ref) == in.Name
}

// produceType inserts the cheapest realizable producer chain for an
// input's type. For scalar inputs only producers exporting a port with
// the input's own name are considered (see refBindable).
func (p *planner) produceType(in registry.Port, depth int) (string, error) {
	t := in.Type
	if depth > maxChainDepth {
		return "", fmt.Errorf("chaining depth exceeded for %s", t)
	}
	producers := p.reg.Producing(t)
	if len(producers) == 0 {
		return "", fmt.Errorf("no capability produces %s", t)
	}
	var lastErr error
	for _, cap := range producers {
		if scalarType(t) {
			if port, ok := cap.OutputPort(in.Name); !ok || port.Type != t {
				lastErr = fmt.Errorf("no producer exports scalar port %q of type %s", in.Name, t)
				continue
			}
		}
		ref, err := p.tryCapability(cap, querymind.SubProblem{ID: "auto", Produces: t}, depth)
		if err == nil {
			if scalarType(t) && workflow.RefPort(ref) != in.Name {
				// The capability exports several ports of this scalar
				// type; take the one whose name grounds the input.
				ref = workflow.RefStepID(ref) + "." + in.Name
			}
			return ref, nil
		}
		lastErr = err
	}
	return "", lastErr
}

func (p *planner) addStep(cap *registry.Capability, bindings map[string]workflow.Binding, phase string) string {
	p.nextID++
	id := fmt.Sprintf("s%d", p.nextID)
	p.steps = append(p.steps, workflow.Step{
		ID: id, Capability: cap.Name, Inputs: bindings, Phase: phase,
	})
	return id
}

func cloneHave(m map[registry.DataType]string) map[registry.DataType]string {
	out := make(map[registry.DataType]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// literalFor derives a literal binding for an input port from the
// query specification — the contextual grounding an expert applies when
// wiring tools ("the cable the user named", "the stated probability").
func (p *planner) literalFor(in registry.Port) (any, bool) {
	q := p.ps.Query
	switch in.Type {
	case registry.TString:
		switch in.Name {
		case "name":
			if len(q.Cables) > 0 {
				return string(q.Cables[0]), true
			}
		case "region_a":
			if len(q.Regions) > 0 {
				return string(q.Regions[0]), true
			}
		case "region_b":
			if len(q.Regions) > 1 {
				return string(q.Regions[1]), true
			}
		}
	case registry.TFloat:
		switch in.Name {
		case "fail_prob":
			if q.FailProb > 0 {
				return q.FailProb, true
			}
			if q.Intent == nlq.IntentDisasterImpact {
				return 0.1, true // QueryMind's documented default
			}
		}
	case registry.TStringList:
		if in.Name == "types" && len(q.Disasters) > 0 {
			return append([]string(nil), q.Disasters...), true
		}
	}
	return nil, false
}

package solutionweaver

import (
	"context"
	"strings"
	"testing"

	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

type fakeImpact struct{ countries []string }

func (f fakeImpact) TopCountries(n int) []string {
	if n > len(f.countries) {
		n = len(f.countries)
	}
	return f.countries[:n]
}

type fakeFinding struct{ Confidence float64 }

func testRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	r := registry.New()
	r.MustRegister(registry.Capability{
		Name: "t.links", Framework: "nautilus", Description: "produce links",
		Inputs:      []registry.Port{{Name: "name", Type: registry.TString}},
		Outputs:     []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Constraints: []string{"needs a cross-layer map"},
		Cost:        2,
		Impl: func(c *registry.Call) error {
			c.Out["links"] = []int{1, 2, 3}
			return nil
		},
	})
	r.MustRegister(registry.Capability{
		Name: "t.impact", Framework: "xaminer", Description: "produce impact",
		Inputs:  []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Outputs: []registry.Port{{Name: "report", Type: registry.TImpact}},
		Cost:    3,
		Impl: func(c *registry.Call) error {
			c.Out["report"] = fakeImpact{countries: []string{"FR", "EG"}}
			return nil
		},
	})
	r.MustRegister(registry.Capability{
		Name: "t.anomaly", Framework: "traceroute", Description: "produce anomaly",
		Outputs: []registry.Port{{Name: "anomaly", Type: registry.TAnomaly}},
		Cost:    1,
		Impl: func(c *registry.Call) error {
			c.Out["anomaly"] = fakeFinding{Confidence: 0.7}
			return nil
		},
	})
	return r
}

func design() *workflow.Workflow {
	return &workflow.Workflow{
		Name:  "test-design",
		Query: "what is the impact of cable X",
		Steps: []workflow.Step{
			{ID: "s1", Capability: "t.links", Inputs: map[string]workflow.Binding{"name": workflow.Lit("cable-x")}},
			{ID: "s2", Capability: "t.impact", Inputs: map[string]workflow.Binding{"links": workflow.Ref("s1", "links")}},
		},
		Outputs: map[string]string{"impact": "s2.report"},
	}
}

func TestWeaveAddsChecks(t *testing.T) {
	reg := testRegistry(t)
	sol, err := New().Weave(design(), reg)
	if err != nil {
		t.Fatal(err)
	}
	if sol.ChecksAdded == 0 {
		t.Fatal("no checks woven")
	}
	kinds := map[workflow.QualityKind]bool{}
	for _, c := range sol.Workflow.Checks {
		kinds[c.Kind] = true
	}
	if !kinds[workflow.CheckSanity] {
		t.Errorf("check kinds = %v", kinds)
	}
	// The original design must stay pristine.
	if len(design().Checks) != 0 {
		t.Error("design mutated")
	}
}

func TestWeaveChecksExecute(t *testing.T) {
	reg := testRegistry(t)
	sol, err := New().Weave(design(), reg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := workflow.NewEngine(reg, nil).Run(context.Background(), sol.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checks) != sol.ChecksAdded {
		t.Errorf("checks run = %d, woven = %d", len(res.Checks), sol.ChecksAdded)
	}
	if res.QualityScore() != 1 {
		for _, c := range res.Checks {
			t.Logf("check %s: passed=%v note=%s", c.Name, c.Passed, c.Note)
		}
		t.Errorf("quality = %f", res.QualityScore())
	}
}

func TestWeaveAnomalyUncertaintyCheck(t *testing.T) {
	reg := testRegistry(t)
	wf := &workflow.Workflow{
		Name:  "anomaly",
		Steps: []workflow.Step{{ID: "a", Capability: "t.anomaly"}},
	}
	sol, err := New().Weave(wf, reg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := workflow.NewEngine(reg, nil).Run(context.Background(), sol.Workflow)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range res.Checks {
		if c.Kind == workflow.CheckUncertainty {
			found = true
			if !c.Passed || !strings.Contains(c.Note, "0.70") {
				t.Errorf("uncertainty check = %+v", c)
			}
		}
	}
	if !found {
		t.Error("no uncertainty check for anomaly output")
	}
}

func TestWeaveRejectsInvalidDesign(t *testing.T) {
	reg := testRegistry(t)
	bad := design()
	bad.Steps[1].Inputs["links"] = workflow.Ref("zzz", "links")
	if _, err := New().Weave(bad, reg); err == nil {
		t.Error("invalid design accepted")
	}
	if _, err := New().Weave(nil, reg); err == nil {
		t.Error("nil workflow accepted")
	}
}

func TestGeneratedCodeStructure(t *testing.T) {
	reg := testRegistry(t)
	sol, err := New().Weave(design(), reg)
	if err != nil {
		t.Fatal(err)
	}
	code := sol.Code
	for _, want := range []string{
		"#!/usr/bin/env python3",
		"Query: what is the impact of cable X",
		"from measurement_registry import nautilus",
		"from measurement_registry import xaminer",
		"def step_s1(name):",
		"def step_s2(links):",
		"Constraint: needs a cross-layer map",
		"def run_quality_checks(artifacts):",
		"def render_impact_table(report):",
		"def main():",
		`if __name__ == "__main__":`,
	} {
		if !strings.Contains(code, want) {
			t.Errorf("code missing %q", want)
		}
	}
	if sol.LoC < 50 {
		t.Errorf("LoC = %d, implausibly small", sol.LoC)
	}
	if sol.Language == "" {
		t.Error("language not set")
	}
}

func TestLoCCountsNonEmpty(t *testing.T) {
	if n := countLoC("a\n\nb\n  \nc"); n != 3 {
		t.Errorf("countLoC = %d, want 3", n)
	}
	if countLoC("") != 0 {
		t.Error("empty code must be 0 LoC")
	}
}

func TestPyLiteral(t *testing.T) {
	cases := map[string]any{
		`"x"`:        "x",
		"True":       true,
		"False":      false,
		"3.5":        3.5,
		"7":          7,
		`["a", "b"]`: []string{"a", "b"},
		"None":       nil,
	}
	for want, in := range cases {
		if got := pyLiteral(in); got != want {
			t.Errorf("pyLiteral(%v) = %s, want %s", in, got, want)
		}
	}
}

func TestSanitizeIdent(t *testing.T) {
	if got := sanitizeIdent("bgp.detect-bursts"); got != "bgp_detect_bursts" {
		t.Errorf("sanitize = %q", got)
	}
}

func TestLenOfAndConfidence(t *testing.T) {
	if lenOf([]int{1, 2}) != 2 {
		t.Error("lenOf slice")
	}
	if lenOf(map[string]int{"a": 1}) != 1 {
		t.Error("lenOf map")
	}
	if lenOf(42) != -1 {
		t.Error("lenOf scalar")
	}
	if c, ok := confidenceOf(fakeFinding{Confidence: 0.5}); !ok || c != 0.5 {
		t.Errorf("confidenceOf = %f, %v", c, ok)
	}
	if _, ok := confidenceOf(42); ok {
		t.Error("confidenceOf scalar should miss")
	}
	if c, ok := confidenceOf(&fakeFinding{Confidence: 0.3}); !ok || c != 0.3 {
		t.Errorf("confidenceOf pointer = %f, %v", c, ok)
	}
}

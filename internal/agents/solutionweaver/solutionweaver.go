// Package solutionweaver implements ArachNet's third agent: solution
// implementation. It turns a workflow design into the executable
// artifact users run: it validates the dataflow, weaves quality
// assurance into the workflow (consistency verification, sanity checks,
// uncertainty quantification — embedded during generation, not bolted
// on afterwards), and emits the generated code listing whose size is
// the paper's per-case-study LoC metric.
package solutionweaver

import (
	"fmt"

	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// Solution is SolutionWeaver's output artifact.
type Solution struct {
	// Workflow is the executable plan with quality checks attached.
	Workflow *workflow.Workflow
	// Code is the generated, human-reviewable implementation listing
	// (Python-style, mirroring the paper's prototype output).
	Code string
	// LoC is the number of non-empty lines in Code.
	LoC int
	// Language identifies the listing dialect.
	Language string
	// ChecksAdded counts the embedded quality checks.
	ChecksAdded int
}

// Agent is the SolutionWeaver agent.
type Agent struct{}

// New returns a SolutionWeaver.
func New() *Agent { return &Agent{} }

// Weave builds the executable solution from a designed workflow.
func (a *Agent) Weave(wf *workflow.Workflow, reg *registry.Registry) (*Solution, error) {
	if wf == nil {
		return nil, fmt.Errorf("solutionweaver: nil workflow")
	}
	if err := wf.Validate(reg); err != nil {
		return nil, fmt.Errorf("solutionweaver: design does not validate: %w", err)
	}
	// Work on a shallow copy so the design artifact stays pristine.
	woven := *wf
	woven.Checks = append([]workflow.QualityCheck{}, wf.Checks...)
	a.weaveChecks(&woven, reg)
	if err := woven.Validate(reg); err != nil {
		return nil, fmt.Errorf("solutionweaver: woven workflow invalid: %w", err)
	}
	code := generateCode(&woven, reg)
	return &Solution{
		Workflow:    &woven,
		Code:        code,
		LoC:         countLoC(code),
		Language:    "python-style pseudocode",
		ChecksAdded: len(woven.Checks) - len(wf.Checks),
	}, nil
}

// weaveChecks attaches type-appropriate quality checks to every step
// output.
func (a *Agent) weaveChecks(wf *workflow.Workflow, reg *registry.Registry) {
	for _, s := range wf.Steps {
		cap, err := reg.Get(s.Capability)
		if err != nil {
			continue
		}
		for _, out := range cap.Outputs {
			ref := s.ID + "." + out.Name
			for _, chk := range checksForType(out.Type, ref) {
				wf.Checks = append(wf.Checks, chk)
			}
		}
	}
}

// checksForType returns the embedded QA appropriate for a data type.
// The assertions inspect values structurally (via small interfaces and
// reflection-free type switches on the shared vocabulary types) and
// never fail the run — they annotate it.
func checksForType(t registry.DataType, ref string) []workflow.QualityCheck {
	name := func(kind string) string { return fmt.Sprintf("%s:%s", kind, ref) }
	switch t {
	case registry.TLinkSet:
		return []workflow.QualityCheck{{
			Name: name("nonempty-links"), Kind: workflow.CheckSanity, Ref: ref,
			Assert: func(v any) (bool, string) {
				n := lenOf(v)
				if n == 0 {
					return false, "no links extracted; downstream impact will be vacuous"
				}
				return true, fmt.Sprintf("%d links", n)
			},
		}}
	case registry.TIPSet:
		return []workflow.QualityCheck{{
			Name: name("nonempty-ips"), Kind: workflow.CheckSanity, Ref: ref,
			Assert: func(v any) (bool, string) {
				if lenOf(v) == 0 {
					return false, "no IPs extracted"
				}
				return true, ""
			},
		}}
	case registry.TGeoTable:
		return []workflow.QualityCheck{{
			Name: name("geo-coverage"), Kind: workflow.CheckConsistency, Ref: ref,
			Assert: func(v any) (bool, string) {
				if lenOf(v) == 0 {
					return false, "geolocation resolved nothing"
				}
				return true, ""
			},
		}}
	case registry.TImpact:
		return []workflow.QualityCheck{
			{
				Name: name("impact-sane"), Kind: workflow.CheckSanity, Ref: ref,
				Assert: func(v any) (bool, string) {
					s, ok := v.(interface{ TopCountries(int) []string })
					if !ok {
						return false, "unexpected impact type"
					}
					if len(s.TopCountries(1)) == 0 {
						return false, "impact report names no countries"
					}
					return true, ""
				},
			},
		}
	case registry.TAnomaly, registry.TVerdict:
		return []workflow.QualityCheck{{
			Name: name("uncertainty-reported"), Kind: workflow.CheckUncertainty, Ref: ref,
			Assert: func(v any) (bool, string) {
				c, ok := confidenceOf(v)
				if !ok {
					return false, "no confidence field"
				}
				if c < 0 || c > 1 {
					return false, fmt.Sprintf("confidence %f out of [0,1]", c)
				}
				return true, fmt.Sprintf("confidence %.2f", c)
			},
		}}
	case registry.TFloat:
		return []workflow.QualityCheck{{
			Name: name("float-finite"), Kind: workflow.CheckSanity, Ref: ref,
			Assert: func(v any) (bool, string) {
				f, ok := v.(float64)
				if !ok {
					return false, "not a float"
				}
				if f != f {
					return false, "NaN"
				}
				return true, ""
			},
		}}
	}
	return nil
}

// lenOf returns the length of the common slice shapes flowing through
// workflows, or -1 when unknown.
func lenOf(v any) int {
	switch x := v.(type) {
	case interface{ Len() int }:
		return x.Len()
	default:
		return sliceLen(v)
	}
}

// confidenceOf extracts a confidence score from vocabulary types that
// expose one.
func confidenceOf(v any) (float64, bool) {
	type confidencer interface{ ConfidenceValue() float64 }
	if c, ok := v.(confidencer); ok {
		return c.ConfidenceValue(), true
	}
	// Fall back to a struct-field convention via a tiny adapter set.
	switch x := v.(type) {
	case interface{ GetConfidence() float64 }:
		return x.GetConfidence(), true
	}
	return confidenceField(v)
}

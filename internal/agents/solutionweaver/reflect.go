package solutionweaver

import "reflect"

// sliceLen returns the length of a slice/map value, or -1 otherwise.
func sliceLen(v any) int {
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Slice, reflect.Map, reflect.Array:
		return rv.Len()
	case reflect.Pointer:
		if !rv.IsNil() {
			return sliceLen(rv.Elem().Interface())
		}
	}
	return -1
}

// confidenceField looks for a float64 struct field named "Confidence"
// so quality checks work with any vocabulary type that follows the
// convention, without this package importing those types.
func confidenceField(v any) (float64, bool) {
	rv := reflect.ValueOf(v)
	if rv.Kind() == reflect.Pointer {
		if rv.IsNil() {
			return 0, false
		}
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		return 0, false
	}
	f := rv.FieldByName("Confidence")
	if !f.IsValid() || f.Kind() != reflect.Float64 {
		return 0, false
	}
	return f.Float(), true
}

package solutionweaver

import (
	"fmt"
	"sort"
	"strings"

	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// generateCode renders the woven workflow as a Python-style listing —
// the artifact the paper's prototype hands to users ("ArachNet
// generates executable Python code that users run"). The listing is a
// faithful transliteration of the executable DAG: one function per
// step with input validation and format translation, quality-check
// functions, and a main() that wires the dataflow.
func generateCode(wf *workflow.Workflow, reg *registry.Registry) string {
	g := &codegen{wf: wf, reg: reg}
	return g.render()
}

type codegen struct {
	wf  *workflow.Workflow
	reg *registry.Registry
	b   strings.Builder
}

func (g *codegen) line(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *codegen) blank() { g.b.WriteByte('\n') }

func (g *codegen) render() string {
	g.header()
	g.imports()
	for _, s := range g.wf.Steps {
		g.stepFunction(s)
	}
	g.checkFunctions()
	g.renderers()
	g.mainFunction()
	return g.b.String()
}

// outputTypes resolves the data types of the workflow's declared
// outputs.
func (g *codegen) outputTypes() map[registry.DataType]bool {
	types := map[registry.DataType]bool{}
	produced := map[string]registry.DataType{}
	for _, s := range g.wf.Steps {
		cap, err := g.reg.Get(s.Capability)
		if err != nil {
			continue
		}
		for _, out := range cap.Outputs {
			produced[s.ID+"."+out.Name] = out.Type
		}
	}
	for _, ref := range g.wf.Outputs {
		if t, ok := produced[ref]; ok {
			types[t] = true
		}
	}
	return types
}

// renderers emits result-presentation code per output type. Richer
// analyses need more presentation machinery — evidence dossiers for
// forensic verdicts, layered timelines for cascades — which is exactly
// why the paper's harder case studies generate longer programs.
func (g *codegen) renderers() {
	types := g.outputTypes()
	g.line(`def render(value):`)
	g.line(`    """Dispatch to the type-appropriate renderer."""`)
	g.line(`    for probe, fn in RENDERERS:`)
	g.line(`        if probe(value):`)
	g.line(`            return fn(value)`)
	g.line(`    return repr(value)`)
	g.blank()
	g.blank()
	if types[registry.TImpact] || types[registry.TGlobal] {
		g.line(`def render_impact_table(report):`)
		g.line(`    """Tabulate per-country normalized impact, highest first."""`)
		g.line(`    rows = ["country  score  links  ips  ases  aslinks"]`)
		g.line(`    for c in report.countries:`)
		g.line(`        if c.score <= 0.0:`)
		g.line(`            continue`)
		g.line(`        rows.append("%-8s %5.3f %6.1f %5.1f %5.1f %7.1f" % (`)
		g.line(`            c.country, c.score, c.links_lost, c.ips_lost, c.ases_hit, c.aslinks_lost))`)
		g.line(`    rows.append("impacted countries: %d" % sum(1 for c in report.countries if c.score > 0))`)
		g.line(`    rows.append("failed links: %d" % report.failed_links)`)
		g.line(`    return "\n".join(rows)`)
		g.blank()
		g.blank()
	}
	if types[registry.TGlobal] {
		g.line(`def render_global_breakdown(global_impact):`)
		g.line(`    """Per-event breakdown plus the combined worldwide table."""`)
		g.line(`    sections = []`)
		g.line(`    sections.append("events processed: %d" % len(global_impact.events))`)
		g.line(`    sections.append("expected links lost: %.1f" % global_impact.expected_links_lost)`)
		g.line(`    by_type = {}`)
		g.line(`    for name in global_impact.events:`)
		g.line(`        kind = classify_event(name)`)
		g.line(`        by_type.setdefault(kind, []).append(name)`)
		g.line(`    for kind, names in sorted(by_type.items()):`)
		g.line(`        sections.append("%s scenarios (%d): %s" % (kind, len(names), ", ".join(sorted(names))))`)
		g.line(`    sections.append(render_impact_table(global_impact))`)
		g.line(`    return "\n".join(sections)`)
		g.blank()
		g.blank()
		g.line(`def classify_event(name):`)
		g.line(`    """Map a scenario name back to its disaster type."""`)
		g.line(`    quake_markers = ("offshore", "strait", "anatolia", "trench", "marmara", "andaman", "coast")`)
		g.line(`    if any(m in name for m in quake_markers):`)
		g.line(`        return "earthquake"`)
		g.line(`    return "hurricane"`)
		g.blank()
		g.blank()
	}
	if types[registry.TTimeline] {
		g.line(`def render_timeline(timeline):`)
		g.line(`    """Unified cross-layer cascade timeline: cable, IP, AS, routing."""`)
		g.line(`    rows = []`)
		g.line(`    for entry in timeline.entries:`)
		g.line(`        rows.append("%s [%-11s] %s" % (entry.at.isoformat(), entry.layer, entry.what))`)
		g.line(`    rows.append("layers present: %s" % ", ".join(timeline.layers()))`)
		g.line(`    rows.append("cables failed: %d across %d cascade rounds" % (`)
		g.line(`        timeline.cables_failed, timeline.cascade_rounds))`)
		g.line(`    rows.append("links lost: %d, ASes degraded: %d" % (`)
		g.line(`        timeline.links_lost, timeline.ases_degraded))`)
		g.line(`    rows.append("top impacted countries: %s" % ", ".join(timeline.top_countries))`)
		g.line(`    return "\n".join(rows)`)
		g.blank()
		g.blank()
	}
	if types[registry.TCascade] {
		g.line(`def render_cascade(bundle):`)
		g.line(`    """Cable-layer cascade rounds plus AS-layer degradation waves."""`)
		g.line(`    rows = []`)
		g.line(`    for i, round_cables in enumerate(bundle.cable.rounds):`)
		g.line(`        label = "initial failure" if i == 0 else "overload round %d" % i`)
		g.line(`        rows.append("%s: %s" % (label, ", ".join(str(c) for c in round_cables)))`)
		g.line(`    for i, wave in enumerate(bundle.stress.waves):`)
		g.line(`        rows.append("AS degradation wave %d: %d networks" % (i + 1, len(wave)))`)
		g.line(`    return "\n".join(rows)`)
		g.blank()
		g.blank()
	}
	if types[registry.TVerdict] {
		g.line(`def render_evidence_dossier(verdict):`)
		g.line(`    """Forensic dossier: every evidence source, the fusion, the call."""`)
		g.line(`    rows = ["=== forensic verdict ==="]`)
		g.line(`    rows.append("cable failure is the cause: %s" % verdict.cause_is_cable_failure)`)
		g.line(`    if verdict.cable:`)
		g.line(`        rows.append("identified cable: %s" % verdict.cable)`)
		g.line(`    rows.append("confidence: %.2f" % verdict.confidence)`)
		g.line(`    rows.append("--- evidence ---")`)
		g.line(`    rows.append("statistical (latency shift significance): %.2f" % verdict.statistical_evidence)`)
		g.line(`    rows.append("infrastructure (cable correlation):       %.2f" % verdict.infra_evidence)`)
		g.line(`    rows.append("routing (withdrawal concentration):       %.2f" % verdict.routing_evidence)`)
		g.line(`    rows.append("--- reasoning ---")`)
		g.line(`    rows.append(verdict.explanation)`)
		g.line(`    rows.append("--- methodology notes ---")`)
		g.line(`    rows.append("baseline fitted on pre-anomaly window with robust statistics")`)
		g.line(`    rows.append("candidate cables ranked by carried-link geography vs withdrawals")`)
		g.line(`    rows.append("timing validated independently against BGP withdrawal concentration")`)
		g.line(`    rows.append("verdict requires all three evidence sources to agree")`)
		g.line(`    return "\n".join(rows)`)
		g.blank()
		g.blank()
		g.line(`def render_anomaly(finding):`)
		g.line(`    """Describe the detected latency anomaly with uncertainty."""`)
		g.line(`    if not finding.detected:`)
		g.line(`        return "no significant anomaly detected"`)
		g.line(`    rows = ["latency shift detected at %s" % finding.shift_at.isoformat()]`)
		g.line(`    rows.append("delta: +%.1f ms (%.1f -> %.1f)" % (`)
		g.line(`        finding.delta_ms, finding.mean_before, finding.mean_after))`)
		g.line(`    rows.append("p-value: %.3g, confidence: %.2f" % (finding.p_value, finding.confidence))`)
		g.line(`    rows.append("probes shifted: %s" % ", ".join(finding.probes))`)
		g.line(`    if finding.lost_probes:`)
		g.line(`        rows.append("probes lost entirely: %s" % ", ".join(finding.lost_probes))`)
		g.line(`    return "\n".join(rows)`)
		g.blank()
		g.blank()
	}
	g.line(`RENDERERS = build_renderer_table(globals())`)
	g.blank()
	g.blank()
}

func (g *codegen) header() {
	g.line(`#!/usr/bin/env python3`)
	g.line(`"""Measurement workflow generated by ArachNet SolutionWeaver.`)
	g.blank()
	g.line(`Query: %s`, g.wf.Query)
	g.line(`Plan:  %d steps, %d embedded quality checks.`, len(g.wf.Steps), len(g.wf.Checks))
	g.line(`"""`)
	g.blank()
}

func (g *codegen) imports() {
	fws := g.wf.Frameworks(g.reg)
	g.line(`import sys`)
	g.line(`import json`)
	for _, fw := range fws {
		g.line(`from measurement_registry import %s`, sanitizeIdent(fw))
	}
	g.blank()
	g.blank()
}

func (g *codegen) stepFunction(s workflow.Step) {
	cap, err := g.reg.Get(s.Capability)
	if err != nil {
		return
	}
	params := orderedBindings(s)
	var names []string
	for _, p := range params {
		names = append(names, sanitizeIdent(p.name))
	}
	g.line(`def step_%s(%s):`, s.ID, strings.Join(names, ", "))
	g.line(`    """%s`, cap.Description)
	g.blank()
	g.line(`    Capability: %s (framework: %s)`, cap.Name, cap.Framework)
	for _, con := range cap.Constraints {
		g.line(`    Constraint: %s`, con)
	}
	g.line(`    """`)
	// Input validation mirrors the typed ports.
	for _, p := range params {
		port, ok := cap.InputPort(p.name)
		if !ok {
			continue
		}
		g.line(`    if %s is None:`, sanitizeIdent(p.name))
		g.line(`        raise ValueError("step %s: input %s (%s) is required")`, s.ID, p.name, port.Type)
	}
	// Format translation notes for reference bindings (the paper's
	// "translation layer" between heterogeneous tools).
	for _, p := range params {
		if p.ref != "" {
			g.line(`    # format: consumes %s produced upstream (%s)`, p.ref, portType(cap, p.name))
		}
	}
	fw := sanitizeIdent(cap.Framework)
	verb := capVerb(cap.Name)
	g.line(`    result = %s.%s(%s)`, fw, verb, strings.Join(names, ", "))
	g.line(`    if result is None:`)
	g.line(`        raise RuntimeError("step %s: %s returned no data")`, s.ID, cap.Name)
	for _, out := range cap.Outputs {
		g.line(`    # produces: %s (%s)`, out.Name, out.Type)
	}
	g.line(`    return result`)
	g.blank()
	g.blank()
}

func (g *codegen) checkFunctions() {
	if len(g.wf.Checks) == 0 {
		return
	}
	g.line(`def run_quality_checks(artifacts):`)
	g.line(`    """Embedded QA: consistency, sanity and uncertainty checks."""`)
	g.line(`    findings = []`)
	for _, chk := range g.wf.Checks {
		g.line(`    findings.append(check(%q, kind=%q, value=artifacts[%q]))`, chk.Name, string(chk.Kind), chk.Ref)
	}
	g.line(`    return findings`)
	g.blank()
	g.blank()
}

func (g *codegen) mainFunction() {
	g.line(`def main():`)
	g.line(`    artifacts = {}`)
	for _, s := range g.wf.Steps {
		params := orderedBindings(s)
		var args []string
		for _, p := range params {
			if p.ref != "" {
				args = append(args, fmt.Sprintf(`artifacts[%q]`, p.ref))
			} else {
				args = append(args, pyLiteral(p.lit))
			}
		}
		cap, err := g.reg.Get(s.Capability)
		if err != nil {
			continue
		}
		g.line(`    out = step_%s(%s)`, s.ID, strings.Join(args, ", "))
		for _, outPort := range cap.Outputs {
			g.line(`    artifacts["%s.%s"] = out`, s.ID, outPort.Name)
		}
	}
	if len(g.wf.Checks) > 0 {
		g.line(`    for finding in run_quality_checks(artifacts):`)
		g.line(`        print("QA:", finding, file=sys.stderr)`)
	}
	names := make([]string, 0, len(g.wf.Outputs))
	for n := range g.wf.Outputs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g.line(`    print(json.dumps({"output": %q, "value": render(artifacts[%q])}))`, n, g.wf.Outputs[n])
	}
	g.blank()
	g.blank()
	g.line(`if __name__ == "__main__":`)
	g.line(`    main()`)
}

type boundParam struct {
	name string
	ref  string
	lit  any
}

func orderedBindings(s workflow.Step) []boundParam {
	names := make([]string, 0, len(s.Inputs))
	for n := range s.Inputs {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]boundParam, 0, len(names))
	for _, n := range names {
		b := s.Inputs[n]
		if b.IsRef() {
			out = append(out, boundParam{name: n, ref: b.Ref})
		} else {
			out = append(out, boundParam{name: n, lit: b.Literal})
		}
	}
	return out
}

func portType(cap *registry.Capability, name string) registry.DataType {
	if p, ok := cap.InputPort(name); ok {
		return p.Type
	}
	return ""
}

// capVerb extracts the verb part of "framework.verb".
func capVerb(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return sanitizeIdent(name[i+1:])
	}
	return sanitizeIdent(name)
}

func sanitizeIdent(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func pyLiteral(v any) string {
	switch x := v.(type) {
	case nil:
		return "None"
	case string:
		return fmt.Sprintf("%q", x)
	case bool:
		if x {
			return "True"
		}
		return "False"
	case float64, int:
		return fmt.Sprintf("%v", x)
	case []string:
		parts := make([]string, len(x))
		for i, s := range x {
			parts[i] = fmt.Sprintf("%q", s)
		}
		return "[" + strings.Join(parts, ", ") + "]"
	default:
		return fmt.Sprintf("%q", fmt.Sprintf("%v", x))
	}
}

// countLoC counts non-empty lines.
func countLoC(code string) int {
	n := 0
	for _, line := range strings.Split(code, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

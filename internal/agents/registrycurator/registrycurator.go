// Package registrycurator implements ArachNet's fourth agent:
// systematic registry evolution. It mines executed workflows for
// recurring capability chains, validates them (validation-first: only
// patterns that recur across successful, high-quality runs are
// promoted — speculative additions would bloat the registry), and
// promotes survivors as composite capabilities that future designs can
// reuse as single steps.
package registrycurator

import (
	"fmt"
	"sort"
	"strings"

	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// Observation is one executed workflow with its outcome.
type Observation struct {
	Workflow *workflow.Workflow
	Result   *workflow.Result
	Err      error
}

// Succeeded reports whether the observation is usable evidence.
func (o Observation) Succeeded() bool {
	return o.Err == nil && o.Workflow != nil && o.Result != nil
}

// Promotion is one pattern promoted into the registry.
type Promotion struct {
	Capability registry.Capability
	// Pattern is the capability chain the composite encapsulates.
	Pattern []string
	// Support is the number of successful workflows exhibiting it.
	Support int
	// AvgQuality is the mean quality score across those workflows.
	AvgQuality float64
}

// Agent is the RegistryCurator agent.
type Agent struct {
	// MinSupport is the minimum number of distinct successful
	// workflows a pattern must appear in (default 2).
	MinSupport int
	// MinQuality is the minimum average quality score (default 0.8).
	MinQuality float64
	// MaxChain bounds the pattern length (default 4, minimum 2).
	MaxChain int
}

// New returns a curator with default validation thresholds.
func New() *Agent { return &Agent{MinSupport: 2, MinQuality: 0.8, MaxChain: 4} }

// chainOccurrence is one liftable window inside one workflow.
type chainOccurrence struct {
	steps   []workflow.Step
	quality float64
}

// Curate mines the history and registers validated composites into
// reg. It returns the promotions performed. Already-promoted patterns
// (by composite name) are skipped, so curation is idempotent.
func (a *Agent) Curate(history []Observation, reg *registry.Registry) ([]Promotion, error) {
	if a.MinSupport < 2 {
		a.MinSupport = 2
	}
	if a.MinQuality <= 0 {
		a.MinQuality = 0.8
	}
	if a.MaxChain < 2 {
		a.MaxChain = 4
	}

	// Gather liftable chains across successful observations.
	occurrences := map[string][]chainOccurrence{} // pattern key → occurrences
	perWorkflow := map[string]map[string]bool{}   // pattern key → workflow fingerprints
	for _, obs := range history {
		if !obs.Succeeded() {
			continue
		}
		q := obs.Result.QualityScore()
		wfID := fingerprint(obs.Workflow)
		for _, chain := range a.liftableChains(obs.Workflow) {
			key := chainKey(chain)
			occurrences[key] = append(occurrences[key], chainOccurrence{steps: chain, quality: q})
			if perWorkflow[key] == nil {
				perWorkflow[key] = map[string]bool{}
			}
			perWorkflow[key][wfID] = true
		}
	}

	// Validate and promote. Patterns that end at a sub-problem artifact
	// (the step's Phase names a real sub-problem, not auto-chained glue)
	// are semantically complete capabilities and win first; then longer
	// patterns beat shorter ones.
	keys := make([]string, 0, len(occurrences))
	for k := range occurrences {
		keys = append(keys, k)
	}
	meaningful := func(k string) bool {
		steps := occurrences[k][0].steps
		phase := steps[len(steps)-1].Phase
		return phase != "" && phase != "auto"
	}
	sort.Slice(keys, func(i, j int) bool {
		mi, mj := meaningful(keys[i]), meaningful(keys[j])
		if mi != mj {
			return mi
		}
		li, lj := len(strings.Split(keys[i], "|")), len(strings.Split(keys[j], "|"))
		if li != lj {
			return li > lj
		}
		return keys[i] < keys[j]
	})

	var promotions []Promotion
	covered := map[string]bool{} // capability names already inside a promoted pattern
	for _, key := range keys {
		occ := occurrences[key]
		support := len(perWorkflow[key])
		if support < a.MinSupport {
			continue
		}
		var q float64
		for _, o := range occ {
			q += o.quality
		}
		q /= float64(len(occ))
		if q < a.MinQuality {
			continue
		}
		chain := occ[0].steps
		// Skip patterns overlapping an already-promoted, longer one.
		overlap := false
		for _, s := range chain {
			if covered[s.Capability] {
				overlap = true
				break
			}
		}
		if overlap {
			continue
		}
		cap, err := a.composite(chain, reg)
		if err != nil {
			continue // not liftable after all (e.g. capability vanished)
		}
		if reg.Has(cap.Name) {
			// Promoted in an earlier curation pass: keep its chain
			// covered so sub-patterns don't sneak in behind it.
			for _, s := range chain {
				covered[s.Capability] = true
			}
			continue
		}
		if err := reg.Register(cap); err != nil {
			return promotions, fmt.Errorf("registrycurator: promote %q: %w", cap.Name, err)
		}
		for _, s := range chain {
			covered[s.Capability] = true
		}
		promotions = append(promotions, Promotion{
			Capability: cap,
			Pattern:    capNames(chain),
			Support:    support,
			AvgQuality: q,
		})
	}
	return promotions, nil
}

// liftableChains enumerates contiguous step windows (length 2..MaxChain)
// whose internal dataflow is self-contained: every input of steps after
// the first is either a literal or a reference into the window.
func (a *Agent) liftableChains(wf *workflow.Workflow) [][]workflow.Step {
	var out [][]workflow.Step
	n := len(wf.Steps)
	for start := 0; start < n; start++ {
		for ln := 2; ln <= a.MaxChain && start+ln <= n; ln++ {
			win := wf.Steps[start : start+ln]
			if chainIsLiftable(win) {
				out = append(out, win)
			}
		}
	}
	return out
}

func chainIsLiftable(win []workflow.Step) bool {
	inside := map[string]bool{}
	for _, s := range win {
		inside[s.ID] = true
	}
	for i, s := range win {
		for _, b := range s.Inputs {
			if !b.IsRef() {
				continue
			}
			src := refStep(b.Ref)
			if i == 0 {
				// The head's references become the composite's inputs;
				// they must come from outside (otherwise the window is
				// mis-rooted).
				if inside[src] {
					return false
				}
				continue
			}
			if !inside[src] {
				return false
			}
		}
	}
	return true
}

func refStep(ref string) string {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return ref[:i]
	}
	return ref
}

func capNames(win []workflow.Step) []string {
	out := make([]string, len(win))
	for i, s := range win {
		out[i] = s.Capability
	}
	return out
}

func chainKey(win []workflow.Step) string {
	return strings.Join(capNames(win), "|")
}

func fingerprint(wf *workflow.Workflow) string {
	// Distinct queries over the same capability chain are distinct use
	// cases — the evidence the validation-first policy wants.
	return wf.Name + ":" + wf.Query + ":" + strings.Join(wf.CapabilityNames(), "|")
}

// composite lifts a step chain into a single registered capability. The
// composite's inputs are the head step's external bindings (reference
// bindings become required inputs; literals are frozen as defaults that
// callers may override); its outputs are the tail step's outputs. The
// implementation replays the chain through a private engine.
func (a *Agent) composite(chain []workflow.Step, reg *registry.Registry) (registry.Capability, error) {
	head := chain[0]
	tail := chain[len(chain)-1]
	headCap, err := reg.Get(head.Capability)
	if err != nil {
		return registry.Capability{}, err
	}
	tailCap, err := reg.Get(tail.Capability)
	if err != nil {
		return registry.Capability{}, err
	}

	var inputs []registry.Port
	frozen := map[string]any{}
	for name, b := range head.Inputs {
		port, ok := headCap.InputPort(name)
		if !ok {
			return registry.Capability{}, fmt.Errorf("head port %q missing", name)
		}
		if b.IsRef() {
			inputs = append(inputs, port)
		} else {
			frozen[name] = b.Literal
			opt := port
			opt.Optional = true
			opt.Desc = strings.TrimSpace(opt.Desc + " (default from observed runs)")
			inputs = append(inputs, opt)
		}
	}
	sort.Slice(inputs, func(i, j int) bool { return inputs[i].Name < inputs[j].Name })

	outputs := make([]registry.Port, len(tailCap.Outputs))
	copy(outputs, tailCap.Outputs)

	// Merge tags; mark composite. A composite is Pure — memoizable —
	// exactly when every capability it replays is Pure.
	tagSet := map[string]bool{}
	var frameworks []string
	fwSeen := map[string]bool{}
	pure := true
	// Union the chain's declared environment facets; one member with an
	// unknown (empty) Reads makes the composite's unknown too, so its
	// cache keys conservatively track the full environment fingerprint.
	readsKnown := true
	readSet := map[string]bool{}
	for _, s := range chain {
		c, err := reg.Get(s.Capability)
		if err != nil {
			return registry.Capability{}, err
		}
		pure = pure && c.Pure
		if len(c.Reads) == 0 {
			readsKnown = false
		}
		for _, r := range c.Reads {
			readSet[r] = true
		}
		for _, t := range c.Tags {
			tagSet[t] = true
		}
		if !fwSeen[c.Framework] {
			fwSeen[c.Framework] = true
			frameworks = append(frameworks, c.Framework)
		}
	}
	tags := make([]string, 0, len(tagSet)+1)
	for t := range tagSet {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	tags = append(tags, "composite")
	var reads []string
	if readsKnown {
		for r := range readSet {
			reads = append(reads, r)
		}
		sort.Strings(reads)
	}

	cost := 0
	for _, s := range chain {
		c, _ := reg.Get(s.Capability)
		cost += c.Cost
	}
	if cost > 1 {
		cost-- // the promoted pattern amortizes integration overhead
	}

	name := compositeName(chain)
	verbs := make([]string, len(chain))
	for i, s := range chain {
		verbs[i] = s.Capability
	}
	desc := fmt.Sprintf("Validated pattern: %s (promoted from %d-step chain observed in successful workflows)",
		strings.Join(verbs, " → "), len(chain))

	// Snapshot the chain with stable IDs for replay.
	replay := make([]workflow.Step, len(chain))
	idMap := map[string]string{}
	for i, s := range chain {
		idMap[s.ID] = fmt.Sprintf("c%d", i+1)
	}
	for i, s := range chain {
		ns := workflow.Step{ID: idMap[s.ID], Capability: s.Capability, Inputs: map[string]workflow.Binding{}}
		for nameIn, b := range s.Inputs {
			if b.IsRef() {
				src := refStep(b.Ref)
				if mapped, ok := idMap[src]; ok {
					ns.Inputs[nameIn] = workflow.Binding{Ref: mapped + b.Ref[strings.IndexByte(b.Ref, '.'):]}
				} else if i == 0 {
					// External reference → will be bound from the call.
					ns.Inputs[nameIn] = workflow.Binding{Ref: "extern." + nameIn}
				} else {
					return registry.Capability{}, fmt.Errorf("non-head external ref %q", b.Ref)
				}
			} else {
				ns.Inputs[nameIn] = b
			}
		}
		replay[i] = ns
	}

	impl := func(call *registry.Call) error {
		// Rebuild the chain with the call's inputs spliced into the
		// head step, then execute through a private engine.
		steps := make([]workflow.Step, len(replay))
		for i, s := range replay {
			ns := workflow.Step{ID: s.ID, Capability: s.Capability, Inputs: map[string]workflow.Binding{}}
			for nameIn, b := range s.Inputs {
				if b.IsRef() && strings.HasPrefix(b.Ref, "extern.") {
					v, ok := call.In[nameIn]
					if !ok {
						return fmt.Errorf("composite %s: input %q not bound", name, nameIn)
					}
					ns.Inputs[nameIn] = workflow.Lit(v)
					continue
				}
				if !b.IsRef() {
					// Frozen literal; the caller may override.
					if v, ok := call.In[nameIn]; ok && i == 0 {
						ns.Inputs[nameIn] = workflow.Lit(v)
						continue
					}
				}
				ns.Inputs[nameIn] = b
			}
			steps[i] = ns
		}
		inner := &workflow.Workflow{Name: "composite:" + name, Steps: steps}
		res, err := workflow.NewEngine(reg, call.Env).Run(call.Context(), inner)
		if err != nil {
			return fmt.Errorf("composite %s: %w", name, err)
		}
		lastID := steps[len(steps)-1].ID
		for _, out := range outputs {
			call.Out[out.Name] = res.Values[lastID+"."+out.Name]
		}
		return nil
	}
	_ = frozen

	return registry.Capability{
		Name:        name,
		Framework:   "composite",
		Description: desc,
		Inputs:      inputs,
		Outputs:     outputs,
		Constraints: []string{fmt.Sprintf("spans frameworks: %s", strings.Join(frameworks, ", "))},
		Tags:        tags,
		Cost:        cost,
		Composite:   true,
		Pure:        pure,
		Reads:       reads,
		Impl:        impl,
	}, nil
}

// compositeName derives a stable, readable name from the chain's head
// and tail verbs.
func compositeName(chain []workflow.Step) string {
	headVerb := verbOf(chain[0].Capability)
	tailVerb := verbOf(chain[len(chain)-1].Capability)
	return fmt.Sprintf("composite.%s_to_%s_%d", headVerb, tailVerb, len(chain))
}

func verbOf(capName string) string {
	if i := strings.IndexByte(capName, '.'); i >= 0 {
		return capName[i+1:]
	}
	return capName
}

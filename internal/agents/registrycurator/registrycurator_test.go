package registrycurator

import (
	"context"
	"strings"
	"testing"

	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// chainRegistry provides a 3-step liftable chain a→b→c.
func chainRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	r := registry.New()
	r.MustRegister(registry.Capability{
		Name: "t.a", Framework: "t", Description: "step a",
		Inputs:  []registry.Port{{Name: "seed", Type: registry.TString}},
		Outputs: []registry.Port{{Name: "x", Type: registry.TLinkSet}},
		Tags:    []string{"link-extraction"}, Cost: 1,
		Impl: func(c *registry.Call) error {
			s, err := c.Input("seed")
			if err != nil {
				return err
			}
			c.Out["x"] = []string{s.(string), "x"}
			return nil
		},
	})
	r.MustRegister(registry.Capability{
		Name: "t.b", Framework: "t", Description: "step b",
		Inputs:  []registry.Port{{Name: "x", Type: registry.TLinkSet}},
		Outputs: []registry.Port{{Name: "y", Type: registry.TIPSet}},
		Tags:    []string{"ip-extraction"}, Cost: 1,
		Impl: func(c *registry.Call) error {
			v, err := c.Input("x")
			if err != nil {
				return err
			}
			c.Out["y"] = append(v.([]string), "y")
			return nil
		},
	})
	r.MustRegister(registry.Capability{
		Name: "t.c", Framework: "u", Description: "step c",
		Inputs:  []registry.Port{{Name: "y", Type: registry.TIPSet}},
		Outputs: []registry.Port{{Name: "z", Type: registry.TImpact}},
		Tags:    []string{"aggregation"}, Cost: 2,
		Impl: func(c *registry.Call) error {
			v, err := c.Input("y")
			if err != nil {
				return err
			}
			c.Out["z"] = append(v.([]string), "z")
			return nil
		},
	})
	return r
}

func chainWorkflow(query string) *workflow.Workflow {
	return &workflow.Workflow{
		Name:  "wf",
		Query: query,
		Steps: []workflow.Step{
			{ID: "s1", Capability: "t.a", Inputs: map[string]workflow.Binding{"seed": workflow.Lit("s")}, Phase: "load"},
			{ID: "s2", Capability: "t.b", Inputs: map[string]workflow.Binding{"x": workflow.Ref("s1", "x")}, Phase: "auto"},
			{ID: "s3", Capability: "t.c", Inputs: map[string]workflow.Binding{"y": workflow.Ref("s2", "y")}, Phase: "aggregate"},
		},
		Outputs: map[string]string{"z": "s3.z"},
	}
}

func observe(t testing.TB, reg *registry.Registry, query string) Observation {
	t.Helper()
	wf := chainWorkflow(query)
	res, err := workflow.NewEngine(reg, nil).Run(context.Background(), wf)
	if err != nil {
		t.Fatal(err)
	}
	return Observation{Workflow: wf, Result: res}
}

func TestNoPromotionBelowSupport(t *testing.T) {
	reg := chainRegistry(t)
	history := []Observation{observe(t, reg, "query one")}
	promos, err := New().Curate(history, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(promos) != 0 {
		t.Errorf("promoted with support 1: %v", promos)
	}
}

func TestPromotionAtSupport(t *testing.T) {
	reg := chainRegistry(t)
	history := []Observation{
		observe(t, reg, "query one"),
		observe(t, reg, "query two"),
	}
	promos, err := New().Curate(history, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(promos) == 0 {
		t.Fatal("no promotion at support 2")
	}
	p := promos[0]
	if p.Support != 2 {
		t.Errorf("support = %d", p.Support)
	}
	if !p.Capability.Composite || p.Capability.Framework != "composite" {
		t.Errorf("capability = %+v", p.Capability)
	}
	if !reg.Has(p.Capability.Name) {
		t.Error("promotion not registered")
	}
	// Pattern must end at a sub-problem boundary (s3, phase aggregate).
	if p.Pattern[len(p.Pattern)-1] != "t.c" {
		t.Errorf("pattern = %v", p.Pattern)
	}
	// Tags merged plus composite marker.
	tagStr := strings.Join(p.Capability.Tags, " ")
	for _, want := range []string{"composite", "aggregation"} {
		if !strings.Contains(tagStr, want) {
			t.Errorf("tags = %v", p.Capability.Tags)
		}
	}
}

func TestCompositeExecutes(t *testing.T) {
	reg := chainRegistry(t)
	history := []Observation{
		observe(t, reg, "q1"),
		observe(t, reg, "q2"),
	}
	promos, err := New().Curate(history, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(promos) == 0 {
		t.Fatal("nothing promoted")
	}
	comp := promos[0].Capability

	// Execute the composite via a one-step workflow.
	var inputs map[string]workflow.Binding
	if len(comp.Inputs) > 0 {
		inputs = map[string]workflow.Binding{}
		for _, in := range comp.Inputs {
			switch in.Type {
			case registry.TString:
				inputs[in.Name] = workflow.Lit("fresh")
			case registry.TLinkSet:
				inputs[in.Name] = workflow.Lit([]string{"fresh", "x"})
			}
		}
	}
	wf := &workflow.Workflow{
		Name:    "use-composite",
		Steps:   []workflow.Step{{ID: "u", Capability: comp.Name, Inputs: inputs}},
		Outputs: map[string]string{"z": "u." + comp.Outputs[0].Name},
	}
	res, err := workflow.NewEngine(reg, nil).Run(context.Background(), wf)
	if err != nil {
		t.Fatal(err)
	}
	out, ok := res.Outputs["z"].([]string)
	if !ok {
		t.Fatalf("composite output = %T", res.Outputs["z"])
	}
	if out[len(out)-1] != "z" {
		t.Errorf("composite chain incomplete: %v", out)
	}
}

func TestIdempotentCuration(t *testing.T) {
	reg := chainRegistry(t)
	history := []Observation{observe(t, reg, "q1"), observe(t, reg, "q2")}
	first, err := New().Curate(history, reg)
	if err != nil {
		t.Fatal(err)
	}
	second, err := New().Curate(history, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) == 0 || len(second) != 0 {
		t.Errorf("curation not idempotent: %d then %d", len(first), len(second))
	}
}

func TestFailedRunsDontCount(t *testing.T) {
	reg := chainRegistry(t)
	good := observe(t, reg, "q1")
	bad := Observation{Workflow: good.Workflow, Result: good.Result, Err: errStub{}}
	promos, err := New().Curate([]Observation{good, bad}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(promos) != 0 {
		t.Error("failed observation counted toward support")
	}
}

type errStub struct{}

func (errStub) Error() string { return "stub" }

func TestLowQualityRejected(t *testing.T) {
	reg := chainRegistry(t)
	o1 := observe(t, reg, "q1")
	o2 := observe(t, reg, "q2")
	// Poison the quality score with failed checks.
	for _, o := range []Observation{o1, o2} {
		o.Result.Checks = append(o.Result.Checks,
			workflow.CheckResult{Name: "x", Passed: false},
			workflow.CheckResult{Name: "y", Passed: false},
			workflow.CheckResult{Name: "z", Passed: false},
		)
	}
	promos, err := New().Curate([]Observation{o1, o2}, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(promos) != 0 {
		t.Error("low-quality pattern promoted")
	}
}

func TestChainIsLiftable(t *testing.T) {
	wf := chainWorkflow("q")
	// Full window s1..s3 liftable.
	if !chainIsLiftable(wf.Steps[0:3]) {
		t.Error("s1..s3 should be liftable")
	}
	// Window s2..s3 liftable (head refs external s1).
	if !chainIsLiftable(wf.Steps[1:3]) {
		t.Error("s2..s3 should be liftable")
	}
	// A window whose tail references outside is not liftable.
	broken := []workflow.Step{
		wf.Steps[0],
		{ID: "s9", Capability: "t.c", Inputs: map[string]workflow.Binding{"y": workflow.Ref("outside", "y")}},
	}
	if chainIsLiftable(broken) {
		t.Error("external tail ref must not be liftable")
	}
}

func TestObservationSucceeded(t *testing.T) {
	if (Observation{}).Succeeded() {
		t.Error("empty observation cannot have succeeded")
	}
	reg := chainRegistry(t)
	o := observe(t, reg, "q")
	if !o.Succeeded() {
		t.Error("good observation reported failed")
	}
}

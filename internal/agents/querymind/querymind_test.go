package querymind

import (
	"errors"
	"strings"
	"testing"

	"arachnet/internal/nautilus"
	"arachnet/internal/nlq"
	"arachnet/internal/registry"
)

var fullData = DataAvailability{
	HasCrossLayerMap: true, MapCoverage: 0.95,
	HasTraceArchive: true, HasBGPStream: true, WindowDays: 7,
}

func parse(t testing.TB, q string) nlq.Spec {
	t.Helper()
	return nlq.Parse(q, nautilus.BuildCatalog())
}

func TestCableImpactDecomposition(t *testing.T) {
	spec := parse(t, "Identify the impact at a country level due to SeaMeWe-5 cable failure")
	ps, err := New().Analyze(spec, fullData)
	if err != nil {
		t.Fatal(err)
	}
	req := ps.Required()
	if len(req) != 2 {
		t.Fatalf("required subproblems = %d, want 2 (dependencies, aggregation)", len(req))
	}
	if req[0].ID != "dependencies" || req[0].Produces != registry.TLinkSet {
		t.Errorf("first required = %+v", req[0])
	}
	if req[1].ID != "aggregation" || req[1].Produces != registry.TImpact {
		t.Errorf("second required = %+v", req[1])
	}
	// Optional intermediates present for the direct pipeline path.
	if len(ps.SubProblems) != 4 {
		t.Errorf("total subproblems = %d, want 4", len(ps.SubProblems))
	}
	if len(ps.SuccessCriteria) == 0 {
		t.Error("no success criteria")
	}
	if ps.Complexity >= 3 {
		t.Errorf("CS1 complexity = %d, should be simple", ps.Complexity)
	}
}

func TestCableImpactLowCoverageRisk(t *testing.T) {
	spec := parse(t, "impact of SeaMeWe-5 cable failure")
	data := fullData
	data.MapCoverage = 0.5
	ps, err := New().Analyze(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ps.Risks {
		if strings.Contains(r, "50%") {
			found = true
		}
	}
	if !found {
		t.Errorf("low coverage risk not surfaced: %v", ps.Risks)
	}
}

func TestDisasterDecomposition(t *testing.T) {
	spec := parse(t, "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability")
	ps, err := New().Analyze(spec, fullData)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{}
	for _, sp := range ps.SubProblems {
		ids = append(ids, sp.ID)
	}
	want := []string{"events", "processing", "combination"}
	if len(ids) != 3 {
		t.Fatalf("subproblems = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("subproblem %d = %s, want %s", i, ids[i], want[i])
		}
	}
	// The over-engineering risk must be surfaced.
	found := false
	for _, r := range ps.Risks {
		if strings.Contains(r, "over-engineering") {
			found = true
		}
	}
	if !found {
		t.Errorf("restraint risk missing: %v", ps.Risks)
	}
	if ps.Classification[1] != "probabilistic" {
		t.Errorf("classification = %v", ps.Classification)
	}
}

func TestDisasterDefaultProbability(t *testing.T) {
	spec := parse(t, "what do severe hurricanes do to the Internet")
	ps, err := New().Analyze(spec, fullData)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, c := range ps.Constraints {
		if strings.Contains(c, "defaulting to 10%") {
			found = true
		}
	}
	if !found {
		t.Errorf("default probability not documented: %v", ps.Constraints)
	}
}

func TestCascadeDecomposition(t *testing.T) {
	spec := parse(t, "Analyze the cascading effects of submarine cable failures between Europe and Asia")
	ps, err := New().Analyze(spec, fullData)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.SubProblems) != 5 {
		t.Fatalf("subproblems = %d, want 5 with temporal data", len(ps.SubProblems))
	}
	last := ps.SubProblems[len(ps.SubProblems)-1]
	if last.ID != "synthesis" || last.Produces != registry.TTimeline {
		t.Errorf("final subproblem = %+v", last)
	}
	if len(last.DependsOn) != 3 {
		t.Errorf("synthesis depends on %v", last.DependsOn)
	}
}

func TestCascadeWithoutBGPDegrades(t *testing.T) {
	spec := parse(t, "cascading effects of cable failures between Europe and Asia")
	data := fullData
	data.HasBGPStream = false
	ps, err := New().Analyze(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	for _, sp := range ps.SubProblems {
		if sp.ID == "temporal" || sp.ID == "synthesis" {
			t.Errorf("temporal subproblem %s present without BGP data", sp.ID)
		}
	}
	found := false
	for _, c := range ps.Constraints {
		if strings.Contains(c, "temporal evolution omitted") {
			found = true
		}
	}
	if !found {
		t.Errorf("degradation not documented: %v", ps.Constraints)
	}
}

func TestCascadeNeedsCorridor(t *testing.T) {
	spec := parse(t, "analyze cascading failures everywhere")
	_, err := New().Analyze(spec, fullData)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
	if !strings.Contains(inf.Reason, "corridor") {
		t.Errorf("reason = %q", inf.Reason)
	}
}

func TestForensicDecomposition(t *testing.T) {
	spec := parse(t, "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable.")
	ps, err := New().Analyze(spec, fullData)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.SubProblems) != 6 {
		t.Fatalf("subproblems = %d, want 6", len(ps.SubProblems))
	}
	verdict := ps.SubProblems[5]
	if verdict.Produces != registry.TVerdict || len(verdict.DependsOn) != 3 {
		t.Errorf("verdict subproblem = %+v", verdict)
	}
	// Classification must include causal.
	hasCausal := false
	for _, c := range ps.Classification {
		if c == "causal" {
			hasCausal = true
		}
	}
	if !hasCausal {
		t.Errorf("classification = %v", ps.Classification)
	}
}

func TestForensicInfeasibleWithoutData(t *testing.T) {
	spec := parse(t, "latency increased three days ago, determine if a cable failure caused this")
	for _, mut := range []func(*DataAvailability){
		func(d *DataAvailability) { d.HasTraceArchive = false },
		func(d *DataAvailability) { d.HasBGPStream = false },
	} {
		data := fullData
		mut(&data)
		_, err := New().Analyze(spec, data)
		var inf *ErrInfeasible
		if !errors.As(err, &inf) {
			t.Errorf("missing data not rejected: %v", err)
		}
	}
}

func TestForensicThinBaselineRisk(t *testing.T) {
	spec := parse(t, "latency jumped five days ago; did a cable failure cause this?")
	data := fullData
	data.WindowDays = 5
	ps, err := New().Analyze(spec, data)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range ps.Risks {
		if strings.Contains(r, "baseline may be thin") {
			found = true
		}
	}
	if !found {
		t.Errorf("thin baseline risk missing: %v", ps.Risks)
	}
}

func TestGenericRejected(t *testing.T) {
	spec := parse(t, "tell me interesting facts")
	_, err := New().Analyze(spec, fullData)
	var inf *ErrInfeasible
	if !errors.As(err, &inf) {
		t.Fatalf("generic not rejected: %v", err)
	}
	if !strings.Contains(inf.Error(), "infeasible") {
		t.Errorf("error text: %v", inf)
	}
}

func TestDependenciesAcyclicAndResolvable(t *testing.T) {
	queries := []string{
		"impact at country level of SeaMeWe-5 cable failure",
		"impact of severe earthquakes and hurricanes at 10% failure probability",
		"cascading effects of cable failures between Europe and Asia",
		"latency rose three days ago; determine if a cable failure caused it and identify the specific cable",
	}
	for _, q := range queries {
		ps, err := New().Analyze(parse(t, q), fullData)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		seen := map[string]bool{}
		for _, sp := range ps.SubProblems {
			for _, d := range sp.DependsOn {
				if !seen[d] {
					t.Errorf("%q: %s depends on %s which is not earlier", q, sp.ID, d)
				}
			}
			seen[sp.ID] = true
		}
	}
}

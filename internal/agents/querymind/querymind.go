// Package querymind implements ArachNet's first agent: problem analysis
// and decomposition. It turns a parsed natural-language query into
// structured sub-problems with dependencies, analyzes data and
// technical constraints early (infeasible approaches are rejected
// before any design work), surfaces risks, and defines explicit success
// criteria so downstream agents neither under-analyze nor
// over-engineer.
//
// The decomposition templates encode the expert reasoning patterns the
// paper's prompts captured: a cable-impact question hides dependency
// extraction, element extraction, geographic mapping and aggregation; a
// forensic question demands baseline statistics, infrastructure
// correlation, routing validation and evidence synthesis.
package querymind

import (
	"fmt"

	"arachnet/internal/nlq"
	"arachnet/internal/registry"
)

// DataAvailability tells QueryMind what the environment can serve; it
// drives constraint analysis.
type DataAvailability struct {
	HasCrossLayerMap bool
	MapCoverage      float64
	HasTraceArchive  bool
	HasBGPStream     bool
	WindowDays       int
}

// SubProblem is one structured piece of the decomposition.
type SubProblem struct {
	ID   string
	Goal string
	// Produces is the artifact type that answers this sub-problem.
	Produces registry.DataType
	// Tags hint which capability families address it.
	Tags []string
	// DependsOn lists prerequisite sub-problem IDs.
	DependsOn []string
	// Optional sub-problems are intermediate means: the solution may
	// skip them when a capability satisfies the downstream goal
	// directly.
	Optional bool
	// Constraints specific to this sub-problem.
	Constraints []string
}

// ProblemSpec is QueryMind's output artifact.
type ProblemSpec struct {
	Query nlq.Spec
	// Classification flags the reasoning dimensions involved.
	Classification []string // "spatial", "temporal", "causal", "probabilistic"
	SubProblems    []SubProblem
	// Constraints are global: data availability, methodology.
	Constraints []string
	// Risks are failure modes that could compromise results.
	Risks []string
	// SuccessCriteria state when the query counts as answered.
	SuccessCriteria []string
	// Complexity drives WorkflowScout's adaptive exploration.
	Complexity int
}

// Required returns the non-optional sub-problems in order.
func (p *ProblemSpec) Required() []SubProblem {
	var out []SubProblem
	for _, sp := range p.SubProblems {
		if !sp.Optional {
			out = append(out, sp)
		}
	}
	return out
}

// ErrInfeasible wraps constraint-analysis rejections.
type ErrInfeasible struct{ Reason string }

func (e *ErrInfeasible) Error() string {
	return "querymind: query infeasible: " + e.Reason
}

// Agent is the QueryMind agent. The zero value is ready to use.
type Agent struct{}

// New returns a QueryMind agent.
func New() *Agent { return &Agent{} }

// Analyze decomposes a parsed query under the given data availability.
func (a *Agent) Analyze(spec nlq.Spec, data DataAvailability) (*ProblemSpec, error) {
	ps := &ProblemSpec{Query: spec, Complexity: spec.Complexity()}

	switch spec.Intent {
	case nlq.IntentCableImpact:
		a.decomposeCableImpact(ps, data)
	case nlq.IntentDisasterImpact:
		a.decomposeDisaster(ps, data)
	case nlq.IntentCascade:
		if err := a.decomposeCascade(ps, data); err != nil {
			return nil, err
		}
	case nlq.IntentForensic:
		if err := a.decomposeForensic(ps, data); err != nil {
			return nil, err
		}
	default:
		return nil, &ErrInfeasible{Reason: fmt.Sprintf(
			"intent %q is not a recognized measurement problem class; rephrase with a concrete target (cable, region, disaster, anomaly)", spec.Intent)}
	}
	return ps, nil
}

func (a *Agent) decomposeCableImpact(ps *ProblemSpec, data DataAvailability) {
	ps.Classification = []string{"spatial"}
	if !data.HasCrossLayerMap {
		ps.Risks = append(ps.Risks, "no cross-layer map available: cable-to-link attribution impossible")
	} else if data.MapCoverage < 0.9 {
		ps.Risks = append(ps.Risks, fmt.Sprintf(
			"cross-layer map covers %.0f%% of submarine links; unmapped links may hide impact", data.MapCoverage*100))
	}
	target := "the named cable"
	if len(ps.Query.Cables) == 0 {
		target = "the cable set in scope"
	}
	ps.SubProblems = []SubProblem{
		{
			ID: "dependencies", Goal: "Identify the IP links that depend on " + target,
			Produces: registry.TLinkSet, Tags: []string{"cable-dependency", "link-extraction"},
			Constraints: []string{"attribution must come from the cross-layer map, not name heuristics"},
		},
		{
			ID: "elements", Goal: "Extract the affected IP addresses",
			Produces: registry.TIPSet, Tags: []string{"ip-extraction"},
			DependsOn: []string{"dependencies"}, Optional: true,
		},
		{
			ID: "geography", Goal: "Map affected elements to countries",
			Produces: registry.TGeoTable, Tags: []string{"geo-mapping"},
			DependsOn: []string{"elements"}, Optional: true,
		},
		{
			ID: "aggregation", Goal: "Aggregate losses into a country-level impact table",
			Produces: registry.TImpact, Tags: []string{"aggregation", "country-level", "impact-analysis"},
			DependsOn:   []string{"dependencies", "geography"},
			Constraints: []string{"report normalized metrics so countries of different sizes compare fairly"},
		},
	}
	ps.Constraints = append(ps.Constraints, "aggregation grain: country level")
	ps.SuccessCriteria = []string{
		"a per-country impact table with normalized scores exists",
		"every impacted country traces back to a failed link",
	}
}

func (a *Agent) decomposeDisaster(ps *ProblemSpec, data DataAvailability) {
	ps.Classification = []string{"spatial", "probabilistic"}
	prob := ps.Query.FailProb
	if prob == 0 {
		prob = 0.1
		ps.Constraints = append(ps.Constraints, "no failure probability stated; defaulting to 10%")
	}
	ps.SubProblems = []SubProblem{
		{
			ID: "events", Goal: "Enumerate the severe disaster scenarios in scope",
			Produces: registry.TEventList, Tags: []string{"event-selection"},
			Constraints: []string{"use curated severe-event catalogs, not ad-hoc epicenters"},
		},
		{
			ID: "processing", Goal: fmt.Sprintf("Process each event with failure probability %.2f", prob),
			Produces: registry.TEventImpact, Tags: []string{"event-processing"},
			DependsOn:   []string{"events"},
			Constraints: []string{"one event-processing function handles every disaster type; do not build per-type pipelines"},
		},
		{
			ID: "combination", Goal: "Combine per-event impacts into one global view",
			Produces: registry.TGlobal, Tags: []string{"combine", "aggregation"},
			DependsOn: []string{"processing"},
		},
	}
	ps.Risks = append(ps.Risks,
		"over-engineering risk: multi-framework orchestration adds nothing here — event processing alone suffices")
	ps.SuccessCriteria = []string{
		"expected impact computed for every event of every requested type",
		"a single combined global impact view exists",
	}
	_ = data
}

func (a *Agent) decomposeCascade(ps *ProblemSpec, data DataAvailability) error {
	ps.Classification = []string{"spatial", "temporal"}
	if !data.HasCrossLayerMap {
		return &ErrInfeasible{Reason: "cascade analysis needs the cross-layer map to seed cable failures"}
	}
	if len(ps.Query.Regions) < 2 {
		return &ErrInfeasible{Reason: "cascade analysis needs a corridor: name two regions (e.g. Europe and Asia)"}
	}
	ps.SubProblems = []SubProblem{
		{
			ID: "corridor", Goal: "Identify the submarine cables joining the two regions",
			Produces: registry.TLinkSet, Tags: []string{"link-extraction", "cable-dependency"},
			Constraints: []string{"scope strictly to the named corridor"},
		},
		{
			ID: "impact", Goal: "Quantify the primary cross-layer impact of the corridor failing",
			Produces: registry.TImpact, Tags: []string{"impact-analysis", "aggregation"},
			DependsOn: []string{"corridor"},
		},
		{
			ID: "cascade", Goal: "Model secondary failures over cable and AS dependency graphs",
			Produces: registry.TCascade, Tags: []string{"cascade", "dependency-graph"},
			DependsOn: []string{"corridor"},
		},
	}
	if data.HasBGPStream {
		ps.SubProblems = append(ps.SubProblems,
			SubProblem{
				ID: "temporal", Goal: "Track how the failure manifests in routing over time",
				Produces: registry.TBGPBursts, Tags: []string{"anomaly-detection", "routing"},
			},
			SubProblem{
				ID: "synthesis", Goal: "Synthesize a unified cascade timeline across cable, IP, AS and routing layers",
				Produces: registry.TTimeline, Tags: []string{"synthesis", "cross-layer"},
				DependsOn: []string{"impact", "cascade", "temporal"},
			},
		)
		ps.SuccessCriteria = append(ps.SuccessCriteria, "a unified timeline spans at least the cable, IP and AS layers")
	} else {
		ps.Constraints = append(ps.Constraints, "no BGP dumps available: temporal evolution omitted, impact+cascade only")
		ps.Risks = append(ps.Risks, "without routing data the cascade's temporal ordering is model-derived only")
	}
	ps.SuccessCriteria = append(ps.SuccessCriteria,
		"primary impact quantified per country",
		"secondary (cascade) failures enumerated by round")
	return nil
}

func (a *Agent) decomposeForensic(ps *ProblemSpec, data DataAvailability) error {
	ps.Classification = []string{"temporal", "causal", "spatial"}
	if !data.HasTraceArchive {
		return &ErrInfeasible{Reason: "forensic analysis needs a latency archive covering the anomaly window; none is available"}
	}
	if !data.HasBGPStream {
		return &ErrInfeasible{Reason: "forensic causation needs BGP dumps for independent validation; none are available"}
	}
	if ps.Query.Window.Mentioned && data.WindowDays <= ps.Query.Window.Days {
		ps.Risks = append(ps.Risks, fmt.Sprintf(
			"archive window (%dd) barely covers the anomaly onset (%dd ago); baseline may be thin",
			data.WindowDays, ps.Query.Window.Days))
	}
	ps.SubProblems = []SubProblem{
		{
			ID: "measurements", Goal: "Load the probe archive for the affected corridor",
			Produces: registry.TTraceArch, Tags: []string{"measurement-data", "temporal"},
		},
		{
			ID: "anomaly", Goal: "Establish a latency baseline and detect the shift with significance testing",
			Produces: registry.TAnomaly, Tags: []string{"anomaly-detection", "statistical"},
			DependsOn:   []string{"measurements"},
			Constraints: []string{"use robust statistics; a single noisy probe must not drive the verdict"},
		},
		{
			ID: "routing-data", Goal: "Load the BGP updates covering the window",
			Produces: registry.TBGPStream, Tags: []string{"routing-data", "temporal"},
		},
		{
			ID: "correlation", Goal: "Score candidate cables by infrastructure correlation",
			Produces: registry.TSuspects, Tags: []string{"infrastructure-correlation", "forensic"},
			DependsOn: []string{"anomaly", "routing-data"},
		},
		{
			ID: "validation", Goal: "Validate timing independently against routing behavior",
			Produces: registry.TFloat, Tags: []string{"temporal-correlation", "validation"},
			DependsOn: []string{"anomaly", "routing-data"},
		},
		{
			ID: "verdict", Goal: "Fuse the evidence into a causation verdict naming the cable",
			Produces: registry.TVerdict, Tags: []string{"evidence-synthesis", "causation"},
			DependsOn:   []string{"anomaly", "correlation", "validation"},
			Constraints: []string{"report confidence; do not assert causation from one evidence source"},
		},
	}
	ps.SuccessCriteria = []string{
		"anomaly presence decided by significance test, not eyeballing",
		"verdict cites at least three independent evidence sources",
		"a specific cable is named, or cable failure is explicitly ruled out",
	}
	return nil
}

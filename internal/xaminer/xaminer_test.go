package xaminer

import (
	"math"
	"testing"

	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
)

func setup(t testing.TB) *Analyzer {
	t.Helper()
	w, err := netsim.Generate(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	cat := nautilus.BuildCatalog()
	m, err := nautilus.MapWorld(w, cat)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewAnalyzer(w, cat, m)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestNewAnalyzerNilWorld(t *testing.T) {
	if _, err := NewAnalyzer(nil, nil, nil); err == nil {
		t.Error("nil world must error")
	}
}

func TestFailCables(t *testing.T) {
	a := setup(t)
	m := a.Map()
	var anyCable nautilus.CableID
	for c, links := range m.CableLinks {
		if len(links) > 0 {
			anyCable = c
			break
		}
	}
	if anyCable == "" {
		t.Skip("no cable carries links in this world")
	}
	failed := FailCables(m, anyCable)
	if len(failed) != len(m.LinksOn(anyCable)) {
		t.Errorf("failed %d links, cable carries %d", len(failed), len(m.LinksOn(anyCable)))
	}
	if len(FailCables(m)) != 0 {
		t.Error("no cables must fail no links")
	}
}

func TestAnalyzeLinkFailuresEmpty(t *testing.T) {
	a := setup(t)
	rep := a.AnalyzeLinkFailures("empty", nil, false)
	if rep.FailedLinks != 0 || len(rep.Countries) != 0 {
		t.Errorf("empty scenario produced impact: %+v", rep)
	}
}

func TestAnalyzeLinkFailuresBasic(t *testing.T) {
	a := setup(t)
	w := a.World()
	// Fail one specific cross-border link and check attribution.
	var victim netsim.IPLink
	for _, l := range w.IPLinks {
		ca, cb := w.LinkEndpoints(l)
		if ca != cb {
			victim = l
			break
		}
	}
	rep := a.AnalyzeLinkFailures("one-link", map[netsim.LinkID]bool{victim.ID: true}, false)
	if rep.FailedLinks != 1 {
		t.Errorf("FailedLinks = %d", rep.FailedLinks)
	}
	ca, cb := w.LinkEndpoints(victim)
	got := map[string]bool{}
	for _, ci := range rep.Countries {
		got[ci.Country] = true
		if ci.Score <= 0 || ci.Score > 1 {
			t.Errorf("country %s score %f out of range", ci.Country, ci.Score)
		}
		if ci.LinksLost > float64(ci.LinksTotal) {
			t.Errorf("country %s lost more links than it has", ci.Country)
		}
	}
	if !got[ca] || !got[cb] {
		t.Errorf("impact countries %v missing endpoints %s/%s", got, ca, cb)
	}
}

func TestAnalyzeCableFailureSeaMeWe5(t *testing.T) {
	a := setup(t)
	rep, err := a.AnalyzeCableFailure(false, "seamewe-5")
	if err != nil {
		t.Fatal(err)
	}
	if rep.FailedLinks == 0 {
		t.Skip("seamewe-5 carries no links in this small world")
	}
	// Impacted countries must be on the SeaMeWe-5 corridor or adjacent.
	cable, _ := a.Catalog().ByID("seamewe-5")
	corridor := map[string]bool{}
	for _, cc := range cable.Countries() {
		corridor[cc] = true
	}
	onCorridor := 0
	for _, ci := range rep.Countries {
		if corridor[ci.Country] {
			onCorridor++
		}
	}
	if onCorridor == 0 {
		t.Errorf("no impacted country on the cable corridor: %v", rep.TopCountries(10))
	}
}

func TestAnalyzeCableFailureUnknown(t *testing.T) {
	a := setup(t)
	if _, err := a.AnalyzeCableFailure(false, "no-such-cable"); err == nil {
		t.Error("unknown cable must error")
	}
}

func TestReachabilityLossMonotone(t *testing.T) {
	a := setup(t)
	w := a.World()
	// Isolating a stub must produce strictly positive reachability loss.
	var stub netsim.ASN
	for _, as := range w.ASes {
		if as.Tier == netsim.Stub {
			stub = as.ASN
			break
		}
	}
	failed := map[netsim.LinkID]bool{}
	for _, l := range w.IPLinks {
		if !l.IntraAS && (l.ASLinkAB[0] == stub || l.ASLinkAB[1] == stub) {
			failed[l.ID] = true
		}
	}
	rep := a.AnalyzeLinkFailures("isolate-stub", failed, true)
	if rep.ReachabilityLossPct <= 0 {
		t.Errorf("no reachability loss after isolating a stub: %f", rep.ReachabilityLossPct)
	}
	if rep.ReachabilityLossPct > 100 {
		t.Errorf("loss over 100%%: %f", rep.ReachabilityLossPct)
	}
}

func TestTopCountriesAndScoreLookup(t *testing.T) {
	a := setup(t)
	w := a.World()
	failed := map[netsim.LinkID]bool{}
	for _, l := range w.SubmarineLinks() {
		failed[l.ID] = true
	}
	rep := a.AnalyzeLinkFailures("all-submarine", failed, false)
	if len(rep.Countries) < 3 {
		t.Fatalf("too few impacted countries: %d", len(rep.Countries))
	}
	top := rep.TopCountries(3)
	if len(top) != 3 {
		t.Fatalf("TopCountries(3) = %v", top)
	}
	// Sorted descending.
	for i := 1; i < len(rep.Countries); i++ {
		if rep.Countries[i-1].Score < rep.Countries[i].Score {
			t.Fatal("countries not sorted by score")
		}
	}
	if s := rep.CountryScore(top[0]); s != rep.Countries[0].Score {
		t.Errorf("CountryScore(top) = %f, want %f", s, rep.Countries[0].Score)
	}
	if s := rep.CountryScore("ZZ"); s != 0 {
		t.Errorf("CountryScore(unknown) = %f", s)
	}
	if got := rep.TopCountries(10000); len(got) != len(rep.Countries) {
		t.Error("TopCountries should clamp")
	}
}

func TestProcessEventTohoku(t *testing.T) {
	a := setup(t)
	ev := SevereEarthquakes()[0] // tohoku-offshore
	im, err := a.ProcessEvent(ev, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(im.RoutersAtRisk) == 0 {
		t.Fatal("Tohoku event puts no routers at risk (JP is in the world)")
	}
	// Every at-risk router must be within the radius.
	for _, id := range im.RoutersAtRisk {
		r, _ := a.World().RouterByID(id)
		if d := geo.DistanceKm(r.Loc, ev.Epicenter); d > ev.RadiusKm {
			t.Errorf("router %d at %f km, radius %f", id, d, ev.RadiusKm)
		}
	}
	if want := 0.10 * float64(len(im.LinksAtRisk)); math.Abs(im.ExpectedLinksLost-want) > 1e-9 {
		t.Errorf("expected links lost = %f, want %f", im.ExpectedLinksLost, want)
	}
	// Japan must appear among impacted countries.
	foundJP := false
	for _, ci := range im.Countries {
		if ci.Country == "JP" {
			foundJP = true
		}
	}
	if !foundJP {
		t.Error("JP missing from Tohoku impact")
	}
}

func TestProcessEventValidation(t *testing.T) {
	a := setup(t)
	ev := SevereEarthquakes()[0]
	if _, err := a.ProcessEvent(ev, -0.1); err == nil {
		t.Error("negative probability must error")
	}
	if _, err := a.ProcessEvent(ev, 1.1); err == nil {
		t.Error("probability > 1 must error")
	}
	bad := ev
	bad.RadiusKm = 0
	if _, err := a.ProcessEvent(bad, 0.1); err == nil {
		t.Error("zero radius must error")
	}
}

func TestProcessEventProbabilityScaling(t *testing.T) {
	a := setup(t)
	ev := SevereHurricanes()[0]
	lo, err := a.ProcessEvent(ev, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := a.ProcessEvent(ev, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(lo.LinksAtRisk) != len(hi.LinksAtRisk) {
		t.Error("at-risk set must not depend on probability")
	}
	if hi.ExpectedLinksLost < lo.ExpectedLinksLost {
		t.Error("expected loss must scale with probability")
	}
	if len(lo.LinksAtRisk) > 0 && math.Abs(hi.ExpectedLinksLost/lo.ExpectedLinksLost-5) > 1e-9 {
		t.Errorf("loss ratio = %f, want 5", hi.ExpectedLinksLost/lo.ExpectedLinksLost)
	}
}

func TestSampleEventConvergesToExpectation(t *testing.T) {
	a := setup(t)
	ev := SevereEarthquakes()[0]
	exp, err := a.ProcessEvent(ev, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.LinksAtRisk) == 0 {
		t.Skip("no at-risk links for this seed")
	}
	rep, err := a.SampleEvent(ev, 0.2, 400, 11)
	if err != nil {
		t.Fatal(err)
	}
	// Mean failed links across samples ≈ expectation.
	want := exp.ExpectedLinksLost
	got := float64(rep.FailedLinks)
	if math.Abs(got-want) > want*0.5+1 {
		t.Errorf("MC mean failed links = %f, expectation %f", got, want)
	}
	if _, err := a.SampleEvent(ev, 0.2, 0, 1); err == nil {
		t.Error("zero samples must error")
	}
}

func TestEventCatalogs(t *testing.T) {
	eq := SevereEarthquakes()
	hu := SevereHurricanes()
	if len(eq) < 5 || len(hu) < 5 {
		t.Fatalf("catalogs too small: %d, %d", len(eq), len(hu))
	}
	seen := map[string]bool{}
	for _, ev := range append(eq, hu...) {
		if seen[ev.Name] {
			t.Errorf("duplicate event %s", ev.Name)
		}
		seen[ev.Name] = true
		if !ev.Epicenter.Valid() || ev.RadiusKm <= 0 || ev.Severity <= 0 {
			t.Errorf("bad event %+v", ev)
		}
	}
	for _, ev := range eq {
		if ev.Type != Earthquake {
			t.Errorf("%s mis-typed", ev.Name)
		}
	}
	for _, ev := range hu {
		if ev.Type != Hurricane {
			t.Errorf("%s mis-typed", ev.Name)
		}
	}
}

func TestCombineEventImpacts(t *testing.T) {
	a := setup(t)
	var impacts []EventImpact
	for _, ev := range SevereEarthquakes()[:3] {
		im, err := a.ProcessEvent(ev, 0.1)
		if err != nil {
			t.Fatal(err)
		}
		impacts = append(impacts, im)
	}
	g := CombineEventImpacts(a, impacts)
	if len(g.Events) != 3 {
		t.Errorf("events = %v", g.Events)
	}
	var sum float64
	for _, im := range impacts {
		sum += im.ExpectedLinksLost
	}
	if math.Abs(g.ExpectedLinksLost-sum) > 1e-9 {
		t.Errorf("combined loss %f != sum %f", g.ExpectedLinksLost, sum)
	}
	for i := 1; i < len(g.Countries); i++ {
		if g.Countries[i-1].Score < g.Countries[i].Score {
			t.Fatal("combined countries not sorted")
		}
	}
}

func TestScoreOfClamps(t *testing.T) {
	ci := CountryImpact{LinksLost: 10, LinksTotal: 2} // over-attribution
	if s := scoreOf(ci); s > 1 {
		t.Errorf("score %f exceeds 1", s)
	}
	if s := scoreOf(CountryImpact{}); s != 0 {
		t.Errorf("empty score = %f", s)
	}
}

func BenchmarkAnalyzeCableFailure(b *testing.B) {
	a := setup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.AnalyzeCableFailure(false, "seamewe-5"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProcessEvent(b *testing.B) {
	a := setup(b)
	ev := SevereEarthquakes()[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.ProcessEvent(ev, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}

package xaminer

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
)

// DisasterType classifies natural-disaster events.
type DisasterType int

// Supported disaster types.
const (
	Earthquake DisasterType = iota + 1
	Hurricane
)

// String implements fmt.Stringer.
func (t DisasterType) String() string {
	switch t {
	case Earthquake:
		return "earthquake"
	case Hurricane:
		return "hurricane"
	}
	return fmt.Sprintf("disaster(%d)", int(t))
}

// Event is one natural-disaster scenario: everything within RadiusKm of
// the epicenter is at risk.
type Event struct {
	Name      string
	Type      DisasterType
	Epicenter geo.Coord
	RadiusKm  float64
	Severity  float64 // Mw for earthquakes, Saffir-Simpson category for hurricanes
}

// SevereEarthquakes returns the built-in catalog of severe earthquake
// scenarios, modeled on historically cable-damaging events.
func SevereEarthquakes() []Event {
	return []Event{
		{Name: "tohoku-offshore", Type: Earthquake, Epicenter: geo.Coord{Lat: 38.3, Lng: 142.4}, RadiusKm: 500, Severity: 9.0},
		{Name: "hengchun-strait", Type: Earthquake, Epicenter: geo.Coord{Lat: 21.9, Lng: 120.8}, RadiusKm: 400, Severity: 7.1},
		{Name: "sumatra-andaman", Type: Earthquake, Epicenter: geo.Coord{Lat: 3.3, Lng: 95.9}, RadiusKm: 600, Severity: 9.1},
		{Name: "valparaiso-coast", Type: Earthquake, Epicenter: geo.Coord{Lat: -33.0, Lng: -72.0}, RadiusKm: 450, Severity: 8.4},
		{Name: "east-anatolia", Type: Earthquake, Epicenter: geo.Coord{Lat: 37.2, Lng: 37.0}, RadiusKm: 350, Severity: 7.8},
		{Name: "luzon-trench", Type: Earthquake, Epicenter: geo.Coord{Lat: 16.8, Lng: 120.8}, RadiusKm: 400, Severity: 7.6},
		{Name: "izmit-marmara", Type: Earthquake, Epicenter: geo.Coord{Lat: 40.8, Lng: 29.9}, RadiusKm: 300, Severity: 7.4},
	}
}

// SevereHurricanes returns the built-in catalog of severe tropical
// cyclone scenarios.
func SevereHurricanes() []Event {
	return []Event{
		{Name: "florida-landfall", Type: Hurricane, Epicenter: geo.Coord{Lat: 25.8, Lng: -80.2}, RadiusKm: 400, Severity: 5},
		{Name: "gulf-coast", Type: Hurricane, Epicenter: geo.Coord{Lat: 29.2, Lng: -90.1}, RadiusKm: 350, Severity: 4},
		{Name: "carolinas-landfall", Type: Hurricane, Epicenter: geo.Coord{Lat: 33.9, Lng: -78.0}, RadiusKm: 350, Severity: 4},
		{Name: "caribbean-arc", Type: Hurricane, Epicenter: geo.Coord{Lat: 18.4, Lng: -69.9}, RadiusKm: 450, Severity: 5},
		{Name: "luzon-typhoon", Type: Hurricane, Epicenter: geo.Coord{Lat: 14.5, Lng: 121.0}, RadiusKm: 400, Severity: 5},
		{Name: "okinawa-corridor", Type: Hurricane, Epicenter: geo.Coord{Lat: 26.0, Lng: 127.0}, RadiusKm: 450, Severity: 4},
		{Name: "pearl-river-delta", Type: Hurricane, Epicenter: geo.Coord{Lat: 22.2, Lng: 114.1}, RadiusKm: 350, Severity: 4},
		{Name: "bay-of-bengal", Type: Hurricane, Epicenter: geo.Coord{Lat: 20.5, Lng: 88.5}, RadiusKm: 500, Severity: 5},
		{Name: "mozambique-channel", Type: Hurricane, Epicenter: geo.Coord{Lat: -19.8, Lng: 34.9}, RadiusKm: 400, Severity: 4},
	}
}

// EventImpact is the outcome of processing one disaster event.
type EventImpact struct {
	Event             Event
	FailProb          float64
	RoutersAtRisk     []netsim.RouterID
	LinksAtRisk       []netsim.LinkID
	CablesAtRisk      []nautilus.CableID
	ExpectedLinksLost float64
	// Countries is the expectation-weighted country impact, sorted by
	// descending score.
	Countries []CountryImpact
}

// ProcessEvent computes the expected impact of one event under a given
// per-component failure probability (expectation mode: every at-risk
// link contributes failProb fractionally). This single function handles
// every disaster type — the versatility the paper's Case Study 2 leans
// on.
func (a *Analyzer) ProcessEvent(ev Event, failProb float64) (EventImpact, error) {
	if failProb < 0 || failProb > 1 {
		return EventImpact{}, fmt.Errorf("xaminer: failure probability %f out of [0,1]", failProb)
	}
	if ev.RadiusKm <= 0 {
		return EventImpact{}, fmt.Errorf("xaminer: event %q has non-positive radius", ev.Name)
	}
	out := EventImpact{Event: ev, FailProb: failProb}

	atRiskRouters := map[netsim.RouterID]bool{}
	for _, r := range a.w.Routers {
		if geo.DistanceKm(r.Loc, ev.Epicenter) <= ev.RadiusKm {
			atRiskRouters[r.ID] = true
			out.RoutersAtRisk = append(out.RoutersAtRisk, r.ID)
		}
	}
	sort.Slice(out.RoutersAtRisk, func(i, j int) bool { return out.RoutersAtRisk[i] < out.RoutersAtRisk[j] })

	// Cables whose landing points fall inside the radius: their carried
	// links are at risk even when the endpoints are far away (a cable
	// break mid-corridor kills the whole link).
	cableRisk := map[nautilus.CableID]bool{}
	if a.cat != nil {
		for _, c := range a.cat.Cables() {
			for _, lpt := range c.Landings {
				if geo.DistanceKm(lpt.Loc, ev.Epicenter) <= ev.RadiusKm {
					cableRisk[c.ID] = true
					break
				}
			}
		}
	}
	for id := range cableRisk {
		out.CablesAtRisk = append(out.CablesAtRisk, id)
	}
	sort.Slice(out.CablesAtRisk, func(i, j int) bool { return out.CablesAtRisk[i] < out.CablesAtRisk[j] })

	linkRisk := map[netsim.LinkID]bool{}
	for _, l := range a.w.IPLinks {
		if atRiskRouters[l.A] || atRiskRouters[l.B] {
			linkRisk[l.ID] = true
		}
	}
	if a.m != nil {
		for cid := range cableRisk {
			for _, id := range a.m.LinksOn(cid) {
				linkRisk[id] = true
			}
		}
	}
	for id := range linkRisk {
		out.LinksAtRisk = append(out.LinksAtRisk, id)
	}
	sort.Slice(out.LinksAtRisk, func(i, j int) bool { return out.LinksAtRisk[i] < out.LinksAtRisk[j] })

	out.ExpectedLinksLost = failProb * float64(len(out.LinksAtRisk))

	acc := newAccumulator()
	for _, id := range out.LinksAtRisk {
		l, ok := a.w.LinkByID(id)
		if !ok {
			continue
		}
		acc.addLink(a.w, l, failProb)
	}
	out.Countries = acc.report(a, "event:"+ev.Name, len(out.LinksAtRisk)).Countries
	return out, nil
}

// SampleEvent runs Monte-Carlo event processing: each at-risk link
// fails independently with failProb per sample; the returned report
// averages country impact over samples and its FailedLinks field holds
// the mean number of failed links (rounded).
func (a *Analyzer) SampleEvent(ev Event, failProb float64, samples int, seed uint64) (*ImpactReport, error) {
	if samples <= 0 {
		return nil, fmt.Errorf("xaminer: samples must be positive")
	}
	base, err := a.ProcessEvent(ev, failProb)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewPCG(seed, seed^0x6a09e667f3bcc909))
	acc := newAccumulator()
	var totalFailed int
	for s := 0; s < samples; s++ {
		for _, id := range base.LinksAtRisk {
			if rng.Float64() >= failProb {
				continue
			}
			totalFailed++
			l, ok := a.w.LinkByID(id)
			if !ok {
				continue
			}
			acc.addLink(a.w, l, 1.0/float64(samples))
		}
	}
	rep := acc.report(a, "event-mc:"+ev.Name, totalFailed/samples)
	return rep, nil
}

// GlobalImpact aggregates several event impacts into one worldwide
// view, the deliverable of the paper's Case Study 2.
type GlobalImpact struct {
	Events            []string
	ExpectedLinksLost float64
	// Countries merges per-event expectations (sums, clamped to country
	// totals), sorted by descending score.
	Countries []CountryImpact
}

// CombineEventImpacts merges per-event expectation impacts.
func CombineEventImpacts(a *Analyzer, impacts []EventImpact) GlobalImpact {
	g := GlobalImpact{}
	byCountry := map[string]CountryImpact{}
	for _, im := range impacts {
		g.Events = append(g.Events, im.Event.Name)
		g.ExpectedLinksLost += im.ExpectedLinksLost
		for _, ci := range im.Countries {
			cur := byCountry[ci.Country]
			cur.Country = ci.Country
			cur.LinksLost += ci.LinksLost
			cur.IPsLost += ci.IPsLost
			cur.ASesHit += ci.ASesHit
			cur.ASLinksLost += ci.ASLinksLost
			cur.LinksTotal = ci.LinksTotal
			cur.IPsTotal = ci.IPsTotal
			cur.ASesTotal = ci.ASesTotal
			cur.ASLinksTot = ci.ASLinksTot
			byCountry[ci.Country] = cur
		}
	}
	for _, ci := range byCountry {
		ci.Score = scoreOf(ci)
		g.Countries = append(g.Countries, ci)
	}
	sort.Slice(g.Countries, func(i, j int) bool {
		if g.Countries[i].Score != g.Countries[j].Score {
			return g.Countries[i].Score > g.Countries[j].Score
		}
		return g.Countries[i].Country < g.Countries[j].Country
	})
	sort.Strings(g.Events)
	return g
}

// Package xaminer reimplements the capability surface of the Xaminer
// cross-layer resilience analysis tool (Ramanathan, Sankaran & Abdu
// Jyothi, 2024): failure-scenario construction, cross-layer impact
// metrics aggregated at country and AS level (Xaminer's "embedding"
// metrics: IPs, links, ASes and AS links per country, normalized), and
// disaster-event processing with failure probabilities.
package xaminer

import (
	"fmt"
	"sort"

	"arachnet/internal/bgp"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
)

// FailCables translates cable failures into the set of IP links lost,
// using the cross-layer map's best-candidate assignment.
func FailCables(m *nautilus.CrossLayerMap, cables ...nautilus.CableID) map[netsim.LinkID]bool {
	failed := make(map[netsim.LinkID]bool)
	for _, c := range cables {
		for _, id := range m.LinksOn(c) {
			failed[id] = true
		}
	}
	return failed
}

// CountryImpact is Xaminer's per-country embedding: losses across the
// four cross-layer metrics with their in-country totals. Lost counts
// are float64 so expectation-mode event processing can report
// fractional expected losses.
type CountryImpact struct {
	Country     string
	LinksLost   float64
	LinksTotal  int
	IPsLost     float64
	IPsTotal    int
	ASesHit     float64
	ASesTotal   int
	ASLinksLost float64
	ASLinksTot  int
	Score       float64 // normalized composite in [0,1]
}

// ScoreOf computes the normalized composite: the mean of the four
// loss fractions (metrics with zero totals are skipped). Exported so
// scatter-gather merges (internal/core's fleet specs) can recompute
// scores with exactly the arithmetic the unsharded path uses.
func ScoreOf(ci CountryImpact) float64 { return scoreOf(ci) }

// scoreOf computes the normalized composite: the mean of the four
// loss fractions (metrics with zero totals are skipped).
func scoreOf(ci CountryImpact) float64 {
	var sum float64
	var n int
	add := func(lost float64, total int) {
		if total > 0 {
			f := lost / float64(total)
			if f > 1 {
				f = 1
			}
			sum += f
			n++
		}
	}
	add(ci.LinksLost, ci.LinksTotal)
	add(ci.IPsLost, ci.IPsTotal)
	add(ci.ASesHit, ci.ASesTotal)
	add(ci.ASLinksLost, ci.ASLinksTot)
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ImpactReport is the output of a failure-scenario analysis.
type ImpactReport struct {
	Scenario    string
	FailedLinks int
	// Countries is sorted by descending Score (ties by code).
	Countries []CountryImpact
	// ReachabilityLossPct is the percentage of AS pairs that lost
	// connectivity, when routing analysis was requested (else 0).
	ReachabilityLossPct float64
}

// TopCountries returns the n highest-impact country codes.
func (r *ImpactReport) TopCountries(n int) []string {
	if n > len(r.Countries) {
		n = len(r.Countries)
	}
	out := make([]string, 0, n)
	for _, c := range r.Countries[:n] {
		out = append(out, c.Country)
	}
	return out
}

// CountryScore returns the composite score of one country (0 when the
// country is absent from the report).
func (r *ImpactReport) CountryScore(code string) float64 {
	for _, c := range r.Countries {
		if c.Country == code {
			return c.Score
		}
	}
	return 0
}

// Analyzer runs impact analyses over one world and its cross-layer map.
type Analyzer struct {
	w   *netsim.World
	cat *nautilus.Catalog
	m   *nautilus.CrossLayerMap

	// Per-country totals, computed once.
	linksTotal   map[string]int
	ipsTotal     map[string]int
	asesTotal    map[string]int
	aslinksTotal map[string]int
}

// NewAnalyzer builds an analyzer. The catalog and map may be nil when
// only link-level scenarios (no cable or event processing) are needed.
func NewAnalyzer(w *netsim.World, cat *nautilus.Catalog, m *nautilus.CrossLayerMap) (*Analyzer, error) {
	if w == nil {
		return nil, fmt.Errorf("xaminer: nil world")
	}
	a := &Analyzer{
		w: w, cat: cat, m: m,
		linksTotal:   map[string]int{},
		ipsTotal:     map[string]int{},
		asesTotal:    map[string]int{},
		aslinksTotal: map[string]int{},
	}
	for _, r := range w.Routers {
		a.ipsTotal[r.Country]++
	}
	for _, l := range w.IPLinks {
		ca, cb := w.LinkEndpoints(l)
		a.linksTotal[ca]++
		if cb != ca {
			a.linksTotal[cb]++
		}
		if !l.IntraAS {
			a.aslinksTotal[ca]++
			if cb != ca {
				a.aslinksTotal[cb]++
			}
		}
	}
	for _, as := range w.ASes {
		for _, cc := range as.Presence {
			a.asesTotal[cc]++
		}
	}
	return a, nil
}

// World returns the analyzer's world.
func (a *Analyzer) World() *netsim.World { return a.w }

// Map returns the analyzer's cross-layer map (may be nil).
func (a *Analyzer) Map() *nautilus.CrossLayerMap { return a.m }

// Catalog returns the analyzer's cable catalog (may be nil).
func (a *Analyzer) Catalog() *nautilus.Catalog { return a.cat }

// AnalyzeLinkFailures computes the cross-layer country impact of a set
// of failed IP links. When withRouting is true it additionally computes
// the AS-pair reachability loss via BGP table recomputation (more
// expensive).
func (a *Analyzer) AnalyzeLinkFailures(scenario string, failed map[netsim.LinkID]bool, withRouting bool) *ImpactReport {
	acc := newAccumulator()
	for id := range failed {
		l, ok := a.w.LinkByID(id)
		if !ok {
			continue
		}
		acc.addLink(a.w, l, 1.0)
	}
	rep := acc.report(a, scenario, len(failed))
	if withRouting {
		rep.ReachabilityLossPct = a.reachabilityLoss(failed)
	}
	return rep
}

// AnalyzeCableFailure is the convenience entry for "what if cable X
// fails": cable → links → impact.
func (a *Analyzer) AnalyzeCableFailure(withRouting bool, cables ...nautilus.CableID) (*ImpactReport, error) {
	if a.m == nil {
		return nil, fmt.Errorf("xaminer: analyzer has no cross-layer map")
	}
	for _, c := range cables {
		if a.cat != nil {
			if _, ok := a.cat.ByID(c); !ok {
				return nil, fmt.Errorf("xaminer: unknown cable %q", c)
			}
		}
	}
	failed := FailCables(a.m, cables...)
	name := "cable-failure"
	if len(cables) == 1 {
		name = fmt.Sprintf("cable-failure:%s", cables[0])
	}
	return a.AnalyzeLinkFailures(name, failed, withRouting), nil
}

func (a *Analyzer) reachabilityLoss(failed map[netsim.LinkID]bool) float64 {
	base := bgp.ComputeTable(a.w, nil)
	after := bgp.ComputeTable(a.w, failed)
	baseReach, _ := base.ReachabilityMatrixSize()
	afterReach, _ := after.ReachabilityMatrixSize()
	if baseReach == 0 {
		return 0
	}
	return 100 * float64(baseReach-afterReach) / float64(baseReach)
}

// accumulator gathers weighted per-country losses.
type accumulator struct {
	links   map[string]float64
	ips     map[string]float64
	ases    map[string]map[netsim.ASN]float64
	aslinks map[string]float64
}

func newAccumulator() *accumulator {
	return &accumulator{
		links:   map[string]float64{},
		ips:     map[string]float64{},
		ases:    map[string]map[netsim.ASN]float64{},
		aslinks: map[string]float64{},
	}
}

// addLink records one failed link with a probability weight (1 for
// deterministic scenarios, failure probability for expectation mode).
func (acc *accumulator) addLink(w *netsim.World, l netsim.IPLink, weight float64) {
	ca, cb := w.LinkEndpoints(l)
	acc.links[ca] += weight
	if cb != ca {
		acc.links[cb] += weight
	}
	acc.ips[ca] += weight // the src interface address
	acc.ips[cb] += weight // the dst interface address
	if !l.IntraAS {
		acc.aslinks[ca] += weight
		if cb != ca {
			acc.aslinks[cb] += weight
		}
	}
	markAS := func(cc string, asn netsim.ASN) {
		if acc.ases[cc] == nil {
			acc.ases[cc] = map[netsim.ASN]float64{}
		}
		if acc.ases[cc][asn] < weight {
			acc.ases[cc][asn] = weight // an AS is hit with the max weight seen
		}
	}
	markAS(ca, l.ASLinkAB[0])
	markAS(cb, l.ASLinkAB[1])
}

func (acc *accumulator) report(a *Analyzer, scenario string, failedLinks int) *ImpactReport {
	countries := map[string]bool{}
	for cc := range acc.links {
		countries[cc] = true
	}
	for cc := range acc.ips {
		countries[cc] = true
	}
	rep := &ImpactReport{Scenario: scenario, FailedLinks: failedLinks}
	for cc := range countries {
		var asesHit float64
		for _, wgt := range acc.ases[cc] {
			asesHit += wgt
		}
		ci := CountryImpact{
			Country:     cc,
			LinksLost:   acc.links[cc],
			LinksTotal:  a.linksTotal[cc],
			IPsLost:     acc.ips[cc],
			IPsTotal:    a.ipsTotal[cc],
			ASesHit:     asesHit,
			ASesTotal:   a.asesTotal[cc],
			ASLinksLost: acc.aslinks[cc],
			ASLinksTot:  a.aslinksTotal[cc],
		}
		ci.Score = scoreOf(ci)
		rep.Countries = append(rep.Countries, ci)
	}
	sort.Slice(rep.Countries, func(i, j int) bool {
		if rep.Countries[i].Score != rep.Countries[j].Score {
			return rep.Countries[i].Score > rep.Countries[j].Score
		}
		return rep.Countries[i].Country < rep.Countries[j].Country
	})
	return rep
}

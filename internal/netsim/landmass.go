package netsim

import "arachnet/internal/geo"

// landmass returns a coarse landmass identifier for a country. Two
// countries on different landmasses can only be joined by a submarine
// link. Islands get their own landmass so that, e.g., GB–FR and JP–KR
// links are classified submarine.
func landmass(code string) string {
	switch code {
	// Islands and effectively-insular networks (each its own landmass).
	case "GB", "IE", "MT", "CY", "JP", "TW", "PH", "ID", "LK", "CU", "DO",
		"FJ", "GU", "NZ", "AU", "SG", "BN", "BH", "KR":
		return "island:" + code
	// Afro-Eurasian mainland is split at the Mediterranean/Red Sea for
	// cable-modeling purposes: Europe/Asia/Middle East vs Africa.
	case "ZA", "KE", "TZ", "NG", "GH", "SN", "MA", "TN", "DZ", "MZ", "ET",
		"SD", "CI", "CM", "AO", "DJ", "EG":
		return "africa"
	case "US", "CA", "MX", "PA", "CR":
		return "north-america"
	case "BR", "AR", "CL", "CO", "PE", "UY", "VE":
		return "south-america"
	default:
		return "eurasia"
	}
}

// longHaulSubmarineKm is the intra-landmass distance beyond which a
// cross-border link is provisioned over submarine systems rather than
// terrestrial backbones. This captures the empirical Nautilus
// observation that Europe–Asia long-haul capacity rides the
// SEA-ME-WE/AAE corridor rather than overland routes.
const longHaulSubmarineKm = 3000

// classifyLink decides the medium of a link between two countries.
func classifyLink(a, b geo.Country, distKm float64) LinkKind {
	if a.Code == b.Code {
		return LinkIntra
	}
	if landmass(a.Code) != landmass(b.Code) {
		return LinkSubmarine
	}
	if distKm > longHaulSubmarineKm && a.Coastal && b.Coastal {
		return LinkSubmarine
	}
	return LinkTerrestrial
}

// pathStretch is the ratio of fiber-path length to great-circle distance
// for each medium. Submarine cables follow coastlines and avoid hazards;
// terrestrial fiber follows rights-of-way.
func pathStretch(k LinkKind) float64 {
	switch k {
	case LinkSubmarine:
		return 1.40
	case LinkTerrestrial:
		return 1.25
	default:
		return 1.05
	}
}

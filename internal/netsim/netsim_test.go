package netsim

import (
	"net/netip"
	"reflect"
	"testing"

	"arachnet/internal/geo"
)

func small(t testing.TB) *World {
	t.Helper()
	w, err := Generate(SmallConfig(7))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func full(t testing.TB) *World {
	t.Helper()
	w, err := Generate(DefaultConfig(42))
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return w
}

func TestGenerateDeterministic(t *testing.T) {
	w1, err := Generate(SmallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(SmallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(w1.ASes, w2.ASes) {
		t.Error("ASes differ across runs with same seed")
	}
	if !reflect.DeepEqual(w1.ASLinks, w2.ASLinks) {
		t.Error("ASLinks differ across runs with same seed")
	}
	if !reflect.DeepEqual(w1.IPLinks, w2.IPLinks) {
		t.Error("IPLinks differ across runs with same seed")
	}
}

func TestGenerateSeedSensitivity(t *testing.T) {
	w1, _ := Generate(SmallConfig(1))
	w2, _ := Generate(SmallConfig(2))
	if reflect.DeepEqual(w1.ASLinks, w2.ASLinks) && reflect.DeepEqual(w1.IPLinks, w2.IPLinks) {
		t.Error("different seeds produced identical worlds")
	}
}

func TestGenerateInvalidConfig(t *testing.T) {
	if _, err := Generate(Config{Tier1Count: 0}); err == nil {
		t.Error("want error for zero tier-1 count")
	}
	cfg := SmallConfig(1)
	cfg.Countries = []string{"XX"}
	if _, err := Generate(cfg); err == nil {
		t.Error("want error for unknown country")
	}
}

func TestWorldShape(t *testing.T) {
	w := small(t)
	s := w.Summary()
	if s.ASes == 0 || s.Routers == 0 || s.IPLinks == 0 || s.Prefixes == 0 {
		t.Fatalf("degenerate world: %v", s)
	}
	wantASes := 3 + 1*regionCount(w) + 12 + 2 // tier1 + tier2 + stubs + cdn
	if s.ASes != wantASes {
		t.Errorf("ASes = %d, want %d", s.ASes, wantASes)
	}
	if s.Submarine == 0 {
		t.Error("world has no submarine links; cable case studies would be vacuous")
	}
	if s.Terrestrial == 0 {
		t.Error("world has no terrestrial links")
	}
}

func regionCount(w *World) int {
	set := map[geo.Region]bool{}
	for _, c := range w.Countries {
		set[c.Region] = true
	}
	return len(set)
}

func TestEveryASHasRouterPerPresence(t *testing.T) {
	w := small(t)
	for _, a := range w.ASes {
		got := len(w.RoutersOf(a.ASN))
		if got != len(a.Presence) {
			t.Errorf("AS %d: %d routers, want %d", a.ASN, got, len(a.Presence))
		}
		for _, cc := range a.Presence {
			if _, ok := w.RouterIn(a.ASN, cc); !ok {
				t.Errorf("AS %d: no router in %s", a.ASN, cc)
			}
		}
	}
}

func TestStubsHaveProviders(t *testing.T) {
	w := small(t)
	providers := map[ASN]int{}
	for _, l := range w.ASLinks {
		if l.Rel == CustomerToProvider {
			providers[l.A]++
		}
	}
	for _, a := range w.ASes {
		if a.Tier == Stub && providers[a.ASN] == 0 {
			t.Errorf("stub AS %d (%s) has no provider", a.ASN, a.Name)
		}
		if a.Tier == Tier2 && providers[a.ASN] == 0 {
			t.Errorf("tier2 AS %d (%s) has no provider", a.ASN, a.Name)
		}
	}
}

func TestTier1FullMesh(t *testing.T) {
	w := small(t)
	var t1 []ASN
	for _, a := range w.ASes {
		if a.Tier == Tier1 {
			t1 = append(t1, a.ASN)
		}
	}
	peer := map[[2]ASN]bool{}
	for _, l := range w.ASLinks {
		if l.Rel == PeerToPeer {
			peer[[2]ASN{l.A, l.B}] = true
			peer[[2]ASN{l.B, l.A}] = true
		}
	}
	for i := range t1 {
		for j := i + 1; j < len(t1); j++ {
			if !peer[[2]ASN{t1[i], t1[j]}] {
				t.Errorf("tier1 %d and %d not peered", t1[i], t1[j])
			}
		}
	}
}

func TestNoDuplicateASLinks(t *testing.T) {
	w := small(t)
	seen := map[[2]ASN]bool{}
	for _, l := range w.ASLinks {
		k := [2]ASN{l.A, l.B}
		rk := [2]ASN{l.B, l.A}
		if seen[k] || seen[rk] {
			t.Errorf("duplicate AS link %d-%d", l.A, l.B)
		}
		seen[k] = true
	}
}

func TestASGraphConnected(t *testing.T) {
	w := small(t)
	if len(w.ASes) == 0 {
		t.Fatal("no ASes")
	}
	adj := map[ASN][]ASN{}
	for _, l := range w.ASLinks {
		adj[l.A] = append(adj[l.A], l.B)
		adj[l.B] = append(adj[l.B], l.A)
	}
	start := w.ASes[0].ASN
	seen := map[ASN]bool{start: true}
	queue := []ASN{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range adj[cur] {
			if !seen[nb] {
				seen[nb] = true
				queue = append(queue, nb)
			}
		}
	}
	for _, a := range w.ASes {
		if !seen[a.ASN] {
			t.Errorf("AS %d (%s) unreachable in AS graph", a.ASN, a.Name)
		}
	}
}

func TestGeolocation(t *testing.T) {
	w := small(t)
	for _, r := range w.Routers {
		cc, ok := w.Locate(r.Addr)
		if !ok {
			t.Fatalf("router %d addr %s not locatable", r.ID, r.Addr)
		}
		if cc != r.Country {
			t.Errorf("router %d located in %s, want %s", r.ID, cc, r.Country)
		}
		origin, ok := w.OriginOf(r.Addr)
		if !ok || origin != r.ASN {
			t.Errorf("router %d origin = %d,%v want %d", r.ID, origin, ok, r.ASN)
		}
	}
	if _, ok := w.Locate(netip.MustParseAddr("192.0.2.1")); ok {
		t.Error("unallocated address should not geolocate")
	}
}

func TestLinkEndpointAddressesBelongToEndASes(t *testing.T) {
	w := small(t)
	for _, l := range w.IPLinks {
		ra, _ := w.RouterByID(l.A)
		rb, _ := w.RouterByID(l.B)
		if o, _ := w.OriginOf(l.SrcAddr); o != ra.ASN {
			t.Errorf("link %d src addr origin %d != %d", l.ID, o, ra.ASN)
		}
		if o, _ := w.OriginOf(l.DstAddr); o != rb.ASN {
			t.Errorf("link %d dst addr origin %d != %d", l.ID, o, rb.ASN)
		}
	}
}

func TestSubmarineClassification(t *testing.T) {
	w := small(t)
	for _, l := range w.SubmarineLinks() {
		a, b := w.LinkEndpoints(l)
		if a == b {
			t.Errorf("link %d: submarine link within one country %s", l.ID, a)
		}
		ca, _ := geo.CountryByCode(a)
		cb, _ := geo.CountryByCode(b)
		sameMass := landmass(a) == landmass(b)
		if sameMass && l.DistKm < longHaulSubmarineKm {
			t.Errorf("link %d %s-%s: same landmass short link marked submarine", l.ID, a, b)
		}
		_ = ca
		_ = cb
	}
	// GB is an island: every GB cross-border link must be submarine.
	for _, l := range w.IPLinks {
		a, b := w.LinkEndpoints(l)
		if a == b {
			continue
		}
		if (a == "GB" || b == "GB") && l.Kind != LinkSubmarine {
			t.Errorf("link %d %s-%s: GB cross-border link is %v, want submarine", l.ID, a, b, l.Kind)
		}
	}
}

func TestLinkDistancesPositive(t *testing.T) {
	w := small(t)
	for _, l := range w.IPLinks {
		a, b := w.LinkEndpoints(l)
		if a != b && l.DistKm <= 0 {
			t.Errorf("cross-border link %d has non-positive distance", l.ID)
		}
		if l.DistKm < 0 {
			t.Errorf("link %d negative distance", l.ID)
		}
	}
}

func TestIntraASBackboneConnectsPresence(t *testing.T) {
	w := small(t)
	for _, a := range w.ASes {
		if len(a.Presence) < 2 {
			continue
		}
		// BFS over intra-AS links only.
		adj := map[RouterID][]RouterID{}
		for _, l := range w.IPLinks {
			if l.IntraAS && l.ASLinkAB[0] == a.ASN {
				adj[l.A] = append(adj[l.A], l.B)
				adj[l.B] = append(adj[l.B], l.A)
			}
		}
		routers := w.RoutersOf(a.ASN)
		seen := map[RouterID]bool{routers[0]: true}
		queue := []RouterID{routers[0]}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		for _, r := range routers {
			if !seen[r] {
				t.Errorf("AS %d: router %d not reachable over backbone", a.ASN, r)
			}
		}
	}
}

func TestNeighborsOf(t *testing.T) {
	w := small(t)
	for _, l := range w.ASLinks {
		if l.Rel != CustomerToProvider {
			continue
		}
		foundProv, foundCust := false, false
		for _, nb := range w.NeighborsOf(l.A) {
			if nb.ASN == l.B && nb.Kind == "provider" {
				foundProv = true
			}
		}
		for _, nb := range w.NeighborsOf(l.B) {
			if nb.ASN == l.A && nb.Kind == "customer" {
				foundCust = true
			}
		}
		if !foundProv || !foundCust {
			t.Fatalf("asymmetric adjacency for c2p link %d->%d", l.A, l.B)
		}
	}
}

func TestFullWorldScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full world in -short mode")
	}
	w := full(t)
	s := w.Summary()
	if s.ASes < 150 {
		t.Errorf("full world too small: %v", s)
	}
	if s.Submarine < 50 {
		t.Errorf("full world has too few submarine links: %d", s.Submarine)
	}
	// Lookup integrity over the whole world.
	for _, l := range w.IPLinks {
		if _, ok := w.RouterByID(l.A); !ok {
			t.Fatalf("dangling router %d", l.A)
		}
		if _, ok := w.RouterByID(l.B); !ok {
			t.Fatalf("dangling router %d", l.B)
		}
	}
}

func TestLookupMisses(t *testing.T) {
	w := small(t)
	if _, ok := w.ASByNum(9999999); ok {
		t.Error("ASByNum should miss")
	}
	if _, ok := w.RouterByID(0); ok {
		t.Error("RouterByID(0) should miss")
	}
	if _, ok := w.LinkByID(0); ok {
		t.Error("LinkByID(0) should miss")
	}
	if _, ok := w.RouterIn(1, "GB"); ok {
		t.Error("RouterIn for unknown AS should miss")
	}
}

func BenchmarkGenerateSmall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(SmallConfig(7)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGenerateFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Generate(DefaultConfig(42)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocate(b *testing.B) {
	w := small(b)
	addr := w.Routers[len(w.Routers)/2].Addr
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Locate(addr)
	}
}

package netsim

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"

	"arachnet/internal/geo"
)

// Generate builds a world from a configuration. It is deterministic: the
// same Config always produces the same world.
func Generate(cfg Config) (*World, error) {
	if cfg.StubsPerCountry < 0 || cfg.Tier1Count < 1 {
		return nil, fmt.Errorf("netsim: invalid config: need at least one tier-1 AS")
	}
	countries, err := resolveCountries(cfg.Countries)
	if err != nil {
		return nil, err
	}

	g := &generator{
		cfg:       cfg,
		rng:       rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		countries: countries,
		byRegion:  groupByRegion(countries),
		w:         &World{Cfg: cfg, Countries: countries},
	}
	g.makeASes()
	g.makeASLinks()
	g.makeRouters()
	g.makeIPLinks()
	g.w.buildIndexes()
	return g.w, nil
}

func resolveCountries(codes []string) ([]geo.Country, error) {
	if len(codes) == 0 {
		return geo.Countries(), nil
	}
	out := make([]geo.Country, 0, len(codes))
	for _, code := range codes {
		c, ok := geo.CountryByCode(code)
		if !ok {
			return nil, fmt.Errorf("netsim: unknown country code %q", code)
		}
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out, nil
}

func groupByRegion(cs []geo.Country) map[geo.Region][]geo.Country {
	m := make(map[geo.Region][]geo.Country)
	for _, c := range cs {
		m[c.Region] = append(m[c.Region], c)
	}
	return m
}

type generator struct {
	cfg       Config
	rng       *rand.Rand
	countries []geo.Country
	byRegion  map[geo.Region][]geo.Country
	w         *World

	nextASN ASN
	addrHi  uint32 // next /24 index inside 10.0.0.0/8
}

// regionsInPlay returns regions that actually have countries, in
// deterministic order.
func (g *generator) regionsInPlay() []geo.Region {
	var out []geo.Region
	for _, r := range geo.AllRegions() {
		if len(g.byRegion[r]) > 0 {
			out = append(out, r)
		}
	}
	return out
}

// pick returns up to n distinct elements of xs chosen deterministically.
func pick[T any](rng *rand.Rand, xs []T, n int) []T {
	if n >= len(xs) {
		out := make([]T, len(xs))
		copy(out, xs)
		return out
	}
	idx := rng.Perm(len(xs))[:n]
	sort.Ints(idx)
	out := make([]T, 0, n)
	for _, i := range idx {
		out = append(out, xs[i])
	}
	return out
}

func (g *generator) allocASN() ASN {
	if g.nextASN == 0 {
		g.nextASN = 100
	}
	g.nextASN++
	return g.nextASN
}

func (g *generator) makeASes() {
	regions := g.regionsInPlay()

	// Tier-1: global backbones present in a spread of countries across
	// every region.
	for i := 0; i < g.cfg.Tier1Count; i++ {
		var presence []string
		for _, r := range regions {
			per := 3
			if len(g.byRegion[r]) < per {
				per = len(g.byRegion[r])
			}
			for _, c := range pick(g.rng, g.byRegion[r], per) {
				presence = append(presence, c.Code)
			}
		}
		sort.Strings(presence)
		home := presence[g.rng.IntN(len(presence))]
		g.w.ASes = append(g.w.ASes, AS{
			ASN: g.allocASN(), Name: fmt.Sprintf("backbone-%d", i+1),
			Tier: Tier1, Home: home, Presence: presence,
		})
	}

	// Tier-2: regional providers.
	for _, r := range regions {
		for i := 0; i < g.cfg.Tier2PerRegion; i++ {
			per := 6
			if len(g.byRegion[r]) < per {
				per = len(g.byRegion[r])
			}
			var presence []string
			for _, c := range pick(g.rng, g.byRegion[r], per) {
				presence = append(presence, c.Code)
			}
			sort.Strings(presence)
			home := presence[g.rng.IntN(len(presence))]
			g.w.ASes = append(g.w.ASes, AS{
				ASN: g.allocASN(), Name: fmt.Sprintf("regional-%s-%d", shortRegion(r), i+1),
				Tier: Tier2, Home: home, Presence: presence,
			})
		}
	}

	// Stubs: edge networks, one country each.
	for _, c := range g.countries {
		for i := 0; i < g.cfg.StubsPerCountry; i++ {
			g.w.ASes = append(g.w.ASes, AS{
				ASN: g.allocASN(), Name: fmt.Sprintf("edge-%s-%d", c.Code, i+1),
				Tier: Stub, Home: c.Code, Presence: []string{c.Code},
			})
		}
	}

	// Content networks: present at major hubs in several regions.
	for i := 0; i < g.cfg.ContentCount; i++ {
		var presence []string
		for _, r := range regions {
			per := 2
			if len(g.byRegion[r]) < per {
				per = len(g.byRegion[r])
			}
			for _, c := range pick(g.rng, g.byRegion[r], per) {
				presence = append(presence, c.Code)
			}
		}
		sort.Strings(presence)
		home := presence[g.rng.IntN(len(presence))]
		g.w.ASes = append(g.w.ASes, AS{
			ASN: g.allocASN(), Name: fmt.Sprintf("cdn-%d", i+1),
			Tier: Content, Home: home, Presence: presence,
		})
	}
}

func shortRegion(r geo.Region) string {
	switch r {
	case geo.Europe:
		return "eu"
	case geo.Asia:
		return "as"
	case geo.NorthAmerica:
		return "na"
	case geo.SouthAmerica:
		return "sa"
	case geo.Africa:
		return "af"
	case geo.MiddleEast:
		return "me"
	case geo.Oceania:
		return "oc"
	}
	return "xx"
}

// asesOfTier returns the generated ASes of one tier, in ASN order.
func (g *generator) asesOfTier(t Tier) []AS {
	var out []AS
	for _, a := range g.w.ASes {
		if a.Tier == t {
			out = append(out, a)
		}
	}
	return out
}

func presenceOverlap(a, b AS) int {
	set := make(map[string]bool, len(a.Presence))
	for _, c := range a.Presence {
		set[c] = true
	}
	n := 0
	for _, c := range b.Presence {
		if set[c] {
			n++
		}
	}
	return n
}

func hasPresence(a AS, code string) bool {
	for _, c := range a.Presence {
		if c == code {
			return true
		}
	}
	return false
}

func regionOfAS(a AS) geo.Region {
	r, _ := geo.RegionOf(a.Home)
	return r
}

func (g *generator) addASLink(a, b ASN, rel Relationship) {
	if a == b {
		return
	}
	g.w.ASLinks = append(g.w.ASLinks, ASLink{A: a, B: b, Rel: rel})
}

func (g *generator) makeASLinks() {
	t1 := g.asesOfTier(Tier1)
	t2 := g.asesOfTier(Tier2)
	stubs := g.asesOfTier(Stub)
	cdns := g.asesOfTier(Content)

	// Tier-1 full mesh of settlement-free peering.
	for i := range t1 {
		for j := i + 1; j < len(t1); j++ {
			g.addASLink(t1[i].ASN, t1[j].ASN, PeerToPeer)
		}
	}

	// Tier-2: customer of the 2 tier-1s with the most presence overlap;
	// peer with other tier-2s in the same region.
	for _, a := range t2 {
		providers := rankByOverlap(a, t1)
		for i := 0; i < len(providers) && i < 2; i++ {
			g.addASLink(a.ASN, providers[i].ASN, CustomerToProvider)
		}
	}
	for i := range t2 {
		for j := i + 1; j < len(t2); j++ {
			if regionOfAS(t2[i]) == regionOfAS(t2[j]) {
				g.addASLink(t2[i].ASN, t2[j].ASN, PeerToPeer)
			} else if g.rng.Float64() < 0.15 { // occasional long-haul tier-2 peering
				g.addASLink(t2[i].ASN, t2[j].ASN, PeerToPeer)
			}
		}
	}
	// A transit-free AS without customers is not a tier-1; give any such
	// AS its best-overlapping tier-2 as a customer.
	hasCustomer := map[ASN]bool{}
	for _, l := range g.w.ASLinks {
		if l.Rel == CustomerToProvider {
			hasCustomer[l.B] = true
		}
	}
	for _, p := range t1 {
		if hasCustomer[p.ASN] || len(t2) == 0 {
			continue
		}
		best := rankByOverlap(p, t2)
		g.addASLink(best[0].ASN, p.ASN, CustomerToProvider)
	}

	// Stubs: customer of the tier-2s serving their country; multihome a
	// third of them; a few buy transit straight from a tier-1.
	for _, s := range stubs {
		var local []AS
		for _, p := range t2 {
			if hasPresence(p, s.Home) {
				local = append(local, p)
			}
		}
		if len(local) == 0 {
			// No regional provider in-country: attach to the regional
			// providers of the stub's region.
			for _, p := range t2 {
				if regionOfAS(p) == regionOfAS(s) {
					local = append(local, p)
				}
			}
		}
		if len(local) == 0 {
			local = t1 // degenerate tiny worlds
		}
		first := local[g.rng.IntN(len(local))]
		g.addASLink(s.ASN, first.ASN, CustomerToProvider)
		if len(local) > 1 && g.rng.Float64() < 0.34 {
			second := local[g.rng.IntN(len(local))]
			if second.ASN != first.ASN {
				g.addASLink(s.ASN, second.ASN, CustomerToProvider)
			}
		}
		if g.rng.Float64() < 0.10 {
			up := rankByOverlap(s, t1)
			if len(up) > 0 {
				g.addASLink(s.ASN, up[0].ASN, CustomerToProvider)
			}
		}
	}

	// Content networks: one tier-1 transit plus flat peering with the
	// tier-2s they overlap with.
	for _, c := range cdns {
		up := rankByOverlap(c, t1)
		if len(up) > 0 {
			g.addASLink(c.ASN, up[0].ASN, CustomerToProvider)
		}
		for _, p := range t2 {
			if presenceOverlap(c, p) > 0 && g.rng.Float64() < 0.5 {
				g.addASLink(c.ASN, p.ASN, PeerToPeer)
			}
		}
	}

	dedupeASLinks(g.w)
}

// rankByOverlap sorts candidate ASes by descending presence overlap with
// a, breaking ties by ASN for determinism.
func rankByOverlap(a AS, candidates []AS) []AS {
	out := make([]AS, len(candidates))
	copy(out, candidates)
	sort.Slice(out, func(i, j int) bool {
		oi, oj := presenceOverlap(a, out[i]), presenceOverlap(a, out[j])
		if oi != oj {
			return oi > oj
		}
		return out[i].ASN < out[j].ASN
	})
	return out
}

func dedupeASLinks(w *World) {
	type key struct{ a, b ASN }
	seen := make(map[key]bool)
	var out []ASLink
	for _, l := range w.ASLinks {
		a, b := l.A, l.B
		if l.Rel == PeerToPeer && a > b {
			a, b = b, a
		}
		k := key{a, b}
		rk := key{b, a}
		if seen[k] || seen[rk] {
			continue
		}
		seen[k] = true
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	w.ASLinks = out
}

// allocPrefix hands out the next /24 inside 10.0.0.0/8.
func (g *generator) allocPrefix(origin ASN, country string) netip.Prefix {
	hi := g.addrHi
	g.addrHi++
	addr := netip.AddrFrom4([4]byte{10, byte(hi >> 8), byte(hi), 0})
	p := netip.PrefixFrom(addr, 24)
	g.w.Prefixes = append(g.w.Prefixes, Prefix{CIDR: p, Origin: origin, Country: country})
	return p
}

func (g *generator) makeRouters() {
	var id RouterID
	for _, a := range g.w.ASes {
		for _, code := range a.Presence {
			c, _ := geo.CountryByCode(code)
			id++
			pfx := g.allocPrefix(a.ASN, code)
			jLat := (g.rng.Float64() - 0.5) * 0.4
			jLng := (g.rng.Float64() - 0.5) * 0.4
			g.w.Routers = append(g.w.Routers, Router{
				ID:      id,
				ASN:     a.ASN,
				Country: code,
				Loc:     geo.Coord{Lat: c.Hub.Lat + jLat, Lng: c.Hub.Lng + jLng},
				Addr:    hostAddr(pfx, 1),
			})
		}
	}
}

// hostAddr returns the n-th host address inside a /24.
func hostAddr(p netip.Prefix, n uint8) netip.Addr {
	b := p.Addr().As4()
	b[3] = n
	return netip.AddrFrom4(b)
}

// interfaceAlloc hands out per-prefix interface addresses (.10 upward so
// they never collide with router loopbacks at .1).
type interfaceAlloc map[netip.Prefix]uint8

func (ia interfaceAlloc) next(p netip.Prefix) netip.Addr {
	n, ok := ia[p]
	if !ok {
		n = 10
	}
	ia[p] = n + 1
	return hostAddr(p, n)
}

func (g *generator) makeIPLinks() {
	// Index routers by AS and by (AS, country).
	byAS := make(map[ASN][]Router)
	byASCountry := make(map[string]Router)
	for _, r := range g.w.Routers {
		byAS[r.ASN] = append(byAS[r.ASN], r)
		byASCountry[fmt.Sprintf("%d/%s", r.ASN, r.Country)] = r
	}
	prefixFor := make(map[string]netip.Prefix)
	for _, p := range g.w.Prefixes {
		prefixFor[fmt.Sprintf("%d/%s", p.Origin, p.Country)] = p.CIDR
	}
	ifaces := make(interfaceAlloc)

	var nextID LinkID
	addLink := func(a, b Router, intraAS bool) {
		ca, _ := geo.CountryByCode(a.Country)
		cb, _ := geo.CountryByCode(b.Country)
		gc := geo.DistanceKm(a.Loc, b.Loc)
		kind := classifyLink(ca, cb, gc)
		nextID++
		g.w.IPLinks = append(g.w.IPLinks, IPLink{
			ID: nextID, A: a.ID, B: b.ID,
			SrcAddr:  ifaces.next(prefixFor[fmt.Sprintf("%d/%s", a.ASN, a.Country)]),
			DstAddr:  ifaces.next(prefixFor[fmt.Sprintf("%d/%s", b.ASN, b.Country)]),
			Kind:     kind,
			DistKm:   gc * pathStretch(kind),
			IntraAS:  intraAS,
			ASLinkAB: [2]ASN{a.ASN, b.ASN},
		})
	}

	// Intra-AS backbone: star from the home router plus a ring over the
	// presence footprint, giving every multi-country AS redundancy.
	for _, a := range g.w.ASes {
		routers := byAS[a.ASN]
		if len(routers) < 2 {
			continue
		}
		sort.Slice(routers, func(i, j int) bool { return routers[i].Country < routers[j].Country })
		home := routers[0]
		for _, r := range routers {
			if r.Country == a.Home {
				home = r
				break
			}
		}
		for _, r := range routers {
			if r.ID != home.ID {
				addLink(home, r, true)
			}
		}
		if len(routers) >= 3 {
			for i := range routers {
				next := routers[(i+1)%len(routers)]
				if routers[i].ID == home.ID || next.ID == home.ID {
					continue // star already covers links at the hub
				}
				addLink(routers[i], next, true)
			}
		}
	}

	// Inter-AS links: in every common country (up to two) drop a local
	// interconnect; otherwise join the two geographically closest PoPs.
	for _, l := range g.w.ASLinks {
		ra, rb := byAS[l.A], byAS[l.B]
		var common []string
		for _, x := range ra {
			if r, ok := byASCountry[fmt.Sprintf("%d/%s", l.B, x.Country)]; ok {
				_ = r
				common = append(common, x.Country)
			}
		}
		sort.Strings(common)
		if len(common) > 0 {
			n := len(common)
			if n > 2 {
				n = 2
			}
			for _, cc := range common[:n] {
				addLink(byASCountry[fmt.Sprintf("%d/%s", l.A, cc)], byASCountry[fmt.Sprintf("%d/%s", l.B, cc)], false)
			}
			continue
		}
		// No shared country: closest pair of PoPs.
		best := -1.0
		var ba, bb Router
		for _, x := range ra {
			for _, y := range rb {
				d := geo.DistanceKm(x.Loc, y.Loc)
				if best < 0 || d < best {
					best, ba, bb = d, x, y
				}
			}
		}
		if best >= 0 {
			addLink(ba, bb, false)
		}
	}
}

package netsim

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/netip"
	"sort"
	"strings"
)

// Shard is one partition of a World: a set of countries and the
// routers/links they own. Shards are the unit of placement for the
// worker fleet — each fleet worker owns exactly one shard and answers
// for the vantage points inside it.
type Shard struct {
	Index     int
	Countries []string // ISO codes, sorted
	Routers   int      // routers homed in these countries
	Links     int      // links owned by this shard (by A-endpoint country)
}

// Partition is a deterministic split of a World into N shards along
// country boundaries. Countries are the natural vantage-point grain of
// the simulated Internet (per DIMES: many small agents, each observing
// from where it sits), and partitioning along them keeps every router
// and every link owned by exactly one shard.
//
// Ownership rules:
//   - a router belongs to the shard of its Country;
//   - a link belongs to the shard of its A-endpoint's country (links
//     are directed at generation time, so this is deterministic and
//     conflict-free even for cross-border and submarine links);
//   - an address belongs to the shard of the country its covering
//     prefix was allocated to.
//
// The same (world, n) always yields the same Partition: countries are
// assigned greedily, heaviest first (by router count, ties broken by
// ISO code), to the currently lightest shard. This balances shards
// without any randomness.
type Partition struct {
	N      int
	Shards []Shard

	countryShard map[string]int
	linkShard    map[LinkID]int
	world        *World
}

// PartitionWorld splits w into n shards. n must be >= 1; a single
// shard is valid and owns everything (the degenerate fleet-of-one).
func PartitionWorld(w *World, n int) (*Partition, error) {
	if w == nil {
		return nil, fmt.Errorf("netsim: partition of nil world")
	}
	if n < 1 {
		return nil, fmt.Errorf("netsim: shard count %d < 1", n)
	}

	// Weigh each country by how many routers it homes.
	routersByCC := make(map[string]int)
	for i := range w.Routers {
		routersByCC[w.Routers[i].Country]++
	}
	ccs := make([]string, 0, len(routersByCC))
	for cc := range routersByCC {
		ccs = append(ccs, cc)
	}
	// Heaviest first; ISO code breaks ties so the order — and hence
	// the assignment — is a pure function of the world.
	sort.Slice(ccs, func(i, j int) bool {
		ri, rj := routersByCC[ccs[i]], routersByCC[ccs[j]]
		if ri != rj {
			return ri > rj
		}
		return ccs[i] < ccs[j]
	})

	p := &Partition{
		N:            n,
		Shards:       make([]Shard, n),
		countryShard: make(map[string]int, len(ccs)),
		linkShard:    make(map[LinkID]int, len(w.IPLinks)),
		world:        w,
	}
	for i := range p.Shards {
		p.Shards[i].Index = i
	}

	// Greedy balanced assignment: each country goes to the shard with
	// the fewest routers so far (lowest index wins ties).
	for _, cc := range ccs {
		best := 0
		for i := 1; i < n; i++ {
			if p.Shards[i].Routers < p.Shards[best].Routers {
				best = i
			}
		}
		p.countryShard[cc] = best
		p.Shards[best].Countries = append(p.Shards[best].Countries, cc)
		p.Shards[best].Routers += routersByCC[cc]
	}
	for i := range p.Shards {
		sort.Strings(p.Shards[i].Countries)
	}

	// Links are owned by the country of their A endpoint.
	for i := range w.IPLinks {
		l := &w.IPLinks[i]
		cc := w.CountryOfRouter(l.A)
		s, ok := p.countryShard[cc]
		if !ok {
			return nil, fmt.Errorf("netsim: link %d endpoint router %d has unassigned country %q", l.ID, l.A, cc)
		}
		p.linkShard[l.ID] = s
		p.Shards[s].Links++
	}
	return p, nil
}

// ShardOfCountry returns the shard owning the given ISO country code,
// or -1 if the country is not in the world.
func (p *Partition) ShardOfCountry(cc string) int {
	s, ok := p.countryShard[cc]
	if !ok {
		return -1
	}
	return s
}

// ShardOfLink returns the shard owning the given link, or -1 if the
// link is unknown.
func (p *Partition) ShardOfLink(id LinkID) int {
	s, ok := p.linkShard[id]
	if !ok {
		return -1
	}
	return s
}

// ShardOfAddr returns the shard owning the country the address
// geolocates to, or -1 if the address has no covering prefix.
func (p *Partition) ShardOfAddr(a netip.Addr) int {
	cc, ok := p.world.Locate(a)
	if !ok {
		return -1
	}
	return p.ShardOfCountry(cc)
}

// World returns the world this partition was built from.
func (p *Partition) World() *World { return p.world }

// ShardFingerprint digests one shard's identity: the partition shape
// (world totals, shard count) plus the shard's index, country set and
// inventory. Two processes that derived their partitions from the same
// (world config, shard count) produce equal fingerprints for the same
// index — the handshake check a remote worker and its coordinator use
// to prove their shard contents agree by construction. Any divergence
// (different seed, world size, shard count, or assignment) changes the
// digest.
func (p *Partition) ShardFingerprint(index int) (string, error) {
	if index < 0 || index >= len(p.Shards) {
		return "", fmt.Errorf("netsim: shard index %d out of range [0,%d)", index, len(p.Shards))
	}
	sh := &p.Shards[index]
	h := sha256.New()
	fmt.Fprintf(h, "v1|n=%d|i=%d|worldRouters=%d|worldLinks=%d|worldASes=%d|",
		p.N, sh.Index, len(p.world.Routers), len(p.world.IPLinks), len(p.world.ASes))
	fmt.Fprintf(h, "cc=%s|routers=%d|links=%d",
		strings.Join(sh.Countries, ","), sh.Routers, sh.Links)
	return hex.EncodeToString(h.Sum(nil)), nil
}

// Package netsim generates a deterministic synthetic Internet: autonomous
// systems with business relationships, routers placed in countries,
// address space, and the physical IP-level links between routers.
//
// Every other substrate consumes this world: the cartography package maps
// its submarine IP links onto cables, the BGP package propagates routes
// over its AS graph, the traceroute package times paths across its
// routers, and the resilience package aggregates failures over all of it.
//
// Generation is fully deterministic given a Config: the same seed always
// yields byte-for-byte the same world, which is what makes the paper's
// case studies reproducible as unit tests.
package netsim

import (
	"fmt"
	"net/netip"

	"arachnet/internal/geo"
)

// ASN is an autonomous system number.
type ASN uint32

// Tier classifies an AS by its role in the Internet hierarchy.
type Tier int

// AS tiers, from global transit providers down to edge networks.
const (
	Tier1   Tier = iota + 1 // global transit-free backbone
	Tier2                   // regional provider
	Stub                    // edge network (local ISP, enterprise)
	Content                 // content/CDN network with flat peering
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	case Stub:
		return "stub"
	case Content:
		return "content"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// AS is one autonomous system.
type AS struct {
	ASN      ASN
	Name     string
	Tier     Tier
	Home     string   // ISO country code of headquarters
	Presence []string // countries where the AS operates routers (includes Home)
}

// Relationship is the business relationship on an AS-level link.
type Relationship int

// AS relationship kinds, following the Gao–Rexford model.
const (
	CustomerToProvider Relationship = iota + 1 // A pays B
	PeerToPeer                                 // settlement-free
)

// String implements fmt.Stringer.
func (r Relationship) String() string {
	switch r {
	case CustomerToProvider:
		return "c2p"
	case PeerToPeer:
		return "p2p"
	}
	return fmt.Sprintf("rel(%d)", int(r))
}

// ASLink is an edge in the AS-level graph. For CustomerToProvider links,
// A is the customer and B the provider.
type ASLink struct {
	A, B ASN
	Rel  Relationship
}

// RouterID identifies a router. IDs are dense and start at 1.
type RouterID uint32

// Router is a point of presence of one AS in one country.
type Router struct {
	ID      RouterID
	ASN     ASN
	Country string // ISO country code
	Loc     geo.Coord
	Addr    netip.Addr // loopback/interface address used in traceroutes
}

// LinkKind classifies the physical medium of an IP link.
type LinkKind int

// IP link media.
const (
	LinkIntra       LinkKind = iota + 1 // same metro / same country
	LinkTerrestrial                     // cross-border over land
	LinkSubmarine                       // cross-border over sea (rides a cable)
)

// String implements fmt.Stringer.
func (k LinkKind) String() string {
	switch k {
	case LinkIntra:
		return "intra"
	case LinkTerrestrial:
		return "terrestrial"
	case LinkSubmarine:
		return "submarine"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// LinkID identifies an IP link. IDs are dense and start at 1.
type LinkID uint32

// IPLink is a physical adjacency between two routers. SrcAddr/DstAddr are
// the interface addresses on each side; Kind records the medium and
// DistKm the fiber-path length (great circle times a stretch factor).
type IPLink struct {
	ID       LinkID
	A, B     RouterID
	SrcAddr  netip.Addr
	DstAddr  netip.Addr
	Kind     LinkKind
	DistKm   float64
	IntraAS  bool // backbone link inside one AS
	ASLinkAB [2]ASN
}

// Prefix is an address block originated by one AS in one country.
type Prefix struct {
	CIDR    netip.Prefix
	Origin  ASN
	Country string
}

// Config controls world generation. The zero value is not valid; use
// DefaultConfig or SmallConfig as a starting point.
type Config struct {
	Seed            uint64
	Countries       []string // ISO codes; empty means the full geo catalog
	StubsPerCountry int
	Tier1Count      int
	Tier2PerRegion  int
	ContentCount    int
}

// DefaultConfig is the full-size world used by the case studies.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		StubsPerCountry: 2,
		Tier1Count:      8,
		Tier2PerRegion:  3,
		ContentCount:    6,
	}
}

// SmallConfig is a compact world for fast unit tests: a handful of
// countries on three continents with full vertical structure.
func SmallConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Countries:       []string{"GB", "FR", "DE", "EG", "IN", "SG", "JP", "US", "BR", "ZA", "AE", "IT"},
		StubsPerCountry: 1,
		Tier1Count:      3,
		Tier2PerRegion:  1,
		ContentCount:    2,
	}
}

// World is the generated Internet. All slices are sorted by ID/ASN and
// must be treated as immutable; failure scenarios are expressed as
// external sets of failed link IDs, never by mutating the world.
type World struct {
	Cfg       Config
	ASes      []AS
	ASLinks   []ASLink
	Routers   []Router
	IPLinks   []IPLink
	Prefixes  []Prefix
	Countries []geo.Country // the subset of the catalog in play

	asByNum      map[ASN]*AS
	routerByID   map[RouterID]*Router
	linkByID     map[LinkID]*IPLink
	routersByAS  map[ASN][]RouterID
	linksByRtr   map[RouterID][]LinkID
	prefixByAddr []prefixEntry // sorted for binary search
	asAdj        map[ASN][]neighbor
}

type prefixEntry struct {
	cidr    netip.Prefix
	origin  ASN
	country string
}

type neighbor struct {
	asn ASN
	rel Relationship // relationship from the perspective of the map key
}

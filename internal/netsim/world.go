package netsim

import (
	"fmt"
	"net/netip"
	"sort"
)

// buildIndexes populates the lookup maps after generation.
func (w *World) buildIndexes() {
	w.asByNum = make(map[ASN]*AS, len(w.ASes))
	for i := range w.ASes {
		w.asByNum[w.ASes[i].ASN] = &w.ASes[i]
	}
	w.routerByID = make(map[RouterID]*Router, len(w.Routers))
	w.routersByAS = make(map[ASN][]RouterID)
	for i := range w.Routers {
		r := &w.Routers[i]
		w.routerByID[r.ID] = r
		w.routersByAS[r.ASN] = append(w.routersByAS[r.ASN], r.ID)
	}
	w.linkByID = make(map[LinkID]*IPLink, len(w.IPLinks))
	w.linksByRtr = make(map[RouterID][]LinkID)
	for i := range w.IPLinks {
		l := &w.IPLinks[i]
		w.linkByID[l.ID] = l
		w.linksByRtr[l.A] = append(w.linksByRtr[l.A], l.ID)
		w.linksByRtr[l.B] = append(w.linksByRtr[l.B], l.ID)
	}
	w.prefixByAddr = make([]prefixEntry, 0, len(w.Prefixes))
	for _, p := range w.Prefixes {
		w.prefixByAddr = append(w.prefixByAddr, prefixEntry{cidr: p.CIDR, origin: p.Origin, country: p.Country})
	}
	sort.Slice(w.prefixByAddr, func(i, j int) bool {
		return w.prefixByAddr[i].cidr.Addr().Less(w.prefixByAddr[j].cidr.Addr())
	})
	w.asAdj = make(map[ASN][]neighbor)
	for _, l := range w.ASLinks {
		switch l.Rel {
		case CustomerToProvider:
			w.asAdj[l.A] = append(w.asAdj[l.A], neighbor{asn: l.B, rel: CustomerToProvider})
			w.asAdj[l.B] = append(w.asAdj[l.B], neighbor{asn: l.A, rel: providerToCustomer})
		case PeerToPeer:
			w.asAdj[l.A] = append(w.asAdj[l.A], neighbor{asn: l.B, rel: PeerToPeer})
			w.asAdj[l.B] = append(w.asAdj[l.B], neighbor{asn: l.A, rel: PeerToPeer})
		}
	}
	for _, ns := range w.asAdj {
		sort.Slice(ns, func(i, j int) bool { return ns[i].asn < ns[j].asn })
	}
}

// providerToCustomer is the internal mirror of CustomerToProvider seen
// from the provider side. It is not a public relationship kind.
const providerToCustomer Relationship = 100

// ASByNum returns the AS with the given number.
func (w *World) ASByNum(n ASN) (AS, bool) {
	a, ok := w.asByNum[n]
	if !ok {
		return AS{}, false
	}
	return *a, true
}

// RouterByID returns the router with the given ID.
func (w *World) RouterByID(id RouterID) (Router, bool) {
	r, ok := w.routerByID[id]
	if !ok {
		return Router{}, false
	}
	return *r, true
}

// LinkByID returns the IP link with the given ID.
func (w *World) LinkByID(id LinkID) (IPLink, bool) {
	l, ok := w.linkByID[id]
	if !ok {
		return IPLink{}, false
	}
	return *l, true
}

// RoutersOf returns the router IDs of an AS in ascending order.
func (w *World) RoutersOf(n ASN) []RouterID {
	ids := w.routersByAS[n]
	out := make([]RouterID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RouterIn returns the router of AS n located in the given country.
func (w *World) RouterIn(n ASN, country string) (Router, bool) {
	for _, id := range w.routersByAS[n] {
		r := w.routerByID[id]
		if r.Country == country {
			return *r, true
		}
	}
	return Router{}, false
}

// LinksAt returns the IDs of links incident to a router.
func (w *World) LinksAt(id RouterID) []LinkID {
	ids := w.linksByRtr[id]
	out := make([]LinkID, len(ids))
	copy(out, ids)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Locate geolocates an address to a country using the allocation table.
// It is the synthetic equivalent of an IP-geolocation database.
func (w *World) Locate(a netip.Addr) (string, bool) {
	e, ok := w.prefixEntryFor(a)
	if !ok {
		return "", false
	}
	return e.country, true
}

// OriginOf returns the AS that originates the prefix covering an address.
func (w *World) OriginOf(a netip.Addr) (ASN, bool) {
	e, ok := w.prefixEntryFor(a)
	if !ok {
		return 0, false
	}
	return e.origin, true
}

// PrefixFor returns the covering prefix for an address.
func (w *World) PrefixFor(a netip.Addr) (netip.Prefix, bool) {
	e, ok := w.prefixEntryFor(a)
	if !ok {
		return netip.Prefix{}, false
	}
	return e.cidr, true
}

func (w *World) prefixEntryFor(a netip.Addr) (prefixEntry, bool) {
	// Binary search for the last prefix whose base address is <= a.
	i := sort.Search(len(w.prefixByAddr), func(i int) bool {
		return a.Less(w.prefixByAddr[i].cidr.Addr())
	})
	if i == 0 {
		return prefixEntry{}, false
	}
	e := w.prefixByAddr[i-1]
	if !e.cidr.Contains(a) {
		return prefixEntry{}, false
	}
	return e, true
}

// Neighbor describes one AS-level adjacency from the viewpoint of a
// given AS.
type Neighbor struct {
	ASN ASN
	// Kind is "provider", "customer", or "peer" relative to the AS the
	// adjacency was asked about.
	Kind string
}

// NeighborsOf lists the AS-level neighbors of n with relationship roles.
func (w *World) NeighborsOf(n ASN) []Neighbor {
	var out []Neighbor
	for _, nb := range w.asAdj[n] {
		switch nb.rel {
		case CustomerToProvider:
			out = append(out, Neighbor{ASN: nb.asn, Kind: "provider"})
		case providerToCustomer:
			out = append(out, Neighbor{ASN: nb.asn, Kind: "customer"})
		case PeerToPeer:
			out = append(out, Neighbor{ASN: nb.asn, Kind: "peer"})
		}
	}
	return out
}

// SubmarineLinks returns all IP links classified as submarine, in ID
// order. These are the links the cartography subsystem maps to cables.
func (w *World) SubmarineLinks() []IPLink {
	var out []IPLink
	for _, l := range w.IPLinks {
		if l.Kind == LinkSubmarine {
			out = append(out, l)
		}
	}
	return out
}

// LinkEndpoints returns the countries at each end of a link.
func (w *World) LinkEndpoints(l IPLink) (a, b string) {
	ra, _ := w.RouterByID(l.A)
	rb, _ := w.RouterByID(l.B)
	return ra.Country, rb.Country
}

// CountryOfRouter returns the country of a router ID, or "" if unknown.
func (w *World) CountryOfRouter(id RouterID) string {
	r, ok := w.RouterByID(id)
	if !ok {
		return ""
	}
	return r.Country
}

// Stats summarizes the world size; used in logs and docs.
type Stats struct {
	ASes, ASLinks, Routers, IPLinks, Prefixes int
	Submarine, Terrestrial, Intra             int
}

// Summary computes world statistics.
func (w *World) Summary() Stats {
	s := Stats{
		ASes: len(w.ASes), ASLinks: len(w.ASLinks), Routers: len(w.Routers),
		IPLinks: len(w.IPLinks), Prefixes: len(w.Prefixes),
	}
	for _, l := range w.IPLinks {
		switch l.Kind {
		case LinkSubmarine:
			s.Submarine++
		case LinkTerrestrial:
			s.Terrestrial++
		case LinkIntra:
			s.Intra++
		}
	}
	return s
}

// String implements fmt.Stringer.
func (s Stats) String() string {
	return fmt.Sprintf("ASes=%d ASLinks=%d Routers=%d IPLinks=%d (sub=%d terr=%d intra=%d) Prefixes=%d",
		s.ASes, s.ASLinks, s.Routers, s.IPLinks, s.Submarine, s.Terrestrial, s.Intra, s.Prefixes)
}

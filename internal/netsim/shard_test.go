package netsim

import (
	"reflect"
	"testing"
)

func TestPartitionDeterministic(t *testing.T) {
	w, err := Generate(SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	a, err := PartitionWorld(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PartitionWorld(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Shards, b.Shards) {
		t.Fatalf("partition not deterministic:\n%+v\nvs\n%+v", a.Shards, b.Shards)
	}
	// And across separately generated identical worlds.
	w2, err := Generate(SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	c, err := PartitionWorld(w2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Shards, c.Shards) {
		t.Fatalf("partition differs across identically-seeded worlds")
	}
}

func TestPartitionDisjointComplete(t *testing.T) {
	w, err := Generate(SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{1, 2, 3, 4, 7} {
		p, err := PartitionWorld(w, n)
		if err != nil {
			t.Fatal(err)
		}
		// Every country in exactly one shard.
		seen := map[string]int{}
		for _, s := range p.Shards {
			for _, cc := range s.Countries {
				if prev, dup := seen[cc]; dup {
					t.Fatalf("n=%d: country %s in shards %d and %d", n, cc, prev, s.Index)
				}
				seen[cc] = s.Index
			}
		}
		if len(seen) != len(w.Countries) {
			t.Fatalf("n=%d: %d countries assigned, world has %d", n, len(seen), len(w.Countries))
		}
		// Every router and link owned by exactly one shard, and the
		// per-shard counters add back up to the world totals.
		routers, links := 0, 0
		for _, s := range p.Shards {
			routers += s.Routers
			links += s.Links
		}
		if routers != len(w.Routers) {
			t.Fatalf("n=%d: shard router counts sum to %d, world has %d", n, routers, len(w.Routers))
		}
		if links != len(w.IPLinks) {
			t.Fatalf("n=%d: shard link counts sum to %d, world has %d", n, links, len(w.IPLinks))
		}
		for i := range w.Routers {
			if got := p.ShardOfCountry(w.Routers[i].Country); got < 0 || got >= n {
				t.Fatalf("n=%d: router %d country %s → shard %d", n, w.Routers[i].ID, w.Routers[i].Country, got)
			}
		}
		for i := range w.IPLinks {
			l := &w.IPLinks[i]
			got := p.ShardOfLink(l.ID)
			if got < 0 || got >= n {
				t.Fatalf("n=%d: link %d → shard %d", n, l.ID, got)
			}
			want := p.ShardOfCountry(w.CountryOfRouter(l.A))
			if got != want {
				t.Fatalf("n=%d: link %d owned by shard %d, A-endpoint country owned by %d", n, l.ID, got, want)
			}
		}
	}
}

func TestPartitionBalance(t *testing.T) {
	w, err := Generate(DefaultConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionWorld(w, 4)
	if err != nil {
		t.Fatal(err)
	}
	min, max := p.Shards[0].Routers, p.Shards[0].Routers
	for _, s := range p.Shards[1:] {
		if s.Routers < min {
			min = s.Routers
		}
		if s.Routers > max {
			max = s.Routers
		}
	}
	if min == 0 {
		t.Fatalf("empty shard in %+v", p.Shards)
	}
	// Greedy heaviest-first keeps the spread within one country's
	// weight; 2x is a generous ceiling that catches gross imbalance.
	if max > 2*min {
		t.Fatalf("unbalanced shards: min=%d max=%d (%+v)", min, max, p.Shards)
	}
}

func TestPartitionAddrLookup(t *testing.T) {
	w, err := Generate(SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	p, err := PartitionWorld(w, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.Routers {
		r := &w.Routers[i]
		got := p.ShardOfAddr(r.Addr)
		want := p.ShardOfCountry(r.Country)
		if got != want {
			t.Fatalf("router %d addr %s → shard %d, country %s → shard %d", r.ID, r.Addr, got, r.Country, want)
		}
	}
}

func TestPartitionErrors(t *testing.T) {
	w, err := Generate(SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PartitionWorld(w, 0); err == nil {
		t.Fatal("expected error for n=0")
	}
	if _, err := PartitionWorld(nil, 2); err == nil {
		t.Fatal("expected error for nil world")
	}
}

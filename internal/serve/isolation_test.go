package serve

import (
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"

	"arachnet/internal/core"
	"arachnet/internal/registry"
)

// cs1Base returns the restricted CS1 catalog used as the tenants'
// shared template: small enough that two similar queries trigger a
// curator promotion.
func cs1Base(t testing.TB) *registry.Registry {
	t.Helper()
	sub, err := core.BuiltinRegistry().Subset(core.CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	return sub
}

func hasComposite(names []string) bool {
	for _, n := range names {
		if strings.HasPrefix(n, "composite.") {
			return true
		}
	}
	return false
}

func stepCapabilities(rep askSummary) []string {
	out := make([]string, len(rep.Steps))
	for i, st := range rep.Steps {
		out[i] = st.Capability
	}
	return out
}

func askAs(t testing.TB, ts string, tenant, query string) askSummary {
	t.Helper()
	resp := postJSON(t, ts+"/v1/ask", map[string]any{"query": query}, tenantHeader, tenant)
	if resp.StatusCode != http.StatusOK {
		defer resp.Body.Close()
		t.Fatalf("ask as %s: status %d", tenant, resp.StatusCode)
	}
	var rep askSummary
	decodeBody(t, resp, &rep)
	return rep
}

func TestTenantPromotionIsolation(t *testing.T) {
	srv, ts := startServer(t, Config{
		Env:          testEnv(t),
		BaseRegistry: cs1Base(t),
		Tenants:      []TenantConfig{{Name: "alice"}, {Name: "bob"}},
	})

	// Two similar queries give alice's curator pattern support 2: a
	// composite is promoted into alice's registry view only.
	askAs(t, ts.URL, "alice", queryCS1)
	rep := askAs(t, ts.URL, "alice", querySM4)
	if len(srv.Tenant("alice").System().Promotions()) == 0 {
		t.Fatalf("no promotion in alice after two similar runs (steps %v)", stepCapabilities(rep))
	}
	if n := len(srv.Tenant("bob").System().Promotions()); n != 0 {
		t.Fatalf("bob inherited %d promotions", n)
	}

	// Alice's third run reuses her composite; bob's identical query
	// must plan against the unevolved base view.
	aliceRep := askAs(t, ts.URL, "alice", queryAAE)
	if !hasComposite(stepCapabilities(aliceRep)) {
		t.Errorf("alice's plan ignores her composite: %v", stepCapabilities(aliceRep))
	}
	bobRep := askAs(t, ts.URL, "bob", queryAAE)
	if hasComposite(stepCapabilities(bobRep)) {
		t.Errorf("alice's promotion leaked into bob's plan: %v", stepCapabilities(bobRep))
	}

	// And again through bob's plan cache: the cached plan is bob's own.
	bobRep2 := askAs(t, ts.URL, "bob", queryAAE)
	if hasComposite(stepCapabilities(bobRep2)) {
		t.Errorf("composite appeared in bob's cached plan: %v", stepCapabilities(bobRep2))
	}
	for _, name := range bobRep2.Promotions {
		t.Errorf("bob's report names promotion %q", name)
	}

	// The registries really are distinct generations of distinct views.
	aliceReg := srv.Tenant("alice").System().Registry()
	bobReg := srv.Tenant("bob").System().Registry()
	if aliceReg.Size() <= bobReg.Size() {
		t.Errorf("alice registry %d caps, bob %d — promotion missing", aliceReg.Size(), bobReg.Size())
	}
	for _, c := range bobReg.All() {
		if strings.HasPrefix(c.Name, "composite.") {
			t.Errorf("bob's registry contains %s", c.Name)
		}
	}
}

// TestTenantIsolationUnderConcurrency is the -race acceptance check:
// one tenant promotes composites while another streams jobs, and the
// streaming tenant must never observe a cross-tenant plan, step or
// promotion.
func TestTenantIsolationUnderConcurrency(t *testing.T) {
	srv, ts := startServer(t, Config{
		Env:          testEnv(t),
		BaseRegistry: cs1Base(t),
		Tenants:      []TenantConfig{{Name: "alice"}, {Name: "bob"}},
	})

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // alice: promote, then keep serving off the evolved view
		defer wg.Done()
		for _, q := range []string{queryCS1, querySM4, queryAAE, queryCS1} {
			askAs(t, ts.URL, "alice", q)
		}
	}()
	go func() { // bob: stream jobs concurrently and inspect every frame
		defer wg.Done()
		for i := 0; i < 3; i++ {
			resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryAAE}, tenantHeader, "bob")
			if resp.StatusCode != http.StatusAccepted {
				resp.Body.Close()
				t.Errorf("bob submit %d: status %d", i, resp.StatusCode)
				return
			}
			var sub core.JobSummary
			decodeBody(t, resp, &sub)
			stream, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/events", ts.URL, sub.ID))
			if err != nil {
				t.Error(err)
				return
			}
			frames := readSSE(t, stream, func(f sseFrame) bool { return f.Event == "done" })
			stream.Body.Close()
			for _, f := range frames {
				if f.Event == "curation_promoted" {
					t.Errorf("bob's stream carried a promotion event: %s", f.Raw)
				}
				if strings.Contains(f.Raw, `"composite.`) {
					t.Errorf("bob's stream mentions a composite: %s", f.Raw)
				}
			}
		}
	}()
	wg.Wait()

	if n := len(srv.Tenant("bob").System().Promotions()); n != 0 {
		t.Errorf("bob ended up with %d promotions", n)
	}
	if len(srv.Tenant("alice").System().Promotions()) == 0 {
		t.Errorf("alice never promoted — the race test exercised nothing")
	}
}

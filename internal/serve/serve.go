// Package serve is ArachNet's network serving tier: an HTTP/JSON +
// SSE front end that turns the in-process serving surfaces (Ask,
// Submit, Job event logs, cache stats) into a multi-tenant service —
// the SONoMA direction of a measurement architecture shared by many
// callers.
//
// One Server owns one simulated world (a *core.Environment) and any
// number of tenants. Isolation is structural rather than policed:
//
//   - Each tenant gets its own *core.System over its own registry view
//     (Registry.Clone or Subset of a shared base catalog), so one
//     tenant's curator promotions never appear in another's plans.
//   - Each tenant serves its own Environment clone over the shared
//     immutable world, so scenario injections (POST /v1/admin/scenario)
//     and the standing-query wake-ups they cause are per-tenant: one
//     tenant's epoch bump never fires another tenant's subscriptions.
//   - Each System carries its own plan and step caches, bounded by
//     per-tenant quotas (SetCacheLimits), so cached plans and step
//     results cannot leak across tenants and one tenant cannot evict
//     another's working set.
//   - All tenants share one weighted-fair core.Scheduler: per-tenant
//     weights, queue bounds and concurrency caps give admission
//     control and fair dequeue instead of FIFO plus global shedding.
//     Shed requests surface as HTTP 429 with Retry-After.
//
// Endpoints (see handlers.go): POST /v1/ask (synchronous), POST
// /v1/jobs + GET /v1/jobs/{id}/events (SSE streaming, replayable),
// DELETE /v1/jobs/{id} (cancel), GET /v1/jobs, GET /v1/jobs/{id},
// GET /v1/stats, GET /healthz; and for continuous monitoring (see
// subscriptions.go): POST/GET /v1/subscriptions, GET
// /v1/subscriptions/{id}, GET /v1/subscriptions/{id}/events (SSE
// delta stream; disconnect unsubscribes unless ?detach=1), DELETE
// /v1/subscriptions/{id}, POST /v1/admin/scenario.
package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"arachnet/internal/core"
	"arachnet/internal/fleet"
	"arachnet/internal/fleetwire"
	"arachnet/internal/registry"
)

// TenantConfig declares one tenant: identity, optional bearer token,
// scheduling share, and cache quotas. The zero values of the bounds
// mean "library defaults".
type TenantConfig struct {
	Name string `json:"name"`
	// Token, when set, must be presented as "Authorization: Bearer
	// <token>" on every request for this tenant.
	Token string `json:"token,omitempty"`
	// Weight is the tenant's share of worker bandwidth (default 1).
	Weight int `json:"weight,omitempty"`
	// MaxRunning caps the tenant's concurrent pipeline runs (0 =
	// bounded only by the worker pool).
	MaxRunning int `json:"max_running,omitempty"`
	// MaxQueued bounds the tenant's waiting jobs; beyond it requests
	// are shed with 429 (0 = bounded only by the global queue depth).
	MaxQueued int `json:"max_queued,omitempty"`
	// Cache quotas; zero means the library default for that bound.
	PlanCacheEntries int   `json:"plan_cache_entries,omitempty"`
	StepCacheEntries int   `json:"step_cache_entries,omitempty"`
	StepCacheBytes   int64 `json:"step_cache_bytes,omitempty"`
	// Capabilities restricts the tenant to a named Subset of the base
	// catalog; empty means a full Clone.
	Capabilities []string `json:"capabilities,omitempty"`
}

// Config assembles a Server.
type Config struct {
	// Env is the simulated world tenants measure. Required. Each
	// tenant serves its own clone of it: the generated world is
	// shared, but scenario injections and the mutation epoch are
	// per-tenant (see Environment.Clone).
	Env *core.Environment
	// BaseRegistry is the catalog template tenant views are built from
	// (Clone/Subset per tenant); nil means the builtin catalog.
	BaseRegistry *registry.Registry
	// Workers and QueueDepth size the shared scheduler (defaults:
	// GOMAXPROCS workers, depth 128).
	Workers    int
	QueueDepth int
	// DefaultTimeout bounds each served call's pipeline time when the
	// request doesn't choose its own (0 = unbounded). MaxTimeout caps
	// what a request may ask for (0 = uncapped).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// Fleet, when positive, attaches a sharded worker fleet of that
	// many workers to every tenant System: pure fan-out steps are
	// scattered over world shards and gathered deterministically
	// instead of running inline (see internal/fleet). Per-tenant
	// fleets keep worker-cache isolation aligned with the rest of the
	// tenancy model. /v1/stats exposes each tenant's per-worker shard
	// and cache counters.
	Fleet int
	// FleetRemote routes each tenant's fleet over the wire instead:
	// one arachnet-worker address per shard (see internal/fleetwire).
	// Takes precedence over Fleet. Each tenant keeps its own Pool —
	// registration, health checks and failover counters are per
	// tenant, matching the isolation the rest of the tier provides.
	FleetRemote []string
	// Tenants declares the tenant set; empty means one open tenant
	// named "default".
	Tenants []TenantConfig
	// CallOptions are prepended to every served call — an operator
	// seam for server-wide serving policy (and the test seam for
	// gating runs).
	CallOptions []core.AskOption
}

// Tenant is one isolated serving context: its own System (registry
// view + caches + job table) attached to the shared scheduler under
// its own class.
type Tenant struct {
	cfg TenantConfig
	sys *core.System
}

// Name returns the tenant's identity.
func (t *Tenant) Name() string { return t.cfg.Name }

// System exposes the tenant's isolated System.
func (t *Tenant) System() *core.System { return t.sys }

// Server is the HTTP serving tier. Create with NewServer, expose with
// Handler (or use it as an http.Handler directly), stop with Shutdown.
type Server struct {
	cfg     Config
	sched   *core.Scheduler
	tenants map[string]*Tenant
	byToken map[string]*Tenant
	single  *Tenant // set when exactly one tenant exists
	anyAuth bool    // any tenant requires a token
	mux     *http.ServeMux
	closed  atomic.Bool

	// jobCtx parents detached jobs (POST /v1/jobs), which must outlive
	// their submitting request; cancelJobs aborts them if a drain
	// deadline expires.
	jobCtx     context.Context
	cancelJobs context.CancelFunc
}

// NewServer builds the serving tier: one System per tenant over a
// cloned registry view with its own cache quotas, all attached to one
// weighted-fair scheduler.
func NewServer(cfg Config) (*Server, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("serve: config needs an environment")
	}
	base := cfg.BaseRegistry
	if base == nil {
		base = core.BuiltinRegistry()
	}
	if len(cfg.Tenants) == 0 {
		cfg.Tenants = []TenantConfig{{Name: "default"}}
	}
	s := &Server{
		cfg:     cfg,
		sched:   core.NewScheduler(cfg.Workers, cfg.QueueDepth),
		tenants: make(map[string]*Tenant, len(cfg.Tenants)),
		byToken: make(map[string]*Tenant),
		mux:     http.NewServeMux(),
	}
	s.jobCtx, s.cancelJobs = context.WithCancel(context.Background())
	for _, tc := range cfg.Tenants {
		if tc.Name == "" {
			return nil, fmt.Errorf("serve: tenant with empty name")
		}
		if _, dup := s.tenants[tc.Name]; dup {
			return nil, fmt.Errorf("serve: duplicate tenant %q", tc.Name)
		}
		var (
			view *registry.Registry
			err  error
		)
		if len(tc.Capabilities) > 0 {
			view, err = base.Subset(tc.Capabilities...)
			if err != nil {
				return nil, fmt.Errorf("serve: tenant %q: %w", tc.Name, err)
			}
		} else {
			view = base.Clone()
		}
		// The clone shares the immutable world but owns its mutation
		// timeline, so admin scenario injections only wake this
		// tenant's standing queries.
		sys, err := core.NewSystem(cfg.Env.Clone(), view)
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", tc.Name, err)
		}
		sys.SetCacheLimits(
			defaultInt(tc.PlanCacheEntries, core.DefaultPlanCacheEntries),
			defaultInt(tc.StepCacheEntries, core.DefaultStepCacheEntries),
			defaultInt64(tc.StepCacheBytes, core.DefaultStepCacheBytes),
		)
		if err := sys.SetScheduler(s.sched, tc.Name); err != nil {
			return nil, fmt.Errorf("serve: tenant %q: %w", tc.Name, err)
		}
		switch {
		case len(cfg.FleetRemote) > 0:
			f, err := fleetwire.NewFleet(cfg.Env.World, cfg.FleetRemote, fleetwire.Config{})
			if err != nil {
				return nil, fmt.Errorf("serve: tenant %q remote fleet: %w", tc.Name, err)
			}
			sys.SetFleet(f)
		case cfg.Fleet > 0:
			f, err := fleet.New(cfg.Env.World, fleet.Config{Workers: cfg.Fleet})
			if err != nil {
				return nil, fmt.Errorf("serve: tenant %q fleet: %w", tc.Name, err)
			}
			sys.SetFleet(f)
		}
		s.sched.SetClass(tc.Name, core.ClassConfig{
			Weight:     tc.Weight,
			MaxQueued:  tc.MaxQueued,
			MaxRunning: tc.MaxRunning,
		})
		t := &Tenant{cfg: tc, sys: sys}
		s.tenants[tc.Name] = t
		if tc.Token != "" {
			if _, dup := s.byToken[tc.Token]; dup {
				return nil, fmt.Errorf("serve: tenant %q reuses another tenant's token", tc.Name)
			}
			s.byToken[tc.Token] = t
			s.anyAuth = true
		}
	}
	if len(cfg.Tenants) == 1 {
		s.single = s.tenants[cfg.Tenants[0].Name]
	}
	s.routes()
	return s, nil
}

func defaultInt(v, def int) int {
	if v == 0 {
		return def
	}
	return v
}

func defaultInt64(v, def int64) int64 {
	if v == 0 {
		return def
	}
	return v
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP makes Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Scheduler exposes the shared scheduler (stats, tests).
func (s *Server) Scheduler() *core.Scheduler { return s.sched }

// Tenant returns a tenant by name, or nil.
func (s *Server) Tenant(name string) *Tenant { return s.tenants[name] }

// Shutdown drains the serving tier: new submissions are refused (every
// tenant System is closed), accepted jobs — queued or running — finish,
// and the worker pool stops. If ctx expires first, the remaining
// detached jobs are cancelled and ctx's error returned; synchronous
// asks are tied to their request contexts and die with their
// connections. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	for _, t := range s.tenants {
		t.sys.Close()
	}
	err := s.sched.Drain(ctx)
	defer func() {
		// Fleets stop after the drain so in-flight dispatched steps
		// finish on their workers rather than erroring mid-run.
		for _, t := range s.tenants {
			if f := t.sys.Fleet(); f != nil {
				f.Close()
			}
		}
	}()
	if err != nil {
		// Past the deadline: abort detached jobs so workers come home.
		s.cancelJobs()
		drainCtx, cancel := context.WithTimeout(context.Background(), subsecond(ctx))
		_ = s.sched.Drain(drainCtx)
		cancel()
	}
	s.cancelJobs()
	s.sched.Close()
	return err
}

// subsecond returns a short grace for the post-cancel drain, never
// exceeding one second.
func subsecond(ctx context.Context) time.Duration {
	const grace = time.Second
	if dl, ok := ctx.Deadline(); ok {
		if rem := time.Until(dl); rem > 0 && rem < grace {
			return rem
		}
	}
	return grace
}

// Server-sent events: GET /v1/jobs/{id}/events streams a job's typed
// event log as SSE frames. The stream replays from the first event
// (late subscribers see full history — the job's event log is the
// source of truth), then follows live and ends after the terminal
// "done" frame. A client that disconnects mid-stream cancels the job
// unless it subscribed with ?detach=1, mapping dropped consumers onto
// job cancellation so abandoned work stops consuming workers.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"arachnet/internal/core"
)

// eventJSON is the wire form of one core.Event. Type takes the values
// stage_started, stage_completed, step_started, step_completed,
// step_failed, curation_promoted and done; the remaining fields are
// populated per type and omitted otherwise. Stage artifacts are not
// serialized — the terminal done frame carries the report summary.
type eventJSON struct {
	Type       string      `json:"type"`
	Seq        int         `json:"seq"`
	Time       time.Time   `json:"time"`
	Stage      string      `json:"stage,omitempty"`
	Step       string      `json:"step,omitempty"`
	Capability string      `json:"capability,omitempty"`
	DurationUS int64       `json:"duration_us,omitempty"`
	Cached     bool        `json:"cached,omitempty"`
	Promotion  string      `json:"promotion,omitempty"`
	Support    int         `json:"support,omitempty"`
	Error      string      `json:"error,omitempty"`
	Report     *reportJSON `json:"report,omitempty"`
}

// encodeEvent maps one typed pipeline event to its wire form.
func encodeEvent(ev core.Event) eventJSON {
	out := eventJSON{}
	switch ev := ev.(type) {
	case *core.StageStarted:
		out.Type, out.Stage = "stage_started", ev.Stage
		out.Seq, out.Time = ev.Seq, ev.Time
	case *core.StageCompleted:
		out.Type, out.Stage, out.Cached = "stage_completed", ev.Stage, ev.Cached
		out.Seq, out.Time = ev.Seq, ev.Time
	case *core.StepStarted:
		out.Type, out.Step, out.Capability = "step_started", ev.Step, ev.Capability
		out.Seq, out.Time = ev.Seq, ev.Time
	case *core.StepCompleted:
		out.Type, out.Step, out.Capability = "step_completed", ev.Step, ev.Capability
		out.DurationUS, out.Cached = ev.Duration.Microseconds(), ev.Cached
		out.Seq, out.Time = ev.Seq, ev.Time
	case *core.StepFailed:
		out.Type, out.Step, out.Capability = "step_failed", ev.Step, ev.Capability
		out.DurationUS, out.Error = ev.Duration.Microseconds(), ev.Err.Error()
		out.Seq, out.Time = ev.Seq, ev.Time
	case *core.CurationPromoted:
		out.Type = "curation_promoted"
		out.Promotion, out.Support = ev.Promotion.Capability.Name, ev.Promotion.Support
		out.Seq, out.Time = ev.Seq, ev.Time
	case *core.Done:
		out.Type = "done"
		out.Report = summarizeReport(ev.Report)
		if ev.Err != nil {
			out.Error = ev.Err.Error()
		}
		out.Seq, out.Time = ev.Seq, ev.Time
	default:
		// Future event types still produce a frame; consumers skip
		// types they don't know.
		out.Type = fmt.Sprintf("%T", ev)
	}
	return out
}

// handleJobEvents streams one job's event log as SSE.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	j, ok := s.findJob(w, r, t)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	detach := r.URL.Query().Get("detach") != ""

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	events := j.Events()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			frame := encodeEvent(ev)
			data, err := json.Marshal(frame)
			if err != nil {
				data = []byte(fmt.Sprintf(`{"type":%q,"error":"unserializable event"}`, frame.Type))
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", frame.Type, data)
			flusher.Flush()
		case <-r.Context().Done():
			// The consumer is gone. Unless it explicitly detached,
			// treat the dropped stream as disinterest in the result and
			// cancel the job (idempotent; a no-op on finished jobs).
			if !detach {
				j.Cancel()
			}
			return
		}
	}
}

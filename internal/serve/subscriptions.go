// Continuous monitoring over HTTP: standing-query subscriptions and
// the per-tenant scenario-injection admin endpoint that drives them.
//
// POST /v1/subscriptions registers a standing query (the baseline run
// executes before the response, admission-controlled like any served
// call). GET /v1/subscriptions/{id}/events streams the subscription's
// typed delta events as SSE, replaying from the first event; a client
// that disconnects closes the subscription unless it subscribed with
// ?detach=1, mirroring the job-events contract. POST
// /v1/admin/scenario injects a cable-failure scenario into the
// tenant's own environment clone — the epoch bump wakes exactly that
// tenant's subscriptions.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"arachnet/internal/core"
	"arachnet/internal/nautilus"
)

func (s *Server) subscriptionRoutes() {
	s.mux.HandleFunc("POST /v1/subscriptions", s.handleSubscribe)
	s.mux.HandleFunc("GET /v1/subscriptions", s.handleListSubscriptions)
	s.mux.HandleFunc("GET /v1/subscriptions/{id}", s.handleGetSubscription)
	s.mux.HandleFunc("DELETE /v1/subscriptions/{id}", s.handleCloseSubscription)
	s.mux.HandleFunc("GET /v1/subscriptions/{id}/events", s.handleSubscriptionEvents)
	s.mux.HandleFunc("POST /v1/admin/scenario", s.handleInjectScenario)
}

// subscriptionJSON is the wire summary of one standing query.
type subscriptionJSON struct {
	ID       uint64 `json:"id"`
	Query    string `json:"query"`
	Revision int    `json:"revision"`
	// Error is the current result's error state (a standing query may
	// legitimately sit in a failed state until data arrives).
	Error string `json:"error,omitempty"`
}

func subSummary(sub *core.Subscription) subscriptionJSON {
	out := subscriptionJSON{ID: sub.ID(), Query: sub.Query(), Revision: sub.Revision()}
	if _, err := sub.Current(); err != nil {
		out.Error = err.Error()
	}
	return out
}

// handleSubscribe registers a standing query for the tenant. The
// subscription is parented on the server, not the request: it lives
// until DELETE, a consuming stream disconnects without ?detach=1, or
// server shutdown.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	req, ok := decodeAsk(w, r)
	if !ok {
		return
	}
	sub, err := t.sys.Subscribe(s.jobCtx, req.Query, s.askOptions(req)...)
	if err != nil {
		if errors.Is(err, core.ErrJobsClosed) {
			httpError(w, http.StatusServiceUnavailable, "serving tier is shutting down")
			return
		}
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusCreated, subSummary(sub))
}

func (s *Server) handleListSubscriptions(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	subs := t.sys.Subscriptions()
	out := make([]subscriptionJSON, len(subs))
	for i, sub := range subs {
		out[i] = subSummary(sub)
	}
	writeJSON(w, http.StatusOK, map[string]any{"subscriptions": out})
}

// findSubscription resolves {id} within the tenant's own subscription
// table — like jobs, tenants can only see and act on their own.
func (s *Server) findSubscription(w http.ResponseWriter, r *http.Request, t *Tenant) (*core.Subscription, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad subscription id %q", r.PathValue("id"))
		return nil, false
	}
	sub := t.sys.Subscription(id)
	if sub == nil {
		httpError(w, http.StatusNotFound, "no subscription %d", id)
		return nil, false
	}
	return sub, true
}

func (s *Server) handleGetSubscription(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	sub, ok := s.findSubscription(w, r, t)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, subSummary(sub))
}

func (s *Server) handleCloseSubscription(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	sub, ok := s.findSubscription(w, r, t)
	if !ok {
		return
	}
	summary := subSummary(sub)
	sub.Close()
	writeJSON(w, http.StatusOK, summary)
}

// subEventJSON is the wire form of one core.SubEvent. Type takes the
// values subscription_started, result_changed, result_unchanged,
// anomaly_appeared, anomaly_cleared and subscription_closed; the
// remaining fields are populated per type.
type subEventJSON struct {
	Type        string              `json:"type"`
	Seq         int                 `json:"seq"`
	Revision    int                 `json:"revision"`
	Time        time.Time           `json:"time"`
	Cause       string              `json:"cause,omitempty"`
	Delta       *core.ResultDelta   `json:"delta,omitempty"`
	Anomaly     *core.AnomalySignal `json:"anomaly,omitempty"`
	StepsRun    int                 `json:"steps_run,omitempty"`
	StepsCached int                 `json:"steps_cached,omitempty"`
	Reason      string              `json:"reason,omitempty"`
	Error       string              `json:"error,omitempty"`
	Report      *reportJSON         `json:"report,omitempty"`
}

// encodeSubEvent maps one typed subscription event to its wire form.
func encodeSubEvent(ev core.SubEvent) subEventJSON {
	out := subEventJSON{}
	stamp := func(m core.SubEventMeta) {
		out.Seq, out.Revision, out.Time = m.Seq, m.Revision, m.Time
	}
	switch ev := ev.(type) {
	case *core.SubscriptionStarted:
		out.Type = "subscription_started"
		out.Report = summarizeReport(ev.Report)
		if ev.Err != nil {
			out.Error = ev.Err.Error()
		}
		stamp(ev.SubEventMeta)
	case *core.ResultChanged:
		out.Type, out.Cause, out.Delta = "result_changed", ev.Cause, ev.Delta
		stamp(ev.SubEventMeta)
	case *core.ResultUnchanged:
		out.Type, out.Cause = "result_unchanged", ev.Cause
		out.StepsRun, out.StepsCached = ev.StepsRun, ev.StepsCached
		stamp(ev.SubEventMeta)
	case *core.AnomalyAppeared:
		a := ev.Anomaly
		out.Type, out.Anomaly = "anomaly_appeared", &a
		stamp(ev.SubEventMeta)
	case *core.AnomalyCleared:
		a := ev.Anomaly
		out.Type, out.Anomaly = "anomaly_cleared", &a
		stamp(ev.SubEventMeta)
	case *core.SubscriptionClosed:
		out.Type, out.Reason = "subscription_closed", ev.Reason
		stamp(ev.SubEventMeta)
	default:
		out.Type = fmt.Sprintf("%T", ev)
	}
	return out
}

// handleSubscriptionEvents streams one subscription's delta-event log
// as SSE: full replay from SubscriptionStarted, then live until the
// terminal subscription_closed frame. A disconnecting consumer closes
// the subscription unless it asked for ?detach=1 — a dropped monitor
// should stop burning re-executions, but a detached subscription keeps
// watching for the next consumer.
func (s *Server) handleSubscriptionEvents(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	sub, ok := s.findSubscription(w, r, t)
	if !ok {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	detach := r.URL.Query().Get("detach") != ""

	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	events := sub.Events()
	for {
		select {
		case ev, open := <-events:
			if !open {
				return
			}
			frame := encodeSubEvent(ev)
			data, err := json.Marshal(frame)
			if err != nil {
				data = []byte(fmt.Sprintf(`{"type":%q,"error":"unserializable event"}`, frame.Type))
			}
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", frame.Type, data)
			flusher.Flush()
		case <-r.Context().Done():
			if !detach {
				sub.Close()
			}
			return
		}
	}
}

// scenarioRequest is the body of POST /v1/admin/scenario; all fields
// are optional (zero values take the library defaults — see
// core.ScenarioConfig).
type scenarioRequest struct {
	Cable         string `json:"cable,omitempty"`
	Seed          uint64 `json:"seed,omitempty"`
	DaysBeforeNow int    `json:"days_before_now,omitempty"`
	WindowDays    int    `json:"window_days,omitempty"`
	ProbePairs    int    `json:"probe_pairs,omitempty"`
}

// handleInjectScenario injects a cable-failure scenario into the
// tenant's environment clone. The epoch bump pokes the tenant's
// standing queries — and only the tenant's: other tenants' clones
// keep their own timelines.
func (s *Server) handleInjectScenario(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	var req scenarioRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	env := t.sys.Environment()
	err := env.InjectCableFailureScenario(core.ScenarioConfig{
		Cable:         nautilus.CableID(req.Cable),
		Seed:          req.Seed,
		DaysBeforeNow: req.DaysBeforeNow,
		WindowDays:    req.WindowDays,
		ProbePairs:    req.ProbePairs,
	})
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch": env.Epoch(),
		"data":  env.Data(),
	})
}

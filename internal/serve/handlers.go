// HTTP handlers: request decoding, tenant resolution, and the mapping
// from serving-layer errors to status codes (queue shed → 429 with
// Retry-After, closed tier → 503, pipeline failure → 422).
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"arachnet/internal/core"
)

// tenantHeader names the tenant a request addresses. Requests may
// instead (or additionally) authenticate with "Authorization: Bearer
// <token>"; with a single configured tenant the header is optional.
const tenantHeader = "X-Arachnet-Tenant"

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("POST /v1/ask", s.handleAsk)
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleListJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGetJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancelJob)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.subscriptionRoutes()
}

// askRequest is the body of POST /v1/ask and POST /v1/jobs.
type askRequest struct {
	Query string `json:"query"`
	// TimeoutMS bounds the pipeline's wall-clock time; 0 uses the
	// server default, capped by the server maximum.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// NoCache bypasses the tenant's plan and step caches for this call.
	NoCache bool `json:"no_cache,omitempty"`
	// NoCuration disables post-run registry evolution for this call.
	NoCuration bool `json:"no_curation,omitempty"`
	// Parallelism bounds concurrent workflow steps (0 = default).
	Parallelism int `json:"parallelism,omitempty"`
	// Full returns the complete Report instead of the summary view.
	Full bool `json:"full,omitempty"`
}

type errorResponse struct {
	Error  string      `json:"error"`
	Report *reportJSON `json:"report,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// bearer extracts a bearer token from the Authorization header.
func bearer(r *http.Request) string {
	h := r.Header.Get("Authorization")
	if tok, ok := strings.CutPrefix(h, "Bearer "); ok {
		return strings.TrimSpace(tok)
	}
	return ""
}

// resolveTenant picks the tenant a request addresses — by header, by
// token, or the single configured tenant — without enforcing auth.
func (s *Server) resolveTenant(r *http.Request) *Tenant {
	if name := r.Header.Get(tenantHeader); name != "" {
		return s.tenants[name]
	}
	if tok := bearer(r); tok != "" {
		return s.byToken[tok]
	}
	return s.single
}

// tenant resolves and authenticates the request's tenant, writing the
// error response itself when it fails.
func (s *Server) tenant(w http.ResponseWriter, r *http.Request) (*Tenant, bool) {
	t := s.resolveTenant(r)
	if t == nil {
		if name := r.Header.Get(tenantHeader); name != "" {
			httpError(w, http.StatusNotFound, "unknown tenant %q", name)
		} else {
			httpError(w, http.StatusBadRequest, "tenant required: set %s or a bearer token", tenantHeader)
		}
		return nil, false
	}
	if t.cfg.Token != "" && bearer(r) != t.cfg.Token {
		httpError(w, http.StatusUnauthorized, "tenant %q requires a bearer token", t.cfg.Name)
		return nil, false
	}
	return t, true
}

// askOptions maps a request onto per-call AskOptions, after the
// server-wide CallOptions.
func (s *Server) askOptions(req askRequest) []core.AskOption {
	opts := append([]core.AskOption{}, s.cfg.CallOptions...)
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout <= 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	if timeout > 0 {
		opts = append(opts, core.AskTimeout(timeout))
	}
	if req.NoCache {
		opts = append(opts, core.AskNoCache())
	}
	if req.NoCuration {
		opts = append(opts, core.AskWithoutCuration())
	}
	if req.Parallelism > 0 {
		opts = append(opts, core.AskParallelism(req.Parallelism))
	}
	return opts
}

// decodeAsk parses and validates the shared request body.
func decodeAsk(w http.ResponseWriter, r *http.Request) (askRequest, bool) {
	var req askRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "bad request body: %v", err)
		return req, false
	}
	if strings.TrimSpace(req.Query) == "" {
		httpError(w, http.StatusBadRequest, "query required")
		return req, false
	}
	return req, true
}

// submitError maps Submit failures to HTTP. Shed load answers 429 with
// a Retry-After hint so well-behaved clients back off.
func submitError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrJobQueueFull):
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests, "%v", err)
	case errors.Is(err, core.ErrJobsClosed):
		httpError(w, http.StatusServiceUnavailable, "serving tier is shutting down")
	default:
		httpError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.closed.Load() {
		httpError(w, http.StatusServiceUnavailable, "shutting down")
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleAsk serves a synchronous query. It still routes through Submit
// so synchronous callers compete under the same admission control and
// weighted-fair scheduling as streaming ones; the handler just waits.
// Client disconnect cancels the job via the request context.
func (s *Server) handleAsk(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	req, ok := decodeAsk(w, r)
	if !ok {
		return
	}
	j, err := t.sys.Submit(r.Context(), req.Query, s.askOptions(req)...)
	if err != nil {
		submitError(w, err)
		return
	}
	rep, err := j.Wait(r.Context())
	if r.Context().Err() != nil {
		// Client gone; the job was cancelled through its context and
		// nobody is left to read a response.
		return
	}
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorResponse{
			Error:  err.Error(),
			Report: summarizeReport(rep),
		})
		return
	}
	if req.Full {
		writeJSON(w, http.StatusOK, rep)
		return
	}
	writeJSON(w, http.StatusOK, summarizeReport(rep))
}

// handleSubmit enqueues an asynchronous job. The job is parented on
// the server (not the request), so it survives the submitting
// connection and is observable through /v1/jobs/{id}/events.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	req, ok := decodeAsk(w, r)
	if !ok {
		return
	}
	j, err := t.sys.Submit(s.jobCtx, req.Query, s.askOptions(req)...)
	if err != nil {
		submitError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.Summary())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	jobs := t.sys.Jobs()
	out := make([]core.JobSummary, len(jobs))
	for i, j := range jobs {
		out[i] = j.Summary()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

// findJob resolves {id} within the tenant's own job table — tenants
// can only ever see and act on their own jobs.
func (s *Server) findJob(w http.ResponseWriter, r *http.Request, t *Tenant) (*core.Job, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return nil, false
	}
	for _, j := range t.sys.Jobs() {
		if j.ID() == id {
			return j, true
		}
	}
	httpError(w, http.StatusNotFound, "no job %d", id)
	return nil, false
}

type jobResponse struct {
	core.JobSummary
	Report *reportJSON `json:"report,omitempty"`
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	j, ok := s.findJob(w, r, t)
	if !ok {
		return
	}
	resp := jobResponse{JobSummary: j.Summary()}
	if resp.State == core.JobDone || resp.State == core.JobCancelled {
		if rep, err := j.Wait(r.Context()); err == nil || rep != nil {
			resp.Report = summarizeReport(rep)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCancelJob(w http.ResponseWriter, r *http.Request) {
	t, ok := s.tenant(w, r)
	if !ok {
		return
	}
	j, ok := s.findJob(w, r, t)
	if !ok {
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, j.Summary())
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	Queue   core.QueueStats        `json:"queue"`
	Tenants map[string]tenantStats `json:"tenants"`
}

type tenantStats struct {
	Cache      core.CacheStats `json:"cache"`
	Registry   int             `json:"registry_size"`
	Generation uint64          `json:"registry_generation"`
	Promotions int             `json:"promotions"`
	Jobs       int             `json:"jobs_tracked"`
}

// handleStats reports queue and cache state. An authenticated (or
// header-addressed) request sees its own tenant; an unaddressed
// request on an open server (no tenant tokens) sees every tenant —
// the operator dashboard view.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{Queue: s.sched.Stats(), Tenants: map[string]tenantStats{}}
	if t := s.resolveTenant(r); t != nil {
		if t.cfg.Token != "" && bearer(r) != t.cfg.Token {
			httpError(w, http.StatusUnauthorized, "tenant %q requires a bearer token", t.cfg.Name)
			return
		}
		resp.Tenants[t.cfg.Name] = s.tenantStats(t)
		writeJSON(w, http.StatusOK, resp)
		return
	}
	if s.anyAuth {
		httpError(w, http.StatusUnauthorized, "stats require tenant credentials")
		return
	}
	for name, t := range s.tenants {
		resp.Tenants[name] = s.tenantStats(t)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) tenantStats(t *Tenant) tenantStats {
	return tenantStats{
		Cache:      t.sys.CacheStats(),
		Registry:   t.sys.Registry().Size(),
		Generation: t.sys.Registry().Generation(),
		Promotions: len(t.sys.Promotions()),
		Jobs:       len(t.sys.Jobs()),
	}
}

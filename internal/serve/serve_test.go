package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"arachnet/internal/core"
	"arachnet/internal/netsim"
	"arachnet/internal/registry"
)

const (
	queryCS1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	querySM4 = "Identify the impact at a country level due to SeaMeWe-4 cable failure"
	queryAAE = "Identify the impact at a country level due to AAE-1 cable failure"
	// gatedCap is the capability gatedRegistry holds at the gate.
	gatedCap = "nautilus.links_on_cables"
)

func testEnv(t testing.TB) *core.Environment {
	t.Helper()
	env, err := core.NewEnvironment(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return env
}

// gatedRegistry copies the CS1 subset with one capability held at a
// gate: its step blocks until the gate closes (or the run is
// cancelled). This pins served jobs mid-run deterministically.
func gatedRegistry(t testing.TB, gate <-chan struct{}) *registry.Registry {
	t.Helper()
	sub, err := core.BuiltinRegistry().Subset(core.CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, c := range sub.All() {
		cc := *c
		if cc.Name == gatedCap {
			orig := c.Impl
			cc.Impl = func(call *registry.Call) error {
				select {
				case <-gate:
					return orig(call)
				case <-call.Context().Done():
					return call.Context().Err()
				}
			}
		}
		if err := reg.Register(cc); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// startServer builds the serving tier and exposes it over a real
// listener (SSE disconnect tests need actual connections).
func startServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = srv.Shutdown(sctx)
		ts.Close()
	})
	return srv, ts
}

func postJSON(t testing.TB, url string, body any, headers ...string) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(headers); i += 2 {
		req.Header.Set(headers[i], headers[i+1])
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t testing.TB, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

// askSummary mirrors the wire summary the handlers return.
type askSummary struct {
	Query string `json:"query"`
	Steps []struct {
		Capability string `json:"capability"`
		Cached     bool   `json:"cached"`
	} `json:"steps"`
	QualityScore *float64 `json:"quality_score"`
	Promotions   []string `json:"promotions"`
	ElapsedUS    int64    `json:"elapsed_us"`
}

// sseFrame is one parsed SSE frame.
type sseFrame struct {
	Event string
	Data  map[string]any
	Raw   string
}

// readSSE parses frames off an SSE body until pred returns true or the
// stream ends; it returns every frame read.
func readSSE(t testing.TB, resp *http.Response, pred func(sseFrame) bool) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Raw = strings.TrimPrefix(line, "data: ")
			cur.Data = map[string]any{}
			if err := json.Unmarshal([]byte(cur.Raw), &cur.Data); err != nil {
				t.Fatalf("bad SSE data %q: %v", cur.Raw, err)
			}
		case line == "" && cur.Event != "":
			frames = append(frames, cur)
			done := pred(cur)
			cur = sseFrame{}
			if done {
				return frames
			}
		}
	}
	return frames
}

// awaitJobState polls the tenant's job table until the job reaches want.
func awaitJobState(t testing.TB, tn *Tenant, id uint64, want core.JobState) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		for _, j := range tn.System().Jobs() {
			if j.ID() == id && j.State() == want {
				return
			}
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %s", id, want)
}

func TestHealthzAndAskRoundtrip(t *testing.T) {
	_, ts := startServer(t, Config{Env: testEnv(t)})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	resp = postJSON(t, ts.URL+"/v1/ask", map[string]any{"query": queryCS1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask = %d", resp.StatusCode)
	}
	var rep askSummary
	decodeBody(t, resp, &rep)
	if rep.Query != queryCS1 {
		t.Errorf("query echo = %q", rep.Query)
	}
	if len(rep.Steps) == 0 || rep.QualityScore == nil || *rep.QualityScore <= 0 {
		t.Errorf("summary incomplete: %d steps, quality %v", len(rep.Steps), rep.QualityScore)
	}

	// The full flag returns the complete Report (json-tagged core type).
	resp = postJSON(t, ts.URL+"/v1/ask", map[string]any{"query": queryCS1, "full": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full ask = %d", resp.StatusCode)
	}
	var full map[string]json.RawMessage
	decodeBody(t, resp, &full)
	for _, key := range []string{"query", "spec", "design", "result"} {
		if _, ok := full[key]; !ok {
			t.Errorf("full report lacks %q (keys %v)", key, keysOf(full))
		}
	}
}

func keysOf(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestAskBadRequests(t *testing.T) {
	_, ts := startServer(t, Config{Env: testEnv(t)})
	cases := []struct {
		name    string
		body    string
		headers []string
		status  int
	}{
		{"empty query", `{}`, nil, http.StatusBadRequest},
		{"bad json", `{`, nil, http.StatusBadRequest},
		{"unknown tenant", fmt.Sprintf(`{"query":%q}`, queryCS1),
			[]string{tenantHeader, "nobody"}, http.StatusNotFound},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/ask", strings.NewReader(tc.body))
		for i := 0; i+1 < len(tc.headers); i += 2 {
			req.Header.Set(tc.headers[i], tc.headers[i+1])
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status = %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad job id: status = %d", resp.StatusCode)
	}
	resp, err = http.Get(ts.URL + "/v1/jobs/99999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status = %d", resp.StatusCode)
	}
}

func TestJobLifecycleAndSSEReplay(t *testing.T) {
	_, ts := startServer(t, Config{Env: testEnv(t)})

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryCS1})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var sub core.JobSummary
	decodeBody(t, resp, &sub)
	if sub.ID == 0 || sub.Query != queryCS1 {
		t.Fatalf("summary = %+v", sub)
	}

	// Stream the event log: a replayable stream always starts from the
	// first event and ends with the terminal done frame.
	stream, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/events", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}
	frames := readSSE(t, stream, func(f sseFrame) bool { return f.Event == "done" })
	if len(frames) < 5 {
		t.Fatalf("stream saw only %d frames", len(frames))
	}
	if frames[0].Event != "stage_started" {
		t.Errorf("first frame = %s, want stage_started (replay from the beginning)", frames[0].Event)
	}
	seen := map[string]bool{}
	for _, f := range frames {
		seen[f.Event] = true
	}
	for _, want := range []string{"stage_started", "stage_completed", "step_completed", "done"} {
		if !seen[want] {
			t.Errorf("stream never delivered %s", want)
		}
	}
	done := frames[len(frames)-1]
	repAny, ok := done.Data["report"].(map[string]any)
	if !ok || repAny["query"] != queryCS1 {
		t.Errorf("done frame report = %v", done.Data["report"])
	}

	// A second subscriber replays the identical history after the fact.
	replay, err := http.Get(fmt.Sprintf("%s/v1/jobs/%d/events", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Body.Close()
	again := readSSE(t, replay, func(f sseFrame) bool { return f.Event == "done" })
	if len(again) != len(frames) {
		t.Errorf("replay saw %d frames, live saw %d", len(again), len(frames))
	}

	// The job resource reflects the terminal state and carries a report.
	resp, err = http.Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		State  core.JobState `json:"state"`
		Report *askSummary   `json:"report"`
	}
	decodeBody(t, resp, &got)
	if got.State != core.JobDone || got.Report == nil || len(got.Report.Steps) == 0 {
		t.Errorf("job resource = %+v", got)
	}

	var list struct {
		Jobs []core.JobSummary `json:"jobs"`
	}
	resp, err = http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &list)
	if len(list.Jobs) != 1 || list.Jobs[0].ID != sub.ID {
		t.Errorf("job list = %+v", list.Jobs)
	}
}

func TestSSEDisconnectCancelsJob(t *testing.T) {
	gate := make(chan struct{})
	closeGate := sync.OnceFunc(func() { close(gate) })
	defer closeGate()
	srv, ts := startServer(t, Config{
		Env:          testEnv(t),
		BaseRegistry: gatedRegistry(t, gate),
		Workers:      1,
	})
	tn := srv.Tenant("default")

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryCS1})
	var sub core.JobSummary
	decodeBody(t, resp, &sub)

	// Stream until the run is pinned at the gated step, then drop the
	// connection: the server must map the disconnect onto job cancel.
	cctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(cctx,
		http.MethodGet, fmt.Sprintf("%s/v1/jobs/%d/events", ts.URL, sub.ID), nil)
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readSSE(t, stream, func(f sseFrame) bool {
		return f.Event == "step_started" && f.Data["capability"] == gatedCap
	})
	cancel()
	stream.Body.Close()
	awaitJobState(t, tn, sub.ID, core.JobCancelled)

	// A detached subscriber (?detach=1) may come and go freely.
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryCS1})
	var sub2 core.JobSummary
	decodeBody(t, resp, &sub2)
	dctx, dcancel := context.WithCancel(context.Background())
	req, _ = http.NewRequestWithContext(dctx,
		http.MethodGet, fmt.Sprintf("%s/v1/jobs/%d/events?detach=1", ts.URL, sub2.ID), nil)
	stream, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readSSE(t, stream, func(f sseFrame) bool {
		return f.Event == "step_started" && f.Data["capability"] == gatedCap
	})
	dcancel()
	stream.Body.Close()
	// Give the handler's disconnect path time to (wrongly) cancel.
	time.Sleep(50 * time.Millisecond)
	if st := jobState(tn, sub2.ID); st != core.JobRunning {
		t.Fatalf("detached job state = %s after disconnect, want running", st)
	}
	closeGate()
	awaitJobState(t, tn, sub2.ID, core.JobDone)
}

func jobState(tn *Tenant, id uint64) core.JobState {
	for _, j := range tn.System().Jobs() {
		if j.ID() == id {
			return j.State()
		}
	}
	return ""
}

func TestQueueShed429AndCancel(t *testing.T) {
	gate := make(chan struct{})
	closeGate := sync.OnceFunc(func() { close(gate) })
	defer closeGate()
	srv, ts := startServer(t, Config{
		Env:          testEnv(t),
		BaseRegistry: gatedRegistry(t, gate),
		Workers:      1,
		Tenants:      []TenantConfig{{Name: "t", MaxQueued: 1}},
	})
	tn := srv.Tenant("t")

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryCS1})
	var running core.JobSummary
	decodeBody(t, resp, &running)
	awaitJobState(t, tn, running.ID, core.JobRunning)

	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryCS1})
	var queued core.JobSummary
	decodeBody(t, resp, &queued)

	// Per-tenant MaxQueued is full: the next submission is shed with a
	// Retry-After hint.
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryCS1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("shed response lacks Retry-After")
	}
	resp.Body.Close()

	// Synchronous asks share the same admission control.
	resp = postJSON(t, ts.URL+"/v1/ask", map[string]any{"query": queryCS1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("sync ask shed status = %d, want 429", resp.StatusCode)
	}
	resp.Body.Close()

	var stats struct {
		Queue core.QueueStats `json:"queue"`
	}
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &stats)
	if stats.Queue.Shed < 2 || stats.Queue.Classes["t"].Shed < 2 {
		t.Errorf("stats shed = %d (class %d), want >= 2", stats.Queue.Shed, stats.Queue.Classes["t"].Shed)
	}

	// DELETE cancels the queued job immediately.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/jobs/%d", ts.URL, queued.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelled core.JobSummary
	decodeBody(t, resp, &cancelled)
	if cancelled.State != core.JobCancelled {
		t.Errorf("cancelled state = %s", cancelled.State)
	}
	closeGate()
	awaitJobState(t, tn, running.ID, core.JobDone)
}

func TestTenantAuth(t *testing.T) {
	_, ts := startServer(t, Config{
		Env:     testEnv(t),
		Tenants: []TenantConfig{{Name: "secure", Token: "s3cret"}},
	})

	resp := postJSON(t, ts.URL+"/v1/ask", map[string]any{"query": queryCS1})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("no-token status = %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	resp = postJSON(t, ts.URL+"/v1/ask", map[string]any{"query": queryCS1},
		tenantHeader, "secure", "Authorization", "Bearer wrong")
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong-token status = %d, want 401", resp.StatusCode)
	}
	resp.Body.Close()

	// The bearer token alone both selects and authenticates the tenant.
	resp = postJSON(t, ts.URL+"/v1/ask", map[string]any{"query": queryCS1},
		"Authorization", "Bearer s3cret")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("token status = %d, want 200", resp.StatusCode)
	}
	resp.Body.Close()

	// Stats on a tokened server require credentials too.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusUnauthorized {
		t.Errorf("anonymous stats status = %d, want 401", sresp.StatusCode)
	}
}

func TestShutdownDrainsInFlightJobs(t *testing.T) {
	gate := make(chan struct{})
	closeGate := sync.OnceFunc(func() { close(gate) })
	defer closeGate()
	srv, ts := startServer(t, Config{
		Env:          testEnv(t),
		BaseRegistry: gatedRegistry(t, gate),
		Workers:      1,
	})
	tn := srv.Tenant("default")

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryCS1})
	var sub core.JobSummary
	decodeBody(t, resp, &sub)
	awaitJobState(t, tn, sub.ID, core.JobRunning)

	shutdownErr := make(chan error, 1)
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { shutdownErr <- srv.Shutdown(sctx) }()

	// The tier refuses new work while the accepted job drains.
	deadline := time.Now().Add(10 * time.Second)
	for {
		r, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("healthz never reported shutdown")
		}
		time.Sleep(2 * time.Millisecond)
	}
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]any{"query": queryCS1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()

	// Release the pinned step: the drain completes and the accepted job
	// finished rather than being dropped.
	closeGate()
	if err := <-shutdownErr; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := jobState(tn, sub.ID); st != core.JobDone {
		t.Errorf("drained job state = %s, want done", st)
	}
}

package serve

// Continuous monitoring over the wire: subscription lifecycle, SSE
// delta streams (replay-from-start, disconnect semantics), the admin
// scenario endpoint that drives re-execution, per-tenant isolation of
// epoch bumps, and shutdown with standing queries open.

import (
	"context"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// queryForensic is scenario-sensitive: it fails on a scenario-less
// world and flips to a verdict once a cable failure is injected —
// exactly the transition a standing query exists to catch.
const queryForensic = "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable."

func subscribe(t testing.TB, base, query string, headers ...string) subscriptionJSON {
	t.Helper()
	resp := postJSON(t, base+"/v1/subscriptions", map[string]any{"query": query}, headers...)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("subscribe = %d", resp.StatusCode)
	}
	var sub subscriptionJSON
	decodeBody(t, resp, &sub)
	return sub
}

// awaitRevision polls the tenant's subscription until it reaches at
// least want re-executions.
func awaitRevision(t testing.TB, tn *Tenant, id uint64, want int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if sub := tn.System().Subscription(id); sub != nil && sub.Revision() >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("subscription %d never reached revision %d", id, want)
}

func TestSubscriptionScenarioInjectionOverSSE(t *testing.T) {
	srv, ts := startServer(t, Config{Env: testEnv(t)})
	tn := srv.Tenant("default")

	sub := subscribe(t, ts.URL, queryForensic)
	if sub.ID == 0 || sub.Query != queryForensic {
		t.Fatalf("summary = %+v", sub)
	}
	// The baseline ran synchronously against a scenario-less world, so
	// the standing query starts in a (legitimate) failed state.
	if sub.Error == "" {
		t.Fatal("scenario-less forensic baseline reported no error")
	}

	var list struct {
		Subscriptions []subscriptionJSON `json:"subscriptions"`
	}
	resp, err := http.Get(ts.URL + "/v1/subscriptions")
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &list)
	if len(list.Subscriptions) != 1 || list.Subscriptions[0].ID != sub.ID {
		t.Fatalf("subscription list = %+v", list.Subscriptions)
	}

	// Open the event stream, then inject a scenario. The stream must
	// replay from subscription_started and then deliver the
	// result_changed delta the epoch bump causes.
	stream, err := http.Get(fmt.Sprintf("%s/v1/subscriptions/%d/events?detach=1", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	if ct := stream.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	resp = postJSON(t, ts.URL+"/v1/admin/scenario", map[string]any{"seed": 5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject = %d", resp.StatusCode)
	}
	var inj struct {
		Epoch float64 `json:"epoch"`
	}
	decodeBody(t, resp, &inj)
	if inj.Epoch != 1 {
		t.Errorf("epoch after first injection = %v, want 1", inj.Epoch)
	}

	// The delta comes first, then the anomalies it surfaced.
	frames := readSSE(t, stream, func(f sseFrame) bool { return f.Event == "anomaly_appeared" })
	if frames[0].Event != "subscription_started" {
		t.Errorf("first frame = %s, want subscription_started (replay from the beginning)", frames[0].Event)
	}
	if frames[0].Data["error"] == "" {
		t.Errorf("started frame carries no baseline error: %v", frames[0].Data)
	}
	var changed sseFrame
	for _, f := range frames {
		if f.Event == "result_changed" {
			changed = f
		}
	}
	if changed.Event == "" {
		t.Fatal("stream never delivered result_changed")
	}
	if changed.Data["cause"] != "environment" {
		t.Errorf("result_changed cause = %v, want environment", changed.Data["cause"])
	}
	delta, ok := changed.Data["delta"].(map[string]any)
	if !ok {
		t.Fatalf("result_changed delta = %v", changed.Data["delta"])
	}
	if eb, _ := delta["err_before"].(string); eb == "" {
		t.Errorf("delta err_before empty; the baseline failed")
	}
	if added, _ := delta["added"].([]any); len(added) == 0 {
		t.Errorf("delta added no outputs: %v", delta)
	}

	// The resource now reports a healthy revision-1 state.
	awaitRevision(t, tn, sub.ID, 1)
	resp, err = http.Get(fmt.Sprintf("%s/v1/subscriptions/%d", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	var got subscriptionJSON
	decodeBody(t, resp, &got)
	if got.Revision < 1 || got.Error != "" {
		t.Errorf("subscription resource = %+v", got)
	}

	// A late subscriber replays the identical history from the start.
	replay, err := http.Get(fmt.Sprintf("%s/v1/subscriptions/%d/events?detach=1", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer replay.Body.Close()
	again := readSSE(t, replay, func(f sseFrame) bool { return f.Event == "anomaly_appeared" })
	if len(again) != len(frames) {
		t.Errorf("replay saw %d frames, live saw %d", len(again), len(frames))
	}

	// DELETE closes the standing query: streams end with the terminal
	// frame and the resource disappears.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/v1/subscriptions/%d", ts.URL, sub.ID), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete = %d", resp.StatusCode)
	}
	final, err := http.Get(fmt.Sprintf("%s/v1/subscriptions/%d/events", ts.URL, sub.ID))
	if err == nil {
		final.Body.Close()
	}
	if err != nil || final.StatusCode != http.StatusNotFound {
		t.Errorf("events after delete: status %v err %v, want 404", final.StatusCode, err)
	}
	resp, err = http.Get(fmt.Sprintf("%s/v1/subscriptions/%d", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("get after delete = %d, want 404", resp.StatusCode)
	}
}

func TestSubscriptionDisconnectSemantics(t *testing.T) {
	srv, ts := startServer(t, Config{Env: testEnv(t)})
	tn := srv.Tenant("default")

	// An attached consumer's disconnect closes the standing query: a
	// dropped monitor must stop burning re-executions.
	sub := subscribe(t, ts.URL, queryCS1)
	cctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(cctx,
		http.MethodGet, fmt.Sprintf("%s/v1/subscriptions/%d/events", ts.URL, sub.ID), nil)
	stream, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readSSE(t, stream, func(f sseFrame) bool { return f.Event == "subscription_started" })
	cancel()
	stream.Body.Close()
	deadline := time.Now().Add(15 * time.Second)
	for tn.System().Subscription(sub.ID) != nil {
		if time.Now().After(deadline) {
			t.Fatal("disconnect never closed the attached subscription")
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A detached consumer (?detach=1) may come and go freely.
	sub2 := subscribe(t, ts.URL, queryCS1)
	dctx, dcancel := context.WithCancel(context.Background())
	req, _ = http.NewRequestWithContext(dctx,
		http.MethodGet, fmt.Sprintf("%s/v1/subscriptions/%d/events?detach=1", ts.URL, sub2.ID), nil)
	stream, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	readSSE(t, stream, func(f sseFrame) bool { return f.Event == "subscription_started" })
	dcancel()
	stream.Body.Close()
	// Give the handler's disconnect path time to (wrongly) close it.
	time.Sleep(50 * time.Millisecond)
	live := tn.System().Subscription(sub2.ID)
	if live == nil {
		t.Fatal("detached subscription closed by its consumer's disconnect")
	}
	live.Close()
}

func TestScenarioInjectionIsPerTenant(t *testing.T) {
	srv, ts := startServer(t, Config{
		Env: testEnv(t),
		Tenants: []TenantConfig{
			{Name: "alpha"},
			{Name: "beta"},
		},
	})

	subA := subscribe(t, ts.URL, queryForensic, tenantHeader, "alpha")
	subB := subscribe(t, ts.URL, queryForensic, tenantHeader, "beta")

	// Alpha injects a scenario; only alpha's standing query re-executes.
	resp := postJSON(t, ts.URL+"/v1/admin/scenario", map[string]any{"seed": 5},
		tenantHeader, "alpha")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("inject = %d", resp.StatusCode)
	}
	resp.Body.Close()
	awaitRevision(t, srv.Tenant("alpha"), subA.ID, 1)

	bSys := srv.Tenant("beta").System()
	if ep := bSys.Environment().Epoch(); ep != 0 {
		t.Errorf("beta environment epoch = %d after alpha's injection, want 0", ep)
	}
	if rev := bSys.Subscription(subB.ID).Revision(); rev != 0 {
		t.Errorf("beta subscription revision = %d after alpha's injection, want 0", rev)
	}
	if _, err := bSys.Subscription(subB.ID).Current(); err == nil {
		t.Error("beta's forensic query succeeded without a scenario")
	}

	// Subscription IDs live in per-tenant namespaces: alpha's second
	// standing query gets an id that simply does not exist for beta.
	subA2 := subscribe(t, ts.URL, queryCS1, tenantHeader, "alpha")
	if subA2.ID == subB.ID {
		t.Fatalf("test needs an id unique to alpha, got %d for both", subA2.ID)
	}
	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s/v1/subscriptions/%d", ts.URL, subA2.ID), nil)
	req.Header.Set(tenantHeader, "beta")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("cross-tenant subscription get = %d, want 404", resp.StatusCode)
	}
	var bList struct {
		Subscriptions []subscriptionJSON `json:"subscriptions"`
	}
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/v1/subscriptions", nil)
	req.Header.Set(tenantHeader, "beta")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	decodeBody(t, resp, &bList)
	if len(bList.Subscriptions) != 1 || bList.Subscriptions[0].ID != subB.ID {
		t.Errorf("beta's subscription list = %+v", bList.Subscriptions)
	}
}

func TestShutdownClosesOpenSubscriptions(t *testing.T) {
	srv, ts := startServer(t, Config{Env: testEnv(t)})
	tn := srv.Tenant("default")

	sub := subscribe(t, ts.URL, queryCS1)
	stream, err := http.Get(fmt.Sprintf("%s/v1/subscriptions/%d/events?detach=1", ts.URL, sub.ID))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()

	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown with open subscription: %v", err)
	}
	// The stream terminates with the subscription_closed frame and the
	// table is emptied.
	frames := readSSE(t, stream, func(f sseFrame) bool { return f.Event == "subscription_closed" })
	last := frames[len(frames)-1]
	if last.Event != "subscription_closed" || last.Data["reason"] != "system closed" {
		t.Errorf("terminal frame = %s %v", last.Event, last.Data)
	}
	if subs := tn.System().Subscriptions(); len(subs) != 0 {
		t.Errorf("%d subscriptions survive shutdown", len(subs))
	}

	// New standing queries are refused on the closed tier.
	resp := postJSON(t, ts.URL+"/v1/subscriptions", map[string]any{"query": queryCS1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("subscribe after shutdown = %d, want 503", resp.StatusCode)
	}
	resp.Body.Close()
}

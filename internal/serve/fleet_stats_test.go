package serve

// Fleet-aware stats: with Config.Fleet set, every tenant gets its own
// worker fleet and /v1/stats must expose its counters — total
// scatter/shard-local/declined dispatches plus per-worker shard
// inventory and cache activity.

import (
	"net/http"
	"testing"

	"arachnet/internal/core"
	"arachnet/internal/fleet"
)

func TestStatsExposeFleetCounters(t *testing.T) {
	_, ts := startServer(t, Config{
		Env:   testEnv(t),
		Fleet: 2,
		Tenants: []TenantConfig{{
			Name: "default", Capabilities: core.CS1RegistryNames(),
		}},
	})

	// Serve the fan-out query so the fleet actually handles steps.
	resp := postJSON(t, ts.URL+"/v1/ask", map[string]any{
		"query": "Identify the impact at a country level due to SeaMeWe-5 cable failure",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ask status %d", resp.StatusCode)
	}
	resp.Body.Close()

	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("stats status %d", sresp.StatusCode)
	}
	var stats struct {
		Tenants map[string]struct {
			Cache struct {
				Fleet *fleet.Stats `json:"fleet"`
			} `json:"cache"`
		} `json:"tenants"`
	}
	decodeBody(t, sresp, &stats)

	ten, ok := stats.Tenants["default"]
	if !ok {
		t.Fatalf("no default tenant in stats: %v", stats)
	}
	fs := ten.Cache.Fleet
	if fs == nil {
		t.Fatal("stats carry no fleet block despite Config.Fleet=2")
	}
	if fs.Workers != 2 {
		t.Errorf("fleet workers = %d, want 2", fs.Workers)
	}
	if fs.Scattered+fs.ShardLocal == 0 {
		t.Errorf("fleet handled no steps: %+v", fs)
	}
	if len(fs.Shards) != 2 {
		t.Fatalf("stats carry %d shard entries, want 2", len(fs.Shards))
	}
	var routers, executed uint64
	for _, sh := range fs.Shards {
		routers += uint64(sh.Routers)
		executed += sh.Executed
	}
	if routers == 0 {
		t.Error("per-worker shard inventory reports zero routers")
	}
	if executed == 0 {
		t.Error("no worker reports executed steps")
	}
}

// Wire views: the summary shapes the HTTP tier serves by default. The
// full *core.Report (with its json tags) is available behind the
// request's "full" flag; the summary keeps routine responses small and
// stable while still naming every executed capability — which is also
// what the isolation tests inspect to prove no cross-tenant leakage.
package serve

import (
	"encoding/json"
	"fmt"

	"arachnet/internal/core"
)

// reportJSON summarizes one pipeline run.
type reportJSON struct {
	Query string `json:"query"`
	// Intent is QueryMind's reading of the query.
	Intent string `json:"intent,omitempty"`
	// Strategy is WorkflowScout's chosen design strategy.
	Strategy string `json:"strategy,omitempty"`
	// Code is the generated workflow program.
	Code string `json:"code,omitempty"`
	// Steps records the executed workflow steps in order.
	Steps []stepJSON `json:"steps,omitempty"`
	// QualityScore is the fraction of passed quality checks.
	QualityScore *float64 `json:"quality_score,omitempty"`
	// Outputs carries the declared workflow outputs, JSON-encoded when
	// possible and rendered as text otherwise.
	Outputs map[string]json.RawMessage `json:"outputs,omitempty"`
	// Promotions names composites the curator promoted after this run.
	Promotions []string `json:"promotions,omitempty"`
	ElapsedUS  int64    `json:"elapsed_us"`
}

type stepJSON struct {
	ID         string `json:"id"`
	Capability string `json:"capability"`
	DurationUS int64  `json:"duration_us"`
	Cached     bool   `json:"cached,omitempty"`
	Error      string `json:"error,omitempty"`
}

// summarizeReport builds the wire summary of a (possibly partial, or
// nil) report.
func summarizeReport(rep *core.Report) *reportJSON {
	if rep == nil {
		return nil
	}
	out := &reportJSON{
		Query:     rep.Query,
		Intent:    string(rep.Spec.Intent),
		ElapsedUS: rep.Elapsed.Microseconds(),
	}
	if rep.Design != nil {
		out.Strategy = rep.Design.Strategy
	}
	if rep.Solution != nil {
		out.Code = rep.Solution.Code
	}
	if rep.Result != nil {
		for _, st := range rep.Result.Steps {
			sj := stepJSON{
				ID:         st.ID,
				Capability: st.Capability,
				DurationUS: st.Duration.Microseconds(),
				Cached:     st.Cached,
			}
			if st.Err != nil {
				sj.Error = st.Err.Error()
			}
			out.Steps = append(out.Steps, sj)
		}
		q := rep.Result.QualityScore()
		out.QualityScore = &q
		if len(rep.Result.Outputs) > 0 {
			out.Outputs = make(map[string]json.RawMessage, len(rep.Result.Outputs))
			for name, v := range rep.Result.Outputs {
				out.Outputs[name] = jsonValue(v)
			}
		}
	}
	for _, p := range rep.Promotions {
		out.Promotions = append(out.Promotions, p.Capability.Name)
	}
	return out
}

// jsonValue encodes an arbitrary output value, falling back to a
// quoted text rendering for values JSON cannot represent.
func jsonValue(v any) json.RawMessage {
	if data, err := json.Marshal(v); err == nil {
		return data
	}
	quoted, _ := json.Marshal(fmt.Sprintf("%v", v))
	return quoted
}

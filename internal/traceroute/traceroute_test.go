package traceroute

import (
	"testing"
	"time"

	"arachnet/internal/bgp"
	"arachnet/internal/netsim"
	"arachnet/internal/stats"
)

func testWorld(t testing.TB) *netsim.World {
	t.Helper()
	w, err := netsim.Generate(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// pickEndpoints returns a source router in GB and a destination address
// in SG, giving a long intercontinental path.
func pickEndpoints(t testing.TB, w *netsim.World) (netsim.RouterID, netsim.Router) {
	t.Helper()
	var src netsim.RouterID
	var dst netsim.Router
	for _, a := range w.ASes {
		if a.Tier == netsim.Stub && a.Home == "GB" && src == 0 {
			src = w.RoutersOf(a.ASN)[0]
		}
		if a.Tier == netsim.Stub && a.Home == "SG" && dst.ID == 0 {
			r, _ := w.RouterByID(w.RoutersOf(a.ASN)[0])
			dst = r
		}
	}
	if src == 0 || dst.ID == 0 {
		t.Fatal("could not find GB/SG stubs")
	}
	return src, dst
}

func TestTraceReachesDestination(t *testing.T) {
	w := testWorld(t)
	src, dst := pickEndpoints(t, w)
	table := bgp.ComputeTable(w, nil)
	p := NewProber(w)
	path, err := p.Trace(table, nil, src, dst.Addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !path.Reached {
		t.Fatal("GB→SG trace did not reach")
	}
	if len(path.Hops) < 3 {
		t.Errorf("implausibly short path: %d hops", len(path.Hops))
	}
	// RTT monotone along hops.
	for i := 1; i < len(path.Hops); i++ {
		if path.Hops[i].RTTms+0.5 < path.Hops[i-1].RTTms {
			t.Errorf("RTT regressed at hop %d: %.2f < %.2f", i, path.Hops[i].RTTms, path.Hops[i-1].RTTms)
		}
	}
	// Intercontinental RTT must be physically plausible: > 60ms (light
	// over ~10,000 km round trip with stretch), < 600ms.
	if path.RTTms < 60 || path.RTTms > 600 {
		t.Errorf("GB→SG RTT = %.1f ms, implausible", path.RTTms)
	}
	// First hop is the source, last hop belongs to the destination AS.
	first, _ := w.RouterByID(src)
	if path.Hops[0].Router != src || path.Hops[0].ASN != first.ASN {
		t.Error("first hop is not the source router")
	}
	if path.Hops[len(path.Hops)-1].ASN != dst.ASN {
		t.Errorf("last hop AS %d, want %d", path.Hops[len(path.Hops)-1].ASN, dst.ASN)
	}
}

func TestTraceFollowsBGPPath(t *testing.T) {
	w := testWorld(t)
	src, dst := pickEndpoints(t, w)
	table := bgp.ComputeTable(w, nil)
	p := NewProber(w)
	path, err := p.Trace(table, nil, src, dst.Addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	srcR, _ := w.RouterByID(src)
	route, _ := table.Route(srcR.ASN, dst.ASN)
	// The AS sequence of the hops must equal the BGP path.
	var asSeq []netsim.ASN
	for _, h := range path.Hops {
		if len(asSeq) == 0 || asSeq[len(asSeq)-1] != h.ASN {
			asSeq = append(asSeq, h.ASN)
		}
	}
	if !bgp.PathEqual(asSeq, route.Path) {
		t.Errorf("hop AS sequence %v != BGP path %v", asSeq, route.Path)
	}
}

func TestTraceErrors(t *testing.T) {
	w := testWorld(t)
	table := bgp.ComputeTable(w, nil)
	p := NewProber(w)
	if _, err := p.Trace(table, nil, 999999, w.Routers[0].Addr, 1); err == nil {
		t.Error("unknown source must error")
	}
	bad := w.Routers[0].Addr
	if _, err := p.Trace(table, nil, w.Routers[0].ID, bad, 1); err != nil {
		t.Errorf("valid trace errored: %v", err)
	}
}

func TestTraceUnreachableAfterIsolation(t *testing.T) {
	w := testWorld(t)
	src, dst := pickEndpoints(t, w)
	// Kill every inter-AS link of the destination AS.
	failed := map[netsim.LinkID]bool{}
	for _, l := range w.IPLinks {
		if l.IntraAS {
			continue
		}
		if l.ASLinkAB[0] == dst.ASN || l.ASLinkAB[1] == dst.ASN {
			failed[l.ID] = true
		}
	}
	table := bgp.ComputeTable(w, failed)
	p := NewProber(w)
	path, err := p.Trace(table, failed, src, dst.Addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if path.Reached {
		t.Error("trace reached an isolated AS")
	}
}

func campaignWindow() (time.Time, time.Time) {
	start := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	return start, start.Add(48 * time.Hour)
}

func TestRunCampaignLatencyShiftOnFailure(t *testing.T) {
	w := testWorld(t)
	src, dst := pickEndpoints(t, w)
	start, end := campaignWindow()

	// Fail the best submarine link on the current GB→SG path at T+24h.
	table := bgp.ComputeTable(w, nil)
	p := NewProber(w)
	before, err := p.Trace(table, nil, src, dst.Addr, 1)
	if err != nil || !before.Reached {
		t.Fatalf("baseline trace failed: %v", err)
	}
	// Find a submarine link between consecutive hops. Prefer inter-AS
	// links so the failure triggers a BGP-level reroute rather than an
	// intra-AS detour.
	var victim, intraVictim netsim.LinkID
	for i := 0; i+1 < len(before.Hops); i++ {
		for _, lid := range w.LinksAt(before.Hops[i].Router) {
			l, _ := w.LinkByID(lid)
			if l.Kind != netsim.LinkSubmarine {
				continue
			}
			if (l.A == before.Hops[i].Router && l.B == before.Hops[i+1].Router) ||
				(l.B == before.Hops[i].Router && l.A == before.Hops[i+1].Router) {
				if l.IntraAS {
					intraVictim = l.ID
				} else {
					victim = l.ID
				}
			}
		}
	}
	if victim == 0 {
		victim = intraVictim
	}
	if victim == 0 {
		t.Skip("no submarine link on baseline path for this seed")
	}

	camp := Campaign{
		Probes:   []Probe{{Name: "gb-sg", Src: src, Dst: dst.Addr}},
		Start:    start,
		End:      end,
		Interval: time.Hour,
		Events:   []bgp.FailureEvent{{At: start.Add(24 * time.Hour), Links: []netsim.LinkID{victim}, Label: "victim"}},
		Seed:     9,
	}
	arch, err := RunCampaign(w, camp)
	if err != nil {
		t.Fatal(err)
	}
	times, rtts := arch.Series("gb-sg")
	if len(rtts) < 40 {
		t.Fatalf("series too short: %d", len(rtts))
	}
	// Split at the event: RTT after must differ from before (reroute).
	var pre, post []float64
	for i, ts := range times {
		if ts.Before(camp.Events[0].At) {
			pre = append(pre, rtts[i])
		} else {
			post = append(post, rtts[i])
		}
	}
	if len(pre) == 0 || len(post) == 0 {
		t.Fatal("event did not split the series")
	}
	if diff := stats.Mean(post) - stats.Mean(pre); diff <= 0.5 {
		t.Errorf("no latency increase after failure: Δ=%.2f ms", diff)
	}
}

func TestRunCampaignDeterministic(t *testing.T) {
	w := testWorld(t)
	src, dst := pickEndpoints(t, w)
	start, end := campaignWindow()
	camp := Campaign{
		Probes: []Probe{{Name: "p", Src: src, Dst: dst.Addr}},
		Start:  start, End: end, Interval: 2 * time.Hour, Seed: 4,
	}
	a1, err := RunCampaign(w, camp)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := RunCampaign(w, camp)
	if err != nil {
		t.Fatal(err)
	}
	_, r1 := a1.Series("p")
	_, r2 := a2.Series("p")
	if len(r1) != len(r2) {
		t.Fatal("series lengths differ")
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("sample %d differs: %f vs %f", i, r1[i], r2[i])
		}
	}
}

func TestRunCampaignValidation(t *testing.T) {
	w := testWorld(t)
	start, end := campaignWindow()
	if _, err := RunCampaign(w, Campaign{Start: start, End: end, Interval: time.Hour}); err == nil {
		t.Error("no probes must error")
	}
	pr := Probe{Name: "x", Src: w.Routers[0].ID, Dst: w.Routers[0].Addr}
	if _, err := RunCampaign(w, Campaign{Probes: []Probe{pr}, Start: end, End: start, Interval: time.Hour}); err == nil {
		t.Error("inverted window must error")
	}
	if _, err := RunCampaign(w, Campaign{Probes: []Probe{pr}, Start: start, End: end, Interval: 0}); err == nil {
		t.Error("zero interval must error")
	}
}

func TestArchiveHelpers(t *testing.T) {
	w := testWorld(t)
	src, dst := pickEndpoints(t, w)
	start, _ := campaignWindow()
	camp := Campaign{
		Probes: []Probe{{Name: "b", Src: src, Dst: dst.Addr}, {Name: "a", Src: src, Dst: dst.Addr}},
		Start:  start, End: start.Add(6 * time.Hour), Interval: time.Hour, Seed: 2,
	}
	arch, err := RunCampaign(w, camp)
	if err != nil {
		t.Fatal(err)
	}
	probes := arch.Probes()
	if len(probes) != 2 || probes[0] != "a" || probes[1] != "b" {
		t.Errorf("Probes() = %v", probes)
	}
	if lr := arch.LossRate("a"); lr != 0 {
		t.Errorf("healthy campaign loss rate = %f", lr)
	}
	if lr := arch.LossRate("nonexistent"); lr != 0 {
		t.Errorf("unknown probe loss rate = %f", lr)
	}
}

func BenchmarkTrace(b *testing.B) {
	w := testWorld(b)
	src, dst := pickEndpoints(b, w)
	table := bgp.ComputeTable(w, nil)
	p := NewProber(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Trace(table, nil, src, dst.Addr, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignDay(b *testing.B) {
	w := testWorld(b)
	src, dst := pickEndpoints(b, w)
	start, _ := campaignWindow()
	camp := Campaign{
		Probes: []Probe{{Name: "p", Src: src, Dst: dst.Addr}},
		Start:  start, End: start.Add(24 * time.Hour), Interval: time.Hour, Seed: 3,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunCampaign(w, camp); err != nil {
			b.Fatal(err)
		}
	}
}

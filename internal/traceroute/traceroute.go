// Package traceroute implements the active-measurement substrate: a
// prober that traces router-level paths through the simulated Internet
// and times them with a geography-derived RTT model, plus measurement
// campaigns that produce latency time series across failure events.
//
// It stands in for RIPE-Atlas-style probe archives. The essential
// behaviour the forensic workflows need is causal: when a cable failure
// kills IP links, BGP re-routes, paths lengthen, and the probe series
// shows a latency level shift at the failure time.
package traceroute

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"net/netip"
	"sort"
	"time"

	"arachnet/internal/bgp"
	"arachnet/internal/geo"
	"arachnet/internal/netsim"
)

// Hop is one responding router on a traced path.
type Hop struct {
	Router netsim.RouterID
	Addr   netip.Addr
	ASN    netsim.ASN
	RTTms  float64 // cumulative round-trip time at this hop
}

// Path is the result of one trace.
type Path struct {
	Src     netsim.RouterID
	Dst     netip.Addr
	Hops    []Hop
	Reached bool
	RTTms   float64 // end-to-end RTT; meaningful only when Reached
}

// perHopOverheadMs models queueing/processing per traversed router.
const perHopOverheadMs = 0.15

// Prober traces paths through a world.
type Prober struct {
	w *netsim.World
}

// NewProber returns a Prober over the given world.
func NewProber(w *netsim.World) *Prober { return &Prober{w: w} }

// Trace follows the BGP-selected AS path from src toward dst, expanding
// each AS hop into router-level hops over alive intra-AS links. failed
// lists dead IP links; jitterSeed perturbs RTTs deterministically.
func (p *Prober) Trace(table *bgp.Table, failed map[netsim.LinkID]bool, src netsim.RouterID, dst netip.Addr, jitterSeed uint64) (Path, error) {
	srcR, ok := p.w.RouterByID(src)
	if !ok {
		return Path{}, fmt.Errorf("traceroute: unknown source router %d", src)
	}
	origin, ok := p.w.OriginOf(dst)
	if !ok {
		return Path{}, fmt.Errorf("traceroute: destination %v not in any prefix", dst)
	}
	out := Path{Src: src, Dst: dst}
	route, ok := table.Route(srcR.ASN, origin)
	if !ok {
		return out, nil // no route: probe times out, Reached stays false
	}

	rng := rand.New(rand.NewPCG(jitterSeed, jitterSeed^0xa24baed4963ee407))
	cur := srcR
	var oneWayMs float64
	hops := 0
	appendHop := func(r netsim.Router) {
		hops++
		rtt := 2*oneWayMs + float64(hops)*perHopOverheadMs + rng.Float64()*0.4
		out.Hops = append(out.Hops, Hop{Router: r.ID, Addr: r.Addr, ASN: r.ASN, RTTms: rtt})
	}
	appendHop(cur)

	for i := 0; i+1 < len(route.Path); i++ {
		nextAS := route.Path[i+1]
		xl, ok := p.exitLink(cur.ASN, nextAS, failed)
		if !ok {
			return out, nil // adjacency dead at IP layer
		}
		// Walk inside the current AS from cur to the link's near router.
		near, far := p.orientLink(xl, cur.ASN)
		segMs, ok := p.intraASWalk(cur, near, failed, &out, &oneWayMs, &hops, rng)
		if !ok {
			return out, nil
		}
		_ = segMs
		// Cross the inter-AS link.
		oneWayMs += geo.PropagationDelayMs(xl.DistKm)
		farR, _ := p.w.RouterByID(far)
		appendHop(farR)
		cur = farR
	}

	// Final intra-AS walk to the destination router (the origin AS's
	// router inside the destination prefix's country).
	dstR, ok := p.destRouter(dst, origin)
	if !ok {
		return out, nil
	}
	if _, ok := p.intraASWalk(cur, dstR.ID, failed, &out, &oneWayMs, &hops, rng); !ok {
		return out, nil
	}
	out.Reached = true
	if n := len(out.Hops); n > 0 {
		out.RTTms = out.Hops[n-1].RTTms
	}
	return out, nil
}

// exitLink finds the alive inter-AS IP link joining two ASes,
// preferring the lowest link ID for determinism.
func (p *Prober) exitLink(from, to netsim.ASN, failed map[netsim.LinkID]bool) (netsim.IPLink, bool) {
	for _, l := range p.w.IPLinks {
		if l.IntraAS || failed[l.ID] {
			continue
		}
		a, b := l.ASLinkAB[0], l.ASLinkAB[1]
		if (a == from && b == to) || (a == to && b == from) {
			return l, true
		}
	}
	return netsim.IPLink{}, false
}

// orientLink returns (nearRouter, farRouter) of a link relative to the
// AS we are currently inside.
func (p *Prober) orientLink(l netsim.IPLink, insideAS netsim.ASN) (netsim.RouterID, netsim.RouterID) {
	if l.ASLinkAB[0] == insideAS {
		return l.A, l.B
	}
	return l.B, l.A
}

// intraASWalk moves from router cur to router target over alive
// intra-AS links of cur's AS, appending hops and accumulating one-way
// delay. Returns false when the backbone is partitioned.
func (p *Prober) intraASWalk(cur netsim.Router, target netsim.RouterID, failed map[netsim.LinkID]bool,
	out *Path, oneWayMs *float64, hops *int, rng *rand.Rand) (float64, bool) {
	if cur.ID == target {
		return 0, true
	}
	// Shortest-distance path (Dijkstra) over the AS's alive intra
	// links: IGP metrics track fiber latency, so geography decides the
	// internal route — this is what makes backbone failures show up as
	// latency shifts rather than invisible hop-count detours.
	adj := map[netsim.RouterID][]netsim.IPLink{}
	for _, l := range p.w.IPLinks {
		if !l.IntraAS || l.ASLinkAB[0] != cur.ASN || failed[l.ID] {
			continue
		}
		adj[l.A] = append(adj[l.A], l)
		adj[l.B] = append(adj[l.B], l)
	}
	type state struct {
		prev netsim.RouterID
		via  netsim.LinkID
		dist float64
		done bool
	}
	states := map[netsim.RouterID]*state{cur.ID: {dist: 0}}
	for {
		// Extract the closest unfinished router (deterministic
		// tie-break by ID). Router counts per AS are small, so the
		// linear scan beats heap bookkeeping.
		var u netsim.RouterID
		bestDist := math.Inf(1)
		for id, st := range states {
			if st.done {
				continue
			}
			if st.dist < bestDist || (st.dist == bestDist && id < u) {
				bestDist = st.dist
				u = id
			}
		}
		if math.IsInf(bestDist, 1) {
			return 0, false // target unreachable
		}
		if u == target {
			break
		}
		states[u].done = true
		links := adj[u]
		sort.Slice(links, func(i, j int) bool { return links[i].ID < links[j].ID })
		for _, l := range links {
			v := l.A
			if v == u {
				v = l.B
			}
			nd := states[u].dist + l.DistKm
			st, seen := states[v]
			if !seen {
				states[v] = &state{prev: u, via: l.ID, dist: nd}
			} else if !st.done && nd < st.dist {
				st.prev, st.via, st.dist = u, l.ID, nd
			}
		}
	}
	type hopState struct {
		r    netsim.RouterID
		prev netsim.RouterID
		via  netsim.LinkID
	}
	prev := map[netsim.RouterID]hopState{}
	for id, st := range states {
		prev[id] = hopState{r: id, prev: st.prev, via: st.via}
	}
	// Reconstruct and replay forward.
	var chain []hopState
	for at := target; at != cur.ID; at = prev[at].prev {
		chain = append(chain, prev[at])
	}
	var segMs float64
	for i := len(chain) - 1; i >= 0; i-- {
		st := chain[i]
		l, _ := p.w.LinkByID(st.via)
		d := geo.PropagationDelayMs(l.DistKm)
		*oneWayMs += d
		segMs += d
		r, _ := p.w.RouterByID(st.r)
		*hops++
		rtt := 2*(*oneWayMs) + float64(*hops)*perHopOverheadMs + rng.Float64()*0.4
		out.Hops = append(out.Hops, Hop{Router: r.ID, Addr: r.Addr, ASN: r.ASN, RTTms: rtt})
	}
	return segMs, true
}

// destRouter picks the origin AS's router in the destination prefix's
// country, falling back to the AS's first router.
func (p *Prober) destRouter(dst netip.Addr, origin netsim.ASN) (netsim.Router, bool) {
	if pfx, ok := p.w.PrefixFor(dst); ok {
		for _, pr := range p.w.Prefixes {
			if pr.CIDR == pfx {
				if r, ok := p.w.RouterIn(origin, pr.Country); ok {
					return r, true
				}
			}
		}
	}
	ids := p.w.RoutersOf(origin)
	if len(ids) == 0 {
		return netsim.Router{}, false
	}
	return p.w.RouterByID(ids[0])
}

// Probe is one (source router, destination address) measurement pair.
type Probe struct {
	Name string
	Src  netsim.RouterID
	Dst  netip.Addr
}

// Measurement is one timed RTT sample.
type Measurement struct {
	Probe   string
	Time    time.Time
	RTTms   float64
	Reached bool
	HopASNs []netsim.ASN
}

// Campaign describes a measurement run over a time window with failure
// events occurring mid-window.
type Campaign struct {
	Probes   []Probe
	Start    time.Time
	End      time.Time
	Interval time.Duration
	Events   []bgp.FailureEvent
	Seed     uint64
}

// Archive holds campaign results, ordered by time then probe name.
type Archive struct {
	Measurements []Measurement
}

// RunCampaign executes every probe at every interval tick. Failure
// events change the routing table and alive-link set from their
// timestamp onward (cumulative, no recovery).
func RunCampaign(w *netsim.World, c Campaign) (*Archive, error) {
	if len(c.Probes) == 0 {
		return nil, fmt.Errorf("traceroute: campaign has no probes")
	}
	if !c.Start.Before(c.End) || c.Interval <= 0 {
		return nil, fmt.Errorf("traceroute: invalid campaign window")
	}
	events := make([]bgp.FailureEvent, len(c.Events))
	copy(events, c.Events)
	sort.Slice(events, func(i, j int) bool { return events[i].At.Before(events[j].At) })

	prober := NewProber(w)
	arch := &Archive{}

	failed := map[netsim.LinkID]bool{}
	table := bgp.ComputeTable(w, failed)
	nextEvent := 0

	for at := c.Start; at.Before(c.End); at = at.Add(c.Interval) {
		for nextEvent < len(events) && !events[nextEvent].At.After(at) {
			for _, id := range events[nextEvent].Links {
				failed[id] = true
			}
			table = bgp.ComputeTable(w, failed)
			nextEvent++
		}
		for _, pr := range c.Probes {
			seed := c.Seed ^ hashProbe(pr.Name, at)
			path, err := prober.Trace(table, failed, pr.Src, pr.Dst, seed)
			if err != nil {
				return nil, fmt.Errorf("traceroute: probe %s: %w", pr.Name, err)
			}
			m := Measurement{Probe: pr.Name, Time: at, RTTms: path.RTTms, Reached: path.Reached}
			for _, h := range path.Hops {
				if len(m.HopASNs) == 0 || m.HopASNs[len(m.HopASNs)-1] != h.ASN {
					m.HopASNs = append(m.HopASNs, h.ASN)
				}
			}
			arch.Measurements = append(arch.Measurements, m)
		}
	}
	return arch, nil
}

func hashProbe(name string, at time.Time) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	var b [8]byte
	u := uint64(at.UnixNano())
	for i := 0; i < 8; i++ {
		b[i] = byte(u >> (8 * i))
	}
	h.Write(b[:])
	return h.Sum64()
}

// Series extracts the (times, RTTs) series of one probe, skipping
// unreached samples.
func (a *Archive) Series(probe string) (times []time.Time, rtts []float64) {
	for _, m := range a.Measurements {
		if m.Probe != probe || !m.Reached {
			continue
		}
		times = append(times, m.Time)
		rtts = append(rtts, m.RTTms)
	}
	return times, rtts
}

// Probes lists the distinct probe names in the archive, sorted.
func (a *Archive) Probes() []string {
	set := map[string]bool{}
	for _, m := range a.Measurements {
		set[m.Probe] = true
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LossRate returns the fraction of unreached samples for one probe.
func (a *Archive) LossRate(probe string) float64 {
	var total, lost float64
	for _, m := range a.Measurements {
		if m.Probe != probe {
			continue
		}
		total++
		if !m.Reached {
			lost++
		}
	}
	if total == 0 {
		return 0
	}
	return lost / total
}

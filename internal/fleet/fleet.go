// Package fleet implements ArachNet's sharded worker fleet: the
// DIMES-style execution tier where the netsim world is partitioned
// into vantage-point shards (internal/netsim.PartitionWorld), each
// owned by one Worker — a goroutine pool plus a local step cache —
// and pure capability steps are routed to the shard that owns their
// data instead of running on the coordinator.
//
// # Model
//
// A Fleet is a workflow.Dispatcher. For each step the engine offers,
// the fleet consults the step capability's Scatter spec:
//
//   - Split partitions the step's input map by shard ownership
//     (links by their A-endpoint country, addresses by geolocated
//     prefix, ...). Inputs that land on a single shard become a
//     shard-local dispatch to the owning worker; inputs spanning
//     shards become a scatter — one sub-request per owning worker,
//     executed concurrently.
//   - Merge is the gather step: it combines the per-shard partial
//     outputs deterministically (sorted, conflict-checked) so the
//     merged result is byte-identical to running the capability
//     unsharded on the coordinator, regardless of shard count.
//
// Capabilities without a spec, inputs Split cannot partition, and
// impure or coordinator-pinned steps are declined back to the engine,
// which runs them locally — correctness never depends on the fleet.
//
// # Transport seam
//
// Workers are reached exclusively through the Transport interface.
// The in-process implementation (NewLocalTransport) delivers requests
// over per-worker channels to goroutine pools in the same address
// space; a future gRPC transport implements the same three methods
// against remote processes, each holding its own shard and registry
// replica, without touching the dispatcher or the engine. Requests
// carry the capability name for exactly that reason — the in-process
// capability pointer is a fast path, not part of the contract.
package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"arachnet/internal/netsim"
	"arachnet/internal/registry"
)

// Scatter describes how one capability's steps scatter over shards
// and gather back.
type Scatter struct {
	// Split partitions the step input by owning shard. It also receives
	// the execution environment (opaque to this package), so
	// environment-reading capabilities — e.g. ones whose fan-out data
	// lives in the injected scenario rather than in a bound input — can
	// scatter too. Returning ok=false declines the step (inputs
	// missing, unpartitionable, or containing data no shard owns); the
	// decline condition must not depend on the shard count, or
	// differently-sized fleets would diverge. An empty part map also
	// declines.
	Split func(p *netsim.Partition, env any, in map[string]any) (parts map[int]map[string]any, ok bool)
	// Merge gathers per-shard outputs into the step's final output
	// map. It receives the partition, the environment, and the original
	// input map so order-sensitive capabilities can reconstruct input
	// (or environment) order. The merged result must be identical to
	// what the capability produces unsharded.
	Merge func(p *netsim.Partition, env any, orig map[string]any, parts map[int]map[string]any) (map[string]any, error)
}

// Config sizes a Fleet.
type Config struct {
	// Workers is the number of shards/workers (>= 1).
	Workers int
	// WorkerParallelism bounds concurrent requests per worker
	// (default 2).
	WorkerParallelism int
	// CacheEntries bounds each worker's local step cache (default
	// 512; 0 uses the default, negative disables worker caching).
	CacheEntries int
	// WrapTransport, if set, wraps the in-process transport —
	// the seam for instrumentation and alternative transports.
	WrapTransport func(Transport) Transport
}

// Fleet is a sharded worker pool implementing workflow.Dispatcher
// over a partitioned world.
type Fleet struct {
	part      *netsim.Partition
	workers   []*Worker
	transport Transport

	mu       sync.RWMutex
	scatters map[string]Scatter

	scattered  atomic.Uint64
	shardLocal atomic.Uint64
	declined   atomic.Uint64

	closeOnce sync.Once
}

// New partitions the world into cfg.Workers shards and starts one
// worker per shard.
func New(w *netsim.World, cfg Config) (*Fleet, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("fleet: %d workers < 1", cfg.Workers)
	}
	if cfg.WorkerParallelism < 1 {
		cfg.WorkerParallelism = 2
	}
	if cfg.CacheEntries == 0 {
		cfg.CacheEntries = 512
	}
	part, err := netsim.PartitionWorld(w, cfg.Workers)
	if err != nil {
		return nil, err
	}
	f := &Fleet{part: part, scatters: map[string]Scatter{}}
	f.workers = make([]*Worker, cfg.Workers)
	for i := range f.workers {
		f.workers[i] = newWorker(i, part.Shards[i], cfg.CacheEntries)
	}
	f.transport = NewLocalTransport(f.workers, cfg.WorkerParallelism)
	if cfg.WrapTransport != nil {
		f.transport = cfg.WrapTransport(f.transport)
	}
	return f, nil
}

// SetScatter registers (or replaces) the scatter spec for a
// capability. Steps of capabilities without a spec are declined.
func (f *Fleet) SetScatter(capability string, s Scatter) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.scatters[capability] = s
}

// Partition exposes the fleet's world partition (for planners and
// split functions).
func (f *Fleet) Partition() *netsim.Partition { return f.part }

// Workers returns the shard/worker count.
func (f *Fleet) Workers() int { return len(f.workers) }

// DispatchStep implements workflow.Dispatcher: split the input by
// shard ownership, fan sub-requests out over the transport, and
// gather the partial outputs with the capability's Merge.
func (f *Fleet) DispatchStep(ctx context.Context, capb *registry.Capability, in map[string]any, env any, fingerprint string) (map[string]any, bool, error) {
	f.mu.RLock()
	spec, ok := f.scatters[capb.Name]
	f.mu.RUnlock()
	if !ok || spec.Split == nil || spec.Merge == nil {
		f.declined.Add(1)
		return nil, false, nil
	}
	parts, ok := spec.Split(f.part, env, in)
	if !ok || len(parts) == 0 {
		f.declined.Add(1)
		return nil, false, nil
	}

	shards := make([]int, 0, len(parts))
	for s := range parts {
		if s < 0 || s >= len(f.workers) {
			f.declined.Add(1)
			return nil, false, nil
		}
		shards = append(shards, s)
	}
	sort.Ints(shards)

	type reply struct {
		shard int
		resp  Response
		err   error
	}
	replies := make(chan reply, len(shards))
	for _, s := range shards {
		s := s
		req := Request{
			Cap:        capb.Name,
			Capability: capb,
			In:         parts[s],
			Env:        env,
			Key:        workerKey(fingerprint, s),
		}
		go func() {
			resp, err := f.transport.Send(ctx, s, req)
			replies <- reply{shard: s, resp: resp, err: err}
		}()
	}
	outs := make(map[int]map[string]any, len(shards))
	var firstErr error
	for range shards {
		r := <-replies
		if r.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("fleet: worker %d: %w", r.shard, r.err)
		}
		outs[r.shard] = r.resp.Out
	}
	if firstErr != nil {
		return nil, true, firstErr
	}

	merged, err := spec.Merge(f.part, env, in, outs)
	if err != nil {
		return nil, true, fmt.Errorf("fleet: gather %s: %w", capb.Name, err)
	}
	if len(shards) == 1 {
		f.shardLocal.Add(1)
	} else {
		f.scattered.Add(1)
	}
	return merged, true, nil
}

// workerKey derives a worker-local cache key from a step fingerprint
// and the shard index. The per-shard input for a given fingerprint is
// deterministic (Split is a pure function of world and input), so the
// pair identifies the partial result exactly. An empty fingerprint
// disables worker caching for the request.
func workerKey(fingerprint string, shard int) string {
	if fingerprint == "" {
		return ""
	}
	return fmt.Sprintf("%s|%d", fingerprint, shard)
}

// ShardStats describes one worker's shard inventory and counters.
type ShardStats struct {
	Worker       int    `json:"worker"`
	Countries    int    `json:"countries"`
	Routers      int    `json:"routers"`
	Links        int    `json:"links"`
	Executed     uint64 `json:"executed"`
	CacheHits    uint64 `json:"cache_hits"`
	CacheEntries int    `json:"cache_entries"`
}

// WireStats counts remote-transport activity: what a network transport
// under the fleet did on the coordinator's behalf. The in-process
// transport reports none; a wire transport (internal/fleetwire)
// implements WireStatser and its numbers surface through Stats.Wire —
// and from there through core.CacheStats.Fleet and /v1/stats.
type WireStats struct {
	// Remotes is the configured remote worker count; Registered of
	// them passed the handshake and are currently usable, Rejected
	// failed it permanently (shard fingerprint or registry generation
	// mismatch).
	Remotes    int `json:"remotes"`
	Registered int `json:"registered"`
	Rejected   int `json:"rejected"`
	// Requests counts requests answered over the wire; Retries counts
	// re-sent attempts after transient failures; Failovers counts
	// requests that fell back to the in-process worker after the
	// remote was unusable or exhausted its retries.
	Requests  uint64 `json:"requests"`
	Retries   uint64 `json:"retries"`
	Failovers uint64 `json:"failovers"`
	// HealthFailures counts failed health probes.
	HealthFailures uint64 `json:"health_failures"`
	// BytesSent/BytesReceived count codec payload bytes on the wire.
	BytesSent     uint64 `json:"bytes_sent"`
	BytesReceived uint64 `json:"bytes_received"`
}

// WireStatser is implemented by transports that move requests over a
// network; Fleet.Stats probes for it.
type WireStatser interface {
	WireStats() WireStats
}

// Stats is a point-in-time snapshot of fleet activity.
type Stats struct {
	Workers    int          `json:"workers"`
	Scattered  uint64       `json:"scattered"`
	ShardLocal uint64       `json:"shard_local"`
	Declined   uint64       `json:"declined"`
	Shards     []ShardStats `json:"shards"`
	// Wire is present when the fleet's transport moves requests over a
	// network (see WireStatser).
	Wire *WireStats `json:"wire,omitempty"`
}

// Stats snapshots dispatch counters and per-worker shard inventory.
func (f *Fleet) Stats() Stats {
	st := Stats{
		Workers:    len(f.workers),
		Scattered:  f.scattered.Load(),
		ShardLocal: f.shardLocal.Load(),
		Declined:   f.declined.Load(),
		Shards:     make([]ShardStats, len(f.workers)),
	}
	for i, w := range f.workers {
		st.Shards[i] = w.stats()
	}
	if ws, ok := f.transport.(WireStatser); ok {
		w := ws.WireStats()
		st.Wire = &w
	}
	return st
}

// Close shuts the transport down. Idempotent.
func (f *Fleet) Close() {
	f.closeOnce.Do(func() { f.transport.Close() })
}

package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"arachnet/internal/registry"
)

// Request is one unit of work sent to a worker: execute a capability
// over a shard-local slice of a step's input.
//
// Serialization boundary: exactly three fields cross a process
// boundary — Cap (the capability name, resolved against the worker's
// own registry replica), In (the shard-local input map, value-encoded
// by the transport's codec), and Key (an opaque cache key the worker
// uses verbatim). Capability and Env are in-process-only fast paths: a
// remote transport must drop them on the wire, and the receiving
// worker re-resolves Cap and substitutes its own environment. A worker
// that cannot resolve Cap or decode In must answer with a typed error,
// never a panic (see internal/fleetwire's wire errors).
type Request struct {
	// Cap names the capability; it is the wire identity of the work.
	Cap string
	// Capability is the in-process fast path for Cap. It does not
	// cross the wire; remote workers resolve Cap themselves.
	Capability *registry.Capability
	// In is the shard-local input map produced by Scatter.Split. Its
	// values must survive the transport codec's round-trip.
	In map[string]any
	// Env is the execution environment handed to the capability. It
	// does not cross the wire; a remote worker substitutes its own
	// environment (identical world by construction).
	Env any
	// Key caches the partial result in the worker's local store; ""
	// disables caching for this request.
	Key string
}

// Response is a worker's answer.
type Response struct {
	// Out is the capability's output map (partial, shard-scoped).
	Out map[string]any
	// CacheHit reports the result was served from the worker's local
	// step cache.
	CacheHit bool
}

// Transport moves Requests to workers. Implementations must be safe
// for concurrent Send calls; Send must honor ctx cancellation. This
// is the multi-process seam: NewLocalTransport runs workers in this
// address space, and a network transport (gRPC) slots in behind the
// same interface without dispatcher changes.
type Transport interface {
	// Send executes req on the given worker and returns its response.
	Send(ctx context.Context, worker int, req Request) (Response, error)
	// Workers reports how many workers the transport reaches.
	Workers() int
	// Close releases transport resources; subsequent Sends fail.
	Close() error
}

// ErrTransportClosed is returned by Send after Close.
var ErrTransportClosed = errors.New("fleet: transport closed")

// localTransport delivers requests over per-worker channels to
// goroutine pools in the same process.
type localTransport struct {
	workers []*Worker
	reqs    []chan envelope
	done    chan struct{}
	once    sync.Once
	wg      sync.WaitGroup
}

type envelope struct {
	ctx   context.Context
	req   Request
	reply chan result
}

type result struct {
	resp Response
	err  error
}

// NewLocalTransport starts parallelism serving goroutines per worker
// and returns the transport reaching them.
func NewLocalTransport(workers []*Worker, parallelism int) Transport {
	if parallelism < 1 {
		parallelism = 1
	}
	t := &localTransport{
		workers: workers,
		reqs:    make([]chan envelope, len(workers)),
		done:    make(chan struct{}),
	}
	for i, w := range workers {
		ch := make(chan envelope)
		t.reqs[i] = ch
		for p := 0; p < parallelism; p++ {
			t.wg.Add(1)
			go t.serve(w, ch)
		}
	}
	return t
}

func (t *localTransport) serve(w *Worker, ch chan envelope) {
	defer t.wg.Done()
	for {
		select {
		case <-t.done:
			return
		case env := <-ch:
			resp, err := w.Execute(env.ctx, env.req)
			env.reply <- result{resp: resp, err: err}
		}
	}
}

func (t *localTransport) Send(ctx context.Context, worker int, req Request) (Response, error) {
	if worker < 0 || worker >= len(t.workers) {
		return Response{}, fmt.Errorf("fleet: no worker %d", worker)
	}
	env := envelope{ctx: ctx, req: req, reply: make(chan result, 1)}
	select {
	case t.reqs[worker] <- env:
	case <-t.done:
		return Response{}, ErrTransportClosed
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
	select {
	case r := <-env.reply:
		return r.resp, r.err
	case <-ctx.Done():
		return Response{}, ctx.Err()
	}
}

func (t *localTransport) Workers() int { return len(t.workers) }

func (t *localTransport) Close() error {
	t.once.Do(func() { close(t.done) })
	t.wg.Wait()
	return nil
}

package fleet

import (
	"container/list"
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"arachnet/internal/netsim"
	"arachnet/internal/registry"
)

// Worker owns one world shard and executes shard-local capability
// requests with a bounded local result cache. Workers are only
// reached through a Transport.
type Worker struct {
	index int
	shard netsim.Shard

	executed  atomic.Uint64
	cacheHits atomic.Uint64

	cacheMu    sync.Mutex
	cacheCap   int
	cacheOrder *list.List               // front = most recent
	cacheByKey map[string]*list.Element // value: *workerEntry
}

type workerEntry struct {
	key string
	out map[string]any
}

// NewWorker builds a standalone worker over one shard with a local
// step cache of cacheEntries results (<= 0 disables caching). The
// in-process fleet builds its workers itself; this constructor is for
// remote worker processes (cmd/arachnet-worker) that own a single
// shard behind a network transport.
func NewWorker(index int, shard netsim.Shard, cacheEntries int) *Worker {
	return newWorker(index, shard, cacheEntries)
}

func newWorker(index int, shard netsim.Shard, cacheEntries int) *Worker {
	w := &Worker{index: index, shard: shard, cacheCap: cacheEntries}
	if cacheEntries > 0 {
		w.cacheOrder = list.New()
		w.cacheByKey = make(map[string]*list.Element)
	}
	return w
}

// Index returns the worker's shard index.
func (w *Worker) Index() int { return w.index }

// Shard returns the worker's shard inventory.
func (w *Worker) Shard() netsim.Shard { return w.shard }

// Execute runs one request: serve from the local cache when keyed,
// otherwise invoke the capability and remember the partial result.
// The capability pointer must already be resolved (req.Capability);
// transports that received the request over a wire resolve req.Cap
// against their own registry first. Panics are contained and returned
// as errors.
func (w *Worker) Execute(ctx context.Context, req Request) (Response, error) {
	if req.Key != "" {
		if out, ok := w.cacheGet(req.Key); ok {
			w.cacheHits.Add(1)
			return Response{Out: out, CacheHit: true}, nil
		}
	}
	capb := req.Capability
	if capb == nil {
		return Response{}, fmt.Errorf("worker %d: capability %q not resolvable", w.index, req.Cap)
	}
	call := &registry.Call{In: req.In, Out: map[string]any{}, Env: req.Env, Ctx: ctx}
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("worker %d: capability %q panicked: %v", w.index, req.Cap, r)
			}
		}()
		return capb.Impl(call)
	}()
	if err != nil {
		return Response{}, err
	}
	w.executed.Add(1)
	if req.Key != "" {
		w.cachePut(req.Key, call.Out)
	}
	return Response{Out: call.Out}, nil
}

func (w *Worker) cacheGet(key string) (map[string]any, bool) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	if w.cacheByKey == nil {
		return nil, false
	}
	el, ok := w.cacheByKey[key]
	if !ok {
		return nil, false
	}
	w.cacheOrder.MoveToFront(el)
	return el.Value.(*workerEntry).out, true
}

func (w *Worker) cachePut(key string, out map[string]any) {
	w.cacheMu.Lock()
	defer w.cacheMu.Unlock()
	if w.cacheByKey == nil {
		return
	}
	if el, ok := w.cacheByKey[key]; ok {
		el.Value.(*workerEntry).out = out
		w.cacheOrder.MoveToFront(el)
		return
	}
	w.cacheByKey[key] = w.cacheOrder.PushFront(&workerEntry{key: key, out: out})
	for w.cacheOrder.Len() > w.cacheCap {
		el := w.cacheOrder.Back()
		w.cacheOrder.Remove(el)
		delete(w.cacheByKey, el.Value.(*workerEntry).key)
	}
}

// Stats snapshots the worker's shard inventory and counters.
func (w *Worker) Stats() ShardStats { return w.stats() }

func (w *Worker) stats() ShardStats {
	w.cacheMu.Lock()
	entries := 0
	if w.cacheOrder != nil {
		entries = w.cacheOrder.Len()
	}
	w.cacheMu.Unlock()
	return ShardStats{
		Worker:       w.index,
		Countries:    len(w.shard.Countries),
		Routers:      w.shard.Routers,
		Links:        w.shard.Links,
		Executed:     w.executed.Load(),
		CacheHits:    w.cacheHits.Load(),
		CacheEntries: entries,
	}
}

package fleet

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"
	"testing"

	"arachnet/internal/netsim"
	"arachnet/internal/registry"
)

// countLinks is a toy pure capability: input "links" []netsim.LinkID,
// outputs "n" (count) and "codes" (sorted owning-country codes).
func countLinksCap(w *netsim.World) *registry.Capability {
	return &registry.Capability{
		Name: "test.count_links",
		Pure: true,
		Impl: func(c *registry.Call) error {
			links := c.In["links"].([]netsim.LinkID)
			codes := map[string]bool{}
			for _, id := range links {
				l, ok := w.LinkByID(id)
				if !ok {
					return fmt.Errorf("unknown link %d", id)
				}
				codes[w.CountryOfRouter(l.A)] = true
			}
			out := make([]string, 0, len(codes))
			for cc := range codes {
				out = append(out, cc)
			}
			sort.Strings(out)
			c.Out["n"] = len(links)
			c.Out["codes"] = out
			return nil
		},
	}
}

// countLinksScatter splits "links" by owning shard; merge sums counts
// and unions the code sets, sorted.
func countLinksScatter() Scatter {
	return Scatter{
		Split: func(p *netsim.Partition, _ any, in map[string]any) (map[int]map[string]any, bool) {
			links, ok := in["links"].([]netsim.LinkID)
			if !ok {
				return nil, false
			}
			parts := map[int]map[string]any{}
			for _, id := range links {
				s := p.ShardOfLink(id)
				if s < 0 {
					return nil, false
				}
				part := parts[s]
				if part == nil {
					part = map[string]any{"links": []netsim.LinkID(nil)}
					parts[s] = part
				}
				part["links"] = append(part["links"].([]netsim.LinkID), id)
			}
			return parts, true
		},
		Merge: func(p *netsim.Partition, _ any, orig map[string]any, parts map[int]map[string]any) (map[string]any, error) {
			n := 0
			codes := map[string]bool{}
			for _, out := range parts {
				n += out["n"].(int)
				for _, cc := range out["codes"].([]string) {
					codes[cc] = true
				}
			}
			merged := make([]string, 0, len(codes))
			for cc := range codes {
				merged = append(merged, cc)
			}
			sort.Strings(merged)
			return map[string]any{"n": n, "codes": merged}, nil
		},
	}
}

func testWorld(t *testing.T) *netsim.World {
	t.Helper()
	w, err := netsim.Generate(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func allLinks(w *netsim.World) []netsim.LinkID {
	ids := make([]netsim.LinkID, len(w.IPLinks))
	for i := range w.IPLinks {
		ids[i] = w.IPLinks[i].ID
	}
	return ids
}

func TestScatterGatherMatchesLocal(t *testing.T) {
	w := testWorld(t)
	capb := countLinksCap(w)

	// Ground truth: run the capability unsharded.
	local := &registry.Call{In: map[string]any{"links": allLinks(w)}, Out: map[string]any{}}
	if err := capb.Impl(local); err != nil {
		t.Fatal(err)
	}

	for _, n := range []int{1, 2, 4} {
		f, err := New(w, Config{Workers: n})
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		f.SetScatter(capb.Name, countLinksScatter())

		out, handled, err := f.DispatchStep(context.Background(), capb, map[string]any{"links": allLinks(w)}, nil, "fp1")
		if err != nil || !handled {
			t.Fatalf("fleet %d: handled=%v err=%v", n, handled, err)
		}
		if out["n"] != local.Out["n"] {
			t.Fatalf("fleet %d: n=%v, local %v", n, out["n"], local.Out["n"])
		}
		if fmt.Sprint(out["codes"]) != fmt.Sprint(local.Out["codes"]) {
			t.Fatalf("fleet %d: codes=%v, local %v", n, out["codes"], local.Out["codes"])
		}

		st := f.Stats()
		if n == 1 {
			if st.ShardLocal != 1 || st.Scattered != 0 {
				t.Fatalf("fleet 1 stats: %+v", st)
			}
		} else if st.Scattered != 1 {
			t.Fatalf("fleet %d stats: %+v", n, st)
		}
	}
}

func TestDeclineUnknownCapability(t *testing.T) {
	w := testWorld(t)
	f, err := New(w, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	capb := countLinksCap(w)
	_, handled, err := f.DispatchStep(context.Background(), capb, map[string]any{"links": allLinks(w)}, nil, "")
	if handled || err != nil {
		t.Fatalf("expected decline, got handled=%v err=%v", handled, err)
	}
	if st := f.Stats(); st.Declined != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestDeclineUnpartitionableInput(t *testing.T) {
	w := testWorld(t)
	f, err := New(w, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	capb := countLinksCap(w)
	f.SetScatter(capb.Name, countLinksScatter())
	// Wrong input type → Split declines → engine would run locally.
	_, handled, err := f.DispatchStep(context.Background(), capb, map[string]any{"links": "nope"}, nil, "")
	if handled || err != nil {
		t.Fatalf("expected decline, got handled=%v err=%v", handled, err)
	}
}

func TestWorkerCacheHit(t *testing.T) {
	w := testWorld(t)
	f, err := New(w, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	capb := countLinksCap(w)
	f.SetScatter(capb.Name, countLinksScatter())

	in := map[string]any{"links": allLinks(w)}
	for i := 0; i < 2; i++ {
		if _, handled, err := f.DispatchStep(context.Background(), capb, in, nil, "fpX"); !handled || err != nil {
			t.Fatalf("round %d: handled=%v err=%v", i, handled, err)
		}
	}
	st := f.Stats()
	var executed, hits, entries uint64
	for _, s := range st.Shards {
		executed += s.Executed
		hits += s.CacheHits
		entries += uint64(s.CacheEntries)
	}
	if executed != 2 || hits != 2 || entries != 2 {
		t.Fatalf("executed=%d hits=%d entries=%d, want 2/2/2 (%+v)", executed, hits, entries, st.Shards)
	}

	// An empty fingerprint must bypass worker caching entirely.
	if _, handled, err := f.DispatchStep(context.Background(), capb, in, nil, ""); !handled || err != nil {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	st = f.Stats()
	var hits2 uint64
	for _, s := range st.Shards {
		hits2 += s.CacheHits
	}
	if hits2 != hits {
		t.Fatalf("uncacheable dispatch hit the worker cache: %d → %d", hits, hits2)
	}
}

// countingTransport proves the transport seam: a wrapper sees every
// Send without the dispatcher knowing.
type countingTransport struct {
	Transport
	sends atomic.Uint64
}

func (c *countingTransport) Send(ctx context.Context, worker int, req Request) (Response, error) {
	c.sends.Add(1)
	return c.Transport.Send(ctx, worker, req)
}

func TestTransportSeam(t *testing.T) {
	w := testWorld(t)
	var ct *countingTransport
	f, err := New(w, Config{
		Workers: 3,
		WrapTransport: func(inner Transport) Transport {
			ct = &countingTransport{Transport: inner}
			return ct
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	capb := countLinksCap(w)
	f.SetScatter(capb.Name, countLinksScatter())
	if _, handled, err := f.DispatchStep(context.Background(), capb, map[string]any{"links": allLinks(w)}, nil, ""); !handled || err != nil {
		t.Fatalf("handled=%v err=%v", handled, err)
	}
	if got := ct.sends.Load(); got != 3 {
		t.Fatalf("transport saw %d sends, want one per shard (3)", got)
	}
}

func TestCloseFailsSends(t *testing.T) {
	w := testWorld(t)
	f, err := New(w, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	capb := countLinksCap(w)
	f.SetScatter(capb.Name, countLinksScatter())
	f.Close()
	f.Close() // idempotent
	_, handled, err := f.DispatchStep(context.Background(), capb, map[string]any{"links": allLinks(w)}, nil, "")
	if !handled || err == nil {
		t.Fatalf("expected transport-closed error, got handled=%v err=%v", handled, err)
	}
}

func TestContextCancellation(t *testing.T) {
	w := testWorld(t)
	f, err := New(w, Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	capb := countLinksCap(w)
	f.SetScatter(capb.Name, countLinksScatter())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, handled, err := f.DispatchStep(ctx, capb, map[string]any{"links": allLinks(w)}, nil, "")
	if !handled || err == nil {
		t.Fatalf("expected cancellation error, got handled=%v err=%v", handled, err)
	}
}

// Continuous monitoring: Subscribe turns one query into a standing
// query — a continuously maintained result instead of a one-shot
// report. A Subscription re-executes automatically whenever the
// environment mutates (scenario injection bumps the epoch) or the
// registry evolves (curator promotions bump the generation): both
// expose a Watch seam that pokes the subscription's wake-up channel,
// so subscribers are pushed to, never polling. Re-execution is
// incremental — the facet-scoped cache keys installed by the system's
// env keyer (see system.go) mean only steps whose environment view or
// upstream fingerprints changed actually run; everything else replays
// from the step cache with StepStat.Cached set.
//
// Subscribers consume typed delta events (SubEvent), not full reports:
// SubscriptionStarted carries the baseline, ResultChanged a structured
// diff of step-output paths, AnomalyAppeared/AnomalyCleared track the
// anomaly-signal set extracted from the result (latency shifts, BGP
// bursts, cable-failure verdicts), ResultUnchanged is the heartbeat
// for wake-ups whose re-execution converged to the same result, and
// SubscriptionClosed terminates every stream. The full current report
// stays available via Subscription.Current.
package core

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"strings"
	"sync"
	"time"
	"unicode/utf8"

	"arachnet/internal/bgp"
)

// Re-execution causes carried by ResultChanged/ResultUnchanged.
const (
	// CauseEnvironment: the environment's mutation epoch bumped
	// (scenario injection).
	CauseEnvironment = "environment"
	// CauseRegistry: the registry generation changed (capability
	// registered or curator promotion).
	CauseRegistry = "registry"
)

// SubEvent is one observable occurrence in the lifecycle of a standing
// query. Concrete events are pointers to the structs below — type-
// switch to consume them, exactly like Event. Every subscription's
// stream starts with SubscriptionStarted and ends with
// SubscriptionClosed.
type SubEvent interface {
	subMeta() *SubEventMeta
}

// SubEventMeta is the header common to every subscription event.
type SubEventMeta struct {
	// SubID identifies the subscription within its System.
	SubID uint64
	// Query is the standing query's natural-language text.
	Query string
	// Seq is the 0-based emission index within the subscription.
	Seq int
	// Revision counts re-executions: 0 is the baseline run,
	// incremented once per wake-up that re-executed the query.
	Revision int
	// Time is when the event was emitted.
	Time time.Time
}

func (m *SubEventMeta) subMeta() *SubEventMeta { return m }

// SubscriptionStarted is the first event of every subscription: the
// baseline report (possibly partial) and the baseline run's error. A
// failed baseline does not close the subscription — the failure is the
// baseline state, and a later environment change that makes the query
// succeed surfaces as ResultChanged.
type SubscriptionStarted struct {
	SubEventMeta
	Report *Report
	Err    error
}

// ResultChanged reports that a re-execution produced a different
// result: a structured delta, not the full report (use
// Subscription.Current for that).
type ResultChanged struct {
	SubEventMeta
	// Cause names what woke the subscription: CauseEnvironment,
	// CauseRegistry, or "environment+registry" when both changed
	// before the run.
	Cause string
	Delta *ResultDelta
}

// ResultUnchanged is the heartbeat: the subscription woke up,
// re-executed, and converged to an identical result. StepsCached
// vs StepsRun shows how much of the re-execution was replayed.
type ResultUnchanged struct {
	SubEventMeta
	Cause       string
	StepsRun    int
	StepsCached int
}

// AnomalyAppeared reports an anomaly signal present in the current
// result that was absent from the previous one. Baseline anomalies are
// emitted at revision 0, right after SubscriptionStarted.
type AnomalyAppeared struct {
	SubEventMeta
	Anomaly AnomalySignal
}

// AnomalyCleared reports an anomaly signal that vanished from the
// result.
type AnomalyCleared struct {
	SubEventMeta
	Anomaly AnomalySignal
}

// SubscriptionClosed is the terminal event: explicit Close, context
// cancellation, or System shutdown. It is always the last event; the
// Events channels close after it.
type SubscriptionClosed struct {
	SubEventMeta
	Reason string
}

// AnomalySignal is one anomaly-shaped finding extracted from a result:
// a detected latency shift (traceroute), a BGP update burst, or a
// cable-failure verdict (forensic synthesis). Key is the stable
// identity deltas are computed over — kind plus the producing
// step-output path.
type AnomalySignal struct {
	Key    string `json:"key"`
	Kind   string `json:"kind"` // "latency-shift", "bgp-burst", "cable-failure"
	Source string `json:"source"`
	Detail string `json:"detail"`
}

// OutputDiff is one changed step-output path in a ResultDelta, with
// canonically rendered (and possibly truncated) before/after values.
type OutputDiff struct {
	Path   string `json:"path"`
	Before string `json:"before"`
	After  string `json:"after"`
}

// ResultDelta is the structured difference between two consecutive
// runs of a standing query, computed over the result's step-output
// paths ("stepID.port"). All lists are sorted by path, so the same
// transition always renders the same delta.
type ResultDelta struct {
	// ErrBefore/ErrAfter capture error-state transitions (a query
	// failing before data arrives, succeeding after an injection).
	ErrBefore string `json:"err_before,omitempty"`
	ErrAfter  string `json:"err_after,omitempty"`
	// Added/Removed are step-output paths present in only one run.
	Added   []string `json:"added,omitempty"`
	Removed []string `json:"removed,omitempty"`
	// Changed lists paths whose value changed.
	Changed []OutputDiff `json:"changed,omitempty"`
	// StepsRun/StepsCached count fresh executions vs step-cache
	// replays in the new run — the observable incrementality of the
	// re-execution.
	StepsRun    int `json:"steps_run"`
	StepsCached int `json:"steps_cached"`
}

func (d *ResultDelta) empty() bool {
	return d.ErrBefore == d.ErrAfter &&
		len(d.Added) == 0 && len(d.Removed) == 0 && len(d.Changed) == 0
}

// submitRetryDelay paces re-submission when a shared scheduler's queue
// is full: subscription re-executions are background work and yield to
// interactive jobs rather than failing the subscription.
const submitRetryDelay = 20 * time.Millisecond

// Subscription is one standing query. All methods are safe for
// concurrent use.
type Subscription struct {
	id    uint64
	query string
	opts  []AskOption
	sys   *System

	// poke is the wake-up channel registered with the environment and
	// registry watchers; capacity 1 coalesces mutation bursts.
	poke   chan struct{}
	cancel context.CancelFunc
	// closed is closed when the watch loop has fully exited (terminal
	// event recorded); it also gates the Events replay grace period.
	closed chan struct{}

	mu       sync.Mutex
	cond     *sync.Cond
	events   []SubEvent
	seq      int
	revision int
	current  *Report
	err      error
	done     bool
	reason   string
}

// ID is the subscription's identifier, unique per System.
func (sub *Subscription) ID() uint64 { return sub.id }

// Query returns the standing query's natural-language text.
func (sub *Subscription) Query() string { return sub.query }

// Done returns a channel closed once the subscription is fully closed
// and its terminal event recorded.
func (sub *Subscription) Done() <-chan struct{} { return sub.closed }

// Current returns the latest report and run error — what the last
// (re-)execution produced.
func (sub *Subscription) Current() (*Report, error) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.current, sub.err
}

// Revision returns how many times the standing query has re-executed
// (0 = baseline only).
func (sub *Subscription) Revision() int {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.revision
}

// Close stops the standing query: the watch loop exits, a
// SubscriptionClosed event terminates every stream, and the
// subscription is dropped from the System's table. Close is
// idempotent and blocks until the terminal event is recorded.
func (sub *Subscription) Close() { sub.closeWith("closed") }

func (sub *Subscription) closeWith(reason string) {
	sub.mu.Lock()
	if sub.reason == "" {
		sub.reason = reason
	}
	sub.mu.Unlock()
	sub.cancel()
	<-sub.closed
}

// Events returns a channel replaying the subscription's event stream
// from the beginning — late subscribers see the full history including
// the baseline SubscriptionStarted — then following it live until the
// terminal SubscriptionClosed, after which the channel closes. Each
// call gets an independent channel. As with Job.Events, a subscriber
// that stops draining after the subscription closes forfeits remaining
// events after a grace period.
func (sub *Subscription) Events() <-chan SubEvent {
	ch := make(chan SubEvent, streamBuffer)
	go func() {
		defer close(ch)
		i := 0
		for {
			sub.mu.Lock()
			for i == len(sub.events) && !sub.done {
				sub.cond.Wait()
			}
			if i == len(sub.events) {
				sub.mu.Unlock()
				return
			}
			ev := sub.events[i]
			i++
			sub.mu.Unlock()
			if !sub.deliver(ch, ev) {
				return
			}
		}
	}()
	return ch
}

// deliver mirrors Job.deliver: prefer delivery, block while the
// subscription is live (the event log decouples the watch loop), and
// after close give slow subscribers a bounded grace period.
func (sub *Subscription) deliver(ch chan<- SubEvent, ev SubEvent) bool {
	select {
	case ch <- ev:
		return true
	default:
	}
	select {
	case ch <- ev:
		return true
	case <-sub.closed:
	}
	t := time.NewTimer(subscriberGrace)
	defer t.Stop()
	select {
	case ch <- ev:
		return true
	case <-t.C:
		return false
	}
}

// record stamps and appends one event, waking stream subscribers.
func (sub *Subscription) record(ev SubEvent) {
	sub.mu.Lock()
	m := ev.subMeta()
	m.SubID, m.Query, m.Seq, m.Revision, m.Time = sub.id, sub.query, sub.seq, sub.revision, time.Now()
	sub.seq++
	sub.events = append(sub.events, ev)
	sub.cond.Broadcast()
	sub.mu.Unlock()
}

// subTable indexes a System's live subscriptions.
type subTable struct {
	mu     sync.Mutex
	nextID uint64
	subs   map[uint64]*Subscription
}

// Subscribe registers a standing query: it runs the query once
// synchronously to establish the baseline (recorded as the stream's
// SubscriptionStarted event — a baseline failure is a valid baseline
// state, not a Subscribe error), then watches the environment and
// registry and re-executes on every change until ctx is cancelled,
// Close is called, or the System shuts down. Per-call options apply to
// every re-execution; curation is always disabled for subscription
// runs so a standing query cannot keep triggering its own promotions.
//
// When the System is attached to a shared Scheduler (SetScheduler),
// re-executions are admission-controlled: each run is Submitted as a
// job and competes under the System's scheduling class, retrying
// quietly while the queue is full. Otherwise runs execute directly.
func (s *System) Subscribe(ctx context.Context, query string, opts ...AskOption) (*Subscription, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if strings.TrimSpace(query) == "" {
		return nil, fmt.Errorf("core: empty subscription query")
	}
	s.jobs.mu.Lock()
	closed := s.jobs.closed
	s.jobs.mu.Unlock()
	if closed {
		return nil, ErrJobsClosed
	}

	lctx, cancel := context.WithCancel(ctx)
	sub := &Subscription{
		query:  query,
		opts:   opts,
		sys:    s,
		poke:   make(chan struct{}, 1),
		cancel: cancel,
		closed: make(chan struct{}),
	}
	sub.cond = sync.NewCond(&sub.mu)

	s.subs.mu.Lock()
	s.subs.nextID++
	sub.id = s.subs.nextID
	if s.subs.subs == nil {
		s.subs.subs = map[uint64]*Subscription{}
	}
	s.subs.subs[sub.id] = sub
	s.subs.mu.Unlock()

	// Watch before capturing the baseline's (generation, fingerprint):
	// a mutation landing between capture and the first wait leaves a
	// pending poke, so it can never be missed.
	s.env.Watch(sub.poke)
	s.reg.Watch(sub.poke)

	gen, fp := s.reg.Generation(), s.env.Fingerprint()
	rep, err := sub.execute(lctx)
	if err != nil && errors.Is(err, ErrJobsClosed) {
		s.dropSubscription(sub)
		cancel()
		close(sub.closed)
		return nil, ErrJobsClosed
	}
	sub.mu.Lock()
	sub.current, sub.err = rep, err
	sub.mu.Unlock()
	sub.record(&SubscriptionStarted{Report: rep, Err: err})
	anoms := extractAnomalies(rep)
	for _, a := range anoms {
		sub.record(&AnomalyAppeared{Anomaly: a})
	}

	go sub.loop(lctx, gen, fp, anoms)
	return sub, nil
}

// Subscriptions snapshots the System's live standing queries in
// creation order.
func (s *System) Subscriptions() []*Subscription {
	s.subs.mu.Lock()
	defer s.subs.mu.Unlock()
	out := make([]*Subscription, 0, len(s.subs.subs))
	for _, sub := range s.subs.subs {
		out = append(out, sub)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

// Subscription returns the live standing query with the given ID, or
// nil once it has closed.
func (s *System) Subscription(id uint64) *Subscription {
	s.subs.mu.Lock()
	defer s.subs.mu.Unlock()
	return s.subs.subs[id]
}

func (s *System) dropSubscription(sub *Subscription) {
	s.env.Unwatch(sub.poke)
	s.reg.Unwatch(sub.poke)
	s.subs.mu.Lock()
	delete(s.subs.subs, sub.id)
	s.subs.mu.Unlock()
}

// loop is the watch loop: wait for a poke, attribute it, re-execute,
// diff, emit. lastGen/lastFP (and the anomaly set) are the state the
// previous run was computed against — captured BEFORE each run, so a
// mutation racing a run leaves the captured state stale, the next poke
// finds a difference, and the subscription converges to the final
// state rather than serving a stale result.
func (sub *Subscription) loop(ctx context.Context, lastGen uint64, lastFP string, lastAnoms []AnomalySignal) {
	s := sub.sys
	defer close(sub.closed)
	defer s.dropSubscription(sub)
	for {
		select {
		case <-ctx.Done():
			sub.finish(sub.closeReason())
			return
		case <-sub.poke:
		}

		gen, fp := s.reg.Generation(), s.env.Fingerprint()
		cause := changeCause(lastGen, gen, lastFP, fp)
		if cause == "" {
			continue // coalesced or spurious wake-up: nothing changed
		}
		rep, err := sub.execute(ctx)
		if err != nil && errors.Is(err, ErrJobsClosed) {
			sub.finish("system closed")
			return
		}
		if ctx.Err() != nil {
			sub.finish(sub.closeReason())
			return
		}
		lastGen, lastFP = gen, fp

		sub.mu.Lock()
		prevRep, prevErr := sub.current, sub.err
		sub.current, sub.err = rep, err
		sub.revision++
		sub.mu.Unlock()

		delta := computeDelta(prevRep, prevErr, rep, err)
		if delta.empty() {
			sub.record(&ResultUnchanged{
				Cause: cause, StepsRun: delta.StepsRun, StepsCached: delta.StepsCached,
			})
		} else {
			sub.record(&ResultChanged{Cause: cause, Delta: delta})
		}
		anoms := extractAnomalies(rep)
		appeared, cleared := diffAnomalies(lastAnoms, anoms)
		for _, a := range appeared {
			sub.record(&AnomalyAppeared{Anomaly: a})
		}
		for _, a := range cleared {
			sub.record(&AnomalyCleared{Anomaly: a})
		}
		lastAnoms = anoms
	}
}

// closeReason resolves the terminal reason, defaulting to the parent
// context's cancellation when Close was not called explicitly.
func (sub *Subscription) closeReason() string {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.reason != "" {
		return sub.reason
	}
	return "context cancelled"
}

// finish records the terminal event and marks every stream done.
func (sub *Subscription) finish(reason string) {
	sub.record(&SubscriptionClosed{Reason: reason})
	sub.mu.Lock()
	sub.done = true
	sub.cond.Broadcast()
	sub.mu.Unlock()
}

// execute runs one (re-)execution of the standing query. Curation is
// forced off — a subscription that promoted composites on every re-run
// would bump the registry generation and wake itself forever. On a
// shared scheduler the run is admission-controlled via Submit,
// backing off while the queue is full.
func (sub *Subscription) execute(ctx context.Context) (*Report, error) {
	opts := make([]AskOption, 0, len(sub.opts)+1)
	opts = append(opts, sub.opts...)
	opts = append(opts, AskWithoutCuration())
	if !sub.sys.sharedScheduler() {
		return sub.sys.Ask(ctx, sub.query, opts...)
	}
	for {
		j, err := sub.sys.Submit(ctx, sub.query, opts...)
		if err == nil {
			return j.Wait(ctx)
		}
		if !errors.Is(err, ErrJobQueueFull) {
			return nil, err
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(submitRetryDelay):
		}
	}
}

// sharedScheduler reports whether the System is attached to a shared
// Scheduler (serving tier): subscription runs must then pass admission
// control instead of bypassing the queue.
func (s *System) sharedScheduler() bool {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	return s.jobs.sched != nil && !s.jobs.private
}

// changeCause attributes a wake-up to what actually changed.
func changeCause(prevGen, gen uint64, prevFP, fp string) string {
	switch {
	case gen != prevGen && fp != prevFP:
		return CauseEnvironment + "+" + CauseRegistry
	case fp != prevFP:
		return CauseEnvironment
	case gen != prevGen:
		return CauseRegistry
	default:
		return ""
	}
}

// maxDiffValue bounds the rendered before/after values carried by an
// OutputDiff; full values remain available via Subscription.Current.
const maxDiffValue = 200

// computeDelta diffs two consecutive runs over their step-output
// paths. Values are rendered canonically (JSON sorts map keys and
// dereferences pointers — important because cached steps share output
// pointers across runs), so equal values always render equal and the
// same transition always produces the same delta.
func computeDelta(prevRep *Report, prevErr error, rep *Report, err error) *ResultDelta {
	d := &ResultDelta{}
	if prevErr != nil {
		d.ErrBefore = prevErr.Error()
	}
	if err != nil {
		d.ErrAfter = err.Error()
	}
	prev := resultValues(prevRep)
	cur := resultValues(rep)
	paths := make([]string, 0, len(prev)+len(cur))
	for p := range prev {
		paths = append(paths, p)
	}
	for p := range cur {
		if _, ok := prev[p]; !ok {
			paths = append(paths, p)
		}
	}
	sort.Strings(paths)
	for _, p := range paths {
		before, hadBefore := prev[p]
		after, hasAfter := cur[p]
		switch {
		case !hadBefore:
			d.Added = append(d.Added, p)
		case !hasAfter:
			d.Removed = append(d.Removed, p)
		case before != after:
			d.Changed = append(d.Changed, OutputDiff{
				Path: p, Before: truncate(before), After: truncate(after),
			})
		}
	}
	if rep != nil && rep.Result != nil {
		for _, st := range rep.Result.Steps {
			if st.Cached {
				d.StepsCached++
			} else {
				d.StepsRun++
			}
		}
	}
	return d
}

// resultValues renders every step-output value of a report.
func resultValues(rep *Report) map[string]string {
	if rep == nil || rep.Result == nil {
		return nil
	}
	out := make(map[string]string, len(rep.Result.Values))
	for path, v := range rep.Result.Values {
		out[path] = renderValue(v)
	}
	return out
}

// renderValue canonicalizes one step-output value for diffing. JSON is
// deterministic (sorted map keys, pointers dereferenced); values JSON
// cannot represent collapse to their type name — also deterministic,
// at the cost of being opaque to the diff.
func renderValue(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("<%T>", v)
	}
	return string(b)
}

// truncate bounds a rendered value, keeping truncations
// distinguishing: two different values never truncate to the same
// string, because the suffix carries the full value's length and hash.
func truncate(s string) string {
	if len(s) <= maxDiffValue {
		return s
	}
	n := maxDiffValue
	for n > 0 && !utf8.RuneStart(s[n]) {
		n--
	}
	h := fnv.New32a()
	h.Write([]byte(s))
	return fmt.Sprintf("%s… (%d bytes, fnv %08x)", s[:n], len(s), h.Sum32())
}

// extractAnomalies scans a report's step-output values for
// anomaly-shaped findings, in sorted path order: detected latency
// shifts (core.LatencyFinding), BGP update bursts ([]bgp.Burst), and
// cable-failure verdicts (core.Verdict). The signal Key is
// "kind@path", stable across re-executions of the same plan.
func extractAnomalies(rep *Report) []AnomalySignal {
	if rep == nil || rep.Result == nil {
		return nil
	}
	paths := make([]string, 0, len(rep.Result.Values))
	for p := range rep.Result.Values {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	var out []AnomalySignal
	for _, p := range paths {
		switch v := rep.Result.Values[p].(type) {
		case LatencyFinding:
			if v.Detected {
				out = append(out, AnomalySignal{
					Key: "latency-shift@" + p, Kind: "latency-shift", Source: p,
					Detail: fmt.Sprintf("latency shift of %.1fms across %d probes (confidence %.2f)",
						v.DeltaMs, len(v.Probes), v.Confidence),
				})
			}
		case []bgp.Burst:
			if len(v) > 0 {
				withdrawHeavy := 0
				for _, b := range v {
					if b.WithdrawHeavy {
						withdrawHeavy++
					}
				}
				out = append(out, AnomalySignal{
					Key: "bgp-burst@" + p, Kind: "bgp-burst", Source: p,
					Detail: fmt.Sprintf("%d BGP update bursts (%d withdrawal-heavy)", len(v), withdrawHeavy),
				})
			}
		case Verdict:
			if v.CauseIsCableFailure {
				out = append(out, AnomalySignal{
					Key: "cable-failure@" + p, Kind: "cable-failure", Source: p,
					Detail: fmt.Sprintf("cable failure verdict: %s (confidence %.2f)", v.Cable, v.Confidence),
				})
			}
		}
	}
	return out
}

// diffAnomalies computes the appeared/cleared signal sets between two
// runs, each sorted by key.
func diffAnomalies(prev, cur []AnomalySignal) (appeared, cleared []AnomalySignal) {
	prevByKey := make(map[string]AnomalySignal, len(prev))
	for _, a := range prev {
		prevByKey[a.Key] = a
	}
	curKeys := make(map[string]bool, len(cur))
	for _, a := range cur {
		curKeys[a.Key] = true
		if _, ok := prevByKey[a.Key]; !ok {
			appeared = append(appeared, a)
		}
	}
	for _, a := range prev {
		if !curKeys[a.Key] {
			cleared = append(cleared, a)
		}
	}
	sort.Slice(appeared, func(i, j int) bool { return appeared[i].Key < appeared[j].Key })
	sort.Slice(cleared, func(i, j int) bool { return cleared[i].Key < cleared[j].Key })
	return appeared, cleared
}

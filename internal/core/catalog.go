package core

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
	"arachnet/internal/registry"
	"arachnet/internal/xaminer"
)

// BuiltinRegistry builds the full hand-curated capability catalog over
// every substrate. Each entry describes what the tool does in registry
// terms; implementations close over nothing and fetch the Environment
// from the call, so one registry serves any environment.
func BuiltinRegistry() *registry.Registry {
	r := registry.New()
	registerNautilus(r)
	registerGeo(r)
	registerReport(r)
	registerXaminer(r)
	registerBGP(r)
	registerTraceroute(r)
	registerTopo(r)
	registerForensic(r)
	return r
}

// CS1RegistryNames returns the capability subset used by the paper's
// Case Study 1 setup: "only core Nautilus system functions", plus the
// generic geo/report utilities — Xaminer's higher-level abstractions
// are withheld.
func CS1RegistryNames() []string {
	return []string{
		"nautilus.resolve_cable",
		"nautilus.cable_to_set",
		"nautilus.cables_between_regions",
		"nautilus.links_on_cables",
		"nautilus.extract_ips",
		"nautilus.map_coverage",
		"geo.locate_ips",
		"report.country_rollup",
		"report.render",
	}
}

func inputString(c *registry.Call, name string) (string, error) {
	v, err := c.Input(name)
	if err != nil {
		return "", err
	}
	s, ok := v.(string)
	if !ok {
		return "", fmt.Errorf("core: input %q is %T, want string", name, v)
	}
	return s, nil
}

func inputFloat(c *registry.Call, name string) (float64, error) {
	v, err := c.Input(name)
	if err != nil {
		return 0, err
	}
	switch x := v.(type) {
	case float64:
		return x, nil
	case int:
		return float64(x), nil
	}
	return 0, fmt.Errorf("core: input %q is %T, want float64", name, v)
}

func inputLinks(c *registry.Call, name string) ([]netsim.LinkID, error) {
	v, err := c.Input(name)
	if err != nil {
		return nil, err
	}
	ls, ok := v.([]netsim.LinkID)
	if !ok {
		return nil, fmt.Errorf("core: input %q is %T, want []netsim.LinkID", name, v)
	}
	return ls, nil
}

func linkSet(ids []netsim.LinkID) map[netsim.LinkID]bool {
	m := make(map[netsim.LinkID]bool, len(ids))
	for _, id := range ids {
		m[id] = true
	}
	return m
}

func registerNautilus(r *registry.Registry) {
	r.MustRegister(registry.Capability{
		Name: "nautilus.resolve_cable", Framework: "nautilus",
		Description: "Resolve a submarine cable by name or ID against the cable catalog",
		Inputs:      []registry.Port{{Name: "name", Type: registry.TString, Desc: "cable name, e.g. SeaMeWe-5"}},
		Outputs:     []registry.Port{{Name: "cable", Type: registry.TCableID}},
		Constraints: []string{"cable must exist in the catalog"},
		Tags:        []string{"cable-resolution"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			name, err := inputString(c, "name")
			if err != nil {
				return err
			}
			cab, ok := e.Catalog.ByName(name)
			if !ok {
				return fmt.Errorf("core: unknown cable %q", name)
			}
			c.Out["cable"] = cab.ID
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "nautilus.cable_to_set", Framework: "nautilus",
		Description: "Wrap a single cable into a cable set (format adapter)",
		Inputs:      []registry.Port{{Name: "cable", Type: registry.TCableID}},
		Outputs:     []registry.Port{{Name: "cables", Type: registry.TCableList}},
		Tags:        []string{"adapter"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			v, err := c.Input("cable")
			if err != nil {
				return err
			}
			id, ok := v.(nautilus.CableID)
			if !ok {
				return fmt.Errorf("core: cable input is %T", v)
			}
			c.Out["cables"] = []nautilus.CableID{id}
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "nautilus.cables_between_regions", Framework: "nautilus",
		Description: "List the submarine cables landing in both of two regions (a corridor)",
		Inputs: []registry.Port{
			{Name: "region_a", Type: registry.TString},
			{Name: "region_b", Type: registry.TString},
		},
		Outputs:     []registry.Port{{Name: "cables", Type: registry.TCableList}},
		Constraints: []string{"regions must be recognized region names"},
		Tags:        []string{"corridor", "cable-resolution"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			a, err := inputString(c, "region_a")
			if err != nil {
				return err
			}
			b, err := inputString(c, "region_b")
			if err != nil {
				return err
			}
			ra, okA := geo.ParseRegion(a)
			rb, okB := geo.ParseRegion(b)
			if !okA || !okB {
				return fmt.Errorf("core: unknown region pair (%q, %q)", a, b)
			}
			var ids []nautilus.CableID
			for _, cab := range e.Catalog.Between(ra, rb) {
				ids = append(ids, cab.ID)
			}
			c.Out["cables"] = ids
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "nautilus.links_on_cables", Framework: "nautilus",
		Description: "Extract the IP links riding a set of cables from the cross-layer map (cable dependency identification)",
		Inputs:      []registry.Port{{Name: "cables", Type: registry.TCableList}},
		Outputs:     []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Constraints: []string{"requires a computed cross-layer map"},
		Tags:        []string{"link-extraction", "cable-dependency"},
		Cost:        2,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			v, err := c.Input("cables")
			if err != nil {
				return err
			}
			ids, ok := v.([]nautilus.CableID)
			if !ok {
				return fmt.Errorf("core: cables input is %T", v)
			}
			set := map[netsim.LinkID]bool{}
			for _, id := range ids {
				for _, l := range e.CrossMap.LinksOn(id) {
					set[l] = true
				}
			}
			out := make([]netsim.LinkID, 0, len(set))
			for id := range set {
				out = append(out, id)
			}
			sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
			c.Out["links"] = out
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "nautilus.extract_ips", Framework: "nautilus",
		Description: "Extract the interface IP addresses terminating a set of IP links",
		Inputs:      []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Outputs:     []registry.Port{{Name: "ips", Type: registry.TIPSet}},
		Tags:        []string{"ip-extraction"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			links, err := inputLinks(c, "links")
			if err != nil {
				return err
			}
			set := map[netip.Addr]bool{}
			for _, id := range links {
				l, ok := e.World.LinkByID(id)
				if !ok {
					continue
				}
				set[l.SrcAddr] = true
				set[l.DstAddr] = true
			}
			out := make([]netip.Addr, 0, len(set))
			for a := range set {
				out = append(out, a)
			}
			sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
			c.Out["ips"] = out
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "nautilus.map_coverage", Framework: "nautilus",
		Description: "Report the fraction of submarine links covered by the cross-layer map (mapping uncertainty)",
		Outputs:     []registry.Port{{Name: "coverage", Type: registry.TFloat}},
		Tags:        []string{"validation", "uncertainty"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			c.Out["coverage"] = e.CrossMap.Coverage(e.World)
			return nil
		},
	})
}

func registerGeo(r *registry.Registry) {
	r.MustRegister(registry.Capability{
		Name: "geo.locate_ips", Framework: "geo",
		Description: "Geolocate IP addresses to countries using the allocation database",
		Inputs:      []registry.Port{{Name: "ips", Type: registry.TIPSet}},
		Outputs:     []registry.Port{{Name: "geo", Type: registry.TGeoTable}},
		Tags:        []string{"geo-mapping"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			v, err := c.Input("ips")
			if err != nil {
				return err
			}
			ips, ok := v.([]netip.Addr)
			if !ok {
				return fmt.Errorf("core: ips input is %T", v)
			}
			rows := make([]GeoRow, 0, len(ips))
			for _, ip := range ips {
				if cc, ok := e.World.Locate(ip); ok {
					rows = append(rows, GeoRow{Addr: ip, Country: cc})
				}
			}
			c.Out["geo"] = rows
			return nil
		},
	})
}

func registerReport(r *registry.Registry) {
	r.MustRegister(registry.Capability{
		Name: "report.country_rollup", Framework: "report",
		Description: "Aggregate geolocated losses into a per-country impact table with normalized scores",
		Inputs: []registry.Port{
			{Name: "geo", Type: registry.TGeoTable},
			{Name: "links", Type: registry.TLinkSet},
		},
		Outputs: []registry.Port{{Name: "report", Type: registry.TImpact}},
		Tags:    []string{"aggregation", "country-level"},
		Cost:    2,
		Pure:    true,
		Reads:   []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			v, err := c.Input("geo")
			if err != nil {
				return err
			}
			rows, ok := v.([]GeoRow)
			if !ok {
				return fmt.Errorf("core: geo input is %T", v)
			}
			links, err := inputLinks(c, "links")
			if err != nil {
				return err
			}
			c.Out["report"] = directCountryRollup(e, rows, links)
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "report.render", Framework: "report",
		Description: "Render an impact report as a readable table",
		Inputs:      []registry.Port{{Name: "report", Type: registry.TImpact}},
		Outputs:     []registry.Port{{Name: "text", Type: registry.TString}},
		Tags:        []string{"render"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			v, err := c.Input("report")
			if err != nil {
				return err
			}
			rep, ok := v.(*xaminer.ImpactReport)
			if !ok {
				return fmt.Errorf("core: report input is %T", v)
			}
			c.Out["text"] = RenderImpact(rep, 15)
			return nil
		},
	})
}

// directCountryRollup is the "direct processing pipeline" aggregation an
// agent composes when Xaminer's embedding module is withheld: counts
// per-country losses from raw rows and normalizes against world totals.
// It intentionally re-derives totals rather than calling into Xaminer.
func directCountryRollup(e *Environment, rows []GeoRow, links []netsim.LinkID) *xaminer.ImpactReport {
	ipsTotal := map[string]int{}
	for _, r := range e.World.Routers {
		ipsTotal[r.Country]++
	}
	linksTotal := map[string]int{}
	asLinksTotal := map[string]int{}
	for _, l := range e.World.IPLinks {
		ca, cb := e.World.LinkEndpoints(l)
		linksTotal[ca]++
		if cb != ca {
			linksTotal[cb]++
		}
		if !l.IntraAS {
			asLinksTotal[ca]++
			if cb != ca {
				asLinksTotal[cb]++
			}
		}
	}
	asesTotal := map[string]int{}
	for _, as := range e.World.ASes {
		for _, cc := range as.Presence {
			asesTotal[cc]++
		}
	}

	ipsLost := map[string]float64{}
	for _, row := range rows {
		ipsLost[row.Country]++
	}
	linksLost := map[string]float64{}
	asLinksLost := map[string]float64{}
	asesHit := map[string]map[netsim.ASN]bool{}
	for _, id := range links {
		l, ok := e.World.LinkByID(id)
		if !ok {
			continue
		}
		ca, cb := e.World.LinkEndpoints(l)
		linksLost[ca]++
		if cb != ca {
			linksLost[cb]++
		}
		if !l.IntraAS {
			asLinksLost[ca]++
			if cb != ca {
				asLinksLost[cb]++
			}
		}
		if asesHit[ca] == nil {
			asesHit[ca] = map[netsim.ASN]bool{}
		}
		if asesHit[cb] == nil {
			asesHit[cb] = map[netsim.ASN]bool{}
		}
		asesHit[ca][l.ASLinkAB[0]] = true
		asesHit[cb][l.ASLinkAB[1]] = true
	}

	countries := map[string]bool{}
	for cc := range ipsLost {
		countries[cc] = true
	}
	for cc := range linksLost {
		countries[cc] = true
	}
	rep := &xaminer.ImpactReport{Scenario: "direct-rollup", FailedLinks: len(links)}
	for cc := range countries {
		ci := xaminer.CountryImpact{
			Country:     cc,
			IPsLost:     ipsLost[cc],
			IPsTotal:    ipsTotal[cc],
			LinksLost:   linksLost[cc],
			LinksTotal:  linksTotal[cc],
			ASesHit:     float64(len(asesHit[cc])),
			ASesTotal:   asesTotal[cc],
			ASLinksLost: asLinksLost[cc],
			ASLinksTot:  asLinksTotal[cc],
		}
		var sum float64
		var n int
		frac := func(lost float64, total int) {
			if total > 0 {
				f := lost / float64(total)
				if f > 1 {
					f = 1
				}
				sum += f
				n++
			}
		}
		frac(ci.LinksLost, ci.LinksTotal)
		frac(ci.IPsLost, ci.IPsTotal)
		frac(ci.ASesHit, ci.ASesTotal)
		frac(ci.ASLinksLost, ci.ASLinksTot)
		if n > 0 {
			ci.Score = sum / float64(n)
		}
		rep.Countries = append(rep.Countries, ci)
	}
	sort.Slice(rep.Countries, func(i, j int) bool {
		if rep.Countries[i].Score != rep.Countries[j].Score {
			return rep.Countries[i].Score > rep.Countries[j].Score
		}
		return rep.Countries[i].Country < rep.Countries[j].Country
	})
	return rep
}

// RenderImpact formats an impact report as a fixed-width table with the
// top n countries.
func RenderImpact(rep *xaminer.ImpactReport, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario %s: %d links failed, %d countries impacted\n",
		rep.Scenario, rep.FailedLinks, len(rep.Countries))
	if rep.ReachabilityLossPct > 0 {
		fmt.Fprintf(&b, "AS-pair reachability loss: %.2f%%\n", rep.ReachabilityLossPct)
	}
	fmt.Fprintf(&b, "%-8s %8s %8s %8s %8s %8s\n", "country", "score", "links", "ips", "ases", "aslinks")
	for i, ci := range rep.Countries {
		if i >= n {
			break
		}
		fmt.Fprintf(&b, "%-8s %8.3f %8.1f %8.1f %8.1f %8.1f\n",
			ci.Country, ci.Score, ci.LinksLost, ci.IPsLost, ci.ASesHit, ci.ASLinksLost)
	}
	return b.String()
}

func registerXaminer(r *registry.Registry) {
	r.MustRegister(registry.Capability{
		Name: "xaminer.impact_from_links", Framework: "xaminer",
		Description: "Xaminer embedding: cross-layer country impact (IPs, links, ASes, AS links, normalized) for failed links",
		Inputs:      []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Outputs:     []registry.Port{{Name: "report", Type: registry.TImpact}},
		Tags:        []string{"impact-analysis", "embedding", "aggregation", "country-level"},
		Cost:        3,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			links, err := inputLinks(c, "links")
			if err != nil {
				return err
			}
			c.Out["report"] = e.Analyzer.AnalyzeLinkFailures("xaminer", linkSet(links), false)
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "xaminer.reachability_loss", Framework: "xaminer",
		Description: "Compute AS-pair reachability loss under a link-failure scenario via BGP recomputation",
		Inputs:      []registry.Port{{Name: "links", Type: registry.TLinkSet}},
		Outputs:     []registry.Port{{Name: "loss_pct", Type: registry.TFloat}},
		Constraints: []string{"recomputes global routing tables; expensive on large worlds"},
		Tags:        []string{"routing-impact", "validation"},
		Cost:        6,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			links, err := inputLinks(c, "links")
			if err != nil {
				return err
			}
			rep := e.Analyzer.AnalyzeLinkFailures("reach", linkSet(links), true)
			c.Out["loss_pct"] = rep.ReachabilityLossPct
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "xaminer.event_catalog", Framework: "xaminer",
		Description: "Select severe disaster events (earthquake, hurricane) from the built-in event catalogs",
		Inputs:      []registry.Port{{Name: "types", Type: registry.TStringList}},
		Outputs:     []registry.Port{{Name: "events", Type: registry.TEventList}},
		Tags:        []string{"event-selection"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			v, err := c.Input("types")
			if err != nil {
				return err
			}
			types, ok := v.([]string)
			if !ok {
				return fmt.Errorf("core: types input is %T", v)
			}
			var events []xaminer.Event
			for _, t := range types {
				switch strings.ToLower(t) {
				case "earthquake":
					events = append(events, xaminer.SevereEarthquakes()...)
				case "hurricane", "typhoon", "cyclone":
					events = append(events, xaminer.SevereHurricanes()...)
				default:
					return fmt.Errorf("core: unknown disaster type %q", t)
				}
			}
			c.Out["events"] = events
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "xaminer.process_events", Framework: "xaminer",
		Description: "Process disaster events with a failure probability: at-risk infrastructure and expected country impact per event (handles every disaster type)",
		Inputs: []registry.Port{
			{Name: "events", Type: registry.TEventList},
			{Name: "fail_prob", Type: registry.TFloat},
		},
		Outputs:     []registry.Port{{Name: "impacts", Type: registry.TEventImpact}},
		Constraints: []string{"probability must lie in [0,1]"},
		Tags:        []string{"event-processing", "impact-analysis"},
		Cost:        3,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			v, err := c.Input("events")
			if err != nil {
				return err
			}
			events, ok := v.([]xaminer.Event)
			if !ok {
				return fmt.Errorf("core: events input is %T", v)
			}
			prob, err := inputFloat(c, "fail_prob")
			if err != nil {
				return err
			}
			impacts := make([]xaminer.EventImpact, 0, len(events))
			for _, ev := range events {
				im, err := e.Analyzer.ProcessEvent(ev, prob)
				if err != nil {
					return fmt.Errorf("core: event %q: %w", ev.Name, err)
				}
				impacts = append(impacts, im)
			}
			c.Out["impacts"] = impacts
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "xaminer.combine_impacts", Framework: "xaminer",
		Description: "Combine per-event expectation impacts into one global country-impact view",
		Inputs:      []registry.Port{{Name: "impacts", Type: registry.TEventImpact}},
		Outputs:     []registry.Port{{Name: "global", Type: registry.TGlobal}},
		Tags:        []string{"aggregation", "combine"},
		Cost:        1,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			v, err := c.Input("impacts")
			if err != nil {
				return err
			}
			impacts, ok := v.([]xaminer.EventImpact)
			if !ok {
				return fmt.Errorf("core: impacts input is %T", v)
			}
			c.Out["global"] = xaminer.CombineEventImpacts(e.Analyzer, impacts)
			return nil
		},
	})
}

package core

// Persistent cache snapshots: SaveSnapshot serializes a System's warm
// state — the queries whose plans are cached plus every step-cache
// entry the wire codec can represent — and LoadSnapshot restores it
// into a freshly built System, so a restarted server answers its
// first repeated query as a cache hit instead of re-executing the
// workflow.
//
// What is persisted, and how:
//
//   - Step results are encoded with the fleetwire codec's tagged value
//     envelopes (the same closed tag↔type registry the worker wire
//     uses), keyed by the raw step fingerprint. Entries holding values
//     outside the codec's registry are skipped — they simply re-execute
//     once after restart.
//   - Plans are persisted as their query text, not their artifacts
//     (planning output holds unserializable state — quality-check
//     closures, capability handles). LoadSnapshot re-plans each query
//     through the deterministic planning agents; planning is the cheap
//     half, and the replay repopulates the plan cache and its compiled
//     artifacts at load time.
//
// Validation: the snapshot header carries a content digest of the
// world, the registry generation and size, the scenario digest, and
// the environment's (identity, epoch) fingerprint counters. Loading
// rejects any mismatch — serving stale results would be silent
// corruption — and on success *adopts* the saved identity counters so
// the persisted step fingerprints resolve (see
// Environment.adoptFingerprint).
//
// The value codec itself lives in internal/fleetwire, which imports
// core; the dependency therefore runs through an injection seam
// (SetSnapshotValueCodec, called from fleetwire's init), and
// SaveSnapshot/LoadSnapshot fail with a clear error in binaries that
// somehow link core without fleetwire.

import (
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"

	"arachnet/internal/netsim"
)

// snapshotVersion is bumped whenever the snapshot layout changes;
// loaders reject other versions.
const snapshotVersion = 1

// Snapshot value codec, injected by internal/fleetwire (see package
// comment). Registration happens in an init, before any System exists.
var (
	snapEncodeValues func(map[string]any) (json.RawMessage, error)
	snapDecodeValues func(json.RawMessage) (map[string]any, error)
)

// SetSnapshotValueCodec installs the tagged-envelope codec snapshots
// encode step outputs with. Called once from internal/fleetwire's
// init; later calls overwrite (tests).
func SetSnapshotValueCodec(
	enc func(map[string]any) (json.RawMessage, error),
	dec func(json.RawMessage) (map[string]any, error),
) {
	snapEncodeValues, snapDecodeValues = enc, dec
}

// snapshotFile is the on-disk layout (JSON, one object).
type snapshotFile struct {
	Version int `json:"version"`
	// SavedAt is informational only; validation never consults it.
	SavedAt time.Time `json:"saved_at,omitempty"`
	// World is a content digest over the generated world (config,
	// topology, country assignment) — two worlds agree on it only if
	// they were generated from the same config and seed.
	World string `json:"world"`
	// RegistryGen and RegistrySize pin the catalog the cached state was
	// computed against.
	RegistryGen  uint64 `json:"registry_generation"`
	RegistrySize int    `json:"registry_size"`
	// EnvID and EnvEpoch are the environment fingerprint counters the
	// persisted step keys embed; the loader adopts them after
	// validation.
	EnvID    uint64 `json:"env_id"`
	EnvEpoch uint64 `json:"env_epoch"`
	// Scenario digests the injected measurement scenario ("" = none).
	Scenario string `json:"scenario,omitempty"`
	// Queries are the plan-cache contents, re-planned at load.
	Queries []string `json:"queries,omitempty"`
	// Steps are the step-cache contents: base64 raw fingerprint →
	// tagged-envelope output map.
	Steps []snapshotStep `json:"steps,omitempty"`
	// SkippedSteps counts cache entries the codec could not represent
	// (informational).
	SkippedSteps int `json:"skipped_steps,omitempty"`
}

type snapshotStep struct {
	Key string          `json:"key"`
	Out json.RawMessage `json:"out"`
}

// worldDigest fingerprints the generated world by content: the
// generation config (which embeds the seed) plus the full router and
// link inventory. Hashing topology rather than just counts means two
// different seeds can never validate against each other's snapshots.
func worldDigest(w *netsim.World) string {
	h := sha256.New()
	fmt.Fprintf(h, "v1|cfg=%+v|routers=%d|links=%d|ases=%d|", w.Cfg, len(w.Routers), len(w.IPLinks), len(w.ASes))
	for i := range w.Routers {
		r := &w.Routers[i]
		fmt.Fprintf(h, "r%d:%d:%s;", r.ID, r.ASN, r.Country)
	}
	for i := range w.IPLinks {
		l := &w.IPLinks[i]
		fmt.Fprintf(h, "l%d:%d-%d:%d;", l.ID, l.A, l.B, l.Kind)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// scenarioDigest fingerprints the injected scenario (or "" when none):
// ground truth, window, and the sizes and first/last elements of the
// generated archive and stream. Scenarios are generated
// deterministically from their config, so agreement here means the
// same injection sequence produced them.
func (e *Environment) scenarioDigest() string {
	sc := e.Scenario
	if sc == nil {
		return ""
	}
	h := sha256.New()
	fmt.Fprintf(h, "v1|cable=%s|failAt=%s|start=%s|end=%s|links=%v|",
		sc.TrueCable, sc.FailureAt.UTC().Format(time.RFC3339Nano),
		sc.Start.UTC().Format(time.RFC3339Nano), sc.End.UTC().Format(time.RFC3339Nano),
		sc.FailedLink)
	if a := sc.Archive; a != nil {
		fmt.Fprintf(h, "meas=%d|", len(a.Measurements))
		if n := len(a.Measurements); n > 0 {
			first, last := a.Measurements[0], a.Measurements[n-1]
			fmt.Fprintf(h, "m0=%s@%s:%.3f|mN=%s@%s:%.3f|",
				first.Probe, first.Time.UTC().Format(time.RFC3339Nano), first.RTTms,
				last.Probe, last.Time.UTC().Format(time.RFC3339Nano), last.RTTms)
		}
	}
	fmt.Fprintf(h, "msgs=%d", len(sc.Stream))
	return hex.EncodeToString(h.Sum(nil))
}

// SaveSnapshot writes the System's warm cache state to w: a versioned,
// fingerprint-stamped JSON document holding the plan cache as query
// text and the step cache as codec-encoded output maps. Entries whose
// values the wire codec cannot represent are skipped (counted in the
// header), never mis-encoded. Intended at drain time — concurrent
// serving is safe (each cache is walked under its shard locks) but the
// snapshot then reflects an instant somewhere during the walk.
func (s *System) SaveSnapshot(w io.Writer) error {
	if snapEncodeValues == nil {
		return fmt.Errorf("core: snapshot value codec not installed (link arachnet/internal/fleetwire)")
	}
	f := snapshotFile{
		Version:      snapshotVersion,
		SavedAt:      time.Now().UTC(),
		World:        worldDigest(s.env.World),
		RegistryGen:  s.reg.Generation(),
		RegistrySize: s.reg.Size(),
		EnvID:        s.env.fpID.Load(),
		EnvEpoch:     s.env.fpEpoch.Load(),
		Scenario:     s.env.scenarioDigest(),
	}
	seen := map[string]bool{}
	for _, ent := range s.planCache.entries() {
		pe, ok := ent.val.(*planEntry)
		if !ok || pe.query == "" || seen[pe.query] {
			continue
		}
		seen[pe.query] = true
		f.Queries = append(f.Queries, pe.query)
	}
	sort.Strings(f.Queries)
	for _, ent := range s.stepCache.entries() {
		out, ok := ent.val.(map[string]any)
		if !ok {
			f.SkippedSteps++
			continue
		}
		raw, err := snapEncodeValues(out)
		if err != nil {
			// A value outside the codec's closed registry: cheap to
			// recompute after restart, dangerous to guess an encoding
			// for.
			f.SkippedSteps++
			continue
		}
		f.Steps = append(f.Steps, snapshotStep{
			Key: base64.StdEncoding.EncodeToString([]byte(ent.key)),
			Out: raw,
		})
	}
	sort.Slice(f.Steps, func(i, j int) bool { return f.Steps[i].Key < f.Steps[j].Key })
	enc := json.NewEncoder(w)
	return enc.Encode(&f)
}

// LoadSnapshot restores cache state saved by SaveSnapshot into this
// System. The snapshot must have been taken against an equivalent
// setup: same world content (config and seed), same registry
// generation and size, same injected scenario — any mismatch is
// rejected with an error and the System is left untouched, because
// serving another world's cached results would be silently wrong. On
// success the environment adopts the saved fingerprint identity (the
// persisted step keys embed it), step entries are inserted, and each
// saved query is re-planned to warm the plan cache and its compiled
// artifacts. Intended at boot, before serving traffic.
func (s *System) LoadSnapshot(r io.Reader) error {
	if snapDecodeValues == nil {
		return fmt.Errorf("core: snapshot value codec not installed (link arachnet/internal/fleetwire)")
	}
	var f snapshotFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return fmt.Errorf("core: snapshot decode: %w", err)
	}
	if f.Version != snapshotVersion {
		return fmt.Errorf("core: snapshot version %d, want %d", f.Version, snapshotVersion)
	}
	if got := worldDigest(s.env.World); f.World != got {
		return fmt.Errorf("core: snapshot world mismatch: snapshot %.12s…, this world %.12s… (different config or seed)", f.World, got)
	}
	if gen := s.reg.Generation(); f.RegistryGen != gen {
		return fmt.Errorf("core: snapshot registry generation %d, this registry %d (catalog changed)", f.RegistryGen, gen)
	}
	if size := s.reg.Size(); f.RegistrySize != size {
		return fmt.Errorf("core: snapshot registry size %d, this registry %d (catalog changed)", f.RegistrySize, size)
	}
	if got := s.env.scenarioDigest(); f.Scenario != got {
		return fmt.Errorf("core: snapshot scenario mismatch (snapshot %.12q, this environment %.12q)", f.Scenario, got)
	}
	// Adopt the saved fingerprint identity before touching either
	// cache so inserted step keys and re-planned plan keys both
	// resolve under it.
	s.env.adoptFingerprint(f.EnvID, f.EnvEpoch)
	for _, st := range f.Steps {
		key, err := base64.StdEncoding.DecodeString(st.Key)
		if err != nil {
			return fmt.Errorf("core: snapshot step key: %w", err)
		}
		out, err := snapDecodeValues(st.Out)
		if err != nil {
			// A tag this build doesn't know (snapshot from a newer
			// binary): skip the entry rather than fail the boot — it
			// re-executes once.
			continue
		}
		s.stepCache.Put(string(key), out, estimateSize(out))
	}
	// Re-plan the saved queries. The planning agents are deterministic
	// and cheap relative to execution; a query that no longer plans
	// (e.g. against a trimmed registry subset — already screened by the
	// generation check, but belt and braces) just stays cold.
	for _, q := range f.Queries {
		em := &emitter{query: q}
		rep := &Report{Query: q}
		cfg := askConfig{curate: false, parallelism: 1}
		_, _, _ = s.plan(context.Background(), q, cfg, em, rep)
	}
	return nil
}

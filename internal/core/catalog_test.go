package core

import (
	"net/netip"
	"strings"
	"testing"

	"arachnet/internal/bgp"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
	"arachnet/internal/registry"
	"arachnet/internal/xaminer"
)

// invoke runs one capability directly against an environment.
func invoke(t testing.TB, env *Environment, name string, in map[string]any) (map[string]any, error) {
	t.Helper()
	reg := BuiltinRegistry()
	cap, err := reg.Get(name)
	if err != nil {
		t.Fatalf("capability %s: %v", name, err)
	}
	call := &registry.Call{In: in, Out: map[string]any{}, Env: env}
	err = cap.Impl(call)
	return call.Out, err
}

func TestCapResolveCable(t *testing.T) {
	env := testEnv(t, false)
	out, err := invoke(t, env, "nautilus.resolve_cable", map[string]any{"name": "SeaMeWe-5"})
	if err != nil {
		t.Fatal(err)
	}
	if out["cable"] != nautilus.CableID("seamewe-5") {
		t.Errorf("cable = %v", out["cable"])
	}
	if _, err := invoke(t, env, "nautilus.resolve_cable", map[string]any{"name": "bogus-9"}); err == nil {
		t.Error("unknown cable accepted")
	}
	if _, err := invoke(t, env, "nautilus.resolve_cable", map[string]any{"name": 42}); err == nil {
		t.Error("non-string input accepted")
	}
	if _, err := invoke(t, env, "nautilus.resolve_cable", nil); err == nil {
		t.Error("missing input accepted")
	}
}

func TestCapCableToSetAndLinks(t *testing.T) {
	env := testEnv(t, false)
	out, err := invoke(t, env, "nautilus.cable_to_set", map[string]any{"cable": nautilus.CableID("flag-ea")})
	if err != nil {
		t.Fatal(err)
	}
	cables := out["cables"].([]nautilus.CableID)
	if len(cables) != 1 || cables[0] != "flag-ea" {
		t.Errorf("cables = %v", cables)
	}
	out, err = invoke(t, env, "nautilus.links_on_cables", map[string]any{"cables": cables})
	if err != nil {
		t.Fatal(err)
	}
	links := out["links"].([]netsim.LinkID)
	if len(links) != len(env.CrossMap.LinksOn("flag-ea")) {
		t.Errorf("links = %d, want %d", len(links), len(env.CrossMap.LinksOn("flag-ea")))
	}
	for i := 1; i < len(links); i++ {
		if links[i-1] >= links[i] {
			t.Fatal("links not sorted")
		}
	}
}

func TestCapCablesBetweenRegions(t *testing.T) {
	env := testEnv(t, false)
	out, err := invoke(t, env, "nautilus.cables_between_regions",
		map[string]any{"region_a": "Europe", "region_b": "Asia"})
	if err != nil {
		t.Fatal(err)
	}
	if len(out["cables"].([]nautilus.CableID)) < 4 {
		t.Errorf("corridor = %v", out["cables"])
	}
	if _, err := invoke(t, env, "nautilus.cables_between_regions",
		map[string]any{"region_a": "Narnia", "region_b": "Asia"}); err == nil {
		t.Error("bad region accepted")
	}
}

func TestCapExtractIPsAndLocate(t *testing.T) {
	env := testEnv(t, false)
	links := env.CrossMap.LinksOn("flag-ea")
	if len(links) == 0 {
		t.Skip("no links on flag-ea in this world")
	}
	out, err := invoke(t, env, "nautilus.extract_ips", map[string]any{"links": links})
	if err != nil {
		t.Fatal(err)
	}
	ips := out["ips"].([]netip.Addr)
	if len(ips) == 0 {
		t.Fatal("no IPs")
	}
	out, err = invoke(t, env, "geo.locate_ips", map[string]any{"ips": ips})
	if err != nil {
		t.Fatal(err)
	}
	rows := out["geo"].([]GeoRow)
	if len(rows) != len(ips) {
		t.Errorf("geolocated %d of %d", len(rows), len(ips))
	}
}

func TestCapCountryRollupMatchesXaminerCounts(t *testing.T) {
	env := testEnv(t, false)
	links := env.CrossMap.LinksOn("flag-ea")
	if len(links) == 0 {
		t.Skip("no links on flag-ea")
	}
	ipsOut, err := invoke(t, env, "nautilus.extract_ips", map[string]any{"links": links})
	if err != nil {
		t.Fatal(err)
	}
	geoOut, err := invoke(t, env, "geo.locate_ips", map[string]any{"ips": ipsOut["ips"]})
	if err != nil {
		t.Fatal(err)
	}
	rollOut, err := invoke(t, env, "report.country_rollup",
		map[string]any{"geo": geoOut["geo"], "links": links})
	if err != nil {
		t.Fatal(err)
	}
	direct := rollOut["report"].(*xaminer.ImpactReport)

	xamOut, err := invoke(t, env, "xaminer.impact_from_links", map[string]any{"links": links})
	if err != nil {
		t.Fatal(err)
	}
	embedded := xamOut["report"].(*xaminer.ImpactReport)

	// The two aggregations are architecturally different but must agree
	// on link attribution per country (the CS1 equivalence essence).
	for _, ci := range embedded.Countries {
		if direct.CountryScore(ci.Country) == 0 && ci.Score > 0 {
			t.Errorf("direct rollup missed country %s", ci.Country)
		}
	}
}

func TestCapRender(t *testing.T) {
	env := testEnv(t, false)
	rep := env.Analyzer.AnalyzeLinkFailures("x", map[netsim.LinkID]bool{1: true}, false)
	out, err := invoke(t, env, "report.render", map[string]any{"report": rep})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out["text"].(string), "country") {
		t.Errorf("render = %q", out["text"])
	}
	if _, err := invoke(t, env, "report.render", map[string]any{"report": "nope"}); err == nil {
		t.Error("bad report type accepted")
	}
}

func TestCapEventCatalogValidation(t *testing.T) {
	env := testEnv(t, false)
	out, err := invoke(t, env, "xaminer.event_catalog", map[string]any{"types": []string{"earthquake", "typhoon"}})
	if err != nil {
		t.Fatal(err)
	}
	events := out["events"].([]xaminer.Event)
	if len(events) != len(xaminer.SevereEarthquakes())+len(xaminer.SevereHurricanes()) {
		t.Errorf("events = %d", len(events))
	}
	if _, err := invoke(t, env, "xaminer.event_catalog", map[string]any{"types": []string{"volcano"}}); err == nil {
		t.Error("unknown disaster type accepted")
	}
}

func TestCapProcessAndCombine(t *testing.T) {
	env := testEnv(t, false)
	events := xaminer.SevereEarthquakes()[:2]
	out, err := invoke(t, env, "xaminer.process_events",
		map[string]any{"events": events, "fail_prob": 0.2})
	if err != nil {
		t.Fatal(err)
	}
	impacts := out["impacts"].([]xaminer.EventImpact)
	if len(impacts) != 2 {
		t.Fatalf("impacts = %d", len(impacts))
	}
	if _, err := invoke(t, env, "xaminer.process_events",
		map[string]any{"events": events, "fail_prob": 1.5}); err == nil {
		t.Error("bad probability accepted")
	}
	comb, err := invoke(t, env, "xaminer.combine_impacts", map[string]any{"impacts": impacts})
	if err != nil {
		t.Fatal(err)
	}
	g := comb["global"].(xaminer.GlobalImpact)
	if len(g.Events) != 2 {
		t.Errorf("combined events = %v", g.Events)
	}
}

func TestCapTemporalRequireScenario(t *testing.T) {
	env := testEnv(t, false) // no scenario
	if _, err := invoke(t, env, "bgp.updates_window", nil); err == nil {
		t.Error("stream served without scenario")
	}
	if _, err := invoke(t, env, "traceroute.archive_window", nil); err == nil {
		t.Error("archive served without scenario")
	}
}

func TestCapDetectBurstsAndCorrelate(t *testing.T) {
	env := testEnv(t, true)
	streamOut, err := invoke(t, env, "bgp.updates_window", nil)
	if err != nil {
		t.Fatal(err)
	}
	burstOut, err := invoke(t, env, "bgp.detect_bursts", map[string]any{"stream": streamOut["stream"]})
	if err != nil {
		t.Fatal(err)
	}
	_ = burstOut["bursts"].([]bgp.Burst)

	archOut, err := invoke(t, env, "traceroute.archive_window", nil)
	if err != nil {
		t.Fatal(err)
	}
	anomOut, err := invoke(t, env, "traceroute.detect_latency_anomaly",
		map[string]any{"archive": archOut["archive"]})
	if err != nil {
		t.Fatal(err)
	}
	finding := anomOut["anomaly"].(LatencyFinding)
	if !finding.Detected {
		t.Fatal("scenario anomaly not detected")
	}
	corrOut, err := invoke(t, env, "bgp.correlate_anomaly",
		map[string]any{"stream": streamOut["stream"], "anomaly": finding})
	if err != nil {
		t.Fatal(err)
	}
	corr := corrOut["correlation"].(float64)
	if corr <= 0.25 {
		t.Errorf("correlation = %f, want strong", corr)
	}
	// Undetected anomaly → zero correlation, no error.
	corrOut, err = invoke(t, env, "bgp.correlate_anomaly",
		map[string]any{"stream": streamOut["stream"], "anomaly": LatencyFinding{}})
	if err != nil || corrOut["correlation"].(float64) != 0 {
		t.Errorf("undetected anomaly: %v, %v", corrOut["correlation"], err)
	}
}

func TestCapCascadeAndStress(t *testing.T) {
	env := testEnv(t, false)
	out, err := invoke(t, env, "topo.cascade_cables",
		map[string]any{"cables": []nautilus.CableID{"flag-ea"}, "capacity_factor": 1.1})
	if err != nil {
		t.Fatal(err)
	}
	bundle := out["cascade"].(CascadeBundle)
	if len(bundle.Cable.Rounds) == 0 {
		t.Error("no cascade rounds")
	}
	links := env.CrossMap.LinksOn("flag-ea")
	sOut, err := invoke(t, env, "topo.propagate_stress",
		map[string]any{"links": links, "threshold": 0.3})
	if err != nil {
		t.Fatal(err)
	}
	_ = sOut["stress"]
}

func TestCapSuspectsAndVerdict(t *testing.T) {
	env := testEnv(t, true)
	finding := DetectLatencyShift(env.Scenario.Archive)
	if !finding.Detected {
		t.Fatal("anomaly undetected")
	}
	out, err := invoke(t, env, "nautilus.suspect_cables",
		map[string]any{"anomaly": finding, "stream": env.Scenario.Stream})
	if err != nil {
		t.Fatal(err)
	}
	suspects := out["suspects"].([]CableSuspect)
	if len(suspects) == 0 {
		t.Fatal("no suspects")
	}
	if suspects[0].Cable != env.Scenario.TrueCable {
		t.Errorf("top suspect %s, truth %s", suspects[0].Cable, env.Scenario.TrueCable)
	}
	vOut, err := invoke(t, env, "forensic.synthesize",
		map[string]any{"anomaly": finding, "suspects": suspects, "correlation": 0.9})
	if err != nil {
		t.Fatal(err)
	}
	v := vOut["verdict"].(Verdict)
	if !v.CauseIsCableFailure || v.Cable != env.Scenario.TrueCable {
		t.Errorf("verdict = %+v", v)
	}
}

func TestCapTimelineRequiredInputs(t *testing.T) {
	env := testEnv(t, true)
	rep := env.Analyzer.AnalyzeLinkFailures("x", nil, false)
	out, err := invoke(t, env, "synthesis.timeline", map[string]any{
		"report":  rep,
		"cascade": CascadeBundle{},
		"bursts":  []bgp.Burst{},
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := out["timeline"].(*Timeline)
	if len(tl.Entries) == 0 {
		t.Error("empty timeline")
	}
	if _, err := invoke(t, env, "synthesis.timeline", map[string]any{
		"report": "wrong", "cascade": CascadeBundle{}, "bursts": []bgp.Burst{},
	}); err == nil {
		t.Error("bad report type accepted")
	}
}

func TestCapMapCoverage(t *testing.T) {
	env := testEnv(t, false)
	out, err := invoke(t, env, "nautilus.map_coverage", nil)
	if err != nil {
		t.Fatal(err)
	}
	cov := out["coverage"].(float64)
	if cov <= 0 || cov > 1 {
		t.Errorf("coverage = %f", cov)
	}
}

func TestCapEnvTypeGuard(t *testing.T) {
	reg := BuiltinRegistry()
	cap, err := reg.Get("nautilus.map_coverage")
	if err != nil {
		t.Fatal(err)
	}
	call := &registry.Call{In: nil, Out: map[string]any{}, Env: "not-an-environment"}
	if err := cap.Impl(call); err == nil {
		t.Error("wrong env type accepted")
	}
}

func TestVerdictConfidenceNeverExceedsOne(t *testing.T) {
	f := LatencyFinding{Detected: true, Confidence: 1.0, DeltaMs: 100}
	suspects := []CableSuspect{{Cable: "x", Score: 1.0}}
	v := SynthesizeVerdict(f, suspects, 1.0)
	if v.Confidence < 0 || v.Confidence > 1 {
		t.Errorf("confidence = %f", v.Confidence)
	}
	// No suspects: no causation, no panic.
	v = SynthesizeVerdict(f, nil, 1.0)
	if v.CauseIsCableFailure {
		t.Error("causation with no suspects")
	}
}

func TestSplitProbeName(t *testing.T) {
	got := splitProbeName("GB-SG-3")
	if len(got) != 2 || got[0] != "GB" || got[1] != "SG" {
		t.Errorf("splitProbeName = %v", got)
	}
	if got := splitProbeName("weird"); len(got) != 0 {
		t.Errorf("splitProbeName(weird) = %v", got)
	}
}

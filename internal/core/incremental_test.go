package core

// Incremental re-execution: after a scenario injection, only the steps
// whose capabilities read the scenario facet — and their downstreams,
// via fingerprint chaining — may run fresh; every other step must
// replay from the step cache with StepStat.Cached set.

import (
	"testing"

	"arachnet/internal/workflow"
)

// dirtySteps walks a plan and marks each step dirty when its
// capability reads the scenario facet (or declares no facets, which
// keys it to the full, epoch-bearing fingerprint) or any upstream step
// is dirty — the exact set a scenario injection is allowed to re-run.
func dirtySteps(t *testing.T, sys *System, wf *workflow.Workflow) map[string]bool {
	t.Helper()
	dirty := map[string]bool{}
	for _, s := range wf.Steps {
		capb, err := sys.Registry().Get(s.Capability)
		if err != nil {
			t.Fatal(err)
		}
		d := len(capb.Reads) == 0
		for _, r := range capb.Reads {
			if r == FacetScenario {
				d = true
			}
		}
		for _, b := range s.Inputs {
			if b.IsRef() && dirty[workflow.RefStepID(b.Ref)] {
				d = true
			}
		}
		dirty[s.ID] = d
	}
	return dirty
}

func TestIncrementalReexecutionAfterInjection(t *testing.T) {
	env := testEnv(t, true)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Cold run populates the step cache.
	if _, err := sys.Ask(ctx, queryCS3, AskWithoutCuration()); err != nil {
		t.Fatal(err)
	}

	// Mutate only the scenario facet, then re-ask the same query.
	if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 11}); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, queryCS3, AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Solution == nil || rep.Solution.Workflow == nil || rep.Result == nil {
		t.Fatal("report incomplete")
	}

	dirty := dirtySteps(t, sys, rep.Solution.Workflow)
	cached, ran := 0, 0
	for _, st := range rep.Result.Steps {
		if wantFresh := dirty[st.ID]; st.Cached == wantFresh {
			if wantFresh {
				t.Errorf("step %s (%s) served from cache but its inputs changed", st.ID, st.Capability)
			} else {
				t.Errorf("step %s (%s) re-ran although nothing it reads changed", st.ID, st.Capability)
			}
		}
		if st.Cached {
			cached++
		} else {
			ran++
		}
	}
	// The test is only meaningful if the plan actually mixes both: a
	// scenario-dirty subgraph that re-ran and a world-only remainder
	// that replayed.
	if cached == 0 || ran == 0 {
		t.Fatalf("degenerate plan for incrementality: %d cached, %d ran", cached, ran)
	}
	t.Logf("re-execution after injection: %d steps replayed from cache, %d ran fresh", cached, ran)
}

// TestFullReplayAcrossWorldOnlyQuery: a query touching no scenario
// data replays entirely from cache even after an injection — the
// strongest form of the facet-scoped keying.
func TestFullReplayAcrossWorldOnlyQuery(t *testing.T) {
	env := testEnv(t, true)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Ask(ctx, queryCS1, AskWithoutCuration()); err != nil {
		t.Fatal(err)
	}
	if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 11}); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, queryCS1, AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range rep.Result.Steps {
		if !st.Cached {
			t.Errorf("world-only step %s (%s) re-ran after a scenario-only mutation", st.ID, st.Capability)
		}
	}
}

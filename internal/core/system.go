package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/agents/registrycurator"
	"arachnet/internal/agents/solutionweaver"
	"arachnet/internal/agents/workflowscout"
	"arachnet/internal/fleet"
	"arachnet/internal/nlq"
	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// Stage names, in pipeline order. The first four are passed to
// expert-mode review hooks; all five label PipelineError.Stage
// (curation failures are reported, not reviewed).
const (
	StageProblem  = "querymind"
	StageDesign   = "workflowscout"
	StageSolution = "solutionweaver"
	StageResult   = "execution"
	StageCuration = "registrycurator"
)

// ReviewHook inspects (and may veto) the artifact leaving each of the
// four pipeline stages when a call runs in expert mode. Returning an
// error aborts the pipeline.
type ReviewHook func(stage string, artifact any) error

// askConfig collects per-call serving parameters.
type askConfig struct {
	observers   []Observer
	curate      bool
	timeout     time.Duration
	parallelism int
	noCache     bool
}

// AskOption configures one Ask, AskStream, AskBatch or Submit call.
// Options are per-call: a single shared System serves expert-reviewed,
// curation-free, and deadline-bound requests side by side.
type AskOption func(*askConfig)

// AskExpert runs the call in expert mode: hook reviews the artifact
// leaving each of the four pipeline stages (problem, design, solution,
// result) and may veto it. Expert review is implemented as an ordinary
// event observer — AskExpert(h) is AskObserver over the
// stage-completion events.
func AskExpert(hook ReviewHook) AskOption {
	if hook == nil {
		return func(*askConfig) {}
	}
	return AskObserver(expertReviewer(hook))
}

// AskObserver attaches an event observer to the call. Observers see
// every event of the run (stages, steps, curation, Done) and may veto
// the pipeline by returning an error. Multiple observers fire in
// attachment order. Within one run, calls are serialized on the
// pipeline's goroutine; an observer passed to AskBatch is shared by
// the pool's workers and must be safe for concurrent use.
func AskObserver(obs Observer) AskOption {
	return func(c *askConfig) {
		if obs != nil {
			c.observers = append(c.observers, obs)
		}
	}
}

// AskWithoutCuration disables post-run registry evolution for this
// call (curation is on by default).
func AskWithoutCuration() AskOption {
	return func(c *askConfig) { c.curate = false }
}

// AskNoCache bypasses the System's memoization for this call: the
// plan cache is neither consulted nor populated and every workflow
// step executes even if a cached result exists. Use it to force fresh
// numbers (benchmark cold paths, A/B-ing a promotion) or when a
// capability outside the builtin catalog is registered Pure but the
// caller knows its inputs don't capture everything that matters.
func AskNoCache() AskOption {
	return func(c *askConfig) { c.noCache = true }
}

// AskTimeout bounds the call's wall-clock time, on top of whatever
// deadline the caller's context already carries. Non-positive
// durations are explicitly ignored — the call runs unbounded — rather
// than arming an already-expired deadline. For Submit the budget
// covers pipeline execution, not time spent queued.
func AskTimeout(d time.Duration) AskOption {
	return func(c *askConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// AskParallelism bounds concurrency: how many independent workflow
// steps an Ask executes at once, and for AskBatch the total budget —
// divided between concurrent queries and their steps. Default
// GOMAXPROCS; values below 1 are explicitly ignored and the default
// applies.
func AskParallelism(n int) AskOption {
	return func(c *askConfig) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

func newAskConfig(opts []AskOption) askConfig {
	cfg := askConfig{curate: true, parallelism: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// System is the assembled ArachNet pipeline over one environment and
// registry. A System is safe for concurrent use: any number of
// goroutines may Ask at once, while the curator evolves the shared
// registry behind its write lock.
type System struct {
	env *Environment
	reg *registry.Registry

	queryMind *querymind.Agent
	scout     *workflowscout.Agent
	weaver    *solutionweaver.Agent
	curator   *registrycurator.Agent

	mu         sync.Mutex // guards history and promotions
	history    []registrycurator.Observation
	promotions []registrycurator.Promotion

	curateMu sync.Mutex // serializes curation passes
	// curatedThrough is the history length the last curation pass saw
	// (guarded by mu); a pass with nothing new is skipped.
	curatedThrough int

	// jobs is the async serving subsystem (see jobs.go); its worker
	// pool starts lazily on the first Submit.
	jobs jobTable

	// subs indexes live standing queries (see subscribe.go).
	subs subTable

	// planCache memoizes the planning half of the pipeline (QueryMind →
	// WorkflowScout → SolutionWeaver) keyed by normalized query,
	// registry generation and environment fingerprint; stepCache
	// memoizes pure capability executions across runs (see cache.go).
	// Both are shared by every serving surface.
	planCache *lruCache
	stepCache *lruCache

	// fleet, when set, dispatches pure shard-partitionable steps to a
	// sharded worker pool instead of running them inline (see
	// internal/fleet and scatter.go). Guarded by fleetMu so SetFleet
	// is safe concurrently with serving.
	fleetMu sync.RWMutex
	fleet   *fleet.Fleet

	// engineSlot caches the last observer-less engine built for the warm
	// serving path: engines are stateless and safe for concurrent Runs,
	// so every warm Ask with the same (env fingerprint, fleet,
	// parallelism) shares one instead of re-assembling options and
	// closures per call. Calls with observers build their own engine as
	// before.
	engineSlot atomic.Pointer[engineSlot]

	// compiledOff disables compiled-plan execution when set (plans still
	// compile and cache; runs fall back to the interpreted engine). The
	// zero value — compiled execution on — is the default; the switch
	// exists for A/B benchmarking and the byte-identity tests. See
	// SetCompiledPlans.
	compiledOff atomic.Bool
}

// engineSlot is one memoized engine and the key it was built under.
type engineSlot struct {
	envFP string
	fleet *fleet.Fleet
	par   int
	eng   *workflow.Engine
}

// maxHistory bounds the observation window curation mines. Patterns
// need support 2 to promote, so recurring shapes are caught long
// before the window slides; the bound keeps per-call curation cost
// flat in long-lived serving processes.
const maxHistory = 512

// historySlack delays trimming until the window overshoots by this
// much, so the O(maxHistory) copy is amortized across many calls
// instead of paid on every Ask of a saturated server — this keeps the
// warm (fully cached) serving path cheap.
const historySlack = 64

// NewSystem assembles a pipeline. A nil registry uses the full builtin
// catalog.
func NewSystem(env *Environment, reg *registry.Registry) (*System, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	if reg == nil {
		reg = BuiltinRegistry()
	}
	env.ensureFingerprint()
	return &System{
		env: env, reg: reg,
		queryMind: querymind.New(),
		scout:     workflowscout.New(),
		weaver:    solutionweaver.New(),
		curator:   registrycurator.New(),
		planCache: newLRUCache(DefaultPlanCacheEntries, 0),
		stepCache: newLRUCache(DefaultStepCacheEntries, DefaultStepCacheBytes),
	}, nil
}

// SetCacheLimits rebounds the System's memoization: planEntries bounds
// the plan cache, stepEntries and stepBytes the step cache. A
// non-positive entry bound disables that cache (and flushes it); a
// non-positive stepBytes leaves the step cache bounded by entries
// only. Unlike SetJobLimits it may be called at any time — shrinking
// evicts immediately and in-flight runs simply miss.
func (s *System) SetCacheLimits(planEntries, stepEntries int, stepBytes int64) {
	s.planCache.SetLimits(planEntries, 0)
	s.stepCache.SetLimits(stepEntries, stepBytes)
}

// CacheStats snapshots hit/miss/eviction counters and current
// footprint for the plan and step caches, plus — when a fleet is
// attached — per-worker shard and cache counters.
func (s *System) CacheStats() CacheStats {
	st := CacheStats{
		Plan: s.planCache.Counters(),
		Step: s.stepCache.Counters(),
	}
	if f := s.Fleet(); f != nil {
		fs := f.Stats()
		st.Fleet = &fs
	}
	return st
}

// CacheStats is the observable state of a System's two caches.
type CacheStats struct {
	// Plan counts planning-layer memoization (whole-pipeline plans).
	Plan CacheCounters `json:"plan"`
	// Step counts execution-layer memoization (pure capability steps).
	Step CacheCounters `json:"step"`
	// Fleet, when the System serves over a worker fleet, snapshots
	// dispatch counters and per-worker shard inventory/caches.
	Fleet *fleet.Stats `json:"fleet,omitempty"`
}

// SetFleet attaches a sharded worker fleet: pure steps of capabilities
// with scatter specs are dispatched to the shard owning their data
// (and fan-out inputs scatter over all owning shards, gathering
// deterministically), instead of executing inline. The builtin
// catalog's scatter specs are installed on f. A nil fleet detaches
// (subsequent runs execute fully local). The caller keeps ownership
// of f and must Close it when done. Safe to call concurrently with
// serving; in-flight runs keep the dispatcher they started with.
func (s *System) SetFleet(f *fleet.Fleet) {
	if f != nil {
		installScatterSpecs(f)
	}
	s.fleetMu.Lock()
	s.fleet = f
	s.fleetMu.Unlock()
}

// Fleet returns the attached worker fleet, or nil.
func (s *System) Fleet() *fleet.Fleet {
	s.fleetMu.RLock()
	defer s.fleetMu.RUnlock()
	return s.fleet
}

// Registry exposes the live registry (it evolves as the curator
// promotes patterns).
func (s *System) Registry() *registry.Registry { return s.reg }

// Environment exposes the execution environment.
func (s *System) Environment() *Environment { return s.env }

// Promotions returns every composite promoted so far.
func (s *System) Promotions() []registrycurator.Promotion {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]registrycurator.Promotion, len(s.promotions))
	copy(out, s.promotions)
	return out
}

// History returns the executed-workflow observations recorded so far.
func (s *System) History() []registrycurator.Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]registrycurator.Observation, len(s.history))
	copy(out, s.history)
	return out
}

// Report is the full record of one pipeline run. The JSON tags keep
// serialized keys stable and lowercase for the HTTP serving tier.
type Report struct {
	Query    string                   `json:"query"`
	Spec     nlq.Spec                 `json:"spec,omitempty"`
	Problem  *querymind.ProblemSpec   `json:"problem,omitempty"`
	Design   *workflowscout.Design    `json:"design,omitempty"`
	Solution *solutionweaver.Solution `json:"solution,omitempty"`
	Result   *workflow.Result         `json:"result,omitempty"`
	// Promotions performed by the curator after this run.
	Promotions []registrycurator.Promotion `json:"promotions,omitempty"`
	Elapsed    time.Duration               `json:"elapsed,omitempty"`
}

// Ask runs the full four-agent pipeline on a natural-language query:
// parse → QueryMind → WorkflowScout → SolutionWeaver → execute →
// RegistryCurator. The context cancels the call between stages and
// mid-execution; failures surface as *PipelineError. The partially
// filled Report is returned alongside any error, with Elapsed always
// stamped.
//
// Ask is a synchronous drain of the same event-emitting pipeline that
// backs AskStream and Submit — observers registered with AskObserver
// (including expert review) fire inline; no channel or goroutine is
// involved, so a plain Ask pays no event-delivery overhead.
func (s *System) Ask(ctx context.Context, query string, opts ...AskOption) (*Report, error) {
	cfg := newAskConfig(opts)
	em := &emitter{query: query, observers: cfg.observers}
	rep, err := s.run(ctx, query, cfg, em)
	if em.active() {
		em.emit(&Done{Report: rep, Err: err})
	}
	return rep, err
}

// streamBuffer decouples the pipeline from the consumer: a run can get
// this many events ahead before event emission blocks on the reader.
const streamBuffer = 16

// AskStream is the non-blocking sibling of Ask: it starts the pipeline
// in a background goroutine and returns a channel of typed events —
// stage transitions, per-step execution, curation promotions — ending
// with a Done event carrying exactly what Ask would have returned. The
// channel is closed after Done.
//
// The consumer must drain the channel (or cancel ctx) — the pipeline
// blocks once the consumer falls streamBuffer events behind, and after
// ctx is cancelled undeliverable events are dropped so an abandoned
// stream cannot wedge the run.
func (s *System) AskStream(ctx context.Context, query string, opts ...AskOption) <-chan Event {
	cfg := newAskConfig(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan Event, streamBuffer)
	em := &emitter{query: query, observers: cfg.observers, sink: func(ev Event) {
		// Prefer delivery: buffer space or a ready receiver always
		// wins, even when ctx is already cancelled — otherwise the
		// closed Done channel could race a deliverable send and drop
		// the terminal event on an actively-draining consumer.
		select {
		case ch <- ev:
			return
		default:
		}
		select {
		case ch <- ev:
		case <-ctx.Done():
			if _, isDone := ev.(*Done); isDone {
				// The terminal event carries the run's outcome: give a
				// slow-but-live consumer a bounded grace to take it
				// before the channel closes without one.
				t := time.NewTimer(subscriberGrace)
				defer t.Stop()
				select {
				case ch <- ev:
				case <-t.C:
				}
				return
			}
			select {
			case ch <- ev:
			default: // abandoned stream: drop rather than wedge the run
			}
		}
	}}
	go func() {
		defer close(ch)
		rep, err := s.run(ctx, query, cfg, em)
		em.emit(&Done{Report: rep, Err: err})
	}()
	return ch
}

// run is the single pipeline implementation behind Ask, AskStream and
// the job workers. It emits events through em as stages and steps
// progress; an observer veto (non-nil error from emit) aborts the run
// as a *PipelineError at the vetoed stage. The terminal Done event is
// emitted by the caller, which knows how the run is being served.
func (s *System) run(ctx context.Context, query string, cfg askConfig, em *emitter) (rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	start := time.Now()
	rep = &Report{Query: query}
	defer func() { rep.Elapsed = time.Since(start) }()

	solution, compiled, err := s.plan(ctx, query, cfg, em, rep)
	if err != nil {
		return rep, err
	}

	// Execution over the parallel DAG engine. The step bridge surfaces
	// per-step events; a veto there cancels the run mid-workflow. An
	// inactive emitter (no observers, no sink — the common warm Ask)
	// skips event construction and the bridge entirely: nothing could
	// see the events or veto through them.
	active := em.active()
	if active {
		if err := em.emit(&StageStarted{Stage: StageResult}); err != nil {
			return rep, pipelineErr(StageResult, query, err)
		}
	}
	exCtx, cancelEx := context.WithCancel(ctx)
	defer cancelEx()
	f := s.Fleet()
	var bridge *stepBridge
	var engine *workflow.Engine
	switch {
	case active:
		bridge = &stepBridge{em: em, cancel: cancelEx}
		engineOpts := []workflow.EngineOption{
			workflow.WithParallelism(cfg.parallelism), workflow.WithObserver(bridge),
		}
		if !cfg.noCache {
			// Facet-scoped cache keys: steps reading only the immutable
			// world facet keep their fingerprints across scenario
			// injections, so a standing query's re-run executes only the
			// scenario-dirty subgraph and replays the rest from cache.
			engineOpts = append(engineOpts,
				workflow.WithCache(stepCacheAdapter{s.stepCache}, s.env.Fingerprint()),
				workflow.WithEnvKeyer(s.facetKeyer))
		}
		if f != nil {
			engineOpts = append(engineOpts, workflow.WithDispatcher(f))
		}
		engine = workflow.NewEngine(s.reg, s.env, engineOpts...)
	case cfg.noCache:
		engineOpts := []workflow.EngineOption{workflow.WithParallelism(cfg.parallelism)}
		if f != nil {
			engineOpts = append(engineOpts, workflow.WithDispatcher(f))
		}
		engine = workflow.NewEngine(s.reg, s.env, engineOpts...)
	default:
		engine = s.engineFor(cfg.parallelism, f)
	}
	var result *workflow.Result
	if compiled != nil && !s.compiledOff.Load() {
		result, err = engine.RunCompiled(exCtx, compiled)
	} else {
		result, err = engine.Run(exCtx, solution.Workflow)
	}
	rep.Result = result
	s.mu.Lock()
	s.history = append(s.history, registrycurator.Observation{
		Workflow: solution.Workflow, Result: result, Err: err,
	})
	if len(s.history) > maxHistory+historySlack {
		trimmed := len(s.history) - maxHistory
		s.history = append([]registrycurator.Observation(nil), s.history[trimmed:]...)
		s.curatedThrough -= trimmed
		if s.curatedThrough < 0 {
			s.curatedThrough = 0
		}
	}
	s.mu.Unlock()
	if bridge != nil && bridge.veto != nil {
		return rep, pipelineErr(StageResult, query, bridge.veto)
	}
	if err != nil {
		return rep, pipelineErr(StageResult, query, err)
	}
	if active {
		if err := em.emit(&StageCompleted{Stage: StageResult, Artifact: result}); err != nil {
			return rep, pipelineErr(StageResult, query, err)
		}
	}

	// Registry evolution (RegistryCurator). Serialized so concurrent
	// calls never race to promote the same pattern.
	if cfg.curate {
		if active {
			if err := em.emit(&StageStarted{Stage: StageCuration}); err != nil {
				return rep, pipelineErr(StageCuration, query, err)
			}
		}
		promos, err := s.curate()
		if err != nil {
			return rep, pipelineErr(StageCuration, query, err)
		}
		rep.Promotions = promos
		if active {
			for _, p := range promos {
				if err := em.emit(&CurationPromoted{Promotion: p}); err != nil {
					return rep, pipelineErr(StageCuration, query, err)
				}
			}
			if err := em.emit(&StageCompleted{Stage: StageCuration, Artifact: promos}); err != nil {
				return rep, pipelineErr(StageCuration, query, err)
			}
		}
	}
	return rep, nil
}

// facetKeyer is the engine env-keyer closure shared by every engine
// the System builds: one method value instead of a fresh closure per
// call.
func (s *System) facetKeyer(capb *registry.Capability) string {
	return s.env.FacetFingerprint(capb.Reads)
}

// engineFor returns the memoized observer-less engine for the given
// parallelism and fleet, rebuilding it when the environment
// fingerprint, fleet, or parallelism changed since the last warm call.
// Engines are stateless, so concurrent runs may share the cached one;
// a race here at worst builds one redundant engine.
func (s *System) engineFor(par int, f *fleet.Fleet) *workflow.Engine {
	fp := s.env.Fingerprint()
	if sl := s.engineSlot.Load(); sl != nil && sl.envFP == fp && sl.fleet == f && sl.par == par {
		return sl.eng
	}
	engineOpts := []workflow.EngineOption{
		workflow.WithParallelism(par),
		workflow.WithCache(stepCacheAdapter{s.stepCache}, fp),
		workflow.WithEnvKeyer(s.facetKeyer),
	}
	if f != nil {
		engineOpts = append(engineOpts, workflow.WithDispatcher(f))
	}
	eng := workflow.NewEngine(s.reg, s.env, engineOpts...)
	s.engineSlot.Store(&engineSlot{envFP: fp, fleet: f, par: par, eng: eng})
	return eng
}

// SetCompiledPlans toggles compiled-plan execution (on by default).
// When off, cached plans still compile and cache their artifacts, but
// every run takes the interpreted engine path — the A/B seam the
// byte-identity tests and arachnet-bench's -compiledbench use. Safe
// to flip concurrently with serving; in-flight runs keep the path
// they started on.
func (s *System) SetCompiledPlans(enabled bool) {
	s.compiledOff.Store(!enabled)
}

// planEntry is one memoized planning outcome: everything the three
// planning agents produce for a query against one registry generation
// and environment, plus the plan compiled from it. Entries are shared
// across runs and must be treated as immutable — the pipeline only
// ever reads these artifacts after the planning stages complete.
type planEntry struct {
	query    string // original query text (snapshot replay re-plans it)
	spec     nlq.Spec
	problem  *querymind.ProblemSpec
	design   *workflowscout.Design
	solution *solutionweaver.Solution
	// compiled is the workflow lowered against the registry generation
	// this entry is keyed by; nil when compilation failed and runs
	// should take the interpreted path.
	compiled *workflow.CompiledPlan
}

// planKeyPool recycles the byte buffers plan keys are assembled in, so
// a warm Ask's cache probe allocates nothing.
var planKeyPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 160)
	return &b
}}

// appendPlanKey builds the plan-cache key into b. The registry
// generation makes a curation promotion invalidate every previously
// cached plan: the generation is read before planning starts, so a
// plan computed against the pre-promotion catalog is only ever served
// to callers that also observed the pre-promotion generation.
// Collapsing ASCII whitespace runs is the only normalization applied
// to the query — anything stronger risks conflating queries the
// parser distinguishes (and under-normalizing merely costs a
// duplicate cache entry, never a wrong hit).
func appendPlanKey(b []byte, query string, gen uint64, envFP string) []byte {
	pendingSpace := false
	for i := 0; i < len(query); i++ {
		c := query[i]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\v' || c == '\f' {
			pendingSpace = len(b) > 0
			continue
		}
		if pendingSpace {
			b = append(b, ' ')
			pendingSpace = false
		}
		b = append(b, c)
	}
	b = append(b, 0)
	b = strconv.AppendUint(b, gen, 10)
	b = append(b, 0)
	b = append(b, envFP...)
	return b
}

// bytesKey views b as a string without copying. Only for transient
// map probes (lruCache.Get does not retain its key); the caller must
// not let the string outlive b's contents.
func bytesKey(b []byte) string {
	return unsafe.String(unsafe.SliceData(b), len(b))
}

// plan runs (or replays) the three planning stages — QueryMind,
// WorkflowScout, SolutionWeaver — filling rep and emitting stage
// events either way, so observers and expert review behave identically
// on hits and misses; cached replays mark their StageCompleted events
// Cached. A veto or failure surfaces as a *PipelineError at the
// corresponding stage. Alongside the solution it returns the compiled
// plan when one exists (cache-enabled calls whose workflow compiled).
func (s *System) plan(ctx context.Context, query string, cfg askConfig, em *emitter, rep *Report) (*solutionweaver.Solution, *workflow.CompiledPlan, error) {
	key := ""
	if !cfg.noCache {
		// The key is assembled in a pooled buffer and probed through a
		// no-copy string view; it is materialized as a real string only
		// on a miss, for Put. A warm hit allocates nothing here.
		kb := planKeyPool.Get().(*[]byte)
		buf := appendPlanKey((*kb)[:0], query, s.reg.Generation(), s.env.Fingerprint())
		v, ok := s.planCache.Get(bytesKey(buf))
		if !ok {
			key = string(buf)
		}
		*kb = buf[:0]
		planKeyPool.Put(kb)
		if ok {
			pe := v.(*planEntry)
			if !em.active() {
				// No observers, no sink: fill the report wholesale. The
				// per-stage replay below exists only to give observers
				// the same event sequence a fresh run produces.
				if err := ctx.Err(); err != nil {
					return nil, nil, pipelineErr(StageProblem, query, err)
				}
				rep.Spec, rep.Problem = pe.spec, pe.problem
				rep.Design = pe.design
				rep.Solution = pe.solution
				return pe.solution, pe.compiled, nil
			}
			// Fill rep stage by stage, just before each StageCompleted,
			// so a veto or cancellation mid-replay leaves the same
			// partial Report shape a fresh run would have left.
			for _, st := range []struct {
				stage    string
				artifact any
				fill     func()
			}{
				{StageProblem, pe.problem, func() { rep.Spec, rep.Problem = pe.spec, pe.problem }},
				{StageDesign, pe.design, func() { rep.Design = pe.design }},
				{StageSolution, pe.solution, func() { rep.Solution = pe.solution }},
			} {
				if err := ctx.Err(); err != nil {
					return nil, nil, pipelineErr(st.stage, query, err)
				}
				if err := em.emit(&StageStarted{Stage: st.stage}); err != nil {
					return nil, nil, pipelineErr(st.stage, query, err)
				}
				st.fill()
				if err := em.emit(&StageCompleted{Stage: st.stage, Artifact: st.artifact, Cached: true}); err != nil {
					return nil, nil, pipelineErr(st.stage, query, err)
				}
			}
			return pe.solution, pe.compiled, nil
		}
	}

	// Language analysis + problem decomposition (QueryMind).
	if err := ctx.Err(); err != nil {
		return nil, nil, pipelineErr(StageProblem, query, err)
	}
	if err := em.emit(&StageStarted{Stage: StageProblem}); err != nil {
		return nil, nil, pipelineErr(StageProblem, query, err)
	}
	rep.Spec = nlq.Parse(query, s.env.Catalog)
	data := s.env.Data()
	problem, err := s.queryMind.Analyze(rep.Spec, querymind.DataAvailability{
		HasCrossLayerMap: data.HasCrossLayerMap,
		MapCoverage:      data.MapCoverage,
		HasTraceArchive:  data.HasTraceArchive,
		HasBGPStream:     data.HasBGPStream,
		WindowDays:       data.WindowDays,
	})
	if err != nil {
		return nil, nil, pipelineErr(StageProblem, query, err)
	}
	rep.Problem = problem
	if err := em.emit(&StageCompleted{Stage: StageProblem, Artifact: problem}); err != nil {
		return nil, nil, pipelineErr(StageProblem, query, err)
	}

	// Solution space exploration (WorkflowScout).
	if err := ctx.Err(); err != nil {
		return nil, nil, pipelineErr(StageDesign, query, err)
	}
	if err := em.emit(&StageStarted{Stage: StageDesign}); err != nil {
		return nil, nil, pipelineErr(StageDesign, query, err)
	}
	design, err := s.scout.Design(problem, s.reg)
	if err != nil {
		return nil, nil, pipelineErr(StageDesign, query, err)
	}
	rep.Design = design
	if err := em.emit(&StageCompleted{Stage: StageDesign, Artifact: design}); err != nil {
		return nil, nil, pipelineErr(StageDesign, query, err)
	}

	// Implementation (SolutionWeaver).
	if err := ctx.Err(); err != nil {
		return nil, nil, pipelineErr(StageSolution, query, err)
	}
	if err := em.emit(&StageStarted{Stage: StageSolution}); err != nil {
		return nil, nil, pipelineErr(StageSolution, query, err)
	}
	solution, err := s.weaver.Weave(design.Chosen, s.reg)
	if err != nil {
		return nil, nil, pipelineErr(StageSolution, query, err)
	}
	rep.Solution = solution
	if err := em.emit(&StageCompleted{Stage: StageSolution, Artifact: solution}); err != nil {
		return nil, nil, pipelineErr(StageSolution, query, err)
	}

	var compiled *workflow.CompiledPlan
	if key != "" {
		// Lower the fresh plan while it enters the cache: compilation
		// shares the plan's invalidation exactly (the key carries the
		// registry generation and environment fingerprint it resolved
		// against). A workflow that fails to compile caches with a nil
		// artifact and keeps taking the interpreted path.
		compiled, _ = workflow.Compile(solution.Workflow, s.reg)
		pe := &planEntry{
			query: query, spec: rep.Spec, problem: problem,
			design: design, solution: solution, compiled: compiled,
		}
		// Plans are metadata-sized; charge a token amount so a byte
		// bound, if ever set, stays meaningful.
		s.planCache.Put(key, pe, int64(len(query))+int64(len(solution.Code))+512)
	}
	return solution, compiled, nil
}

// AskBatch serves many queries from one System, fanning out over a
// bounded worker pool (AskParallelism sets the bound). Duplicate
// queries within one batch are deduplicated (singleflight): each
// distinct query runs the pipeline once and every duplicate index
// shares the same *Report, so observers fire once per distinct query.
// Reports align with queries by index; failed queries leave their
// partial report in place and their *PipelineError joined into the
// returned error.
func (s *System) AskBatch(ctx context.Context, queries []string, opts ...AskOption) ([]*Report, error) {
	// Fast path: zero work means zero workers, channels and
	// allocations beyond the empty (non-nil) result slice.
	if len(queries) == 0 {
		return []*Report{}, nil
	}
	cfg := newAskConfig(opts)

	// Singleflight: collapse identical queries to one pipeline run.
	// Reports are read-only after a run, so duplicate indices can alias
	// the same *Report safely.
	firstIdx := make(map[string]int, len(queries))
	var distinct []int
	for i, q := range queries {
		if _, dup := firstIdx[q]; !dup {
			firstIdx[q] = i
			distinct = append(distinct, i)
		}
	}

	workers := cfg.parallelism
	if workers > len(distinct) {
		workers = len(distinct)
	}
	if workers < 1 {
		workers = 1
	}

	// Divide the concurrency budget between the pool and each run's
	// step parallelism, so AskParallelism(n) bounds total concurrency
	// instead of compounding to n².
	perCall := cfg.parallelism / workers
	if perCall < 1 {
		perCall = 1
	}
	callOpts := append(append([]AskOption{}, opts...), AskParallelism(perCall))

	reports := make([]*Report, len(queries))
	errs := make([]error, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i], errs[i] = s.Ask(ctx, queries[i], callOpts...)
			}
		}()
	}
	for _, i := range distinct {
		next <- i
	}
	close(next)
	wg.Wait()
	for i, q := range queries {
		if first := firstIdx[q]; first != i {
			// Duplicates share the run's Report; its error is already
			// represented once in the joined error.
			reports[i] = reports[first]
		}
	}
	return reports, errors.Join(errs...)
}

// curate snapshots the observation history and runs one serialized
// curation pass, recording any promotions. A pass that would see no
// observations beyond the previous one is skipped, so back-to-back
// callers don't re-mine an unchanged history.
func (s *System) curate() ([]registrycurator.Promotion, error) {
	s.curateMu.Lock()
	defer s.curateMu.Unlock()
	s.mu.Lock()
	seen := s.curatedThrough
	hist := make([]registrycurator.Observation, len(s.history))
	copy(hist, s.history)
	s.mu.Unlock()
	if len(hist) <= seen {
		return nil, nil
	}
	promos, err := s.curator.Curate(hist, s.reg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(hist) > s.curatedThrough {
		s.curatedThrough = len(hist)
	}
	s.promotions = append(s.promotions, promos...)
	s.mu.Unlock()
	return promos, nil
}

package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/agents/registrycurator"
	"arachnet/internal/agents/solutionweaver"
	"arachnet/internal/agents/workflowscout"
	"arachnet/internal/nlq"
	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// Stage names, in pipeline order. The first four are passed to
// expert-mode review hooks; all five label PipelineError.Stage
// (curation failures are reported, not reviewed).
const (
	StageProblem  = "querymind"
	StageDesign   = "workflowscout"
	StageSolution = "solutionweaver"
	StageResult   = "execution"
	StageCuration = "registrycurator"
)

// ReviewHook inspects (and may veto) the artifact leaving each of the
// four pipeline stages when a call runs in expert mode. Returning an
// error aborts the pipeline.
type ReviewHook func(stage string, artifact any) error

// askConfig collects per-call serving parameters.
type askConfig struct {
	observers   []Observer
	curate      bool
	timeout     time.Duration
	parallelism int
}

// AskOption configures one Ask, AskStream, AskBatch or Submit call.
// Options are per-call: a single shared System serves expert-reviewed,
// curation-free, and deadline-bound requests side by side.
type AskOption func(*askConfig)

// AskExpert runs the call in expert mode: hook reviews the artifact
// leaving each of the four pipeline stages (problem, design, solution,
// result) and may veto it. Expert review is implemented as an ordinary
// event observer — AskExpert(h) is AskObserver over the
// stage-completion events.
func AskExpert(hook ReviewHook) AskOption {
	if hook == nil {
		return func(*askConfig) {}
	}
	return AskObserver(expertReviewer(hook))
}

// AskObserver attaches an event observer to the call. Observers see
// every event of the run (stages, steps, curation, Done) and may veto
// the pipeline by returning an error. Multiple observers fire in
// attachment order. Within one run, calls are serialized on the
// pipeline's goroutine; an observer passed to AskBatch is shared by
// the pool's workers and must be safe for concurrent use.
func AskObserver(obs Observer) AskOption {
	return func(c *askConfig) {
		if obs != nil {
			c.observers = append(c.observers, obs)
		}
	}
}

// AskWithoutCuration disables post-run registry evolution for this
// call (curation is on by default).
func AskWithoutCuration() AskOption {
	return func(c *askConfig) { c.curate = false }
}

// AskTimeout bounds the call's wall-clock time, on top of whatever
// deadline the caller's context already carries. Non-positive
// durations are explicitly ignored — the call runs unbounded — rather
// than arming an already-expired deadline. For Submit the budget
// covers pipeline execution, not time spent queued.
func AskTimeout(d time.Duration) AskOption {
	return func(c *askConfig) {
		if d > 0 {
			c.timeout = d
		}
	}
}

// AskParallelism bounds concurrency: how many independent workflow
// steps an Ask executes at once, and for AskBatch the total budget —
// divided between concurrent queries and their steps. Default
// GOMAXPROCS; values below 1 are explicitly ignored and the default
// applies.
func AskParallelism(n int) AskOption {
	return func(c *askConfig) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

func newAskConfig(opts []AskOption) askConfig {
	cfg := askConfig{curate: true, parallelism: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// System is the assembled ArachNet pipeline over one environment and
// registry. A System is safe for concurrent use: any number of
// goroutines may Ask at once, while the curator evolves the shared
// registry behind its write lock.
type System struct {
	env *Environment
	reg *registry.Registry

	queryMind *querymind.Agent
	scout     *workflowscout.Agent
	weaver    *solutionweaver.Agent
	curator   *registrycurator.Agent

	mu         sync.Mutex // guards history and promotions
	history    []registrycurator.Observation
	promotions []registrycurator.Promotion

	curateMu sync.Mutex // serializes curation passes
	// curatedThrough is the history length the last curation pass saw
	// (guarded by mu); a pass with nothing new is skipped.
	curatedThrough int

	// jobs is the async serving subsystem (see jobs.go); its worker
	// pool starts lazily on the first Submit.
	jobs jobTable
}

// maxHistory bounds the observation window curation mines. Patterns
// need support 2 to promote, so recurring shapes are caught long
// before the window slides; the bound keeps per-call curation cost
// flat in long-lived serving processes.
const maxHistory = 512

// NewSystem assembles a pipeline. A nil registry uses the full builtin
// catalog.
func NewSystem(env *Environment, reg *registry.Registry) (*System, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	if reg == nil {
		reg = BuiltinRegistry()
	}
	return &System{
		env: env, reg: reg,
		queryMind: querymind.New(),
		scout:     workflowscout.New(),
		weaver:    solutionweaver.New(),
		curator:   registrycurator.New(),
	}, nil
}

// Registry exposes the live registry (it evolves as the curator
// promotes patterns).
func (s *System) Registry() *registry.Registry { return s.reg }

// Environment exposes the execution environment.
func (s *System) Environment() *Environment { return s.env }

// Promotions returns every composite promoted so far.
func (s *System) Promotions() []registrycurator.Promotion {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]registrycurator.Promotion, len(s.promotions))
	copy(out, s.promotions)
	return out
}

// History returns the executed-workflow observations recorded so far.
func (s *System) History() []registrycurator.Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]registrycurator.Observation, len(s.history))
	copy(out, s.history)
	return out
}

// Report is the full record of one pipeline run.
type Report struct {
	Query    string
	Spec     nlq.Spec
	Problem  *querymind.ProblemSpec
	Design   *workflowscout.Design
	Solution *solutionweaver.Solution
	Result   *workflow.Result
	// Promotions performed by the curator after this run.
	Promotions []registrycurator.Promotion
	Elapsed    time.Duration
}

// Ask runs the full four-agent pipeline on a natural-language query:
// parse → QueryMind → WorkflowScout → SolutionWeaver → execute →
// RegistryCurator. The context cancels the call between stages and
// mid-execution; failures surface as *PipelineError. The partially
// filled Report is returned alongside any error, with Elapsed always
// stamped.
//
// Ask is a synchronous drain of the same event-emitting pipeline that
// backs AskStream and Submit — observers registered with AskObserver
// (including expert review) fire inline; no channel or goroutine is
// involved, so a plain Ask pays no event-delivery overhead.
func (s *System) Ask(ctx context.Context, query string, opts ...AskOption) (*Report, error) {
	cfg := newAskConfig(opts)
	em := &emitter{query: query, observers: cfg.observers}
	rep, err := s.run(ctx, query, cfg, em)
	em.emit(&Done{Report: rep, Err: err})
	return rep, err
}

// streamBuffer decouples the pipeline from the consumer: a run can get
// this many events ahead before event emission blocks on the reader.
const streamBuffer = 16

// AskStream is the non-blocking sibling of Ask: it starts the pipeline
// in a background goroutine and returns a channel of typed events —
// stage transitions, per-step execution, curation promotions — ending
// with a Done event carrying exactly what Ask would have returned. The
// channel is closed after Done.
//
// The consumer must drain the channel (or cancel ctx) — the pipeline
// blocks once the consumer falls streamBuffer events behind, and after
// ctx is cancelled undeliverable events are dropped so an abandoned
// stream cannot wedge the run.
func (s *System) AskStream(ctx context.Context, query string, opts ...AskOption) <-chan Event {
	cfg := newAskConfig(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan Event, streamBuffer)
	em := &emitter{query: query, observers: cfg.observers, sink: func(ev Event) {
		// Prefer delivery: buffer space or a ready receiver always
		// wins, even when ctx is already cancelled — otherwise the
		// closed Done channel could race a deliverable send and drop
		// the terminal event on an actively-draining consumer.
		select {
		case ch <- ev:
			return
		default:
		}
		select {
		case ch <- ev:
		case <-ctx.Done():
			if _, isDone := ev.(*Done); isDone {
				// The terminal event carries the run's outcome: give a
				// slow-but-live consumer a bounded grace to take it
				// before the channel closes without one.
				t := time.NewTimer(subscriberGrace)
				defer t.Stop()
				select {
				case ch <- ev:
				case <-t.C:
				}
				return
			}
			select {
			case ch <- ev:
			default: // abandoned stream: drop rather than wedge the run
			}
		}
	}}
	go func() {
		defer close(ch)
		rep, err := s.run(ctx, query, cfg, em)
		em.emit(&Done{Report: rep, Err: err})
	}()
	return ch
}

// run is the single pipeline implementation behind Ask, AskStream and
// the job workers. It emits events through em as stages and steps
// progress; an observer veto (non-nil error from emit) aborts the run
// as a *PipelineError at the vetoed stage. The terminal Done event is
// emitted by the caller, which knows how the run is being served.
func (s *System) run(ctx context.Context, query string, cfg askConfig, em *emitter) (rep *Report, err error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	start := time.Now()
	rep = &Report{Query: query}
	defer func() { rep.Elapsed = time.Since(start) }()

	// Language analysis + problem decomposition (QueryMind).
	if err := ctx.Err(); err != nil {
		return rep, pipelineErr(StageProblem, query, err)
	}
	if err := em.emit(&StageStarted{Stage: StageProblem}); err != nil {
		return rep, pipelineErr(StageProblem, query, err)
	}
	rep.Spec = nlq.Parse(query, s.env.Catalog)
	data := s.env.Data()
	problem, err := s.queryMind.Analyze(rep.Spec, querymind.DataAvailability{
		HasCrossLayerMap: data.HasCrossLayerMap,
		MapCoverage:      data.MapCoverage,
		HasTraceArchive:  data.HasTraceArchive,
		HasBGPStream:     data.HasBGPStream,
		WindowDays:       data.WindowDays,
	})
	if err != nil {
		return rep, pipelineErr(StageProblem, query, err)
	}
	rep.Problem = problem
	if err := em.emit(&StageCompleted{Stage: StageProblem, Artifact: problem}); err != nil {
		return rep, pipelineErr(StageProblem, query, err)
	}

	// Solution space exploration (WorkflowScout).
	if err := ctx.Err(); err != nil {
		return rep, pipelineErr(StageDesign, query, err)
	}
	if err := em.emit(&StageStarted{Stage: StageDesign}); err != nil {
		return rep, pipelineErr(StageDesign, query, err)
	}
	design, err := s.scout.Design(problem, s.reg)
	if err != nil {
		return rep, pipelineErr(StageDesign, query, err)
	}
	rep.Design = design
	if err := em.emit(&StageCompleted{Stage: StageDesign, Artifact: design}); err != nil {
		return rep, pipelineErr(StageDesign, query, err)
	}

	// Implementation (SolutionWeaver).
	if err := ctx.Err(); err != nil {
		return rep, pipelineErr(StageSolution, query, err)
	}
	if err := em.emit(&StageStarted{Stage: StageSolution}); err != nil {
		return rep, pipelineErr(StageSolution, query, err)
	}
	solution, err := s.weaver.Weave(design.Chosen, s.reg)
	if err != nil {
		return rep, pipelineErr(StageSolution, query, err)
	}
	rep.Solution = solution
	if err := em.emit(&StageCompleted{Stage: StageSolution, Artifact: solution}); err != nil {
		return rep, pipelineErr(StageSolution, query, err)
	}

	// Execution over the parallel DAG engine. The step bridge surfaces
	// per-step events; a veto there cancels the run mid-workflow.
	if err := em.emit(&StageStarted{Stage: StageResult}); err != nil {
		return rep, pipelineErr(StageResult, query, err)
	}
	exCtx, cancelEx := context.WithCancel(ctx)
	defer cancelEx()
	bridge := &stepBridge{em: em, cancel: cancelEx}
	engine := workflow.NewEngine(s.reg, s.env,
		workflow.WithParallelism(cfg.parallelism), workflow.WithObserver(bridge))
	result, err := engine.Run(exCtx, solution.Workflow)
	rep.Result = result
	s.mu.Lock()
	s.history = append(s.history, registrycurator.Observation{
		Workflow: solution.Workflow, Result: result, Err: err,
	})
	if len(s.history) > maxHistory {
		trimmed := len(s.history) - maxHistory
		s.history = append([]registrycurator.Observation(nil), s.history[trimmed:]...)
		s.curatedThrough -= trimmed
		if s.curatedThrough < 0 {
			s.curatedThrough = 0
		}
	}
	s.mu.Unlock()
	if bridge.veto != nil {
		return rep, pipelineErr(StageResult, query, bridge.veto)
	}
	if err != nil {
		return rep, pipelineErr(StageResult, query, err)
	}
	if err := em.emit(&StageCompleted{Stage: StageResult, Artifact: result}); err != nil {
		return rep, pipelineErr(StageResult, query, err)
	}

	// Registry evolution (RegistryCurator). Serialized so concurrent
	// calls never race to promote the same pattern.
	if cfg.curate {
		if err := em.emit(&StageStarted{Stage: StageCuration}); err != nil {
			return rep, pipelineErr(StageCuration, query, err)
		}
		promos, err := s.curate()
		if err != nil {
			return rep, pipelineErr(StageCuration, query, err)
		}
		rep.Promotions = promos
		for _, p := range promos {
			if err := em.emit(&CurationPromoted{Promotion: p}); err != nil {
				return rep, pipelineErr(StageCuration, query, err)
			}
		}
		if err := em.emit(&StageCompleted{Stage: StageCuration, Artifact: promos}); err != nil {
			return rep, pipelineErr(StageCuration, query, err)
		}
	}
	return rep, nil
}

// AskBatch serves many queries from one System, fanning out over a
// bounded worker pool (AskParallelism sets the bound). Reports align
// with queries by index; failed queries leave their partial report in
// place and their *PipelineError joined into the returned error.
func (s *System) AskBatch(ctx context.Context, queries []string, opts ...AskOption) ([]*Report, error) {
	// Fast path: zero work means zero workers, channels and
	// allocations beyond the empty (non-nil) result slice.
	if len(queries) == 0 {
		return []*Report{}, nil
	}
	cfg := newAskConfig(opts)
	workers := cfg.parallelism
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}

	// Divide the concurrency budget between the pool and each run's
	// step parallelism, so AskParallelism(n) bounds total concurrency
	// instead of compounding to n².
	perCall := cfg.parallelism / workers
	if perCall < 1 {
		perCall = 1
	}
	callOpts := append(append([]AskOption{}, opts...), AskParallelism(perCall))

	reports := make([]*Report, len(queries))
	errs := make([]error, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i], errs[i] = s.Ask(ctx, queries[i], callOpts...)
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return reports, errors.Join(errs...)
}

// curate snapshots the observation history and runs one serialized
// curation pass, recording any promotions. A pass that would see no
// observations beyond the previous one is skipped, so back-to-back
// callers don't re-mine an unchanged history.
func (s *System) curate() ([]registrycurator.Promotion, error) {
	s.curateMu.Lock()
	defer s.curateMu.Unlock()
	s.mu.Lock()
	seen := s.curatedThrough
	hist := make([]registrycurator.Observation, len(s.history))
	copy(hist, s.history)
	s.mu.Unlock()
	if len(hist) <= seen {
		return nil, nil
	}
	promos, err := s.curator.Curate(hist, s.reg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(hist) > s.curatedThrough {
		s.curatedThrough = len(hist)
	}
	s.promotions = append(s.promotions, promos...)
	s.mu.Unlock()
	return promos, nil
}

package core

import (
	"fmt"
	"time"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/agents/registrycurator"
	"arachnet/internal/agents/solutionweaver"
	"arachnet/internal/agents/workflowscout"
	"arachnet/internal/nlq"
	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// Mode selects between fully automated operation and expert-in-the-loop
// review.
type Mode int

// Operating modes.
const (
	Standard Mode = iota // fully automated
	Expert               // review hooks fire between agents
)

// Stage names passed to expert-mode review hooks, in pipeline order.
const (
	StageProblem  = "querymind"
	StageDesign   = "workflowscout"
	StageSolution = "solutionweaver"
	StageResult   = "execution"
)

// ReviewHook inspects (and may veto) the artifact leaving each stage in
// expert mode. Returning an error aborts the pipeline.
type ReviewHook func(stage string, artifact any) error

// Option configures a System.
type Option func(*System)

// WithMode sets the operating mode.
func WithMode(m Mode) Option { return func(s *System) { s.mode = m } }

// WithReviewHook installs the expert-mode review hook.
func WithReviewHook(h ReviewHook) Option { return func(s *System) { s.hook = h } }

// WithCuration toggles automatic post-run registry curation (on by
// default).
func WithCuration(on bool) Option { return func(s *System) { s.curate = on } }

// System is the assembled ArachNet pipeline over one environment and
// registry.
type System struct {
	env    *Environment
	reg    *registry.Registry
	mode   Mode
	hook   ReviewHook
	curate bool

	queryMind  *querymind.Agent
	scout      *workflowscout.Agent
	weaver     *solutionweaver.Agent
	curator    *registrycurator.Agent
	history    []registrycurator.Observation
	promotions []registrycurator.Promotion
}

// NewSystem assembles a pipeline. A nil registry uses the full builtin
// catalog.
func NewSystem(env *Environment, reg *registry.Registry, opts ...Option) (*System, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	if reg == nil {
		reg = BuiltinRegistry()
	}
	s := &System{
		env: env, reg: reg, curate: true,
		queryMind: querymind.New(),
		scout:     workflowscout.New(),
		weaver:    solutionweaver.New(),
		curator:   registrycurator.New(),
	}
	for _, opt := range opts {
		opt(s)
	}
	return s, nil
}

// Registry exposes the live registry (it evolves as the curator
// promotes patterns).
func (s *System) Registry() *registry.Registry { return s.reg }

// Environment exposes the execution environment.
func (s *System) Environment() *Environment { return s.env }

// Promotions returns every composite promoted so far.
func (s *System) Promotions() []registrycurator.Promotion {
	out := make([]registrycurator.Promotion, len(s.promotions))
	copy(out, s.promotions)
	return out
}

// History returns the executed-workflow observations recorded so far.
func (s *System) History() []registrycurator.Observation {
	out := make([]registrycurator.Observation, len(s.history))
	copy(out, s.history)
	return out
}

// Report is the full record of one pipeline run.
type Report struct {
	Query    string
	Spec     nlq.Spec
	Problem  *querymind.ProblemSpec
	Design   *workflowscout.Design
	Solution *solutionweaver.Solution
	Result   *workflow.Result
	// Promotions performed by the curator after this run.
	Promotions []registrycurator.Promotion
	Elapsed    time.Duration
}

// Ask runs the full four-agent pipeline on a natural-language query:
// parse → QueryMind → WorkflowScout → SolutionWeaver → execute →
// RegistryCurator.
func (s *System) Ask(query string) (*Report, error) {
	start := time.Now()
	rep := &Report{Query: query}

	// Language analysis + problem decomposition (QueryMind).
	rep.Spec = nlq.Parse(query, s.env.Catalog)
	data := s.env.Data()
	problem, err := s.queryMind.Analyze(rep.Spec, querymind.DataAvailability{
		HasCrossLayerMap: data.HasCrossLayerMap,
		MapCoverage:      data.MapCoverage,
		HasTraceArchive:  data.HasTraceArchive,
		HasBGPStream:     data.HasBGPStream,
		WindowDays:       data.WindowDays,
	})
	if err != nil {
		return rep, err
	}
	rep.Problem = problem
	if err := s.review(StageProblem, problem); err != nil {
		return rep, err
	}

	// Solution space exploration (WorkflowScout).
	design, err := s.scout.Design(problem, s.reg)
	if err != nil {
		return rep, fmt.Errorf("core: design: %w", err)
	}
	rep.Design = design
	if err := s.review(StageDesign, design); err != nil {
		return rep, err
	}

	// Implementation (SolutionWeaver).
	solution, err := s.weaver.Weave(design.Chosen, s.reg)
	if err != nil {
		return rep, fmt.Errorf("core: weave: %w", err)
	}
	rep.Solution = solution
	if err := s.review(StageSolution, solution); err != nil {
		return rep, err
	}

	// Execution.
	engine := workflow.NewEngine(s.reg, s.env)
	result, err := engine.Run(solution.Workflow)
	rep.Result = result
	obs := registrycurator.Observation{Workflow: solution.Workflow, Result: result, Err: err}
	s.history = append(s.history, obs)
	if err != nil {
		return rep, fmt.Errorf("core: execute: %w", err)
	}
	if err := s.review(StageResult, result); err != nil {
		return rep, err
	}

	// Registry evolution (RegistryCurator).
	if s.curate {
		promos, err := s.curator.Curate(s.history, s.reg)
		if err != nil {
			return rep, fmt.Errorf("core: curate: %w", err)
		}
		rep.Promotions = promos
		s.promotions = append(s.promotions, promos...)
	}

	rep.Elapsed = time.Since(start)
	return rep, nil
}

func (s *System) review(stage string, artifact any) error {
	if s.mode != Expert || s.hook == nil {
		return nil
	}
	if err := s.hook(stage, artifact); err != nil {
		return fmt.Errorf("core: expert review rejected %s: %w", stage, err)
	}
	return nil
}

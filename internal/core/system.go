package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/agents/registrycurator"
	"arachnet/internal/agents/solutionweaver"
	"arachnet/internal/agents/workflowscout"
	"arachnet/internal/nlq"
	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// Stage names, in pipeline order. The first four are passed to
// expert-mode review hooks; all five label PipelineError.Stage
// (curation failures are reported, not reviewed).
const (
	StageProblem  = "querymind"
	StageDesign   = "workflowscout"
	StageSolution = "solutionweaver"
	StageResult   = "execution"
	StageCuration = "registrycurator"
)

// ReviewHook inspects (and may veto) the artifact leaving each of the
// four pipeline stages when a call runs in expert mode. Returning an
// error aborts the pipeline.
type ReviewHook func(stage string, artifact any) error

// askConfig collects per-call serving parameters.
type askConfig struct {
	hook        ReviewHook
	curate      bool
	timeout     time.Duration
	parallelism int
}

// AskOption configures one Ask or AskBatch call. Options are per-call:
// a single shared System serves expert-reviewed, curation-free, and
// deadline-bound requests side by side.
type AskOption func(*askConfig)

// AskExpert runs the call in expert mode: hook reviews the artifact
// leaving each of the four pipeline stages (problem, design, solution,
// result) and may veto it.
func AskExpert(hook ReviewHook) AskOption {
	return func(c *askConfig) { c.hook = hook }
}

// AskWithoutCuration disables post-run registry evolution for this
// call (curation is on by default).
func AskWithoutCuration() AskOption {
	return func(c *askConfig) { c.curate = false }
}

// AskTimeout bounds the call's wall-clock time, on top of whatever
// deadline the caller's context already carries.
func AskTimeout(d time.Duration) AskOption {
	return func(c *askConfig) { c.timeout = d }
}

// AskParallelism bounds concurrency: how many independent workflow
// steps an Ask executes at once, and for AskBatch the total budget —
// divided between concurrent queries and their steps. Default
// GOMAXPROCS.
func AskParallelism(n int) AskOption {
	return func(c *askConfig) {
		if n > 0 {
			c.parallelism = n
		}
	}
}

func newAskConfig(opts []AskOption) askConfig {
	cfg := askConfig{curate: true, parallelism: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(&cfg)
	}
	return cfg
}

// System is the assembled ArachNet pipeline over one environment and
// registry. A System is safe for concurrent use: any number of
// goroutines may Ask at once, while the curator evolves the shared
// registry behind its write lock.
type System struct {
	env *Environment
	reg *registry.Registry

	queryMind *querymind.Agent
	scout     *workflowscout.Agent
	weaver    *solutionweaver.Agent
	curator   *registrycurator.Agent

	mu         sync.Mutex // guards history and promotions
	history    []registrycurator.Observation
	promotions []registrycurator.Promotion

	curateMu sync.Mutex // serializes curation passes
	// curatedThrough is the history length the last curation pass saw
	// (guarded by mu); a pass with nothing new is skipped.
	curatedThrough int
}

// maxHistory bounds the observation window curation mines. Patterns
// need support 2 to promote, so recurring shapes are caught long
// before the window slides; the bound keeps per-call curation cost
// flat in long-lived serving processes.
const maxHistory = 512

// NewSystem assembles a pipeline. A nil registry uses the full builtin
// catalog.
func NewSystem(env *Environment, reg *registry.Registry) (*System, error) {
	if env == nil {
		return nil, fmt.Errorf("core: nil environment")
	}
	if reg == nil {
		reg = BuiltinRegistry()
	}
	return &System{
		env: env, reg: reg,
		queryMind: querymind.New(),
		scout:     workflowscout.New(),
		weaver:    solutionweaver.New(),
		curator:   registrycurator.New(),
	}, nil
}

// Registry exposes the live registry (it evolves as the curator
// promotes patterns).
func (s *System) Registry() *registry.Registry { return s.reg }

// Environment exposes the execution environment.
func (s *System) Environment() *Environment { return s.env }

// Promotions returns every composite promoted so far.
func (s *System) Promotions() []registrycurator.Promotion {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]registrycurator.Promotion, len(s.promotions))
	copy(out, s.promotions)
	return out
}

// History returns the executed-workflow observations recorded so far.
func (s *System) History() []registrycurator.Observation {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]registrycurator.Observation, len(s.history))
	copy(out, s.history)
	return out
}

// Report is the full record of one pipeline run.
type Report struct {
	Query    string
	Spec     nlq.Spec
	Problem  *querymind.ProblemSpec
	Design   *workflowscout.Design
	Solution *solutionweaver.Solution
	Result   *workflow.Result
	// Promotions performed by the curator after this run.
	Promotions []registrycurator.Promotion
	Elapsed    time.Duration
}

// Ask runs the full four-agent pipeline on a natural-language query:
// parse → QueryMind → WorkflowScout → SolutionWeaver → execute →
// RegistryCurator. The context cancels the call between stages and
// mid-execution; failures surface as *PipelineError. The partially
// filled Report is returned alongside any error, with Elapsed always
// stamped.
func (s *System) Ask(ctx context.Context, query string, opts ...AskOption) (*Report, error) {
	cfg := newAskConfig(opts)
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, cfg.timeout)
		defer cancel()
	}

	start := time.Now()
	rep := &Report{Query: query}
	defer func() { rep.Elapsed = time.Since(start) }()

	// Language analysis + problem decomposition (QueryMind).
	if err := ctx.Err(); err != nil {
		return rep, pipelineErr(StageProblem, query, err)
	}
	rep.Spec = nlq.Parse(query, s.env.Catalog)
	data := s.env.Data()
	problem, err := s.queryMind.Analyze(rep.Spec, querymind.DataAvailability{
		HasCrossLayerMap: data.HasCrossLayerMap,
		MapCoverage:      data.MapCoverage,
		HasTraceArchive:  data.HasTraceArchive,
		HasBGPStream:     data.HasBGPStream,
		WindowDays:       data.WindowDays,
	})
	if err != nil {
		return rep, pipelineErr(StageProblem, query, err)
	}
	rep.Problem = problem
	if err := review(cfg.hook, StageProblem, problem); err != nil {
		return rep, pipelineErr(StageProblem, query, err)
	}

	// Solution space exploration (WorkflowScout).
	if err := ctx.Err(); err != nil {
		return rep, pipelineErr(StageDesign, query, err)
	}
	design, err := s.scout.Design(problem, s.reg)
	if err != nil {
		return rep, pipelineErr(StageDesign, query, err)
	}
	rep.Design = design
	if err := review(cfg.hook, StageDesign, design); err != nil {
		return rep, pipelineErr(StageDesign, query, err)
	}

	// Implementation (SolutionWeaver).
	if err := ctx.Err(); err != nil {
		return rep, pipelineErr(StageSolution, query, err)
	}
	solution, err := s.weaver.Weave(design.Chosen, s.reg)
	if err != nil {
		return rep, pipelineErr(StageSolution, query, err)
	}
	rep.Solution = solution
	if err := review(cfg.hook, StageSolution, solution); err != nil {
		return rep, pipelineErr(StageSolution, query, err)
	}

	// Execution over the parallel DAG engine.
	engine := workflow.NewEngine(s.reg, s.env, workflow.WithParallelism(cfg.parallelism))
	result, err := engine.Run(ctx, solution.Workflow)
	rep.Result = result
	s.mu.Lock()
	s.history = append(s.history, registrycurator.Observation{
		Workflow: solution.Workflow, Result: result, Err: err,
	})
	if len(s.history) > maxHistory {
		trimmed := len(s.history) - maxHistory
		s.history = append([]registrycurator.Observation(nil), s.history[trimmed:]...)
		s.curatedThrough -= trimmed
		if s.curatedThrough < 0 {
			s.curatedThrough = 0
		}
	}
	s.mu.Unlock()
	if err != nil {
		return rep, pipelineErr(StageResult, query, err)
	}
	if err := review(cfg.hook, StageResult, result); err != nil {
		return rep, pipelineErr(StageResult, query, err)
	}

	// Registry evolution (RegistryCurator). Serialized so concurrent
	// calls never race to promote the same pattern.
	if cfg.curate {
		promos, err := s.curate()
		if err != nil {
			return rep, pipelineErr(StageCuration, query, err)
		}
		rep.Promotions = promos
	}
	return rep, nil
}

// AskBatch serves many queries from one System, fanning out over a
// bounded worker pool (AskParallelism sets the bound). Reports align
// with queries by index; failed queries leave their partial report in
// place and their *PipelineError joined into the returned error.
func (s *System) AskBatch(ctx context.Context, queries []string, opts ...AskOption) ([]*Report, error) {
	cfg := newAskConfig(opts)
	workers := cfg.parallelism
	if workers > len(queries) {
		workers = len(queries)
	}
	if workers < 1 {
		workers = 1
	}

	// Divide the concurrency budget between the pool and each run's
	// step parallelism, so AskParallelism(n) bounds total concurrency
	// instead of compounding to n².
	perCall := cfg.parallelism / workers
	if perCall < 1 {
		perCall = 1
	}
	callOpts := append(append([]AskOption{}, opts...), AskParallelism(perCall))

	reports := make([]*Report, len(queries))
	errs := make([]error, len(queries))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				reports[i], errs[i] = s.Ask(ctx, queries[i], callOpts...)
			}
		}()
	}
	for i := range queries {
		next <- i
	}
	close(next)
	wg.Wait()
	return reports, errors.Join(errs...)
}

// curate snapshots the observation history and runs one serialized
// curation pass, recording any promotions. A pass that would see no
// observations beyond the previous one is skipped, so back-to-back
// callers don't re-mine an unchanged history.
func (s *System) curate() ([]registrycurator.Promotion, error) {
	s.curateMu.Lock()
	defer s.curateMu.Unlock()
	s.mu.Lock()
	seen := s.curatedThrough
	hist := make([]registrycurator.Observation, len(s.history))
	copy(hist, s.history)
	s.mu.Unlock()
	if len(hist) <= seen {
		return nil, nil
	}
	promos, err := s.curator.Curate(hist, s.reg)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if len(hist) > s.curatedThrough {
		s.curatedThrough = len(hist)
	}
	s.promotions = append(s.promotions, promos...)
	s.mu.Unlock()
	return promos, nil
}

// review fires the per-call expert hook, if any.
func review(hook ReviewHook, stage string, artifact any) error {
	if hook == nil {
		return nil
	}
	if err := hook(stage, artifact); err != nil {
		return fmt.Errorf("expert review rejected %s: %w", stage, err)
	}
	return nil
}

package core

import (
	"context"
	"fmt"
	"time"

	"arachnet/internal/agents/registrycurator"
	"arachnet/internal/workflow"
)

// Event is one observable occurrence in the lifecycle of a pipeline
// run: stages starting and completing, individual workflow steps
// executing, curation promoting composites, and the terminal Done.
// Events are delivered in emission order; every run ends with exactly
// one Done. Concrete events are pointers to the structs below — type-
// switch to consume them:
//
//	switch ev := ev.(type) {
//	case *core.StepCompleted:
//		log.Printf("%s in %v", ev.Step, ev.Duration)
//	case *core.Done:
//		return ev.Report, ev.Err
//	}
//
// Events embed EventMeta, which carries the query, the emission
// sequence number, and the emission time.
type Event interface {
	meta() *EventMeta
}

// EventMeta is the header common to every event.
type EventMeta struct {
	// Query is the natural-language query of the run that emitted the
	// event.
	Query string
	// Seq is the 0-based emission index of the event within its run.
	Seq int
	// Time is when the event was emitted.
	Time time.Time
}

func (m *EventMeta) meta() *EventMeta { return m }

// StageStarted announces that a pipeline stage (StageProblem,
// StageDesign, StageSolution, StageResult or StageCuration) is about
// to run.
type StageStarted struct {
	EventMeta
	Stage string
}

// StageCompleted carries the artifact leaving a pipeline stage: a
// *querymind.ProblemSpec, *workflowscout.Design,
// *solutionweaver.Solution, *workflow.Result, or (for StageCuration)
// the []registrycurator.Promotion of the pass. An observer returning
// an error from a StageCompleted vetoes the pipeline — this is how
// expert review is implemented.
type StageCompleted struct {
	EventMeta
	Stage    string
	Artifact any
	// Cached marks a planning stage replayed from the System's plan
	// cache rather than recomputed; the artifact is the memoized one.
	// Observers (including expert review) fire either way.
	Cached bool
}

// StepStarted announces one workflow step being handed to a worker
// during the execution stage.
type StepStarted struct {
	EventMeta
	Step       string
	Capability string
}

// StepCompleted reports one workflow step finishing successfully.
type StepCompleted struct {
	EventMeta
	Step       string
	Capability string
	Duration   time.Duration
	// Cached marks a step whose outputs were served from the step
	// cache instead of executing the capability (Duration is zero).
	Cached bool
}

// StepFailed reports one workflow step failing (capability error,
// panic, or output-contract violation).
type StepFailed struct {
	EventMeta
	Step       string
	Capability string
	Duration   time.Duration
	Err        error
}

// CurationPromoted reports one composite capability promoted by the
// curator after this run.
type CurationPromoted struct {
	EventMeta
	Promotion registrycurator.Promotion
}

// Done is the terminal event of every run: the (possibly partial)
// Report and the run's error, exactly as Ask would return them. It is
// always the last event; AskStream closes the channel after it.
type Done struct {
	EventMeta
	Report *Report
	Err    error
}

// Observer watches the event stream of one call, registered with
// AskObserver. Returning a non-nil error vetoes the pipeline: at a
// StageCompleted the run aborts before the next stage; at a step event
// the in-flight workflow is cancelled. Veto errors surface as a
// *PipelineError naming the stage. Errors returned for Done are
// ignored (the run is already over). Observers run synchronously on
// the pipeline's goroutine — keep them fast.
type Observer interface {
	Observe(Event) error
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Event) error

// Observe implements Observer.
func (f ObserverFunc) Observe(ev Event) error { return f(ev) }

// expertReviewer reimplements expert-mode review as an ordinary
// observer: it inspects the artifact leaving each of the four reviewed
// stages (curation is reported, not reviewed) and turns a hook
// rejection into a pipeline veto.
func expertReviewer(hook ReviewHook) Observer {
	return ObserverFunc(func(ev Event) error {
		sc, ok := ev.(*StageCompleted)
		if !ok || sc.Stage == StageCuration {
			return nil
		}
		if err := hook(sc.Stage, sc.Artifact); err != nil {
			return fmt.Errorf("expert review rejected %s: %w", sc.Stage, err)
		}
		return nil
	})
}

// emitter delivers one run's events: it stamps EventMeta, notifies the
// call's observers, and forwards to an optional sink (the AskStream
// channel or a job's event log). The first observer error is returned
// as the veto verdict; remaining observers and the sink still see the
// event.
type emitter struct {
	query     string
	seq       int
	observers []Observer
	sink      func(Event)
}

// active reports whether anyone would see an event from this run.
// The warm serving path checks it before constructing events at all:
// a plain Ask with no observers and no sink allocates nothing for
// observability it cannot deliver. An inactive emitter also cannot
// veto, so skipping emission is semantically identical, not just
// byte-identical.
func (e *emitter) active() bool {
	return len(e.observers) > 0 || e.sink != nil
}

func (e *emitter) emit(ev Event) error {
	m := ev.meta()
	m.Query, m.Seq, m.Time = e.query, e.seq, time.Now()
	e.seq++
	var veto error
	for _, o := range e.observers {
		if err := o.Observe(ev); err != nil && veto == nil {
			veto = err
		}
	}
	if e.sink != nil {
		e.sink(ev)
	}
	return veto
}

// stepBridge adapts the workflow engine's step-level Observer to core
// events. An observer veto at a step event cancels the in-flight run;
// the veto error then takes precedence over the engine's cancellation
// error. The engine serializes observer calls per run, so no locking
// is needed here.
type stepBridge struct {
	em     *emitter
	cancel context.CancelFunc
	veto   error
}

func (b *stepBridge) StepStarted(id, capability string) {
	b.observe(b.em.emit(&StepStarted{Step: id, Capability: capability}))
}

func (b *stepBridge) StepFinished(stat workflow.StepStat) {
	if stat.Err != nil {
		b.observe(b.em.emit(&StepFailed{
			Step: stat.ID, Capability: stat.Capability, Duration: stat.Duration, Err: stat.Err,
		}))
		return
	}
	b.observe(b.em.emit(&StepCompleted{
		Step: stat.ID, Capability: stat.Capability, Duration: stat.Duration, Cached: stat.Cached,
	}))
}

func (b *stepBridge) observe(err error) {
	if err != nil && b.veto == nil {
		b.veto = err
		b.cancel()
	}
}

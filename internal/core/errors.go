package core

import (
	"errors"
	"fmt"

	"arachnet/internal/workflow"
)

// Async serving errors (see jobs.go).
var (
	// ErrJobQueueFull is returned by Submit when the bounded job queue
	// has no room; callers should shed load or retry later.
	ErrJobQueueFull = errors.New("arachnet: job queue full")
	// ErrJobsStarted is returned by SetJobLimits after the worker pool
	// has already started (first Submit wins).
	ErrJobsStarted = errors.New("arachnet: job workers already started")
	// ErrJobsClosed is returned by Submit after Close shut the job
	// subsystem down.
	ErrJobsClosed = errors.New("arachnet: job subsystem closed")
)

// PipelineError is the typed failure of one Ask: which pipeline stage
// failed, the failing workflow step (execution stage only), and the
// query that triggered it. It wraps the underlying cause, so
// errors.Is/As see through it (e.g. to context.DeadlineExceeded, a
// *querymind.ErrInfeasible, or a *workflow.StepError).
type PipelineError struct {
	// Stage is the pipeline stage that failed: StageProblem,
	// StageDesign, StageSolution, StageResult, or StageCuration.
	Stage string
	// Step is the workflow step ID that failed when Stage is
	// StageResult; empty otherwise.
	Step string
	// Query is the natural-language query of the failed Ask.
	Query string
	// Err is the underlying cause.
	Err error
}

func (e *PipelineError) Error() string {
	msg := "arachnet: stage " + e.Stage
	if e.Step != "" {
		msg += fmt.Sprintf(" step %q", e.Step)
	}
	return msg + ": " + e.Err.Error()
}

func (e *PipelineError) Unwrap() error { return e.Err }

// pipelineErr wraps err with stage and query context, extracting the
// failing step ID when the cause is a workflow step failure.
func pipelineErr(stage, query string, err error) *PipelineError {
	pe := &PipelineError{Stage: stage, Query: query, Err: err}
	var se *workflow.StepError
	if errors.As(err, &se) {
		pe.Step = se.Step
	}
	return pe
}

// Async serving: a bounded-queue job scheduler that turns one System
// into a long-lived server. Submit enqueues a query and returns a Job
// immediately; a lazily-started worker pool drains the queue through
// the same event-emitting pipeline that backs Ask and AskStream. Jobs
// are tracked (Jobs), observable (Events), awaitable (Wait) and
// cancellable (Cancel) — queued or mid-run.
package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"time"
)

// JobState is the lifecycle phase of a submitted job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing the pipeline.
	JobRunning JobState = "running"
	// JobDone: finished — successfully or with an error (see Wait).
	JobDone JobState = "done"
	// JobCancelled: cancelled before or during execution.
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (st JobState) terminal() bool { return st == JobDone || st == JobCancelled }

const (
	// defaultJobQueueDepth bounds how many jobs may wait for a worker
	// before Submit starts refusing with ErrJobQueueFull.
	defaultJobQueueDepth = 128
	// maxRetainedJobs bounds how many finished jobs Jobs() remembers;
	// older finished jobs are pruned so a long-lived server's job
	// table stays flat. In-flight jobs are never pruned.
	maxRetainedJobs = 1024
)

// Job is one asynchronously-served query. All methods are safe for
// concurrent use.
type Job struct {
	id    uint64
	query string
	opts  []AskOption

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	events    []Event
	state     JobState
	cancelled bool
	report    *Report
	err       error
	done      chan struct{}
}

// ID is the job's submission-ordered identifier, unique per System.
func (j *Job) ID() uint64 { return j.id }

// Query returns the job's natural-language query.
func (j *Job) Query() string { return j.query }

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state;
// it composes with select the way context.Done does.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes (or ctx is cancelled) and returns
// the job's report and error, exactly as a blocking Ask would have. A
// nil ctx waits indefinitely.
func (j *Job) Wait(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.report, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel stops the job: a queued job completes immediately with
// context.Canceled and never runs; a running job has its pipeline
// cancelled mid-flight. Cancel is idempotent and a no-op on finished
// jobs.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == JobQueued {
		j.cancelled = true
		j.events = append(j.events, j.jobDoneEvent())
		j.finishLocked(nil, context.Canceled)
		j.mu.Unlock()
		j.cancel()
		return
	}
	if j.state == JobRunning {
		j.cancelled = true
	}
	j.mu.Unlock()
	j.cancel()
}

// subscriberGrace bounds how long a replay goroutine waits on a
// non-draining subscriber after the job's context is released (the job
// finished or was cancelled). Live subscribers drain well within it;
// abandoned ones stop leaking a goroutine after it.
const subscriberGrace = 5 * time.Second

// Events returns a channel that replays the job's event stream from
// the beginning — late subscribers see the full history — then follows
// it live and closes after the terminal Done event. Each call gets an
// independent channel; multiple subscribers may watch one job. The
// caller should drain the channel: once the job reaches a terminal
// state, a subscriber that stops reading forfeits remaining events
// after a grace period and the channel closes.
func (j *Job) Events() <-chan Event {
	ch := make(chan Event, streamBuffer)
	go func() {
		defer close(ch)
		i := 0
		for {
			j.mu.Lock()
			for i == len(j.events) && !j.state.terminal() {
				j.cond.Wait()
			}
			if i == len(j.events) {
				j.mu.Unlock()
				return
			}
			ev := j.events[i]
			i++
			j.mu.Unlock()
			if !j.deliver(ch, ev) {
				return
			}
		}
	}()
	return ch
}

// deliver sends one replayed event, preferring delivery over exit:
// buffer space or a ready receiver always wins. While the job is live
// its context keeps the send blocking (the event log decouples the
// pipeline, so a slow subscriber never stalls the run); after the
// context is released, a bounded grace period separates slow
// subscribers from abandoned ones.
func (j *Job) deliver(ch chan<- Event, ev Event) bool {
	select {
	case ch <- ev:
		return true
	default:
	}
	select {
	case ch <- ev:
		return true
	case <-j.ctx.Done():
	}
	t := time.NewTimer(subscriberGrace)
	defer t.Stop()
	select {
	case ch <- ev:
		return true
	case <-t.C:
		return false
	}
}

// record appends one pipeline event to the job's log (the emitter sink
// for job runs) and wakes subscribers.
func (j *Job) record(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish moves the job to its terminal state.
func (j *Job) finish(rep *Report, err error) {
	j.mu.Lock()
	j.finishLocked(rep, err)
	j.mu.Unlock()
}

func (j *Job) finishLocked(rep *Report, err error) {
	if j.state.terminal() {
		return
	}
	j.report, j.err = rep, err
	// A job is JobCancelled only when it actually failed because of
	// cancellation — via Job.Cancel or the Submit parent context. A
	// run that completed successfully is JobDone even if a Cancel
	// raced its final moments, and a run that failed for an unrelated
	// reason is JobDone-with-error even if a Cancel raced the failure.
	if err != nil && errors.Is(err, context.Canceled) && (j.cancelled || j.ctx.Err() != nil) {
		j.state = JobCancelled
	} else {
		j.state = JobDone
	}
	close(j.done)
	j.cond.Broadcast()
}

// jobTable is the System's async serving state: the bounded queue, the
// lazily-started worker pool, and the submission-ordered job index.
type jobTable struct {
	mu      sync.Mutex
	workers int
	depth   int
	queue   chan *Job
	closed  bool
	nextID  uint64
	jobs    []*Job
}

// SetJobLimits configures the async serving pool: workers is the
// number of concurrent pipeline runs, depth the bound of the waiting
// queue. Non-positive values keep the defaults (GOMAXPROCS workers,
// depth 128). It must be called before the first Submit; afterwards it
// fails with ErrJobsStarted.
func (s *System) SetJobLimits(workers, depth int) error {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	if s.jobs.queue != nil {
		return ErrJobsStarted
	}
	s.jobs.workers = workers
	s.jobs.depth = depth
	return nil
}

// Submit enqueues a query for asynchronous execution and returns its
// Job immediately. The first Submit starts the worker pool. If the
// bounded queue is full, Submit fails fast with ErrJobQueueFull rather
// than blocking the caller — shed load or retry later. Cancelling ctx
// cancels the job, queued or running; per-call AskOptions apply when
// the job runs.
func (s *System) Submit(ctx context.Context, query string, opts ...AskOption) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		query:  query,
		opts:   opts,
		ctx:    jctx,
		cancel: cancel,
		state:  JobQueued,
		done:   make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)

	s.jobs.mu.Lock()
	if s.jobs.closed {
		s.jobs.mu.Unlock()
		cancel()
		return nil, ErrJobsClosed
	}
	s.ensureWorkersLocked()
	select {
	case s.jobs.queue <- j:
	default:
		s.jobs.mu.Unlock()
		cancel()
		return nil, ErrJobQueueFull
	}
	s.jobs.nextID++
	j.id = s.jobs.nextID
	s.jobs.jobs = append(s.jobs.jobs, j)
	s.pruneJobsLocked()
	s.jobs.mu.Unlock()
	return j, nil
}

// Close shuts the async serving subsystem down: subsequent Submits
// fail with ErrJobsClosed, workers exit once the queue drains, and
// already-accepted jobs — queued or running — complete normally (use
// Cancel to abort them). Close is idempotent, returns without waiting
// for in-flight jobs, and leaves the blocking surfaces (Ask,
// AskStream, AskBatch) untouched. A System that never Submitted has
// no workers to stop.
func (s *System) Close() {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	if s.jobs.closed {
		return
	}
	s.jobs.closed = true
	if s.jobs.queue != nil {
		close(s.jobs.queue)
	}
}

// Jobs returns a snapshot of tracked jobs in submission order: every
// queued and running job, plus up to maxRetainedJobs finished ones.
func (s *System) Jobs() []*Job {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	out := make([]*Job, len(s.jobs.jobs))
	copy(out, s.jobs.jobs)
	return out
}

// ensureWorkersLocked starts the queue and worker pool once, applying
// configured or default limits. Callers hold jobs.mu.
func (s *System) ensureWorkersLocked() {
	if s.jobs.queue != nil {
		return
	}
	workers := s.jobs.workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	depth := s.jobs.depth
	if depth < 1 {
		depth = defaultJobQueueDepth
	}
	s.jobs.queue = make(chan *Job, depth)
	for i := 0; i < workers; i++ {
		go s.jobWorker()
	}
}

// pruneJobsLocked drops the oldest finished jobs beyond the retention
// bound and releases their contexts. In-flight jobs always survive:
// their combined count is bounded by queue depth + workers, which is
// far below maxRetainedJobs under the defaults.
func (s *System) pruneJobsLocked() {
	excess := len(s.jobs.jobs) - maxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := make([]*Job, 0, len(s.jobs.jobs)-excess)
	for _, j := range s.jobs.jobs {
		if excess > 0 && j.State().terminal() {
			j.cancel()
			excess--
			continue
		}
		kept = append(kept, j)
	}
	s.jobs.jobs = kept
}

// jobWorker drains the queue for the System's lifetime, running each
// job through the shared event-emitting pipeline with the job's event
// log as the sink.
func (s *System) jobWorker() {
	for j := range s.jobs.queue {
		j.mu.Lock()
		if j.state != JobQueued { // cancelled while waiting
			j.mu.Unlock()
			continue
		}
		j.state = JobRunning
		j.mu.Unlock()

		cfg := newAskConfig(j.opts)
		em := &emitter{query: j.query, observers: cfg.observers, sink: j.record}
		rep, err := s.run(j.ctx, j.query, cfg, em)
		em.emit(&Done{Report: rep, Err: err})
		j.finish(rep, err)
		// Release the job's context now that the run is over: this
		// unchains it from the Submit parent (no accumulation under a
		// long-lived server ctx) and starts the grace clock for any
		// abandoned Events subscribers.
		j.cancel()
	}
}

// jobDoneEvent synthesizes the terminal event for jobs cancelled while
// queued, so Events subscribers of a never-run job still observe Done.
func (j *Job) jobDoneEvent() *Done {
	ev := &Done{Err: context.Canceled}
	ev.Query, ev.Time = j.query, time.Now()
	return ev
}

// Async serving: a bounded-queue job subsystem that turns one System
// into a long-lived server. Submit enqueues a query and returns a Job
// immediately; a lazily-started worker pool (owned by a Scheduler, see
// scheduler.go) drains the queue through the same event-emitting
// pipeline that backs Ask and AskStream. Jobs are tracked (Jobs),
// observable (Events), awaitable (Wait) and cancellable (Cancel) —
// queued or mid-run. By default each System gets a private single-class
// scheduler (plain bounded FIFO); SetScheduler attaches a shared
// weighted-fair one instead, the seam the multi-tenant HTTP tier uses.
package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// JobState is the lifecycle phase of a submitted job.
type JobState string

const (
	// JobQueued: accepted, waiting for a worker.
	JobQueued JobState = "queued"
	// JobRunning: a worker is executing the pipeline.
	JobRunning JobState = "running"
	// JobDone: finished — successfully or with an error (see Wait).
	JobDone JobState = "done"
	// JobCancelled: cancelled before or during execution.
	JobCancelled JobState = "cancelled"
)

// terminal reports whether the state is final.
func (st JobState) terminal() bool { return st == JobDone || st == JobCancelled }

const (
	// defaultJobQueueDepth bounds how many jobs may wait for a worker
	// before Submit starts refusing with ErrJobQueueFull.
	defaultJobQueueDepth = 128
	// maxRetainedJobs bounds how many finished jobs Jobs() remembers;
	// older finished jobs are pruned so a long-lived server's job
	// table stays flat. In-flight jobs are never pruned.
	maxRetainedJobs = 1024
)

// Job is one asynchronously-served query. All methods are safe for
// concurrent use.
type Job struct {
	id    uint64
	query string
	opts  []AskOption
	// sys is the System that submitted the job: scheduler workers run
	// each job on its own System, so a shared pool serves many isolated
	// registries and caches. class is the scheduling class the System
	// was attached under (empty for a private scheduler).
	sys   *System
	class string

	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	events    []Event
	state     JobState
	cancelled bool
	report    *Report
	err       error
	done      chan struct{}
}

// ID is the job's submission-ordered identifier, unique per System.
func (j *Job) ID() uint64 { return j.id }

// Query returns the job's natural-language query.
func (j *Job) Query() string { return j.query }

// Class returns the scheduling class the job was submitted under
// (empty unless the System is attached to a shared Scheduler).
func (j *Job) Class() string { return j.class }

// JobSummary is a serialization-friendly snapshot of one job, the
// shape the HTTP tier returns from its job-listing endpoints.
type JobSummary struct {
	ID    uint64   `json:"id"`
	Query string   `json:"query"`
	Class string   `json:"class,omitempty"`
	State JobState `json:"state"`
	// Error is the terminal error text, empty while in flight or on
	// success.
	Error string `json:"error,omitempty"`
	// Elapsed is the finished run's wall-clock time in nanoseconds
	// (JSON's default encoding for time.Duration); zero while in
	// flight.
	Elapsed time.Duration `json:"elapsed,omitempty"`
}

// Summary snapshots the job without blocking.
func (j *Job) Summary() JobSummary {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := JobSummary{ID: j.id, Query: j.query, Class: j.class, State: j.state}
	if j.state.terminal() {
		if j.err != nil {
			out.Error = j.err.Error()
		}
		if j.report != nil {
			out.Elapsed = j.report.Elapsed
		}
	}
	return out
}

// State returns the job's current lifecycle phase.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns a channel closed when the job reaches a terminal state;
// it composes with select the way context.Done does.
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes (or ctx is cancelled) and returns
// the job's report and error, exactly as a blocking Ask would have. A
// nil ctx waits indefinitely.
func (j *Job) Wait(ctx context.Context) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-j.done:
		j.mu.Lock()
		defer j.mu.Unlock()
		return j.report, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel stops the job: a queued job completes immediately with
// context.Canceled and never runs; a running job has its pipeline
// cancelled mid-flight. Cancel is idempotent and a no-op on finished
// jobs.
func (j *Job) Cancel() {
	j.mu.Lock()
	if j.state == JobQueued {
		j.cancelled = true
		j.events = append(j.events, j.jobDoneEvent())
		j.finishLocked(nil, context.Canceled)
		j.mu.Unlock()
		j.cancel()
		return
	}
	if j.state == JobRunning {
		j.cancelled = true
	}
	j.mu.Unlock()
	j.cancel()
}

// subscriberGrace bounds how long a replay goroutine waits on a
// non-draining subscriber after the job's context is released (the job
// finished or was cancelled). Live subscribers drain well within it;
// abandoned ones stop leaking a goroutine after it.
const subscriberGrace = 5 * time.Second

// Events returns a channel that replays the job's event stream from
// the beginning — late subscribers see the full history — then follows
// it live and closes after the terminal Done event. Each call gets an
// independent channel; multiple subscribers may watch one job. The
// caller should drain the channel: once the job reaches a terminal
// state, a subscriber that stops reading forfeits remaining events
// after a grace period and the channel closes.
func (j *Job) Events() <-chan Event {
	ch := make(chan Event, streamBuffer)
	go func() {
		defer close(ch)
		i := 0
		for {
			j.mu.Lock()
			for i == len(j.events) && !j.state.terminal() {
				j.cond.Wait()
			}
			if i == len(j.events) {
				j.mu.Unlock()
				return
			}
			ev := j.events[i]
			i++
			j.mu.Unlock()
			if !j.deliver(ch, ev) {
				return
			}
		}
	}()
	return ch
}

// deliver sends one replayed event, preferring delivery over exit:
// buffer space or a ready receiver always wins. While the job is live
// its context keeps the send blocking (the event log decouples the
// pipeline, so a slow subscriber never stalls the run); after the
// context is released, a bounded grace period separates slow
// subscribers from abandoned ones.
func (j *Job) deliver(ch chan<- Event, ev Event) bool {
	select {
	case ch <- ev:
		return true
	default:
	}
	select {
	case ch <- ev:
		return true
	case <-j.ctx.Done():
	}
	t := time.NewTimer(subscriberGrace)
	defer t.Stop()
	select {
	case ch <- ev:
		return true
	case <-t.C:
		return false
	}
}

// record appends one pipeline event to the job's log (the emitter sink
// for job runs) and wakes subscribers.
func (j *Job) record(ev Event) {
	j.mu.Lock()
	j.events = append(j.events, ev)
	j.cond.Broadcast()
	j.mu.Unlock()
}

// finish moves the job to its terminal state.
func (j *Job) finish(rep *Report, err error) {
	j.mu.Lock()
	j.finishLocked(rep, err)
	j.mu.Unlock()
}

func (j *Job) finishLocked(rep *Report, err error) {
	if j.state.terminal() {
		return
	}
	j.report, j.err = rep, err
	// A job is JobCancelled only when it actually failed because of
	// cancellation — via Job.Cancel or the Submit parent context. A
	// run that completed successfully is JobDone even if a Cancel
	// raced its final moments, and a run that failed for an unrelated
	// reason is JobDone-with-error even if a Cancel raced the failure.
	if err != nil && errors.Is(err, context.Canceled) && (j.cancelled || j.ctx.Err() != nil) {
		j.state = JobCancelled
	} else {
		j.state = JobDone
	}
	close(j.done)
	j.cond.Broadcast()
}

// jobTable is the System's async serving state: the scheduler the
// System routes jobs through (private by default, shared via
// SetScheduler) and the submission-ordered job index.
type jobTable struct {
	mu      sync.Mutex
	workers int
	depth   int
	sched   *Scheduler
	// private marks a scheduler this System created for itself (and so
	// owns: Close closes it). An attached shared scheduler is left
	// running for its other Systems.
	private bool
	class   string
	closed  bool
	nextID  uint64
	jobs    []*Job
}

// SetJobLimits configures the private async serving pool: workers is
// the number of concurrent pipeline runs, depth the bound of the
// waiting queue. Non-positive values keep the defaults (GOMAXPROCS
// workers, depth 128). It must be called before the first Submit (and
// is mutually exclusive with SetScheduler — a shared scheduler brings
// its own pool); afterwards it fails with ErrJobsStarted.
func (s *System) SetJobLimits(workers, depth int) error {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	if s.jobs.sched != nil {
		return ErrJobsStarted
	}
	s.jobs.workers = workers
	s.jobs.depth = depth
	return nil
}

// SetScheduler attaches the System to a shared Scheduler under the
// given scheduling class: subsequent Submits compete for the shared
// worker pool according to the class's weight and bounds, while the
// System keeps its own registry, caches and job table — the isolation
// seam the multi-tenant serving tier builds on. It must be called
// before the first Submit; afterwards (or after a previous attach) it
// fails with ErrJobsStarted.
func (s *System) SetScheduler(sc *Scheduler, class string) error {
	if sc == nil {
		return fmt.Errorf("core: nil scheduler")
	}
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	if s.jobs.sched != nil {
		return ErrJobsStarted
	}
	s.jobs.sched = sc
	s.jobs.class = class
	return nil
}

// Submit enqueues a query for asynchronous execution and returns its
// Job immediately. The first Submit starts the worker pool. If the
// bounded queue (global depth, or the System's class bound on a shared
// scheduler) is full, Submit fails fast with ErrJobQueueFull rather
// than blocking the caller — shed load or retry later. Cancelling ctx
// cancels the job, queued or running; per-call AskOptions apply when
// the job runs.
func (s *System) Submit(ctx context.Context, query string, opts ...AskOption) (*Job, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	jctx, cancel := context.WithCancel(ctx)
	j := &Job{
		query:  query,
		opts:   opts,
		sys:    s,
		ctx:    jctx,
		cancel: cancel,
		state:  JobQueued,
		done:   make(chan struct{}),
	}
	j.cond = sync.NewCond(&j.mu)

	s.jobs.mu.Lock()
	if s.jobs.closed {
		s.jobs.mu.Unlock()
		cancel()
		return nil, ErrJobsClosed
	}
	s.ensureSchedulerLocked()
	j.class = s.jobs.class
	if err := s.jobs.sched.enqueue(j); err != nil {
		s.jobs.mu.Unlock()
		cancel()
		return nil, err
	}
	s.jobs.nextID++
	j.id = s.jobs.nextID
	s.jobs.jobs = append(s.jobs.jobs, j)
	s.pruneJobsLocked()
	s.jobs.mu.Unlock()
	return j, nil
}

// Close shuts the System's async serving down: subsequent Submits and
// Subscribes fail with ErrJobsClosed, already-accepted jobs — queued
// or running — complete normally (use Cancel to abort them), and every
// live subscription is closed (its streams end with a terminal
// SubscriptionClosed event). A private scheduler is closed with the
// System (its workers exit once the queue drains); a shared scheduler
// attached with SetScheduler is left running for its other Systems.
// Close is idempotent, safe to call concurrently with Submit (the
// shutdown path races them by design), waits only for subscription
// loops (not in-flight jobs), and leaves the blocking surfaces (Ask,
// AskStream, AskBatch) untouched.
func (s *System) Close() {
	s.jobs.mu.Lock()
	if s.jobs.closed {
		s.jobs.mu.Unlock()
		return
	}
	s.jobs.closed = true
	if s.jobs.private && s.jobs.sched != nil {
		s.jobs.sched.Close()
	}
	s.jobs.mu.Unlock()
	for _, sub := range s.Subscriptions() {
		sub.closeWith("system closed")
	}
}

// Jobs returns a snapshot of tracked jobs in submission order: every
// queued and running job, plus up to maxRetainedJobs finished ones.
func (s *System) Jobs() []*Job {
	s.jobs.mu.Lock()
	defer s.jobs.mu.Unlock()
	out := make([]*Job, len(s.jobs.jobs))
	copy(out, s.jobs.jobs)
	return out
}

// ensureSchedulerLocked creates the System's private scheduler on
// first use, applying configured or default limits. A scheduler
// attached with SetScheduler takes precedence. Callers hold jobs.mu.
func (s *System) ensureSchedulerLocked() {
	if s.jobs.sched != nil {
		return
	}
	s.jobs.sched = NewScheduler(s.jobs.workers, s.jobs.depth)
	s.jobs.private = true
}

// pruneJobsLocked drops the oldest finished jobs beyond the retention
// bound and releases their contexts. In-flight jobs always survive:
// their combined count is bounded by queue depth + workers, which is
// far below maxRetainedJobs under the defaults.
func (s *System) pruneJobsLocked() {
	excess := len(s.jobs.jobs) - maxRetainedJobs
	if excess <= 0 {
		return
	}
	kept := make([]*Job, 0, len(s.jobs.jobs)-excess)
	for _, j := range s.jobs.jobs {
		if excess > 0 && j.State().terminal() {
			j.cancel()
			excess--
			continue
		}
		kept = append(kept, j)
	}
	s.jobs.jobs = kept
}

// serveJob runs one dequeued job through the shared event-emitting
// pipeline with the job's event log as the sink. Scheduler workers
// call it on the job's own System.
func (s *System) serveJob(j *Job) {
	j.mu.Lock()
	if j.state != JobQueued { // cancelled while waiting
		j.mu.Unlock()
		return
	}
	j.state = JobRunning
	j.mu.Unlock()

	cfg := newAskConfig(j.opts)
	em := &emitter{query: j.query, observers: cfg.observers, sink: j.record}
	rep, err := s.run(j.ctx, j.query, cfg, em)
	em.emit(&Done{Report: rep, Err: err})
	j.finish(rep, err)
	// Release the job's context now that the run is over: this
	// unchains it from the Submit parent (no accumulation under a
	// long-lived server ctx) and starts the grace clock for any
	// abandoned Events subscribers.
	j.cancel()
}

// jobDoneEvent synthesizes the terminal event for jobs cancelled while
// queued, so Events subscribers of a never-run job still observe Done.
func (j *Job) jobDoneEvent() *Done {
	ev := &Done{Err: context.Canceled}
	ev.Query, ev.Time = j.query, time.Now()
	return ev
}

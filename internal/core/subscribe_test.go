package core

// Standing-query battery: the fpEpoch race regression, facet-scoped
// fingerprints, the change-notification seams, subscription delta
// semantics (error→success transitions, registry heartbeats), delta
// determinism across identical mutation sequences, a concurrent
// hammer, and close semantics. Everything here must pass under -race.

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"arachnet/internal/registry"
)

// TestFingerprintEpochRace is the regression test for the fpEpoch data
// race: Fingerprint reads the epoch while InjectCableFailureScenario
// bumps it. Before fpID/fpEpoch became atomic this failed under -race.
func TestFingerprintEpochRace(t *testing.T) {
	env := testEnv(t, true)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_ = env.Fingerprint()
				_ = env.FacetFingerprint([]string{FacetWorld})
				_ = env.Epoch()
			}
		}()
	}
	for i := 0; i < 4; i++ {
		if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: uint64(i + 10)}); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	// testEnv injected once, the loop four more times.
	if got := env.Epoch(); got != 5 {
		t.Fatalf("epoch = %d, want 5", got)
	}
}

func TestFacetFingerprint(t *testing.T) {
	env := testEnv(t, false)
	full := env.Fingerprint()
	world := env.FacetFingerprint([]string{FacetWorld})
	scen := env.FacetFingerprint([]string{FacetWorld, FacetScenario})
	if env.FacetFingerprint(nil) != full {
		t.Error("empty reads must fall back to the full fingerprint")
	}
	if env.FacetFingerprint([]string{"mystery"}) != full {
		t.Error("unknown facet must fall back to the full fingerprint")
	}
	if world == scen || world == full {
		t.Errorf("facet fingerprints not distinct: world=%q scen=%q full=%q", world, scen, full)
	}

	if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if got := env.FacetFingerprint([]string{FacetWorld}); got != world {
		t.Errorf("world facet changed across injection: %q -> %q", world, got)
	}
	if got := env.FacetFingerprint([]string{FacetWorld, FacetScenario}); got == scen {
		t.Error("scenario facet did not change across injection")
	}
	if env.Fingerprint() == full {
		t.Error("full fingerprint did not change across injection")
	}
}

func TestEnvironmentWatchAndClone(t *testing.T) {
	env := testEnv(t, false)
	ch := make(chan struct{}, 1)
	env.Watch(ch)
	if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	default:
		t.Fatal("watcher not poked by injection")
	}

	clone := env.Clone()
	if clone.Fingerprint() == env.Fingerprint() {
		t.Error("clone shares the source's fingerprint identity")
	}
	if clone.World != env.World || clone.Scenario != env.Scenario {
		t.Error("clone must share the world and carry the current scenario")
	}
	// Mutating the clone is invisible to the source: no epoch bump, no
	// poke on the source's watcher.
	before := env.Epoch()
	if err := clone.InjectCableFailureScenario(ScenarioConfig{Seed: 6}); err != nil {
		t.Fatal(err)
	}
	if env.Epoch() != before {
		t.Error("clone injection bumped the source's epoch")
	}
	select {
	case <-ch:
		t.Error("clone injection poked the source's watcher")
	default:
	}

	env.Unwatch(ch)
	if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 7}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
		t.Error("unwatched channel still poked")
	default:
	}
}

// collectUntil drains events from ch until pred returns true (that
// event is included) or the timeout expires.
func collectUntil(t *testing.T, ch <-chan SubEvent, timeout time.Duration, pred func(SubEvent) bool) []SubEvent {
	t.Helper()
	deadline := time.After(timeout)
	var out []SubEvent
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				t.Fatalf("event channel closed after %d events: %#v", len(out), out)
			}
			out = append(out, ev)
			if pred(ev) {
				return out
			}
		case <-deadline:
			t.Fatalf("timed out after %d events waiting for predicate", len(out))
		}
	}
}

func waitRevision(t *testing.T, sub *Subscription, want int) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if sub.Revision() >= want {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("subscription stuck at revision %d, want %d", sub.Revision(), want)
}

// TestSubscribeErrorToSuccessDelta is the headline transition: a
// standing forensic query whose baseline fails for lack of scenario
// data, then succeeds after an injection. The subscription stays open
// through the failure and reports the transition as a ResultChanged
// delta (error cleared, outputs added) plus AnomalyAppeared signals.
func TestSubscribeErrorToSuccessDelta(t *testing.T) {
	env := testEnv(t, false)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sub, err := sys.Subscribe(ctx, queryCS4)
	if err != nil {
		t.Fatal(err)
	}
	if rep, berr := sub.Current(); berr == nil {
		t.Fatalf("baseline unexpectedly succeeded without scenario data: %+v", rep)
	}

	if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 5}); err != nil {
		t.Fatal(err)
	}
	waitRevision(t, sub, 1)

	events := collectUntil(t, sub.Events(), 60*time.Second, func(ev SubEvent) bool {
		_, ok := ev.(*ResultChanged)
		return ok
	})
	started, ok := events[0].(*SubscriptionStarted)
	if !ok {
		t.Fatalf("first event is %T, want *SubscriptionStarted", events[0])
	}
	if started.Err == nil {
		t.Error("baseline SubscriptionStarted should carry the failure")
	}
	if started.Revision != 0 {
		t.Errorf("baseline revision = %d, want 0", started.Revision)
	}
	rc := events[len(events)-1].(*ResultChanged)
	if rc.Cause != CauseEnvironment {
		t.Errorf("cause = %q, want %q", rc.Cause, CauseEnvironment)
	}
	if rc.Revision != 1 {
		t.Errorf("ResultChanged revision = %d, want 1", rc.Revision)
	}
	if rc.Delta == nil || rc.Delta.ErrBefore == "" || rc.Delta.ErrAfter != "" {
		t.Fatalf("delta should record an error->success transition: %+v", rc.Delta)
	}
	if len(rc.Delta.Added) == 0 {
		t.Error("successful run should add step-output paths")
	}

	// The now-detectable anomalies surface as AnomalyAppeared events.
	events2 := collectUntil(t, sub.Events(), 60*time.Second, func(ev SubEvent) bool {
		_, ok := ev.(*AnomalyAppeared)
		return ok
	})
	anom := events2[len(events2)-1].(*AnomalyAppeared)
	if anom.Anomaly.Key == "" || anom.Anomaly.Kind == "" {
		t.Errorf("anomaly signal incomplete: %+v", anom.Anomaly)
	}
	if rep, rerr := sub.Current(); rerr != nil || rep == nil || rep.Result == nil {
		t.Errorf("current state after transition: rep=%v err=%v", rep, rerr)
	}
}

// noopCap builds a pure capability no planner will ever pick, used to
// bump the registry generation.
func noopCap(name string) registry.Capability {
	return registry.Capability{
		Name: name, Framework: "noop", Description: "inert test capability",
		Outputs: []registry.Port{{Name: "nothing", Type: registry.TString}},
		Tags:    []string{"inert"},
		Pure:    true,
		Reads:   []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			c.Out["nothing"] = "nothing"
			return nil
		},
	}
}

// TestSubscribeRegistryHeartbeat: a registry generation bump wakes the
// standing query, the re-execution replays entirely from cache, and —
// because nothing changed — the subscriber gets a ResultUnchanged
// heartbeat attributing the wake-up to the registry.
func TestSubscribeRegistryHeartbeat(t *testing.T) {
	env := testEnv(t, true)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	sub, err := sys.Subscribe(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if _, berr := sub.Current(); berr != nil {
		t.Fatalf("baseline failed: %v", berr)
	}

	sys.Registry().MustRegister(noopCap("noop.bump"))
	waitRevision(t, sub, 1)

	events := collectUntil(t, sub.Events(), 60*time.Second, func(ev SubEvent) bool {
		_, ok := ev.(*ResultUnchanged)
		return ok
	})
	ru := events[len(events)-1].(*ResultUnchanged)
	if ru.Cause != CauseRegistry {
		t.Errorf("cause = %q, want %q", ru.Cause, CauseRegistry)
	}
	if ru.StepsRun != 0 || ru.StepsCached == 0 {
		t.Errorf("heartbeat re-execution ran %d steps fresh (%d cached); want a full cache replay",
			ru.StepsRun, ru.StepsCached)
	}
	for _, ev := range events {
		if rc, ok := ev.(*ResultChanged); ok {
			t.Errorf("unexpected ResultChanged: %+v", rc.Delta)
		}
	}
}

// eventSignature renders one event deterministically: everything but
// SubID and Time, which are instance-specific by design.
func eventSignature(ev SubEvent) string {
	m := ev.subMeta()
	switch ev := ev.(type) {
	case *SubscriptionStarted:
		errs := ""
		if ev.Err != nil {
			errs = ev.Err.Error()
		}
		return fmt.Sprintf("started seq=%d rev=%d err=%q", m.Seq, m.Revision, errs)
	case *ResultChanged:
		return fmt.Sprintf("changed seq=%d rev=%d cause=%s delta=%+v", m.Seq, m.Revision, ev.Cause, *ev.Delta)
	case *ResultUnchanged:
		return fmt.Sprintf("unchanged seq=%d rev=%d cause=%s run=%d cached=%d",
			m.Seq, m.Revision, ev.Cause, ev.StepsRun, ev.StepsCached)
	case *AnomalyAppeared:
		return fmt.Sprintf("anomaly+ seq=%d rev=%d %+v", m.Seq, m.Revision, ev.Anomaly)
	case *AnomalyCleared:
		return fmt.Sprintf("anomaly- seq=%d rev=%d %+v", m.Seq, m.Revision, ev.Anomaly)
	case *SubscriptionClosed:
		return fmt.Sprintf("closed seq=%d rev=%d reason=%s", m.Seq, m.Revision, ev.Reason)
	default:
		return fmt.Sprintf("unknown %T", ev)
	}
}

// TestDeltaDeterminism: the same mutation sequence against two
// identically seeded systems yields byte-identical delta-event streams
// (modulo subscription ID and wall-clock time).
func TestDeltaDeterminism(t *testing.T) {
	run := func() []string {
		env := testEnv(t, true) // scenario Seed 5 baseline
		sys, err := NewSystem(env, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		sub, err := sys.Subscribe(ctx, queryCS4)
		if err != nil {
			t.Fatal(err)
		}
		if _, berr := sub.Current(); berr != nil {
			t.Fatalf("baseline failed: %v", berr)
		}
		// Serialize the mutations: wait for each revision before the
		// next injection so the two runs see the same wake-ups instead
		// of racing the poke coalescing.
		if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 11}); err != nil {
			t.Fatal(err)
		}
		waitRevision(t, sub, 1)
		if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 23}); err != nil {
			t.Fatal(err)
		}
		waitRevision(t, sub, 2)
		sub.Close()

		var sigs []string
		for ev := range sub.Events() {
			sigs = append(sigs, eventSignature(ev))
		}
		return sigs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("stream lengths differ: %d vs %d\nA: %v\nB: %v", len(a), len(b), a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("event %d differs:\nA: %s\nB: %s", i, a[i], b[i])
		}
	}
}

// TestSubscriptionHammer: concurrent subscribers over concurrent
// scenario injections and registry registrations. Asserts the -race
// detector stays quiet, every delta is well-formed (no torn diffs),
// event sequencing is monotonic, and — the stale-result check — each
// subscription's final result is exactly what a fresh Ask against the
// final environment/registry state produces.
func TestSubscriptionHammer(t *testing.T) {
	env := testEnv(t, true)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	queries := []string{queryCS1, queryCS3, queryCS4}
	subs := make([]*Subscription, len(queries))
	for i, q := range queries {
		if subs[i], err = sys.Subscribe(ctx, q); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 3; i++ {
			if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: uint64(40 + i)}); err != nil {
				t.Error(err)
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 2; i++ {
			sys.Registry().MustRegister(noopCap(fmt.Sprintf("noop.hammer%d", i)))
		}
	}()
	wg.Wait()

	// Convergence: every subscription must settle on the final state.
	// A fresh cache-served Ask at the (now quiescent) final state is
	// the reference result.
	for i, sub := range subs {
		want, wantErr := sys.Ask(ctx, queries[i], AskWithoutCuration())
		deadline := time.Now().Add(120 * time.Second)
		for {
			got, gotErr := sub.Current()
			if renderReport(got, gotErr) == renderReport(want, wantErr) {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("subscription %d (%s) stale: current != fresh ask at final state", i, queries[i])
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	for i, sub := range subs {
		sub.Close()
		seq := -1
		rev := -1
		var last SubEvent
		for ev := range sub.Events() {
			m := ev.subMeta()
			if m.Seq != seq+1 {
				t.Errorf("sub %d: seq jumped %d -> %d", i, seq, m.Seq)
			}
			seq = m.Seq
			if m.Revision < rev {
				t.Errorf("sub %d: revision went backwards %d -> %d", i, rev, m.Revision)
			}
			rev = m.Revision
			if rc, ok := ev.(*ResultChanged); ok {
				assertDeltaWellFormed(t, rc.Delta)
			}
			last = ev
		}
		if _, ok := last.(*SubscriptionClosed); !ok {
			t.Errorf("sub %d: last event is %T, want *SubscriptionClosed", i, last)
		}
		if sys.Subscription(sub.ID()) != nil {
			t.Errorf("sub %d still in the table after Close", i)
		}
	}
}

// renderReport canonicalizes a report's values + error for equality
// checks.
func renderReport(rep *Report, err error) string {
	s := ""
	if err != nil {
		s = "err=" + err.Error() + ";"
	}
	vals := resultValues(rep)
	paths := make([]string, 0, len(vals))
	for p := range vals {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		s += p + "=" + vals[p] + ";"
	}
	return s
}

// assertDeltaWellFormed checks a delta for tears: sorted, duplicate-
// free path lists with no path in more than one bucket.
func assertDeltaWellFormed(t *testing.T, d *ResultDelta) {
	t.Helper()
	if d == nil {
		t.Fatal("ResultChanged with nil delta")
	}
	seen := map[string]string{}
	check := func(bucket string, paths []string) {
		for i, p := range paths {
			if i > 0 && paths[i-1] >= p {
				t.Errorf("delta %s not sorted/unique at %q", bucket, p)
			}
			if prev, dup := seen[p]; dup {
				t.Errorf("path %q in both %s and %s", p, prev, bucket)
			}
			seen[p] = bucket
		}
	}
	check("added", d.Added)
	check("removed", d.Removed)
	changed := make([]string, len(d.Changed))
	for i, c := range d.Changed {
		changed[i] = c.Path
		if c.Before == c.After {
			t.Errorf("changed path %q has identical before/after", c.Path)
		}
	}
	check("changed", changed)
}

func TestSubscriptionCloseSemantics(t *testing.T) {
	env := testEnv(t, true)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := sys.Subscribe(ctx, "   "); err == nil {
		t.Error("empty query accepted")
	}

	// Explicit close.
	sub, err := sys.Subscribe(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	id := sub.ID()
	sub.Close()
	sub.Close() // idempotent
	events := collectUntil(t, sub.Events(), 30*time.Second, func(ev SubEvent) bool {
		_, ok := ev.(*SubscriptionClosed)
		return ok
	})
	closedEv := events[len(events)-1].(*SubscriptionClosed)
	if closedEv.Reason != "closed" {
		t.Errorf("reason = %q, want closed", closedEv.Reason)
	}
	if sys.Subscription(id) != nil {
		t.Error("closed subscription still resolvable")
	}

	// Context cancellation.
	cctx, cancel := context.WithCancel(ctx)
	sub2, err := sys.Subscribe(cctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	<-sub2.Done()
	events = collectUntil(t, sub2.Events(), 30*time.Second, func(ev SubEvent) bool {
		_, ok := ev.(*SubscriptionClosed)
		return ok
	})
	if got := events[len(events)-1].(*SubscriptionClosed).Reason; got != "context cancelled" {
		t.Errorf("reason = %q, want context cancelled", got)
	}

	// System shutdown closes subscriptions and refuses new ones.
	sub3, err := sys.Subscribe(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	sys.Close()
	<-sub3.Done()
	events = collectUntil(t, sub3.Events(), 30*time.Second, func(ev SubEvent) bool {
		_, ok := ev.(*SubscriptionClosed)
		return ok
	})
	if got := events[len(events)-1].(*SubscriptionClosed).Reason; got != "system closed" {
		t.Errorf("reason = %q, want system closed", got)
	}
	if _, err := sys.Subscribe(ctx, queryCS1); !errors.Is(err, ErrJobsClosed) {
		t.Errorf("Subscribe after Close: %v, want ErrJobsClosed", err)
	}
	if len(sys.Subscriptions()) != 0 {
		t.Errorf("%d subscriptions survive Close", len(sys.Subscriptions()))
	}
}

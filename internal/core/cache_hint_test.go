package core

import (
	"net/netip"
	"reflect"
	"testing"

	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
	"arachnet/internal/xaminer"
)

// hintedValues is one of each shape the fast path covers, sized big
// enough that content dominates headers.
func hintedValues() map[string]any {
	addrs := make([]netip.Addr, 100)
	for i := range addrs {
		addrs[i] = netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)})
	}
	links := make([]netsim.LinkID, 200)
	for i := range links {
		links[i] = netsim.LinkID(i)
	}
	rows := make([]GeoRow, 50)
	for i := range rows {
		rows[i] = GeoRow{Addr: addrs[i], Country: "DE"}
	}
	impacts := make([]xaminer.CountryImpact, 30)
	for i := range impacts {
		impacts[i] = xaminer.CountryImpact{Country: "FR", Score: 0.5}
	}
	return map[string]any{
		"ips":    addrs,
		"links":  links,
		"geo":    rows,
		"report": &xaminer.ImpactReport{Scenario: "test", Countries: impacts},
		"cables": []nautilus.CableID{"SeaMeWe-5", "FLAG"},
		"text":   "a rendered report",
		"names":  []string{"alpha", "beta"},
		"n":      42,
		"pct":    3.14,
	}
}

func TestSizeHintCoversStepOutputs(t *testing.T) {
	// Every value in a realistic output map must take the fast path,
	// and the whole map must too.
	out := hintedValues()
	if _, ok := sizeHint(out); !ok {
		t.Fatal("output map did not take the hint fast path")
	}
	for k, v := range out {
		if _, ok := sizeHint(v); !ok {
			t.Fatalf("output %q (%T) did not take the hint fast path", k, v)
		}
	}
}

func TestSizeHintTracksReflection(t *testing.T) {
	// Hints replace the reflective walk; they must stay in its
	// ballpark (same accounting model, modulo sampling error) so byte
	// bounds keep meaning the same thing. Allow 3x either way.
	for k, v := range hintedValues() {
		hinted, ok := sizeHint(v)
		if !ok {
			t.Fatalf("%q: no hint", k)
		}
		reflected := estimateValue(reflect.ValueOf(v), 4)
		if hinted > 3*reflected || reflected > 3*hinted {
			t.Errorf("%q (%T): hint %d vs reflection %d diverge more than 3x", k, v, hinted, reflected)
		}
	}
}

func TestSizeHintScalesWithContent(t *testing.T) {
	small, _ := sizeHint(make([]netip.Addr, 10))
	big, _ := sizeHint(make([]netip.Addr, 10000))
	if big < 100*small/2 {
		t.Fatalf("hint does not scale: 10 addrs → %d, 10000 addrs → %d", small, big)
	}
}

func TestSizeHintFallback(t *testing.T) {
	// Types outside the catalog's output shapes must decline the fast
	// path but still be estimated via reflection.
	type weird struct{ X [256]byte }
	if _, ok := sizeHint(weird{}); ok {
		t.Fatal("unexpected hint for unknown struct")
	}
	if s := estimateSize(weird{}); s < 256 {
		t.Fatalf("fallback estimate %d < 256", s)
	}
	// A map containing an unhinted value still hints the map and
	// reflects the odd value out.
	m := map[string]any{"w": weird{}}
	s, ok := sizeHint(m)
	if !ok || s < 256 {
		t.Fatalf("map with unhinted value: ok=%v size=%d", ok, s)
	}
}

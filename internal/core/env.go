package core

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"arachnet/internal/bgp"
	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
	"arachnet/internal/traceroute"
	"arachnet/internal/xaminer"
)

// defaultNow is the fixed "wall clock" of the simulation, so every run
// is reproducible.
var defaultNow = time.Date(2025, 6, 15, 12, 0, 0, 0, time.UTC)

// envSeq hands every Environment a process-unique identity for cache
// fingerprinting.
var envSeq atomic.Uint64

// Environment facets: the independently mutable parts of an
// Environment a capability may declare it Reads (registry.Capability).
// Step-cache fingerprints are scoped to the declared facets, so
// mutating one facet dirties only the steps that read it.
const (
	// FacetWorld covers the generated world, the cable catalog, the
	// cross-layer map and the analyzer — immutable once the environment
	// is built.
	FacetWorld = "world"
	// FacetScenario covers the injected measurement scenario (trace
	// archive, BGP stream, failure ground truth) — replaced by every
	// InjectCableFailureScenario.
	FacetScenario = "scenario"
)

// fpCached memoizes the rendered fingerprint strings of one
// (identity, epoch) state so the hot serving path — which consults
// Fingerprint on every Ask for the plan key and the engine cache key —
// never re-renders them. Swapped atomically; a stale pointer is just
// recomputed.
type fpCached struct {
	id, epoch             uint64
	full, world, scenario string
}

// fpStringsNow returns the memoized fingerprint strings for the
// environment's current state, rendering them only when the identity
// or epoch moved since the last call.
func (e *Environment) fpStringsNow() *fpCached {
	id, ep := e.fpID.Load(), e.fpEpoch.Load()
	if p := e.fpStrs.Load(); p != nil && p.id == id && p.epoch == ep {
		return p
	}
	p := &fpCached{
		id:       id,
		epoch:    ep,
		full:     fmt.Sprintf("env%d.%d", id, ep),
		world:    fmt.Sprintf("env%d.w", id),
		scenario: fmt.Sprintf("env%d.s%d", id, ep),
	}
	e.fpStrs.Store(p)
	return p
}

// Fingerprint uniquely identifies this environment instance and its
// mutation epoch. It is mixed into every step-cache key, so memoized
// results computed against one environment (or against this one before
// a scenario was injected) are never served against another. The
// identity is deliberately per-instance rather than content-derived:
// two worlds built from the same seed would produce identical results,
// but proving that is the cache's job only within one environment.
// (LoadSnapshot is the one deliberate exception: it validates content
// equivalence and then adopts the saved identity.)
func (e *Environment) Fingerprint() string {
	return e.fpStringsNow().full
}

// FacetFingerprint scopes the fingerprint to the environment facets a
// capability declares it Reads. Steps reading only FacetWorld keep
// their fingerprints across scenario injections — that is what lets a
// standing query replay them from the step cache while only the
// scenario-dependent subgraph re-executes. An empty or unrecognized
// facet list falls back to the full Fingerprint (always safe).
func (e *Environment) FacetFingerprint(reads []string) string {
	if len(reads) == 0 {
		return e.Fingerprint()
	}
	scenario := false
	for _, r := range reads {
		switch r {
		case FacetWorld:
		case FacetScenario:
			scenario = true
		default:
			return e.Fingerprint()
		}
	}
	if scenario {
		// Scenario readers see the mutation epoch: every injection
		// replaces the scenario, which is the only mutable facet today.
		return e.fpStringsNow().scenario
	}
	// World-only readers: identity without the epoch — the world never
	// changes in place.
	return e.fpStringsNow().world
}

// Epoch returns the environment's mutation epoch: 0 at construction,
// bumped by every in-place change (scenario injection). Standing
// queries compare epochs to attribute a wake-up to the environment.
func (e *Environment) Epoch() uint64 { return e.fpEpoch.Load() }

// ensureFingerprint assigns the instance identity once; hand-built
// Environment literals (tests) get one lazily at System assembly.
func (e *Environment) ensureFingerprint() {
	if e.fpID.Load() == 0 {
		e.fpID.CompareAndSwap(0, envSeq.Add(1))
	}
}

// bumpFingerprint advances the mutation epoch after an in-place
// environment change (scenario injection), invalidating step-cache
// entries computed over the previous state, and pokes every watcher.
func (e *Environment) bumpFingerprint() {
	e.ensureFingerprint()
	e.fpEpoch.Add(1)
	e.watchMu.Lock()
	for _, ch := range e.watchers {
		select {
		case ch <- struct{}{}:
		default: // watcher already has a pending poke
		}
	}
	e.watchMu.Unlock()
}

// adoptFingerprint rebinds the environment's cache identity to a saved
// one. This is the snapshot-restore seam: step-cache keys persisted by
// a previous process embed that process's (identity, epoch), so after
// LoadSnapshot has proven the environments content-equivalent the
// loading environment takes over the saved identity and the persisted
// keys resolve. Identities only need to be unique within one System
// (caches are per-System), so adopting a foreign one is safe; any
// entries cached under the pre-adoption identity merely become
// unreachable garbage for the LRU to age out.
func (e *Environment) adoptFingerprint(id, epoch uint64) {
	e.fpID.Store(id)
	e.fpEpoch.Store(epoch)
}

// Watch registers ch to be poked — a non-blocking send of one empty
// struct — after every environment mutation (scenario injection). A
// buffered channel of capacity 1 coalesces mutation bursts into one
// wake-up; the watcher re-reads Fingerprint to decide what changed.
// This is the push seam System.Subscribe builds on: subscribers are
// poked, never polling.
func (e *Environment) Watch(ch chan<- struct{}) {
	e.watchMu.Lock()
	defer e.watchMu.Unlock()
	e.watchers = append(e.watchers, ch)
}

// Unwatch removes a channel registered with Watch. Unknown channels
// are ignored.
func (e *Environment) Unwatch(ch chan<- struct{}) {
	e.watchMu.Lock()
	defer e.watchMu.Unlock()
	for i, w := range e.watchers {
		if w == ch {
			e.watchers = append(e.watchers[:i], e.watchers[i+1:]...)
			return
		}
	}
}

// Clone returns a new Environment over the same immutable world,
// catalog, cross-layer map and analyzer, with its own mutation
// identity: the clone starts at epoch 0, carries the source's current
// scenario (the *Scenario itself is never mutated in place — injection
// replaces it), and has no watchers. Mutations on the clone are
// invisible to the source and vice versa, which is what gives each
// serving tenant its own scenario timeline over one generated world.
func (e *Environment) Clone() *Environment {
	c := &Environment{
		World:    e.World,
		Catalog:  e.Catalog,
		CrossMap: e.CrossMap,
		Analyzer: e.Analyzer,
		Scenario: e.Scenario,
		Now:      e.Now,
	}
	c.ensureFingerprint()
	return c
}

// NewEnvironment generates a world from the config, runs the Nautilus
// cross-layer mapping, and prepares the Xaminer analyzer. No scenario
// data is injected; call InjectCableFailureScenario for temporal and
// forensic analyses.
func NewEnvironment(cfg netsim.Config) (*Environment, error) {
	w, err := netsim.Generate(cfg)
	if err != nil {
		return nil, fmt.Errorf("core: generate world: %w", err)
	}
	cat := nautilus.BuildCatalog()
	m, err := nautilus.MapWorld(w, cat)
	if err != nil {
		return nil, fmt.Errorf("core: cross-layer mapping: %w", err)
	}
	an, err := xaminer.NewAnalyzer(w, cat, m)
	if err != nil {
		return nil, fmt.Errorf("core: analyzer: %w", err)
	}
	env := &Environment{World: w, Catalog: cat, CrossMap: m, Analyzer: an, Now: defaultNow}
	env.ensureFingerprint()
	return env, nil
}

// ScenarioConfig controls forensic-scenario injection.
type ScenarioConfig struct {
	// Cable to fail; empty picks the busiest Europe–Asia cable.
	Cable nautilus.CableID
	// DaysBeforeNow places the failure (default 3).
	DaysBeforeNow int
	// WindowDays is the total archive window ending at Now (default 7).
	WindowDays int
	// ProbePairs bounds the number of Europe→Asia probe pairs (default 6).
	ProbePairs int
	Seed       uint64
}

// InjectCableFailureScenario builds the measurement record of a cable
// failure: a multi-day Europe→Asia traceroute campaign and a BGP update
// stream, with the cable's links failing DaysBeforeNow days before the
// environment's Now. The injected ground truth is recorded on the
// scenario for evaluation but never exposed through the registry.
func (e *Environment) InjectCableFailureScenario(sc ScenarioConfig) error {
	if sc.DaysBeforeNow <= 0 {
		sc.DaysBeforeNow = 3
	}
	if sc.WindowDays <= sc.DaysBeforeNow {
		sc.WindowDays = sc.DaysBeforeNow + 4
	}
	if sc.ProbePairs <= 0 {
		sc.ProbePairs = 6
	}
	cable := sc.Cable
	if cable == "" {
		var best nautilus.CableID
		bestN := -1
		for _, c := range e.Catalog.Between("Europe", "Asia") {
			if n := len(e.CrossMap.LinksOn(c.ID)); n > bestN {
				best, bestN = c.ID, n
			}
		}
		if bestN <= 0 {
			return fmt.Errorf("core: no Europe-Asia cable carries links in this world")
		}
		cable = best
	}
	links := e.CrossMap.LinksOn(cable)
	if len(links) == 0 {
		return fmt.Errorf("core: cable %q carries no links; scenario would be vacuous", cable)
	}

	start := e.Now.Add(-time.Duration(sc.WindowDays) * 24 * time.Hour)
	failAt := e.Now.Add(-time.Duration(sc.DaysBeforeNow) * 24 * time.Hour)

	probes, err := e.europeAsiaProbes(sc.ProbePairs, links)
	if err != nil {
		return err
	}
	event := bgp.FailureEvent{At: failAt, Links: links, Label: "cable:" + string(cable)}
	arch, err := traceroute.RunCampaign(e.World, traceroute.Campaign{
		Probes:   probes,
		Start:    start,
		End:      e.Now,
		Interval: time.Hour,
		Events:   []bgp.FailureEvent{event},
		Seed:     sc.Seed ^ 0x5bd1e995,
	})
	if err != nil {
		return fmt.Errorf("core: campaign: %w", err)
	}
	collectors := e.collectorASes(3)
	stream, err := bgp.GenerateStream(e.World, []bgp.FailureEvent{event}, bgp.StreamConfig{
		Start: start, End: e.Now, Collectors: collectors,
		NoisePerHour: 6, Seed: sc.Seed ^ 0x9e3779b9,
	})
	if err != nil {
		return fmt.Errorf("core: stream: %w", err)
	}
	e.Scenario = &Scenario{
		Start: start, End: e.Now, FailureAt: failAt,
		TrueCable: cable, FailedLink: links,
		Archive: arch, Stream: stream,
	}
	// The environment's observable data changed; retire any memoized
	// step results computed over the scenario-less state.
	e.bumpFingerprint()
	return nil
}

// europeAsiaProbes builds probe pairs from European stub routers to
// Asian stub destinations. Pairs whose routing survives the failure
// with a changed path are preferred — those are the vantage points that
// observe the paper's "sudden increase in latency" rather than a
// blackout — followed by pairs that go dark, then unaffected pairs.
func (e *Environment) europeAsiaProbes(n int, failedLinks []netsim.LinkID) ([]traceroute.Probe, error) {
	var srcs []netsim.Router
	var dsts []netsim.Router
	for _, a := range e.World.ASes {
		if a.Tier != netsim.Stub {
			continue
		}
		r, ok := e.World.RouterIn(a.ASN, a.Home)
		if !ok {
			continue
		}
		switch region(a.Home) {
		case "Europe":
			srcs = append(srcs, r)
		case "Asia":
			dsts = append(dsts, r)
		}
	}
	if len(srcs) == 0 || len(dsts) == 0 {
		return nil, fmt.Errorf("core: world lacks European or Asian stubs for probing")
	}
	sort.Slice(srcs, func(i, j int) bool { return srcs[i].ID < srcs[j].ID })
	sort.Slice(dsts, func(i, j int) bool { return dsts[i].ID < dsts[j].ID })

	failSet := map[netsim.LinkID]bool{}
	for _, id := range failedLinks {
		failSet[id] = true
	}
	before := bgp.ComputeTable(e.World, nil)
	after := bgp.ComputeTable(e.World, failSet)
	prober := traceroute.NewProber(e.World)

	type rankedProbe struct {
		probe   traceroute.Probe
		deltaMs float64
	}
	// Bound the candidate grid so scenario injection stays fast on the
	// full world.
	const maxSide = 14
	if len(srcs) > maxSide {
		srcs = srcs[:maxSide]
	}
	if len(dsts) > maxSide {
		dsts = dsts[:maxSide]
	}

	var shifted []rankedProbe
	var lost, stable []traceroute.Probe
	for si, s := range srcs {
		for di, d := range dsts {
			p := traceroute.Probe{
				Name: fmt.Sprintf("%s-%s-%d", s.Country, d.Country, si*len(dsts)+di),
				Src:  s.ID,
				Dst:  d.Addr,
			}
			// Cable failures usually reroute below the AS level (a
			// different exit link or a backbone detour), so classify by
			// tracing the actual data path, not by comparing AS paths.
			pb, err1 := prober.Trace(before, nil, s.ID, d.Addr, 1)
			pa, err2 := prober.Trace(after, failSet, s.ID, d.Addr, 1)
			switch {
			case err1 != nil || err2 != nil || !pb.Reached:
				stable = append(stable, p)
			case !pa.Reached:
				lost = append(lost, p)
			default:
				shifted = append(shifted, rankedProbe{probe: p, deltaMs: pa.RTTms - pb.RTTms})
			}
		}
	}
	// Largest latency increases first; they anchor the detection.
	sort.SliceStable(shifted, func(i, j int) bool { return shifted[i].deltaMs > shifted[j].deltaMs })
	var probes []traceroute.Probe
	for _, rp := range shifted {
		if rp.deltaMs > 2.0 {
			probes = append(probes, rp.probe)
		}
	}
	probes = append(probes, lost...)
	for _, rp := range shifted {
		if rp.deltaMs <= 2.0 {
			probes = append(probes, rp.probe)
		}
	}
	probes = append(probes, stable...)
	if len(probes) > n {
		probes = probes[:n]
	}
	return probes, nil
}

func region(code string) string {
	r, ok := geo.RegionOf(code)
	if !ok {
		return ""
	}
	return string(r)
}

// collectorASes picks the first n tier-1 ASes as BGP collectors.
func (e *Environment) collectorASes(n int) []netsim.ASN {
	var out []netsim.ASN
	for _, a := range e.World.ASes {
		if a.Tier == netsim.Tier1 {
			out = append(out, a.ASN)
			if len(out) == n {
				break
			}
		}
	}
	if len(out) == 0 && len(e.World.ASes) > 0 {
		out = append(out, e.World.ASes[0].ASN)
	}
	return out
}

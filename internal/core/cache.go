// Cross-call memoization: a sharded, size-bounded LRU shared by every
// serving surface of a System (Ask, AskStream, AskBatch and the async
// job workers). Two instances exist per System — a plan cache keyed by
// (normalized query, registry generation, environment fingerprint)
// that skips the three planning agents for repeat queries, and a step
// cache behind the workflow.Cache interface that memoizes pure
// capability executions across runs. Sharding keeps concurrent callers
// off one mutex; per-shard LRU lists and byte accounting keep the
// whole structure bounded under sustained traffic.
package core

import (
	"container/list"
	"hash/maphash"
	"net/netip"
	"reflect"
	"sync"
	"sync/atomic"
	"unsafe"

	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
	"arachnet/internal/xaminer"
)

// cacheShards is the shard count; keys are distributed by hash. A
// power of two keeps the index a mask.
const cacheShards = 16

// Default cache bounds applied by NewSystem, overridable per System
// with SetCacheLimits. Exported so tools that flush caches (via a
// disable/re-enable cycle) can re-arm the stock configuration.
const (
	DefaultPlanCacheEntries = 256
	DefaultStepCacheEntries = 4096
	DefaultStepCacheBytes   = 64 << 20 // 64 MiB of estimated value bytes
)

// CacheCounters is the observable state of one cache.
type CacheCounters struct {
	// Hits and Misses count Get outcomes since construction.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped to honor the size bounds.
	Evictions int64 `json:"evictions"`
	// Entries is the current number of cached entries.
	Entries int `json:"entries"`
	// Bytes is the current estimated footprint of cached values.
	Bytes int64 `json:"bytes"`
}

// HitRatio returns Hits / (Hits + Misses), or 0 before any lookup.
func (c CacheCounters) HitRatio() float64 {
	total := c.Hits + c.Misses
	if total == 0 {
		return 0
	}
	return float64(c.Hits) / float64(total)
}

// cacheEntry is one key→value pair plus its estimated size.
type cacheEntry struct {
	key  string
	val  any
	size int64
}

// cacheShard is one independently locked LRU segment.
type cacheShard struct {
	mu    sync.Mutex
	order *list.List // front = most recently used; elements hold *cacheEntry
	table map[string]*list.Element
	bytes int64
}

// lruCache is the sharded, size-bounded LRU. maxEntries <= 0 disables
// the cache entirely (Get always misses, Put is a no-op); maxBytes <= 0
// means no byte bound. Limits may be changed at any time; shrinking
// evicts immediately.
type lruCache struct {
	seed                 maphash.Seed
	maxEntries, maxBytes atomic.Int64
	hits, misses, evicts atomic.Int64
	shards               [cacheShards]cacheShard
}

// newLRUCache builds a cache with the given bounds.
func newLRUCache(maxEntries int, maxBytes int64) *lruCache {
	c := &lruCache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].table = make(map[string]*list.Element)
	}
	c.maxEntries.Store(int64(maxEntries))
	c.maxBytes.Store(maxBytes)
	return c
}

func (c *lruCache) shard(key string) *cacheShard {
	return &c.shards[maphash.String(c.seed, key)&(cacheShards-1)]
}

// Get returns the cached value for key, refreshing its recency.
// Lookups against a disabled cache miss without counting, so hit
// ratios describe only the periods the cache was actually on.
func (c *lruCache) Get(key string) (any, bool) {
	if c.maxEntries.Load() <= 0 {
		return nil, false
	}
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.table[key]
	if !ok {
		s.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	s.order.MoveToFront(el)
	v := el.Value.(*cacheEntry).val
	s.mu.Unlock()
	c.hits.Add(1)
	return v, true
}

// Put stores (or refreshes) key with an estimated size, evicting the
// least recently used entries of the shard until the bounds hold.
func (c *lruCache) Put(key string, val any, size int64) {
	if c.maxEntries.Load() <= 0 {
		return
	}
	if size < 1 {
		size = 1
	}
	s := c.shard(key)
	s.mu.Lock()
	// Re-check under the shard lock: a concurrent SetCacheLimits(0, ...)
	// flush between the load above and here must not be undone by this
	// insert landing in a supposedly emptied cache.
	maxE := c.maxEntries.Load()
	if maxE <= 0 {
		s.mu.Unlock()
		return
	}
	if el, ok := s.table[key]; ok {
		ent := el.Value.(*cacheEntry)
		s.bytes += size - ent.size
		ent.val, ent.size = val, size
		s.order.MoveToFront(el)
	} else {
		s.table[key] = s.order.PushFront(&cacheEntry{key: key, val: val, size: size})
		s.bytes += size
	}
	c.evictLocked(s, maxE, c.maxBytes.Load())
	s.mu.Unlock()
}

// SetLimits rebounds the cache and evicts immediately if shrinking.
func (c *lruCache) SetLimits(maxEntries int, maxBytes int64) {
	c.maxEntries.Store(int64(maxEntries))
	c.maxBytes.Store(maxBytes)
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		if maxEntries <= 0 {
			// Disabled: drop everything without counting evictions as
			// pressure (the operator asked for the flush). clear keeps
			// the buckets allocated for a cheap re-enable.
			s.order.Init()
			clear(s.table)
			s.bytes = 0
		} else {
			c.evictLocked(s, int64(maxEntries), maxBytes)
		}
		s.mu.Unlock()
	}
}

// evictLocked drops LRU entries until the shard honors its share of
// the global bounds. Bounds divide evenly across shards (minimum one
// entry per shard so a tiny bound still caches something).
func (c *lruCache) evictLocked(s *cacheShard, maxEntries, maxBytes int64) {
	perEntries := maxEntries / cacheShards
	if perEntries < 1 {
		perEntries = 1
	}
	perBytes := int64(0)
	if maxBytes > 0 {
		perBytes = maxBytes / cacheShards
		if perBytes < 1 {
			perBytes = 1
		}
	}
	for int64(len(s.table)) > perEntries || (perBytes > 0 && s.bytes > perBytes && len(s.table) > 1) {
		el := s.order.Back()
		if el == nil {
			return
		}
		ent := el.Value.(*cacheEntry)
		s.order.Remove(el)
		delete(s.table, ent.key)
		s.bytes -= ent.size
		c.evicts.Add(1)
	}
}

// Counters snapshots the cache's observable state.
// entries snapshots every cached (key, value, size), shard by shard in
// recency order (most recent first within a shard). Each shard is
// copied under its own lock, so the view is per-shard consistent —
// good enough for the snapshot writer, which tolerates entries added
// or evicted mid-walk.
func (c *lruCache) entries() []cacheEntry {
	var out []cacheEntry
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.order.Front(); el != nil; el = el.Next() {
			ent := el.Value.(*cacheEntry)
			out = append(out, cacheEntry{key: ent.key, val: ent.val, size: ent.size})
		}
		s.mu.Unlock()
	}
	return out
}

func (c *lruCache) Counters() CacheCounters {
	out := CacheCounters{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicts.Load(),
	}
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		out.Entries += len(s.table)
		out.Bytes += s.bytes
		s.mu.Unlock()
	}
	return out
}

// stepCacheAdapter exposes an lruCache through the workflow.Cache
// interface, estimating output-map sizes on write.
type stepCacheAdapter struct{ c *lruCache }

func (a stepCacheAdapter) Get(key string) (map[string]any, bool) {
	v, ok := a.c.Get(key)
	if !ok {
		return nil, false
	}
	return v.(map[string]any), true
}

func (a stepCacheAdapter) Put(key string, outputs map[string]any) {
	a.c.Put(key, outputs, estimateSize(outputs))
}

// estimateSize approximates the in-memory footprint of a value for the
// cache's byte accounting. The common step-output shapes (address
// sets, link sets, geo tables, impact reports, and the output maps
// wrapping them) take a reflection-free fast path; anything else falls
// back to a bounded reflective walk that samples long collections, so
// the estimate is cheap and order-of-magnitude right rather than
// exact.
func estimateSize(v any) int64 {
	if s, ok := sizeHint(v); ok {
		return s
	}
	return estimateValue(reflect.ValueOf(v), 4)
}

// Element sizes for the hinted types. Computed once from the real
// layouts so the hints track the reflective estimates as types evolve.
var (
	hintAddrSize    = int64(unsafe.Sizeof(netip.Addr{}))
	hintLinkIDSize  = int64(unsafe.Sizeof(netsim.LinkID(0)))
	hintGeoRowSize  = int64(unsafe.Sizeof(GeoRow{}))
	hintImpactSize  = int64(unsafe.Sizeof(xaminer.ImpactReport{}))
	hintCountrySize = int64(unsafe.Sizeof(xaminer.CountryImpact{}))
)

// sliceHeader/stringHeader/mapOverhead approximate container costs the
// element sizes above don't cover.
const (
	hintSliceHeader = 24
	hintStringSize  = 16 // header; content added per value
	hintMapOverhead = 48
	hintMapEntry    = 16 // bucket slot bookkeeping per entry
)

// sizeHint returns a reflection-free footprint estimate for the value
// shapes the step cache actually stores (see the builtin catalog's
// outputs), or ok=false to fall back to the reflective estimator. The
// hints intentionally mirror estimateValue's accounting — header plus
// indirect payload — so mixing hinted and reflected values inside one
// output map stays consistent.
func sizeHint(v any) (int64, bool) {
	switch x := v.(type) {
	case nil:
		return 8, true
	case bool, int, int64, float64, netsim.LinkID:
		return 8, true
	case netip.Addr:
		return hintAddrSize, true
	case string:
		return hintStringSize + int64(len(x)), true
	case nautilus.CableID:
		return hintStringSize + int64(len(x)), true
	case []netip.Addr:
		return hintSliceHeader + int64(len(x))*hintAddrSize, true
	case []netsim.LinkID:
		return hintSliceHeader + int64(len(x))*hintLinkIDSize, true
	case []string:
		s := int64(hintSliceHeader)
		for _, e := range x {
			s += hintStringSize + int64(len(e))
		}
		return s, true
	case []nautilus.CableID:
		s := int64(hintSliceHeader)
		for _, e := range x {
			s += hintStringSize + int64(len(e))
		}
		return s, true
	case []GeoRow:
		s := hintSliceHeader + int64(len(x))*hintGeoRowSize
		for _, r := range x {
			s += int64(len(r.Country))
		}
		return s, true
	case *xaminer.ImpactReport:
		if x == nil {
			return 8, true
		}
		s := 8 + hintImpactSize + int64(len(x.Scenario))
		s += int64(len(x.Countries)) * hintCountrySize
		for _, c := range x.Countries {
			s += int64(len(c.Country))
		}
		return s, true
	case map[string]any:
		s := int64(hintMapOverhead)
		for k, val := range x {
			s += hintMapEntry + hintStringSize + int64(len(k))
			if hv, ok := sizeHint(val); ok {
				s += hv
			} else {
				s += estimateValue(reflect.ValueOf(val), 3)
			}
		}
		return s, true
	}
	return 0, false
}

// estimateItems bounds how many collection elements are inspected;
// beyond it the sampled mean is extrapolated.
const estimateItems = 32

func estimateValue(rv reflect.Value, depth int) int64 {
	if !rv.IsValid() {
		return 8
	}
	t := rv.Type()
	size := int64(t.Size())
	if depth <= 0 {
		return size
	}
	switch rv.Kind() {
	case reflect.String:
		size += int64(rv.Len())
	case reflect.Pointer, reflect.Interface:
		if !rv.IsNil() {
			size += estimateValue(rv.Elem(), depth-1)
		}
	case reflect.Slice, reflect.Array:
		n := rv.Len()
		if n == 0 {
			break
		}
		sample := n
		if sample > estimateItems {
			sample = estimateItems
		}
		var sum int64
		for i := 0; i < sample; i++ {
			sum += estimateValue(rv.Index(i), depth-1)
		}
		size += sum * int64(n) / int64(sample)
	case reflect.Map:
		n := rv.Len()
		if n == 0 {
			break
		}
		iter := rv.MapRange()
		var sum int64
		sampled := 0
		for iter.Next() && sampled < estimateItems {
			sum += estimateValue(iter.Key(), depth-1)
			sum += estimateValue(iter.Value(), depth-1)
			sampled++
		}
		if sampled > 0 {
			size += sum * int64(n) / int64(sampled)
		}
	case reflect.Struct:
		for i := 0; i < rv.NumField(); i++ {
			f := rv.Field(i)
			switch f.Kind() {
			case reflect.String, reflect.Pointer, reflect.Interface,
				reflect.Slice, reflect.Array, reflect.Map, reflect.Struct:
				// t.Size() already counts the inline header; add only
				// the indirect payload.
				size += estimateValue(f, depth-1) - int64(f.Type().Size())
			}
		}
	}
	return size
}

// Job scheduling: the fairness seam between Submit and the worker
// pool. A Scheduler owns the bounded queue and the workers that drain
// it; every System routes its async jobs through one. A System that
// never calls SetScheduler gets a private single-class scheduler whose
// behavior is exactly the historical FIFO queue, while a serving tier
// can share one Scheduler across many Systems (one per tenant) to get
// weighted-fair dequeue, per-class concurrency caps and per-class
// admission control — the multi-tenant story the HTTP tier builds on.
//
// Fairness is stride scheduling: each class carries a virtual "pass";
// dequeue picks the runnable class with the lowest pass and advances it
// by stride/weight, so over time classes receive worker bandwidth
// proportional to their weights regardless of how bursty their arrival
// patterns are. A class at its MaxRunning cap simply stops being
// runnable — its pass freezes, so it loses no credit while capped.
package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// strideScale is the numerator of a class's per-dequeue pass advance
// (stride = strideScale / weight). Any large constant works; a power of
// two keeps float64 arithmetic exact for small weights.
const strideScale = 1 << 16

// ClassConfig bounds and weights one scheduling class (in the serving
// tier: one tenant).
type ClassConfig struct {
	// Weight is the class's share of dequeue bandwidth relative to the
	// other classes (default 1; non-positive values mean 1).
	Weight int `json:"weight,omitempty"`
	// MaxQueued bounds how many jobs of this class may wait for a
	// worker; beyond it Submit sheds with ErrJobQueueFull. Zero means
	// bounded only by the scheduler's global depth.
	MaxQueued int `json:"max_queued,omitempty"`
	// MaxRunning caps how many jobs of this class run concurrently.
	// Zero means bounded only by the worker pool.
	MaxRunning int `json:"max_running,omitempty"`
}

// weight returns the effective (positive) weight.
func (c ClassConfig) weight() int {
	if c.Weight < 1 {
		return 1
	}
	return c.Weight
}

// ClassStats is the observable state of one scheduling class.
type ClassStats struct {
	Queued     int   `json:"queued"`
	Running    int   `json:"running"`
	Served     int64 `json:"served"`
	Shed       int64 `json:"shed"`
	Weight     int   `json:"weight"`
	MaxQueued  int   `json:"max_queued,omitempty"`
	MaxRunning int   `json:"max_running,omitempty"`
}

// QueueStats is the observable state of a Scheduler.
type QueueStats struct {
	Queued  int `json:"queued"`
	Running int `json:"running"`
	Workers int `json:"workers"`
	Depth   int `json:"depth"`
	// Shed counts jobs refused for any reason (global depth or a
	// per-class bound) since construction.
	Shed    int64                 `json:"shed"`
	Classes map[string]ClassStats `json:"classes,omitempty"`
}

// schedClass is one class's queue state. The fifo is a slice with a
// moving head, compacted when the dead prefix dominates.
type schedClass struct {
	name    string
	cfg     ClassConfig
	fifo    []*Job
	head    int
	pass    float64
	running int
	served  int64
	shed    int64
}

func (c *schedClass) queued() int { return len(c.fifo) - c.head }

func (c *schedClass) push(j *Job) { c.fifo = append(c.fifo, j) }

func (c *schedClass) pop() *Job {
	j := c.fifo[c.head]
	c.fifo[c.head] = nil
	c.head++
	if c.head > 64 && c.head*2 >= len(c.fifo) {
		c.fifo = append(c.fifo[:0], c.fifo[c.head:]...)
		c.head = 0
	}
	return j
}

// runnable reports whether the class has a job a worker may take now.
func (c *schedClass) runnable() bool {
	return c.queued() > 0 && (c.cfg.MaxRunning <= 0 || c.running < c.cfg.MaxRunning)
}

// Scheduler is a weighted-fair job queue plus the worker pool that
// drains it. All methods are safe for concurrent use. The worker pool
// starts lazily on the first enqueued job and exits after Close once
// the queue is empty; already-accepted jobs always run (cancel them
// individually to abort). One Scheduler may be shared by many Systems
// via System.SetScheduler — each job runs on the System that submitted
// it, so tenants keep their own registries and caches while competing
// for one pool.
type Scheduler struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	depth   int
	started bool
	closed  bool
	classes map[string]*schedClass
	queued  int
	running int
	vtime   float64
	shed    int64
}

// NewScheduler builds a scheduler with the given worker-pool size and
// global queue depth. Non-positive values take the defaults (GOMAXPROCS
// workers, depth 128).
func NewScheduler(workers, depth int) *Scheduler {
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 1 {
		depth = defaultJobQueueDepth
	}
	sc := &Scheduler{workers: workers, depth: depth, classes: make(map[string]*schedClass)}
	sc.cond = sync.NewCond(&sc.mu)
	return sc
}

// SetClass configures (or reconfigures) one scheduling class. Classes
// not configured explicitly come into existence on first use with
// weight 1 and no per-class bounds. SetClass may be called at any time;
// loosening MaxRunning takes effect immediately.
func (sc *Scheduler) SetClass(name string, cfg ClassConfig) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	sc.classLocked(name).cfg = cfg
	sc.cond.Broadcast()
}

func (sc *Scheduler) classLocked(name string) *schedClass {
	c, ok := sc.classes[name]
	if !ok {
		c = &schedClass{name: name, pass: sc.vtime}
		sc.classes[name] = c
	}
	return c
}

// enqueue admits one job or sheds it. Shedding is ErrJobQueueFull for
// both the global depth and a per-class MaxQueued bound; a closed
// scheduler refuses with ErrJobsClosed.
func (sc *Scheduler) enqueue(j *Job) error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return ErrJobsClosed
	}
	if sc.queued >= sc.depth {
		sc.shed++
		return fmt.Errorf("%w (depth %d)", ErrJobQueueFull, sc.depth)
	}
	c := sc.classLocked(j.class)
	if c.cfg.MaxQueued > 0 && c.queued() >= c.cfg.MaxQueued {
		c.shed++
		sc.shed++
		return fmt.Errorf("%w (class %q at %d queued)", ErrJobQueueFull, j.class, c.queued())
	}
	// A class that was idle re-joins at the current virtual time so it
	// cannot burn banked credit to starve the others.
	if c.queued() == 0 && c.pass < sc.vtime {
		c.pass = sc.vtime
	}
	c.push(j)
	sc.queued++
	sc.ensureStartedLocked()
	sc.cond.Signal()
	return nil
}

// next blocks until a job is runnable (returning it) or the scheduler
// is closed and drained (returning false).
func (sc *Scheduler) next() (*Job, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for {
		if c := sc.pickLocked(); c != nil {
			j := c.pop()
			sc.queued--
			c.running++
			sc.running++
			if c.pass > sc.vtime {
				sc.vtime = c.pass
			}
			c.pass += strideScale / float64(c.cfg.weight())
			return j, true
		}
		if sc.closed && sc.queued == 0 {
			return nil, false
		}
		sc.cond.Wait()
	}
}

// pickLocked returns the runnable class with the minimum pass (ties
// broken by name for determinism), or nil when no class is runnable.
func (sc *Scheduler) pickLocked() *schedClass {
	var best *schedClass
	for _, c := range sc.classes {
		if !c.runnable() {
			continue
		}
		if best == nil || c.pass < best.pass || (c.pass == best.pass && c.name < best.name) {
			best = c
		}
	}
	return best
}

// release returns a finished job's concurrency slot and wakes workers
// capped on the class as well as Drain waiters.
func (sc *Scheduler) release(j *Job) {
	sc.mu.Lock()
	if c, ok := sc.classes[j.class]; ok {
		c.running--
		c.served++
	}
	sc.running--
	sc.cond.Broadcast()
	sc.mu.Unlock()
}

// ensureStartedLocked launches the worker pool once.
func (sc *Scheduler) ensureStartedLocked() {
	if sc.started {
		return
	}
	sc.started = true
	for i := 0; i < sc.workers; i++ {
		go sc.worker()
	}
}

// worker drains the scheduler until it is closed and empty. Each job
// runs on the System that submitted it, so a shared pool serves many
// isolated Systems.
func (sc *Scheduler) worker() {
	for {
		j, ok := sc.next()
		if !ok {
			return
		}
		j.sys.serveJob(j)
		sc.release(j)
	}
}

// Close stops admission: subsequent enqueues fail with ErrJobsClosed
// and workers exit once the queue drains. Already-accepted jobs —
// queued or running — complete normally. Close is idempotent and
// returns without waiting; pair it with Drain for a graceful stop.
func (sc *Scheduler) Close() {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if sc.closed {
		return
	}
	sc.closed = true
	sc.cond.Broadcast()
}

// Drain blocks until no job is queued or running, or ctx is done. It
// does not itself stop admission — close the submitting Systems (or the
// Scheduler) first, then Drain, for the shutdown sequence a server
// wants: refuse new work, finish accepted work, exit.
func (sc *Scheduler) Drain(ctx context.Context) error {
	if ctx == nil {
		ctx = context.Background()
	}
	// Broadcast under the lock so the wakeup cannot slip between a
	// waiter's ctx check and its Wait and be lost.
	stop := context.AfterFunc(ctx, func() {
		sc.mu.Lock()
		sc.cond.Broadcast()
		sc.mu.Unlock()
	})
	defer stop()
	sc.mu.Lock()
	defer sc.mu.Unlock()
	for sc.queued+sc.running > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		sc.cond.Wait()
	}
	return nil
}

// Stats snapshots the scheduler's observable state.
func (sc *Scheduler) Stats() QueueStats {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := QueueStats{
		Queued:  sc.queued,
		Running: sc.running,
		Workers: sc.workers,
		Depth:   sc.depth,
		Shed:    sc.shed,
		Classes: make(map[string]ClassStats, len(sc.classes)),
	}
	for name, c := range sc.classes {
		out.Classes[name] = ClassStats{
			Queued:     c.queued(),
			Running:    c.running,
			Served:     c.served,
			Shed:       c.shed,
			Weight:     c.cfg.weight(),
			MaxQueued:  c.cfg.MaxQueued,
			MaxRunning: c.cfg.MaxRunning,
		}
	}
	return out
}

package core

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

// schedSystem builds a System attached to sched under class, backed by
// a gated CS1 registry (see gatedRegistry).
func schedSystem(t testing.TB, sched *Scheduler, class string, gate <-chan struct{}) *System {
	t.Helper()
	sys, err := NewSystem(testEnv(t, false), gatedRegistry(t, gate))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetScheduler(sched, class); err != nil {
		t.Fatal(err)
	}
	return sys
}

// doneRecorder returns an AskOption that appends tag to order when the
// run's terminal Done event fires. With a single worker, completion
// order is dequeue order.
func doneRecorder(mu *sync.Mutex, order *[]string, tag string) AskOption {
	return AskObserver(ObserverFunc(func(ev Event) error {
		if _, ok := ev.(*Done); ok {
			mu.Lock()
			*order = append(*order, tag)
			mu.Unlock()
		}
		return nil
	}))
}

func TestSchedulerWeightedFairOrder(t *testing.T) {
	// One worker, two classes at weight 2:1. A plug job pins the worker
	// while a backlog accumulates in both classes; once released, stride
	// scheduling must interleave dequeues 2:1. Weights of 1 and 2 keep
	// every pass value an exact float, so the order is fully
	// deterministic (ties break by class name).
	gate := make(chan struct{})
	sched := NewScheduler(1, 32)
	sched.SetClass("a", ClassConfig{Weight: 2})
	sched.SetClass("b", ClassConfig{Weight: 1})
	sysA := schedSystem(t, sched, "a", gate)
	sysB := schedSystem(t, sched, "b", gate)

	plug, err := sysA.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, plug, JobRunning)

	var mu sync.Mutex
	var order []string
	var jobs []*Job
	for i := 0; i < 6; i++ {
		j, err := sysA.Submit(ctx, queryCS1, doneRecorder(&mu, &order, "a"))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	for i := 0; i < 3; i++ {
		j, err := sysB.Submit(ctx, queryCS1, doneRecorder(&mu, &order, "b"))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	close(gate)
	if _, err := plug.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	for _, j := range jobs {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	got := strings.Join(order, "")
	mu.Unlock()
	// After the plug advanced a's pass by one stride, b starts behind
	// and the 2:1 cadence repeats exactly.
	if want := "baabaabaa"; got != want {
		t.Errorf("dequeue order = %q, want %q", got, want)
	}
	st := sched.Stats()
	if st.Classes["a"].Served != 7 || st.Classes["b"].Served != 3 {
		t.Errorf("served a=%d b=%d, want 7/3", st.Classes["a"].Served, st.Classes["b"].Served)
	}
}

func TestSchedulerMaxRunningCap(t *testing.T) {
	// Four workers, but the capped class may only run one job at a time;
	// its surplus stays queued while another class uses the idle workers.
	gate := make(chan struct{})
	sched := NewScheduler(4, 32)
	sched.SetClass("capped", ClassConfig{MaxRunning: 1})
	capped := schedSystem(t, sched, "capped", gate)
	free := schedSystem(t, sched, "free", gate)

	var cappedJobs []*Job
	for i := 0; i < 3; i++ {
		j, err := capped.Submit(ctx, queryCS1)
		if err != nil {
			t.Fatal(err)
		}
		cappedJobs = append(cappedJobs, j)
	}
	awaitState(t, cappedJobs[0], JobRunning)
	st := sched.Stats()
	if cs := st.Classes["capped"]; cs.Running != 1 || cs.Queued != 2 {
		t.Errorf("capped class running=%d queued=%d, want 1/2", cs.Running, cs.Queued)
	}

	// The cap must not freeze the pool: a job in the other class gets a
	// worker while the capped class holds its single slot.
	fj, err := free.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, fj, JobRunning)

	close(gate)
	for _, j := range append(cappedJobs, fj) {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
	if st := sched.Stats(); st.Classes["capped"].Served != 3 {
		t.Errorf("capped served = %d, want 3", st.Classes["capped"].Served)
	}
}

func TestSchedulerPerClassQueueBound(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	sched := NewScheduler(1, 32)
	sched.SetClass("small", ClassConfig{MaxQueued: 1})
	small := schedSystem(t, sched, "small", gate)
	other := schedSystem(t, sched, "other", gate)

	plug, err := small.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, plug, JobRunning)
	if _, err := small.Submit(ctx, queryCS1); err != nil {
		t.Fatalf("first waiter within MaxQueued refused: %v", err)
	}
	if _, err := small.Submit(ctx, queryCS1); !errors.Is(err, ErrJobQueueFull) {
		t.Fatalf("err = %v, want ErrJobQueueFull past the class bound", err)
	}
	// The bound is per class: the other class still has the whole
	// global depth available.
	if _, err := other.Submit(ctx, queryCS1); err != nil {
		t.Fatalf("other class refused by small's bound: %v", err)
	}
	st := sched.Stats()
	if st.Shed != 1 || st.Classes["small"].Shed != 1 || st.Classes["other"].Shed != 0 {
		t.Errorf("shed global=%d small=%d other=%d, want 1/1/0",
			st.Shed, st.Classes["small"].Shed, st.Classes["other"].Shed)
	}
}

func TestSchedulerGlobalDepthShared(t *testing.T) {
	// The global depth bounds the sum across classes: with depth 1 a
	// waiter from one class locks out every other class too.
	gate := make(chan struct{})
	defer close(gate)
	sched := NewScheduler(1, 1)
	sysA := schedSystem(t, sched, "a", gate)
	sysB := schedSystem(t, sched, "b", gate)

	plug, err := sysA.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, plug, JobRunning)
	if _, err := sysA.Submit(ctx, queryCS1); err != nil {
		t.Fatal(err)
	}
	if _, err := sysB.Submit(ctx, queryCS1); !errors.Is(err, ErrJobQueueFull) {
		t.Fatalf("err = %v, want ErrJobQueueFull at global depth", err)
	}
}

func TestSchedulerDrain(t *testing.T) {
	gate := make(chan struct{})
	sched := NewScheduler(2, 8)
	sys := schedSystem(t, sched, "t", gate)

	j1, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, j1, JobRunning)
	awaitState(t, j2, JobRunning)

	// With both jobs pinned at the gate, a bounded Drain must time out.
	short, cancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer cancel()
	if err := sched.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain on a busy scheduler: err = %v", err)
	}

	close(gate)
	long, cancel2 := context.WithTimeout(ctx, 30*time.Second)
	defer cancel2()
	if err := sched.Drain(long); err != nil {
		t.Fatalf("Drain after release: %v", err)
	}
	st := sched.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("post-drain stats queued=%d running=%d", st.Queued, st.Running)
	}
	if j1.State() != JobDone || j2.State() != JobDone {
		t.Errorf("drained jobs in states %s/%s", j1.State(), j2.State())
	}
}

func TestSchedulerCloseStopsAdmission(t *testing.T) {
	sched := NewScheduler(1, 8)
	sys := schedSystem(t, sched, "t", nil)
	sched.Close()
	sched.Close() // idempotent
	if _, err := sys.Submit(ctx, queryCS1); !errors.Is(err, ErrJobsClosed) {
		t.Fatalf("Submit on closed scheduler: err = %v", err)
	}
}

func TestSetSchedulerErrors(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	if err := sys.SetScheduler(nil, "x"); err == nil {
		t.Error("nil scheduler accepted")
	}
	sched := NewScheduler(1, 8)
	if err := sys.SetScheduler(sched, "x"); err != nil {
		t.Fatal(err)
	}
	// A second attach, and private-pool sizing, both conflict with the
	// attached scheduler.
	if err := sys.SetScheduler(NewScheduler(1, 8), "y"); !errors.Is(err, ErrJobsStarted) {
		t.Errorf("re-attach: err = %v, want ErrJobsStarted", err)
	}
	if err := sys.SetJobLimits(2, 2); !errors.Is(err, ErrJobsStarted) {
		t.Errorf("SetJobLimits after attach: err = %v, want ErrJobsStarted", err)
	}
	j, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if j.Class() != "x" {
		t.Errorf("job class = %q, want %q", j.Class(), "x")
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCloseConcurrentWithSubmit(t *testing.T) {
	// Regression: Close must be idempotent and safe while Submits race
	// it from other goroutines — every Submit either succeeds (and the
	// accepted job completes) or fails with ErrJobsClosed; nothing
	// panics or deadlocks. Run with -race.
	env := testEnv(t, false)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var accepted []*Job
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				j, err := sys.Submit(ctx, queryCS1)
				switch {
				case err == nil:
					mu.Lock()
					accepted = append(accepted, j)
					mu.Unlock()
				case errors.Is(err, ErrJobsClosed):
					return
				default:
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}()
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(time.Millisecond)
			sys.Close()
		}()
	}
	wg.Wait()
	sys.Close() // idempotent after the race
	if _, err := sys.Submit(ctx, queryCS1); !errors.Is(err, ErrJobsClosed) {
		t.Fatalf("Submit after Close: err = %v", err)
	}
	wctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	for _, j := range accepted {
		if _, err := j.Wait(wctx); err != nil {
			t.Fatalf("accepted job %d: %v", j.ID(), err)
		}
	}
}

package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"arachnet/internal/agents/querymind"
	"arachnet/internal/netsim"
	"arachnet/internal/nlq"
	"arachnet/internal/xaminer"
)

// ctx is the background context shared by the non-cancellation tests.
var ctx = context.Background()

const (
	queryCS1 = "Identify the impact at a country level due to SeaMeWe-5 cable failure"
	queryCS2 = "Identify the impact of severe earthquakes and hurricanes globally assuming a 10% infra failure probability"
	queryCS3 = "Analyze the cascading effects of submarine cable failures between Europe and Asia"
	queryCS4 = "A sudden increase in latency was observed from European probes to Asian destinations starting three days ago. Determine if a submarine cable failure caused this, and if so, identify the specific cable."
)

// testEnv builds a small environment; scenario injection is optional.
func testEnv(t testing.TB, withScenario bool) *Environment {
	t.Helper()
	env, err := NewEnvironment(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if withScenario {
		if err := env.InjectCableFailureScenario(ScenarioConfig{Seed: 5}); err != nil {
			t.Fatal(err)
		}
	}
	return env
}

func TestNewEnvironment(t *testing.T) {
	env := testEnv(t, false)
	if env.World == nil || env.Catalog == nil || env.CrossMap == nil || env.Analyzer == nil {
		t.Fatal("environment incomplete")
	}
	d := env.Data()
	if !d.HasCrossLayerMap || d.MapCoverage <= 0 {
		t.Errorf("data catalog wrong: %+v", d)
	}
	if d.HasTraceArchive || d.HasBGPStream {
		t.Error("scenario data should be absent before injection")
	}
}

func TestInjectScenario(t *testing.T) {
	env := testEnv(t, true)
	sc := env.Scenario
	if sc == nil {
		t.Fatal("no scenario")
	}
	if sc.TrueCable == "" || len(sc.FailedLink) == 0 {
		t.Error("scenario lacks ground truth")
	}
	if len(sc.Stream) == 0 || sc.Archive == nil {
		t.Error("scenario lacks data")
	}
	if !sc.FailureAt.After(sc.Start) || !sc.FailureAt.Before(sc.End) {
		t.Error("failure time outside window")
	}
	d := env.Data()
	if !d.HasTraceArchive || !d.HasBGPStream || d.WindowDays < 5 {
		t.Errorf("data catalog after injection: %+v", d)
	}
}

func TestBuiltinRegistryComplete(t *testing.T) {
	reg := BuiltinRegistry()
	if reg.Size() < 20 {
		t.Errorf("builtin registry has only %d capabilities", reg.Size())
	}
	fws := reg.Frameworks()
	want := []string{"bgp", "forensic", "geo", "nautilus", "report", "synthesis", "topo", "traceroute", "xaminer"}
	if len(fws) != len(want) {
		t.Fatalf("frameworks = %v, want %v", fws, want)
	}
	for i := range want {
		if fws[i] != want[i] {
			t.Errorf("framework %d = %s, want %s", i, fws[i], want[i])
		}
	}
	// CS1 subset must materialize.
	sub, err := reg.Subset(CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	if sub.ByFramework("xaminer") != nil {
		t.Error("CS1 subset leaks Xaminer abstractions")
	}
}

func TestAskCS1FullRegistry(t *testing.T) {
	env := testEnv(t, false)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Problem == nil || len(rep.Problem.SubProblems) < 2 {
		t.Fatal("no decomposition")
	}
	if rep.Design == nil || rep.Design.Chosen == nil {
		t.Fatal("no design")
	}
	if rep.Solution == nil || rep.Solution.LoC == 0 {
		t.Fatal("no generated code")
	}
	out, ok := rep.Result.Outputs["aggregation"]
	if !ok {
		t.Fatalf("no aggregation output; outputs = %v", rep.Result.Outputs)
	}
	impact, ok := out.(*xaminer.ImpactReport)
	if !ok {
		t.Fatalf("aggregation output is %T", out)
	}
	if len(impact.Countries) == 0 {
		t.Error("empty impact report")
	}
	// The chosen design in the full registry should use Xaminer's
	// abstraction (tag affinity) and stay compact.
	if rep.Design.Strategy != "direct" {
		t.Errorf("CS1 strategy = %s, want direct", rep.Design.Strategy)
	}
}

func TestAskCS1RestrictedRegistryDirectPipeline(t *testing.T) {
	env := testEnv(t, false)
	full := BuiltinRegistry()
	restricted, err := full.Subset(CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(env, restricted)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	caps := rep.Design.Chosen.CapabilityNames()
	// The direct pipeline must include geographic mapping and rollup
	// since Xaminer's embedding is withheld.
	joined := strings.Join(caps, " ")
	for _, want := range []string{"nautilus.links_on_cables", "nautilus.extract_ips", "geo.locate_ips", "report.country_rollup"} {
		if !strings.Contains(joined, want) {
			t.Errorf("direct pipeline missing %s: %v", want, caps)
		}
	}
	out := rep.Result.Outputs["aggregation"].(*xaminer.ImpactReport)
	if len(out.Countries) == 0 {
		t.Error("empty impact from direct pipeline")
	}
}

func TestAskCS2SingleFrameworkRestraint(t *testing.T) {
	env := testEnv(t, false)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, queryCS2)
	if err != nil {
		t.Fatal(err)
	}
	fws := rep.Design.Chosen.Frameworks(sys.Registry())
	if len(fws) != 1 || fws[0] != "xaminer" {
		t.Errorf("CS2 frameworks = %v, want [xaminer] (skilled restraint)", fws)
	}
	g, ok := rep.Result.Outputs["combination"].(xaminer.GlobalImpact)
	if !ok {
		t.Fatalf("combination output is %T", rep.Result.Outputs["combination"])
	}
	if len(g.Events) < 10 {
		t.Errorf("only %d events processed", len(g.Events))
	}
	if g.ExpectedLinksLost <= 0 {
		t.Error("no expected loss")
	}
}

func TestAskCS3MultiFramework(t *testing.T) {
	env := testEnv(t, true)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, queryCS3)
	if err != nil {
		t.Fatal(err)
	}
	fws := rep.Design.Chosen.Frameworks(sys.Registry())
	if len(fws) < 4 {
		t.Errorf("CS3 frameworks = %v, want >= 4", fws)
	}
	tl, ok := rep.Result.Outputs["synthesis"].(*Timeline)
	if !ok {
		t.Fatalf("synthesis output is %T", rep.Result.Outputs["synthesis"])
	}
	layers := tl.Layers()
	if len(layers) < 3 {
		t.Errorf("timeline layers = %v, want cable+ip+as at least", layers)
	}
	if tl.LinksLost == 0 || tl.CablesFailed == 0 {
		t.Errorf("degenerate timeline: %+v", tl)
	}
}

func TestAskCS4ForensicVerdict(t *testing.T) {
	env := testEnv(t, true)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Ask(ctx, queryCS4)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := rep.Result.Outputs["verdict"].(Verdict)
	if !ok {
		t.Fatalf("verdict output is %T", rep.Result.Outputs["verdict"])
	}
	if !v.CauseIsCableFailure {
		t.Fatalf("causation not established: %+v", v)
	}
	if v.Cable != env.Scenario.TrueCable {
		t.Errorf("identified %s, ground truth %s", v.Cable, env.Scenario.TrueCable)
	}
	if v.Confidence <= 0.5 {
		t.Errorf("confidence %f too low", v.Confidence)
	}
	if v.StatisticalEvidence == 0 || v.InfraEvidence == 0 || v.RoutingEvidence == 0 {
		t.Errorf("missing evidence component: %+v", v)
	}
}

func TestAskCS4WithoutDataInfeasible(t *testing.T) {
	env := testEnv(t, false) // no scenario
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sys.Ask(ctx, queryCS4)
	var infeasible *querymind.ErrInfeasible
	if !errors.As(err, &infeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestAskGenericRejected(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	if _, err := sys.Ask(ctx, "please enumerate all the things"); err == nil {
		t.Error("generic query should be rejected with guidance")
	}
}

func TestExpertModeHooks(t *testing.T) {
	env := testEnv(t, false)
	var stages []string
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	hook := func(stage string, artifact any) error {
		stages = append(stages, stage)
		if artifact == nil {
			t.Errorf("stage %s: nil artifact", stage)
		}
		return nil
	}
	if _, err := sys.Ask(ctx, queryCS1, AskExpert(hook)); err != nil {
		t.Fatal(err)
	}
	want := []string{StageProblem, StageDesign, StageSolution, StageResult}
	if len(stages) != len(want) {
		t.Fatalf("stages = %v", stages)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Errorf("stage %d = %s, want %s", i, stages[i], want[i])
		}
	}
}

func TestExpertModeVeto(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	_, err := sys.Ask(ctx, queryCS1, AskExpert(func(stage string, artifact any) error {
		if stage == StageDesign {
			return errors.New("redesign with fewer steps")
		}
		return nil
	}))
	if err == nil || !strings.Contains(err.Error(), "redesign") {
		t.Fatalf("veto not propagated: %v", err)
	}
	// The veto surfaces as a typed pipeline error naming the stage.
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PipelineError", err)
	}
	if pe.Stage != StageDesign || pe.Query != queryCS1 {
		t.Errorf("PipelineError = %+v", pe)
	}
}

func TestExpertHookIsPerCall(t *testing.T) {
	// The same System serves reviewed and unreviewed requests: a hook
	// passed to one call must not leak into the next.
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	calls := 0
	hook := func(string, any) error { calls++; return nil }
	if _, err := sys.Ask(ctx, queryCS1, AskExpert(hook)); err != nil {
		t.Fatal(err)
	}
	reviewed := calls
	if reviewed == 0 {
		t.Fatal("expert hook never fired")
	}
	if _, err := sys.Ask(ctx, queryCS1); err != nil {
		t.Fatal(err)
	}
	if calls != reviewed {
		t.Error("hook fired on a call without AskExpert")
	}
}

func TestAskCancelledContext(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	cctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := sys.Ask(cctx, queryCS1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in chain", err)
	}
	if rep.Elapsed <= 0 {
		t.Error("Elapsed not stamped on the error path")
	}
}

func TestAskTimeoutStampsElapsed(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	// A nanosecond budget expires before the first stage.
	rep, err := sys.Ask(ctx, queryCS1, AskTimeout(time.Nanosecond))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded in chain", err)
	}
	var pe *PipelineError
	if !errors.As(err, &pe) || pe.Stage != StageProblem {
		t.Errorf("err = %v, want PipelineError at %s", err, StageProblem)
	}
	if rep.Elapsed <= 0 {
		t.Error("Elapsed not stamped on the timeout path")
	}
}

func TestInfeasibleStampsElapsed(t *testing.T) {
	// Early error returns must still record Elapsed.
	env := testEnv(t, false) // no scenario → CS4 infeasible
	sys, _ := NewSystem(env, nil)
	rep, err := sys.Ask(ctx, queryCS4)
	if err == nil {
		t.Fatal("want infeasibility error")
	}
	if rep.Elapsed <= 0 {
		t.Error("Elapsed not stamped on the infeasible path")
	}
}

func TestRegistryEvolution(t *testing.T) {
	env := testEnv(t, false)
	restricted, err := BuiltinRegistry().Subset(CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(env, restricted)
	if err != nil {
		t.Fatal(err)
	}
	// First run: no pattern support yet.
	r1, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	steps1 := len(r1.Design.Chosen.Steps)
	// Second run of a similar query: support reaches 2 → promotion.
	r2, err := sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-4 cable failure")
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Promotions()) == 0 {
		t.Fatal("no composite promoted after two successful runs")
	}
	// Third run: the design should now reuse the composite and shrink.
	r3, err := sys.Ask(ctx, "Identify the impact at a country level due to AAE-1 cable failure")
	if err != nil {
		t.Fatal(err)
	}
	steps3 := len(r3.Design.Chosen.Steps)
	if steps3 >= steps1 {
		t.Errorf("workflow did not shrink after promotion: %d → %d steps", steps1, steps3)
	}
	usesComposite := false
	for _, c := range r3.Design.Chosen.CapabilityNames() {
		if strings.HasPrefix(c, "composite.") {
			usesComposite = true
		}
	}
	if !usesComposite {
		t.Errorf("replanned workflow ignores composite: %v", r3.Design.Chosen.CapabilityNames())
	}
	// The composite must produce the same result shape.
	if _, ok := r3.Result.Outputs["aggregation"].(*xaminer.ImpactReport); !ok {
		t.Errorf("composite run output is %T", r3.Result.Outputs["aggregation"])
	}
	_ = r2
}

func TestAdaptiveExploration(t *testing.T) {
	// Simple query → direct (1 candidate); complex → exploratory (>1).
	env := testEnv(t, true)
	sys, _ := NewSystem(env, nil)
	r1, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Design.Strategy != "direct" || r1.Design.Explored != 1 {
		t.Errorf("CS1: strategy=%s explored=%d, want direct/1", r1.Design.Strategy, r1.Design.Explored)
	}
	r3, err := sys.Ask(ctx, queryCS3)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Design.Strategy != "exploratory" {
		t.Errorf("CS3 strategy = %s", r3.Design.Strategy)
	}
	if r3.Design.Explored < 2 {
		t.Errorf("CS3 explored only %d candidates", r3.Design.Explored)
	}
	// Alternatives must be score-sorted with the chosen one first.
	alts := r3.Design.Alternatives
	for i := 1; i < len(alts); i++ {
		if alts[i-1].Score > alts[i].Score {
			t.Error("alternatives not sorted")
		}
	}
}

func TestGeneratedCodeShape(t *testing.T) {
	env := testEnv(t, true)
	sys, _ := NewSystem(env, nil)
	rep, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	code := rep.Solution.Code
	for _, want := range []string{"#!/usr/bin/env python3", "def step_", "def main():", "Query:"} {
		if !strings.Contains(code, want) {
			t.Errorf("generated code missing %q", want)
		}
	}
	if rep.Solution.LoC < 40 {
		t.Errorf("generated code suspiciously small: %d LoC", rep.Solution.LoC)
	}
	if rep.Solution.ChecksAdded == 0 {
		t.Error("no quality checks woven")
	}
}

func TestGeneratedLoCShape(t *testing.T) {
	// The paper's in-text LoC metric grows with case-study complexity:
	// CS1 ≈250, CS2 ≈300, CS3 ≈525, CS4 ≈750. We assert the shape:
	// forensic > cascade > the two simple cases.
	env := testEnv(t, true)
	sys, _ := NewSystem(env, nil)
	loc := map[string]int{}
	for name, q := range map[string]string{
		"cs1": queryCS1, "cs2": queryCS2, "cs3": queryCS3, "cs4": queryCS4,
	} {
		rep, err := sys.Ask(ctx, q)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		loc[name] = rep.Solution.LoC
	}
	if !(loc["cs3"] > loc["cs1"] && loc["cs3"] > loc["cs2"]) {
		t.Errorf("CS3 (%d) should exceed CS1 (%d) and CS2 (%d)", loc["cs3"], loc["cs1"], loc["cs2"])
	}
	if loc["cs4"] <= loc["cs1"] || loc["cs4"] <= loc["cs2"] {
		t.Errorf("CS4 (%d) should exceed the simple cases (%d, %d)", loc["cs4"], loc["cs1"], loc["cs2"])
	}
	for name, n := range loc {
		if n < 60 || n > 1500 {
			t.Errorf("%s: %d LoC outside plausible band", name, n)
		}
	}
}

func TestQualityChecksPass(t *testing.T) {
	env := testEnv(t, true)
	sys, _ := NewSystem(env, nil)
	for _, q := range []string{queryCS1, queryCS2, queryCS3, queryCS4} {
		rep, err := sys.Ask(ctx, q)
		if err != nil {
			t.Fatalf("%q: %v", q, err)
		}
		if score := rep.Result.QualityScore(); score < 0.8 {
			for _, c := range rep.Result.Checks {
				if !c.Passed {
					t.Logf("failed check: %s (%s) %s", c.Name, c.Kind, c.Note)
				}
			}
			t.Errorf("quality score %f for %q", score, q)
		}
	}
}

func TestPipelineStages(t *testing.T) {
	// Figure 1 reproduction: every stage's artifact is present and the
	// dataflow runs end to end.
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	rep, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Spec.Intent != nlq.IntentCableImpact {
		t.Error("stage 0 (parse) artifact wrong")
	}
	if rep.Problem == nil || len(rep.Problem.SuccessCriteria) == 0 {
		t.Error("stage 1 (QueryMind) artifact incomplete")
	}
	if rep.Design == nil || rep.Design.Chosen == nil {
		t.Error("stage 2 (WorkflowScout) artifact incomplete")
	}
	if rep.Solution == nil || rep.Solution.Code == "" {
		t.Error("stage 3 (SolutionWeaver) artifact incomplete")
	}
	if rep.Result == nil || len(rep.Result.Provenance) == 0 {
		t.Error("stage 4 (execution) artifact incomplete")
	}
	if rep.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func BenchmarkPipeline(b *testing.B) {
	env := testEnv(b, false)
	sys, _ := NewSystem(env, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.Ask(ctx, queryCS1, AskWithoutCuration()); err != nil {
			b.Fatal(err)
		}
	}
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"arachnet/internal/registry"
)

// gatedRegistry copies the CS1 subset with one capability held at a
// gate: its step blocks until the gate closes (or the run is
// cancelled), then defers to the original implementation. This pins a
// job mid-run deterministically.
func gatedRegistry(t testing.TB, gate <-chan struct{}) *registry.Registry {
	t.Helper()
	sub, err := BuiltinRegistry().Subset(CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	for _, c := range sub.All() {
		cc := *c
		if cc.Name == "nautilus.links_on_cables" {
			orig := c.Impl
			cc.Impl = func(call *registry.Call) error {
				select {
				case <-gate:
					return orig(call)
				case <-call.Context().Done():
					return call.Context().Err()
				}
			}
		}
		if err := reg.Register(cc); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

// awaitState polls until the job reaches the wanted state.
func awaitState(t testing.TB, j *Job, want JobState) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if j.State() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %d never reached %s (now %s)", j.ID(), want, j.State())
}

func TestSubmitWaitReport(t *testing.T) {
	env := testEnv(t, false)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	j, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if j.ID() == 0 || j.Query() != queryCS1 {
		t.Errorf("job identity = %d %q", j.ID(), j.Query())
	}
	rep, err := j.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil || rep.Result == nil || len(rep.Result.Outputs) == 0 {
		t.Fatal("job produced no usable report")
	}
	if j.State() != JobDone {
		t.Errorf("state = %s, want %s", j.State(), JobDone)
	}
	found := false
	for _, tracked := range sys.Jobs() {
		if tracked == j {
			found = true
		}
	}
	if !found {
		t.Error("Jobs() lost the submitted job")
	}
}

func TestJobEventsReplayAfterCompletion(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	j, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
	// A late subscriber replays the full history and still ends with
	// Done + channel close.
	var events []Event
	for ev := range j.Events() {
		events = append(events, ev)
	}
	if len(events) < 10 {
		t.Fatalf("replay saw only %d events", len(events))
	}
	if _, ok := events[len(events)-1].(*Done); !ok {
		t.Errorf("last replayed event is %T, want *Done", events[len(events)-1])
	}
	// Two independent subscribers each get a complete stream.
	n := 0
	for range j.Events() {
		n++
	}
	if n != len(events) {
		t.Errorf("second subscriber saw %d events, first saw %d", n, len(events))
	}
}

func TestJobCancelMidRun(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	env := testEnv(t, false)
	sys, err := NewSystem(env, gatedRegistry(t, gate))
	if err != nil {
		t.Fatal(err)
	}
	j, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	// The gated step must have started before we cancel: watch the
	// live event stream for it.
	for ev := range j.Events() {
		if st, ok := ev.(*StepStarted); ok && st.Capability == "nautilus.links_on_cables" {
			break
		}
	}
	awaitState(t, j, JobRunning)
	j.Cancel()
	rep, err := j.Wait(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Elapsed <= 0 {
		t.Error("cancelled job lost its partial report")
	}
	if j.State() != JobCancelled {
		t.Errorf("state = %s, want %s", j.State(), JobCancelled)
	}
}

func TestJobCancelWhileQueued(t *testing.T) {
	gate := make(chan struct{})
	env := testEnv(t, false)
	sys, err := NewSystem(env, gatedRegistry(t, gate))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetJobLimits(1, 8); err != nil {
		t.Fatal(err)
	}
	blocker, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, blocker, JobRunning)
	queued, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if queued.State() != JobQueued {
		t.Fatalf("second job state = %s with a single busy worker", queued.State())
	}
	queued.Cancel()
	if _, err := queued.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if queued.State() != JobCancelled {
		t.Errorf("state = %s, want %s", queued.State(), JobCancelled)
	}
	// Even a never-run job delivers a terminal Done to subscribers.
	var last Event
	for ev := range queued.Events() {
		last = ev
	}
	done, ok := last.(*Done)
	if !ok || !errors.Is(done.Err, context.Canceled) {
		t.Errorf("terminal event = %#v", last)
	}
	// Release the worker; the blocker must still finish cleanly.
	close(gate)
	if _, err := blocker.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestSubmitQueueFull(t *testing.T) {
	gate := make(chan struct{})
	env := testEnv(t, false)
	sys, err := NewSystem(env, gatedRegistry(t, gate))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetJobLimits(1, 1); err != nil {
		t.Fatal(err)
	}
	running, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, running, JobRunning)
	if _, err := sys.Submit(ctx, queryCS1); err != nil {
		t.Fatalf("queue depth 1 rejected its first waiter: %v", err)
	}
	if _, err := sys.Submit(ctx, queryCS1); !errors.Is(err, ErrJobQueueFull) {
		t.Fatalf("err = %v, want ErrJobQueueFull", err)
	}
	close(gate)
	for _, j := range sys.Jobs() {
		if _, err := j.Wait(ctx); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSetJobLimitsAfterStart(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	j, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.SetJobLimits(2, 2); !errors.Is(err, ErrJobsStarted) {
		t.Errorf("err = %v, want ErrJobsStarted", err)
	}
	if _, err := j.Wait(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestCloseStopsSubmit(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	j, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	// Close returns immediately; the already-accepted job still
	// completes normally.
	sys.Close()
	if rep, err := j.Wait(ctx); err != nil || rep.Result == nil {
		t.Fatalf("accepted job after Close: rep=%v err=%v", rep, err)
	}
	if _, err := sys.Submit(ctx, queryCS1); !errors.Is(err, ErrJobsClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrJobsClosed", err)
	}
	sys.Close() // idempotent
}

func TestCloseWithoutSubmit(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	sys.Close() // no workers ever started; must not panic
	if _, err := sys.Submit(ctx, queryCS1); !errors.Is(err, ErrJobsClosed) {
		t.Errorf("Submit after early Close: err = %v", err)
	}
}

func TestCancelRacingUnrelatedFailureIsDone(t *testing.T) {
	// A job that fails for a real (non-cancellation) reason must be
	// classified JobDone-with-error even when a Cancel raced it.
	rootCause := errors.New("backend offline")
	reg := overriddenRegistry(t, "report.country_rollup", func(*registry.Call) error {
		return rootCause
	})
	env := testEnv(t, false)
	sys, err := NewSystem(env, reg)
	if err != nil {
		t.Fatal(err)
	}
	j, err := sys.Submit(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := j.Wait(ctx); !errors.Is(err, rootCause) {
		t.Fatalf("err = %v, want the capability failure", err)
	}
	j.Cancel() // lands after the failure; must not rewrite history
	if j.State() != JobDone {
		t.Errorf("state = %s, want %s (failure, not cancellation)", j.State(), JobDone)
	}
}

func TestSubmitParentContextCancelsJob(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	env := testEnv(t, false)
	sys, err := NewSystem(env, gatedRegistry(t, gate))
	if err != nil {
		t.Fatal(err)
	}
	cctx, cancel := context.WithCancel(context.Background())
	j, err := sys.Submit(cctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	awaitState(t, j, JobRunning)
	cancel()
	if _, err := j.Wait(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled via parent ctx", err)
	}
	// Parent-context cancellation is cancellation, not completion.
	if j.State() != JobCancelled {
		t.Errorf("state = %s, want %s", j.State(), JobCancelled)
	}
}

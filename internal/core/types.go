// Package core assembles the ArachNet system: the simulated measurement
// environment, the built-in capability catalog over every substrate,
// and the four-agent pipeline orchestrator.
package core

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"arachnet/internal/bgp"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
	"arachnet/internal/topo"
	"arachnet/internal/traceroute"
	"arachnet/internal/xaminer"
)

// GeoRow is one row of a geolocation table: an address resolved to a
// country.
type GeoRow struct {
	Addr    netip.Addr
	Country string
}

// LatencyFinding is the outcome of latency anomaly detection over a
// probe archive: the detected level shift with significance, plus which
// probes exhibit it.
type LatencyFinding struct {
	Detected   bool
	ShiftAt    time.Time
	Probes     []string // probes showing the shift
	MeanBefore float64
	MeanAfter  float64
	DeltaMs    float64
	PValue     float64
	Confidence float64 // statistical evidence strength in [0,1]
	// LostProbes lists probes that went dark instead of slowing down.
	LostProbes []string
}

// CableSuspect is one ranked candidate cable for a forensic
// investigation.
type CableSuspect struct {
	Cable nautilus.CableID
	Score float64 // infrastructure-correlation score in [0,1]
	// WithdrawalHits counts BGP withdrawals attributable to the cable's
	// corridor countries near the anomaly.
	WithdrawalHits int
	// CorridorMatch marks cables on the anomaly's region corridor.
	CorridorMatch bool
	// LinksCarried is the number of IP links mapped onto the cable.
	LinksCarried int
}

// Verdict is the final output of a forensic investigation.
type Verdict struct {
	CauseIsCableFailure bool
	Cable               nautilus.CableID
	Confidence          float64 // fused evidence in [0,1]
	// Evidence components in [0,1].
	StatisticalEvidence float64
	InfraEvidence       float64
	RoutingEvidence     float64
	Explanation         string
}

// TimelineEntry is one event on the unified cross-layer timeline.
type TimelineEntry struct {
	At    time.Time
	Layer string // "cable", "ip", "as", "routing", "measurement"
	What  string
}

// Timeline is the unified cross-layer synthesis the paper's Case
// Study 3 produces: one ordered view spanning cable, IP and AS layers.
type Timeline struct {
	Entries []TimelineEntry
	// Summary metrics pulled from the contributing analyses.
	CablesFailed   int
	LinksLost      int
	ASesDegraded   int
	CascadeRounds  int
	TopCountries   []string
	BurstsDetected int
}

// Layers returns the distinct layers present on the timeline, sorted.
func (t *Timeline) Layers() []string {
	set := map[string]bool{}
	for _, e := range t.Entries {
		set[e.Layer] = true
	}
	out := make([]string, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// Render prints the timeline as text.
func (t *Timeline) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cross-layer cascade timeline (%d entries)\n", len(t.Entries))
	for _, e := range t.Entries {
		fmt.Fprintf(&b, "  %s [%-11s] %s\n", e.At.Format(time.RFC3339), e.Layer, e.What)
	}
	fmt.Fprintf(&b, "  cables=%d links=%d degradedASes=%d rounds=%d bursts=%d top=%v\n",
		t.CablesFailed, t.LinksLost, t.ASesDegraded, t.CascadeRounds, t.BurstsDetected, t.TopCountries)
	return b.String()
}

// Scenario is injected measurement data covering a time window with a
// known ground-truth failure — the synthetic stand-in for "what really
// happened on the Internet last week".
type Scenario struct {
	Start, End time.Time
	FailureAt  time.Time
	TrueCable  nautilus.CableID // ground truth (never exposed to agents)
	FailedLink []netsim.LinkID
	Archive    *traceroute.Archive
	Stream     []bgp.Message
}

// Environment is the shared execution context capabilities close over:
// the world, the cable catalog and cross-layer map, the Xaminer
// analyzer, and optional scenario data for temporal/forensic analyses.
type Environment struct {
	World    *netsim.World
	Catalog  *nautilus.Catalog
	CrossMap *nautilus.CrossLayerMap
	Analyzer *xaminer.Analyzer
	Scenario *Scenario
	Now      time.Time

	// fpID/fpEpoch back Fingerprint(): a process-unique instance
	// identity plus a mutation epoch bumped by scenario injection.
	// Both are atomic — fingerprints are read on every cached Ask while
	// scenario injection bumps the epoch concurrently.
	fpID    atomic.Uint64
	fpEpoch atomic.Uint64

	// fpStrs memoizes the rendered fingerprint strings for the current
	// (fpID, fpEpoch) so warm Asks never re-render them. See
	// fpStringsNow.
	fpStrs atomic.Pointer[fpCached]

	// watchMu guards watchers, the change-notification seam standing
	// queries (System.Subscribe) register with; every mutation pokes
	// them. See Watch.
	watchMu  sync.Mutex
	watchers []chan<- struct{}
}

// envOf extracts the Environment from a registry call context.
func envOf(v any) (*Environment, error) {
	e, ok := v.(*Environment)
	if !ok || e == nil {
		return nil, fmt.Errorf("core: call environment is %T, want *Environment", v)
	}
	return e, nil
}

// DataCatalog summarizes what data the environment can serve; QueryMind
// uses it for constraint analysis.
type DataCatalog struct {
	HasCrossLayerMap bool
	MapCoverage      float64
	HasTraceArchive  bool
	HasBGPStream     bool
	WindowDays       int
}

// Data returns the environment's data catalog.
func (e *Environment) Data() DataCatalog {
	d := DataCatalog{}
	if e.CrossMap != nil {
		d.HasCrossLayerMap = true
		d.MapCoverage = e.CrossMap.Coverage(e.World)
	}
	if e.Scenario != nil {
		d.HasTraceArchive = e.Scenario.Archive != nil
		d.HasBGPStream = len(e.Scenario.Stream) > 0
		d.WindowDays = int(e.Scenario.End.Sub(e.Scenario.Start).Hours() / 24)
	}
	return d
}

// CascadeBundle is the composite result of cascade analysis: the
// cable-layer cascade and the AS-layer stress propagation together.
type CascadeBundle struct {
	Cable  topo.CableCascade
	Stress topo.StressResult
}

package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"arachnet/internal/registry"
	"arachnet/internal/workflow"
)

// collectObserver records every event it sees.
type collectObserver struct {
	events []Event
}

func (c *collectObserver) Observe(ev Event) error {
	c.events = append(c.events, ev)
	return nil
}

// overriddenRegistry copies the CS1 subset, replacing the named
// capability's implementation — the lever for forcing step failures
// and blocking steps inside a full pipeline run.
func overriddenRegistry(t testing.TB, name string, impl registry.Func) *registry.Registry {
	t.Helper()
	sub, err := BuiltinRegistry().Subset(CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	reg := registry.New()
	replaced := false
	for _, c := range sub.All() {
		cc := *c
		if cc.Name == name {
			cc.Impl = impl
			replaced = true
		}
		if err := reg.Register(cc); err != nil {
			t.Fatal(err)
		}
	}
	if !replaced {
		t.Fatalf("capability %q not in CS1 subset", name)
	}
	return reg
}

func TestAskEmitsOrderedEvents(t *testing.T) {
	env := testEnv(t, false)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	obs := &collectObserver{}
	rep, err := sys.Ask(ctx, queryCS1, AskObserver(obs))
	if err != nil {
		t.Fatal(err)
	}

	// Stage bracketing in pipeline order, each stage completed before
	// the next starts.
	var stages []string
	steps := 0
	for _, ev := range obs.events {
		switch ev := ev.(type) {
		case *StageStarted:
			stages = append(stages, "start:"+ev.Stage)
		case *StageCompleted:
			stages = append(stages, "done:"+ev.Stage)
			if ev.Artifact == nil {
				t.Errorf("stage %s completed with nil artifact", ev.Stage)
			}
		case *StepStarted:
			steps++
		}
	}
	want := []string{
		"start:" + StageProblem, "done:" + StageProblem,
		"start:" + StageDesign, "done:" + StageDesign,
		"start:" + StageSolution, "done:" + StageSolution,
		"start:" + StageResult, "done:" + StageResult,
		"start:" + StageCuration, "done:" + StageCuration,
	}
	if len(stages) != len(want) {
		t.Fatalf("stage events = %v, want %v", stages, want)
	}
	for i := range want {
		if stages[i] != want[i] {
			t.Errorf("stage event %d = %s, want %s", i, stages[i], want[i])
		}
	}
	if steps != len(rep.Design.Chosen.Steps) {
		t.Errorf("observed %d StepStarted, workflow has %d steps", steps, len(rep.Design.Chosen.Steps))
	}

	// Metadata: query stamped, Seq strictly increasing, Done last.
	for i, ev := range obs.events {
		m := ev.meta()
		if m.Query != queryCS1 {
			t.Fatalf("event %d query = %q", i, m.Query)
		}
		if m.Seq != i {
			t.Fatalf("event %d has Seq %d", i, m.Seq)
		}
		if m.Time.IsZero() {
			t.Fatalf("event %d has zero Time", i)
		}
	}
	done, ok := obs.events[len(obs.events)-1].(*Done)
	if !ok {
		t.Fatalf("last event is %T, want *Done", obs.events[len(obs.events)-1])
	}
	if done.Report != rep || done.Err != nil {
		t.Errorf("Done = {%p %v}, want report %p", done.Report, done.Err, rep)
	}
}

func TestAskStreamDeliversRun(t *testing.T) {
	env := testEnv(t, false)
	sys, err := NewSystem(env, nil)
	if err != nil {
		t.Fatal(err)
	}
	var events []Event
	for ev := range sys.AskStream(ctx, queryCS1) {
		events = append(events, ev)
	}
	if len(events) == 0 {
		t.Fatal("no events streamed")
	}
	done, ok := events[len(events)-1].(*Done)
	if !ok {
		t.Fatalf("last event is %T, want *Done", events[len(events)-1])
	}
	if done.Err != nil {
		t.Fatal(done.Err)
	}
	if done.Report == nil || done.Report.Result == nil || len(done.Report.Result.Outputs) == 0 {
		t.Error("Done carries no usable report")
	}
	if done.Report.Elapsed <= 0 {
		t.Error("Elapsed not stamped on the streamed report")
	}
	// The full event complement must match a blocking Ask's.
	var sawStep, sawStage bool
	for _, ev := range events {
		switch ev.(type) {
		case *StepCompleted:
			sawStep = true
		case *StageCompleted:
			sawStage = true
		}
	}
	if !sawStep || !sawStage {
		t.Errorf("stream missing step (%v) or stage (%v) events", sawStep, sawStage)
	}
}

func TestAskStreamCancelledConsumer(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	cctx, cancel := context.WithCancel(context.Background())
	ch := sys.AskStream(cctx, queryCS1)
	<-ch // first event arrived; the run is live
	cancel()
	// The channel must still close: the pipeline aborts on the
	// cancelled context and undeliverable events are dropped.
	deadline := time.After(10 * time.Second)
	for {
		select {
		case _, open := <-ch:
			if !open {
				return
			}
		case <-deadline:
			t.Fatal("stream never closed after consumer cancellation")
		}
	}
}

// TestExpertVetoAtStageResult covers the previously untested last
// reviewed stage: the hook sees the executed *workflow.Result and its
// veto surfaces as a *PipelineError at StageResult, with the partial
// report retaining the execution artifact.
func TestExpertVetoAtStageResult(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	rejection := errors.New("uncertainty bounds too wide")
	rep, err := sys.Ask(ctx, queryCS1, AskExpert(func(stage string, artifact any) error {
		if stage != StageResult {
			return nil
		}
		if _, ok := artifact.(*workflow.Result); !ok {
			t.Errorf("StageResult artifact is %T, want *workflow.Result", artifact)
		}
		return rejection
	}))
	if !errors.Is(err, rejection) {
		t.Fatalf("err = %v, want the veto in the chain", err)
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PipelineError", err)
	}
	if pe.Stage != StageResult || pe.Step != "" || pe.Query != queryCS1 {
		t.Errorf("PipelineError = %+v", pe)
	}
	if rep.Result == nil {
		t.Error("partial report lost the executed result on veto")
	}
	// A vetoed run must not feed curation.
	if len(rep.Promotions) != 0 {
		t.Error("vetoed run still promoted composites")
	}
}

// TestStepErrorUnwrapsThroughEventPath drives a real step failure
// through the event-driven pipeline and asserts the full typed error
// chain: *PipelineError naming stage and step → *workflow.StepError →
// the capability's root cause; and that the failure is also visible as
// a StepFailed event.
func TestStepErrorUnwrapsThroughEventPath(t *testing.T) {
	rootCause := errors.New("rollup backend offline")
	reg := overriddenRegistry(t, "report.country_rollup", func(*registry.Call) error {
		return rootCause
	})
	env := testEnv(t, false)
	sys, err := NewSystem(env, reg)
	if err != nil {
		t.Fatal(err)
	}
	obs := &collectObserver{}
	_, err = sys.Ask(ctx, queryCS1, AskObserver(obs))
	if err == nil {
		t.Fatal("want step failure")
	}
	var pe *PipelineError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *PipelineError", err)
	}
	if pe.Stage != StageResult || pe.Step == "" {
		t.Errorf("PipelineError = %+v, want StageResult with a step", pe)
	}
	var se *workflow.StepError
	if !errors.As(err, &se) {
		t.Fatalf("no *StepError in chain: %v", err)
	}
	if se.Capability != "report.country_rollup" || se.Step != pe.Step {
		t.Errorf("StepError = %+v vs PipelineError step %q", se, pe.Step)
	}
	if !errors.Is(err, rootCause) {
		t.Error("root cause lost in the chain")
	}
	var failed *StepFailed
	for _, ev := range obs.events {
		if f, ok := ev.(*StepFailed); ok {
			failed = f
		}
	}
	if failed == nil {
		t.Fatal("no StepFailed event emitted")
	}
	if failed.Capability != "report.country_rollup" || !errors.Is(failed.Err, rootCause) {
		t.Errorf("StepFailed = %+v", failed)
	}
}

// TestObserverVetoMidRun vetoes from a step event: the in-flight
// workflow is cancelled and the veto error wins over the engine's
// cancellation error.
func TestObserverVetoMidRun(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	tooSlow := errors.New("budget exceeded after first step")
	rep, err := sys.Ask(ctx, queryCS1, AskObserver(ObserverFunc(func(ev Event) error {
		if _, ok := ev.(*StepCompleted); ok {
			return tooSlow
		}
		return nil
	})))
	if !errors.Is(err, tooSlow) {
		t.Fatalf("err = %v, want the mid-run veto", err)
	}
	var pe *PipelineError
	if !errors.As(err, &pe) || pe.Stage != StageResult {
		t.Errorf("err = %v, want *PipelineError at %s", err, StageResult)
	}
	if rep.Elapsed <= 0 {
		t.Error("Elapsed not stamped on the veto path")
	}
}

func TestObserverErrorOnDoneIgnored(t *testing.T) {
	env := testEnv(t, false)
	sys, _ := NewSystem(env, nil)
	rep, err := sys.Ask(ctx, queryCS1, AskObserver(ObserverFunc(func(ev Event) error {
		if _, ok := ev.(*Done); ok {
			return errors.New("too late to matter")
		}
		return nil
	})))
	if err != nil {
		t.Fatalf("Done-stage observer error leaked into the result: %v", err)
	}
	if rep.Result == nil {
		t.Error("no result")
	}
}

package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"arachnet/internal/bgp"
	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
	"arachnet/internal/registry"
	"arachnet/internal/stats"
	"arachnet/internal/topo"
	"arachnet/internal/traceroute"
	"arachnet/internal/xaminer"
)

func registerBGP(r *registry.Registry) {
	r.MustRegister(registry.Capability{
		Name: "bgp.updates_window", Framework: "bgp",
		Description: "Load the BGP update stream covering the environment's measurement window",
		Outputs:     []registry.Port{{Name: "stream", Type: registry.TBGPStream}},
		Constraints: []string{"requires injected scenario data (collector dumps)"},
		Tags:        []string{"temporal", "routing-data"},
		Cost:        2,
		Pure:        true,
		Reads:       []string{FacetWorld, FacetScenario},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			if e.Scenario == nil || len(e.Scenario.Stream) == 0 {
				return fmt.Errorf("core: no BGP stream available in this environment")
			}
			c.Out["stream"] = e.Scenario.Stream
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "bgp.detect_bursts", Framework: "bgp",
		Description: "Detect update-rate bursts (withdrawal storms) in a BGP stream",
		Inputs:      []registry.Port{{Name: "stream", Type: registry.TBGPStream}},
		Outputs:     []registry.Port{{Name: "bursts", Type: registry.TBGPBursts}},
		Tags:        []string{"anomaly-detection", "routing"},
		Cost:        2,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			msgs, err := inputStream(c)
			if err != nil {
				return err
			}
			c.Out["bursts"] = bgp.DetectBursts(msgs, time.Hour, 4)
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "bgp.correlate_anomaly", Framework: "bgp",
		Description: "Measure how strongly BGP withdrawals concentrate around a detected anomaly time (temporal correlation)",
		Inputs: []registry.Port{
			{Name: "stream", Type: registry.TBGPStream},
			{Name: "anomaly", Type: registry.TAnomaly},
		},
		Outputs: []registry.Port{{Name: "correlation", Type: registry.TFloat}},
		Tags:    []string{"temporal-correlation", "validation"},
		Cost:    2,
		Pure:    true,
		Reads:   []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			msgs, err := inputStream(c)
			if err != nil {
				return err
			}
			f, err := inputAnomaly(c)
			if err != nil {
				return err
			}
			if !f.Detected {
				c.Out["correlation"] = 0.0
				return nil
			}
			c.Out["correlation"] = bgp.CorrelateWindow(msgs, f.ShiftAt.Add(-2*time.Hour), f.ShiftAt.Add(6*time.Hour))
			return nil
		},
	})
}

func inputStream(c *registry.Call) ([]bgp.Message, error) {
	v, err := c.Input("stream")
	if err != nil {
		return nil, err
	}
	msgs, ok := v.([]bgp.Message)
	if !ok {
		return nil, fmt.Errorf("core: stream input is %T", v)
	}
	return msgs, nil
}

func inputAnomaly(c *registry.Call) (LatencyFinding, error) {
	v, err := c.Input("anomaly")
	if err != nil {
		return LatencyFinding{}, err
	}
	f, ok := v.(LatencyFinding)
	if !ok {
		return LatencyFinding{}, fmt.Errorf("core: anomaly input is %T", v)
	}
	return f, nil
}

func registerTraceroute(r *registry.Registry) {
	r.MustRegister(registry.Capability{
		Name: "traceroute.archive_window", Framework: "traceroute",
		Description: "Load the traceroute/latency archive covering the environment's measurement window",
		Outputs:     []registry.Port{{Name: "archive", Type: registry.TTraceArch}},
		Constraints: []string{"requires injected scenario data (probe campaign)"},
		Tags:        []string{"temporal", "measurement-data"},
		Cost:        2,
		Pure:        true,
		Reads:       []string{FacetWorld, FacetScenario},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			if e.Scenario == nil || e.Scenario.Archive == nil {
				return fmt.Errorf("core: no traceroute archive available in this environment")
			}
			arch := e.Scenario.Archive
			// Undeclared worker-side input: the fleet's scatter spec
			// restricts a shard to the probes it owns. The filter
			// preserves the archive's measurement order so the gather can
			// replay it; planner-built steps never bind this input.
			if pv, ok := c.In["probes"]; ok {
				names, ok := pv.([]string)
				if !ok {
					return fmt.Errorf("core: probes input is %T", pv)
				}
				want := make(map[string]bool, len(names))
				for _, n := range names {
					want[n] = true
				}
				sub := &traceroute.Archive{}
				for _, m := range arch.Measurements {
					if want[m.Probe] {
						sub.Measurements = append(sub.Measurements, m)
					}
				}
				arch = sub
			}
			c.Out["archive"] = arch
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "traceroute.detect_latency_anomaly", Framework: "traceroute",
		Description: "Detect a significant latency level shift across the archive's probes with baselines and significance testing",
		Inputs:      []registry.Port{{Name: "archive", Type: registry.TTraceArch}},
		Outputs:     []registry.Port{{Name: "anomaly", Type: registry.TAnomaly}},
		Tags:        []string{"anomaly-detection", "statistical"},
		Cost:        3,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			v, err := c.Input("archive")
			if err != nil {
				return err
			}
			arch, ok := v.(*traceroute.Archive)
			if !ok {
				return fmt.Errorf("core: archive input is %T", v)
			}
			c.Out["anomaly"] = DetectLatencyShift(arch)
			return nil
		},
	})
}

// DetectLatencyShift runs changepoint detection over every probe series
// and fuses the per-probe findings into one LatencyFinding. Exported so
// the expert baseline uses the identical statistical core — the paper's
// comparison is about workflow composition, not detector quality.
func DetectLatencyShift(arch *traceroute.Archive) LatencyFinding {
	f := LatencyFinding{}
	var shiftTimes []time.Time
	var befores, afters []float64
	minP := 1.0
	total := 0
	for _, probe := range arch.Probes() {
		times, rtts := arch.Series(probe)
		if lr := arch.LossRate(probe); lr > 0.2 {
			f.LostProbes = append(f.LostProbes, probe)
		}
		if len(rtts) < 12 {
			continue
		}
		total++
		cp, err := stats.DetectShift(rtts, 6)
		if err != nil || !cp.Signif || cp.Shift <= 1.0 {
			continue
		}
		f.Probes = append(f.Probes, probe)
		shiftTimes = append(shiftTimes, times[cp.Index])
		befores = append(befores, cp.Before)
		afters = append(afters, cp.After)
		if cp.PValue < minP {
			minP = cp.PValue
		}
	}
	if len(f.Probes) == 0 {
		// No latency shift — but probes going dark mid-window is an
		// anomaly too (total loss instead of reroute).
		if len(f.LostProbes) > 0 && total+len(f.LostProbes) > 0 {
			if at, ok := firstLossTime(arch, f.LostProbes); ok {
				f.Detected = true
				f.ShiftAt = at
				share := float64(len(f.LostProbes)) / float64(total+len(f.LostProbes))
				f.Confidence = 0.8 * math.Sqrt(share)
				f.PValue = 0.01
			}
		}
		return f
	}
	f.Detected = true
	sort.Slice(shiftTimes, func(i, j int) bool { return shiftTimes[i].Before(shiftTimes[j]) })
	f.ShiftAt = shiftTimes[len(shiftTimes)/2]
	f.MeanBefore = stats.Mean(befores)
	f.MeanAfter = stats.Mean(afters)
	f.DeltaMs = f.MeanAfter - f.MeanBefore
	f.PValue = minP
	share := float64(len(f.Probes)) / float64(total)
	f.Confidence = math.Sqrt(share) * (1 - minP)
	if f.Confidence > 1 {
		f.Confidence = 1
	}
	return f
}

// firstLossTime returns the median over lost probes of the first time
// the probe stopped reaching its destination.
func firstLossTime(arch *traceroute.Archive, lost []string) (time.Time, bool) {
	lostSet := map[string]bool{}
	for _, p := range lost {
		lostSet[p] = true
	}
	firstLoss := map[string]time.Time{}
	reachedBefore := map[string]bool{}
	for _, m := range arch.Measurements {
		if !lostSet[m.Probe] {
			continue
		}
		if m.Reached {
			reachedBefore[m.Probe] = true
			delete(firstLoss, m.Probe)
			continue
		}
		if reachedBefore[m.Probe] {
			if _, ok := firstLoss[m.Probe]; !ok {
				firstLoss[m.Probe] = m.Time
			}
		}
	}
	if len(firstLoss) == 0 {
		return time.Time{}, false
	}
	var times []time.Time
	for _, t := range firstLoss {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i].Before(times[j]) })
	return times[len(times)/2], true
}

func registerTopo(r *registry.Registry) {
	r.MustRegister(registry.Capability{
		Name: "topo.cascade_cables", Framework: "topo",
		Description: "Model cascading failures: capacity-based load redistribution over the cable layer plus stress propagation over the AS dependency graph",
		Inputs: []registry.Port{
			{Name: "cables", Type: registry.TCableList},
			{Name: "capacity_factor", Type: registry.TFloat, Optional: true},
		},
		Outputs:     []registry.Port{{Name: "cascade", Type: registry.TCascade}},
		Constraints: []string{"requires the cross-layer map"},
		Tags:        []string{"cascade", "dependency-graph"},
		Cost:        4,
		Pure:        true,
		Reads:       []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			v, err := c.Input("cables")
			if err != nil {
				return err
			}
			ids, ok := v.([]nautilus.CableID)
			if !ok {
				return fmt.Errorf("core: cables input is %T", v)
			}
			factor := 1.2
			if fv, ok := c.In["capacity_factor"]; ok {
				if f, ok := fv.(float64); ok {
					factor = f
				}
			}
			cascade := topo.CascadeCables(e.Catalog, e.CrossMap, ids, factor)
			failedLinks := map[bool]bool{}
			_ = failedLinks
			var all []nautilus.CableID
			all = append(all, cascade.Failed...)
			linkSet := xaminer.FailCables(e.CrossMap, all...)
			stress := topo.PropagateStress(e.World, linkSet, 0.4, 16)
			c.Out["cascade"] = CascadeBundle{Cable: cascade, Stress: stress}
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "topo.propagate_stress", Framework: "topo",
		Description: "Propagate failure stress over the AS graph to find degraded ASes by wave",
		Inputs: []registry.Port{
			{Name: "links", Type: registry.TLinkSet},
			{Name: "threshold", Type: registry.TFloat, Optional: true},
		},
		Outputs: []registry.Port{{Name: "stress", Type: registry.TStress}},
		Tags:    []string{"cascade", "as-layer"},
		Cost:    3,
		Pure:    true,
		Reads:   []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			links, err := inputLinks(c, "links")
			if err != nil {
				return err
			}
			threshold := 0.4
			if tv, ok := c.In["threshold"]; ok {
				if t, ok := tv.(float64); ok {
					threshold = t
				}
			}
			c.Out["stress"] = topo.PropagateStress(e.World, linkSet(links), threshold, 16)
			return nil
		},
	})
}

func registerForensic(r *registry.Registry) {
	r.MustRegister(registry.Capability{
		Name: "nautilus.suspect_cables", Framework: "nautilus",
		Description: "Rank candidate cables for an observed anomaly by infrastructure correlation: carried-link geography vs withdrawal geography, corridor membership, and carried capacity",
		Inputs: []registry.Port{
			{Name: "anomaly", Type: registry.TAnomaly},
			{Name: "stream", Type: registry.TBGPStream},
		},
		Outputs: []registry.Port{{Name: "suspects", Type: registry.TSuspects}},
		Tags:    []string{"forensic", "infrastructure-correlation"},
		Cost:    4,
		Pure:    true,
		Reads:   []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			f, err := inputAnomaly(c)
			if err != nil {
				return err
			}
			msgs, err := inputStream(c)
			if err != nil {
				return err
			}
			c.Out["suspects"] = RankSuspectCables(e, f, msgs)
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "forensic.synthesize", Framework: "forensic",
		Description: "Fuse statistical, infrastructure and routing evidence into a causation verdict naming the failed cable with confidence",
		Inputs: []registry.Port{
			{Name: "anomaly", Type: registry.TAnomaly},
			{Name: "suspects", Type: registry.TSuspects},
			{Name: "correlation", Type: registry.TFloat},
		},
		Outputs: []registry.Port{{Name: "verdict", Type: registry.TVerdict}},
		Tags:    []string{"evidence-synthesis", "causation"},
		Cost:    2,
		Pure:    true,
		Reads:   []string{FacetWorld},
		Impl: func(c *registry.Call) error {
			f, err := inputAnomaly(c)
			if err != nil {
				return err
			}
			v, err := c.Input("suspects")
			if err != nil {
				return err
			}
			suspects, ok := v.([]CableSuspect)
			if !ok {
				return fmt.Errorf("core: suspects input is %T", v)
			}
			corr, err := inputFloat(c, "correlation")
			if err != nil {
				return err
			}
			c.Out["verdict"] = SynthesizeVerdict(f, suspects, corr)
			return nil
		},
	})

	r.MustRegister(registry.Capability{
		Name: "synthesis.timeline", Framework: "synthesis",
		Description: "Synthesize a unified cross-layer cascade timeline spanning cable, IP, AS and routing layers",
		Inputs: []registry.Port{
			{Name: "report", Type: registry.TImpact},
			{Name: "cascade", Type: registry.TCascade},
			{Name: "bursts", Type: registry.TBGPBursts},
			{Name: "anomaly", Type: registry.TAnomaly, Optional: true},
		},
		Outputs: []registry.Port{{Name: "timeline", Type: registry.TTimeline}},
		Tags:    []string{"synthesis", "cross-layer"},
		Cost:    2,
		Pure:    true,
		Reads:   []string{FacetWorld, FacetScenario},
		Impl: func(c *registry.Call) error {
			e, err := envOf(c.Env)
			if err != nil {
				return err
			}
			rv, err := c.Input("report")
			if err != nil {
				return err
			}
			rep, ok := rv.(*xaminer.ImpactReport)
			if !ok {
				return fmt.Errorf("core: report input is %T", rv)
			}
			cv, err := c.Input("cascade")
			if err != nil {
				return err
			}
			bundle, ok := cv.(CascadeBundle)
			if !ok {
				return fmt.Errorf("core: cascade input is %T", cv)
			}
			bv, err := c.Input("bursts")
			if err != nil {
				return err
			}
			bursts, ok := bv.([]bgp.Burst)
			if !ok {
				return fmt.Errorf("core: bursts input is %T", bv)
			}
			var anomaly *LatencyFinding
			if av, ok := c.In["anomaly"]; ok {
				if f, ok := av.(LatencyFinding); ok {
					anomaly = &f
				}
			}
			c.Out["timeline"] = BuildTimeline(e, rep, bundle, bursts, anomaly)
			return nil
		},
	})
}

// RankSuspectCables scores every catalog cable against an anomaly and a
// BGP stream. The dominant signal is geographic: the countries whose
// prefixes were withdrawn around the anomaly should match the endpoint
// countries of the links the cable carries.
func RankSuspectCables(e *Environment, f LatencyFinding, msgs []bgp.Message) []CableSuspect {
	// Withdrawal geography near the anomaly.
	hits := map[string]float64{}
	var totalHits float64
	if f.Detected {
		from, to := f.ShiftAt.Add(-2*time.Hour), f.ShiftAt.Add(6*time.Hour)
		for _, m := range msgs {
			if m.Type != bgp.Withdraw || m.Time.Before(from) || !m.Time.Before(to) {
				continue
			}
			if cc, ok := e.World.Locate(m.Prefix.Addr()); ok {
				hits[cc]++
				totalHits++
			}
		}
	}
	// Corridor inferred from the shifted probes' country endpoints.
	corridor := map[geo.Region]bool{}
	for _, probe := range append(append([]string{}, f.Probes...), f.LostProbes...) {
		parts := splitProbeName(probe)
		for _, cc := range parts {
			if r, ok := geo.RegionOf(cc); ok {
				corridor[r] = true
			}
		}
	}

	maxLinks := 1
	for _, c := range e.Catalog.Cables() {
		if n := len(e.CrossMap.LinksOn(c.ID)); n > maxLinks {
			maxLinks = n
		}
	}

	var out []CableSuspect
	for _, c := range e.Catalog.Cables() {
		links := e.CrossMap.LinksOn(c.ID)
		s := CableSuspect{Cable: c.ID, LinksCarried: len(links)}

		// Geographic evidence: endpoint countries of carried links vs
		// withdrawal countries.
		var geoScore float64
		if totalHits > 0 {
			linkCountries := map[string]bool{}
			for _, id := range links {
				l, ok := e.World.LinkByID(id)
				if !ok {
					continue
				}
				ca, cb := e.World.LinkEndpoints(l)
				linkCountries[ca] = true
				linkCountries[cb] = true
			}
			var matched float64
			for cc := range linkCountries {
				matched += hits[cc]
				if hits[cc] > 0 {
					s.WithdrawalHits += int(hits[cc])
				}
			}
			geoScore = matched / totalHits
		}

		// Corridor membership.
		matches := 0
		for _, r := range c.Regions() {
			if corridor[r] {
				matches++
			}
		}
		s.CorridorMatch = matches >= 2 || (len(corridor) < 2 && matches >= 1)

		corridorScore := 0.0
		if s.CorridorMatch {
			corridorScore = 1.0
		}
		linkScore := float64(len(links)) / float64(maxLinks)
		s.Score = 0.6*geoScore + 0.2*corridorScore + 0.2*linkScore
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Cable < out[j].Cable
	})
	return out
}

// splitProbeName recovers the country codes embedded in campaign probe
// names of the form "GB-SG-3".
func splitProbeName(name string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(name); i++ {
		if i == len(name) || name[i] == '-' {
			part := name[start:i]
			if len(part) == 2 && part[0] >= 'A' && part[0] <= 'Z' {
				out = append(out, part)
			}
			start = i + 1
		}
	}
	return out
}

// SynthesizeVerdict fuses the three evidence sources into a causation
// verdict. Exported so the expert baseline shares the same fusion rule.
func SynthesizeVerdict(f LatencyFinding, suspects []CableSuspect, correlation float64) Verdict {
	v := Verdict{
		StatisticalEvidence: f.Confidence,
		RoutingEvidence:     correlation,
	}
	if !f.Detected || len(suspects) == 0 {
		v.Explanation = "no significant latency anomaly detected; cable failure not established"
		return v
	}
	top := suspects[0]
	v.Cable = top.Cable
	v.InfraEvidence = top.Score
	// Separation between the top suspect and the runner-up strengthens
	// identification.
	separation := top.Score
	if len(suspects) > 1 {
		separation = top.Score - suspects[1].Score
	}
	v.Confidence = stats.CombineEvidence(
		0.9*v.StatisticalEvidence,
		0.8*v.InfraEvidence,
		0.7*v.RoutingEvidence,
	)
	v.CauseIsCableFailure = v.StatisticalEvidence > 0.3 && top.Score > 0.2 && correlation > 0.25
	if v.CauseIsCableFailure {
		v.Explanation = fmt.Sprintf(
			"latency shift of %.1f ms at %s (p=%.2g) correlates with withdrawal concentration %.2f; "+
				"infrastructure correlation ranks %s highest (score %.2f, margin %.2f)",
			f.DeltaMs, f.ShiftAt.Format(time.RFC3339), f.PValue, correlation, top.Cable, top.Score, separation)
	} else {
		v.Explanation = "evidence insufficient to establish a cable failure as the cause"
		v.Cable = ""
	}
	return v
}

// BuildTimeline assembles the unified cross-layer timeline of Case
// Study 3 from the contributing analyses.
func BuildTimeline(e *Environment, rep *xaminer.ImpactReport, bundle CascadeBundle, bursts []bgp.Burst, anomaly *LatencyFinding) *Timeline {
	t := &Timeline{
		LinksLost:     rep.FailedLinks,
		ASesDegraded:  len(bundle.Stress.Degraded),
		CascadeRounds: len(bundle.Cable.Rounds),
		TopCountries:  rep.TopCountries(5),
	}
	for _, id := range bundle.Cable.Failed {
		t.CablesFailed++
		_ = id
	}
	base := e.Now
	if e.Scenario != nil {
		base = e.Scenario.FailureAt
	}
	// Cable layer: failure rounds at synthetic offsets.
	for round, ids := range bundle.Cable.Rounds {
		at := base.Add(time.Duration(round) * 30 * time.Minute)
		for _, id := range ids {
			kind := "initial failure"
			if round > 0 {
				kind = fmt.Sprintf("overload cascade (round %d)", round)
			}
			t.Entries = append(t.Entries, TimelineEntry{At: at, Layer: "cable", What: fmt.Sprintf("cable %s: %s", id, kind)})
		}
	}
	// IP layer: aggregate loss.
	t.Entries = append(t.Entries, TimelineEntry{
		At: base, Layer: "ip",
		What: fmt.Sprintf("%d IP links lost across %d countries", rep.FailedLinks, len(rep.Countries)),
	})
	// AS layer: degradation waves, or the stress summary when no AS
	// crossed the degradation threshold.
	for w, wave := range bundle.Stress.Waves {
		at := base.Add(time.Duration(w+1) * 20 * time.Minute)
		t.Entries = append(t.Entries, TimelineEntry{
			At: at, Layer: "as",
			What: fmt.Sprintf("wave %d: %d ASes degraded", w+1, len(wave)),
		})
	}
	if len(bundle.Stress.Waves) == 0 {
		stressed := 0
		for _, s := range bundle.Stress.Stress {
			if s > 0 {
				stressed++
			}
		}
		t.Entries = append(t.Entries, TimelineEntry{
			At: base, Layer: "as",
			What: fmt.Sprintf("%d ASes under partial stress; none crossed the degradation threshold", stressed),
		})
	}
	// Routing layer: observed bursts.
	for _, b := range bursts {
		t.BurstsDetected++
		kind := "update burst"
		if b.WithdrawHeavy {
			kind = "withdrawal storm"
		}
		t.Entries = append(t.Entries, TimelineEntry{
			At: b.Start, Layer: "routing",
			What: fmt.Sprintf("%s: %d msgs (score %.1f)", kind, b.Messages, b.Score),
		})
	}
	// Measurement layer: latency anomaly.
	if anomaly != nil && anomaly.Detected {
		t.Entries = append(t.Entries, TimelineEntry{
			At: anomaly.ShiftAt, Layer: "measurement",
			What: fmt.Sprintf("latency shift +%.1f ms across %d probes", anomaly.DeltaMs, len(anomaly.Probes)),
		})
	}
	sort.SliceStable(t.Entries, func(i, j int) bool { return t.Entries[i].At.Before(t.Entries[j].At) })
	return t
}

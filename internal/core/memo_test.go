package core

// Memoized-serving contract: repeat queries hit the plan cache and the
// step cache, AskNoCache bypasses both, a curation promotion (registry
// generation bump) invalidates cached plans before the next Ask, and
// the whole arrangement stays coherent under concurrent promotion.

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// cs1System builds a System over the restricted CS1 registry, where
// repeated cable-impact queries reliably trigger a promotion.
func cs1System(t testing.TB) *System {
	t.Helper()
	sub, err := BuiltinRegistry().Subset(CS1RegistryNames()...)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(testEnv(t, false), sub)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestRepeatAskHitsPlanAndStepCaches(t *testing.T) {
	sys, err := NewSystem(testEnv(t, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sys.Ask(ctx, queryCS1, AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Ask(ctx, queryCS1, AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Design != r2.Design || r1.Solution != r2.Solution {
		t.Error("repeat Ask did not share the memoized plan")
	}
	st := sys.CacheStats()
	if st.Plan.Hits < 1 {
		t.Errorf("plan hits = %d, want >= 1", st.Plan.Hits)
	}
	if st.Step.Hits < 1 {
		t.Errorf("step hits = %d, want >= 1", st.Step.Hits)
	}
	cached := 0
	for _, s := range r2.Result.Steps {
		if s.Cached {
			cached++
		}
	}
	if cached != len(r2.Result.Steps) {
		t.Errorf("warm run served %d/%d steps from cache", cached, len(r2.Result.Steps))
	}
	// Cached and fresh executions must agree on outputs.
	for name, v := range r1.Result.Outputs {
		if fmt.Sprint(r2.Result.Outputs[name]) != fmt.Sprint(v) {
			t.Errorf("output %q differs between cold and warm runs", name)
		}
	}
}

func TestCachedRunEmitsCachedFlaggedEvents(t *testing.T) {
	sys, err := NewSystem(testEnv(t, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Ask(ctx, queryCS1, AskWithoutCuration()); err != nil {
		t.Fatal(err)
	}
	var stages, cachedStages, steps, cachedSteps int
	obs := ObserverFunc(func(ev Event) error {
		switch ev := ev.(type) {
		case *StageCompleted:
			if ev.Stage != StageResult && ev.Stage != StageCuration {
				stages++
				if ev.Cached {
					cachedStages++
				}
			}
		case *StepCompleted:
			steps++
			if ev.Cached {
				cachedSteps++
			}
		}
		return nil
	})
	if _, err := sys.Ask(ctx, queryCS1, AskWithoutCuration(), AskObserver(obs)); err != nil {
		t.Fatal(err)
	}
	if stages != 3 || cachedStages != 3 {
		t.Errorf("planning stages = %d (cached %d), want 3 cached 3", stages, cachedStages)
	}
	if steps == 0 || cachedSteps != steps {
		t.Errorf("steps = %d, cached = %d; want all cached", steps, cachedSteps)
	}
}

func TestAskNoCacheBypasses(t *testing.T) {
	sys, err := NewSystem(testEnv(t, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sys.Ask(ctx, queryCS1, AskWithoutCuration(), AskNoCache())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Ask(ctx, queryCS1, AskWithoutCuration(), AskNoCache())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Design == r2.Design {
		t.Error("AskNoCache shared a memoized plan")
	}
	for _, s := range r2.Result.Steps {
		if s.Cached {
			t.Errorf("AskNoCache served step %s from cache", s.ID)
		}
	}
	st := sys.CacheStats()
	if st.Plan.Hits != 0 || st.Plan.Misses != 0 || st.Plan.Entries != 0 {
		t.Errorf("AskNoCache touched the plan cache: %+v", st.Plan)
	}
	if st.Step.Hits != 0 || st.Step.Entries != 0 {
		t.Errorf("AskNoCache touched the step cache: %+v", st.Step)
	}
}

func TestSetCacheLimitsDisables(t *testing.T) {
	sys, err := NewSystem(testEnv(t, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.SetCacheLimits(0, 0, 0)
	r1, err := sys.Ask(ctx, queryCS1, AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys.Ask(ctx, queryCS1, AskWithoutCuration())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Design == r2.Design {
		t.Error("disabled plan cache still shared a plan")
	}
	if st := sys.CacheStats(); st.Plan.Entries != 0 || st.Step.Entries != 0 {
		t.Errorf("disabled caches hold entries: %+v", st)
	}
}

// TestPromotionInvalidatesCachedPlans is the invalidation acceptance
// test: a curation promotion bumps the registry generation, so the
// next Ask of an already-cached query must re-plan against the grown
// catalog (and pick up the composite) instead of being served the
// stale pre-promotion plan.
func TestPromotionInvalidatesCachedPlans(t *testing.T) {
	sys := cs1System(t)
	gen0 := sys.Registry().Generation()

	r1, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Design != r1.Design {
		t.Fatal("plan cache not warm before promotion")
	}

	// A second distinct cable query gives the shared pattern support 2:
	// the curator promotes and the generation moves.
	r2, err := sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-4 cable failure")
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Promotions) == 0 {
		t.Fatal("expected a promotion; the invalidation scenario needs one")
	}
	if g := sys.Registry().Generation(); g <= gen0 {
		t.Fatalf("generation = %d after promotion, want > %d", g, gen0)
	}

	r3, err := sys.Ask(ctx, queryCS1)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Design == r1.Design {
		t.Fatal("stale pre-promotion plan served after the registry evolved")
	}
	usesComposite := false
	for _, name := range r3.Design.Chosen.CapabilityNames() {
		if c, err := sys.Registry().Get(name); err == nil && c.Composite {
			usesComposite = true
		}
	}
	if !usesComposite {
		t.Error("re-planned design ignores the freshly promoted composite")
	}
}

func TestAskBatchSingleflight(t *testing.T) {
	sys, err := NewSystem(testEnv(t, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Disable caching so pipeline runs are observable 1:1 — the
	// deduplication under test is AskBatch's, not the plan cache's.
	sys.SetCacheLimits(0, 0, 0)
	var runs atomic.Int64
	obs := ObserverFunc(func(ev Event) error {
		if st, ok := ev.(*StageStarted); ok && st.Stage == StageProblem {
			runs.Add(1)
		}
		return nil
	})
	queries := []string{queryCS1, queryCS1, queryCS2, queryCS1, queryCS2}
	reports, err := sys.AskBatch(ctx, queries, AskWithoutCuration(), AskObserver(obs))
	if err != nil {
		t.Fatal(err)
	}
	if n := runs.Load(); n != 2 {
		t.Errorf("pipeline ran %d times for 2 distinct queries", n)
	}
	if reports[0] != reports[1] || reports[0] != reports[3] {
		t.Error("duplicate queries do not share one Report")
	}
	if reports[2] != reports[4] {
		t.Error("second duplicate group does not share one Report")
	}
	if reports[0] == reports[2] {
		t.Error("distinct queries share a Report")
	}
	for i, r := range reports {
		if r == nil || r.Query != queries[i] {
			t.Errorf("report %d misaligned", i)
		}
	}
}

// TestConcurrentPromotionNeverServesStalePlans hammers one System with
// concurrent promotion-triggering Asks (curation on) and verifies,
// under -race, that every served design validates against the live
// registry and that after the dust settles a fresh Ask plans with the
// promoted composite — i.e. no caller was handed a plan from before a
// generation it observed.
func TestConcurrentPromotionNeverServesStalePlans(t *testing.T) {
	sys := cs1System(t)
	cables := []string{"SeaMeWe-5", "SeaMeWe-4", "AAE-1"}
	const rounds = 4
	var wg sync.WaitGroup
	errs := make(chan error, len(cables)*rounds)
	for r := 0; r < rounds; r++ {
		for _, c := range cables {
			wg.Add(1)
			go func(c string) {
				defer wg.Done()
				q := fmt.Sprintf("Identify the impact at a country level due to %s cable failure", c)
				rep, err := sys.Ask(ctx, q)
				if err != nil {
					errs <- fmt.Errorf("%s: %w", c, err)
					return
				}
				if err := rep.Design.Chosen.Validate(sys.Registry()); err != nil {
					errs <- fmt.Errorf("%s: served design invalid: %w", c, err)
				}
			}(c)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if len(sys.Promotions()) == 0 {
		t.Fatal("hammer produced no promotion; scenario lost its teeth")
	}
	rep, err := sys.Ask(ctx, "Identify the impact at a country level due to SeaMeWe-5 cable failure")
	if err != nil {
		t.Fatal(err)
	}
	usesComposite := false
	for _, name := range rep.Design.Chosen.CapabilityNames() {
		if c, err := sys.Registry().Get(name); err == nil && c.Composite {
			usesComposite = true
		}
	}
	if !usesComposite {
		t.Error("post-hammer plan ignores the promoted composite")
	}
}

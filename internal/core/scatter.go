package core

import (
	"fmt"
	"net/netip"
	"sort"
	"strings"

	"arachnet/internal/fleet"
	"arachnet/internal/netsim"
	"arachnet/internal/traceroute"
	"arachnet/internal/xaminer"
)

// installScatterSpecs teaches a fleet how the builtin catalog's
// fan-out capabilities partition and gather. Only capabilities whose
// inputs have clear shard ownership get specs — everything else is
// declined back to the coordinator, which is always correct.
//
// The invariant every Merge here upholds: the gathered output is
// byte-identical to running the capability unsharded, for any shard
// count. Splits must likewise decline (or skip elements) under
// conditions that do not depend on the shard count, or fleets of
// different sizes would diverge.
func installScatterSpecs(f *fleet.Fleet) {
	// nautilus.extract_ips: links are owned by the shard of their
	// A-endpoint country; the unsharded output is a sorted address
	// set, so a sorted dedup union of per-shard sets reproduces it
	// exactly. Unknown link IDs are skipped, mirroring the
	// capability's own behavior.
	f.SetScatter("nautilus.extract_ips", fleet.Scatter{
		Split: func(p *netsim.Partition, _ any, in map[string]any) (map[int]map[string]any, bool) {
			links, ok := in["links"].([]netsim.LinkID)
			if !ok {
				return nil, false
			}
			parts := map[int]map[string]any{}
			for _, id := range links {
				s := p.ShardOfLink(id)
				if s < 0 {
					continue // unknown link: the capability skips it too
				}
				part := parts[s]
				if part == nil {
					part = map[string]any{"links": []netsim.LinkID(nil)}
					parts[s] = part
				}
				part["links"] = append(part["links"].([]netsim.LinkID), id)
			}
			return parts, true
		},
		Merge: func(p *netsim.Partition, _ any, orig map[string]any, parts map[int]map[string]any) (map[string]any, error) {
			set := map[netip.Addr]bool{}
			for shard, out := range parts {
				ips, ok := out["ips"].([]netip.Addr)
				if !ok {
					return nil, fmt.Errorf("shard %d produced %T for ips", shard, out["ips"])
				}
				for _, a := range ips {
					set[a] = true
				}
			}
			merged := make([]netip.Addr, 0, len(set))
			for a := range set {
				merged = append(merged, a)
			}
			sort.Slice(merged, func(i, j int) bool { return merged[i].Less(merged[j]) })
			return map[string]any{"ips": merged}, nil
		},
	})

	// xaminer.impact_from_links: the full-registry CS1 path. Links are
	// owned by the shard of their A-endpoint country; each shard runs
	// the Xaminer embedding over its own links, and the gather re-adds
	// the per-country loss counts. Three of the four metrics are plain
	// weighted sums of per-link contributions (weight 1.0, so sums are
	// exact) and add across shards; ASesHit counts *distinct* (country,
	// AS) pairs, which is not additive — a link in shard 1 and a link
	// in shard 2 can hit the same AS — so the merge recomputes it from
	// the original link set. Per-country totals come from any partial
	// (every worker computed them over the identical full world), and
	// scores are recomputed with xaminer.ScoreOf — the same arithmetic,
	// in the same order, as the unsharded path.
	f.SetScatter("xaminer.impact_from_links", fleet.Scatter{
		Split: func(p *netsim.Partition, _ any, in map[string]any) (map[int]map[string]any, bool) {
			links, ok := in["links"].([]netsim.LinkID)
			if !ok {
				return nil, false
			}
			parts := map[int]map[string]any{}
			for _, id := range links {
				s := p.ShardOfLink(id)
				if s < 0 {
					continue // unknown link: the capability skips it too
				}
				part := parts[s]
				if part == nil {
					part = map[string]any{"links": []netsim.LinkID(nil)}
					parts[s] = part
				}
				part["links"] = append(part["links"].([]netsim.LinkID), id)
			}
			return parts, true
		},
		Merge: func(p *netsim.Partition, _ any, orig map[string]any, parts map[int]map[string]any) (map[string]any, error) {
			links, ok := orig["links"].([]netsim.LinkID)
			if !ok {
				return nil, fmt.Errorf("original links input is %T", orig["links"])
			}
			byCountry := map[string]xaminer.CountryImpact{}
			for shard, out := range parts {
				rep, ok := out["report"].(*xaminer.ImpactReport)
				if !ok {
					return nil, fmt.Errorf("shard %d produced %T for report", shard, out["report"])
				}
				for _, ci := range rep.Countries {
					cur, seen := byCountry[ci.Country]
					if !seen {
						// Totals are world-derived and identical on
						// every worker; take them once.
						cur = xaminer.CountryImpact{
							Country:    ci.Country,
							LinksTotal: ci.LinksTotal, IPsTotal: ci.IPsTotal,
							ASesTotal: ci.ASesTotal, ASLinksTot: ci.ASLinksTot,
						}
					}
					cur.LinksLost += ci.LinksLost
					cur.IPsLost += ci.IPsLost
					cur.ASLinksLost += ci.ASLinksLost
					byCountry[ci.Country] = cur
				}
			}
			// Distinct (country, AS) hits recomputed over the failed
			// link set — the one metric shards cannot sum.
			w := p.World()
			asesHit := map[string]map[netsim.ASN]bool{}
			markAS := func(cc string, asn netsim.ASN) {
				if asesHit[cc] == nil {
					asesHit[cc] = map[netsim.ASN]bool{}
				}
				asesHit[cc][asn] = true
			}
			failed := linkSet(links)
			for id := range failed {
				l, ok := w.LinkByID(id)
				if !ok {
					continue
				}
				ca, cb := w.LinkEndpoints(l)
				markAS(ca, l.ASLinkAB[0])
				markAS(cb, l.ASLinkAB[1])
			}
			rep := &xaminer.ImpactReport{Scenario: "xaminer", FailedLinks: len(failed)}
			for cc, ci := range byCountry {
				ci.ASesHit = float64(len(asesHit[cc]))
				ci.Score = xaminer.ScoreOf(ci)
				rep.Countries = append(rep.Countries, ci)
			}
			sort.Slice(rep.Countries, func(i, j int) bool {
				if rep.Countries[i].Score != rep.Countries[j].Score {
					return rep.Countries[i].Score > rep.Countries[j].Score
				}
				return rep.Countries[i].Country < rep.Countries[j].Country
			})
			return map[string]any{"report": rep}, nil
		},
	})

	// geo.locate_ips: addresses are owned by the shard of the country
	// their covering prefix was allocated to. The unsharded output is
	// one GeoRow per locatable input address, in input order; the
	// gather replays the input order, pulling each row from its owning
	// shard's (order-preserving) output and conflict-checking the
	// address. Unlocatable addresses are skipped at split time —
	// exactly the rows the capability itself would drop.
	f.SetScatter("geo.locate_ips", fleet.Scatter{
		Split: func(p *netsim.Partition, _ any, in map[string]any) (map[int]map[string]any, bool) {
			ips, ok := in["ips"].([]netip.Addr)
			if !ok {
				return nil, false
			}
			parts := map[int]map[string]any{}
			for _, a := range ips {
				s := p.ShardOfAddr(a)
				if s < 0 {
					continue // unlocatable: the capability drops it too
				}
				part := parts[s]
				if part == nil {
					part = map[string]any{"ips": []netip.Addr(nil)}
					parts[s] = part
				}
				part["ips"] = append(part["ips"].([]netip.Addr), a)
			}
			return parts, true
		},
		Merge: func(p *netsim.Partition, _ any, orig map[string]any, parts map[int]map[string]any) (map[string]any, error) {
			ips, ok := orig["ips"].([]netip.Addr)
			if !ok {
				return nil, fmt.Errorf("original ips input is %T", orig["ips"])
			}
			rowsOf := make(map[int][]GeoRow, len(parts))
			for shard, out := range parts {
				rows, ok := out["geo"].([]GeoRow)
				if !ok {
					return nil, fmt.Errorf("shard %d produced %T for geo", shard, out["geo"])
				}
				rowsOf[shard] = rows
			}
			cursor := map[int]int{}
			merged := make([]GeoRow, 0, len(ips))
			for _, a := range ips {
				s := p.ShardOfAddr(a)
				if s < 0 {
					continue
				}
				rows := rowsOf[s]
				i := cursor[s]
				if i >= len(rows) {
					return nil, fmt.Errorf("shard %d returned %d rows, need more for %s", s, len(rows), a)
				}
				if rows[i].Addr != a {
					return nil, fmt.Errorf("shard %d row %d is %s, want %s (order conflict)", s, i, rows[i].Addr, a)
				}
				cursor[s] = i + 1
				merged = append(merged, rows[i])
			}
			for s, rows := range rowsOf {
				if cursor[s] != len(rows) {
					return nil, fmt.Errorf("shard %d returned %d surplus rows", s, len(rows)-cursor[s])
				}
			}
			return map[string]any{"geo": merged}, nil
		},
	})

	// traceroute.archive_window: the first environment-reading scatter.
	// The capability has no bound inputs — its fan-out data is the
	// injected scenario's probe archive — so Split partitions by probe
	// instead: each probe is owned by the shard of its source country
	// (the first component of the "SRC-DST-n" campaign probe name), and
	// every shard receives a sorted probe-name subset as the undeclared
	// "probes" input the capability's Impl honors as an order-preserving
	// filter. Declines are shard-count-independent: no scenario/archive
	// in the environment, or any probe whose source country the
	// partition doesn't know. Merge replays the coordinator archive's
	// full measurement order, pulling each measurement from its owning
	// shard's (order-preserving) filtered archive with per-shard cursors
	// and probe/time conflict checks — so the gathered archive is
	// element-identical to the unsharded one for any shard count.
	f.SetScatter("traceroute.archive_window", fleet.Scatter{
		Split: func(p *netsim.Partition, env any, in map[string]any) (map[int]map[string]any, bool) {
			e, ok := env.(*Environment)
			if !ok || e.Scenario == nil || e.Scenario.Archive == nil {
				return nil, false
			}
			byShard := map[int][]string{}
			for _, probe := range e.Scenario.Archive.Probes() {
				s := p.ShardOfCountry(probeSourceCountry(probe))
				if s < 0 {
					// A probe no shard owns: the whole step must run on
					// the coordinator — dropping it would change the
					// archive.
					return nil, false
				}
				byShard[s] = append(byShard[s], probe)
			}
			parts := make(map[int]map[string]any, len(byShard))
			for s, probes := range byShard {
				sort.Strings(probes)
				parts[s] = map[string]any{"probes": probes}
			}
			return parts, true
		},
		Merge: func(p *netsim.Partition, env any, orig map[string]any, parts map[int]map[string]any) (map[string]any, error) {
			e, ok := env.(*Environment)
			if !ok || e.Scenario == nil || e.Scenario.Archive == nil {
				return nil, fmt.Errorf("environment lost its archive between split and merge")
			}
			full := e.Scenario.Archive.Measurements
			archOf := make(map[int][]traceroute.Measurement, len(parts))
			for shard, out := range parts {
				arch, ok := out["archive"].(*traceroute.Archive)
				if !ok {
					return nil, fmt.Errorf("shard %d produced %T for archive", shard, out["archive"])
				}
				archOf[shard] = arch.Measurements
			}
			cursor := map[int]int{}
			merged := &traceroute.Archive{Measurements: make([]traceroute.Measurement, 0, len(full))}
			for _, m := range full {
				s := p.ShardOfCountry(probeSourceCountry(m.Probe))
				if s < 0 {
					return nil, fmt.Errorf("probe %s lost its shard between split and merge", m.Probe)
				}
				ms := archOf[s]
				i := cursor[s]
				if i >= len(ms) {
					return nil, fmt.Errorf("shard %d returned %d measurements, need more for %s", s, len(ms), m.Probe)
				}
				if ms[i].Probe != m.Probe || !ms[i].Time.Equal(m.Time) {
					return nil, fmt.Errorf("shard %d measurement %d is %s@%s, want %s@%s (order conflict)",
						s, i, ms[i].Probe, ms[i].Time, m.Probe, m.Time)
				}
				cursor[s] = i + 1
				merged.Measurements = append(merged.Measurements, ms[i])
			}
			for s, ms := range archOf {
				if cursor[s] != len(ms) {
					return nil, fmt.Errorf("shard %d returned %d surplus measurements", s, len(ms)-cursor[s])
				}
			}
			return map[string]any{"archive": merged}, nil
		},
	})
}

// probeSourceCountry extracts the source-country prefix from a campaign
// probe name of the form "SRC-DST-n" ("" when the name has no dash).
func probeSourceCountry(name string) string {
	if i := strings.IndexByte(name, '-'); i > 0 {
		return name[:i]
	}
	return ""
}

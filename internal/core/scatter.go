package core

import (
	"fmt"
	"net/netip"
	"sort"

	"arachnet/internal/fleet"
	"arachnet/internal/netsim"
)

// installScatterSpecs teaches a fleet how the builtin catalog's
// fan-out capabilities partition and gather. Only capabilities whose
// inputs have clear shard ownership get specs — everything else is
// declined back to the coordinator, which is always correct.
//
// The invariant every Merge here upholds: the gathered output is
// byte-identical to running the capability unsharded, for any shard
// count. Splits must likewise decline (or skip elements) under
// conditions that do not depend on the shard count, or fleets of
// different sizes would diverge.
func installScatterSpecs(f *fleet.Fleet) {
	// nautilus.extract_ips: links are owned by the shard of their
	// A-endpoint country; the unsharded output is a sorted address
	// set, so a sorted dedup union of per-shard sets reproduces it
	// exactly. Unknown link IDs are skipped, mirroring the
	// capability's own behavior.
	f.SetScatter("nautilus.extract_ips", fleet.Scatter{
		Split: func(p *netsim.Partition, in map[string]any) (map[int]map[string]any, bool) {
			links, ok := in["links"].([]netsim.LinkID)
			if !ok {
				return nil, false
			}
			parts := map[int]map[string]any{}
			for _, id := range links {
				s := p.ShardOfLink(id)
				if s < 0 {
					continue // unknown link: the capability skips it too
				}
				part := parts[s]
				if part == nil {
					part = map[string]any{"links": []netsim.LinkID(nil)}
					parts[s] = part
				}
				part["links"] = append(part["links"].([]netsim.LinkID), id)
			}
			return parts, true
		},
		Merge: func(p *netsim.Partition, orig map[string]any, parts map[int]map[string]any) (map[string]any, error) {
			set := map[netip.Addr]bool{}
			for shard, out := range parts {
				ips, ok := out["ips"].([]netip.Addr)
				if !ok {
					return nil, fmt.Errorf("shard %d produced %T for ips", shard, out["ips"])
				}
				for _, a := range ips {
					set[a] = true
				}
			}
			merged := make([]netip.Addr, 0, len(set))
			for a := range set {
				merged = append(merged, a)
			}
			sort.Slice(merged, func(i, j int) bool { return merged[i].Less(merged[j]) })
			return map[string]any{"ips": merged}, nil
		},
	})

	// geo.locate_ips: addresses are owned by the shard of the country
	// their covering prefix was allocated to. The unsharded output is
	// one GeoRow per locatable input address, in input order; the
	// gather replays the input order, pulling each row from its owning
	// shard's (order-preserving) output and conflict-checking the
	// address. Unlocatable addresses are skipped at split time —
	// exactly the rows the capability itself would drop.
	f.SetScatter("geo.locate_ips", fleet.Scatter{
		Split: func(p *netsim.Partition, in map[string]any) (map[int]map[string]any, bool) {
			ips, ok := in["ips"].([]netip.Addr)
			if !ok {
				return nil, false
			}
			parts := map[int]map[string]any{}
			for _, a := range ips {
				s := p.ShardOfAddr(a)
				if s < 0 {
					continue // unlocatable: the capability drops it too
				}
				part := parts[s]
				if part == nil {
					part = map[string]any{"ips": []netip.Addr(nil)}
					parts[s] = part
				}
				part["ips"] = append(part["ips"].([]netip.Addr), a)
			}
			return parts, true
		},
		Merge: func(p *netsim.Partition, orig map[string]any, parts map[int]map[string]any) (map[string]any, error) {
			ips, ok := orig["ips"].([]netip.Addr)
			if !ok {
				return nil, fmt.Errorf("original ips input is %T", orig["ips"])
			}
			rowsOf := make(map[int][]GeoRow, len(parts))
			for shard, out := range parts {
				rows, ok := out["geo"].([]GeoRow)
				if !ok {
					return nil, fmt.Errorf("shard %d produced %T for geo", shard, out["geo"])
				}
				rowsOf[shard] = rows
			}
			cursor := map[int]int{}
			merged := make([]GeoRow, 0, len(ips))
			for _, a := range ips {
				s := p.ShardOfAddr(a)
				if s < 0 {
					continue
				}
				rows := rowsOf[s]
				i := cursor[s]
				if i >= len(rows) {
					return nil, fmt.Errorf("shard %d returned %d rows, need more for %s", s, len(rows), a)
				}
				if rows[i].Addr != a {
					return nil, fmt.Errorf("shard %d row %d is %s, want %s (order conflict)", s, i, rows[i].Addr, a)
				}
				cursor[s] = i + 1
				merged = append(merged, rows[i])
			}
			for s, rows := range rowsOf {
				if cursor[s] != len(rows) {
					return nil, fmt.Errorf("shard %d returned %d surplus rows", s, len(rows)-cursor[s])
				}
			}
			return map[string]any{"geo": merged}, nil
		},
	})
}

package core

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUCacheBasics(t *testing.T) {
	c := newLRUCache(64, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", 1, 10)
	v, ok := c.Get("a")
	if !ok || v != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	st := c.Counters()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Bytes != 10 {
		t.Fatalf("counters = %+v", st)
	}
	// Refreshing a key replaces the value and re-accounts its size.
	c.Put("a", 2, 30)
	v, _ = c.Get("a")
	st = c.Counters()
	if v != 2 || st.Entries != 1 || st.Bytes != 30 {
		t.Fatalf("after refresh: v=%v counters=%+v", v, st)
	}
}

func TestLRUCacheEntryBound(t *testing.T) {
	c := newLRUCache(16, 0)
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1)
	}
	st := c.Counters()
	if st.Entries > 16 {
		t.Errorf("entries = %d, want <= 16", st.Entries)
	}
	if st.Evictions == 0 {
		t.Error("no evictions recorded under pressure")
	}
}

func TestLRUCacheByteBound(t *testing.T) {
	// 16 shards × (4096/16 = 256 bytes each); 200-byte values force
	// every shard down to one entry.
	c := newLRUCache(1024, 4096)
	for i := 0; i < 100; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 200)
	}
	st := c.Counters()
	if st.Bytes > 4096 {
		t.Errorf("bytes = %d, want <= 4096", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Error("no evictions under byte pressure")
	}
}

func TestLRUCacheEvictsLeastRecent(t *testing.T) {
	// Two entries per shard: a hot key refreshed before every insert
	// must outlive the cold keys that share its shard.
	c := newLRUCache(2*cacheShards, 0)
	c.Put("hot", 1, 1)
	for i := 0; i < 200; i++ {
		c.Get("hot") // keep it recent
		c.Put(fmt.Sprintf("cold%d", i), i, 1)
	}
	if _, ok := c.Get("hot"); !ok {
		t.Error("recently used entry was evicted")
	}
}

func TestLRUCacheDisabledAndFlushed(t *testing.T) {
	c := newLRUCache(64, 0)
	c.Put("a", 1, 1)
	c.SetLimits(0, 0)
	if _, ok := c.Get("a"); ok {
		t.Error("disabled cache served a hit")
	}
	c.Put("b", 2, 1)
	if st := c.Counters(); st.Entries != 0 {
		t.Errorf("disabled cache holds %d entries", st.Entries)
	}
	// Re-enabling starts empty but functional.
	c.SetLimits(64, 0)
	c.Put("c", 3, 1)
	if v, ok := c.Get("c"); !ok || v != 3 {
		t.Error("re-enabled cache does not serve")
	}
}

func TestLRUCacheShrinkEvictsImmediately(t *testing.T) {
	c := newLRUCache(1024, 0)
	for i := 0; i < 512; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 1)
	}
	c.SetLimits(16, 0)
	if st := c.Counters(); st.Entries > 16 {
		t.Errorf("entries = %d after shrink, want <= 16", st.Entries)
	}
}

func TestLRUCacheConcurrent(t *testing.T) {
	c := newLRUCache(256, 1<<20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				key := fmt.Sprintf("k%d", (g*31+i)%64)
				if v, ok := c.Get(key); ok {
					if v.(int) != (g*31+i)%64 {
						t.Errorf("wrong value for %s: %v", key, v)
						return
					}
				}
				c.Put(key, (g*31+i)%64, 64)
			}
		}(g)
	}
	wg.Wait()
	st := c.Counters()
	if st.Hits+st.Misses != 8*400 {
		t.Errorf("lookups = %d, want %d", st.Hits+st.Misses, 8*400)
	}
}

func TestEstimateSize(t *testing.T) {
	small := estimateSize(42)
	big := estimateSize(make([]byte, 1<<16))
	if small >= big {
		t.Errorf("estimate(int)=%d >= estimate(64KiB slice)=%d", small, big)
	}
	if s := estimateSize("hello, world"); s < 12 {
		t.Errorf("string estimate %d < payload length", s)
	}
	// Cyclic structures must terminate (depth-bounded walk).
	type node struct {
		Next *node
		Name string
	}
	n := &node{Name: "a"}
	n.Next = n
	if s := estimateSize(n); s <= 0 {
		t.Errorf("cyclic estimate = %d", s)
	}
	// Output maps — the step cache's value shape — include payloads.
	out := map[string]any{"text": string(make([]byte, 4096))}
	if s := estimateSize(out); s < 4096 {
		t.Errorf("map estimate %d misses the 4KiB payload", s)
	}
}

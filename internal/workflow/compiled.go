package workflow

// Plan compilation: the zero-reparse warm path. A cached plan used to
// be replayed by handing its Workflow back to Engine.Run, which
// re-validated the DAG, re-resolved every capability, re-derived the
// dependency graph, and re-hashed every step fingerprint on every
// warm Ask. Compile does all of that exactly once, when the plan
// enters the cache, and RunCompiled walks the precomputed schedule:
//
//   - capability pointers are resolved at compile time (the registry
//     is immutable per generation, and plan caches key on the
//     generation, so the pointers stay valid exactly as long as the
//     plan itself);
//   - literal inputs are pre-canonicalized into the fingerprint
//     preimage, and the dependency schedule (index map, dependents
//     adjacency, indegrees, initial ready set) is precomputed;
//   - per-step fingerprint preimages are precomputed byte templates
//     with two kinds of runtime holes: the env-key suffix (substituted
//     per environment fingerprint) and 32-byte upstream digests
//     (substituted as upstream fingerprints resolve). A warm run hashes
//     nothing: the resolved fingerprint vector is memoized per
//     environment fingerprint on the CompiledPlan itself;
//   - scheduler scratch (indegree copy, ready queue) comes from a
//     sync.Pool, and per-step provenance/value-key strings that do not
//     depend on timings are preformatted, so a fully cached replay
//     allocates near-nothing. (Result, Values, Outputs and StepStats
//     escape to the caller and are never pooled.)
//
// RunCompiled is observationally identical to Run — same scheduling
// order, same provenance bytes, same cache keys, same error shapes —
// which the byte-identity tests enforce.

import (
	"context"
	"crypto/sha256"
	"fmt"
	"slices"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"arachnet/internal/registry"
)

// CompiledPlan is the executable artifact of one validated Workflow
// against one registry generation. It is immutable after Compile
// (the memoized fingerprint vector is swapped atomically) and safe
// for concurrent RunCompiled calls.
type CompiledPlan struct {
	w     *Workflow
	index map[string]int // step ID → workflow index
	steps []compiledStep

	// Precomputed schedule: Ref-derived dependency graph.
	dependents [][]int
	indegree   []int // template; copied into pooled scratch per run
	ready0     []int
	nValues    int // total declared outputs across steps (Values presize)

	memoizable bool // at least one step has a fingerprint template

	// fp memoizes the resolved fingerprint vector for the most recent
	// environment fingerprint; fpMu serializes recomputation so
	// concurrent runs against a fresh environment hash once, not N
	// times.
	fp   atomic.Pointer[compiledFPs]
	fpMu sync.Mutex
}

type compiledFPs struct {
	envFP string
	fps   []string
}

// compiledStep is one step with everything Run re-derives per
// execution resolved ahead of time.
type compiledStep struct {
	step         *Step
	capb         *registry.Capability
	dispatchable bool          // Pure and not pinned to the coordinator
	refs         []compiledRef // Ref inputs, for input-map assembly
	lits         []compiledLit // literal inputs, pre-extracted
	valueKeys    []string      // "stepID.port" per declared output
	cachedProv   string        // provenance line for a cache hit

	// Fingerprint preimage template (fpOK steps only): pre holds the
	// bytes up to and including the "env" label field; at resolve time
	// the env key is appended, then each segment's static bytes
	// followed by the named upstream's 32-byte digest.
	fpOK bool
	pre  []byte
	segs []fpSeg
}

type compiledRef struct {
	name string
	ref  string
}

type compiledLit struct {
	name string
	val  any
}

// fpSeg is one run of static preimage bytes optionally followed by an
// upstream step's digest (upstream < 0 means trailing static bytes).
type fpSeg struct {
	static   []byte
	upstream int
}

// fpField appends length-prefixed parts exactly as
// Engine.fingerprints does — the two must stay byte-identical, since
// step caches (local and per-worker) key on the resulting digests.
func fpField(b []byte, parts ...string) []byte {
	for _, p := range parts {
		b = strconv.AppendInt(b, int64(len(p)), 10)
		b = append(b, ':')
		b = append(b, p...)
	}
	return b
}

// Compile validates w against reg and lowers it into a CompiledPlan.
// The artifact is tied to reg's current contents: callers that key
// their plan caches on the registry generation (as core does) get
// invalidation for free; anyone else must discard the plan when the
// registry changes.
func Compile(w *Workflow, reg *registry.Registry) (*CompiledPlan, error) {
	if err := w.Validate(reg); err != nil {
		return nil, err
	}
	n := len(w.Steps)
	cp := &CompiledPlan{
		w:          w,
		index:      make(map[string]int, n),
		steps:      make([]compiledStep, n),
		dependents: make([][]int, n),
		indegree:   make([]int, n),
	}
	for i := range w.Steps {
		cp.index[w.Steps[i].ID] = i
	}
	for i := range w.Steps {
		s := &w.Steps[i]
		capb, err := reg.Get(s.Capability)
		if err != nil {
			return nil, err // unreachable after Validate; defensive
		}
		cs := &cp.steps[i]
		cs.step = s
		cs.capb = capb
		cs.dispatchable = capb.Pure && s.Affinity != AffinityCoordinator
		cs.cachedProv = fmt.Sprintf("step %s (%s): ok (cached)", s.ID, s.Capability)
		cs.valueKeys = make([]string, len(capb.Outputs))
		for oi, out := range capb.Outputs {
			cs.valueKeys[oi] = s.ID + "." + out.Name
		}
		cp.nValues += len(capb.Outputs)

		// Dependency edges, deduplicated per upstream step.
		from := map[int]bool{}
		for _, b := range s.Inputs {
			if !b.IsRef() {
				continue
			}
			src := cp.index[RefStepID(b.Ref)]
			if !from[src] {
				from[src] = true
				cp.dependents[src] = append(cp.dependents[src], i)
				cp.indegree[i]++
			}
		}

		// Inputs in the sorted order fingerprints use; the same order
		// serves input-map assembly (map fill order is irrelevant).
		names := make([]string, 0, len(s.Inputs))
		for name := range s.Inputs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b := s.Inputs[name]
			if b.IsRef() {
				cs.refs = append(cs.refs, compiledRef{name: name, ref: b.Ref})
			} else {
				cs.lits = append(cs.lits, compiledLit{name: name, val: b.Literal})
			}
		}

		// Fingerprint template. The conditions for "not memoizable"
		// mirror Engine.fingerprints exactly: impure capability,
		// non-canonicalizable literal, or a non-memoizable upstream —
		// all decidable at compile time.
		if !capb.Pure {
			continue
		}
		pre := fpField(nil, "cap", s.Capability, "env")
		ok := true
		var segs []fpSeg
		var cur []byte
		for _, name := range names {
			b := s.Inputs[name]
			if b.IsRef() {
				upIdx := cp.index[RefStepID(b.Ref)]
				if !cp.steps[upIdx].fpOK {
					ok = false
					break
				}
				// field(buf, "r", name, up, port) with up always a raw
				// 32-byte sha256 digest, so its length prefix is the
				// static "32:".
				cur = fpField(cur, "r", name)
				cur = append(cur, "32:"...)
				segs = append(segs, fpSeg{static: cur, upstream: upIdx})
				cur = fpField(nil, RefPort(b.Ref))
				continue
			}
			lit, err := canonicalValue(b.Literal)
			if err != nil {
				ok = false
				break
			}
			cur = fpField(cur, "l", name, lit)
		}
		if ok {
			segs = append(segs, fpSeg{static: cur, upstream: -1})
			cs.pre, cs.segs, cs.fpOK = pre, segs, true
			cp.memoizable = true
		}
	}
	for i := 0; i < n; i++ {
		if cp.indegree[i] == 0 {
			cp.ready0 = append(cp.ready0, i)
		}
	}
	return cp, nil
}

// Workflow returns the plan's source workflow.
func (cp *CompiledPlan) Workflow() *Workflow { return cp.w }

// fingerprintsFor resolves the per-step cache keys against the
// engine's environment by substituting only the env-key suffix (and
// chained upstream digests) into the precompiled preimages, then
// memoizes the vector keyed by the engine's environment fingerprint —
// repeated warm runs hash nothing.
//
// Contract: the engine's envKeyer must be a pure function of the
// capability and of the environment state its envFP identifies (true
// of core's facet keyer, whose outputs are derived from the same
// fingerprint counters). Two engines sharing a CompiledPlan must
// observe the same environment.
func (cp *CompiledPlan) fingerprintsFor(e *Engine) []string {
	if p := cp.fp.Load(); p != nil && p.envFP == e.envFP {
		return p.fps
	}
	cp.fpMu.Lock()
	defer cp.fpMu.Unlock()
	if p := cp.fp.Load(); p != nil && p.envFP == e.envFP {
		return p.fps
	}
	fps := make([]string, len(cp.steps))
	buf := make([]byte, 0, 256)
	for i := range cp.steps {
		cs := &cp.steps[i]
		if !cs.fpOK {
			continue
		}
		envKey := e.envFP
		if e.envKeyer != nil {
			if k := e.envKeyer(cs.capb); k != "" {
				envKey = k
			}
		}
		buf = append(buf[:0], cs.pre...)
		buf = strconv.AppendInt(buf, int64(len(envKey)), 10)
		buf = append(buf, ':')
		buf = append(buf, envKey...)
		for _, seg := range cs.segs {
			buf = append(buf, seg.static...)
			if seg.upstream >= 0 {
				buf = append(buf, fps[seg.upstream]...)
			}
		}
		sum := sha256.Sum256(buf)
		fps[i] = string(sum[:])
	}
	cp.fp.Store(&compiledFPs{envFP: e.envFP, fps: fps})
	return fps
}

// runScratch is the pooled per-run scheduler state: the working
// indegree copy and the ready queue. Nothing in it escapes a run.
type runScratch struct {
	indegree []int
	ready    []int
}

var runScratchPool = sync.Pool{New: func() any { return new(runScratch) }}

// RunCompiled executes a compiled plan. It is Run minus everything
// Compile already did: no validation, no registry lookups, no graph
// derivation, no preimage assembly — just the scheduler loop over the
// precomputed schedule, with pooled scratch. Semantics (scheduling
// order, provenance, cache keys, dispatch offers, error shapes) are
// identical to Run(ctx, cp.Workflow()) and enforced by tests.
func (e *Engine) RunCompiled(ctx context.Context, cp *CompiledPlan) (*Result, error) {
	if cp == nil {
		return nil, fmt.Errorf("workflow: nil compiled plan")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := cp.w
	n := len(cp.steps)

	sc := runScratchPool.Get().(*runScratch)
	if cap(sc.indegree) < n {
		sc.indegree = make([]int, n)
	}
	indegree := sc.indegree[:n]
	copy(indegree, cp.indegree)
	ready := append(sc.ready[:0], cp.ready0...)
	defer func() {
		sc.ready = ready[:0]
		runScratchPool.Put(sc)
	}()

	res := &Result{
		Values:     make(map[string]any, cp.nValues),
		Outputs:    make(map[string]any, len(w.Outputs)),
		Steps:      make([]StepStat, 0, n),
		Provenance: make([]string, 0, n+len(w.Checks)),
	}

	var fps []string
	if (e.cache != nil || e.dispatcher != nil) && cp.memoizable {
		fps = cp.fingerprintsFor(e)
	}

	// The done channel is allocated lazily: a fully cached replay
	// settles every step inline on the scheduler goroutine and never
	// needs it. The ready queue pops via a head cursor so the pooled
	// buffer keeps its capacity across runs.
	var done chan stepDone
	running := 0
	head := 0
	var firstErr error

	settle := func(d stepDone) {
		cs := &cp.steps[d.idx]
		s := cs.step
		res.Steps = append(res.Steps, d.stat)
		if d.stat.Err != nil {
			res.Provenance = append(res.Provenance,
				fmt.Sprintf("step %s (%s): FAILED: %v", s.ID, s.Capability, d.stat.Err))
			if firstErr == nil {
				firstErr = &StepError{Step: s.ID, Capability: s.Capability, Err: d.stat.Err}
			}
			e.stepFinished(d.stat)
			return
		}
		var contractErr error
		for oi, out := range cs.capb.Outputs {
			v, ok := d.out[out.Name]
			if !ok {
				contractErr = fmt.Errorf("capability %q did not produce output %q", s.Capability, out.Name)
				break
			}
			res.Values[cs.valueKeys[oi]] = v
		}
		if contractErr != nil {
			if firstErr == nil {
				firstErr = &StepError{Step: s.ID, Capability: s.Capability, Err: contractErr}
			}
			notify := d.stat
			notify.Err = contractErr
			e.stepFinished(notify)
			return
		}
		if d.stat.Cached {
			res.Provenance = append(res.Provenance, cs.cachedProv)
		} else {
			if e.cache != nil && fps != nil && fps[d.idx] != "" {
				e.cache.Put(fps[d.idx], d.out)
			}
			res.Provenance = append(res.Provenance,
				fmt.Sprintf("step %s (%s): ok in %v", s.ID, s.Capability, d.stat.Duration.Round(time.Microsecond)))
		}
		e.stepFinished(d.stat)
		for _, j := range cp.dependents[d.idx] {
			indegree[j]--
			if indegree[j] == 0 {
				ready = append(ready, j)
			}
		}
	}

	launch := func(i int) {
		cs := &cp.steps[i]
		s := cs.step
		capb := cs.capb
		for _, o := range e.observers {
			o.StepStarted(s.ID, s.Capability)
		}
		if e.cache != nil && fps != nil && fps[i] != "" {
			if out, ok := e.cache.Get(fps[i]); ok {
				settle(stepDone{
					idx:  i,
					capb: capb,
					stat: StepStat{ID: s.ID, Capability: s.Capability, Cached: true},
					out:  out,
				})
				return
			}
		}
		in := make(map[string]any, len(cs.refs)+len(cs.lits))
		for _, r := range cs.refs {
			in[r.name] = res.Values[r.ref]
		}
		for _, l := range cs.lits {
			in[l.name] = l.val
		}
		running++
		if done == nil {
			done = make(chan stepDone)
		}
		if e.dispatcher != nil && cs.dispatchable {
			fp := ""
			if fps != nil {
				fp = fps[i]
			}
			go func() {
				start := time.Now()
				out, handled, err := func() (out map[string]any, handled bool, err error) {
					defer func() {
						if r := recover(); r != nil {
							handled, err = true, fmt.Errorf("dispatch panicked: %v", r)
						}
					}()
					return e.dispatcher.DispatchStep(ctx, capb, in, e.env, fp)
				}()
				if handled {
					done <- stepDone{
						idx:  i,
						capb: capb,
						stat: StepStat{ID: s.ID, Capability: s.Capability, Duration: time.Since(start), Err: err, Remote: true},
						out:  out,
					}
					return
				}
				call := &registry.Call{In: in, Out: map[string]any{}, Env: e.env, Ctx: ctx}
				err = e.safeCall(capb, call)
				done <- stepDone{
					idx:  i,
					capb: capb,
					stat: StepStat{ID: s.ID, Capability: s.Capability, Duration: time.Since(start), Err: err},
					out:  call.Out,
				}
			}()
			return
		}
		go func() {
			call := &registry.Call{In: in, Out: map[string]any{}, Env: e.env, Ctx: ctx}
			start := time.Now()
			err := e.safeCall(capb, call)
			done <- stepDone{
				idx:  i,
				capb: capb,
				stat: StepStat{ID: s.ID, Capability: s.Capability, Duration: time.Since(start), Err: err},
				out:  call.Out,
			}
		}()
	}

	for {
		for firstErr == nil && ctx.Err() == nil && len(ready) > head && running < e.parallelism {
			next := ready[head]
			head++
			launch(next)
		}
		if running == 0 {
			break
		}
		d := <-done
		running--
		settle(d)
	}

	// slices.SortFunc rather than sort.Slice: same deterministic order
	// (indexes are unique), no reflect.Swapper allocation per run.
	slices.SortFunc(res.Steps, func(a, b StepStat) int { return cp.index[a.ID] - cp.index[b.ID] })

	if firstErr != nil {
		return res, firstErr
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("workflow %q: %w", w.Name, err)
	}
	for name, ref := range w.Outputs {
		res.Outputs[name] = res.Values[ref]
	}
	for _, chk := range w.Checks {
		ok, note := chk.Assert(res.Values[chk.Ref])
		res.Checks = append(res.Checks, CheckResult{Name: chk.Name, Kind: chk.Kind, Passed: ok, Note: note})
		status := "pass"
		if !ok {
			status = "FAIL"
		}
		// Plain concatenation (one allocation) in place of Sprintf's
		// boxing; the bytes match Run's formatting exactly.
		res.Provenance = append(res.Provenance,
			"check "+chk.Name+" ["+string(chk.Kind)+"]: "+status+" "+note)
	}
	return res, nil
}

package workflow

// Compiled-plan contract: RunCompiled is observationally identical to
// Run — same outputs, values, step stats, provenance bytes and error
// shapes — and its precompiled fingerprint templates resolve to the
// exact digests Engine.fingerprints derives, so the two paths share
// step caches in both directions. The alloc test pins the point of
// the whole exercise: a fully cached compiled replay stays within a
// small constant allocation budget.

import (
	"context"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"

	"arachnet/internal/registry"
)

var provDuration = regexp.MustCompile(`in [0-9][^ ]*$`)

// maskProvenance zeroes the variable duration suffix of "ok in 12µs"
// lines so interpreted and compiled provenance compare byte-equal.
func maskProvenance(lines []string) []string {
	out := make([]string, len(lines))
	for i, l := range lines {
		out[i] = provDuration.ReplaceAllString(l, "in 0s")
	}
	return out
}

// assertSameResult compares everything deterministic about two
// results (durations masked).
func assertSameResult(t *testing.T, a, b *Result) {
	t.Helper()
	if len(a.Values) != len(b.Values) {
		t.Fatalf("values len %d vs %d", len(a.Values), len(b.Values))
	}
	for k, v := range a.Values {
		if bv, ok := b.Values[k]; !ok || bv != v {
			t.Errorf("value %s: %v vs %v", k, v, bv)
		}
	}
	if len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("outputs len %d vs %d", len(a.Outputs), len(b.Outputs))
	}
	for k, v := range a.Outputs {
		if b.Outputs[k] != v {
			t.Errorf("output %s: %v vs %v", k, v, b.Outputs[k])
		}
	}
	if len(a.Steps) != len(b.Steps) {
		t.Fatalf("steps len %d vs %d", len(a.Steps), len(b.Steps))
	}
	for i := range a.Steps {
		as, bs := a.Steps[i], b.Steps[i]
		if as.ID != bs.ID || as.Capability != bs.Capability || as.Cached != bs.Cached || as.Remote != bs.Remote {
			t.Errorf("step %d: %+v vs %+v", i, as, bs)
		}
	}
	if len(a.Checks) != len(b.Checks) {
		t.Fatalf("checks len %d vs %d", len(a.Checks), len(b.Checks))
	}
	for i := range a.Checks {
		if a.Checks[i] != b.Checks[i] {
			t.Errorf("check %d: %+v vs %+v", i, a.Checks[i], b.Checks[i])
		}
	}
	ap, bp := maskProvenance(a.Provenance), maskProvenance(b.Provenance)
	if strings.Join(ap, "\n") != strings.Join(bp, "\n") {
		t.Errorf("provenance differs:\n%s\n----\n%s", strings.Join(ap, "\n"), strings.Join(bp, "\n"))
	}
}

func TestCompiledMatchesRun(t *testing.T) {
	reg := buildTestRegistry(t)
	w := pipeline()
	w.Checks = []QualityCheck{
		{Name: "n-positive", Kind: CheckSanity, Ref: "dbl.n",
			Assert: func(v any) (bool, string) { return v.(int) > 0, "n must be positive" }},
		{Name: "n-small", Kind: CheckConsistency, Ref: "dbl.n",
			Assert: func(v any) (bool, string) { return v.(int) < 10, "n must be < 10" }},
	}
	eng := NewEngine(reg, nil)
	interp, err := eng.Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := Compile(w, reg)
	if err != nil {
		t.Fatal(err)
	}
	comp, err := eng.RunCompiled(context.Background(), cp)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, interp, comp)
	if comp.Outputs["text"] != "value=42" {
		t.Errorf("output = %v", comp.Outputs["text"])
	}
}

func TestCompiledFingerprintParity(t *testing.T) {
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	keyer := func(capb *registry.Capability) string {
		if capb.Name == "memo.double" {
			return "facet:double"
		}
		return "" // fall back to the engine envFP
	}

	cases := []struct {
		label string
		wf    *Workflow
	}{
		{"pure chain", memoWorkflow()},
		{"impure upstream", &Workflow{
			Name: "impure-chain",
			Steps: []Step{
				{ID: "i", Capability: "memo.impure"},
				{ID: "d", Capability: "memo.double", Inputs: map[string]Binding{"n": Ref("i", "n")}},
			},
			Outputs: map[string]string{"out": "d.n"},
		}},
	}
	for _, tc := range cases {
		eng := NewEngine(reg, nil, WithCache(newMapCache(), "env-parity"), WithEnvKeyer(keyer))
		cp, err := Compile(tc.wf, reg)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		want := eng.fingerprints(tc.wf, cp.index)
		got := cp.fingerprintsFor(eng)
		if len(want) != len(got) {
			t.Fatalf("%s: fp len %d vs %d", tc.label, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Errorf("%s: step %d fingerprint diverges (interpreted %x vs compiled %x)",
					tc.label, i, want[i], got[i])
			}
		}
	}
}

func TestCompiledCacheInterop(t *testing.T) {
	ctx := context.Background()
	// Interpreted run populates the cache; compiled replay must hit it.
	{
		calls := map[string]*atomic.Int64{}
		reg := memoRegistry(t, calls)
		eng := NewEngine(reg, nil, WithCache(newMapCache(), "envA"))
		if _, err := eng.Run(ctx, memoWorkflow()); err != nil {
			t.Fatal(err)
		}
		cp, err := Compile(memoWorkflow(), reg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.RunCompiled(ctx, cp)
		if err != nil {
			t.Fatal(err)
		}
		if res.Outputs["out"] != 43 {
			t.Fatalf("compiled output = %v", res.Outputs["out"])
		}
		for _, name := range []string{"memo.double", "memo.add"} {
			if n := calls[name].Load(); n != 1 {
				t.Errorf("%s executed %d times; compiled replay missed the interpreted cache", name, n)
			}
		}
		for _, st := range res.Steps {
			if !st.Cached {
				t.Errorf("compiled step %s not served from interpreted cache", st.ID)
			}
		}
	}
	// Compiled run populates the cache; interpreted replay must hit it.
	{
		calls := map[string]*atomic.Int64{}
		reg := memoRegistry(t, calls)
		eng := NewEngine(reg, nil, WithCache(newMapCache(), "envA"))
		cp, err := Compile(memoWorkflow(), reg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := eng.RunCompiled(ctx, cp); err != nil {
			t.Fatal(err)
		}
		res, err := eng.Run(ctx, memoWorkflow())
		if err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"memo.double", "memo.add"} {
			if n := calls[name].Load(); n != 1 {
				t.Errorf("%s executed %d times; interpreted replay missed the compiled cache", name, n)
			}
		}
		for _, st := range res.Steps {
			if !st.Cached {
				t.Errorf("interpreted step %s not served from compiled cache", st.ID)
			}
		}
	}
}

func TestCompiledErrorShapes(t *testing.T) {
	reg := buildTestRegistry(t)
	eng := NewEngine(reg, nil)
	ctx := context.Background()

	cases := []struct {
		label string
		wf    *Workflow
	}{
		{"step failure", &Workflow{Name: "failing", Steps: []Step{{ID: "f", Capability: "test.fail"}}}},
		{"contract violation", &Workflow{Name: "bad", Steps: []Step{{ID: "b", Capability: "test.badimpl"}}}},
	}
	for _, tc := range cases {
		_, interpErr := eng.Run(ctx, tc.wf)
		cp, err := Compile(tc.wf, reg)
		if err != nil {
			t.Fatalf("%s: %v", tc.label, err)
		}
		_, compErr := eng.RunCompiled(ctx, cp)
		if interpErr == nil || compErr == nil {
			t.Fatalf("%s: want errors, got %v / %v", tc.label, interpErr, compErr)
		}
		if interpErr.Error() != compErr.Error() {
			t.Errorf("%s: error text diverges:\n  interpreted: %v\n  compiled:    %v",
				tc.label, interpErr, compErr)
		}
		var se *StepError
		if !asStepError(compErr, &se) {
			t.Errorf("%s: compiled error is not a *StepError: %T", tc.label, compErr)
		}
	}
}

func asStepError(err error, target **StepError) bool {
	se, ok := err.(*StepError)
	if ok {
		*target = se
	}
	return ok
}

func TestCompiledEnvFingerprintSeparation(t *testing.T) {
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	cache := newMapCache()
	cp, err := Compile(memoWorkflow(), reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	engA := NewEngine(reg, nil, WithCache(cache, "envA"))
	engB := NewEngine(reg, nil, WithCache(cache, "envB"))

	if _, err := engA.RunCompiled(ctx, cp); err != nil {
		t.Fatal(err)
	}
	// Different environment, shared plan and cache: must execute again,
	// not hit envA's entries.
	if _, err := engB.RunCompiled(ctx, cp); err != nil {
		t.Fatal(err)
	}
	if n := calls["memo.double"].Load(); n != 2 {
		t.Errorf("memo.double executed %d times, want 2 (env separation)", n)
	}
	// Back to envA: the memoized vector was displaced by envB, but the
	// recomputed digests must still hit envA's cache entries.
	res, err := engA.RunCompiled(ctx, cp)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Steps {
		if !st.Cached {
			t.Errorf("envA replay step %s not cached after memo displacement", st.ID)
		}
	}
	if n := calls["memo.double"].Load(); n != 2 {
		t.Errorf("memo.double executed %d times after envA replay, want still 2", n)
	}
}

// TestCompiledWarmReplayAllocs pins the allocation budget of a fully
// cached compiled replay. The Result and its maps escape to the
// caller by design; everything else (scratch, fingerprints, input
// maps) must be pooled or memoized. The ceiling has ~2x headroom over
// the measured cost so it catches regressions, not jitter.
func TestCompiledWarmReplayAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("alloc accounting is unreliable under -short (race) runs")
	}
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	eng := NewEngine(reg, nil, WithCache(newMapCache(), "envA"), WithParallelism(4))
	cp, err := Compile(memoWorkflow(), reg)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.RunCompiled(ctx, cp); err != nil {
		t.Fatal(err) // populates the cache; replays below are fully warm
	}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := eng.RunCompiled(ctx, cp); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("warm compiled replay: %.1f allocs/op", avg)
	const ceiling = 30
	if avg > ceiling {
		t.Errorf("warm compiled replay allocates %.1f/op, budget %d", avg, ceiling)
	}
}

package workflow

// Step-memoization contract of the engine: pure steps with
// deterministic fingerprints are served from the Cache across runs,
// impure steps (and everything downstream of them) always execute,
// and fingerprints separate distinct literals and distinct
// environments so a hit is never wrong.

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"arachnet/internal/registry"
)

// mapCache is a test Cache with call counters.
type mapCache struct {
	mu   sync.Mutex
	m    map[string]map[string]any
	gets atomic.Int64
	hits atomic.Int64
	puts atomic.Int64
}

func newMapCache() *mapCache { return &mapCache{m: map[string]map[string]any{}} }

func (c *mapCache) Get(key string) (map[string]any, bool) {
	c.gets.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

func (c *mapCache) Put(key string, out map[string]any) {
	c.puts.Add(1)
	c.mu.Lock()
	defer c.mu.Unlock()
	c.m[key] = out
}

// memoRegistry registers a pure doubler, a pure adder, and an impure
// counter source, each counting invocations.
func memoRegistry(t testing.TB, calls map[string]*atomic.Int64) *registry.Registry {
	t.Helper()
	r := registry.New()
	count := func(name string) *atomic.Int64 {
		c := &atomic.Int64{}
		calls[name] = c
		return c
	}
	dc := count("memo.double")
	r.MustRegister(registry.Capability{
		Name: "memo.double", Framework: "memo", Description: "double a number",
		Inputs:  []registry.Port{{Name: "n", Type: registry.TInt}},
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Pure:    true,
		Impl: func(c *registry.Call) error {
			dc.Add(1)
			v, _ := c.Input("n")
			c.Out["n"] = v.(int) * 2
			return nil
		},
	})
	ac := count("memo.add")
	r.MustRegister(registry.Capability{
		Name: "memo.add", Framework: "memo", Description: "add two numbers",
		Inputs: []registry.Port{
			{Name: "a", Type: registry.TInt},
			{Name: "b", Type: registry.TInt},
		},
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Pure:    true,
		Impl: func(c *registry.Call) error {
			ac.Add(1)
			a, _ := c.Input("a")
			b, _ := c.Input("b")
			c.Out["n"] = a.(int) + b.(int)
			return nil
		},
	})
	ic := count("memo.impure")
	r.MustRegister(registry.Capability{
		Name: "memo.impure", Framework: "memo", Description: "an impure source",
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		// Pure deliberately false.
		Impl: func(c *registry.Call) error {
			ic.Add(1)
			c.Out["n"] = 7
			return nil
		},
	})
	return r
}

func memoWorkflow() *Workflow {
	return &Workflow{
		Name: "memo",
		Steps: []Step{
			{ID: "d", Capability: "memo.double", Inputs: map[string]Binding{"n": Lit(21)}},
			{ID: "s", Capability: "memo.add", Inputs: map[string]Binding{
				"a": Ref("d", "n"), "b": Lit(1),
			}},
		},
		Outputs: map[string]string{"out": "s.n"},
	}
}

func TestPureStepsMemoizedAcrossRuns(t *testing.T) {
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	cache := newMapCache()
	eng := NewEngine(reg, nil, WithCache(cache, "envA"))

	r1, err := eng.Run(context.Background(), memoWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.Run(context.Background(), memoWorkflow())
	if err != nil {
		t.Fatal(err)
	}
	if got := r1.Outputs["out"]; got != 43 {
		t.Fatalf("first run output = %v, want 43", got)
	}
	if got := r2.Outputs["out"]; got != 43 {
		t.Fatalf("second run output = %v, want 43", got)
	}
	for _, name := range []string{"memo.double", "memo.add"} {
		if n := calls[name].Load(); n != 1 {
			t.Errorf("%s executed %d times, want 1 (memoized)", name, n)
		}
	}
	for _, st := range r1.Steps {
		if st.Cached {
			t.Errorf("first run step %s unexpectedly cached", st.ID)
		}
	}
	for _, st := range r2.Steps {
		if !st.Cached {
			t.Errorf("second run step %s not served from cache", st.ID)
		}
	}
	if cache.puts.Load() != 2 {
		t.Errorf("cache.Put called %d times, want 2", cache.puts.Load())
	}
}

func TestImpureStepAndDownstreamNeverMemoized(t *testing.T) {
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	cache := newMapCache()
	eng := NewEngine(reg, nil, WithCache(cache, "envA"))

	wf := &Workflow{
		Name: "impure-chain",
		Steps: []Step{
			{ID: "i", Capability: "memo.impure"},
			// Pure, but downstream of an impure producer: its ref input
			// has no deterministic fingerprint, so it must execute.
			{ID: "d", Capability: "memo.double", Inputs: map[string]Binding{"n": Ref("i", "n")}},
		},
		Outputs: map[string]string{"out": "d.n"},
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Run(context.Background(), wf); err != nil {
			t.Fatal(err)
		}
	}
	if n := calls["memo.impure"].Load(); n != 2 {
		t.Errorf("impure step executed %d times, want 2", n)
	}
	if n := calls["memo.double"].Load(); n != 2 {
		t.Errorf("pure step downstream of impure executed %d times, want 2", n)
	}
	if cache.puts.Load() != 0 {
		t.Errorf("cache.Put called %d times, want 0", cache.puts.Load())
	}
}

func TestFingerprintSeparatesLiteralsAndEnvironments(t *testing.T) {
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	cache := newMapCache()

	run := func(envFP string, lit int) *Result {
		t.Helper()
		eng := NewEngine(reg, nil, WithCache(cache, envFP))
		wf := &Workflow{
			Name: "lit",
			Steps: []Step{
				{ID: "d", Capability: "memo.double", Inputs: map[string]Binding{"n": Lit(lit)}},
			},
			Outputs: map[string]string{"out": "d.n"},
		}
		res, err := eng.Run(context.Background(), wf)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	if got := run("envA", 3).Outputs["out"]; got != 6 {
		t.Fatalf("got %v, want 6", got)
	}
	// Different literal: must execute, not hit the lit=3 entry.
	if got := run("envA", 5).Outputs["out"]; got != 10 {
		t.Fatalf("got %v, want 10", got)
	}
	// Different environment, same literal: must execute again.
	run("envB", 3)
	if n := calls["memo.double"].Load(); n != 3 {
		t.Errorf("executed %d times, want 3 (no false sharing)", n)
	}
	// Same env, same literal: now a hit.
	run("envA", 3)
	if n := calls["memo.double"].Load(); n != 3 {
		t.Errorf("executed %d times after repeat, want still 3", n)
	}
}

func TestUncanonicalizableLiteralDisablesMemoization(t *testing.T) {
	r := registry.New()
	var execs atomic.Int64
	r.MustRegister(registry.Capability{
		Name: "memo.sink", Framework: "memo", Description: "consumes an opaque value",
		Inputs:  []registry.Port{{Name: "f", Type: registry.DataType("opaque.fn")}},
		Outputs: []registry.Port{{Name: "ok", Type: registry.TBool}},
		Pure:    true,
		Impl: func(c *registry.Call) error {
			execs.Add(1)
			c.Out["ok"] = true
			return nil
		},
	})
	cache := newMapCache()
	eng := NewEngine(r, nil, WithCache(cache, "envA"))
	wf := &Workflow{
		Name: "opaque",
		Steps: []Step{
			// A function literal has no canonical encoding.
			{ID: "s", Capability: "memo.sink", Inputs: map[string]Binding{"f": Lit(func() {})}},
		},
	}
	for i := 0; i < 2; i++ {
		if _, err := eng.Run(context.Background(), wf); err != nil {
			t.Fatal(err)
		}
	}
	if n := execs.Load(); n != 2 {
		t.Errorf("executed %d times, want 2 (not memoizable)", n)
	}
	if cache.puts.Load() != 0 {
		t.Errorf("cache.Put called %d times, want 0", cache.puts.Load())
	}
}

func TestCachedStepsNotifyObservers(t *testing.T) {
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	cache := newMapCache()
	rec := &recordingObserver{}
	eng := NewEngine(reg, nil, WithCache(cache, "envA"), WithObserver(rec))

	if _, err := eng.Run(context.Background(), memoWorkflow()); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(context.Background(), memoWorkflow()); err != nil {
		t.Fatal(err)
	}
	if len(rec.started) != 4 || len(rec.finished) != 4 {
		t.Fatalf("observer saw %d starts / %d finishes, want 4 / 4",
			len(rec.started), len(rec.finished))
	}
	cached := 0
	for _, st := range rec.finished {
		if st.Cached {
			cached++
		}
	}
	if cached != 2 {
		t.Errorf("observer saw %d cached finishes, want 2", cached)
	}
}

// Package workflow implements ArachNet's executable workflow model: a
// typed DAG of capability invocations with static validation, an
// execution engine with provenance recording, and the quality-check
// machinery SolutionWeaver weaves into generated solutions.
//
// # Step memoization
//
// An Engine built WithCache consults a Cache before executing each
// step whose result is provably reusable, and stores the outputs of
// such steps after they run. Reusability is decided per step from a
// deterministic fingerprint of the computation, not of the values
// flowing through it: a step is fingerprintable when its capability is
// registry.Pure, every literal input canonicalizes deterministically,
// and every referenced producer step is itself fingerprintable. The
// fingerprint hashes the capability name, the engine's environment
// fingerprint, each literal input's canonical encoding, and — for
// reference inputs — the producing step's fingerprint plus the port
// read. Two steps with equal fingerprints therefore denote the same
// pure computation over the same environment, so the cached output map
// may be served verbatim; impure steps (and anything downstream of
// them) always execute. Cache hits still fire Observer callbacks, with
// StepStat.Cached set.
//
// WithEnvKeyer turns this into incremental re-execution: when the
// environment fingerprint is scoped per capability to the facets it
// actually reads, mutating one facet leaves every other step's
// fingerprint intact, so a re-run after the mutation executes only the
// dirty subgraph (the facet's readers and, via fingerprint chaining,
// their downstreams) and replays the rest from cache.
package workflow

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"arachnet/internal/registry"
)

// Binding wires one input port of a step to either a literal value or
// to an output of an earlier step (Ref in "stepID.port" form). Exactly
// one of the two must be set.
type Binding struct {
	Literal any    `json:"literal,omitempty"`
	Ref     string `json:"ref,omitempty"`
}

// IsRef reports whether the binding references another step's output.
func (b Binding) IsRef() bool { return b.Ref != "" }

// Validate rejects ambiguous bindings that set both a literal value
// and a reference.
func (b Binding) Validate() error {
	if b.Ref != "" && b.Literal != nil {
		return fmt.Errorf("%w: literal %v vs ref %q", ErrAmbiguousBinding, b.Literal, b.Ref)
	}
	return nil
}

// Lit makes a literal binding.
func Lit(v any) Binding { return Binding{Literal: v} }

// Ref makes a reference binding to step "id" output "port".
func Ref(id, port string) Binding { return Binding{Ref: id + "." + port} }

// Step is one capability invocation inside a workflow.
type Step struct {
	ID         string             `json:"id"`
	Capability string             `json:"capability"`
	Inputs     map[string]Binding `json:"inputs,omitempty"`
	// Phase labels the step for reporting ("mapping", "impact",
	// "temporal", "synthesis", ...).
	Phase string `json:"phase,omitempty"`
	// Note is a free-form design annotation carried into generated code.
	Note string `json:"note,omitempty"`
	// Affinity places the step for distributed execution. Empty (the
	// default) lets an engine Dispatcher take the step if it knows how;
	// AffinityCoordinator pins it to the coordinator process.
	Affinity string `json:"affinity,omitempty"`
}

// AffinityCoordinator pins a step to the coordinator: it is never
// offered to a Dispatcher even when its capability is pure.
const AffinityCoordinator = "coordinator"

// QualityKind classifies embedded quality checks.
type QualityKind string

// Quality-check kinds, mirroring the paper's SolutionWeaver description:
// consistency verification across data sources, sanity checking of
// results, and uncertainty quantification.
const (
	CheckConsistency QualityKind = "consistency"
	CheckSanity      QualityKind = "sanity"
	CheckUncertainty QualityKind = "uncertainty"
)

// QualityCheck is a non-fatal assertion over a produced value.
type QualityCheck struct {
	Name string      `json:"name"`
	Kind QualityKind `json:"kind"`
	Ref  string      `json:"ref"` // "stepID.port" to inspect
	// Assert is executable and never serialized.
	Assert func(v any) (ok bool, note string) `json:"-"`
}

// Workflow is an ordered list of steps; references must point backward,
// which makes the graph acyclic by construction.
type Workflow struct {
	Name    string            `json:"name"`
	Query   string            `json:"query,omitempty"`
	Steps   []Step            `json:"steps"`
	Outputs map[string]string `json:"outputs,omitempty"` // result name → "stepID.port"
	Checks  []QualityCheck    `json:"checks,omitempty"`
}

// Frameworks returns the distinct frameworks the workflow touches,
// sorted — the integration-breadth metric the paper reports per case
// study.
func (w *Workflow) Frameworks(reg *registry.Registry) []string {
	set := map[string]bool{}
	for _, s := range w.Steps {
		if c, err := reg.Get(s.Capability); err == nil {
			set[c.Framework] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// CapabilityNames returns the capability of each step in order.
func (w *Workflow) CapabilityNames() []string {
	out := make([]string, len(w.Steps))
	for i, s := range w.Steps {
		out[i] = s.Capability
	}
	return out
}

// Validation errors.
var (
	ErrEmptyWorkflow    = errors.New("workflow: no steps")
	ErrUnknownCap       = errors.New("workflow: unknown capability")
	ErrBadRef           = errors.New("workflow: unresolved reference")
	ErrTypeMismatch     = errors.New("workflow: type mismatch")
	ErrUnboundInput     = errors.New("workflow: required input unbound")
	ErrDuplicateStep    = errors.New("workflow: duplicate step id")
	ErrAmbiguousBinding = errors.New("workflow: binding sets both literal and ref")
)

// StepError is the typed failure of one workflow step. It wraps the
// capability's error (or a contract violation) so callers can pick the
// failing step out of a pipeline error chain with errors.As.
type StepError struct {
	Step       string
	Capability string
	Err        error
}

func (e *StepError) Error() string {
	return fmt.Sprintf("workflow: step %q (%s): %v", e.Step, e.Capability, e.Err)
}

func (e *StepError) Unwrap() error { return e.Err }

// Validate statically checks the workflow against a registry: step IDs
// unique, capabilities known, every required input bound, references
// resolving to earlier steps with matching port types, and declared
// outputs resolvable.
func (w *Workflow) Validate(reg *registry.Registry) error {
	if len(w.Steps) == 0 {
		return ErrEmptyWorkflow
	}
	produced := map[string]registry.DataType{} // "step.port" → type
	seen := map[string]bool{}
	for i, s := range w.Steps {
		if s.ID == "" {
			return fmt.Errorf("workflow: step %d has empty id", i)
		}
		// Refs are "stepID.port"; a dot inside the ID would make them
		// ambiguous and corrupt the engine's dependency graph.
		if strings.Contains(s.ID, ".") {
			return fmt.Errorf("workflow: step id %q must not contain '.'", s.ID)
		}
		if seen[s.ID] {
			return fmt.Errorf("%w: %q", ErrDuplicateStep, s.ID)
		}
		seen[s.ID] = true
		capb, err := reg.Get(s.Capability)
		if err != nil {
			return fmt.Errorf("%w: step %q wants %q", ErrUnknownCap, s.ID, s.Capability)
		}
		for _, in := range capb.Inputs {
			b, bound := s.Inputs[in.Name]
			if !bound {
				if in.Optional {
					continue
				}
				return fmt.Errorf("%w: step %q input %q", ErrUnboundInput, s.ID, in.Name)
			}
			if err := b.Validate(); err != nil {
				return fmt.Errorf("step %q input %q: %w", s.ID, in.Name, err)
			}
			if b.IsRef() {
				srcType, ok := produced[b.Ref]
				if !ok {
					return fmt.Errorf("%w: step %q input %q references %q", ErrBadRef, s.ID, in.Name, b.Ref)
				}
				if srcType != in.Type {
					return fmt.Errorf("%w: step %q input %q wants %s, ref %q provides %s",
						ErrTypeMismatch, s.ID, in.Name, in.Type, b.Ref, srcType)
				}
			}
		}
		// Unknown extra bindings are an authoring bug.
		for name := range s.Inputs {
			if _, ok := capb.InputPort(name); !ok {
				return fmt.Errorf("workflow: step %q binds unknown input %q of %q", s.ID, name, s.Capability)
			}
		}
		for _, out := range capb.Outputs {
			produced[s.ID+"."+out.Name] = out.Type
		}
	}
	for name, ref := range w.Outputs {
		if _, ok := produced[ref]; !ok {
			return fmt.Errorf("%w: workflow output %q references %q", ErrBadRef, name, ref)
		}
	}
	for _, chk := range w.Checks {
		if _, ok := produced[chk.Ref]; !ok {
			return fmt.Errorf("%w: quality check %q references %q", ErrBadRef, chk.Name, chk.Ref)
		}
		if chk.Assert == nil {
			return fmt.Errorf("workflow: quality check %q has no assertion", chk.Name)
		}
	}
	return nil
}

// StepStat records one executed step.
type StepStat struct {
	ID         string        `json:"id"`
	Capability string        `json:"capability"`
	Duration   time.Duration `json:"duration,omitempty"`
	// Err is surfaced through the run's error chain; serializers carry
	// its text separately.
	Err error `json:"-"`
	// Cached marks a step whose outputs were served from the engine's
	// Cache instead of invoking the capability.
	Cached bool `json:"cached,omitempty"`
	// Remote marks a step executed by a Dispatcher (worker fleet)
	// rather than inline by the engine.
	Remote bool `json:"remote,omitempty"`
}

// CheckResult records one evaluated quality check.
type CheckResult struct {
	Name   string      `json:"name"`
	Kind   QualityKind `json:"kind"`
	Passed bool        `json:"passed"`
	Note   string      `json:"note,omitempty"`
}

// Result is the outcome of a workflow run.
type Result struct {
	// Values holds every produced "stepID.port" value.
	Values map[string]any `json:"values,omitempty"`
	// Outputs resolves the workflow's declared outputs by name.
	Outputs map[string]any `json:"outputs,omitempty"`
	// Steps records per-step execution stats in order.
	Steps []StepStat `json:"steps,omitempty"`
	// Checks records quality-check outcomes in order.
	Checks []CheckResult `json:"checks,omitempty"`
	// Provenance is a human-readable execution trace.
	Provenance []string `json:"provenance,omitempty"`
}

// QualityScore returns the fraction of passed checks (1 when none).
func (r *Result) QualityScore() float64 {
	if len(r.Checks) == 0 {
		return 1
	}
	passed := 0
	for _, c := range r.Checks {
		if c.Passed {
			passed++
		}
	}
	return float64(passed) / float64(len(r.Checks))
}

// Observer watches per-step execution of one Run: StepStarted fires as
// a step is handed to a worker, StepFinished when it reports back (a
// non-nil StepStat.Err marks failure, including output-contract
// violations). Both methods are invoked from the run's scheduler
// goroutine, so calls within one Run are serialized; an Observer
// shared across concurrent Runs must be safe for concurrent use.
// Observers watch — they cannot veto. To abort a run from an observer,
// cancel the run's context.
type Observer interface {
	StepStarted(id, capability string)
	StepFinished(stat StepStat)
}

// Cache memoizes step results across runs. Keys are the deterministic
// step fingerprints described in the package documentation; values are
// the output maps pure capabilities produced for that fingerprint.
// Implementations must be safe for concurrent use, and callers must
// treat stored output maps (and the values inside them) as immutable —
// one map may be shared by many runs. A Cache is free to drop entries
// at any time (Get simply misses), so it can be size-bounded.
type Cache interface {
	// Get returns the cached output map for a step fingerprint.
	Get(key string) (map[string]any, bool)
	// Put stores the output map a step produced under its fingerprint.
	Put(key string, outputs map[string]any)
}

// Dispatcher routes a step to remote execution — a worker fleet, a
// shard owner, anything on the far side of a transport. The engine
// offers every pure step whose Affinity is not AffinityCoordinator;
// the dispatcher either handles it (handled=true, returning the
// complete output map or an execution error) or declines
// (handled=false), in which case the engine runs the capability
// locally. fingerprint is the step's deterministic cache key ("" when
// the step is not memoizable) so remote workers can keep their own
// result caches. Implementations must be safe for concurrent use and
// must return output maps the caller may treat as immutable.
type Dispatcher interface {
	DispatchStep(ctx context.Context, capb *registry.Capability, in map[string]any, env any, fingerprint string) (out map[string]any, handled bool, err error)
}

// Engine executes validated workflows against a registry and a shared
// environment value passed to every capability call. Steps whose
// inputs do not depend on each other run concurrently, bounded by the
// engine's parallelism; the dependency graph is derived from Ref
// bindings. An Engine is stateless and safe for concurrent Run calls.
type Engine struct {
	reg         *registry.Registry
	env         any
	parallelism int
	observers   []Observer
	cache       Cache
	envFP       string
	envKeyer    func(*registry.Capability) string
	dispatcher  Dispatcher
}

// EngineOption configures an Engine.
type EngineOption func(*Engine)

// WithParallelism bounds how many independent steps run concurrently
// (default GOMAXPROCS; values below 1 mean sequential execution).
func WithParallelism(n int) EngineOption {
	return func(e *Engine) { e.parallelism = n }
}

// WithObserver attaches a step-level observer to every Run of this
// engine. May be given multiple times; observers fire in attachment
// order.
func WithObserver(o Observer) EngineOption {
	return func(e *Engine) {
		if o != nil {
			e.observers = append(e.observers, o)
		}
	}
}

// WithCache memoizes pure steps through c. envFingerprint must
// uniquely identify the execution environment the engine runs against:
// it is mixed into every step fingerprint, so results computed over
// one environment are never served to another. A nil cache disables
// memoization (the default).
func WithCache(c Cache, envFingerprint string) EngineOption {
	return func(e *Engine) {
		e.cache = c
		e.envFP = envFingerprint
	}
}

// WithEnvKeyer refines WithCache's single environment fingerprint into
// a per-capability one: keyer is consulted for each step's capability
// and its return value replaces the engine-wide fingerprint in that
// step's cache key. This is the dirty-set seam incremental
// re-execution builds on — a keyer that scopes the fingerprint to the
// environment facets a capability Reads keeps the keys of unaffected
// steps stable across an environment mutation, so only steps whose own
// environment view (or an upstream's) changed get fresh fingerprints
// and actually run; everything else replays from cache. Dirtiness
// propagates automatically because each step's fingerprint chains its
// upstreams'. A keyer returning "" for a capability falls back to the
// WithCache fingerprint. Ignored without a cache.
func WithEnvKeyer(keyer func(*registry.Capability) string) EngineOption {
	return func(e *Engine) { e.envKeyer = keyer }
}

// WithDispatcher offers pure, coordinator-unpinned steps to d before
// running them locally. The engine still owns scheduling, caching, and
// contract verification; the dispatcher only decides *where* a step's
// capability executes. A nil dispatcher keeps everything local (the
// default).
func WithDispatcher(d Dispatcher) EngineOption {
	return func(e *Engine) { e.dispatcher = d }
}

// NewEngine builds an engine.
func NewEngine(reg *registry.Registry, env any, opts ...EngineOption) *Engine {
	e := &Engine{reg: reg, env: env, parallelism: runtime.GOMAXPROCS(0)}
	for _, opt := range opts {
		opt(e)
	}
	if e.parallelism < 1 {
		e.parallelism = 1
	}
	return e
}

// stepDone is a completed step reported back to the scheduler.
type stepDone struct {
	idx  int
	capb *registry.Capability
	stat StepStat
	out  map[string]any
}

// fingerprints computes the per-step cache keys for a validated
// workflow, in step order (steps only reference earlier steps, so one
// forward pass suffices). An empty string marks a step that must not
// be memoized: its capability is not Pure, a literal input has no
// deterministic canonical form, or it depends on such a step.
func (e *Engine) fingerprints(w *Workflow, index map[string]int) []string {
	fps := make([]string, len(w.Steps))
	// One reusable buffer keeps fingerprinting allocation-free on the
	// hot serving path; keys are raw 32-byte digests (in-process map
	// keys, never displayed).
	buf := make([]byte, 0, 256)
	var names []string
	// Each part is length-prefixed so parts containing any byte
	// sequence (literals come from arbitrary user queries) can never
	// forge a field boundary and collide two distinct input sets.
	field := func(b []byte, parts ...string) []byte {
		for _, p := range parts {
			b = strconv.AppendInt(b, int64(len(p)), 10)
			b = append(b, ':')
			b = append(b, p...)
		}
		return b
	}
	for i, s := range w.Steps {
		capb, err := e.reg.Get(s.Capability)
		if err != nil || !capb.Pure {
			continue
		}
		envKey := e.envFP
		if e.envKeyer != nil {
			if k := e.envKeyer(capb); k != "" {
				envKey = k
			}
		}
		buf = field(buf[:0], "cap", s.Capability, "env", envKey)
		names = names[:0]
		for name := range s.Inputs {
			names = append(names, name)
		}
		sort.Strings(names)
		ok := true
		for _, name := range names {
			b := s.Inputs[name]
			if b.IsRef() {
				up := fps[index[RefStepID(b.Ref)]]
				if up == "" {
					ok = false
					break
				}
				buf = field(buf, "r", name, up, RefPort(b.Ref))
				continue
			}
			lit, err := canonicalValue(b.Literal)
			if err != nil {
				ok = false
				break
			}
			buf = field(buf, "l", name, lit)
		}
		if ok {
			sum := sha256.Sum256(buf)
			fps[i] = string(sum[:])
		}
	}
	return fps
}

// canonicalValue renders a literal input deterministically. Scalars
// are encoded directly; everything else round-trips through
// encoding/json, whose map-key ordering and struct-field ordering are
// stable. Values JSON cannot represent (functions, channels, cyclic
// graphs) make the step non-memoizable rather than silently colliding.
func canonicalValue(v any) (string, error) {
	switch x := v.(type) {
	case nil:
		return "z", nil
	case string:
		return "s" + x, nil
	case bool:
		return "b" + strconv.FormatBool(x), nil
	case int:
		return "i" + strconv.Itoa(x), nil
	case int64:
		return "i" + strconv.FormatInt(x, 10), nil
	case float64:
		return "f" + strconv.FormatFloat(x, 'g', -1, 64), nil
	}
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return "j" + string(b), nil
}

// Run validates and executes the workflow. Ready steps (all Ref
// dependencies satisfied) execute concurrently up to the engine's
// parallelism. A step error stops new steps from launching, waits for
// in-flight ones, and is returned as a *StepError; cancellation of ctx
// aborts the run the same way with the context's error. Quality checks
// never abort.
func (e *Engine) Run(ctx context.Context, w *Workflow) (*Result, error) {
	if err := w.Validate(e.reg); err != nil {
		return nil, err
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Derive the dependency graph from Ref bindings.
	n := len(w.Steps)
	index := make(map[string]int, n) // step ID → index
	for i, s := range w.Steps {
		index[s.ID] = i
	}
	dependents := make([][]int, n)
	indegree := make([]int, n)
	for i, s := range w.Steps {
		from := map[int]bool{}
		for _, b := range s.Inputs {
			if !b.IsRef() {
				continue
			}
			src := index[RefStepID(b.Ref)]
			if !from[src] {
				from[src] = true
				dependents[src] = append(dependents[src], i)
				indegree[i]++
			}
		}
	}

	res := &Result{Values: map[string]any{}, Outputs: map[string]any{}}
	var ready []int
	for i := 0; i < n; i++ {
		if indegree[i] == 0 {
			ready = append(ready, i)
		}
	}

	// Cache keys are computed up front from the plan alone; a step with
	// an empty fingerprint is never memoized. A dispatcher needs them
	// even without an engine cache: remote workers key their local
	// caches by the same fingerprints.
	var fps []string
	if e.cache != nil || e.dispatcher != nil {
		fps = e.fingerprints(w, index)
	}

	// Scheduler loop: the only goroutine that touches res; workers get
	// a prebuilt input map and report on the done channel.
	done := make(chan stepDone)
	running := 0
	var firstErr error

	// settle folds one completed step into the result: stats,
	// provenance, output-contract verification, cache write-back, and
	// dependent release. It runs only on the scheduler goroutine.
	settle := func(d stepDone) {
		s := w.Steps[d.idx]
		res.Steps = append(res.Steps, d.stat)
		if d.stat.Err != nil {
			res.Provenance = append(res.Provenance,
				fmt.Sprintf("step %s (%s): FAILED: %v", s.ID, s.Capability, d.stat.Err))
			if firstErr == nil {
				firstErr = &StepError{Step: s.ID, Capability: s.Capability, Err: d.stat.Err}
			}
			e.stepFinished(d.stat)
			return
		}
		// Verify the implementation honored its contract.
		var contractErr error
		for _, out := range d.capb.Outputs {
			v, ok := d.out[out.Name]
			if !ok {
				contractErr = fmt.Errorf("capability %q did not produce output %q", s.Capability, out.Name)
				break
			}
			res.Values[s.ID+"."+out.Name] = v
		}
		if contractErr != nil {
			if firstErr == nil {
				firstErr = &StepError{Step: s.ID, Capability: s.Capability, Err: contractErr}
			}
			notify := d.stat
			notify.Err = contractErr
			e.stepFinished(notify)
			return
		}
		if d.stat.Cached {
			res.Provenance = append(res.Provenance,
				fmt.Sprintf("step %s (%s): ok (cached)", s.ID, s.Capability))
		} else {
			if e.cache != nil && fps[d.idx] != "" {
				e.cache.Put(fps[d.idx], d.out)
			}
			res.Provenance = append(res.Provenance,
				fmt.Sprintf("step %s (%s): ok in %v", s.ID, s.Capability, d.stat.Duration.Round(time.Microsecond)))
		}
		e.stepFinished(d.stat)
		for _, j := range dependents[d.idx] {
			indegree[j]--
			if indegree[j] == 0 {
				ready = append(ready, j)
			}
		}
	}

	launch := func(i int) {
		s := w.Steps[i]
		capb, _ := e.reg.Get(s.Capability)
		for _, o := range e.observers {
			o.StepStarted(s.ID, s.Capability)
		}
		// Memoized pure step: serve the cached outputs inline on the
		// scheduler goroutine — no worker, no capability call.
		if e.cache != nil && fps[i] != "" {
			if out, ok := e.cache.Get(fps[i]); ok {
				settle(stepDone{
					idx:  i,
					capb: capb,
					stat: StepStat{ID: s.ID, Capability: s.Capability, Cached: true},
					out:  out,
				})
				return
			}
		}
		in := make(map[string]any, len(s.Inputs))
		for name, b := range s.Inputs {
			if b.IsRef() {
				in[name] = res.Values[b.Ref]
			} else {
				in[name] = b.Literal
			}
		}
		running++
		// Dispatchable step: offer it to the fleet; a decline falls back
		// to local execution in the same worker goroutine.
		if e.dispatcher != nil && capb.Pure && s.Affinity != AffinityCoordinator {
			fp := fps[i]
			go func() {
				start := time.Now()
				out, handled, err := func() (out map[string]any, handled bool, err error) {
					// Dispatch shares the panic containment of local
					// capability calls: a broken merge or transport must
					// fail the step, not the process.
					defer func() {
						if r := recover(); r != nil {
							handled, err = true, fmt.Errorf("dispatch panicked: %v", r)
						}
					}()
					return e.dispatcher.DispatchStep(ctx, capb, in, e.env, fp)
				}()
				if handled {
					done <- stepDone{
						idx:  i,
						capb: capb,
						stat: StepStat{ID: s.ID, Capability: s.Capability, Duration: time.Since(start), Err: err, Remote: true},
						out:  out,
					}
					return
				}
				call := &registry.Call{In: in, Out: map[string]any{}, Env: e.env, Ctx: ctx}
				err = e.safeCall(capb, call)
				done <- stepDone{
					idx:  i,
					capb: capb,
					stat: StepStat{ID: s.ID, Capability: s.Capability, Duration: time.Since(start), Err: err},
					out:  call.Out,
				}
			}()
			return
		}
		go func() {
			call := &registry.Call{In: in, Out: map[string]any{}, Env: e.env, Ctx: ctx}
			start := time.Now()
			err := e.safeCall(capb, call)
			done <- stepDone{
				idx:  i,
				capb: capb,
				stat: StepStat{ID: s.ID, Capability: s.Capability, Duration: time.Since(start), Err: err},
				out:  call.Out,
			}
		}()
	}

	for {
		for firstErr == nil && ctx.Err() == nil && len(ready) > 0 && running < e.parallelism {
			next := ready[0]
			ready = ready[1:]
			launch(next)
		}
		if running == 0 {
			break
		}
		d := <-done
		running--
		settle(d)
	}

	// Stable reporting: stats in workflow step order regardless of
	// completion order.
	sort.Slice(res.Steps, func(i, j int) bool { return index[res.Steps[i].ID] < index[res.Steps[j].ID] })

	if firstErr != nil {
		return res, firstErr
	}
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("workflow %q: %w", w.Name, err)
	}
	for name, ref := range w.Outputs {
		res.Outputs[name] = res.Values[ref]
	}
	for _, chk := range w.Checks {
		ok, note := chk.Assert(res.Values[chk.Ref])
		res.Checks = append(res.Checks, CheckResult{Name: chk.Name, Kind: chk.Kind, Passed: ok, Note: note})
		status := "pass"
		if !ok {
			status = "FAIL"
		}
		res.Provenance = append(res.Provenance, fmt.Sprintf("check %s [%s]: %s %s", chk.Name, chk.Kind, status, note))
	}
	return res, nil
}

// safeCall invokes a capability with panic containment: a panicking
// implementation fails its step, not the process serving every other
// caller.
func (e *Engine) safeCall(capb *registry.Capability, call *registry.Call) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("capability panicked: %v", r)
		}
	}()
	return capb.Impl(call)
}

// stepFinished reports one completed step to every observer.
func (e *Engine) stepFinished(stat StepStat) {
	for _, o := range e.observers {
		o.StepFinished(stat)
	}
}

// RefStepID extracts the producing step ID from a "stepID.port" ref.
// This is the one parser of the ref wire format; planners and tests
// share it rather than re-splitting refs themselves.
func RefStepID(ref string) string {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return ref[:i]
	}
	return ref
}

// RefPort extracts the port name from a "stepID.port" ref, or "" when
// the ref names a whole step.
func RefPort(ref string) string {
	if i := strings.IndexByte(ref, '.'); i >= 0 {
		return ref[i+1:]
	}
	return ""
}

// Describe renders a compact human-readable plan of the workflow.
func (w *Workflow) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %q (%d steps)\n", w.Name, len(w.Steps))
	for i, s := range w.Steps {
		fmt.Fprintf(&b, "  %2d. [%s] %s", i+1, s.ID, s.Capability)
		if s.Phase != "" {
			fmt.Fprintf(&b, "  phase=%s", s.Phase)
		}
		b.WriteByte('\n')
		names := make([]string, 0, len(s.Inputs))
		for n := range s.Inputs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			bd := s.Inputs[n]
			if bd.IsRef() {
				fmt.Fprintf(&b, "        %s ← %s\n", n, bd.Ref)
			} else {
				fmt.Fprintf(&b, "        %s = %v\n", n, bd.Literal)
			}
		}
	}
	if len(w.Outputs) > 0 {
		names := make([]string, 0, len(w.Outputs))
		for n := range w.Outputs {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("  outputs:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "        %s ← %s\n", n, w.Outputs[n])
		}
	}
	return b.String()
}

// Package workflow implements ArachNet's executable workflow model: a
// typed DAG of capability invocations with static validation, an
// execution engine with provenance recording, and the quality-check
// machinery SolutionWeaver weaves into generated solutions.
package workflow

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"arachnet/internal/registry"
)

// Binding wires one input port of a step to either a literal value or
// to an output of an earlier step (Ref in "stepID.port" form). Exactly
// one of the two must be set.
type Binding struct {
	Literal any
	Ref     string
}

// IsRef reports whether the binding references another step's output.
func (b Binding) IsRef() bool { return b.Ref != "" }

// Lit makes a literal binding.
func Lit(v any) Binding { return Binding{Literal: v} }

// Ref makes a reference binding to step "id" output "port".
func Ref(id, port string) Binding { return Binding{Ref: id + "." + port} }

// Step is one capability invocation inside a workflow.
type Step struct {
	ID         string
	Capability string
	Inputs     map[string]Binding
	// Phase labels the step for reporting ("mapping", "impact",
	// "temporal", "synthesis", ...).
	Phase string
	// Note is a free-form design annotation carried into generated code.
	Note string
}

// QualityKind classifies embedded quality checks.
type QualityKind string

// Quality-check kinds, mirroring the paper's SolutionWeaver description:
// consistency verification across data sources, sanity checking of
// results, and uncertainty quantification.
const (
	CheckConsistency QualityKind = "consistency"
	CheckSanity      QualityKind = "sanity"
	CheckUncertainty QualityKind = "uncertainty"
)

// QualityCheck is a non-fatal assertion over a produced value.
type QualityCheck struct {
	Name   string
	Kind   QualityKind
	Ref    string // "stepID.port" to inspect
	Assert func(v any) (ok bool, note string)
}

// Workflow is an ordered list of steps; references must point backward,
// which makes the graph acyclic by construction.
type Workflow struct {
	Name    string
	Query   string
	Steps   []Step
	Outputs map[string]string // result name → "stepID.port"
	Checks  []QualityCheck
}

// Frameworks returns the distinct frameworks the workflow touches,
// sorted — the integration-breadth metric the paper reports per case
// study.
func (w *Workflow) Frameworks(reg *registry.Registry) []string {
	set := map[string]bool{}
	for _, s := range w.Steps {
		if c, err := reg.Get(s.Capability); err == nil {
			set[c.Framework] = true
		}
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// CapabilityNames returns the capability of each step in order.
func (w *Workflow) CapabilityNames() []string {
	out := make([]string, len(w.Steps))
	for i, s := range w.Steps {
		out[i] = s.Capability
	}
	return out
}

// Validation errors.
var (
	ErrEmptyWorkflow = errors.New("workflow: no steps")
	ErrUnknownCap    = errors.New("workflow: unknown capability")
	ErrBadRef        = errors.New("workflow: unresolved reference")
	ErrTypeMismatch  = errors.New("workflow: type mismatch")
	ErrUnboundInput  = errors.New("workflow: required input unbound")
	ErrDuplicateStep = errors.New("workflow: duplicate step id")
)

// Validate statically checks the workflow against a registry: step IDs
// unique, capabilities known, every required input bound, references
// resolving to earlier steps with matching port types, and declared
// outputs resolvable.
func (w *Workflow) Validate(reg *registry.Registry) error {
	if len(w.Steps) == 0 {
		return ErrEmptyWorkflow
	}
	produced := map[string]registry.DataType{} // "step.port" → type
	seen := map[string]bool{}
	for i, s := range w.Steps {
		if s.ID == "" {
			return fmt.Errorf("workflow: step %d has empty id", i)
		}
		if seen[s.ID] {
			return fmt.Errorf("%w: %q", ErrDuplicateStep, s.ID)
		}
		seen[s.ID] = true
		cap, err := reg.Get(s.Capability)
		if err != nil {
			return fmt.Errorf("%w: step %q wants %q", ErrUnknownCap, s.ID, s.Capability)
		}
		for _, in := range cap.Inputs {
			b, bound := s.Inputs[in.Name]
			if !bound {
				if in.Optional {
					continue
				}
				return fmt.Errorf("%w: step %q input %q", ErrUnboundInput, s.ID, in.Name)
			}
			if b.IsRef() {
				srcType, ok := produced[b.Ref]
				if !ok {
					return fmt.Errorf("%w: step %q input %q references %q", ErrBadRef, s.ID, in.Name, b.Ref)
				}
				if srcType != in.Type {
					return fmt.Errorf("%w: step %q input %q wants %s, ref %q provides %s",
						ErrTypeMismatch, s.ID, in.Name, in.Type, b.Ref, srcType)
				}
			}
		}
		// Unknown extra bindings are an authoring bug.
		for name := range s.Inputs {
			if _, ok := cap.InputPort(name); !ok {
				return fmt.Errorf("workflow: step %q binds unknown input %q of %q", s.ID, name, s.Capability)
			}
		}
		for _, out := range cap.Outputs {
			produced[s.ID+"."+out.Name] = out.Type
		}
	}
	for name, ref := range w.Outputs {
		if _, ok := produced[ref]; !ok {
			return fmt.Errorf("%w: workflow output %q references %q", ErrBadRef, name, ref)
		}
	}
	for _, chk := range w.Checks {
		if _, ok := produced[chk.Ref]; !ok {
			return fmt.Errorf("%w: quality check %q references %q", ErrBadRef, chk.Name, chk.Ref)
		}
		if chk.Assert == nil {
			return fmt.Errorf("workflow: quality check %q has no assertion", chk.Name)
		}
	}
	return nil
}

// StepStat records one executed step.
type StepStat struct {
	ID         string
	Capability string
	Duration   time.Duration
	Err        error
}

// CheckResult records one evaluated quality check.
type CheckResult struct {
	Name   string
	Kind   QualityKind
	Passed bool
	Note   string
}

// Result is the outcome of a workflow run.
type Result struct {
	// Values holds every produced "stepID.port" value.
	Values map[string]any
	// Outputs resolves the workflow's declared outputs by name.
	Outputs map[string]any
	// Steps records per-step execution stats in order.
	Steps []StepStat
	// Checks records quality-check outcomes in order.
	Checks []CheckResult
	// Provenance is a human-readable execution trace.
	Provenance []string
}

// QualityScore returns the fraction of passed checks (1 when none).
func (r *Result) QualityScore() float64 {
	if len(r.Checks) == 0 {
		return 1
	}
	passed := 0
	for _, c := range r.Checks {
		if c.Passed {
			passed++
		}
	}
	return float64(passed) / float64(len(r.Checks))
}

// Engine executes validated workflows against a registry and a shared
// environment value passed to every capability call.
type Engine struct {
	reg *registry.Registry
	env any
}

// NewEngine builds an engine.
func NewEngine(reg *registry.Registry, env any) *Engine {
	return &Engine{reg: reg, env: env}
}

// Run validates and executes the workflow. Execution is sequential in
// step order (references only point backward). A step error aborts the
// run and is returned wrapped with the step ID; quality checks never
// abort.
func (e *Engine) Run(w *Workflow) (*Result, error) {
	if err := w.Validate(e.reg); err != nil {
		return nil, err
	}
	res := &Result{Values: map[string]any{}, Outputs: map[string]any{}}
	for _, s := range w.Steps {
		cap, _ := e.reg.Get(s.Capability)
		call := &registry.Call{In: map[string]any{}, Out: map[string]any{}, Env: e.env}
		for name, b := range s.Inputs {
			if b.IsRef() {
				call.In[name] = res.Values[b.Ref]
			} else {
				call.In[name] = b.Literal
			}
		}
		start := time.Now()
		err := cap.Impl(call)
		stat := StepStat{ID: s.ID, Capability: s.Capability, Duration: time.Since(start), Err: err}
		res.Steps = append(res.Steps, stat)
		if err != nil {
			res.Provenance = append(res.Provenance, fmt.Sprintf("step %s (%s): FAILED: %v", s.ID, s.Capability, err))
			return res, fmt.Errorf("workflow: step %q (%s): %w", s.ID, s.Capability, err)
		}
		// Verify the implementation honored its contract.
		for _, out := range cap.Outputs {
			v, ok := call.Out[out.Name]
			if !ok {
				return res, fmt.Errorf("workflow: step %q: capability %q did not produce output %q",
					s.ID, s.Capability, out.Name)
			}
			res.Values[s.ID+"."+out.Name] = v
		}
		res.Provenance = append(res.Provenance,
			fmt.Sprintf("step %s (%s): ok in %v", s.ID, s.Capability, stat.Duration.Round(time.Microsecond)))
	}
	for name, ref := range w.Outputs {
		res.Outputs[name] = res.Values[ref]
	}
	for _, chk := range w.Checks {
		ok, note := chk.Assert(res.Values[chk.Ref])
		res.Checks = append(res.Checks, CheckResult{Name: chk.Name, Kind: chk.Kind, Passed: ok, Note: note})
		status := "pass"
		if !ok {
			status = "FAIL"
		}
		res.Provenance = append(res.Provenance, fmt.Sprintf("check %s [%s]: %s %s", chk.Name, chk.Kind, status, note))
	}
	return res, nil
}

// Describe renders a compact human-readable plan of the workflow.
func (w *Workflow) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "workflow %q (%d steps)\n", w.Name, len(w.Steps))
	for i, s := range w.Steps {
		fmt.Fprintf(&b, "  %2d. [%s] %s", i+1, s.ID, s.Capability)
		if s.Phase != "" {
			fmt.Fprintf(&b, "  phase=%s", s.Phase)
		}
		b.WriteByte('\n')
		names := make([]string, 0, len(s.Inputs))
		for n := range s.Inputs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			bd := s.Inputs[n]
			if bd.IsRef() {
				fmt.Fprintf(&b, "        %s ← %s\n", n, bd.Ref)
			} else {
				fmt.Fprintf(&b, "        %s = %v\n", n, bd.Literal)
			}
		}
	}
	if len(w.Outputs) > 0 {
		names := make([]string, 0, len(w.Outputs))
		for n := range w.Outputs {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString("  outputs:\n")
		for _, n := range names {
			fmt.Fprintf(&b, "        %s ← %s\n", n, w.Outputs[n])
		}
	}
	return b.String()
}

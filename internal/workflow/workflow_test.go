package workflow

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"

	"arachnet/internal/registry"
)

// buildTestRegistry creates a tiny three-capability pipeline:
// source (→int) → double (int→int) → render (int→string).
func buildTestRegistry(t testing.TB) *registry.Registry {
	t.Helper()
	r := registry.New()
	r.MustRegister(registry.Capability{
		Name: "test.source", Framework: "test", Description: "produce a number",
		Inputs:  []registry.Port{{Name: "value", Type: registry.TInt}},
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl: func(c *registry.Call) error {
			v, err := c.Input("value")
			if err != nil {
				return err
			}
			c.Out["n"] = v.(int)
			return nil
		},
	})
	r.MustRegister(registry.Capability{
		Name: "test.double", Framework: "test", Description: "double a number",
		Inputs:  []registry.Port{{Name: "n", Type: registry.TInt}},
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl: func(c *registry.Call) error {
			v, err := c.Input("n")
			if err != nil {
				return err
			}
			c.Out["n"] = v.(int) * 2
			return nil
		},
	})
	r.MustRegister(registry.Capability{
		Name: "test.render", Framework: "render", Description: "render a number",
		Inputs:  []registry.Port{{Name: "n", Type: registry.TInt}},
		Outputs: []registry.Port{{Name: "text", Type: registry.TString}},
		Impl: func(c *registry.Call) error {
			v, err := c.Input("n")
			if err != nil {
				return err
			}
			c.Out["text"] = fmt.Sprintf("value=%d", v.(int))
			return nil
		},
	})
	r.MustRegister(registry.Capability{
		Name: "test.fail", Framework: "test", Description: "always fails",
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl:    func(c *registry.Call) error { return errors.New("boom") },
	})
	r.MustRegister(registry.Capability{
		Name: "test.badimpl", Framework: "test", Description: "forgets its output",
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl:    func(c *registry.Call) error { return nil },
	})
	return r
}

func pipeline() *Workflow {
	return &Workflow{
		Name: "test-pipeline",
		Steps: []Step{
			{ID: "src", Capability: "test.source", Inputs: map[string]Binding{"value": Lit(21)}},
			{ID: "dbl", Capability: "test.double", Inputs: map[string]Binding{"n": Ref("src", "n")}},
			{ID: "out", Capability: "test.render", Inputs: map[string]Binding{"n": Ref("dbl", "n")}},
		},
		Outputs: map[string]string{"text": "out.text"},
	}
}

func TestRunPipeline(t *testing.T) {
	reg := buildTestRegistry(t)
	eng := NewEngine(reg, nil)
	res, err := eng.Run(context.Background(), pipeline())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["text"] != "value=42" {
		t.Errorf("output = %v", res.Outputs["text"])
	}
	if len(res.Steps) != 3 {
		t.Errorf("steps = %d", len(res.Steps))
	}
	if len(res.Provenance) != 3 {
		t.Errorf("provenance lines = %d", len(res.Provenance))
	}
	if res.QualityScore() != 1 {
		t.Errorf("quality with no checks = %f", res.QualityScore())
	}
}

func TestValidateCatchesEverything(t *testing.T) {
	reg := buildTestRegistry(t)

	cases := []struct {
		label string
		mut   func(w *Workflow)
		want  error
	}{
		{"empty", func(w *Workflow) { w.Steps = nil }, ErrEmptyWorkflow},
		{"unknown cap", func(w *Workflow) { w.Steps[0].Capability = "test.zzz" }, ErrUnknownCap},
		{"dup id", func(w *Workflow) { w.Steps[1].ID = "src" }, ErrDuplicateStep},
		{"unbound", func(w *Workflow) { delete(w.Steps[1].Inputs, "n") }, ErrUnboundInput},
		{"forward ref", func(w *Workflow) { w.Steps[1].Inputs["n"] = Ref("out", "text") }, ErrBadRef},
		{"type mismatch", func(w *Workflow) {
			w.Steps[2].Inputs["n"] = Ref("src", "n")
			w.Steps = append(w.Steps, Step{
				ID: "bad", Capability: "test.double",
				Inputs: map[string]Binding{"n": Ref("out", "text")},
			})
		}, ErrTypeMismatch},
		{"bad output ref", func(w *Workflow) { w.Outputs["text"] = "nope.n" }, ErrBadRef},
	}
	for _, tc := range cases {
		w := pipeline()
		tc.mut(w)
		err := w.Validate(reg)
		if err == nil {
			t.Errorf("%s: validation passed", tc.label)
			continue
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.label, err, tc.want)
		}
	}
}

func TestValidateUnknownBinding(t *testing.T) {
	reg := buildTestRegistry(t)
	w := pipeline()
	w.Steps[0].Inputs["mystery"] = Lit(1)
	if err := w.Validate(reg); err == nil {
		t.Error("unknown input binding must fail validation")
	}
}

func TestRunStepFailure(t *testing.T) {
	reg := buildTestRegistry(t)
	eng := NewEngine(reg, nil)
	w := &Workflow{
		Name:  "failing",
		Steps: []Step{{ID: "f", Capability: "test.fail"}},
	}
	res, err := eng.Run(context.Background(), w)
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "boom") || !strings.Contains(err.Error(), `"f"`) {
		t.Errorf("error lacks context: %v", err)
	}
	if len(res.Steps) != 1 || res.Steps[0].Err == nil {
		t.Error("failed step not recorded")
	}
}

func TestRunContractViolation(t *testing.T) {
	reg := buildTestRegistry(t)
	eng := NewEngine(reg, nil)
	w := &Workflow{Name: "bad", Steps: []Step{{ID: "b", Capability: "test.badimpl"}}}
	if _, err := eng.Run(context.Background(), w); err == nil || !strings.Contains(err.Error(), "did not produce") {
		t.Errorf("contract violation not detected: %v", err)
	}
}

func TestOptionalInputs(t *testing.T) {
	r := registry.New()
	r.MustRegister(registry.Capability{
		Name: "t.opt", Framework: "t", Description: "optional input",
		Inputs:  []registry.Port{{Name: "maybe", Type: registry.TInt, Optional: true}},
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl: func(c *registry.Call) error {
			if v, ok := c.In["maybe"]; ok {
				c.Out["n"] = v.(int)
			} else {
				c.Out["n"] = -1
			}
			return nil
		},
	})
	w := &Workflow{Name: "opt", Steps: []Step{{ID: "a", Capability: "t.opt"}}}
	res, err := NewEngine(r, nil).Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Values["a.n"] != -1 {
		t.Errorf("optional default = %v", res.Values["a.n"])
	}
}

func TestQualityChecks(t *testing.T) {
	reg := buildTestRegistry(t)
	w := pipeline()
	w.Checks = []QualityCheck{
		{
			Name: "n-positive", Kind: CheckSanity, Ref: "dbl.n",
			Assert: func(v any) (bool, string) { return v.(int) > 0, "n must be positive" },
		},
		{
			Name: "n-small", Kind: CheckConsistency, Ref: "dbl.n",
			Assert: func(v any) (bool, string) { return v.(int) < 10, "n must be < 10" },
		},
	}
	res, err := NewEngine(reg, nil).Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Checks) != 2 {
		t.Fatalf("checks = %d", len(res.Checks))
	}
	if !res.Checks[0].Passed || res.Checks[1].Passed {
		t.Errorf("check outcomes wrong: %+v", res.Checks)
	}
	if q := res.QualityScore(); q != 0.5 {
		t.Errorf("quality = %f, want 0.5", q)
	}
}

func TestQualityCheckValidation(t *testing.T) {
	reg := buildTestRegistry(t)
	w := pipeline()
	w.Checks = []QualityCheck{{Name: "dangling", Kind: CheckSanity, Ref: "zzz.n",
		Assert: func(any) (bool, string) { return true, "" }}}
	if err := w.Validate(reg); err == nil {
		t.Error("dangling check ref must fail")
	}
	w = pipeline()
	w.Checks = []QualityCheck{{Name: "nil-assert", Kind: CheckSanity, Ref: "dbl.n"}}
	if err := w.Validate(reg); err == nil {
		t.Error("nil assertion must fail")
	}
}

func TestEnvPassedToCalls(t *testing.T) {
	r := registry.New()
	r.MustRegister(registry.Capability{
		Name: "t.env", Framework: "t", Description: "reads env",
		Outputs: []registry.Port{{Name: "s", Type: registry.TString}},
		Impl: func(c *registry.Call) error {
			c.Out["s"] = c.Env.(string)
			return nil
		},
	})
	w := &Workflow{Name: "env", Steps: []Step{{ID: "e", Capability: "t.env"}},
		Outputs: map[string]string{"s": "e.s"}}
	res, err := NewEngine(r, "the-environment").Run(context.Background(), w)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["s"] != "the-environment" {
		t.Errorf("env = %v", res.Outputs["s"])
	}
}

func TestFrameworksAndDescribe(t *testing.T) {
	reg := buildTestRegistry(t)
	w := pipeline()
	fws := w.Frameworks(reg)
	if len(fws) != 2 || fws[0] != "render" || fws[1] != "test" {
		t.Errorf("frameworks = %v", fws)
	}
	d := w.Describe()
	for _, want := range []string{"test-pipeline", "test.source", "dbl.n", "outputs:"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe missing %q:\n%s", want, d)
		}
	}
	caps := w.CapabilityNames()
	if len(caps) != 3 || caps[0] != "test.source" {
		t.Errorf("CapabilityNames = %v", caps)
	}
}

func BenchmarkRunPipeline(b *testing.B) {
	reg := buildTestRegistry(b)
	eng := NewEngine(reg, nil)
	w := pipeline()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(context.Background(), w); err != nil {
			b.Fatal(err)
		}
	}
}

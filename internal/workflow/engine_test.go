package workflow

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"arachnet/internal/registry"
)

// gauge tracks how many slow steps are in flight at once.
type gauge struct {
	active, peak atomic.Int32
}

func (g *gauge) enter() {
	n := g.active.Add(1)
	for {
		p := g.peak.Load()
		if n <= p || g.peak.CompareAndSwap(p, n) {
			return
		}
	}
}

func (g *gauge) exit() { g.active.Add(-1) }

// slowRegistry registers fan-out sources that block long enough to
// overlap, plus a sum step depending on both.
func slowRegistry(t testing.TB, g *gauge, d time.Duration) *registry.Registry {
	t.Helper()
	r := registry.New()
	slow := func(v int) registry.Func {
		return func(c *registry.Call) error {
			g.enter()
			defer g.exit()
			select {
			case <-time.After(d):
			case <-c.Context().Done():
				return c.Context().Err()
			}
			c.Out["n"] = v
			return nil
		}
	}
	r.MustRegister(registry.Capability{
		Name: "slow.left", Framework: "slow", Description: "left source",
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl:    slow(1),
	})
	r.MustRegister(registry.Capability{
		Name: "slow.right", Framework: "slow", Description: "right source",
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl:    slow(2),
	})
	r.MustRegister(registry.Capability{
		Name: "slow.sum", Framework: "slow", Description: "sum two numbers",
		Inputs: []registry.Port{
			{Name: "a", Type: registry.TInt},
			{Name: "b", Type: registry.TInt},
		},
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl: func(c *registry.Call) error {
			a, _ := c.Input("a")
			b, _ := c.Input("b")
			c.Out["n"] = a.(int) + b.(int)
			return nil
		},
	})
	return r
}

func diamond() *Workflow {
	return &Workflow{
		Name: "diamond",
		Steps: []Step{
			{ID: "l", Capability: "slow.left"},
			{ID: "r", Capability: "slow.right"},
			{ID: "s", Capability: "slow.sum", Inputs: map[string]Binding{
				"a": Ref("l", "n"), "b": Ref("r", "n"),
			}},
		},
		Outputs: map[string]string{"sum": "s.n"},
	}
}

func TestIndependentStepsOverlap(t *testing.T) {
	var g gauge
	reg := slowRegistry(t, &g, 40*time.Millisecond)
	eng := NewEngine(reg, nil, WithParallelism(2))
	res, err := eng.Run(context.Background(), diamond())
	if err != nil {
		t.Fatal(err)
	}
	if res.Outputs["sum"] != 3 {
		t.Errorf("sum = %v", res.Outputs["sum"])
	}
	if p := g.peak.Load(); p != 2 {
		t.Errorf("peak concurrency = %d, want 2 (independent steps must overlap)", p)
	}
	if len(res.Steps) != 3 || res.Steps[0].ID != "l" || res.Steps[2].ID != "s" {
		t.Errorf("step stats not in workflow order: %+v", res.Steps)
	}
}

func TestParallelismOneIsSequential(t *testing.T) {
	var g gauge
	reg := slowRegistry(t, &g, 10*time.Millisecond)
	eng := NewEngine(reg, nil, WithParallelism(1))
	if _, err := eng.Run(context.Background(), diamond()); err != nil {
		t.Fatal(err)
	}
	if p := g.peak.Load(); p != 1 {
		t.Errorf("peak concurrency = %d under WithParallelism(1)", p)
	}
}

func TestCancellationAbortsMidWorkflow(t *testing.T) {
	var g gauge
	reg := slowRegistry(t, &g, 10*time.Second) // blocks until cancelled
	eng := NewEngine(reg, nil, WithParallelism(2))
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := eng.Run(ctx, diamond())
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled in chain", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("run did not abort promptly on cancellation")
	}
	// The dependent sum step must never have started.
	for _, s := range res.Steps {
		if s.ID == "s" {
			t.Error("dependent step ran despite cancellation")
		}
	}
}

func TestDeadlineAborts(t *testing.T) {
	var g gauge
	reg := slowRegistry(t, &g, 10*time.Second)
	eng := NewEngine(reg, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := eng.Run(ctx, diamond())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded in chain", err)
	}
}

func TestStepErrorTyped(t *testing.T) {
	reg := buildTestRegistry(t)
	w := &Workflow{Name: "failing", Steps: []Step{{ID: "f", Capability: "test.fail"}}}
	_, err := NewEngine(reg, nil).Run(context.Background(), w)
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *StepError", err, err)
	}
	if se.Step != "f" || se.Capability != "test.fail" {
		t.Errorf("StepError fields = %+v", se)
	}
}

func TestFailureStopsNewSteps(t *testing.T) {
	r := registry.New()
	r.MustRegister(registry.Capability{
		Name: "t.boom", Framework: "t", Description: "fails",
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl:    func(c *registry.Call) error { return errors.New("boom") },
	})
	r.MustRegister(registry.Capability{
		Name: "t.after", Framework: "t", Description: "depends on boom",
		Inputs:  []registry.Port{{Name: "n", Type: registry.TInt}},
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl: func(c *registry.Call) error {
			c.Out["n"] = 0
			return nil
		},
	})
	w := &Workflow{Name: "failfast", Steps: []Step{
		{ID: "a", Capability: "t.boom"},
		{ID: "b", Capability: "t.after", Inputs: map[string]Binding{"n": Ref("a", "n")}},
	}}
	res, err := NewEngine(r, nil).Run(context.Background(), w)
	if err == nil {
		t.Fatal("want error")
	}
	if len(res.Steps) != 1 {
		t.Errorf("dependent step ran after failure: %+v", res.Steps)
	}
}

func TestBindingValidateAmbiguous(t *testing.T) {
	b := Binding{Literal: 7, Ref: "x.n"}
	if err := b.Validate(); !errors.Is(err, ErrAmbiguousBinding) {
		t.Errorf("Validate() = %v, want ErrAmbiguousBinding", err)
	}
	if err := Lit(7).Validate(); err != nil {
		t.Errorf("literal binding rejected: %v", err)
	}
	if err := Ref("x", "n").Validate(); err != nil {
		t.Errorf("ref binding rejected: %v", err)
	}
	// And workflow validation must surface it.
	reg := buildTestRegistry(t)
	w := pipeline()
	w.Steps[1].Inputs["n"] = Binding{Literal: 7, Ref: "src.n"}
	if err := w.Validate(reg); !errors.Is(err, ErrAmbiguousBinding) {
		t.Errorf("workflow Validate = %v, want ErrAmbiguousBinding", err)
	}
}

func TestPanickingCapabilityFailsStep(t *testing.T) {
	r := registry.New()
	r.MustRegister(registry.Capability{
		Name: "t.panic", Framework: "t", Description: "panics",
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl:    func(c *registry.Call) error { panic("kaboom") },
	})
	w := &Workflow{Name: "panicky", Steps: []Step{{ID: "p", Capability: "t.panic"}}}
	res, err := NewEngine(r, nil).Run(context.Background(), w)
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T %v, want *StepError", err, err)
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("panic value lost: %v", err)
	}
	if len(res.Steps) != 1 || res.Steps[0].Err == nil {
		t.Error("panicked step not recorded")
	}
}

// recordingObserver logs step events; safe only for single-Run use,
// matching the engine's serialized observer contract.
type recordingObserver struct {
	started  []string
	finished []StepStat
}

func (r *recordingObserver) StepStarted(id, capability string) {
	r.started = append(r.started, id+"/"+capability)
}

func (r *recordingObserver) StepFinished(stat StepStat) {
	r.finished = append(r.finished, stat)
}

func TestObserverSeesEveryStep(t *testing.T) {
	var g gauge
	reg := slowRegistry(t, &g, time.Millisecond)
	obs := &recordingObserver{}
	eng := NewEngine(reg, nil, WithParallelism(2), WithObserver(obs))
	if _, err := eng.Run(context.Background(), diamond()); err != nil {
		t.Fatal(err)
	}
	if len(obs.started) != 3 || len(obs.finished) != 3 {
		t.Fatalf("observer saw %d starts / %d finishes, want 3/3", len(obs.started), len(obs.finished))
	}
	// The dependent sum step must start last and finish last.
	if obs.started[2] != "s/slow.sum" {
		t.Errorf("start order = %v", obs.started)
	}
	if last := obs.finished[2]; last.ID != "s" || last.Err != nil || last.Duration <= 0 {
		t.Errorf("final finish = %+v", last)
	}
}

func TestObserverSeesFailure(t *testing.T) {
	reg := buildTestRegistry(t)
	obs := &recordingObserver{}
	w := &Workflow{Name: "failing", Steps: []Step{{ID: "f", Capability: "test.fail"}}}
	_, err := NewEngine(reg, nil, WithObserver(obs)).Run(context.Background(), w)
	if err == nil {
		t.Fatal("want error")
	}
	if len(obs.finished) != 1 || obs.finished[0].Err == nil {
		t.Fatalf("failure not observed: %+v", obs.finished)
	}
}

func TestObserverSeesContractViolation(t *testing.T) {
	// A capability that "succeeds" without producing its declared
	// output must be reported to observers as a failed step.
	r := registry.New()
	r.MustRegister(registry.Capability{
		Name: "t.hollow", Framework: "t", Description: "forgets its output",
		Outputs: []registry.Port{{Name: "n", Type: registry.TInt}},
		Impl:    func(c *registry.Call) error { return nil },
	})
	obs := &recordingObserver{}
	w := &Workflow{Name: "hollow", Steps: []Step{{ID: "h", Capability: "t.hollow"}}}
	_, err := NewEngine(r, nil, WithObserver(obs)).Run(context.Background(), w)
	var se *StepError
	if !errors.As(err, &se) {
		t.Fatalf("err = %T, want *StepError", err)
	}
	if len(obs.finished) != 1 || obs.finished[0].Err == nil {
		t.Errorf("contract violation not surfaced to observer: %+v", obs.finished)
	}
	if !strings.Contains(obs.finished[0].Err.Error(), "did not produce") {
		t.Errorf("observed err = %v", obs.finished[0].Err)
	}
}

func TestObserverCancelAbortsRun(t *testing.T) {
	// Observers cannot veto directly; the documented idiom is
	// cancelling the run's context from the observer.
	var g gauge
	reg := slowRegistry(t, &g, time.Millisecond)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obs := &recordingObserver{}
	eng := NewEngine(reg, nil, WithParallelism(1),
		WithObserver(obs),
		WithObserver(funcObserver{onFinished: func(stat StepStat) {
			cancel()
		}}))
	_, err := eng.Run(ctx, diamond())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation after the first completion must stop the dependent
	// step from ever starting.
	for _, s := range obs.started {
		if s == "s/slow.sum" {
			t.Error("dependent step started after observer cancellation")
		}
	}
}

// funcObserver adapts closures for single-purpose observer tests.
type funcObserver struct {
	onStarted  func(id, capability string)
	onFinished func(stat StepStat)
}

func (f funcObserver) StepStarted(id, capability string) {
	if f.onStarted != nil {
		f.onStarted(id, capability)
	}
}

func (f funcObserver) StepFinished(stat StepStat) {
	if f.onFinished != nil {
		f.onFinished(stat)
	}
}

func TestDottedStepIDRejected(t *testing.T) {
	// Refs are "stepID.port": a dotted ID would corrupt the engine's
	// dependency graph, so validation must reject it.
	reg := buildTestRegistry(t)
	w := pipeline()
	w.Steps[0].ID = "src.one"
	if err := w.Validate(reg); err == nil || !strings.Contains(err.Error(), "must not contain") {
		t.Errorf("dotted step id accepted: %v", err)
	}
}

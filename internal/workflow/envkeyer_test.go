package workflow

// WithEnvKeyer contract: per-capability environment keys scope cache
// invalidation, so changing one capability's key re-runs only its
// steps and their downstreams while everything else replays from
// cache — the dirty-set seam standing queries build on.

import (
	"context"
	"sync/atomic"
	"testing"

	"arachnet/internal/registry"
)

// keyerWorkflow is a two-branch DAG joined by a sink:
//
//	d (memo.double, "scenario" key) ─┐
//	                                 s (memo.add, "world" key)
//	a (memo.add, "world" key) ───────┘
//
// The keyer maps capability name → env key, standing in for the
// facet-scoped fingerprints core derives from Capability.Reads.
func keyerWorkflow() *Workflow {
	return &Workflow{
		Name: "keyer",
		Steps: []Step{
			{ID: "d", Capability: "memo.double", Inputs: map[string]Binding{"n": Lit(21)}},
			{ID: "a", Capability: "memo.add", Inputs: map[string]Binding{
				"a": Lit(1), "b": Lit(2),
			}},
			{ID: "s", Capability: "memo.add", Inputs: map[string]Binding{
				"a": Ref("d", "n"), "b": Ref("a", "n"),
			}},
		},
		Outputs: map[string]string{"out": "s.n"},
	}
}

func cachedByID(r *Result) map[string]bool {
	out := map[string]bool{}
	for _, st := range r.Steps {
		out[st.ID] = st.Cached
	}
	return out
}

func TestEnvKeyerScopesInvalidation(t *testing.T) {
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	cache := newMapCache()

	run := func(scenarioKey string) *Result {
		t.Helper()
		eng := NewEngine(reg, nil,
			WithCache(cache, "envA"),
			WithEnvKeyer(func(c *registry.Capability) string {
				if c.Name == "memo.double" {
					return scenarioKey
				}
				return "world"
			}))
		r, err := eng.Run(context.Background(), keyerWorkflow())
		if err != nil {
			t.Fatal(err)
		}
		if got := r.Outputs["out"]; got != 45 {
			t.Fatalf("output = %v, want 45", got)
		}
		return r
	}

	// Cold, then fully warm under the same keys.
	run("scenario-epoch-1")
	r2 := run("scenario-epoch-1")
	for id, cached := range cachedByID(r2) {
		if !cached {
			t.Errorf("warm run: step %s not cached", id)
		}
	}

	// Bump only the scenario key: d is dirty, s is dirty through its
	// ref on d, a replays from cache.
	r3 := run("scenario-epoch-2")
	want := map[string]bool{"d": false, "a": true, "s": false}
	for id, cached := range cachedByID(r3) {
		if cached != want[id] {
			t.Errorf("after key bump: step %s cached=%v, want %v", id, cached, want[id])
		}
	}
	if n := calls["memo.double"].Load(); n != 2 {
		t.Errorf("memo.double executed %d times, want 2", n)
	}
	if n := calls["memo.add"].Load(); n != 3 { // a once, s twice
		t.Errorf("memo.add executed %d times, want 3", n)
	}
}

// TestEnvKeyerEmptyFallsBack: a keyer returning "" leaves the engine's
// WithCache fingerprint in effect for that capability.
func TestEnvKeyerEmptyFallsBack(t *testing.T) {
	calls := map[string]*atomic.Int64{}
	reg := memoRegistry(t, calls)
	cache := newMapCache()

	run := func(envFP string) {
		t.Helper()
		eng := NewEngine(reg, nil,
			WithCache(cache, envFP),
			WithEnvKeyer(func(*registry.Capability) string { return "" }))
		if _, err := eng.Run(context.Background(), memoWorkflow()); err != nil {
			t.Fatal(err)
		}
	}
	run("envA")
	run("envA") // warm: same engine fingerprint
	if n := calls["memo.double"].Load(); n != 1 {
		t.Errorf("memo.double executed %d times under identical envFP, want 1", n)
	}
	run("envB") // different engine fingerprint: everything re-runs
	if n := calls["memo.double"].Load(); n != 2 {
		t.Errorf("memo.double executed %d times across envFPs, want 2", n)
	}
}

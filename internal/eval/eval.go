// Package eval measures equivalence between agent-generated workflows
// and expert baselines: output similarity (country overlap, rank
// correlation, score error), verdict agreement, and functional-step
// overlap — the comparison axes of the paper's case studies.
package eval

import (
	"math"

	"arachnet/internal/core"
	"arachnet/internal/registry"
	"arachnet/internal/stats"
	"arachnet/internal/workflow"
	"arachnet/internal/xaminer"
)

// ImpactSimilarity quantifies agreement between two country-impact
// reports.
type ImpactSimilarity struct {
	// TopKJaccard is the Jaccard overlap of the top-K impacted
	// countries (K = min(10, smaller report size)).
	TopKJaccard float64
	// Spearman is the rank correlation of country scores over the
	// union of countries (absent countries score 0).
	Spearman float64
	// ScoreMAE is the mean absolute error between per-country scores.
	ScoreMAE float64
	// CountryRecall is the fraction of the expert's impacted countries
	// the agent also reports.
	CountryRecall float64
}

// CompareImpact measures agent-vs-expert similarity of impact reports.
func CompareImpact(agent, expert *xaminer.ImpactReport) ImpactSimilarity {
	sim := ImpactSimilarity{}
	if agent == nil || expert == nil {
		return sim
	}
	k := 10
	if len(agent.Countries) < k {
		k = len(agent.Countries)
	}
	if len(expert.Countries) < k {
		k = len(expert.Countries)
	}
	sim.TopKJaccard = stats.Jaccard(agent.TopCountries(k), expert.TopCountries(k))

	union := map[string]bool{}
	for _, c := range agent.Countries {
		union[c.Country] = true
	}
	for _, c := range expert.Countries {
		union[c.Country] = true
	}
	var aScores, eScores []float64
	var mae float64
	for cc := range union {
		a := agent.CountryScore(cc)
		e := expert.CountryScore(cc)
		aScores = append(aScores, a)
		eScores = append(eScores, e)
		mae += math.Abs(a - e)
	}
	if len(union) > 0 {
		mae /= float64(len(union))
	}
	sim.ScoreMAE = mae
	if len(aScores) >= 2 {
		if rho, err := stats.Spearman(aScores, eScores); err == nil {
			sim.Spearman = rho
		}
	}
	var hit, total float64
	for _, c := range expert.Countries {
		if c.Score <= 0 {
			continue
		}
		total++
		if agent.CountryScore(c.Country) > 0 {
			hit++
		}
	}
	if total > 0 {
		sim.CountryRecall = hit / total
	}
	return sim
}

// FunctionalOverlap measures how much of the expert's conceptual
// transformation set the agent workflow covers. The agent's functional
// categories are the tags of the capabilities it invokes; the expert
// declares its categories explicitly.
func FunctionalOverlap(agent *workflow.Workflow, reg *registry.Registry, expertSteps []string) float64 {
	set := map[string]bool{}
	for _, name := range agent.CapabilityNames() {
		cap, err := reg.Get(name)
		if err != nil {
			continue
		}
		for _, t := range cap.Tags {
			set[t] = true
		}
	}
	var agentTags []string
	for t := range set {
		agentTags = append(agentTags, t)
	}
	if len(expertSteps) == 0 {
		return 0
	}
	hit := 0
	for _, s := range expertSteps {
		if set[s] {
			hit++
		}
	}
	return float64(hit) / float64(len(expertSteps))
}

// VerdictAgreement quantifies agreement between two forensic verdicts.
type VerdictAgreement struct {
	SameCausation bool
	SameCable     bool
	ConfidenceGap float64
}

// CompareVerdicts measures agent-vs-expert forensic agreement.
func CompareVerdicts(agent, expert core.Verdict) VerdictAgreement {
	return VerdictAgreement{
		SameCausation: agent.CauseIsCableFailure == expert.CauseIsCableFailure,
		SameCable:     agent.Cable == expert.Cable,
		ConfidenceGap: math.Abs(agent.Confidence - expert.Confidence),
	}
}

// GlobalToReport adapts a combined multi-event impact into an impact
// report so the impact comparator applies to Case Study 2 outputs.
func GlobalToReport(g xaminer.GlobalImpact) *xaminer.ImpactReport {
	rep := &xaminer.ImpactReport{Scenario: "global-events"}
	rep.Countries = append(rep.Countries, g.Countries...)
	rep.FailedLinks = int(g.ExpectedLinksLost)
	return rep
}

package eval

import (
	"testing"

	"arachnet/internal/core"
	"arachnet/internal/netsim"
	"arachnet/internal/registry"
	"arachnet/internal/workflow"
	"arachnet/internal/xaminer"
)

func report(countries map[string]float64) *xaminer.ImpactReport {
	rep := &xaminer.ImpactReport{Scenario: "test"}
	for cc, score := range countries {
		rep.Countries = append(rep.Countries, xaminer.CountryImpact{Country: cc, Score: score})
	}
	// Sort descending by score like real reports.
	for i := 0; i < len(rep.Countries); i++ {
		for j := i + 1; j < len(rep.Countries); j++ {
			if rep.Countries[j].Score > rep.Countries[i].Score {
				rep.Countries[i], rep.Countries[j] = rep.Countries[j], rep.Countries[i]
			}
		}
	}
	return rep
}

func TestCompareImpactIdentical(t *testing.T) {
	r := report(map[string]float64{"FR": 0.9, "EG": 0.7, "IN": 0.5})
	sim := CompareImpact(r, r)
	if sim.TopKJaccard != 1 || sim.ScoreMAE != 0 || sim.CountryRecall != 1 {
		t.Errorf("self-similarity = %+v", sim)
	}
	if sim.Spearman < 0.99 {
		t.Errorf("self Spearman = %f", sim.Spearman)
	}
}

func TestCompareImpactDisjoint(t *testing.T) {
	a := report(map[string]float64{"FR": 0.9, "EG": 0.7})
	b := report(map[string]float64{"US": 0.9, "BR": 0.7})
	sim := CompareImpact(a, b)
	if sim.TopKJaccard != 0 {
		t.Errorf("disjoint Jaccard = %f", sim.TopKJaccard)
	}
	if sim.CountryRecall != 0 {
		t.Errorf("disjoint recall = %f", sim.CountryRecall)
	}
}

func TestCompareImpactPartial(t *testing.T) {
	a := report(map[string]float64{"FR": 0.8, "EG": 0.6, "IN": 0.4})
	b := report(map[string]float64{"FR": 0.9, "EG": 0.5, "SG": 0.3})
	sim := CompareImpact(a, b)
	if sim.TopKJaccard <= 0 || sim.TopKJaccard >= 1 {
		t.Errorf("partial Jaccard = %f", sim.TopKJaccard)
	}
	if sim.CountryRecall != 2.0/3.0 {
		t.Errorf("recall = %f, want 2/3", sim.CountryRecall)
	}
}

func TestCompareImpactNil(t *testing.T) {
	sim := CompareImpact(nil, report(map[string]float64{"FR": 1}))
	if sim.TopKJaccard != 0 || sim.CountryRecall != 0 {
		t.Errorf("nil comparison = %+v", sim)
	}
}

func TestFunctionalOverlap(t *testing.T) {
	reg := registry.New()
	reg.MustRegister(registry.Capability{
		Name: "t.a", Framework: "t", Description: "a",
		Outputs: []registry.Port{{Name: "o", Type: registry.TString}},
		Tags:    []string{"geo-mapping", "aggregation"},
		Impl:    func(c *registry.Call) error { return nil },
	})
	wf := &workflow.Workflow{Steps: []workflow.Step{{ID: "s1", Capability: "t.a"}}}
	got := FunctionalOverlap(wf, reg, []string{"geo-mapping", "aggregation", "link-extraction", "ip-extraction"})
	if got != 0.5 {
		t.Errorf("overlap = %f, want 0.5", got)
	}
	if FunctionalOverlap(wf, reg, nil) != 0 {
		t.Error("empty expert steps must give 0")
	}
}

func TestCompareVerdicts(t *testing.T) {
	a := core.Verdict{CauseIsCableFailure: true, Cable: "seamewe-5", Confidence: 0.9}
	b := core.Verdict{CauseIsCableFailure: true, Cable: "seamewe-5", Confidence: 0.8}
	ag := CompareVerdicts(a, b)
	if !ag.SameCausation || !ag.SameCable {
		t.Errorf("agreement = %+v", ag)
	}
	if ag.ConfidenceGap < 0.099 || ag.ConfidenceGap > 0.101 {
		t.Errorf("gap = %f", ag.ConfidenceGap)
	}
	c := core.Verdict{CauseIsCableFailure: false}
	if ag := CompareVerdicts(a, c); ag.SameCausation || ag.SameCable {
		t.Errorf("disagreement not detected: %+v", ag)
	}
}

func TestGlobalToReport(t *testing.T) {
	env, err := core.NewEnvironment(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	ev := xaminer.SevereEarthquakes()[0]
	im, err := env.Analyzer.ProcessEvent(ev, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	g := xaminer.CombineEventImpacts(env.Analyzer, []xaminer.EventImpact{im})
	rep := GlobalToReport(g)
	if len(rep.Countries) != len(g.Countries) {
		t.Errorf("adapter dropped countries")
	}
}

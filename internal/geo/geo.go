// Package geo provides the geographic substrate shared by every other
// subsystem: a country catalog with representative coordinates, region
// groupings, and great-circle distance math.
//
// Internet measurement workflows constantly translate between network
// identifiers (IPs, ASes, landing points) and geography (countries,
// regions). This package is the single source of truth for that
// translation so that the synthetic world, the cable catalog, the
// traceroute RTT model and the impact aggregators all agree.
package geo

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Region is a coarse geographic grouping used by queries such as
// "cables between Europe and Asia".
type Region string

// Regions of the world used by the measurement workflows.
const (
	Europe       Region = "Europe"
	Asia         Region = "Asia"
	NorthAmerica Region = "North America"
	SouthAmerica Region = "South America"
	Africa       Region = "Africa"
	MiddleEast   Region = "Middle East"
	Oceania      Region = "Oceania"
)

// AllRegions lists every region in deterministic order.
func AllRegions() []Region {
	return []Region{Europe, Asia, NorthAmerica, SouthAmerica, Africa, MiddleEast, Oceania}
}

// Coord is a WGS84 latitude/longitude pair in decimal degrees.
type Coord struct {
	Lat float64
	Lng float64
}

// String implements fmt.Stringer.
func (c Coord) String() string { return fmt.Sprintf("(%.3f,%.3f)", c.Lat, c.Lng) }

// Valid reports whether the coordinate lies within WGS84 bounds.
func (c Coord) Valid() bool {
	return c.Lat >= -90 && c.Lat <= 90 && c.Lng >= -180 && c.Lng <= 180
}

// Country describes one country in the catalog. Coordinates point at the
// country's principal network hub (usually the capital or the largest
// coastal city), which is where the synthetic world places routers.
type Country struct {
	Code    string // ISO 3166-1 alpha-2
	Name    string
	Region  Region
	Hub     Coord // principal network hub
	Coastal bool  // has submarine-cable landing potential
}

// earthRadiusKm is the mean Earth radius used for great-circle math.
const earthRadiusKm = 6371.0

// DistanceKm returns the great-circle distance between two coordinates in
// kilometers using the haversine formula.
func DistanceKm(a, b Coord) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLng := (b.Lng - a.Lng) * degToRad

	h := math.Sin(dLat/2)*math.Sin(dLat/2) +
		math.Cos(lat1)*math.Cos(lat2)*math.Sin(dLng/2)*math.Sin(dLng/2)
	return 2 * earthRadiusKm * math.Asin(math.Min(1, math.Sqrt(h)))
}

// PropagationDelayMs returns the one-way light propagation delay in
// milliseconds over a fiber path of the given length. Light in fiber
// travels at roughly 2/3 of c; cable paths are longer than great circles,
// so callers typically apply a path-stretch factor on top.
func PropagationDelayMs(km float64) float64 {
	const fiberLightSpeedKmPerMs = 299792.458 / 1000.0 * (2.0 / 3.0) // ≈199.9 km/ms
	return km / fiberLightSpeedKmPerMs
}

// catalog is the country table. It is intentionally a curated subset of the
// world: enough coverage on every region and every major submarine-cable
// corridor for resilience analysis, small enough to keep simulations fast.
var catalog = []Country{
	// Europe
	{"GB", "United Kingdom", Europe, Coord{51.507, -0.128}, true},
	{"FR", "France", Europe, Coord{43.296, 5.370}, true}, // Marseille: principal cable hub
	{"DE", "Germany", Europe, Coord{50.110, 8.682}, false},
	{"NL", "Netherlands", Europe, Coord{52.370, 4.895}, true},
	{"ES", "Spain", Europe, Coord{36.140, -5.353}, true},
	{"IT", "Italy", Europe, Coord{38.115, 13.361}, true}, // Palermo hub
	{"PT", "Portugal", Europe, Coord{38.722, -9.139}, true},
	{"GR", "Greece", Europe, Coord{37.983, 23.727}, true},
	{"SE", "Sweden", Europe, Coord{59.329, 18.068}, true},
	{"NO", "Norway", Europe, Coord{58.970, 5.731}, true},
	{"IE", "Ireland", Europe, Coord{53.349, -6.260}, true},
	{"PL", "Poland", Europe, Coord{52.229, 21.012}, false},
	{"AT", "Austria", Europe, Coord{48.208, 16.373}, false},
	{"CH", "Switzerland", Europe, Coord{47.376, 8.541}, false},
	{"BE", "Belgium", Europe, Coord{51.219, 2.928}, true},
	{"DK", "Denmark", Europe, Coord{55.676, 12.568}, true},
	{"FI", "Finland", Europe, Coord{60.169, 24.938}, true},
	{"CZ", "Czechia", Europe, Coord{50.075, 14.437}, false},
	{"RO", "Romania", Europe, Coord{44.172, 28.652}, true}, // Constanța
	{"BG", "Bulgaria", Europe, Coord{43.204, 27.910}, true},
	{"MT", "Malta", Europe, Coord{35.899, 14.514}, true},
	{"CY", "Cyprus", Europe, Coord{34.707, 33.022}, true},

	// Middle East
	{"EG", "Egypt", MiddleEast, Coord{31.200, 29.918}, true}, // Alexandria
	{"SA", "Saudi Arabia", MiddleEast, Coord{21.543, 39.173}, true},
	{"AE", "United Arab Emirates", MiddleEast, Coord{25.070, 55.140}, true},
	{"OM", "Oman", MiddleEast, Coord{23.588, 58.383}, true},
	{"IL", "Israel", MiddleEast, Coord{32.080, 34.780}, true},
	{"JO", "Jordan", MiddleEast, Coord{29.532, 35.008}, true}, // Aqaba
	{"TR", "Turkey", MiddleEast, Coord{41.008, 28.978}, true},
	{"QA", "Qatar", MiddleEast, Coord{25.285, 51.531}, true},
	{"KW", "Kuwait", MiddleEast, Coord{29.376, 47.977}, true},
	{"BH", "Bahrain", MiddleEast, Coord{26.228, 50.586}, true},
	{"IQ", "Iraq", MiddleEast, Coord{30.508, 47.783}, true}, // Al-Faw
	{"DJ", "Djibouti", MiddleEast, Coord{11.588, 43.145}, true},

	// Asia
	{"IN", "India", Asia, Coord{19.076, 72.878}, true}, // Mumbai
	{"LK", "Sri Lanka", Asia, Coord{6.927, 79.861}, true},
	{"BD", "Bangladesh", Asia, Coord{21.427, 92.005}, true}, // Cox's Bazar
	{"PK", "Pakistan", Asia, Coord{24.861, 67.010}, true},   // Karachi
	{"MM", "Myanmar", Asia, Coord{16.871, 96.199}, true},
	{"TH", "Thailand", Asia, Coord{7.884, 98.398}, true}, // Phuket/Songkhla
	{"MY", "Malaysia", Asia, Coord{3.139, 101.687}, true},
	{"SG", "Singapore", Asia, Coord{1.352, 103.820}, true},
	{"ID", "Indonesia", Asia, Coord{-6.208, 106.846}, true},
	{"VN", "Vietnam", Asia, Coord{10.823, 106.630}, true},
	{"PH", "Philippines", Asia, Coord{14.600, 120.984}, true},
	{"HK", "Hong Kong", Asia, Coord{22.319, 114.169}, true},
	{"CN", "China", Asia, Coord{31.230, 121.474}, true}, // Shanghai
	{"TW", "Taiwan", Asia, Coord{25.033, 121.565}, true},
	{"JP", "Japan", Asia, Coord{35.677, 139.650}, true},
	{"KR", "South Korea", Asia, Coord{35.180, 129.076}, true}, // Busan
	{"KH", "Cambodia", Asia, Coord{10.627, 103.522}, true},
	{"BN", "Brunei", Asia, Coord{4.903, 114.940}, true},
	{"NP", "Nepal", Asia, Coord{27.717, 85.324}, false},
	{"KZ", "Kazakhstan", Asia, Coord{51.170, 71.449}, false},

	// Africa
	{"ZA", "South Africa", Africa, Coord{-33.925, 18.424}, true},
	{"KE", "Kenya", Africa, Coord{-4.043, 39.668}, true}, // Mombasa
	{"TZ", "Tanzania", Africa, Coord{-6.792, 39.208}, true},
	{"NG", "Nigeria", Africa, Coord{6.455, 3.394}, true},
	{"GH", "Ghana", Africa, Coord{5.603, -0.187}, true},
	{"SN", "Senegal", Africa, Coord{14.717, -17.467}, true},
	{"MA", "Morocco", Africa, Coord{33.573, -7.590}, true},
	{"TN", "Tunisia", Africa, Coord{36.806, 10.181}, true},
	{"DZ", "Algeria", Africa, Coord{36.754, 3.059}, true},
	{"MZ", "Mozambique", Africa, Coord{-25.969, 32.573}, true},
	{"ET", "Ethiopia", Africa, Coord{9.010, 38.761}, false},
	{"SD", "Sudan", Africa, Coord{19.616, 37.216}, true}, // Port Sudan
	{"CI", "Côte d'Ivoire", Africa, Coord{5.360, -4.008}, true},
	{"CM", "Cameroon", Africa, Coord{4.051, 9.768}, true},
	{"AO", "Angola", Africa, Coord{-8.839, 13.289}, true},

	// North America
	{"US", "United States", NorthAmerica, Coord{40.713, -74.006}, true}, // NYC hub
	{"CA", "Canada", NorthAmerica, Coord{44.649, -63.576}, true},        // Halifax
	{"MX", "Mexico", NorthAmerica, Coord{19.433, -99.133}, true},
	{"PA", "Panama", NorthAmerica, Coord{8.983, -79.517}, true},
	{"CR", "Costa Rica", NorthAmerica, Coord{9.933, -84.083}, true},
	{"CU", "Cuba", NorthAmerica, Coord{23.113, -82.366}, true},
	{"DO", "Dominican Republic", NorthAmerica, Coord{18.486, -69.931}, true},

	// South America
	{"BR", "Brazil", SouthAmerica, Coord{-23.967, -46.333}, true}, // Santos/Fortaleza
	{"AR", "Argentina", SouthAmerica, Coord{-34.603, -58.382}, true},
	{"CL", "Chile", SouthAmerica, Coord{-33.047, -71.613}, true},
	{"CO", "Colombia", SouthAmerica, Coord{10.400, -75.514}, true},
	{"PE", "Peru", SouthAmerica, Coord{-12.046, -77.043}, true},
	{"UY", "Uruguay", SouthAmerica, Coord{-34.903, -56.188}, true},
	{"VE", "Venezuela", SouthAmerica, Coord{10.480, -66.903}, true},

	// Oceania
	{"AU", "Australia", Oceania, Coord{-33.869, 151.209}, true},
	{"NZ", "New Zealand", Oceania, Coord{-36.848, 174.763}, true},
	{"FJ", "Fiji", Oceania, Coord{-18.141, 178.442}, true},
	{"GU", "Guam", Oceania, Coord{13.444, 144.794}, true},
}

var (
	byCode map[string]Country
	byName map[string]Country
)

func init() {
	byCode = make(map[string]Country, len(catalog))
	byName = make(map[string]Country, len(catalog))
	for _, c := range catalog {
		byCode[c.Code] = c
		byName[strings.ToLower(c.Name)] = c
	}
}

// Countries returns the full country catalog sorted by ISO code.
func Countries() []Country {
	out := make([]Country, len(catalog))
	copy(out, catalog)
	sort.Slice(out, func(i, j int) bool { return out[i].Code < out[j].Code })
	return out
}

// CountryByCode looks up a country by its ISO 3166-1 alpha-2 code.
func CountryByCode(code string) (Country, bool) {
	c, ok := byCode[strings.ToUpper(code)]
	return c, ok
}

// CountryByName looks up a country by its English name
// (case-insensitive).
func CountryByName(name string) (Country, bool) {
	c, ok := byName[strings.ToLower(strings.TrimSpace(name))]
	return c, ok
}

// CountriesInRegion returns the countries of one region sorted by code.
func CountriesInRegion(r Region) []Country {
	var out []Country
	for _, c := range Countries() {
		if c.Region == r {
			out = append(out, c)
		}
	}
	return out
}

// CoastalCountries returns all countries with submarine-cable landing
// potential, sorted by code.
func CoastalCountries() []Country {
	var out []Country
	for _, c := range Countries() {
		if c.Coastal {
			out = append(out, c)
		}
	}
	return out
}

// ParseRegion recognizes a region name in free text (case-insensitive,
// with a few aliases used in measurement queries).
func ParseRegion(s string) (Region, bool) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "europe", "eu", "european":
		return Europe, true
	case "asia", "asian", "apac":
		return Asia, true
	case "north america", "na", "northern america":
		return NorthAmerica, true
	case "south america", "latam", "latin america":
		return SouthAmerica, true
	case "africa", "african":
		return Africa, true
	case "middle east", "mideast", "gulf":
		return MiddleEast, true
	case "oceania", "pacific", "australasia":
		return Oceania, true
	}
	return "", false
}

// RegionOf returns the region of a country code, or false when unknown.
func RegionOf(code string) (Region, bool) {
	c, ok := CountryByCode(code)
	if !ok {
		return "", false
	}
	return c.Region, true
}

// Midpoint returns the geographic midpoint of two coordinates. It is a
// simple spherical midpoint, good enough for cable way-pointing.
func Midpoint(a, b Coord) Coord {
	const degToRad = math.Pi / 180
	lat1, lng1 := a.Lat*degToRad, a.Lng*degToRad
	lat2, lng2 := b.Lat*degToRad, b.Lng*degToRad

	bx := math.Cos(lat2) * math.Cos(lng2-lng1)
	by := math.Cos(lat2) * math.Sin(lng2-lng1)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lng3 := lng1 + math.Atan2(by, math.Cos(lat1)+bx)

	return Coord{Lat: lat3 / degToRad, Lng: math.Mod(lng3/degToRad+540, 360) - 180}
}

package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCatalogConsistency(t *testing.T) {
	cs := Countries()
	if len(cs) < 60 {
		t.Fatalf("catalog too small: %d countries", len(cs))
	}
	seen := map[string]bool{}
	for _, c := range cs {
		if len(c.Code) != 2 {
			t.Errorf("%s: code must be 2 letters", c.Code)
		}
		if seen[c.Code] {
			t.Errorf("duplicate code %s", c.Code)
		}
		seen[c.Code] = true
		if c.Name == "" {
			t.Errorf("%s: empty name", c.Code)
		}
		if !c.Hub.Valid() {
			t.Errorf("%s: invalid hub %v", c.Code, c.Hub)
		}
		found := false
		for _, r := range AllRegions() {
			if c.Region == r {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: unknown region %q", c.Code, c.Region)
		}
	}
}

func TestCountriesSorted(t *testing.T) {
	cs := Countries()
	for i := 1; i < len(cs); i++ {
		if cs[i-1].Code >= cs[i].Code {
			t.Fatalf("catalog not sorted at %d: %s >= %s", i, cs[i-1].Code, cs[i].Code)
		}
	}
}

func TestCountryLookups(t *testing.T) {
	c, ok := CountryByCode("sg")
	if !ok || c.Name != "Singapore" {
		t.Fatalf("CountryByCode(sg) = %v, %v", c, ok)
	}
	c, ok = CountryByName("  france ")
	if !ok || c.Code != "FR" {
		t.Fatalf("CountryByName(france) = %v, %v", c, ok)
	}
	if _, ok := CountryByCode("ZZ"); ok {
		t.Fatal("unexpected hit for ZZ")
	}
	if _, ok := CountryByName("atlantis"); ok {
		t.Fatal("unexpected hit for atlantis")
	}
}

func TestEveryRegionPopulated(t *testing.T) {
	for _, r := range AllRegions() {
		if n := len(CountriesInRegion(r)); n < 4 {
			t.Errorf("region %s has only %d countries", r, n)
		}
	}
}

func TestCoastalCountries(t *testing.T) {
	coastal := CoastalCountries()
	if len(coastal) < 40 {
		t.Fatalf("too few coastal countries: %d", len(coastal))
	}
	for _, c := range coastal {
		if !c.Coastal {
			t.Errorf("%s returned as coastal but flag is false", c.Code)
		}
	}
	// Landlocked sanity: Switzerland must not be coastal.
	ch, _ := CountryByCode("CH")
	if ch.Coastal {
		t.Error("Switzerland marked coastal")
	}
}

func TestDistanceKnownPairs(t *testing.T) {
	// London ↔ New York ≈ 5570 km.
	gb, _ := CountryByCode("GB")
	us, _ := CountryByCode("US")
	d := DistanceKm(gb.Hub, us.Hub)
	if d < 5300 || d > 5850 {
		t.Errorf("London–NYC distance = %.0f km, want ≈5570", d)
	}
	// Singapore ↔ Mumbai ≈ 3900 km.
	sg, _ := CountryByCode("SG")
	in, _ := CountryByCode("IN")
	d = DistanceKm(sg.Hub, in.Hub)
	if d < 3700 || d > 4100 {
		t.Errorf("SG–Mumbai distance = %.0f km, want ≈3900", d)
	}
}

func TestDistanceProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200}
	// Symmetry.
	if err := quick.Check(func(la, lo, lb, lob float64) bool {
		a := Coord{Lat: math.Mod(la, 90), Lng: math.Mod(lo, 180)}
		b := Coord{Lat: math.Mod(lb, 90), Lng: math.Mod(lob, 180)}
		d1, d2 := DistanceKm(a, b), DistanceKm(b, a)
		return math.Abs(d1-d2) < 1e-6
	}, cfg); err != nil {
		t.Error(err)
	}
	// Identity and non-negativity.
	if err := quick.Check(func(la, lo float64) bool {
		a := Coord{Lat: math.Mod(la, 90), Lng: math.Mod(lo, 180)}
		return DistanceKm(a, a) < 1e-9 && DistanceKm(a, Coord{}) >= 0
	}, cfg); err != nil {
		t.Error(err)
	}
	// Upper bound: half the circumference.
	if err := quick.Check(func(la, lo, lb, lob float64) bool {
		a := Coord{Lat: math.Mod(la, 90), Lng: math.Mod(lo, 180)}
		b := Coord{Lat: math.Mod(lb, 90), Lng: math.Mod(lob, 180)}
		return DistanceKm(a, b) <= math.Pi*6371.0+1
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequality(t *testing.T) {
	pts := []Coord{
		{51.5, -0.1}, {1.35, 103.8}, {40.7, -74.0}, {-33.9, 151.2}, {31.2, 29.9},
	}
	for _, a := range pts {
		for _, b := range pts {
			for _, c := range pts {
				if DistanceKm(a, c) > DistanceKm(a, b)+DistanceKm(b, c)+1e-6 {
					t.Fatalf("triangle inequality violated for %v %v %v", a, b, c)
				}
			}
		}
	}
}

func TestPropagationDelay(t *testing.T) {
	// 10,000 km of fiber ≈ 50 ms one-way.
	d := PropagationDelayMs(10000)
	if d < 48 || d < 0 || d > 52 {
		t.Errorf("PropagationDelayMs(10000) = %.2f, want ≈50", d)
	}
	if PropagationDelayMs(0) != 0 {
		t.Error("zero distance must give zero delay")
	}
}

func TestParseRegion(t *testing.T) {
	cases := map[string]Region{
		"europe": Europe, "EU": Europe, "Asia": Asia, "APAC": Asia,
		"middle east": MiddleEast, "gulf": MiddleEast,
		"north america": NorthAmerica, "latam": SouthAmerica,
		"africa": Africa, "pacific": Oceania,
	}
	for in, want := range cases {
		got, ok := ParseRegion(in)
		if !ok || got != want {
			t.Errorf("ParseRegion(%q) = %v,%v want %v", in, got, ok, want)
		}
	}
	if _, ok := ParseRegion("narnia"); ok {
		t.Error("ParseRegion(narnia) should fail")
	}
}

func TestRegionOf(t *testing.T) {
	if r, ok := RegionOf("JP"); !ok || r != Asia {
		t.Errorf("RegionOf(JP) = %v,%v", r, ok)
	}
	if _, ok := RegionOf("XX"); ok {
		t.Error("RegionOf(XX) should fail")
	}
}

func TestMidpoint(t *testing.T) {
	a := Coord{0, 0}
	b := Coord{0, 90}
	m := Midpoint(a, b)
	if math.Abs(m.Lat) > 1e-6 || math.Abs(m.Lng-45) > 1e-6 {
		t.Errorf("Midpoint equator = %v, want (0,45)", m)
	}
	// Midpoint must be roughly equidistant.
	gb, _ := CountryByCode("GB")
	sg, _ := CountryByCode("SG")
	m = Midpoint(gb.Hub, sg.Hub)
	d1, d2 := DistanceKm(gb.Hub, m), DistanceKm(m, sg.Hub)
	if math.Abs(d1-d2) > 1.0 {
		t.Errorf("midpoint not equidistant: %.1f vs %.1f", d1, d2)
	}
}

func TestCoordValid(t *testing.T) {
	valid := []Coord{{0, 0}, {90, 180}, {-90, -180}, {51.5, -0.12}}
	for _, c := range valid {
		if !c.Valid() {
			t.Errorf("%v should be valid", c)
		}
	}
	invalid := []Coord{{91, 0}, {0, 181}, {-90.5, 0}, {0, -180.5}}
	for _, c := range invalid {
		if c.Valid() {
			t.Errorf("%v should be invalid", c)
		}
	}
}

func BenchmarkDistanceKm(b *testing.B) {
	a := Coord{51.507, -0.128}
	c := Coord{1.352, 103.820}
	for i := 0; i < b.N; i++ {
		_ = DistanceKm(a, c)
	}
}

package registry

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func noop(c *Call) error { return nil }

func validCap(name string) Capability {
	return Capability{
		Name: name, Framework: "test", Description: "a test capability",
		Inputs:  []Port{{Name: "in", Type: TString}},
		Outputs: []Port{{Name: "out", Type: TImpact}},
		Tags:    []string{"impact"},
		Cost:    2,
		Impl:    noop,
	}
}

func TestRegisterAndGet(t *testing.T) {
	r := New()
	if err := r.Register(validCap("test.analyze")); err != nil {
		t.Fatal(err)
	}
	c, err := r.Get("test.analyze")
	if err != nil {
		t.Fatal(err)
	}
	if c.Framework != "test" || c.Cost != 2 {
		t.Errorf("got %+v", c)
	}
	if !r.Has("test.analyze") || r.Has("test.missing") {
		t.Error("Has() wrong")
	}
	if _, err := r.Get("test.missing"); err == nil {
		t.Error("missing capability must error")
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	cases := map[string]Capability{
		"unqualified name": func() Capability { c := validCap("analyze"); return c }(),
		"empty name":       func() Capability { c := validCap(""); return c }(),
		"no framework":     func() Capability { c := validCap("t.x"); c.Framework = ""; return c }(),
		"no impl":          func() Capability { c := validCap("t.x"); c.Impl = nil; return c }(),
		"no description":   func() Capability { c := validCap("t.x"); c.Description = ""; return c }(),
		"no outputs":       func() Capability { c := validCap("t.x"); c.Outputs = nil; return c }(),
		"untyped port":     func() Capability { c := validCap("t.x"); c.Outputs = []Port{{Name: "o"}}; return c }(),
		"unnamed port":     func() Capability { c := validCap("t.x"); c.Inputs = []Port{{Type: TString}}; return c }(),
		"duplicate port": func() Capability {
			c := validCap("t.x")
			c.Inputs = []Port{{Name: "in", Type: TString}, {Name: "in", Type: TInt}}
			return c
		}(),
	}
	for label, c := range cases {
		if err := r.Register(c); err == nil {
			t.Errorf("%s: registration should fail", label)
		}
	}
}

func TestRegisterDuplicate(t *testing.T) {
	r := New()
	if err := r.Register(validCap("t.x")); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(validCap("t.x")); err == nil {
		t.Error("duplicate must fail")
	}
}

func TestDefaultCost(t *testing.T) {
	r := New()
	c := validCap("t.free")
	c.Cost = 0
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	got, _ := r.Get("t.free")
	if got.Cost != 1 {
		t.Errorf("default cost = %d, want 1", got.Cost)
	}
}

func TestRegistryIsolation(t *testing.T) {
	// Mutating the caller's struct after registration must not affect
	// the registry.
	r := New()
	c := validCap("t.x")
	if err := r.Register(c); err != nil {
		t.Fatal(err)
	}
	c.Description = "mutated"
	got, _ := r.Get("t.x")
	if got.Description == "mutated" {
		t.Error("registry shares caller memory")
	}
}

func TestQueries(t *testing.T) {
	r := New()
	a := validCap("fw1.a")
	a.Framework = "fw1"
	a.Cost = 5
	b := validCap("fw2.b")
	b.Framework = "fw2"
	b.Cost = 1
	c := validCap("fw1.c")
	c.Framework = "fw1"
	c.Outputs = []Port{{Name: "out", Type: TCableList}}
	c.Tags = []string{"cable", "mapping"}
	for _, cap := range []Capability{a, b, c} {
		if err := r.Register(cap); err != nil {
			t.Fatal(err)
		}
	}

	if got := r.ByFramework("fw1"); len(got) != 2 {
		t.Errorf("ByFramework(fw1) = %d caps", len(got))
	}
	if got := r.ByTag("mapping"); len(got) != 1 || got[0].Name != "fw1.c" {
		t.Errorf("ByTag(mapping) wrong")
	}
	prod := r.Producing(TImpact)
	if len(prod) != 2 {
		t.Fatalf("Producing(TImpact) = %d", len(prod))
	}
	// Sorted by cost: fw2.b (1) before fw1.a (5).
	if prod[0].Name != "fw2.b" {
		t.Errorf("Producing not cost-sorted: %s first", prod[0].Name)
	}
	fws := r.Frameworks()
	if len(fws) != 2 || fws[0] != "fw1" || fws[1] != "fw2" {
		t.Errorf("Frameworks = %v", fws)
	}
	if r.Size() != 3 {
		t.Errorf("Size = %d", r.Size())
	}
}

func TestSubset(t *testing.T) {
	r := New()
	for _, n := range []string{"t.a", "t.b", "t.c"} {
		if err := r.Register(validCap(n)); err != nil {
			t.Fatal(err)
		}
	}
	sub, err := r.Subset("t.a", "t.c")
	if err != nil {
		t.Fatal(err)
	}
	if sub.Size() != 2 || !sub.Has("t.a") || sub.Has("t.b") {
		t.Error("subset wrong")
	}
	if _, err := r.Subset("t.zzz"); err == nil {
		t.Error("unknown subset member must error")
	}
	// Original unchanged.
	if r.Size() != 3 {
		t.Error("subset mutated original")
	}
}

func TestClone(t *testing.T) {
	r := New()
	if err := r.Register(validCap("t.a")); err != nil {
		t.Fatal(err)
	}
	c := r.Clone()
	if err := c.Register(validCap("t.b")); err != nil {
		t.Fatal(err)
	}
	if r.Has("t.b") {
		t.Error("clone shares map with original")
	}
}

func TestMarshalJSON(t *testing.T) {
	r := New()
	if err := r.Register(validCap("t.a")); err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.Contains(s, `"t.a"`) || !strings.Contains(s, `"impact.report"`) {
		t.Errorf("marshal missing fields: %s", s)
	}
	if strings.Contains(s, "Impl") {
		t.Error("implementation leaked into JSON")
	}
	var decoded []Capability
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if len(decoded) != 1 || decoded[0].Name != "t.a" {
		t.Errorf("decoded %+v", decoded)
	}
}

func TestCallInput(t *testing.T) {
	c := &Call{In: map[string]any{"x": 42}}
	v, err := c.Input("x")
	if err != nil || v != 42 {
		t.Errorf("Input(x) = %v, %v", v, err)
	}
	if _, err := c.Input("y"); err == nil {
		t.Error("unbound input must error")
	}
}

func TestCapabilityHelpers(t *testing.T) {
	c := validCap("t.a")
	if !c.HasTag("impact") || c.HasTag("nope") {
		t.Error("HasTag wrong")
	}
	if !c.Produces(TImpact) || c.Produces(TCableID) {
		t.Error("Produces wrong")
	}
	if p, ok := c.InputPort("in"); !ok || p.Type != TString {
		t.Error("InputPort wrong")
	}
	if _, ok := c.InputPort("zzz"); ok {
		t.Error("InputPort miss wrong")
	}
	if p, ok := c.OutputPort("out"); !ok || p.Type != TImpact {
		t.Error("OutputPort wrong")
	}
	if _, ok := c.OutputPort("zzz"); ok {
		t.Error("OutputPort miss wrong")
	}
}

func TestMustRegisterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustRegister should panic on invalid capability")
		}
	}()
	New().MustRegister(Capability{Name: "bad"})
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	// Planners read (Get, All, Producing, Size) while the curator
	// registers composites; under -race this verifies the RWMutex.
	r := New()
	r.MustRegister(validCap("seed.cap"))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				c := validCap(fmt.Sprintf("w%d.cap%d", w, i))
				if err := r.Register(c); err != nil {
					t.Errorf("register: %v", err)
				}
			}
		}(w)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, err := r.Get("seed.cap"); err != nil {
					t.Errorf("get: %v", err)
				}
				_ = r.All()
				_ = r.Producing(TImpact)
				_ = r.Size()
				_ = r.Clone()
			}
		}()
	}
	wg.Wait()
	if got := r.Size(); got != 1+4*25 {
		t.Errorf("size = %d after concurrent registration", got)
	}
}

package registry

// Generation contract: Register bumps it, failed registrations don't,
// Clone preserves it (identical contents), Subset starts fresh, and
// concurrent readers always see a value consistent with the catalog
// they observe.

import (
	"fmt"
	"sync"
	"testing"
)

func genCap(name string) Capability {
	return Capability{
		Name: name, Framework: "gen", Description: "generation test capability",
		Outputs: []Port{{Name: "out", Type: TString}},
		Impl:    func(c *Call) error { c.Out["out"] = "x"; return nil },
	}
}

func TestGenerationBumpsOnRegister(t *testing.T) {
	r := New()
	if g := r.Generation(); g != 0 {
		t.Fatalf("fresh registry generation = %d, want 0", g)
	}
	for i := 1; i <= 3; i++ {
		if err := r.Register(genCap(fmt.Sprintf("gen.c%d", i))); err != nil {
			t.Fatal(err)
		}
		if g := r.Generation(); g != uint64(i) {
			t.Fatalf("generation = %d after %d registrations", g, i)
		}
	}
	// Failed registrations (duplicate) must not move the counter.
	if err := r.Register(genCap("gen.c1")); err == nil {
		t.Fatal("duplicate registration succeeded")
	}
	if g := r.Generation(); g != 3 {
		t.Fatalf("generation = %d after failed registration, want 3", g)
	}
}

func TestCloneGenerationPreserved(t *testing.T) {
	r := New()
	r.MustRegister(genCap("gen.a"))
	r.MustRegister(genCap("gen.b"))
	c := r.Clone()
	if c.Generation() != r.Generation() {
		t.Fatalf("clone generation %d != source %d", c.Generation(), r.Generation())
	}
	// Divergence after the copy is independent.
	c.MustRegister(genCap("gen.c"))
	if c.Generation() != r.Generation()+1 {
		t.Fatalf("clone generation %d after register, source %d", c.Generation(), r.Generation())
	}
	if r.Generation() != 2 {
		t.Fatalf("source generation moved to %d", r.Generation())
	}
}

func TestSubsetGenerationFresh(t *testing.T) {
	r := New()
	for i := 0; i < 5; i++ {
		r.MustRegister(genCap(fmt.Sprintf("gen.c%d", i)))
	}
	sub, err := r.Subset("gen.c0", "gen.c3")
	if err != nil {
		t.Fatal(err)
	}
	// A subset is a freshly built registry: its generation counts only
	// its own registrations, not the source's history.
	if g := sub.Generation(); g != 2 {
		t.Fatalf("subset generation = %d, want 2", g)
	}
}

func TestGenerationConcurrent(t *testing.T) {
	r := New()
	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.MustRegister(genCap(fmt.Sprintf("gen.w%dc%d", w, i)))
				// A generation read racing writers must never exceed the
				// number of capabilities actually registered.
				if g, n := r.Generation(), r.Size(); g > uint64(writers*perWriter) || int(g) < 1 || n < 1 {
					t.Errorf("implausible generation %d (size %d)", g, n)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if g := r.Generation(); g != writers*perWriter {
		t.Fatalf("final generation = %d, want %d", g, writers*perWriter)
	}
}

package registry

// Watch/Unwatch contract: every successful Register pokes each watcher
// (non-blocking, coalesced by the channel's buffer), and Clone/Subset
// never inherit watchers.

import "testing"

func watchCap(name string) Capability {
	return Capability{
		Name: name, Framework: "watch", Description: "watch test capability",
		Outputs: []Port{{Name: "out", Type: TString}},
		Impl:    func(c *Call) error { c.Out["out"] = "x"; return nil },
	}
}

func TestWatchPokedOnRegister(t *testing.T) {
	r := New()
	ch := make(chan struct{}, 1)
	r.Watch(ch)

	r.MustRegister(watchCap("watch.one"))
	select {
	case <-ch:
	default:
		t.Fatal("watcher not poked by Register")
	}

	// Coalescing: a burst of registrations leaves at most one pending
	// poke on a capacity-1 channel, never blocking Register.
	r.MustRegister(watchCap("watch.two"))
	r.MustRegister(watchCap("watch.three"))
	<-ch
	select {
	case <-ch:
		t.Fatal("more than one pending poke on a capacity-1 watcher")
	default:
	}

	// A failed registration (duplicate) must not poke.
	if err := r.Register(watchCap("watch.one")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	select {
	case <-ch:
		t.Fatal("failed Register poked the watcher")
	default:
	}

	r.Unwatch(ch)
	r.MustRegister(watchCap("watch.four"))
	select {
	case <-ch:
		t.Fatal("unwatched channel still poked")
	default:
	}
	// Unwatch of an unknown channel is a no-op.
	r.Unwatch(make(chan struct{}))
}

func TestCloneAndSubsetDropWatchers(t *testing.T) {
	r := New()
	r.MustRegister(watchCap("watch.one"))
	ch := make(chan struct{}, 1)
	r.Watch(ch)

	c := r.Clone()
	c.MustRegister(watchCap("watch.two"))
	sub, err := r.Subset("watch.one")
	if err != nil {
		t.Fatal(err)
	}
	sub.MustRegister(watchCap("watch.three"))
	select {
	case <-ch:
		t.Fatal("registration on a clone/subset poked the source's watcher")
	default:
	}
}

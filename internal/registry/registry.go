// Package registry implements ArachNet's foundation: a curated catalog
// of measurement-tool capabilities described by what they do — typed
// inputs, typed outputs, constraints — never how they do it.
//
// The paper motivates this design directly: exposing entire codebases
// overwhelmed the agents with implementation detail, while a compact
// "measurement API" enables intelligent composition and scales linearly
// with the number of tools. Entries here carry an executable
// implementation so generated workflows can actually run, but agents
// only ever reason over the metadata.
package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// DataType names a value format flowing between capabilities. Types are
// namespaced strings (e.g. "cable.id", "impact.report") so that the
// workflow engine can check that producers and consumers agree.
type DataType string

// Core data types shared by the built-in frameworks.
const (
	TString      DataType = "scalar.string"
	TFloat       DataType = "scalar.float"
	TInt         DataType = "scalar.int"
	TBool        DataType = "scalar.bool"
	TStringList  DataType = "list.string"
	TCableID     DataType = "cable.id"
	TCableList   DataType = "cable.list"
	TCrossLayer  DataType = "cable.crosslayermap"
	TLinkSet     DataType = "link.set"
	TIPSet       DataType = "ip.set"
	TGeoTable    DataType = "geo.table"      // ip/link → country rows
	TImpact      DataType = "impact.report"  // country-level impact report
	TEventList   DataType = "event.list"     // disaster events
	TEventImpact DataType = "event.impact"   // per-event expectation impact
	TGlobal      DataType = "impact.global"  // combined multi-event impact
	TCascade     DataType = "cascade.report" // cable+AS cascade result
	TStress      DataType = "topo.stress"    // AS stress propagation result
	TBGPStream   DataType = "bgp.stream"     // update messages
	TBGPBursts   DataType = "bgp.bursts"     // detected bursts
	TTraceArch   DataType = "trace.archive"  // measurement archive
	TAnomaly     DataType = "trace.anomaly"  // latency anomaly finding
	TSuspects    DataType = "forensic.suspects"
	TVerdict     DataType = "forensic.verdict"
	TTimeline    DataType = "timeline.report" // unified cross-layer timeline
)

// Port is one named, typed input or output of a capability.
type Port struct {
	Name string   `json:"name"`
	Type DataType `json:"type"`
	Desc string   `json:"desc,omitempty"`
	// Optional marks inputs that may be left unbound.
	Optional bool `json:"optional,omitempty"`
}

// Call is the invocation context handed to a capability
// implementation: bound inputs, the output map to fill, the shared
// execution environment (opaque to this package), and the cancellation
// context of the run.
type Call struct {
	In  map[string]any
	Out map[string]any
	Env any
	// Ctx is the run's cancellation context. Long-running
	// implementations should honor it; composites propagate it into
	// their inner engine.
	Ctx context.Context
}

// Context returns the run's cancellation context, never nil.
func (c *Call) Context() context.Context {
	if c.Ctx == nil {
		return context.Background()
	}
	return c.Ctx
}

// Input fetches a bound input value or fails with a descriptive error.
func (c *Call) Input(name string) (any, error) {
	v, ok := c.In[name]
	if !ok {
		return nil, fmt.Errorf("registry: input %q not bound", name)
	}
	return v, nil
}

// Func is an executable capability implementation.
type Func func(*Call) error

// Capability is one registry entry.
type Capability struct {
	Name        string   `json:"name"`
	Framework   string   `json:"framework"`
	Description string   `json:"description"`
	Inputs      []Port   `json:"inputs,omitempty"`
	Outputs     []Port   `json:"outputs"`
	Constraints []string `json:"constraints,omitempty"`
	Tags        []string `json:"tags,omitempty"`
	// Cost is a coarse execution-cost estimate (1 cheap … 10 heavy),
	// used by WorkflowScout's trade-off scoring.
	Cost int `json:"cost"`
	// Composite marks capabilities promoted by RegistryCurator from
	// observed workflow patterns rather than hand-curated.
	Composite bool `json:"composite,omitempty"`
	// Pure declares the capability memoizable: given the same bound
	// inputs and the same execution environment it always produces the
	// same outputs and performs no externally visible side effects.
	// Engines may serve a pure step's outputs from a cross-call cache
	// instead of invoking Impl. Capabilities that read mutable external
	// state, are randomized, or mutate the environment must leave Pure
	// false (the default, which is always safe).
	Pure bool `json:"pure,omitempty"`
	// Reads names the environment facets a Pure capability consults
	// (beyond its bound inputs). Engines use it to scope a step's cache
	// fingerprint to just those facets, so mutating one facet (e.g.
	// injecting a new measurement scenario) dirties only the steps that
	// actually read it — the seam incremental re-execution builds on.
	// The facet vocabulary belongs to the environment implementation;
	// an empty list means "unknown: assume every facet" (the default,
	// which is always safe).
	Reads []string `json:"reads,omitempty"`

	Impl Func `json:"-"`
}

// HasTag reports whether the capability carries a tag.
func (c *Capability) HasTag(tag string) bool {
	for _, t := range c.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

// Produces reports whether the capability has an output of the type.
func (c *Capability) Produces(t DataType) bool {
	for _, p := range c.Outputs {
		if p.Type == t {
			return true
		}
	}
	return false
}

// InputPort finds an input port by name.
func (c *Capability) InputPort(name string) (Port, bool) {
	for _, p := range c.Inputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// OutputPort finds an output port by name.
func (c *Capability) OutputPort(name string) (Port, bool) {
	for _, p := range c.Outputs {
		if p.Name == name {
			return p, true
		}
	}
	return Port{}, false
}

// ErrNotFound is returned when a capability is missing.
var ErrNotFound = errors.New("registry: capability not found")

// Registry is the capability catalog. It is safe for concurrent use:
// many planners read (Get, All, Producing, ...) while the curator
// promotes composites (Register). Capabilities are immutable once
// registered, so returned pointers may be shared freely.
type Registry struct {
	mu   sync.RWMutex
	caps map[string]*Capability
	// gen counts successful registrations. Downstream caches key on it
	// so a curation promotion invalidates anything planned against the
	// smaller catalog.
	gen uint64
	// watchers are poked (non-blocking send) after every successful
	// Register, so standing queries learn about catalog growth without
	// polling Generation. See Watch.
	watchers []chan<- struct{}
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{caps: make(map[string]*Capability)}
}

// Register validates and adds a capability. Registration fails on
// duplicate names, missing implementation, malformed ports or a
// missing framework.
func (r *Registry) Register(c Capability) error {
	if c.Name == "" || !strings.Contains(c.Name, ".") {
		return fmt.Errorf("registry: capability name %q must be framework-qualified (framework.verb)", c.Name)
	}
	if c.Framework == "" {
		return fmt.Errorf("registry: capability %q has no framework", c.Name)
	}
	if c.Impl == nil {
		return fmt.Errorf("registry: capability %q has no implementation", c.Name)
	}
	if c.Description == "" {
		return fmt.Errorf("registry: capability %q has no description", c.Name)
	}
	if len(c.Outputs) == 0 {
		return fmt.Errorf("registry: capability %q produces nothing", c.Name)
	}
	for _, ports := range [][]Port{c.Inputs, c.Outputs} {
		seen := map[string]bool{}
		for _, p := range ports {
			if p.Name == "" || p.Type == "" {
				return fmt.Errorf("registry: capability %q has unnamed or untyped port", c.Name)
			}
			if seen[p.Name] {
				return fmt.Errorf("registry: capability %q has duplicate port %q", c.Name, p.Name)
			}
			seen[p.Name] = true
		}
	}
	if c.Cost <= 0 {
		c.Cost = 1
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.caps[c.Name]; dup {
		return fmt.Errorf("registry: capability %q already registered", c.Name)
	}
	cc := c
	r.caps[c.Name] = &cc
	r.gen++
	for _, ch := range r.watchers {
		select {
		case ch <- struct{}{}:
		default: // watcher already has a pending poke
		}
	}
	return nil
}

// Watch registers ch to be poked — a non-blocking send of one empty
// struct — after every successful Register. A buffered channel of
// capacity 1 coalesces bursts of registrations into one wake-up; the
// watcher re-reads Generation to decide what changed. Watchers are
// per-instance: Clone and Subset never inherit them.
func (r *Registry) Watch(ch chan<- struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.watchers = append(r.watchers, ch)
}

// Unwatch removes a channel registered with Watch. Unknown channels
// are ignored.
func (r *Registry) Unwatch(ch chan<- struct{}) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i, w := range r.watchers {
		if w == ch {
			r.watchers = append(r.watchers[:i], r.watchers[i+1:]...)
			return
		}
	}
}

// Generation returns a monotonic counter bumped by every successful
// Register. Because capabilities are immutable and never removed, two
// reads returning the same generation bracket an unchanged catalog —
// plan caches key on it to stay coherent while the curator promotes
// composites concurrently. Clone preserves the source's generation
// (same catalog contents); Subset starts from zero and ends at the
// number of capabilities copied, like any freshly built registry.
func (r *Registry) Generation() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// MustRegister panics on registration failure; for built-in catalogs
// whose validity is a program invariant.
func (r *Registry) MustRegister(c Capability) {
	if err := r.Register(c); err != nil {
		panic(err)
	}
}

// Get returns a capability by name.
func (r *Registry) Get(name string) (*Capability, error) {
	r.mu.RLock()
	c, ok := r.caps[name]
	r.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return c, nil
}

// Has reports whether a capability exists.
func (r *Registry) Has(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.caps[name]
	return ok
}

// Size returns the number of registered capabilities.
func (r *Registry) Size() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.caps)
}

// All returns every capability sorted by name.
func (r *Registry) All() []*Capability {
	r.mu.RLock()
	out := make([]*Capability, 0, len(r.caps))
	for _, c := range r.caps {
		out = append(out, c)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// ByFramework returns the capabilities of one framework, sorted.
func (r *Registry) ByFramework(fw string) []*Capability {
	var out []*Capability
	for _, c := range r.All() {
		if c.Framework == fw {
			out = append(out, c)
		}
	}
	return out
}

// ByTag returns capabilities carrying a tag, sorted by name.
func (r *Registry) ByTag(tag string) []*Capability {
	var out []*Capability
	for _, c := range r.All() {
		if c.HasTag(tag) {
			out = append(out, c)
		}
	}
	return out
}

// Producing returns capabilities with an output of the given type,
// sorted by ascending cost then name — the order WorkflowScout explores.
func (r *Registry) Producing(t DataType) []*Capability {
	var out []*Capability
	for _, c := range r.All() {
		if c.Produces(t) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cost != out[j].Cost {
			return out[i].Cost < out[j].Cost
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Frameworks lists the distinct frameworks present, sorted.
func (r *Registry) Frameworks() []string {
	set := map[string]bool{}
	for _, c := range r.All() {
		set[c.Framework] = true
	}
	out := make([]string, 0, len(set))
	for f := range set {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}

// Subset returns a new registry holding only the named capabilities.
// Unknown names are reported as an error. Used by evaluation setups
// that restrict the agent to "core Nautilus functions only".
//
// The subset shares the source's *Capability pointers rather than
// copying the structs: capabilities are immutable once registered, so
// a handle resolved from the parent, a Clone, or a Subset is the same
// pointer — which is what lets compiled plans hold capability pointers
// across registry views. Entries were validated when first registered,
// so only name resolution and duplicate screening happen here. Like
// any freshly built registry, the subset's generation counts its own
// registrations (len(names)).
func (r *Registry) Subset(names ...string) (*Registry, error) {
	sub := New()
	for _, n := range names {
		c, err := r.Get(n)
		if err != nil {
			return nil, err
		}
		if _, dup := sub.caps[c.Name]; dup {
			return nil, fmt.Errorf("registry: capability %q already registered", c.Name)
		}
		sub.caps[c.Name] = c
		sub.gen++
	}
	return sub, nil
}

// Clone returns an independent registry with the same contents.
// Capabilities are immutable once registered, so the clone shares the
// source's *Capability pointers (implementations were always shared
// function values); future Registers on either side stay local to it.
// The clone inherits the source's generation: its contents are
// identical, so caches keyed on (catalog, generation) remain coherent
// across the copy, and compiled plans resolved against the source hold
// pointers that are valid verbatim in the clone.
func (r *Registry) Clone() *Registry {
	out := New()
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.caps {
		out.caps[c.Name] = c
	}
	out.gen = r.gen
	return out
}

// MarshalJSON serializes the catalog metadata (without implementations)
// as a deterministic JSON array. This is the registry document an LLM
// agent would be prompted with.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.MarshalIndent(r.All(), "", "  ")
}

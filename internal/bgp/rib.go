// Package bgp implements the BGP substrate: policy-aware route
// computation over the synthetic AS topology (the Gao–Rexford model),
// event-driven update streams, an MRT-style binary dump format, and
// update-burst anomaly detection.
//
// It stands in for the RouteViews/RIS data sources the paper's workflows
// consume: instead of downloading collector dumps, workflows compute
// tables and updates from the simulated world, with failures expressed
// as sets of dead IP links.
package bgp

import (
	"fmt"
	"net/netip"
	"sort"

	"arachnet/internal/netsim"
)

// RouteKind records how a route was learned, which drives preference.
type RouteKind int

// Route kinds in decreasing preference order.
const (
	KindOrigin   RouteKind = iota // the viewer originates the prefix
	KindCustomer                  // learned from a customer
	KindPeer                      // learned from a peer
	KindProvider                  // learned from a provider
)

// String implements fmt.Stringer.
func (k RouteKind) String() string {
	switch k {
	case KindOrigin:
		return "origin"
	case KindCustomer:
		return "customer"
	case KindPeer:
		return "peer"
	case KindProvider:
		return "provider"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Route is one AS-level best path from a viewer to an origin.
type Route struct {
	Origin netsim.ASN
	Path   []netsim.ASN // viewer first, origin last
	Kind   RouteKind
}

// Table holds the best route of every AS (viewer) toward every origin
// AS, under a given failure scenario. It is the AS-level analogue of a
// full RIB snapshot across all collectors. It also records prefixes
// whose originating PoP was cut off from its AS's backbone — those are
// withdrawn globally even though the AS itself stays reachable (BGP
// sees the origin stop announcing, not the intra-AS breakage).
type Table struct {
	routes      map[netsim.ASN]map[netsim.ASN]Route // viewer → origin → route
	asns        []netsim.ASN
	partitioned map[netip.Prefix]bool
}

// Partitioned reports whether a prefix's originating PoP is cut off
// from its AS backbone under this table's failure scenario.
func (t *Table) Partitioned(p netip.Prefix) bool { return t.partitioned[p] }

// PartitionedPrefixes computes the prefixes whose (AS, country) router
// cannot reach its AS's home router over alive intra-AS links. Those
// origins stop announcing: the control-plane shadow of a backbone cut.
func PartitionedPrefixes(w *netsim.World, failed map[netsim.LinkID]bool) map[netip.Prefix]bool {
	out := map[netip.Prefix]bool{}
	// Build per-AS alive backbone adjacency.
	adj := map[netsim.ASN]map[netsim.RouterID][]netsim.RouterID{}
	for _, l := range w.IPLinks {
		if !l.IntraAS || failed[l.ID] {
			continue
		}
		asn := l.ASLinkAB[0]
		if adj[asn] == nil {
			adj[asn] = map[netsim.RouterID][]netsim.RouterID{}
		}
		adj[asn][l.A] = append(adj[asn][l.A], l.B)
		adj[asn][l.B] = append(adj[asn][l.B], l.A)
	}
	prefixesOf := map[string][]netip.Prefix{} // "asn/country" → prefixes
	for _, p := range w.Prefixes {
		key := fmt.Sprintf("%d/%s", p.Origin, p.Country)
		prefixesOf[key] = append(prefixesOf[key], p.CIDR)
	}
	for _, a := range w.ASes {
		routers := w.RoutersOf(a.ASN)
		if len(routers) < 2 {
			continue
		}
		home, ok := w.RouterIn(a.ASN, a.Home)
		if !ok {
			r, _ := w.RouterByID(routers[0])
			home = r
		}
		reach := map[netsim.RouterID]bool{home.ID: true}
		queue := []netsim.RouterID{home.ID}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[a.ASN][cur] {
				if !reach[nb] {
					reach[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		for _, id := range routers {
			if reach[id] {
				continue
			}
			r, _ := w.RouterByID(id)
			for _, p := range prefixesOf[fmt.Sprintf("%d/%s", a.ASN, r.Country)] {
				out[p] = true
			}
		}
	}
	return out
}

// adjacency is the working AS graph after removing failed links.
type adjacency struct {
	customers map[netsim.ASN][]netsim.ASN // provider → customers
	providers map[netsim.ASN][]netsim.ASN // customer → providers
	peers     map[netsim.ASN][]netsim.ASN
}

// liveAdjacency derives the AS graph that survives a set of failed IP
// links: an AS adjacency is alive while at least one inter-AS IP link
// realizing it is alive.
func liveAdjacency(w *netsim.World, failed map[netsim.LinkID]bool) adjacency {
	alive := make(map[[2]netsim.ASN]bool)
	for _, l := range w.IPLinks {
		if l.IntraAS || failed[l.ID] {
			continue
		}
		a, b := l.ASLinkAB[0], l.ASLinkAB[1]
		if a > b {
			a, b = b, a
		}
		alive[[2]netsim.ASN{a, b}] = true
	}
	adj := adjacency{
		customers: make(map[netsim.ASN][]netsim.ASN),
		providers: make(map[netsim.ASN][]netsim.ASN),
		peers:     make(map[netsim.ASN][]netsim.ASN),
	}
	for _, al := range w.ASLinks {
		a, b := al.A, al.B
		ka, kb := a, b
		if ka > kb {
			ka, kb = kb, ka
		}
		if !alive[[2]netsim.ASN{ka, kb}] {
			continue
		}
		switch al.Rel {
		case netsim.CustomerToProvider:
			adj.providers[a] = append(adj.providers[a], b)
			adj.customers[b] = append(adj.customers[b], a)
		case netsim.PeerToPeer:
			adj.peers[a] = append(adj.peers[a], b)
			adj.peers[b] = append(adj.peers[b], a)
		}
	}
	for _, m := range []map[netsim.ASN][]netsim.ASN{adj.customers, adj.providers, adj.peers} {
		for _, ns := range m {
			sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
		}
	}
	return adj
}

// ComputeTable computes best routes for every (viewer, origin) pair
// under the Gao–Rexford export policy: routes learned from customers are
// exported to everyone; routes learned from peers or providers are
// exported only to customers. Preference is customer > peer > provider,
// then shortest AS path, then lowest next-hop ASN.
func ComputeTable(w *netsim.World, failed map[netsim.LinkID]bool) *Table {
	adj := liveAdjacency(w, failed)
	t := &Table{
		routes:      make(map[netsim.ASN]map[netsim.ASN]Route, len(w.ASes)),
		partitioned: PartitionedPrefixes(w, failed),
	}
	for _, a := range w.ASes {
		t.asns = append(t.asns, a.ASN)
		t.routes[a.ASN] = make(map[netsim.ASN]Route)
	}
	sort.Slice(t.asns, func(i, j int) bool { return t.asns[i] < t.asns[j] })

	for _, origin := range t.asns {
		computeOrigin(t, adj, origin)
	}
	return t
}

// computeOrigin runs the three-phase valley-free propagation from one
// origin and stores the best route of every viewer that can reach it.
type candidate struct {
	kind RouteKind
	hops int
	next netsim.ASN // next hop toward origin (for deterministic tiebreak)
	path []netsim.ASN
}

func better(a, b candidate) bool {
	if a.kind != b.kind {
		return a.kind < b.kind
	}
	if a.hops != b.hops {
		return a.hops < b.hops
	}
	return a.next < b.next
}

func computeOrigin(t *Table, adj adjacency, origin netsim.ASN) {
	best := map[netsim.ASN]candidate{
		origin: {kind: KindOrigin, hops: 0, next: origin, path: []netsim.ASN{origin}},
	}

	// Phase 1 — "up": propagate along customer→provider edges. The
	// receiving provider learns the route from its customer, so these are
	// customer routes, usable as a base for every later phase.
	frontier := []netsim.ASN{origin}
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		var next []netsim.ASN
		for _, u := range frontier {
			base := best[u]
			for _, p := range adj.providers[u] {
				cand := candidate{
					kind: KindCustomer, hops: base.hops + 1, next: u,
					path: appendPath(p, base.path),
				}
				if cur, ok := best[p]; !ok || better(cand, cur) {
					best[p] = cand
					next = append(next, p)
				}
			}
		}
		frontier = next
	}

	// Phase 2 — "across": a single peer edge. Only customer/origin routes
	// are exported to peers.
	var peerGains []netsim.ASN
	uphill := make([]netsim.ASN, 0, len(best))
	for asn := range best {
		uphill = append(uphill, asn)
	}
	sort.Slice(uphill, func(i, j int) bool { return uphill[i] < uphill[j] })
	for _, u := range uphill {
		base := best[u]
		if base.kind != KindCustomer && base.kind != KindOrigin {
			continue
		}
		for _, p := range adj.peers[u] {
			cand := candidate{
				kind: KindPeer, hops: base.hops + 1, next: u,
				path: appendPath(p, base.path),
			}
			if cur, ok := best[p]; !ok || better(cand, cur) {
				best[p] = cand
				peerGains = append(peerGains, p)
			}
		}
	}
	_ = peerGains

	// Phase 3 — "down": propagate along provider→customer edges. Any
	// route is exported to customers; received routes are provider
	// routes. Dijkstra-like expansion ordered by (hops, next) keeps it
	// deterministic.
	queue := make([]netsim.ASN, 0, len(best))
	for asn := range best {
		queue = append(queue, asn)
	}
	for len(queue) > 0 {
		sort.Slice(queue, func(i, j int) bool {
			bi, bj := best[queue[i]], best[queue[j]]
			if bi.hops != bj.hops {
				return bi.hops < bj.hops
			}
			return queue[i] < queue[j]
		})
		u := queue[0]
		queue = queue[1:]
		base := best[u]
		for _, c := range adj.customers[u] {
			cand := candidate{
				kind: KindProvider, hops: base.hops + 1, next: u,
				path: appendPath(c, base.path),
			}
			if cur, ok := best[c]; !ok || better(cand, cur) {
				best[c] = cand
				queue = append(queue, c)
			}
		}
	}

	for viewer, c := range best {
		t.routes[viewer][origin] = Route{Origin: origin, Path: c.path, Kind: c.kind}
	}
}

func appendPath(head netsim.ASN, tail []netsim.ASN) []netsim.ASN {
	p := make([]netsim.ASN, 0, len(tail)+1)
	p = append(p, head)
	p = append(p, tail...)
	return p
}

// Route returns the best route from viewer to origin.
func (t *Table) Route(viewer, origin netsim.ASN) (Route, bool) {
	r, ok := t.routes[viewer][origin]
	return r, ok
}

// Reachable reports whether viewer has any route to origin.
func (t *Table) Reachable(viewer, origin netsim.ASN) bool {
	_, ok := t.routes[viewer][origin]
	return ok
}

// Viewers returns every AS in the table, ascending.
func (t *Table) Viewers() []netsim.ASN {
	out := make([]netsim.ASN, len(t.asns))
	copy(out, t.asns)
	return out
}

// RoutesFrom returns all routes of one viewer keyed by origin.
func (t *Table) RoutesFrom(viewer netsim.ASN) map[netsim.ASN]Route {
	out := make(map[netsim.ASN]Route, len(t.routes[viewer]))
	for o, r := range t.routes[viewer] {
		out[o] = r
	}
	return out
}

// ReachabilityMatrixSize returns (reachable pairs, total pairs) as a
// coarse connectivity metric used by impact analyses.
func (t *Table) ReachabilityMatrixSize() (reachable, total int) {
	n := len(t.asns)
	total = n * n
	for _, m := range t.routes {
		reachable += len(m)
	}
	return reachable, total
}

// PathEqual reports whether two AS paths are identical.
func PathEqual(a, b []netsim.ASN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

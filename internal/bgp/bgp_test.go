package bgp

import (
	"bytes"
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"arachnet/internal/netsim"
)

func testWorld(t testing.TB) *netsim.World {
	t.Helper()
	w, err := netsim.Generate(netsim.SmallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestComputeTableFullReachability(t *testing.T) {
	w := testWorld(t)
	tab := ComputeTable(w, nil)
	reach, total := tab.ReachabilityMatrixSize()
	if reach != total {
		t.Errorf("healthy world not fully reachable: %d/%d", reach, total)
	}
}

func TestRoutesAreValleyFree(t *testing.T) {
	w := testWorld(t)
	tab := ComputeTable(w, nil)

	rel := map[[2]netsim.ASN]string{} // (from, to) from from's perspective
	for _, l := range w.ASLinks {
		switch l.Rel {
		case netsim.CustomerToProvider:
			rel[[2]netsim.ASN{l.A, l.B}] = "up"   // customer → provider
			rel[[2]netsim.ASN{l.B, l.A}] = "down" // provider → customer
		case netsim.PeerToPeer:
			rel[[2]netsim.ASN{l.A, l.B}] = "across"
			rel[[2]netsim.ASN{l.B, l.A}] = "across"
		}
	}
	for _, viewer := range tab.Viewers() {
		for origin, r := range tab.RoutesFrom(viewer) {
			if r.Path[0] != viewer || r.Path[len(r.Path)-1] != origin {
				t.Fatalf("path endpoints wrong: %v for %d→%d", r.Path, viewer, origin)
			}
			// Walking from the origin toward the viewer, a valley-free
			// path is a sequence of "up" hops, at most one "across", then
			// only "down" hops. Equivalently from viewer→origin the
			// reversed sequence: downs, optional across, ups.
			seenUp := false
			seenAcross := 0
			for i := len(r.Path) - 1; i > 0; i-- {
				hop := rel[[2]netsim.ASN{r.Path[i], r.Path[i-1]}]
				switch hop {
				case "up":
					if seenAcross > 0 || seenUp && false {
						t.Fatalf("up after across in %v", r.Path)
					}
				case "across":
					seenAcross++
					if seenAcross > 1 {
						t.Fatalf("two peer hops in %v", r.Path)
					}
				case "down":
					seenUp = true // once we go down, no more up/across allowed
				default:
					t.Fatalf("path %v uses non-adjacent hop %d→%d", r.Path, r.Path[i], r.Path[i-1])
				}
				if hop != "down" && seenUp {
					t.Fatalf("valley in path %v", r.Path)
				}
			}
			// No loops.
			seen := map[netsim.ASN]bool{}
			for _, a := range r.Path {
				if seen[a] {
					t.Fatalf("loop in path %v", r.Path)
				}
				seen[a] = true
			}
		}
	}
}

func TestPreferCustomerRoutes(t *testing.T) {
	w := testWorld(t)
	tab := ComputeTable(w, nil)
	// Every origin's providers must use a customer route to it.
	for _, l := range w.ASLinks {
		if l.Rel != netsim.CustomerToProvider {
			continue
		}
		r, ok := tab.Route(l.B, l.A) // provider viewing its customer
		if !ok {
			t.Fatalf("provider %d cannot reach customer %d", l.B, l.A)
		}
		if r.Kind != KindCustomer {
			t.Errorf("provider %d reaches customer %d via %v, want customer route", l.B, l.A, r.Kind)
		}
	}
}

func TestSelfRoute(t *testing.T) {
	w := testWorld(t)
	tab := ComputeTable(w, nil)
	for _, a := range w.ASes {
		r, ok := tab.Route(a.ASN, a.ASN)
		if !ok || r.Kind != KindOrigin || len(r.Path) != 1 {
			t.Fatalf("self route of %d = %+v, %v", a.ASN, r, ok)
		}
	}
}

func TestComputeTableDeterministic(t *testing.T) {
	w := testWorld(t)
	t1 := ComputeTable(w, nil)
	t2 := ComputeTable(w, nil)
	for _, v := range t1.Viewers() {
		r1 := t1.RoutesFrom(v)
		r2 := t2.RoutesFrom(v)
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("tables differ for viewer %d", v)
		}
	}
}

// failAllLinksOfAS returns the IDs of every inter-AS link touching asn.
func failAllLinksOfAS(w *netsim.World, asn netsim.ASN) map[netsim.LinkID]bool {
	failed := map[netsim.LinkID]bool{}
	for _, l := range w.IPLinks {
		if l.IntraAS {
			continue
		}
		if l.ASLinkAB[0] == asn || l.ASLinkAB[1] == asn {
			failed[l.ID] = true
		}
	}
	return failed
}

func TestFailureReducesReachability(t *testing.T) {
	w := testWorld(t)
	// Cut off a stub AS entirely: nobody can reach it anymore.
	var stub netsim.ASN
	for _, a := range w.ASes {
		if a.Tier == netsim.Stub {
			stub = a.ASN
			break
		}
	}
	failed := failAllLinksOfAS(w, stub)
	tab := ComputeTable(w, failed)
	for _, v := range tab.Viewers() {
		if v == stub {
			continue
		}
		if tab.Reachable(v, stub) {
			t.Fatalf("AS %d still reaches isolated stub %d", v, stub)
		}
	}
	// The stub keeps its self route.
	if !tab.Reachable(stub, stub) {
		t.Error("stub lost its own origin route")
	}
}

func TestPartialFailureReroutes(t *testing.T) {
	w := testWorld(t)
	base := ComputeTable(w, nil)

	// Fail the single highest-distance submarine link: paths must either
	// survive identical (unaffected) or change; total reachability must
	// not collapse.
	var worst netsim.IPLink
	for _, l := range w.SubmarineLinks() {
		if l.DistKm > worst.DistKm {
			worst = l
		}
	}
	failed := map[netsim.LinkID]bool{worst.ID: true}
	tab := ComputeTable(w, failed)
	reach, total := tab.ReachabilityMatrixSize()
	baseReach, _ := base.ReachabilityMatrixSize()
	if reach > baseReach {
		t.Errorf("failure increased reachability: %d > %d", reach, baseReach)
	}
	if float64(reach) < 0.9*float64(total) {
		t.Errorf("single link failure collapsed reachability to %d/%d", reach, total)
	}
}

func TestDiffEmitsWithdrawalsOnIsolation(t *testing.T) {
	w := testWorld(t)
	var stub netsim.ASN
	for _, a := range w.ASes {
		if a.Tier == netsim.Stub {
			stub = a.ASN
			break
		}
	}
	before := ComputeTable(w, nil)
	after := ComputeTable(w, failAllLinksOfAS(w, stub))
	collectors := []netsim.ASN{w.ASes[0].ASN}
	at := time.Date(2025, 6, 1, 12, 0, 0, 0, time.UTC)
	msgs := Diff(w, before, after, collectors, at)
	var withdrawals int
	for _, m := range msgs {
		if !m.Time.Equal(at) {
			t.Fatalf("message time %v, want %v", m.Time, at)
		}
		if m.Type == Withdraw {
			withdrawals++
			if len(m.Path) != 0 {
				t.Error("withdrawal carries a path")
			}
		}
	}
	if withdrawals == 0 {
		t.Fatal("no withdrawals after isolating a stub")
	}
}

func TestDiffEmptyOnNoChange(t *testing.T) {
	w := testWorld(t)
	tab := ComputeTable(w, nil)
	msgs := Diff(w, tab, tab, tab.Viewers(), time.Now())
	if len(msgs) != 0 {
		t.Fatalf("diff of identical tables = %d messages", len(msgs))
	}
}

func TestGenerateStream(t *testing.T) {
	w := testWorld(t)
	start := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	var stub netsim.ASN
	for _, a := range w.ASes {
		if a.Tier == netsim.Stub {
			stub = a.ASN
			break
		}
	}
	var links []netsim.LinkID
	for id := range failAllLinksOfAS(w, stub) {
		links = append(links, id)
	}
	events := []FailureEvent{{At: start.Add(12 * time.Hour), Links: links, Label: "test"}}
	cfg := StreamConfig{
		Start: start, End: start.Add(24 * time.Hour),
		Collectors:   []netsim.ASN{w.ASes[0].ASN, w.ASes[1].ASN},
		NoisePerHour: 4, Seed: 1,
	}
	msgs, err := GenerateStream(w, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 {
		t.Fatal("empty stream")
	}
	// Time-ordered.
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Time.Before(msgs[i-1].Time) {
			t.Fatal("stream not time-ordered")
		}
	}
	// Withdrawals cluster at the event time.
	var withAt, withTotal int
	for _, m := range msgs {
		if m.Type == Withdraw {
			withTotal++
			if m.Time.Equal(events[0].At) {
				withAt++
			}
		}
	}
	if withTotal == 0 || withAt != withTotal {
		t.Errorf("withdrawals: %d at event of %d total", withAt, withTotal)
	}
	// Determinism.
	again, err := GenerateStream(w, events, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msgs, again) {
		t.Error("stream not deterministic")
	}
}

func TestGenerateStreamValidation(t *testing.T) {
	w := testWorld(t)
	now := time.Now()
	if _, err := GenerateStream(w, nil, StreamConfig{Start: now, End: now}); err == nil {
		t.Error("empty window must error")
	}
	if _, err := GenerateStream(w, nil, StreamConfig{Start: now, End: now.Add(time.Hour)}); err == nil {
		t.Error("no collectors must error")
	}
}

func TestDumpRoundTrip(t *testing.T) {
	msgs := []Message{
		{
			Time: time.Date(2025, 6, 1, 1, 2, 3, 4, time.UTC), Collector: 101,
			Type: Announce, Prefix: netip.MustParsePrefix("10.1.2.0/24"),
			Path: []netsim.ASN{101, 102, 103},
		},
		{
			Time: time.Date(2025, 6, 1, 2, 0, 0, 0, time.UTC), Collector: 102,
			Type: Withdraw, Prefix: netip.MustParsePrefix("10.9.0.0/16"),
		},
	}
	var buf bytes.Buffer
	if err := WriteDump(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(msgs, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, msgs)
	}
}

func TestDumpEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteDump(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDump(&buf)
	if err != nil || len(got) != 0 {
		t.Fatalf("empty dump read = %v, %v", got, err)
	}
}

func TestDumpBadMagic(t *testing.T) {
	_, err := ReadDump(bytes.NewReader([]byte("NOTADUMPFILE")))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
	_, err = ReadDump(bytes.NewReader(nil))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("empty input err = %v, want ErrBadMagic", err)
	}
}

func TestDumpTruncated(t *testing.T) {
	msgs := []Message{{
		Time: time.Now().UTC(), Collector: 1, Type: Announce,
		Prefix: netip.MustParsePrefix("10.0.0.0/24"), Path: []netsim.ASN{1, 2},
	}}
	var buf bytes.Buffer
	if err := WriteDump(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 9; cut < len(full)-1; cut += 3 {
		_, err := ReadDump(bytes.NewReader(full[:cut]))
		if err == nil {
			t.Errorf("truncation at %d not detected", cut)
		}
	}
}

func TestDumpCorruptType(t *testing.T) {
	msgs := []Message{{
		Time: time.Now().UTC(), Collector: 1, Type: Announce,
		Prefix: netip.MustParsePrefix("10.0.0.0/24"),
	}}
	var buf bytes.Buffer
	if err := WriteDump(&buf, msgs); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[8+12] = 99 // type byte of first record
	_, err := ReadDump(bytes.NewReader(raw))
	if !errors.Is(err, ErrCorruptRecord) {
		t.Fatalf("err = %v, want ErrCorruptRecord", err)
	}
}

func TestDumpRejectsIPv6AndLongPaths(t *testing.T) {
	var buf bytes.Buffer
	dw := NewDumpWriter(&buf)
	err := dw.WriteMessage(Message{
		Time: time.Now(), Type: Announce,
		Prefix: netip.MustParsePrefix("2001:db8::/32"),
	})
	if err == nil {
		t.Error("IPv6 prefix accepted")
	}
	err = dw.WriteMessage(Message{
		Time: time.Now(), Type: Announce,
		Prefix: netip.MustParsePrefix("10.0.0.0/24"),
		Path:   make([]netsim.ASN, maxPathLen+1),
	})
	if err == nil {
		t.Error("oversized path accepted")
	}
}

func TestDumpQuickRoundTrip(t *testing.T) {
	cfg := &quick.Config{MaxCount: 100}
	f := func(tsNanos int64, collector uint32, typ bool, a, b, c, d byte, bits uint8, rawPath []uint32) bool {
		m := Message{
			Time:      time.Unix(0, tsNanos).UTC(),
			Collector: netsim.ASN(collector),
			Type:      Announce,
			Prefix:    netip.PrefixFrom(netip.AddrFrom4([4]byte{a, b, c, d}), int(bits%33)),
		}
		if !typ {
			m.Type = Withdraw
		} else {
			if len(rawPath) > maxPathLen {
				rawPath = rawPath[:maxPathLen]
			}
			for _, p := range rawPath {
				m.Path = append(m.Path, netsim.ASN(p))
			}
		}
		var buf bytes.Buffer
		if err := WriteDump(&buf, []Message{m}); err != nil {
			return false
		}
		got, err := ReadDump(&buf)
		if err != nil || len(got) != 1 {
			return false
		}
		return reflect.DeepEqual(got[0], m)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestDetectBursts(t *testing.T) {
	base := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	var msgs []Message
	pfx := netip.MustParsePrefix("10.0.1.0/24")
	// 12 quiet hours: 2 announcements per hour.
	for h := 0; h < 12; h++ {
		for i := 0; i < 2; i++ {
			msgs = append(msgs, Message{
				Time: base.Add(time.Duration(h)*time.Hour + time.Duration(i)*7*time.Minute),
				Type: Announce, Prefix: pfx,
			})
		}
	}
	// Hour 12: withdrawal storm.
	for i := 0; i < 80; i++ {
		msgs = append(msgs, Message{
			Time: base.Add(12*time.Hour + time.Duration(i)*10*time.Second),
			Type: Withdraw, Prefix: pfx,
		})
	}
	bursts := DetectBursts(msgs, time.Hour, 5)
	if len(bursts) == 0 {
		t.Fatal("storm not detected")
	}
	b := bursts[0]
	if !b.Start.Equal(base.Add(12 * time.Hour)) {
		t.Errorf("burst at %v, want hour 12", b.Start)
	}
	if !b.WithdrawHeavy {
		t.Error("withdrawal storm not flagged withdraw-heavy")
	}
	if len(b.TopPrefixes) == 0 || b.TopPrefixes[0] != pfx.String() {
		t.Errorf("top prefixes = %v", b.TopPrefixes)
	}
}

func TestDetectBurstsQuietStream(t *testing.T) {
	base := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	var msgs []Message
	for h := 0; h < 24; h++ {
		msgs = append(msgs, Message{Time: base.Add(time.Duration(h) * time.Hour), Type: Announce,
			Prefix: netip.MustParsePrefix("10.0.0.0/24")})
	}
	if got := DetectBursts(msgs, time.Hour, 6); len(got) != 0 {
		t.Errorf("false positives on quiet stream: %d", len(got))
	}
	if got := DetectBursts(nil, time.Hour, 3); got != nil {
		t.Error("nil input should yield nil")
	}
	if got := DetectBursts(msgs, 0, 3); got != nil {
		t.Error("zero bin should yield nil")
	}
}

func TestCorrelateWindow(t *testing.T) {
	base := time.Date(2025, 6, 1, 0, 0, 0, 0, time.UTC)
	pfx := netip.MustParsePrefix("10.0.0.0/24")
	msgs := []Message{
		{Time: base.Add(1 * time.Hour), Type: Withdraw, Prefix: pfx},
		{Time: base.Add(2 * time.Hour), Type: Withdraw, Prefix: pfx},
		{Time: base.Add(20 * time.Hour), Type: Withdraw, Prefix: pfx},
		{Time: base.Add(2 * time.Hour), Type: Announce, Prefix: pfx},
	}
	got := CorrelateWindow(msgs, base, base.Add(3*time.Hour))
	if got < 0.66 || got > 0.67 {
		t.Errorf("correlation = %f, want 2/3", got)
	}
	if CorrelateWindow(nil, base, base.Add(time.Hour)) != 0 {
		t.Error("empty stream correlation must be 0")
	}
}

func BenchmarkComputeTable(b *testing.B) {
	w := testWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ComputeTable(w, nil)
	}
}

func BenchmarkDumpWrite(b *testing.B) {
	msgs := make([]Message, 1000)
	pfx := netip.MustParsePrefix("10.0.0.0/24")
	for i := range msgs {
		msgs[i] = Message{Time: time.Now(), Collector: 1, Type: Announce, Prefix: pfx,
			Path: []netsim.ASN{1, 2, 3, 4}}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteDump(&buf, msgs); err != nil {
			b.Fatal(err)
		}
	}
}

package bgp

import (
	"sort"
	"time"

	"arachnet/internal/stats"
)

// Burst is one detected update-rate anomaly: a time bin whose message
// count is a robust outlier against the preceding baseline.
type Burst struct {
	Start         time.Time
	Duration      time.Duration
	Messages      int
	Withdrawals   int
	Score         float64 // robust z-score vs baseline bins
	TopPrefixes   []string
	WithdrawHeavy bool // withdrawals dominate: outage signature
}

// DetectBursts bins a time-ordered message stream and flags bins whose
// volume deviates from the median bin volume by at least threshold
// robust standard deviations. It needs at least minBaselineBins bins of
// history before flagging anything.
func DetectBursts(msgs []Message, bin time.Duration, threshold float64) []Burst {
	const minBaselineBins = 6
	if len(msgs) == 0 || bin <= 0 {
		return nil
	}
	start := msgs[0].Time.Truncate(bin)
	end := msgs[len(msgs)-1].Time
	nBins := int(end.Sub(start)/bin) + 1
	if nBins < minBaselineBins+1 {
		return nil
	}
	counts := make([]float64, nBins)
	withdrawals := make([]int, nBins)
	prefixCount := make([]map[string]int, nBins)
	for _, m := range msgs {
		i := int(m.Time.Sub(start) / bin)
		if i < 0 || i >= nBins {
			continue
		}
		counts[i]++
		if m.Type == Withdraw {
			withdrawals[i]++
		}
		if prefixCount[i] == nil {
			prefixCount[i] = make(map[string]int)
		}
		prefixCount[i][m.Prefix.String()]++
	}

	var out []Burst
	for i := minBaselineBins; i < nBins; i++ {
		base, err := stats.FitBaseline(counts[:i])
		if err != nil {
			continue
		}
		score := base.Score(counts[i])
		if score < threshold {
			continue
		}
		b := Burst{
			Start:       start.Add(time.Duration(i) * bin),
			Duration:    bin,
			Messages:    int(counts[i]),
			Withdrawals: withdrawals[i],
			Score:       score,
			TopPrefixes: topKeys(prefixCount[i], 5),
		}
		b.WithdrawHeavy = withdrawals[i]*2 > int(counts[i])
		out = append(out, b)
	}
	return out
}

func topKeys(m map[string]int, k int) []string {
	type kv struct {
		key string
		n   int
	}
	kvs := make([]kv, 0, len(m))
	for key, n := range m {
		kvs = append(kvs, kv{key, n})
	}
	sort.Slice(kvs, func(i, j int) bool {
		if kvs[i].n != kvs[j].n {
			return kvs[i].n > kvs[j].n
		}
		return kvs[i].key < kvs[j].key
	})
	if len(kvs) > k {
		kvs = kvs[:k]
	}
	out := make([]string, len(kvs))
	for i, e := range kvs {
		out[i] = e.key
	}
	return out
}

// CorrelateWindow reports how strongly the update stream concentrates
// inside [from, to): the fraction of all withdrawals that fall in the
// window, a temporal-correlation score in [0,1] used as routing-layer
// evidence by forensic workflows.
func CorrelateWindow(msgs []Message, from, to time.Time) float64 {
	var inWin, total float64
	for _, m := range msgs {
		if m.Type != Withdraw {
			continue
		}
		total++
		if !m.Time.Before(from) && m.Time.Before(to) {
			inWin++
		}
	}
	if total == 0 {
		return 0
	}
	return inWin / total
}

package bgp

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"arachnet/internal/netsim"
)

// The dump format is a compact MRT-like binary framing for update
// messages, so workflows can persist and re-parse "BGP dumps" the way
// the paper's workflows consume RouteViews files.
//
//	file   = magic(4) version(u16) reserved(u16) record*
//	record = ts(i64, unix-nanos) collector(u32) type(u8)
//	         addr(4) prefixLen(u8) pathLen(u16) path(u32 * pathLen)
//
// All integers are big-endian.

var (
	dumpMagic = [4]byte{'A', 'M', 'R', 'T'}

	// ErrBadMagic indicates the stream is not a dump file.
	ErrBadMagic = errors.New("bgp: bad dump magic")
	// ErrBadVersion indicates an unsupported dump version.
	ErrBadVersion = errors.New("bgp: unsupported dump version")
	// ErrCorruptRecord indicates a malformed record.
	ErrCorruptRecord = errors.New("bgp: corrupt record")
)

const (
	dumpVersion = 1
	// maxPathLen bounds AS-path length in dumps; real paths rarely
	// exceed a few dozen hops, so anything larger indicates corruption.
	maxPathLen = 256
)

// DumpWriter serializes update messages to the dump format.
type DumpWriter struct {
	w      *bufio.Writer
	wrote  int
	header bool
}

// NewDumpWriter creates a writer. The header is emitted lazily on the
// first WriteMessage (or explicitly via Flush on an empty dump).
func NewDumpWriter(w io.Writer) *DumpWriter {
	return &DumpWriter{w: bufio.NewWriter(w)}
}

func (dw *DumpWriter) writeHeader() error {
	if dw.header {
		return nil
	}
	if _, err := dw.w.Write(dumpMagic[:]); err != nil {
		return err
	}
	var buf [4]byte
	binary.BigEndian.PutUint16(buf[0:2], dumpVersion)
	binary.BigEndian.PutUint16(buf[2:4], 0)
	if _, err := dw.w.Write(buf[:]); err != nil {
		return err
	}
	dw.header = true
	return nil
}

// WriteMessage appends one message to the dump.
func (dw *DumpWriter) WriteMessage(m Message) error {
	if err := dw.writeHeader(); err != nil {
		return err
	}
	if !m.Prefix.Addr().Is4() {
		return fmt.Errorf("bgp: dump supports IPv4 prefixes only, got %v", m.Prefix)
	}
	if len(m.Path) > maxPathLen {
		return fmt.Errorf("bgp: path too long (%d)", len(m.Path))
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(m.Time.UnixNano()))
	if _, err := dw.w.Write(buf[:]); err != nil {
		return err
	}
	binary.BigEndian.PutUint32(buf[:4], uint32(m.Collector))
	if _, err := dw.w.Write(buf[:4]); err != nil {
		return err
	}
	if err := dw.w.WriteByte(byte(m.Type)); err != nil {
		return err
	}
	a4 := m.Prefix.Addr().As4()
	if _, err := dw.w.Write(a4[:]); err != nil {
		return err
	}
	if err := dw.w.WriteByte(byte(m.Prefix.Bits())); err != nil {
		return err
	}
	binary.BigEndian.PutUint16(buf[:2], uint16(len(m.Path)))
	if _, err := dw.w.Write(buf[:2]); err != nil {
		return err
	}
	for _, asn := range m.Path {
		binary.BigEndian.PutUint32(buf[:4], uint32(asn))
		if _, err := dw.w.Write(buf[:4]); err != nil {
			return err
		}
	}
	dw.wrote++
	return nil
}

// Flush writes any buffered data (and the header, for empty dumps).
func (dw *DumpWriter) Flush() error {
	if err := dw.writeHeader(); err != nil {
		return err
	}
	return dw.w.Flush()
}

// Count returns the number of messages written so far.
func (dw *DumpWriter) Count() int { return dw.wrote }

// WriteDump serializes a whole message slice in one call.
func WriteDump(w io.Writer, msgs []Message) error {
	dw := NewDumpWriter(w)
	for _, m := range msgs {
		if err := dw.WriteMessage(m); err != nil {
			return err
		}
	}
	return dw.Flush()
}

// DumpReader parses the dump format incrementally.
type DumpReader struct {
	r      *bufio.Reader
	header bool
}

// NewDumpReader creates a reader over a dump stream.
func NewDumpReader(r io.Reader) *DumpReader {
	return &DumpReader{r: bufio.NewReader(r)}
}

func (dr *DumpReader) readHeader() error {
	if dr.header {
		return nil
	}
	var buf [8]byte
	if _, err := io.ReadFull(dr.r, buf[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return fmt.Errorf("%w: truncated header", ErrBadMagic)
		}
		return err
	}
	if [4]byte(buf[0:4]) != dumpMagic {
		return ErrBadMagic
	}
	if v := binary.BigEndian.Uint16(buf[4:6]); v != dumpVersion {
		return fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	dr.header = true
	return nil
}

// Next returns the next message, or io.EOF at clean end of stream.
func (dr *DumpReader) Next() (Message, error) {
	if err := dr.readHeader(); err != nil {
		return Message{}, err
	}
	var fixed [20]byte // ts(8) collector(4) type(1) addr(4) plen(1) pathlen(2)
	if _, err := io.ReadFull(dr.r, fixed[:8]); err != nil {
		if errors.Is(err, io.EOF) {
			return Message{}, io.EOF
		}
		return Message{}, fmt.Errorf("%w: truncated timestamp", ErrCorruptRecord)
	}
	if _, err := io.ReadFull(dr.r, fixed[8:20]); err != nil {
		return Message{}, fmt.Errorf("%w: truncated record body", ErrCorruptRecord)
	}
	m := Message{
		Time:      time.Unix(0, int64(binary.BigEndian.Uint64(fixed[0:8]))).UTC(),
		Collector: netsim.ASN(binary.BigEndian.Uint32(fixed[8:12])),
		Type:      MessageType(fixed[12]),
	}
	if m.Type != Announce && m.Type != Withdraw {
		return Message{}, fmt.Errorf("%w: bad type %d", ErrCorruptRecord, fixed[12])
	}
	addr := netip.AddrFrom4([4]byte(fixed[13:17]))
	bits := int(fixed[17])
	if bits > 32 {
		return Message{}, fmt.Errorf("%w: bad prefix length %d", ErrCorruptRecord, bits)
	}
	m.Prefix = netip.PrefixFrom(addr, bits)
	pathLen := int(binary.BigEndian.Uint16(fixed[18:20]))
	if pathLen > maxPathLen {
		return Message{}, fmt.Errorf("%w: path length %d", ErrCorruptRecord, pathLen)
	}
	if pathLen > 0 {
		raw := make([]byte, 4*pathLen)
		if _, err := io.ReadFull(dr.r, raw); err != nil {
			return Message{}, fmt.Errorf("%w: truncated path", ErrCorruptRecord)
		}
		m.Path = make([]netsim.ASN, pathLen)
		for i := 0; i < pathLen; i++ {
			m.Path[i] = netsim.ASN(binary.BigEndian.Uint32(raw[4*i:]))
		}
	}
	return m, nil
}

// ReadDump parses a whole dump into memory.
func ReadDump(r io.Reader) ([]Message, error) {
	dr := NewDumpReader(r)
	var out []Message
	for {
		m, err := dr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, m)
	}
}

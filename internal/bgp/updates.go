package bgp

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"
	"time"

	"arachnet/internal/netsim"
)

// MessageType distinguishes announcements from withdrawals.
type MessageType uint8

// Update message types.
const (
	Announce MessageType = 1
	Withdraw MessageType = 2
)

// String implements fmt.Stringer.
func (t MessageType) String() string {
	switch t {
	case Announce:
		return "A"
	case Withdraw:
		return "W"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Message is one BGP update as seen by a collector peer.
type Message struct {
	Time      time.Time
	Collector netsim.ASN // the vantage AS that observed the update
	Type      MessageType
	Prefix    netip.Prefix
	Path      []netsim.ASN // empty for withdrawals
}

// Diff compares two tables from the viewpoint of the given collector
// ASes and emits one message per changed (collector, prefix) pair,
// stamped with the given time. Prefixes are expanded from the world's
// allocation (one route per origin covers all of that origin's
// prefixes, as in real BGP).
func Diff(w *netsim.World, before, after *Table, collectors []netsim.ASN, at time.Time) []Message {
	prefixesOf := make(map[netsim.ASN][]netip.Prefix)
	for _, p := range w.Prefixes {
		prefixesOf[p.Origin] = append(prefixesOf[p.Origin], p.CIDR)
	}
	var out []Message
	cs := make([]netsim.ASN, len(collectors))
	copy(cs, collectors)
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })

	for _, c := range cs {
		origins := make(map[netsim.ASN]bool)
		for o := range before.RoutesFrom(c) {
			origins[o] = true
		}
		for o := range after.RoutesFrom(c) {
			origins[o] = true
		}
		ordered := make([]netsim.ASN, 0, len(origins))
		for o := range origins {
			ordered = append(ordered, o)
		}
		sort.Slice(ordered, func(i, j int) bool { return ordered[i] < ordered[j] })

		for _, o := range ordered {
			rb, okB := before.Route(c, o)
			ra, okA := after.Route(c, o)
			for _, p := range prefixesOf[o] {
				// Origin-side partitioning dominates: a prefix whose PoP
				// fell off its AS backbone is withdrawn regardless of the
				// AS-level route.
				pb := !before.Partitioned(p) && okB
				pa := !after.Partitioned(p) && okA
				switch {
				case pb && !pa:
					out = append(out, Message{Time: at, Collector: c, Type: Withdraw, Prefix: p})
				case !pb && pa:
					out = append(out, Message{Time: at, Collector: c, Type: Announce, Prefix: p, Path: clonePath(ra.Path)})
				case pb && pa && !PathEqual(rb.Path, ra.Path):
					out = append(out, Message{Time: at, Collector: c, Type: Announce, Prefix: p, Path: clonePath(ra.Path)})
				}
			}
		}
	}
	return out
}

func clonePath(p []netsim.ASN) []netsim.ASN {
	out := make([]netsim.ASN, len(p))
	copy(out, p)
	return out
}

// FailureEvent is one timed infrastructure failure: a set of IP links
// that die at a given instant (and stay dead).
type FailureEvent struct {
	At    time.Time
	Links []netsim.LinkID
	Label string // human-readable cause, e.g. "cable:seamewe-5"
}

// StreamConfig controls synthetic update-stream generation.
type StreamConfig struct {
	Start      time.Time
	End        time.Time
	Collectors []netsim.ASN
	// NoisePerHour is the expected count of benign background updates
	// per hour (path churn unrelated to the failure under study).
	NoisePerHour float64
	Seed         uint64
}

// GenerateStream produces a time-ordered update stream covering the
// window: background churn plus the table diffs caused by each failure
// event. The cumulative failure state applies (links do not recover).
func GenerateStream(w *netsim.World, events []FailureEvent, cfg StreamConfig) ([]Message, error) {
	if !cfg.Start.Before(cfg.End) {
		return nil, fmt.Errorf("bgp: empty stream window [%v, %v)", cfg.Start, cfg.End)
	}
	if len(cfg.Collectors) == 0 {
		return nil, fmt.Errorf("bgp: no collectors configured")
	}
	evs := make([]FailureEvent, len(events))
	copy(evs, events)
	sort.Slice(evs, func(i, j int) bool { return evs[i].At.Before(evs[j].At) })

	var out []Message

	// Failure-driven messages.
	failed := make(map[netsim.LinkID]bool)
	cur := ComputeTable(w, failed)
	for _, ev := range evs {
		if ev.At.Before(cfg.Start) || !ev.At.Before(cfg.End) {
			continue
		}
		for _, id := range ev.Links {
			failed[id] = true
		}
		next := ComputeTable(w, failed)
		out = append(out, Diff(w, cur, next, cfg.Collectors, ev.At)...)
		cur = next
	}

	// Background churn: benign re-announcements at random times from
	// random collectors, deterministic under the seed.
	rng := rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0xda3e39cb94b95bdb))
	hours := cfg.End.Sub(cfg.Start).Hours()
	n := int(cfg.NoisePerHour * hours)
	base := ComputeTable(w, nil)
	for i := 0; i < n; i++ {
		at := cfg.Start.Add(time.Duration(rng.Float64() * float64(cfg.End.Sub(cfg.Start))))
		c := cfg.Collectors[rng.IntN(len(cfg.Collectors))]
		if len(w.Prefixes) == 0 {
			break
		}
		p := w.Prefixes[rng.IntN(len(w.Prefixes))]
		r, ok := base.Route(c, p.Origin)
		if !ok {
			continue
		}
		out = append(out, Message{Time: at, Collector: c, Type: Announce, Prefix: p.CIDR, Path: clonePath(r.Path)})
	}

	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.Before(out[j].Time) })
	return out, nil
}

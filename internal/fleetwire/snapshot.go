package fleetwire

import (
	"encoding/json"

	"arachnet/internal/core"
)

// Snapshot codec injection: core's cache snapshots
// (System.SaveSnapshot / LoadSnapshot) persist step outputs with this
// package's tagged value envelopes — the same closed tag↔type registry
// the worker wire uses, so exactly the values that can cross the fleet
// wire can cross a process restart. core cannot import fleetwire
// (fleetwire imports core for the catalog port types), so the codec is
// handed over through core.SetSnapshotValueCodec at init. Every
// arachnet binary and the facade link this package, so the seam is
// populated everywhere snapshots are reachable.
func init() {
	core.SetSnapshotValueCodec(EncodeOutputs, DecodeOutputs)
}

// EncodeOutputs renders a step-output map as JSON of tagged value
// envelopes. It fails — rather than guessing — on values outside the
// codec's closed type registry.
func EncodeOutputs(m map[string]any) (json.RawMessage, error) {
	wm, err := encodeMap(m)
	if err != nil {
		return nil, err
	}
	return json.Marshal(wm)
}

// DecodeOutputs is the inverse of EncodeOutputs.
func DecodeOutputs(raw json.RawMessage) (map[string]any, error) {
	var wm map[string]wireValue
	if err := json.Unmarshal(raw, &wm); err != nil {
		return nil, err
	}
	return decodeMap(wm)
}

package fleetwire

import (
	"encoding/json"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"arachnet/internal/bgp"
	"arachnet/internal/core"
	"arachnet/internal/geo"
	"arachnet/internal/nautilus"
	"arachnet/internal/netsim"
	"arachnet/internal/topo"
	"arachnet/internal/traceroute"
	"arachnet/internal/xaminer"
)

// codecSamples holds one representative, fully-populated value per
// registered codec tag. TestCodecRoundTrip fails if a tag has no
// sample, so growing the codec forces growing this table.
func codecSamples() map[string]any {
	at := time.Date(2026, 1, 2, 3, 4, 5, 123456789, time.UTC)
	ci := xaminer.CountryImpact{
		Country: "EG", LinksLost: 3.5, LinksTotal: 12, IPsLost: 140.25,
		IPsTotal: 800, ASesHit: 4, ASesTotal: 9, ASLinksLost: 2.5,
		ASLinksTot: 7, Score: 0.3125,
	}
	event := xaminer.Event{
		Name: "tohoku-offshore", Type: xaminer.Earthquake,
		Epicenter: geo.Coord{Lat: 38.3, Lng: 142.4}, RadiusKm: 500, Severity: 9.0,
	}
	return map[string]any{
		"string":   "SeaMeWe-5",
		"bool":     true,
		"int":      42,
		"float64":  0.1,
		"[]string": []string{"alpha", "beta"},

		"nautilus.CableID":   nautilus.CableID("SeaMeWe-5"),
		"[]nautilus.CableID": []nautilus.CableID{"SeaMeWe-5", "AAE-1"},
		"[]netsim.LinkID":    []netsim.LinkID{3, 77, 1024},
		"[]netip.Addr": []netip.Addr{
			netip.MustParseAddr("10.1.2.3"),
			netip.MustParseAddr("2001:db8::17"),
		},
		"[]core.GeoRow": []core.GeoRow{
			{Addr: netip.MustParseAddr("10.1.2.3"), Country: "EG"},
			{Addr: netip.MustParseAddr("10.9.8.7"), Country: "IN"},
		},
		"*xaminer.ImpactReport": &xaminer.ImpactReport{
			Scenario: "xaminer", FailedLinks: 9,
			Countries:           []xaminer.CountryImpact{ci},
			ReachabilityLossPct: 12.5,
		},
		"[]xaminer.Event": []xaminer.Event{event},
		"[]xaminer.EventImpact": []xaminer.EventImpact{{
			Event: event, FailProb: 0.1,
			RoutersAtRisk:     []netsim.RouterID{5, 9},
			LinksAtRisk:       []netsim.LinkID{11, 12},
			CablesAtRisk:      []nautilus.CableID{"APG"},
			ExpectedLinksLost: 1.2,
			Countries:         []xaminer.CountryImpact{ci},
		}},
		"xaminer.GlobalImpact": xaminer.GlobalImpact{
			Events: []string{"tohoku-offshore"}, ExpectedLinksLost: 4.5,
			Countries: []xaminer.CountryImpact{ci},
		},
		"[]bgp.Message": []bgp.Message{{
			Time: at, Collector: 64500, Type: bgp.Withdraw,
			Prefix: netip.MustParsePrefix("10.1.0.0/16"),
			Path:   []netsim.ASN{64500, 64501},
		}},
		"[]bgp.Burst": []bgp.Burst{{
			Start: at, Duration: 5 * time.Minute, Messages: 120,
			Withdrawals: 90, Score: 6.5,
			TopPrefixes: []string{"10.1.0.0/16"}, WithdrawHeavy: true,
		}},
		"*traceroute.Archive": &traceroute.Archive{
			Measurements: []traceroute.Measurement{{
				Probe: "eu-probe-1", Time: at, RTTms: 187.5, Reached: true,
				HopASNs: []netsim.ASN{64500, 64501},
			}},
		},
		"core.LatencyFinding": core.LatencyFinding{
			Detected: true, ShiftAt: at, Probes: []string{"eu-probe-1"},
			MeanBefore: 80, MeanAfter: 190, DeltaMs: 110, PValue: 0.001,
			Confidence: 0.9, LostProbes: []string{"eu-probe-2"},
		},
		"core.CascadeBundle": core.CascadeBundle{
			Cable: topo.CableCascade{
				Rounds:     [][]nautilus.CableID{{"SeaMeWe-5"}, {"AAE-1"}},
				Failed:     []nautilus.CableID{"AAE-1", "SeaMeWe-5"},
				FinalLoad:  map[nautilus.CableID]float64{"APG": 17.5},
				Overloaded: map[nautilus.CableID]float64{"AAE-1": 1.25},
			},
			Stress: topo.StressResult{
				Stress:   map[netsim.ASN]float64{64500: 0.5},
				Degraded: []netsim.ASN{64500},
				Waves:    [][]netsim.ASN{{64500}},
				Rounds:   1,
			},
		},
		"topo.StressResult": topo.StressResult{
			Stress:   map[netsim.ASN]float64{64500: 0.5, 64501: 0.25},
			Degraded: []netsim.ASN{64500},
			Waves:    [][]netsim.ASN{{64500}},
			Rounds:   2,
		},
		"[]core.CableSuspect": []core.CableSuspect{{
			Cable: "SeaMeWe-5", Score: 0.85, WithdrawalHits: 12,
			CorridorMatch: true, LinksCarried: 40,
		}},
		"core.Verdict": core.Verdict{
			CauseIsCableFailure: true, Cable: "SeaMeWe-5", Confidence: 0.87,
			StatisticalEvidence: 0.9, InfraEvidence: 0.85, RoutingEvidence: 0.8,
			Explanation: "withdrawal burst correlates with corridor cable",
		},
		"*core.Timeline": &core.Timeline{
			Entries: []core.TimelineEntry{
				{At: at, Layer: "cable", What: "SeaMeWe-5 failed"},
			},
			CablesFailed: 2, LinksLost: 40, ASesDegraded: 3,
			CascadeRounds: 2, TopCountries: []string{"EG", "IN"},
			BurstsDetected: 1,
		},
	}
}

// TestCodecRoundTrip is the codec's property test: for every
// registered tag, value → envelope → JSON → envelope → value must be
// exact (reflect.DeepEqual), because scattered execution must be
// byte-identical to in-process execution.
func TestCodecRoundTrip(t *testing.T) {
	samples := codecSamples()
	for _, tag := range codecTags() {
		v, ok := samples[tag]
		if !ok {
			t.Errorf("codec tag %q has no sample — add one to codecSamples", tag)
			continue
		}
		wv, err := encodeValue(v)
		if err != nil {
			t.Errorf("%s: encode: %v", tag, err)
			continue
		}
		if wv.Type != tag {
			t.Errorf("%s: encoded under tag %q", tag, wv.Type)
		}
		// Cross the wire for real: envelope → bytes → envelope.
		data, err := json.Marshal(wv)
		if err != nil {
			t.Fatalf("%s: marshal envelope: %v", tag, err)
		}
		var back wireValue
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("%s: unmarshal envelope: %v", tag, err)
		}
		got, err := decodeValue(back)
		if err != nil {
			t.Errorf("%s: decode: %v", tag, err)
			continue
		}
		if !reflect.DeepEqual(got, v) {
			t.Errorf("%s: round trip drifted:\n got %#v\nwant %#v", tag, got, v)
		}
	}
	for tag := range samples {
		if _, ok := decoders[tag]; !ok {
			t.Errorf("sample %q has no registered decoder", tag)
		}
	}
}

func TestCodecMapRoundTrip(t *testing.T) {
	in := map[string]any{
		"cable": nautilus.CableID("SeaMeWe-5"),
		"links": []netsim.LinkID{1, 2, 3},
		"count": 7,
	}
	enc, err := encodeMap(in)
	if err != nil {
		t.Fatalf("encodeMap: %v", err)
	}
	data, err := json.Marshal(enc)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var mid map[string]wireValue
	if err := json.Unmarshal(data, &mid); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	out, err := decodeMap(mid)
	if err != nil {
		t.Fatalf("decodeMap: %v", err)
	}
	if !reflect.DeepEqual(out, in) {
		t.Fatalf("map round trip drifted:\n got %#v\nwant %#v", out, in)
	}
}

func TestCodecRejectsUnknown(t *testing.T) {
	type mystery struct{ X int }
	if _, err := encodeValue(mystery{1}); err == nil {
		t.Fatal("encoding an unregistered type should fail")
	}
	if _, err := encodeValue(nil); err == nil {
		t.Fatal("encoding nil should fail")
	}
	if _, err := decodeValue(wireValue{Type: "no.such.Type", Value: json.RawMessage(`1`)}); err == nil {
		t.Fatal("decoding an unknown tag should fail")
	}
	if _, err := decodeValue(wireValue{Type: "int", Value: json.RawMessage(`"nope"`)}); err == nil {
		t.Fatal("decoding mismatched JSON should fail")
	}
}
